// Benchmarks: one group per reproduced paper artifact (see DESIGN.md's
// experiment index and EXPERIMENTS.md for the corresponding tables). The
// full table generators live in internal/experiments and run via
// `go run ./cmd/squirrel bench`; these testing.B benchmarks isolate the
// primitive costs behind each table so regressions are visible.
package squirrel_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"squirrel"
	"squirrel/internal/algebra"
	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/experiments"
	"squirrel/internal/relation"
	"squirrel/internal/sim"
	"squirrel/internal/vdp"
)

// benchSystem assembles the paper's running example at the given scale
// with one of the named annotation configurations.
func benchSystem(b *testing.B, nR, nS int, cfg string) *squirrel.System {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	sys := squirrel.NewSystem()
	db1 := sys.AddSource("db1")
	r := squirrel.NewRelation(squirrel.MustSchema("R", []squirrel.Attribute{
		{Name: "r1", Type: squirrel.KindInt}, {Name: "r2", Type: squirrel.KindInt},
		{Name: "r3", Type: squirrel.KindInt}, {Name: "r4", Type: squirrel.KindInt}}, "r1"),
		squirrel.Set)
	for i := 1; i <= nR; i++ {
		r4 := int64(100)
		if rng.Intn(4) == 0 {
			r4 = 50
		}
		r.Insert(squirrel.T(int64(i), int64(1+rng.Intn(nS)), int64(rng.Intn(200)), r4))
	}
	db1.MustLoadTable(r)
	db2 := sys.AddSource("db2")
	s := squirrel.NewRelation(squirrel.MustSchema("S", []squirrel.Attribute{
		{Name: "s1", Type: squirrel.KindInt}, {Name: "s2", Type: squirrel.KindInt},
		{Name: "s3", Type: squirrel.KindInt}}, "s1"), squirrel.Set)
	for i := 1; i <= nS; i++ {
		s.Insert(squirrel.T(int64(i), int64(rng.Intn(10)), int64(rng.Intn(100))))
	}
	db2.MustLoadTable(s)
	sys.MustDefineView("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`)
	switch cfg {
	case "materialized":
	case "virtual-aux":
		sys.AnnotateAllVirtual("R'", []string{"r1", "r2", "r3"})
	case "hybrid":
		sys.AnnotateAllVirtual("R'", []string{"r1", "r2", "r3"})
		sys.AnnotateAllVirtual("S'", []string{"s1", "s2"})
		sys.Annotate("T", []string{"r1", "s1"}, []string{"r3", "s2"})
	case "virtual":
		sys.AnnotateAllVirtual("R'", []string{"r1", "r2", "r3"})
		sys.AnnotateAllVirtual("S'", []string{"s1", "s2"})
		sys.AnnotateAllVirtual("T", []string{"r1", "r3", "s1", "s2"})
	default:
		b.Fatalf("unknown config %q", cfg)
	}
	sys.MustStart()
	return sys
}

// nextKey hands out fresh primary keys for benchmark inserts.
var nextKey int64 = 1 << 40

func commitR(b *testing.B, sys *squirrel.System, n int) {
	b.Helper()
	d := squirrel.NewDelta()
	for i := 0; i < n; i++ {
		nextKey++
		d.Insert("R", squirrel.T(nextKey, int64(1+i%500), int64(i%200), 100))
	}
	if _, err := sys.MustSource("db1").Apply(d); err != nil {
		b.Fatal(err)
	}
}

func commitS(b *testing.B, sys *squirrel.System, n int) {
	b.Helper()
	d := squirrel.NewDelta()
	for i := 0; i < n; i++ {
		nextKey++
		d.Insert("S", squirrel.T(nextKey, int64(i%10), int64(i%100)))
	}
	if _, err := sys.MustSource("db2").Apply(d); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkE1IncrementalMaintenance measures one fully-materialized update
// transaction (Example 2.1 / Figure 1) at several scales.
func BenchmarkE1IncrementalMaintenance(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("R=%d", n), func(b *testing.B) {
			sys := benchSystem(b, n, n/2, "materialized")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				commitR(b, sys, 8)
				if _, err := sys.Sync(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE1RecomputeBaseline measures the from-scratch evaluation that
// incremental maintenance replaces.
func BenchmarkE1RecomputeBaseline(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("R=%d", n), func(b *testing.B) {
			sys := benchSystem(b, n, n/2, "materialized")
			plan := sys.Plan()
			db1 := sys.MustSource("db1").DB()
			db2 := sys.MustSource("db2").DB()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, _ := db1.Current("R")
				s, _ := db2.Current("S")
				if _, err := plan.EvalAll(vdp.ResolverFromCatalog(
					map[string]*relation.Relation{"R": r, "S": s})); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2VirtualAuxiliary measures Example 2.2's two propagation
// paths: ΔR (no polling) vs ΔS (polls db1 for the virtual R').
func BenchmarkE2VirtualAuxiliary(b *testing.B) {
	b.Run("deltaR-no-poll", func(b *testing.B) {
		sys := benchSystem(b, 4000, 2000, "virtual-aux")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			commitR(b, sys, 4)
			if _, err := sys.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deltaS-polls-db1", func(b *testing.B) {
		sys := benchSystem(b, 4000, 2000, "virtual-aux")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			commitS(b, sys, 4)
			if _, err := sys.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE3HybridQueries measures Example 2.3's query paths against the
// hybrid export: hot (materialized only), cold standard, cold key-based.
func BenchmarkE3HybridQueries(b *testing.B) {
	cond, err := squirrel.ParseCondition("r3 < 100")
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name  string
		attrs []string
		cond  squirrel.Expr
		opts  squirrel.QueryOptions
	}{
		{"hot-materialized", []string{"r1", "s1"}, nil, squirrel.QueryOptions{}},
		{"cold-standard", []string{"r3", "s1"}, cond, squirrel.QueryOptions{KeyBased: squirrel.KeyBasedOff}},
		{"cold-keybased", []string{"r3", "s1"}, cond, squirrel.QueryOptions{KeyBased: squirrel.KeyBasedForce}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			sys := benchSystem(b, 4000, 2000, "hybrid")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.QueryExport("T", c.attrs, c.cond, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4Figure2 measures the exact pseudo-consistency/consistency
// decision over the Figure 2 scenario.
func BenchmarkE4Figure2(b *testing.B) {
	sc, _ := checker.Figure2Scenario()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := sc.PseudoConsistent()
		if err != nil || !p {
			b.Fatal("pseudo must hold")
		}
		c, err := sc.Consistent()
		if err != nil || c {
			b.Fatal("consistent must fail")
		}
	}
}

// BenchmarkE5Figure4 measures update transactions against the Example 5.1
// two-export plan (difference node, θ-join, hybrid E) for each churn side.
func BenchmarkE5Figure4(b *testing.B) {
	build := func(b *testing.B) *squirrel.System {
		sys := squirrel.NewSystem()
		rng := rand.New(rand.NewSource(2))
		for _, spec := range []struct{ src, rel, a1, a2 string }{
			{"dbA", "A", "a1", "a2"}, {"dbB", "B", "b1", "b2"},
			{"dbC", "C", "c1", "c2"}, {"dbD", "D", "d1", "d2"},
		} {
			rel := squirrel.NewRelation(squirrel.MustSchema(spec.rel, []squirrel.Attribute{
				{Name: spec.a1, Type: squirrel.KindInt}, {Name: spec.a2, Type: squirrel.KindInt}}, spec.a1),
				squirrel.Set)
			for i := 1; i <= 400; i++ {
				rel.Insert(squirrel.T(int64(i), int64(rng.Intn(40))))
			}
			sys.AddSource(spec.src).MustLoadTable(rel)
		}
		sys.MustDefineView("E", `SELECT a1, a2, b1 FROM A JOIN B ON a1*a1 + a2 < b2*b2`)
		sys.MustDefineView("G", `SELECT a1, b1 FROM E EXCEPT SELECT c1, d1 FROM C JOIN D ON c2 = d2`)
		sys.Annotate("E", []string{"a1", "b1"}, []string{"a2"})
		sys.AnnotateAllVirtual("B'", []string{"b1", "b2"})
		sys.AnnotateAllVirtual("G_r", []string{"c1", "d1"})
		sys.MustStart()
		return sys
	}
	for _, side := range []struct{ name, src, rel string }{
		{"AB-churn", "dbA", "A"}, {"CD-churn", "dbC", "C"},
	} {
		b.Run(side.name, func(b *testing.B) {
			sys := build(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nextKey++
				d := squirrel.NewDelta()
				d.Insert(side.rel, squirrel.T(nextKey, int64(i%40)))
				if _, err := sys.MustSource(side.src).Apply(d); err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Sync(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6KernelDiscipline measures the disciplined kernel propagation
// on the adversarial Example 6.1 pattern (simultaneous ΔR' and ΔS' whose
// join partners are each other).
func BenchmarkE6KernelDiscipline(b *testing.B) {
	sys := benchSystem(b, 2000, 1000, "materialized")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nextKey++
		joinKey := nextKey
		d := squirrel.NewDelta()
		nextKey++
		d.Insert("R", squirrel.T(nextKey, joinKey, int64(i%200), 100))
		d.Insert("S", squirrel.T(joinKey, int64(i%10), int64(i%50)))
		if _, err := sys.MustSource("db1").Apply(d.Filter("R")); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.MustSource("db2").Apply(d.Filter("S")); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7ConsistencyCheck measures the trace checker (the Theorem 7.1
// verifier): replaying source logs and validating one recorded query.
func BenchmarkE7ConsistencyCheck(b *testing.B) {
	sys := benchSystem(b, 1000, 500, "hybrid")
	for i := 0; i < 10; i++ {
		commitR(b, sys, 3)
		if _, err := sys.Sync(); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.QueryExport("T", []string{"r1", "s1"}, nil, squirrel.QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.CheckConsistency(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8FreshnessSimulation measures one full discrete-event
// simulation run of the Theorem 7.2 environment (commits, announcements,
// delayed polls, periodic update transactions, queries; 20k virtual
// ticks) plus its freshness verification.
func BenchmarkE8FreshnessSimulation(b *testing.B) {
	rSchema := squirrel.MustSchema("R", []squirrel.Attribute{
		{Name: "r1", Type: squirrel.KindInt}, {Name: "r2", Type: squirrel.KindInt},
		{Name: "r3", Type: squirrel.KindInt}, {Name: "r4", Type: squirrel.KindInt}}, "r1")
	sSchema := squirrel.MustSchema("S", []squirrel.Attribute{
		{Name: "s1", Type: squirrel.KindInt}, {Name: "s2", Type: squirrel.KindInt},
		{Name: "s3", Type: squirrel.KindInt}}, "s1")
	for i := 0; i < b.N; i++ {
		bld := vdp.NewBuilder()
		if err := bld.AddSource("db1", rSchema); err != nil {
			b.Fatal(err)
		}
		if err := bld.AddSource("db2", sSchema); err != nil {
			b.Fatal(err)
		}
		if err := bld.AddViewSQL("T",
			`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`); err != nil {
			b.Fatal(err)
		}
		plan, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		d := sim.Delays{
			Ann:         map[string]clock.Time{"db1": 100, "db2": 300},
			Comm:        map[string]clock.Time{"db1": 20, "db2": 50},
			QProcSource: map[string]clock.Time{"db1": 10, "db2": 15},
			UHold:       1000, UProc: 50, QProcMed: 5,
		}
		h, err := sim.NewHarness(plan, nil, d)
		if err != nil {
			b.Fatal(err)
		}
		h.Sim.Horizon = 20000
		next := int64(0)
		for t := clock.Time(137); t < 20000; t += 713 {
			h.ScheduleCommit(t, "db1", func() *delta.Delta {
				next++
				dd := delta.New()
				dd.Insert("R", relation.T(next, 10*(1+next%4), next%50, 100))
				return dd
			})
		}
		for t := clock.Time(550); t < 20000; t += 1103 {
			h.ScheduleQuery(t, "T", nil)
		}
		h.Sim.Run()
		bounds := d.Bounds(h.Med, plan.Sources())
		if _, err := h.Environment().CheckFreshness(bounds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Spectrum measures the update-vs-query cost asymmetry that
// produces the §1 crossover: one update transaction and one hot query per
// configuration.
func BenchmarkE9Spectrum(b *testing.B) {
	for _, cfg := range []string{"materialized", "hybrid", "virtual"} {
		b.Run(cfg+"/update", func(b *testing.B) {
			sys := benchSystem(b, 2000, 1000, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				commitR(b, sys, 4)
				if _, err := sys.Sync(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg+"/query", func(b *testing.B) {
			sys := benchSystem(b, 2000, 1000, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.QueryExport("T", []string{"r1", "s1"}, nil,
					squirrel.QueryOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10ColdQueryByMaterialization measures the §5.3 trade-off: the
// cold (all-attributes) query cost as the export's materialized fraction
// grows.
func BenchmarkE10ColdQueryByMaterialization(b *testing.B) {
	fractions := []struct {
		name string
		mats []string
	}{
		{"0of4", nil},
		{"2of4", []string{"r1", "s1"}},
		{"4of4", []string{"r1", "r3", "s1", "s2"}},
	}
	all := []string{"r1", "r3", "s1", "s2"}
	for _, f := range fractions {
		b.Run(f.name, func(b *testing.B) {
			sys := benchAnnotated(b, f.mats, all)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.QueryExport("T", nil, nil,
					squirrel.QueryOptions{KeyBased: squirrel.KeyBasedOff}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchAnnotated(b *testing.B, mats, all []string) *squirrel.System {
	b.Helper()
	matSet := map[string]bool{}
	for _, m := range mats {
		matSet[m] = true
	}
	var virt []string
	for _, a := range all {
		if !matSet[a] {
			virt = append(virt, a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	sys := squirrel.NewSystem()
	db1 := sys.AddSource("db1")
	r := squirrel.NewRelation(squirrel.MustSchema("R", []squirrel.Attribute{
		{Name: "r1", Type: squirrel.KindInt}, {Name: "r2", Type: squirrel.KindInt},
		{Name: "r3", Type: squirrel.KindInt}, {Name: "r4", Type: squirrel.KindInt}}, "r1"),
		squirrel.Set)
	for i := 1; i <= 3000; i++ {
		r.Insert(squirrel.T(int64(i), int64(1+rng.Intn(1500)), int64(rng.Intn(200)), 100))
	}
	db1.MustLoadTable(r)
	db2 := sys.AddSource("db2")
	s := squirrel.NewRelation(squirrel.MustSchema("S", []squirrel.Attribute{
		{Name: "s1", Type: squirrel.KindInt}, {Name: "s2", Type: squirrel.KindInt},
		{Name: "s3", Type: squirrel.KindInt}}, "s1"), squirrel.Set)
	for i := 1; i <= 1500; i++ {
		s.Insert(squirrel.T(int64(i), int64(rng.Intn(10)), int64(rng.Intn(100))))
	}
	db2.MustLoadTable(s)
	sys.MustDefineView("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`)
	sys.AnnotateAllVirtual("R'", []string{"r1", "r2", "r3"})
	sys.AnnotateAllVirtual("S'", []string{"s1", "s2"})
	sys.Annotate("T", mats, virt)
	sys.MustStart()
	return sys
}

// BenchmarkE11WireQuery measures a cold query whose poll crosses TCP
// loopback versus staying in-process (the Figure 3 deployment overhead).
func BenchmarkE11WireQuery(b *testing.B) {
	// The in-process variant; the TCP variant lives in the E11 experiment
	// table (it needs server lifecycle management awkward under b.N).
	sys := benchSystem(b, 2000, 1000, "hybrid")
	cond, _ := squirrel.ParseCondition("r3 < 100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.QueryExport("T", []string{"r3", "s1"}, cond,
			squirrel.QueryOptions{KeyBased: squirrel.KeyBasedOff}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12Batching measures the smash-annihilation ablation: one
// churn-heavy batch propagated as a single update transaction.
func BenchmarkE12Batching(b *testing.B) {
	for _, batch := range []int{1, 25} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			sys := benchSystem(b, 2000, 1000, "materialized")
			src := sys.MustSource("db1")
			hot := squirrel.T(int64(987654), int64(10), int64(1), int64(100))
			present := false
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := 0; c < batch; c++ {
					d := squirrel.NewDelta()
					if present {
						d.Delete("R", hot)
					} else {
						d.Insert("R", hot)
					}
					present = !present
					if _, err := src.Apply(d); err != nil {
						b.Fatal(err)
					}
				}
				if err := sys.SyncAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE13JoinStrategies isolates the three join paths of the §5.3
// ablation.
func BenchmarkE13JoinStrategies(b *testing.B) {
	ls := squirrel.MustSchema("L", []squirrel.Attribute{
		{Name: "lk", Type: squirrel.KindInt}, {Name: "lv", Type: squirrel.KindInt}})
	rs := squirrel.MustSchema("Rr", []squirrel.Attribute{
		{Name: "rk", Type: squirrel.KindInt}, {Name: "rv", Type: squirrel.KindInt}})
	rng := rand.New(rand.NewSource(6))
	const n = 1000
	l := squirrel.NewRelation(ls, squirrel.Bag)
	rPlain := squirrel.NewRelation(rs, squirrel.Bag)
	rIndexed := squirrel.NewRelation(rs, squirrel.Bag)
	if err := rIndexed.BuildIndex("rk"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		l.Add(squirrel.T(rng.Intn(n), rng.Intn(10)), 1)
		tr := squirrel.T(rng.Intn(n), rng.Intn(10))
		rPlain.Add(tr, 1)
		rIndexed.Add(tr, 1)
	}
	hashCond := algebra.Eq(algebra.A("lk"), algebra.A("rk"))
	nlCond := algebra.Eq(algebra.Add(algebra.A("lk"), algebra.CInt(0)), algebra.A("rk"))
	cases := []struct {
		name string
		r    *squirrel.Relation
		cond squirrel.Expr
	}{
		{"nested-loop", rPlain, nlCond},
		{"hash-build", rPlain, hashCond},
		{"index-probe", rIndexed, hashCond},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.EvalJoin(l, c.r, c.cond, "J"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchMediatorE15 assembles the running example around a RAW mediator
// (no trace recorder — recording clones every answer, which would swamp a
// throughput benchmark) for the concurrent-read experiment.
func benchMediatorE15(b *testing.B, nR, nS int, cfg string) (*squirrel.Mediator, *squirrel.SourceDB, *squirrel.SourceDB) {
	b.Helper()
	rng := rand.New(rand.NewSource(15))
	clk := &squirrel.LogicalClock{}
	db1 := squirrel.NewSourceDB("db1", clk)
	r := squirrel.NewRelation(squirrel.MustSchema("R", []squirrel.Attribute{
		{Name: "r1", Type: squirrel.KindInt}, {Name: "r2", Type: squirrel.KindInt},
		{Name: "r3", Type: squirrel.KindInt}, {Name: "r4", Type: squirrel.KindInt}}, "r1"),
		squirrel.Set)
	for i := 1; i <= nR; i++ {
		r4 := int64(100)
		if rng.Intn(4) == 0 {
			r4 = 50
		}
		r.Insert(squirrel.T(int64(i), int64(1+rng.Intn(nS)), int64(rng.Intn(200)), r4))
	}
	if err := db1.LoadRelation(r); err != nil {
		b.Fatal(err)
	}
	db2 := squirrel.NewSourceDB("db2", clk)
	s := squirrel.NewRelation(squirrel.MustSchema("S", []squirrel.Attribute{
		{Name: "s1", Type: squirrel.KindInt}, {Name: "s2", Type: squirrel.KindInt},
		{Name: "s3", Type: squirrel.KindInt}}, "s1"), squirrel.Set)
	for i := 1; i <= nS; i++ {
		s.Insert(squirrel.T(int64(i), int64(rng.Intn(10)), int64(rng.Intn(100))))
	}
	if err := db2.LoadRelation(s); err != nil {
		b.Fatal(err)
	}
	builder := squirrel.NewVDPBuilder()
	if err := builder.AddSource("db1", r.Schema()); err != nil {
		b.Fatal(err)
	}
	if err := builder.AddSource("db2", s.Schema()); err != nil {
		b.Fatal(err)
	}
	if err := builder.AddViewSQL("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`); err != nil {
		b.Fatal(err)
	}
	switch cfg {
	case "materialized":
	case "hybrid":
		builder.Annotate("R'", squirrel.Ann(nil, []string{"r1", "r2", "r3"}))
		builder.Annotate("S'", squirrel.Ann(nil, []string{"s1", "s2"}))
		builder.Annotate("T", squirrel.Ann([]string{"r1", "s1"}, []string{"r3", "s2"}))
	case "virtual":
		builder.Annotate("R'", squirrel.Ann(nil, []string{"r1", "r2", "r3"}))
		builder.Annotate("S'", squirrel.Ann(nil, []string{"s1", "s2"}))
		builder.Annotate("T", squirrel.Ann(nil, []string{"r1", "r3", "s1", "s2"}))
	default:
		b.Fatalf("unknown config %q", cfg)
	}
	plan, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	med, err := squirrel.NewMediator(squirrel.MediatorConfig{
		VDP: plan,
		Sources: map[string]squirrel.SourceConn{
			"db1": squirrel.LocalConn(db1), "db2": squirrel.LocalConn(db2)},
		Clock: clk,
	})
	if err != nil {
		b.Fatal(err)
	}
	squirrel.ConnectLocal(med, db1)
	squirrel.ConnectLocal(med, db2)
	if err := med.Initialize(); err != nil {
		b.Fatal(err)
	}
	return med, db1, db2
}

// BenchmarkE15ConcurrentReads measures query throughput with 1/4/16
// reader goroutines while an update stream churns (commit + update
// transaction per iteration). With the versioned store, the {r1,s1}
// query is lock-free in the materialized and hybrid configurations (both
// attributes materialized in T), so throughput should scale with
// readers; the virtual configuration takes the polling path and bounds
// the cost of version pinning + Eager Compensation under contention.
func BenchmarkE15ConcurrentReads(b *testing.B) {
	for _, cfg := range []string{"materialized", "hybrid", "virtual"} {
		for _, readers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/readers=%d", cfg, readers), func(b *testing.B) {
				med, db1, db2 := benchMediatorE15(b, 4000, 2000, cfg)
				stop := make(chan struct{})
				var churn sync.WaitGroup
				// The update stream runs as it does in deployment: each
				// source commits on its own thread while the mediator's
				// update loop drains the queue on another.
				churn.Add(3)
				go func() {
					defer churn.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						d := squirrel.NewDelta()
						nextKey++
						d.Insert("R", squirrel.T(nextKey, int64(1+nextKey%500), int64(nextKey%200), 100))
						if _, err := db1.Apply(d); err != nil {
							b.Error(err)
							return
						}
					}
				}()
				go func() {
					defer churn.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						d := squirrel.NewDelta()
						nextKey++
						d.Insert("S", squirrel.T(nextKey, int64(nextKey%10), int64(nextKey%100)))
						if _, err := db2.Apply(d); err != nil {
							b.Error(err)
							return
						}
					}
				}()
				go func() {
					defer churn.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := med.RunUpdateTransaction(); err != nil {
							b.Error(err)
							return
						}
					}
				}()
				attrs := []string{"r1", "s1"}
				per := b.N/readers + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < readers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							if _, err := med.QueryOpts("T", attrs, nil, squirrel.QueryOptions{}); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				churn.Wait()
			})
		}
	}
}

// benchWidePropagationMediator assembles the wide-VDP benchmark topology
// for the staged kernel: `units` independent join views T0..T{units-1},
// each R{i} ⋈ S{i}. All R leaves live on one shared source ("upd") so a
// single source transaction announces work for every unit at once; each
// S{i} lives on its own source ("pol{i}") wrapped with deterministic
// injected latency, modelling the network round trip of a real remote
// database. S{i}' and T{i} are hybrid with the S-payload virtual — the
// same shape as the fault-tolerance chaos environment — so maintaining
// T{i} after an R commit forces an Eager-Compensated poll of pol{i}.
// Update-transaction latency is then dominated by the `units` polls: the
// serial executor pays them in sequence, the staged executor overlaps
// them on its worker pool.
func benchWidePropagationMediator(b *testing.B, units, workers int, latency time.Duration) (*squirrel.Mediator, *squirrel.SourceDB) {
	b.Helper()
	clk := &squirrel.LogicalClock{}
	rng := rand.New(rand.NewSource(7))
	builder := squirrel.NewVDPBuilder()
	inj := squirrel.NewFaultInjector(7)
	conns := map[string]squirrel.SourceConn{}

	upd := squirrel.NewSourceDB("upd", clk)
	conns["upd"] = squirrel.LocalConn(upd)
	var polls []*squirrel.SourceDB
	for i := 0; i < units; i++ {
		rs := squirrel.MustSchema(fmt.Sprintf("R%d", i), []squirrel.Attribute{
			{Name: fmt.Sprintf("ra%d", i), Type: squirrel.KindInt},
			{Name: fmt.Sprintf("rb%d", i), Type: squirrel.KindInt},
			{Name: fmt.Sprintf("rc%d", i), Type: squirrel.KindInt}}, fmt.Sprintf("ra%d", i))
		r := squirrel.NewRelation(rs, squirrel.Set)
		for k := 1; k <= 8; k++ {
			r.Insert(squirrel.T(int64(k), int64(1+rng.Intn(4)), int64(rng.Intn(50))))
		}
		if err := upd.LoadRelation(r); err != nil {
			b.Fatal(err)
		}
		if err := builder.AddSource("upd", rs); err != nil {
			b.Fatal(err)
		}

		src := fmt.Sprintf("pol%d", i)
		db := squirrel.NewSourceDB(src, clk)
		ss := squirrel.MustSchema(fmt.Sprintf("S%d", i), []squirrel.Attribute{
			{Name: fmt.Sprintf("sa%d", i), Type: squirrel.KindInt},
			{Name: fmt.Sprintf("sb%d", i), Type: squirrel.KindInt}}, fmt.Sprintf("sa%d", i))
		s := squirrel.NewRelation(ss, squirrel.Set)
		for k := 1; k <= 4; k++ {
			s.Insert(squirrel.T(int64(k), int64(rng.Intn(100))))
		}
		if err := db.LoadRelation(s); err != nil {
			b.Fatal(err)
		}
		if err := builder.AddSource(src, ss); err != nil {
			b.Fatal(err)
		}
		polls = append(polls, db)
		conns[src] = squirrel.WrapChaos(squirrel.LocalConn(db), inj)

		if err := builder.AddViewSQL(fmt.Sprintf("T%d", i),
			fmt.Sprintf("SELECT ra%d, rc%d, sa%d, sb%d FROM R%d JOIN S%d ON rb%d = sa%d",
				i, i, i, i, i, i, i, i)); err != nil {
			b.Fatal(err)
		}
		builder.Annotate(fmt.Sprintf("S%d'", i),
			squirrel.Ann([]string{fmt.Sprintf("sa%d", i)}, []string{fmt.Sprintf("sb%d", i)}))
		builder.Annotate(fmt.Sprintf("T%d", i), squirrel.Ann(
			[]string{fmt.Sprintf("ra%d", i), fmt.Sprintf("rc%d", i), fmt.Sprintf("sa%d", i)},
			[]string{fmt.Sprintf("sb%d", i)}))
	}
	plan, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	med, err := squirrel.NewMediator(squirrel.MediatorConfig{
		VDP: plan, Sources: conns, Clock: clk, PropagateWorkers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	squirrel.ConnectLocal(med, upd)
	for _, db := range polls {
		squirrel.ConnectLocal(med, db)
	}
	if err := med.Initialize(); err != nil {
		b.Fatal(err)
	}
	// Inject the poll latency only after the initial full load.
	for i := 0; i < units; i++ {
		inj.Set(fmt.Sprintf("pol%d", i), squirrel.Faults{LatencyProb: 1, Latency: latency})
	}
	return med, upd
}

// BenchmarkColumnarPropagation (E19) measures the columnar data plane
// end-to-end in the compute-bound regime: the running example fully
// materialized over large base relations, no injected poll latency, with
// group-commit batching (8 source transactions coalesce into one update
// transaction, so one copy-on-write clone per touched node amortizes the
// whole batch) and a hot materialized query per iteration. In this regime
// an update transaction is dominated by cloning and re-keying the stores,
// which is exactly what the blocks backend vectorizes: rows pays a boxed
// map insert per tuple, blocks pays slice copies plus open-addressed
// probes over column vectors. EXPERIMENTS.md E19 records the numbers.
func BenchmarkColumnarPropagation(b *testing.B) {
	const batch = 8
	for _, bk := range []squirrel.RelationBackend{squirrel.Rows, squirrel.Blocks} {
		b.Run("backend="+bk.String(), func(b *testing.B) {
			prev := squirrel.DefaultRelationBackend()
			squirrel.SetRelationBackend(bk)
			defer squirrel.SetRelationBackend(prev)
			med, db1, db2 := benchMediatorE15(b, 24000, 12000, "materialized")
			attrs := []string{"r1", "s1"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for c := 0; c < batch; c++ {
					d := squirrel.NewDelta()
					nextKey++
					d.Insert("R", squirrel.T(nextKey, int64(1+nextKey%500), int64(nextKey%200), 100))
					if _, err := db1.Apply(d); err != nil {
						b.Fatal(err)
					}
					d = squirrel.NewDelta()
					nextKey++
					d.Insert("S", squirrel.T(nextKey, int64(nextKey%10), int64(nextKey%100)))
					if _, err := db2.Apply(d); err != nil {
						b.Fatal(err)
					}
				}
				// One coalesced drain: the transaction smashes the whole
				// 16-announcement queue into a single propagated delta.
				ran, err := med.RunUpdateTransaction()
				if err != nil {
					b.Fatal(err)
				}
				if !ran {
					b.Fatal("update transaction had nothing to do")
				}
				if _, err := med.QueryOpts("T", attrs, nil, squirrel.QueryOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelPropagation measures one update transaction over the
// wide topology above (8 units, 2ms injected poll latency) as the worker
// count grows. Each iteration commits one insert per R leaf in a single
// source transaction, then runs the update transaction that maintains all
// 8 join views. On a single-CPU host the kernel's compute cannot speed
// up; the win measured here is poll-latency overlap in the VAP, which is
// where a latency-dominated wide propagation spends its time (workers=1
// pays 8 round trips in sequence, workers=4 pays ~2).
func BenchmarkParallelPropagation(b *testing.B) {
	const units = 8
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			med, upd := benchWidePropagationMediator(b, units, workers, 2*time.Millisecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := squirrel.NewDelta()
				for u := 0; u < units; u++ {
					nextKey++
					d.Insert(fmt.Sprintf("R%d", u),
						squirrel.T(nextKey, int64(1+i%4), int64(i%50)))
				}
				if _, err := upd.Apply(d); err != nil {
					b.Fatal(err)
				}
				ran, err := med.RunUpdateTransaction()
				if err != nil {
					b.Fatal(err)
				}
				if !ran {
					b.Fatal("update transaction had nothing to do")
				}
			}
		})
	}
}

// BenchmarkE21SubscriptionFanout (E21) measures push-based continuous
// queries (the subscription subsystem). The drain variant is the
// steady-state fan-out cost: one 8-row commit published to N subscribers
// that each receive and consume their delta frame — frames alias the
// single committed delta, so the per-subscriber cost is queue bookkeeping,
// not copying. The stalled variant is the backpressure guarantee under
// load: N subscribers with 4-frame queues that never drain, so every
// commit coalesces into each tail via Smash; what is measured is the
// commit path itself, which must stay flat rather than stall on slow
// consumers.
func BenchmarkE21SubscriptionFanout(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("drain/subs=%d", n), func(b *testing.B) {
			sys := benchSystem(b, 1000, 500, "materialized")
			defer sys.Shutdown()
			med := sys.Mediator()
			subs := make([]*core.Subscription, n)
			for i := range subs {
				s, err := med.Subscribe("T", core.SubscribeOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if _, ok, err := s.TryRecv(); err != nil || !ok {
					b.Fatalf("initial snapshot: ok=%v err=%v", ok, err)
				}
				subs[i] = s
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				commitR(b, sys, 8)
				if _, err := sys.Sync(); err != nil {
					b.Fatal(err)
				}
				for _, s := range subs {
					f, ok, err := s.TryRecv()
					if err != nil || !ok || f.Kind != core.SubDelta {
						b.Fatalf("frame: kind=%v ok=%v err=%v", f.Kind, ok, err)
					}
				}
			}
			b.StopTimer()
			for _, s := range subs {
				s.Close()
			}
		})
		b.Run(fmt.Sprintf("stalled/subs=%d", n), func(b *testing.B) {
			sys := benchSystem(b, 1000, 500, "materialized")
			defer sys.Shutdown()
			med := sys.Mediator()
			subs := make([]*core.Subscription, n)
			for i := range subs {
				s, err := med.Subscribe("T", core.SubscribeOptions{MaxQueue: 4})
				if err != nil {
					b.Fatal(err)
				}
				if _, ok, err := s.TryRecv(); err != nil || !ok {
					b.Fatalf("initial snapshot: ok=%v err=%v", ok, err)
				}
				subs[i] = s
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				commitR(b, sys, 8)
				if _, err := sys.Sync(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, s := range subs {
				s.Close()
			}
		})
	}
}

// BenchmarkE22FederationFanIn (E22) measures two-hop propagation through
// the 1×2×4 federation tree (DESIGN.md §11): per iteration, `batch`
// round-robin leaf commits are absorbed by the two tier mediators and
// lifted into the top mediator through the export-as-source hop.
func BenchmarkE22FederationFanIn(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			f, err := experiments.NewFederationBench(batch)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
