module squirrel

go 1.22
