package squirrel

import (
	"fmt"
	"io"
	"time"

	"squirrel/internal/core"
	"squirrel/internal/persist"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/sqlview"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
	"squirrel/internal/wal"
)

// System is the quickstart assembly: in-process source databases, view
// definitions in SQL, per-node annotations, and one mediator — wired on a
// shared logical clock with a trace recorder, ready for the correctness
// checkers.
type System struct {
	clk     *LogicalClock
	rec     *Recorder
	builder *vdp.Builder
	sources map[string]*Source
	order   []string
	med     *Mediator
	plan    *VDP
	wal     *wal.Manager
	resil   ResilienceConfig
	workers int
	started bool
}

// Source wraps one in-process source database registered with a System.
type Source struct {
	sys *System
	db  *source.DB
}

// NewSystem creates an empty system.
func NewSystem() *System {
	return &System{
		clk:     &LogicalClock{},
		rec:     trace.NewRecorder(),
		builder: vdp.NewBuilder(),
		sources: make(map[string]*Source),
	}
}

// AddSource registers a new source database. Panics if called after Start
// or on a duplicate name (assembly-time programming errors).
func (s *System) AddSource(name string) *Source {
	if s.started {
		panic("squirrel: AddSource after Start")
	}
	if _, dup := s.sources[name]; dup {
		panic("squirrel: duplicate source " + name)
	}
	src := &Source{sys: s, db: source.NewDB(name, s.clk)}
	s.sources[name] = src
	s.order = append(s.order, name)
	return src
}

// Source returns a registered source by name, or nil.
func (s *System) Source(name string) *Source { return s.sources[name] }

// MustSource returns a registered source by name, panicking if absent.
func (s *System) MustSource(name string) *Source {
	src, ok := s.sources[name]
	if !ok {
		panic("squirrel: unknown source " + name)
	}
	return src
}

// DB exposes the underlying source database (commits, snapshot queries,
// historical replay).
func (src *Source) DB() *SourceDB { return src.db }

// Name returns the source database's name.
func (src *Source) Name() string { return src.db.Name() }

// CreateTable declares a relation on the source and registers it as a VDP
// leaf.
func (src *Source) CreateTable(schema *Schema, sem Semantics) error {
	if src.sys.started {
		return fmt.Errorf("squirrel: CreateTable after Start")
	}
	if err := src.db.CreateRelation(schema, sem); err != nil {
		return err
	}
	return src.sys.builder.AddSource(src.db.Name(), schema)
}

// MustCreateTable is CreateTable that panics on error.
func (src *Source) MustCreateTable(schema *Schema, sem Semantics) {
	if err := src.CreateTable(schema, sem); err != nil {
		panic(err)
	}
}

// LoadTable declares a relation with initial contents.
func (src *Source) LoadTable(rel *Relation) error {
	if src.sys.started {
		return fmt.Errorf("squirrel: LoadTable after Start")
	}
	if err := src.db.LoadRelation(rel); err != nil {
		return err
	}
	return src.sys.builder.AddSource(src.db.Name(), rel.Schema())
}

// MustLoadTable is LoadTable that panics on error.
func (src *Source) MustLoadTable(rel *Relation) {
	if err := src.LoadTable(rel); err != nil {
		panic(err)
	}
}

// Apply commits a transaction (a non-redundant delta) on the source,
// announcing the net update to the mediator.
func (src *Source) Apply(d *Delta) (Time, error) { return src.db.Apply(d) }

// MustApply is Apply that panics on error.
func (src *Source) MustApply(d *Delta) Time { return src.db.MustApply(d) }

// Insert commits a single-tuple insertion.
func (src *Source) Insert(rel string, t Tuple) (Time, error) {
	d := NewDelta()
	d.Insert(rel, t)
	return src.db.Apply(d)
}

// Delete commits a single-tuple deletion.
func (src *Source) Delete(rel string, t Tuple) (Time, error) {
	d := NewDelta()
	d.Delete(rel, t)
	return src.db.Apply(d)
}

// DefineView adds an export relation defined by a SQL view definition
// (SELECT...FROM...JOIN...WHERE, optionally UNION/EXCEPT of two blocks).
func (s *System) DefineView(name, sql string) error {
	if s.started {
		return fmt.Errorf("squirrel: DefineView after Start")
	}
	return s.builder.AddViewSQL(name, sql)
}

// MustDefineView is DefineView that panics on error.
func (s *System) MustDefineView(name, sql string) {
	if err := s.DefineView(name, sql); err != nil {
		panic(err)
	}
}

// Annotate sets a node's materialized/virtual attribute split. Nodes
// default to fully materialized. Auxiliary nodes created by DefineView are
// named: one leaf-parent per source relation R as "R'", union/except block
// nodes as "<view>_l" and "<view>_r".
func (s *System) Annotate(node string, materialized, virtual []string) {
	s.builder.Annotate(node, Ann(materialized, virtual))
}

// AnnotateAllVirtual marks every attribute of a node virtual.
func (s *System) AnnotateAllVirtual(node string, attrs []string) {
	s.builder.Annotate(node, Ann(nil, attrs))
}

// SetResilience configures the mediator's source fault boundary (poll
// timeouts, retry/backoff, circuit breakers). Call before Start; the zero
// config (the default) is strict fail-fast.
func (s *System) SetResilience(cfg ResilienceConfig) {
	if s.started {
		panic("squirrel: SetResilience after Start")
	}
	s.resil = cfg
}

// SetPropagateWorkers selects the mediator's update-propagation executor:
// 0 (the default) runs the serial reference kernel; n >= 1 runs the
// staged kernel, which partitions the VDP's topological order into
// antichain stages and maintains each stage's nodes — and issues its
// VAP source polls — on at most n worker goroutines. Both executors
// produce identical stores (the staged kernel replays the serial
// sibling-state discipline); n > 1 buys throughput on wide plans. Call
// before Start.
func (s *System) SetPropagateWorkers(n int) {
	if s.started {
		panic("squirrel: SetPropagateWorkers after Start")
	}
	s.workers = n
}

// assemble validates the plan and builds a mediator over the registered
// sources — shared by every Start variant. Announcement feeds are NOT
// connected: a recovering mediator must replay with an empty queue.
func (s *System) assemble() (*VDP, *Mediator, error) {
	plan, err := s.builder.Build()
	if err != nil {
		return nil, nil, err
	}
	conns := make(map[string]SourceConn, len(s.sources))
	for name, src := range s.sources {
		conns[name] = core.LocalSource{DB: src.db}
	}
	med, err := core.New(core.Config{VDP: plan, Sources: conns, Clock: s.clk, Recorder: s.rec,
		Resilience: s.resil, PropagateWorkers: s.workers})
	if err != nil {
		return nil, nil, err
	}
	return plan, med, nil
}

func (s *System) connectFeeds(med *Mediator) {
	for _, src := range s.sources {
		core.ConnectLocal(med, src.db)
	}
}

// Start validates the plan, builds the mediator, connects announcement
// feeds, and initializes the materialized store from the sources.
func (s *System) Start() error {
	if s.started {
		return fmt.Errorf("squirrel: already started")
	}
	plan, med, err := s.assemble()
	if err != nil {
		return err
	}
	s.connectFeeds(med)
	if err := med.Initialize(); err != nil {
		return err
	}
	s.plan, s.med, s.started = plan, med, true
	return nil
}

// DurabilityConfig configures the write-ahead delta log behind
// StartDurable.
type DurabilityConfig struct {
	// Dir is the WAL directory (segments + checkpoints), created if
	// missing. Required.
	Dir string
	// Fsync is the sync policy: wal.SyncCommit (default — every
	// published version is durable first), wal.SyncBatch (the runtime's
	// group-commit flush makes each drained batch durable with one
	// fsync), or wal.SyncNone.
	Fsync wal.SyncPolicy
	// CompactEvery checkpoints the store and truncates the log after
	// this many logged commits (0 = default, negative = only on
	// shutdown/recovery).
	CompactEvery int
}

// StartDurable is Start backed by a durable write-ahead delta log. On a
// fresh directory it initializes from the sources and starts logging;
// on a directory with state it recovers — newest readable checkpoint
// plus log replay — then catches up on source commits made while down
// (from the source logs; never a full resync). The returned info is nil
// on a fresh start.
func (s *System) StartDurable(cfg DurabilityConfig) (*wal.RecoveryInfo, error) {
	if s.started {
		return nil, fmt.Errorf("squirrel: already started")
	}
	plan, med, err := s.assemble()
	if err != nil {
		return nil, err
	}
	mgr, err := wal.Open(wal.Options{
		Dir: cfg.Dir, Policy: cfg.Fsync, CompactEvery: cfg.CompactEvery,
		Metrics: med.Metrics(),
	})
	if err != nil {
		return nil, err
	}
	has, err := mgr.HasState()
	if err != nil {
		return nil, err
	}
	var info *wal.RecoveryInfo
	if has {
		if info, err = mgr.Recover(med); err != nil {
			return nil, err
		}
		s.connectFeeds(med)
		lp := med.LastProcessed()
		for name, src := range s.sources {
			src.db.ReplaySince(lp[name], med.OnAnnouncement)
		}
	} else {
		s.connectFeeds(med)
		if err := med.Initialize(); err != nil {
			return nil, err
		}
		if err := mgr.Start(med); err != nil {
			return nil, err
		}
	}
	s.plan, s.med, s.wal, s.started = plan, med, mgr, true
	return info, nil
}

// WAL exposes the system's log manager (nil unless StartDurable).
func (s *System) WAL() *wal.Manager { return s.wal }

// Shutdown closes the WAL cleanly — final checkpoint, so the next
// StartDurable replays nothing. Stop any Runtime first. No-op without a
// WAL.
func (s *System) Shutdown() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// MustStart is Start that panics on error.
func (s *System) MustStart() {
	if err := s.Start(); err != nil {
		panic(err)
	}
}

// Sync drains the update queue through one update transaction (§6.4),
// reporting whether anything was processed.
func (s *System) Sync() (bool, error) {
	if !s.started {
		return false, fmt.Errorf("squirrel: not started")
	}
	return s.med.RunUpdateTransaction()
}

// SyncAll runs update transactions until the queue is empty.
func (s *System) SyncAll() error {
	for {
		ran, err := s.Sync()
		if err != nil {
			return err
		}
		if !ran {
			return nil
		}
	}
}

// Query answers a SELECT against the integrated view. Single-relation
// queries (`SELECT cols FROM Export WHERE cond`) go through the paper's
// π_A σ_f query processor with key-based optimization; queries that join
// several exports or combine them with UNION/EXCEPT go through the
// multi-export path (§6.3's set-of-triples form).
func (s *System) Query(sql string) (*Relation, error) {
	if !s.started {
		return nil, fmt.Errorf("squirrel: not started")
	}
	stmt, err := sqlview.Parse(sql)
	if err != nil {
		return nil, err
	}
	if stmt.Op == "" && len(stmt.Left.Tables) == 1 {
		return s.med.Query(stmt.Left.Tables[0].Rel, stmt.Left.Cols, stmt.Left.Where)
	}
	expr, err := stmt.ToRelExpr("answer")
	if err != nil {
		return nil, err
	}
	res, err := s.med.QueryExpr(expr, QueryOptions{})
	if err != nil {
		return nil, err
	}
	return res.Answer, nil
}

// QueryExport answers π_attrs σ_cond (export) with explicit options,
// returning the full result with consistency metadata.
func (s *System) QueryExport(export string, attrs []string, cond Expr, opts QueryOptions) (*QueryResult, error) {
	if !s.started {
		return nil, fmt.Errorf("squirrel: not started")
	}
	return s.med.QueryOpts(export, attrs, cond, opts)
}

// ParseCondition parses a textual predicate (e.g. "total > 100 AND
// region = 'EU'") into an Expr for QueryExport.
func ParseCondition(src string) (Expr, error) { return sqlview.ParseExpr(src) }

// Advise runs the §5.3 annotation advisor over the live plan for the
// given workload profile. Apply the advice either by rebuilding a system
// with the suggested annotations, or online — without downtime — through
// Reannotate (one-shot) or StartAdapt (the closed observe → advise →
// apply loop).
func (s *System) Advise(p WorkloadProfile) (Advice, error) {
	if !s.started {
		return Advice{}, fmt.Errorf("squirrel: not started")
	}
	return s.med.VDP().Advise(p), nil
}

// Reannotate switches the running mediator to new per-node annotations
// without downtime: newly-materialized columns are backfilled by VAP polls
// compensated to the current version's ref′ vector, newly-virtual columns
// are dropped from the store, and the switch publishes atomically as the
// next store version. Concurrent queries are never torn — each runs
// against an agreeing (version, plan) pair — and Theorem 7.1 consistency
// holds across the switch (see DESIGN.md, "Adaptive annotation"). The
// returned flips describe each attribute that changed.
func (s *System) Reannotate(anns map[string]Annotation) ([]AnnotationFlip, error) {
	if !s.started {
		return nil, fmt.Errorf("squirrel: not started")
	}
	return s.med.Reannotate(anns)
}

// StartAdapt launches the online §5.3 loop: an AdaptController that
// periodically derives a workload profile from the mediator's own metrics,
// asks the advisor, and — once the advice has survived hysteresis and
// cooldown — applies it through Reannotate. Call the returned controller's
// Stop to terminate the loop; use cfg.Manual for observe-and-report only.
func (s *System) StartAdapt(cfg AdaptConfig) (*AdaptController, error) {
	if !s.started {
		return nil, fmt.Errorf("squirrel: not started")
	}
	ctrl := core.NewAdaptController(s.med, cfg)
	if err := ctrl.Start(); err != nil {
		return nil, err
	}
	return ctrl, nil
}

// Mediator exposes the underlying mediator.
func (s *System) Mediator() *Mediator { return s.med }

// Metrics exposes the mediator's metrics registry (nil before Start):
// latency histograms for update-transaction phases, kernel stages, source
// polls and queries, plus the structured event log. Render it with
// (*MetricsRegistry).WritePrometheus or snapshot it with MetricsSnapshot.
func (s *System) Metrics() *MetricsRegistry {
	if !s.started {
		return nil
	}
	return s.med.Metrics()
}

// MetricsSnapshot captures every instrument and the retained events (the
// zero Snapshot before Start).
func (s *System) MetricsSnapshot() MetricsSnapshot {
	if !s.started {
		return MetricsSnapshot{}
	}
	return s.med.MetricsSnapshot()
}

// StoreVersion returns the sequence number of the mediator's currently
// published store version (0 before Start). Each committed update
// transaction publishes the next version; every query answer carries the
// version it was computed against (QueryResult.Version).
func (s *System) StoreVersion() uint64 {
	if !s.started {
		return 0
	}
	return s.med.StoreVersion()
}

// CurrentVersion pins the currently published store version: an immutable
// snapshot of the materialized store that stays valid (and consistent)
// for as long as the pointer is held, regardless of concurrent updates.
// Nil before Start.
func (s *System) CurrentVersion() *StoreVersion {
	if !s.started {
		return nil
	}
	return s.med.CurrentVersion()
}

// Plan exposes the validated VDP (nil before Start). After a live
// re-annotation (Reannotate, StartAdapt) this is the mediator's current
// plan, not the one the system was constructed with.
func (s *System) Plan() *VDP {
	if s.started {
		return s.med.VDP()
	}
	return s.plan
}

// Trace exposes the transaction trace recorder.
func (s *System) Trace() *Recorder { return s.rec }

// ClockNow returns a fresh global timestamp.
func (s *System) ClockNow() Time { return s.clk.Now() }

// CheckConsistency verifies the recorded trace against the §3 consistency
// definition (the executable content of Theorem 7.1).
func (s *System) CheckConsistency() error {
	if !s.started {
		return fmt.Errorf("squirrel: not started")
	}
	return s.checkerEnv().CheckConsistency()
}

// CheckFreshness verifies the recorded trace against the freshness bounds
// (Theorem 7.2), returning the worst observed staleness per source.
func (s *System) CheckFreshness(bounds TimeVector) (TimeVector, error) {
	if !s.started {
		return nil, fmt.Errorf("squirrel: not started")
	}
	return s.checkerEnv().CheckFreshness(bounds)
}

func (s *System) checkerEnv() CheckerEnvironment {
	dbs := make(map[string]*source.DB, len(s.sources))
	for name, src := range s.sources {
		dbs[name] = src.db
	}
	// Use the live plan: a re-annotation changes where data lives, not what
	// the view logically contains, so the checkers' recomputation is the
	// same — but the live annotation keeps the environment honest.
	return CheckerEnvironment{VDP: s.med.VDP(), Sources: dbs, Trace: s.rec}
}

// Relations is a convenience for building an initial set relation.
func Relations(schema *Schema, tuples ...Tuple) *Relation {
	r := relation.NewSet(schema)
	for _, t := range tuples {
		r.Insert(t)
	}
	return r
}

// StartRuntime launches a background loop that drains the update queue
// every period (the u_hold_delay policy of §7). Call the returned
// runtime's Stop to terminate it (Stop performs a final drain).
func (s *System) StartRuntime(period time.Duration) (*Runtime, error) {
	if !s.started {
		return nil, fmt.Errorf("squirrel: not started")
	}
	rt, err := core.NewRuntime(s.med, period)
	if err != nil {
		return nil, err
	}
	if err := rt.Start(); err != nil {
		return nil, err
	}
	return rt, nil
}

// StartBatchedRuntime launches a group-commit flush loop: it wakes when an
// announcement arrives, absorbs further arrivals for window (closing the
// batch early once maxBatch announcements are queued; 0 = window only),
// then drains the queue in one coalesced update transaction, so a single
// staged-kernel pass amortizes every delta in the batch.
func (s *System) StartBatchedRuntime(window time.Duration, maxBatch int) (*Runtime, error) {
	if !s.started {
		return nil, fmt.Errorf("squirrel: not started")
	}
	rt, err := core.NewBatchedRuntime(s.med, window, maxBatch)
	if err != nil {
		return nil, err
	}
	if err := rt.Start(); err != nil {
		return nil, err
	}
	return rt, nil
}

// SaveState writes a snapshot of the mediator's durable state (the
// materialized store and its ref′ vector) to w. Restore it into a fresh
// system with StartFromState.
func (s *System) SaveState(w io.Writer) error {
	if !s.started {
		return fmt.Errorf("squirrel: not started")
	}
	snap, err := s.med.Snapshot()
	if err != nil {
		return err
	}
	return persist.Save(w, snap)
}

// SaveStateFile is SaveState with crash-safe file semantics: the
// snapshot is written to a temp file in the target's directory, fsynced,
// and atomically renamed over path — a crash mid-save never clobbers the
// previous snapshot.
func (s *System) SaveStateFile(path string) error {
	if !s.started {
		return fmt.Errorf("squirrel: not started")
	}
	snap, err := s.med.Snapshot()
	if err != nil {
		return err
	}
	return persist.SaveFile(path, snap)
}

// StartFromState is Start, except the materialized store is restored from
// a snapshot (written by SaveState on a system with the same sources,
// views, and annotations) instead of being rebuilt by polling. After the
// restore, announcements committed since the snapshot are replayed from
// the source logs, so the first Sync catches the mediator up.
func (s *System) StartFromState(r io.Reader) error {
	if s.started {
		return fmt.Errorf("squirrel: already started")
	}
	snap, err := persist.Load(r)
	if err != nil {
		return err
	}
	plan, med, err := s.assemble()
	if err != nil {
		return err
	}
	s.connectFeeds(med)
	if err := med.Restore(snap); err != nil {
		return err
	}
	lp := med.LastProcessed()
	for name, src := range s.sources {
		src.db.ReplaySince(lp[name], med.OnAnnouncement)
	}
	s.plan, s.med, s.started = plan, med, true
	return nil
}
