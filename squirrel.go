// Package squirrel is a from-scratch reproduction of the Squirrel data
// integration framework of Hull & Zhou, "A Framework for Supporting Data
// Integration Using the Materialized and Virtual Approaches" (SIGMOD
// 1996).
//
// A Squirrel integration mediator maintains an integrated relational view
// over multiple autonomous source databases. Each relation of the view can
// be fully materialized, fully virtual, or hybrid (some attributes
// materialized, others virtual). Materialized data is maintained by
// incremental update propagation over an annotated View Decomposition
// Plan (VDP); virtual data is fetched on demand by the Virtual Attribute
// Processor, with Eager Compensation keeping polled data consistent with
// the queued update stream.
//
// The top-level API assembles complete systems:
//
//	sys := squirrel.NewSystem()
//	db := sys.AddSource("orders-db")
//	db.MustCreateTable(squirrel.MustSchema("Orders", ...), squirrel.Set)
//	sys.MustDefineView("BigSpenders", `SELECT ... FROM Orders JOIN ...`)
//	sys.Annotate("BigSpenders", []string{"cust"}, []string{"total"})
//	sys.MustStart()
//	rows, err := sys.Query(`SELECT cust FROM BigSpenders WHERE total > 100`)
//
// Advanced use (custom VDPs, simulation, network deployment, correctness
// checking) goes through the re-exported subsystem types below; see the
// examples directory and DESIGN.md for the full map.
package squirrel

import (
	"squirrel/internal/algebra"
	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
	"squirrel/internal/resilience"
	"squirrel/internal/source"
	"squirrel/internal/store"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// Core relational types.
type (
	// Value is a dynamically typed scalar (int, float, string, bool, null).
	Value = relation.Value
	// Kind identifies a Value's type.
	Kind = relation.Kind
	// Tuple is an ordered list of values.
	Tuple = relation.Tuple
	// Attribute is a named, typed column.
	Attribute = relation.Attribute
	// Schema describes a relation: name, attributes, optional key.
	Schema = relation.Schema
	// Relation is an in-memory relation with set or bag semantics.
	Relation = relation.Relation
	// Semantics selects set or bag storage.
	Semantics = relation.Semantics
	// Row pairs a tuple with its multiplicity.
	Row = relation.Row
	// RelationBackend selects a Relation's physical storage: Blocks
	// (columnar, the default) or Rows (the boxed-tuple reference
	// implementation kept as a differential oracle).
	RelationBackend = relation.Backend
)

// Value kinds and semantics constants.
const (
	KindNull   = relation.KindNull
	KindBool   = relation.KindBool
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
	KindString = relation.KindString
	Set        = relation.Set
	Bag        = relation.Bag
	// Blocks is the columnar relation backend (type-specialized column
	// vectors plus a multiplicity column); Rows is the row-oriented
	// reference backend.
	Blocks = relation.Blocks
	Rows   = relation.Rows
)

// Value and schema constructors.
var (
	// Int, Float, Str, Bool, Null build scalar values.
	Int   = relation.Int
	Float = relation.Float
	Str   = relation.Str
	Bool  = relation.Bool
	Null  = relation.Null
	// T builds a tuple from Go values (int, float64, string, bool, nil).
	T = relation.T
	// NewSchema and MustSchema build relation schemas.
	NewSchema  = relation.NewSchema
	MustSchema = relation.MustSchema
	// NewRelation builds an empty relation on the process-default backend.
	NewRelation = relation.New
	// NewRelationWith builds an empty relation on an explicit backend.
	NewRelationWith = relation.NewWith
	// SetRelationBackend / DefaultRelationBackend control the process-wide
	// default storage backend for newly created relations and deltas.
	SetRelationBackend     = relation.SetDefaultBackend
	DefaultRelationBackend = relation.DefaultBackend
	// ParseRelationBackend parses "blocks" or "rows".
	ParseRelationBackend = relation.ParseBackend
)

// Delta machinery (§6.2 of the paper).
type (
	// Delta is a multi-relation incremental update.
	Delta = delta.Delta
	// RelDelta is a single-relation incremental update.
	RelDelta = delta.RelDelta
)

// NewDelta creates an empty multi-relation delta.
var NewDelta = delta.New

// Predicate/expression language.
type (
	// Expr is a scalar/boolean expression over attribute names.
	Expr = algebra.Expr
)

// Expression constructors (see also ParseCondition for textual form).
var (
	A    = algebra.A
	CInt = algebra.CInt
	CStr = algebra.CStr
	Eq   = algebra.Eq
	Ne   = algebra.Ne
	Lt   = algebra.Lt
	Le   = algebra.Le
	Gt   = algebra.Gt
	Ge   = algebra.Ge
	Conj = algebra.Conj
	Disj = algebra.Disj
)

// VDP construction (§5).
type (
	// VDP is an annotated View Decomposition Plan.
	VDP = vdp.VDP
	// VDPNode is one node of a plan.
	VDPNode = vdp.Node
	// VDPBuilder assembles plans from SQL view definitions.
	VDPBuilder = vdp.Builder
	// Annotation maps attributes to materialized/virtual.
	Annotation = vdp.Annotation
	// WorkloadProfile feeds the §5.3 annotation advisor.
	WorkloadProfile = vdp.WorkloadProfile
	// Advice is the advisor's annotations plus its reasoning.
	Advice = vdp.Advice
)

// VDP helpers.
var (
	NewVDPBuilder   = vdp.NewBuilder
	AllMaterialized = vdp.AllMaterialized
	AllVirtual      = vdp.AllVirtual
	Ann             = vdp.Ann
	// Threshold builds an explicit advisor threshold override (including
	// an explicit zero, which nil cannot express).
	Threshold = vdp.Threshold
)

// Online adaptive annotation (the §5.3 loop run live; see
// System.Reannotate and System.StartAdapt).
type (
	// AdaptController runs the observe → advise → apply loop against a
	// running mediator, with hysteresis and cooldown damping.
	AdaptController = core.AdaptController
	// AdaptConfig tunes an AdaptController (interval, damping, manual
	// mode, advisor threshold overrides).
	AdaptConfig = core.AdaptConfig
	// AdaptDecision is one controller round's outcome: observed profile,
	// proposed/applied flips, justifications, and why nothing happened.
	AdaptDecision = core.AdaptDecision
	// AnnotationFlip describes one attribute's materialization change
	// applied by a re-annotation.
	AnnotationFlip = core.AnnotationFlip
	// ProfileCollector derives windowed WorkloadProfiles from a running
	// mediator's metrics.
	ProfileCollector = core.ProfileCollector
)

// Adaptive-annotation constructors (for driving the loop by hand against
// a bare Mediator; System.StartAdapt wraps them).
var (
	NewAdaptController  = core.NewAdaptController
	NewProfileCollector = core.NewProfileCollector
)

// Mediator (§4, §6) and sources.
type (
	// Mediator is a Squirrel integration mediator.
	Mediator = core.Mediator
	// MediatorConfig assembles a mediator.
	MediatorConfig = core.Config
	// SourceDB is an autonomous source database.
	SourceDB = source.DB
	// SourceConn connects a mediator to a source.
	SourceConn = core.SourceConn
	// QueryOptions tune query processing (key-based construction).
	QueryOptions = core.QueryOptions
	// QueryResult carries an answer plus its consistency metadata.
	QueryResult = core.QueryResult
	// ContributorKind classifies sources (§4).
	ContributorKind = core.ContributorKind
	// Stats aggregates mediator operation counters.
	Stats = core.Stats
	// Clock issues the global timestamps of §3.
	Clock = clock.Clock
	// LogicalClock is a strictly increasing in-process clock.
	LogicalClock = clock.Logical
	// Time is a point on the global timeline.
	Time = clock.Time
	// TimeVector is a per-source time vector.
	TimeVector = clock.Vector
	// Runtime drives periodic update transactions (the u_hold policy).
	Runtime = core.Runtime
	// StateSnapshot is the mediator's durable state (see SaveState).
	StateSnapshot = core.StateSnapshot
	// StoreVersion is one immutable, atomically-published state of the
	// mediator's materialized store. Obtain the current one with
	// Mediator.CurrentVersion (or the sequence number alone with
	// Mediator.StoreVersion / System.StoreVersion); holding the pointer
	// pins that state for as long as the caller needs it, at zero cost to
	// concurrent updates. Its relations are shared and must not be
	// modified.
	StoreVersion = store.Version
	// Recorder captures the transaction trace for the checkers.
	Recorder = trace.Recorder
	// CheckerEnvironment verifies consistency and freshness (§3, §7).
	CheckerEnvironment = checker.Environment
)

// Fault tolerance (retry, circuit breaking, degraded answers, chaos).
type (
	// ResilienceConfig tunes the mediator's source fault boundary: poll
	// timeouts, retry/backoff, and per-source circuit breakers. The zero
	// value preserves strict fail-fast behavior.
	ResilienceConfig = core.ResilienceConfig
	// RetryPolicy caps attempts and bounds the exponential backoff.
	RetryPolicy = resilience.RetryPolicy
	// BreakerPolicy configures the per-source circuit breaker.
	BreakerPolicy = resilience.BreakerPolicy
	// DegradeMode selects what a query does when a polled source is down:
	// FailFast (default) or ServeStale.
	DegradeMode = core.DegradeMode
	// SourceHealth is the per-source slice of Stats: breaker state, trips,
	// quarantine reason, last contact, announcement cursor.
	SourceHealth = core.SourceHealth
	// FaultInjector drives deterministic, seeded fault injection.
	FaultInjector = resilience.Injector
	// Faults is one source's fault profile (down, error/drop/hang/latency
	// probabilities).
	Faults = resilience.Faults
	// ChaosSource wraps a SourceConn with fault injection.
	ChaosSource = resilience.ChaosSource
)

// Observability (latency histograms, structured events, /metrics).
type (
	// MetricsRegistry holds the mediator's instruments and event log;
	// obtain it with System.Metrics or Mediator.Metrics, render it with
	// WritePrometheus. Pass a shared one via MediatorConfig.Metrics to
	// aggregate several mediators into one scrape.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a consistent-per-instrument copy of every
	// instrument plus the retained events; marshals directly to JSON.
	MetricsSnapshot = metrics.Snapshot
	// MetricsEvent is one structured observability record (poll failure,
	// breaker transition, version publish, flush tick...).
	MetricsEvent = metrics.Event
	// LatencySnapshot is one histogram's state: cumulative buckets plus
	// Mean and Quantile estimation.
	LatencySnapshot = metrics.HistogramSnapshot
)

// NewMetricsRegistry creates a metrics registry with an event ring buffer
// of the given capacity (0 = default).
var NewMetricsRegistry = metrics.NewRegistry

// ErrResyncOvertaken marks a failed resync whose snapshot poll was
// overtaken by announcements newer than the poll — retrying on the same
// cadence will not converge; the mediator flags the source's health as
// ResyncStuck after a few consecutive occurrences. Distinguish it from
// "source still down" with errors.Is.
var ErrResyncOvertaken = core.ErrResyncOvertaken

// Degradation modes.
const (
	// FailFast propagates source failures as query errors.
	FailFast = core.FailFast
	// ServeStale answers from cached/materialized data when a source is
	// down, stamping the answer with a per-source staleness bound
	// (refused above QueryOptions.MaxStaleness — Theorem 7.2's f̄ as a
	// runtime contract).
	ServeStale = core.ServeStale
)

// NewFaultInjector creates a deterministic seeded fault injector; wrap
// source connections with WrapChaos and script outages with SetDown/Set.
var NewFaultInjector = resilience.NewInjector

// WrapChaos wraps a source connection with fault injection.
func WrapChaos(conn SourceConn, inj *FaultInjector) SourceConn {
	return resilience.WrapSource(conn, inj)
}

// Mediator/query-mode constants.
const (
	MaterializedContributor = core.MaterializedContributor
	HybridContributor       = core.HybridContributor
	VirtualContributor      = core.VirtualContributor
	KeyBasedAuto            = core.KeyBasedAuto
	KeyBasedForce           = core.KeyBasedForce
	KeyBasedOff             = core.KeyBasedOff
)

// Construction helpers.
var (
	// NewMediator builds a mediator from a config.
	NewMediator = core.New
	// NewSourceDB creates an autonomous source database.
	NewSourceDB = source.NewDB
	// NewRecorder creates a trace recorder.
	NewRecorder = trace.NewRecorder
	// ConnectLocal subscribes a mediator to an in-process source.
	ConnectLocal = core.ConnectLocal
	// Figure2Scenario reproduces the paper's Figure 2 table.
	Figure2Scenario = checker.Figure2Scenario
)

// LocalConn adapts an in-process source database to a SourceConn.
func LocalConn(db *SourceDB) SourceConn { return core.LocalSource{DB: db} }
