package squirrel_test

import (
	"fmt"

	"squirrel"
)

// ExampleSystem assembles the paper's running example (Example 2.1): two
// autonomous sources, one integrated view, incremental maintenance.
func ExampleSystem() {
	sys := squirrel.NewSystem()

	db1 := sys.AddSource("db1")
	db1.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("R", []squirrel.Attribute{
			{Name: "r1", Type: squirrel.KindInt},
			{Name: "r2", Type: squirrel.KindInt},
			{Name: "r4", Type: squirrel.KindInt},
		}, "r1"),
		squirrel.T(1, 10, 100),
	))
	db2 := sys.AddSource("db2")
	db2.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("S", []squirrel.Attribute{
			{Name: "s1", Type: squirrel.KindInt},
			{Name: "s2", Type: squirrel.KindInt},
		}, "s1"),
		squirrel.T(10, 7),
	))

	sys.MustDefineView("T", `SELECT r1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100`)
	sys.MustStart()

	rows, _ := sys.Query(`SELECT r1, s2 FROM T`)
	fmt.Println("initial:", rows.Card(), "row(s)")

	db1.Insert("R", squirrel.T(2, 10, 100)) // a source commits
	sys.SyncAll()                           // incremental propagation

	rows, _ = sys.Query(`SELECT r1, s2 FROM T`)
	fmt.Println("after insert:", rows.Card(), "row(s)")

	if err := sys.CheckConsistency(); err != nil {
		fmt.Println("inconsistent:", err)
		return
	}
	fmt.Println("consistent: true")
	// Output:
	// initial: 1 row(s)
	// after insert: 2 row(s)
	// consistent: true
}

// ExampleSystem_hybrid shows Example 2.3's partially materialized view:
// hot attributes served locally, cold ones fetched on demand.
func ExampleSystem_hybrid() {
	sys := squirrel.NewSystem()
	db1 := sys.AddSource("db1")
	db1.MustLoadTable(squirrel.Relations(
		squirrel.MustSchema("R", []squirrel.Attribute{
			{Name: "r1", Type: squirrel.KindInt},
			{Name: "r3", Type: squirrel.KindInt},
		}, "r1"),
		squirrel.T(1, 5), squirrel.T(2, 120),
	))
	sys.MustDefineView("V", `SELECT r1, r3 FROM R`)
	sys.Annotate("V", []string{"r1"}, []string{"r3"}) // r3 virtual
	sys.MustStart()

	hot, _ := sys.QueryExport("V", []string{"r1"}, nil, squirrel.QueryOptions{})
	fmt.Println("hot query polls:", hot.Polled)

	cond, _ := squirrel.ParseCondition("r3 < 100")
	cold, _ := sys.QueryExport("V", []string{"r1", "r3"}, cond, squirrel.QueryOptions{})
	fmt.Println("cold query polls:", cold.Polled, "rows:", cold.Answer.Card())
	// Output:
	// hot query polls: 0
	// cold query polls: 1 rows: 1
}
