#!/usr/bin/env bash
# Two-tier federation walkthrough (README "Tiered federation" section),
# scripted for CI: demo source → tier mediator serving its export as a
# source → top mediator stacked on it with a plain -source → query at the
# top, verified against the expected answer through both hops.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${SQUIRREL_BIN:-}"
if [ -z "$BIN" ]; then
  BIN="$(mktemp -d)/squirrel"
  go build -o "$BIN" ./cmd/squirrel
fi

SRC_PORT="${SRC_PORT:-7170}"
TIER_PORT="${TIER_PORT:-7180}"
EXPORT_PORT="${EXPORT_PORT:-7181}"
TOP_PORT="${TOP_PORT:-7190}"

pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_port() {
  local host="${1%:*}" port="${1#*:}"
  for _ in $(seq 100); do
    if (exec 3<>"/dev/tcp/$host/$port") 2>/dev/null; then
      exec 3>&- || true
      return 0
    fi
    sleep 0.1
  done
  echo "timeout waiting for $1" >&2
  return 1
}

echo "== leaf: demo source db1 (R) on :$SRC_PORT"
"$BIN" serve-source -addr "127.0.0.1:$SRC_PORT" &
pids+=($!)
wait_port "127.0.0.1:$SRC_PORT"

echo "== tier: mediator over db1, export VRp served as source 'meda' on :$EXPORT_PORT"
"$BIN" serve-mediator \
  -source "127.0.0.1:$SRC_PORT" \
  -view 'VRp=SELECT r1, r2, r3 FROM R WHERE r4 = 100' \
  -listen "127.0.0.1:$TIER_PORT" \
  -export-as-source "127.0.0.1:$EXPORT_PORT" -export-name meda \
  -flush 200ms &
pids+=($!)
wait_port "127.0.0.1:$EXPORT_PORT"

echo "== top: mediator over the tier's export, T on :$TOP_PORT"
"$BIN" serve-mediator \
  -source "127.0.0.1:$EXPORT_PORT" \
  -view 'T=SELECT r1, r3 FROM VRp WHERE r2 = 10' \
  -listen "127.0.0.1:$TOP_PORT" \
  -flush 200ms &
pids+=($!)
wait_port "127.0.0.1:$TOP_PORT"

echo "== query T at the top (two hops below the data)"
out="$("$BIN" query-view -addr "127.0.0.1:$TOP_PORT" -export T -sync)"
echo "$out"
echo "$out" | grep -q '(1, 5)' || { echo "missing row (1, 5)" >&2; exit 1; }
echo "$out" | grep -q '(2, 120)' || { echo "missing row (2, 120)" >&2; exit 1; }

echo "== top's stats show the tier consumed as an ordinary source"
"$BIN" stats -addr "127.0.0.1:$TOP_PORT" | grep 'source meda' \
  || { echo "top does not list source meda" >&2; exit 1; }

echo "federation walkthrough OK"
