#!/bin/sh
# Extract every ```go fenced block from README.md and keep the examples
# honest: each block must be gofmt-clean and must COMPILE against the
# current public API. Blocks are compiled one per throwaway package, each
# wrapped in `func _()` after a preamble declaring the identifiers the
# surrounding prose establishes (sys, attrs, cond, conn) — a block may
# shadow them. Run from the repository root; exits non-zero on any drift.
set -eu

tmp=".readme-smoke"
rm -rf "$tmp"
trap 'rm -rf "$tmp"' EXIT

# Split README.md's go blocks into $tmp/block-N.go fragments.
awk -v dir="$tmp" '
	/^```go$/ { inblock = 1; file = dir "/block-" n++ ".go"; next }
	/^```$/   { inblock = 0; next }
	inblock   { print > file }
	BEGIN     { system("mkdir -p " dir) }
' README.md

count=$(ls "$tmp" | wc -l)
if [ "$count" -eq 0 ]; then
	echo "check_readme_go: no go blocks found in README.md" >&2
	exit 1
fi
echo "check_readme_go: $count go block(s)"

status=0
i=0
for frag in "$tmp"/block-*.go; do
	pkg="$tmp/b$i"
	mkdir -p "$pkg"
	{
		echo "package readmesmoke"
		echo
		echo 'import ('
		echo '	"fmt"'
		echo '	"os"'
		echo '	"time"'
		echo
		echo '	"squirrel"'
		echo ')'
		echo
		echo 'var _ = fmt.Println'
		echo 'var _ = os.Stdout'
		echo 'var _ = time.Second'
		echo
		echo '// Free identifiers the README prose establishes around the block.'
		echo 'var sys = squirrel.NewSystem()'
		echo 'var ('
		echo '	attrs []string'
		echo '	cond  squirrel.Expr'
		echo '	conn  squirrel.SourceConn'
		echo ')'
		echo 'var _, _, _ = attrs, cond, conn'
		echo
		echo 'func _() {'
		sed '/^$/!s/^/	/' "$frag"
		echo '}'
	} >"$pkg/block.go"

	# The fragment itself must be gofmt-clean (one tab of wrapping added,
	# so format the wrapped file and diff).
	if ! gofmt -l "$pkg/block.go" | grep -q .; then :; else
		echo "FAIL gofmt: README go block $i" >&2
		gofmt -d "$pkg/block.go" >&2
		status=1
	fi
	if ! go build "./$pkg" >/dev/null; then
		echo "FAIL build: README go block $i ($frag)" >&2
		status=1
	fi
	i=$((i + 1))
done

exit $status
