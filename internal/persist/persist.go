// Package persist serializes mediator state snapshots (core.StateSnapshot)
// as a versioned JSON envelope, so a mediator can shut down and resume
// where it left off: restore the snapshot, then replay source
// announcements committed after the snapshot's ref′ vector
// (source.DB.ReplaySince) — the mediator's dedup makes over-replay
// harmless.
package persist

import (
	"encoding/json"
	"fmt"
	"io"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/relation"
	"squirrel/internal/vdp"
	"squirrel/internal/wire"
)

// Version identifies the envelope layout. Version 3 frames the JSON
// payload with a magic + CRC32C + length header line (see envelope.go) so
// corruption is detected before decoding; version 2 introduced the
// columnar store encoding (wire.EncodeRelationColumnar); version-1 and
// version-2 envelopes (headerless) still load.
const Version = 3

type envelope struct {
	Version       int                      `json:"version"`
	Store         map[string]wire.Relation `json:"store"`
	LastProcessed map[string]clock.Time    `json:"last_processed"`
	ViewInit      clock.Time               `json:"view_init"`
	// StoreVersion is the published store version the snapshot was cut
	// from. Absent (zero) in envelopes written before versioning; Restore
	// then resumes numbering at 1.
	StoreVersion uint64 `json:"store_version,omitempty"`
	// Annotations records, per non-leaf node, each attribute's
	// materialization as "m" or "v" — the live annotation the saving
	// mediator had adapted to (§5.3). Absent in envelopes written before
	// adaptive annotation; Restore then keeps the constructed plan's
	// annotation.
	Annotations map[string]map[string]string `json:"annotations,omitempty"`
}

// encodeAnnotations renders annotations in the envelope's stable "m"/"v"
// string form (Mat's numeric values are an implementation detail).
func encodeAnnotations(anns map[string]vdp.Annotation) map[string]map[string]string {
	if anns == nil {
		return nil
	}
	out := make(map[string]map[string]string, len(anns))
	for node, ann := range anns {
		m := make(map[string]string, len(ann))
		for attr, mat := range ann {
			m[attr] = mat.String()
		}
		out[node] = m
	}
	return out
}

func decodeAnnotations(enc map[string]map[string]string) (map[string]vdp.Annotation, error) {
	if enc == nil {
		return nil, nil
	}
	out := make(map[string]vdp.Annotation, len(enc))
	for node, m := range enc {
		ann := make(vdp.Annotation, len(m))
		for attr, s := range m {
			switch s {
			case "m":
				ann[attr] = vdp.Materialized
			case "v":
				ann[attr] = vdp.Virtual
			default:
				return nil, fmt.Errorf("annotation %s.%s: unknown materialization %q", node, attr, s)
			}
		}
		out[node] = ann
	}
	return out, nil
}

// Save writes a snapshot to w.
func Save(w io.Writer, snap *core.StateSnapshot) error {
	if snap == nil {
		return fmt.Errorf("persist: nil snapshot")
	}
	env := envelope{
		Version: Version,
		Store:   make(map[string]wire.Relation, len(snap.Store)),
		// Clone: the envelope must not alias the caller's snapshot — a
		// concurrent mutation of snap.LastProcessed mid-encode would
		// corrupt the written ref′ vector.
		LastProcessed: snap.LastProcessed.Clone(),
		ViewInit:      snap.ViewInit,
		StoreVersion:  snap.StoreVersion,
		Annotations:   encodeAnnotations(snap.Annotations),
	}
	for name, rel := range snap.Store {
		env.Store[name] = wire.EncodeRelationColumnar(rel)
	}
	payload, err := json.MarshalIndent(env, "", " ")
	if err != nil {
		return err
	}
	payload = append(payload, '\n')
	return writeEnvelope(w, payload)
}

// Load reads a snapshot from r, verifying the v3 header checksum when
// present; corrupt or truncated input fails with an error matching
// ErrCorrupt. Headerless v1/v2 envelopes still load.
func Load(r io.Reader) (*core.StateSnapshot, error) {
	payload, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if env.Version < 1 || env.Version > Version {
		return nil, fmt.Errorf("persist: unsupported snapshot version %d", env.Version)
	}
	anns, err := decodeAnnotations(env.Annotations)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	snap := &core.StateSnapshot{
		Store:         make(map[string]*relation.Relation, len(env.Store)),
		LastProcessed: clock.Vector(env.LastProcessed),
		ViewInit:      env.ViewInit,
		StoreVersion:  env.StoreVersion,
		Annotations:   anns,
	}
	if snap.LastProcessed == nil {
		snap.LastProcessed = clock.Vector{}
	}
	for name, wr := range env.Store {
		rel, err := wr.Decode()
		if err != nil {
			return nil, fmt.Errorf("persist: store %q: %w", name, err)
		}
		snap.Store[name] = rel
	}
	return snap, nil
}
