// Package persist serializes mediator state snapshots (core.StateSnapshot)
// as a versioned JSON envelope, so a mediator can shut down and resume
// where it left off: restore the snapshot, then replay source
// announcements committed after the snapshot's ref′ vector
// (source.DB.ReplaySince) — the mediator's dedup makes over-replay
// harmless.
package persist

import (
	"encoding/json"
	"fmt"
	"io"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/relation"
	"squirrel/internal/wire"
)

// Version identifies the envelope layout.
const Version = 1

type envelope struct {
	Version       int                      `json:"version"`
	Store         map[string]wire.Relation `json:"store"`
	LastProcessed map[string]clock.Time    `json:"last_processed"`
	ViewInit      clock.Time               `json:"view_init"`
	// StoreVersion is the published store version the snapshot was cut
	// from. Absent (zero) in envelopes written before versioning; Restore
	// then resumes numbering at 1.
	StoreVersion uint64 `json:"store_version,omitempty"`
}

// Save writes a snapshot to w.
func Save(w io.Writer, snap *core.StateSnapshot) error {
	if snap == nil {
		return fmt.Errorf("persist: nil snapshot")
	}
	env := envelope{
		Version: Version,
		Store:   make(map[string]wire.Relation, len(snap.Store)),
		// Clone: the envelope must not alias the caller's snapshot — a
		// concurrent mutation of snap.LastProcessed mid-encode would
		// corrupt the written ref′ vector.
		LastProcessed: snap.LastProcessed.Clone(),
		ViewInit:      snap.ViewInit,
		StoreVersion:  snap.StoreVersion,
	}
	for name, rel := range snap.Store {
		env.Store[name] = wire.EncodeRelation(rel)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(env)
}

// Load reads a snapshot from r.
func Load(r io.Reader) (*core.StateSnapshot, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("persist: unsupported snapshot version %d", env.Version)
	}
	snap := &core.StateSnapshot{
		Store:         make(map[string]*relation.Relation, len(env.Store)),
		LastProcessed: clock.Vector(env.LastProcessed),
		ViewInit:      env.ViewInit,
		StoreVersion:  env.StoreVersion,
	}
	if snap.LastProcessed == nil {
		snap.LastProcessed = clock.Vector{}
	}
	for name, wr := range env.Store {
		rel, err := wr.Decode()
		if err != nil {
			return nil, fmt.Errorf("persist: store %q: %w", name, err)
		}
		snap.Store[name] = rel
	}
	return snap, nil
}
