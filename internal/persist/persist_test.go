package persist

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/relation"
	"squirrel/internal/vdp"
)

func sampleSnapshot(t *testing.T) *core.StateSnapshot {
	t.Helper()
	schema := relation.MustSchema("T", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindString}})
	rel := relation.NewBag(schema)
	rel.Add(relation.T(1, "x"), 2)
	rel.Add(relation.T(2, "y"), 1)
	set := relation.NewSet(schema.Rename("G"))
	set.Insert(relation.T(3, "z"))
	return &core.StateSnapshot{
		Store:         map[string]*relation.Relation{"T": rel, "G": set},
		LastProcessed: clock.Vector{"db1": 17, "db2": 23},
		ViewInit:      5,
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	snap := sampleSnapshot(t)
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ViewInit != snap.ViewInit {
		t.Errorf("viewInit = %d", got.ViewInit)
	}
	if got.LastProcessed["db1"] != 17 || got.LastProcessed["db2"] != 23 {
		t.Errorf("lastProcessed = %v", got.LastProcessed)
	}
	if len(got.Store) != 2 {
		t.Fatalf("stores = %d", len(got.Store))
	}
	if !got.Store["T"].Equal(snap.Store["T"]) {
		t.Errorf("T:\n%svs\n%s", got.Store["T"], snap.Store["T"])
	}
	if got.Store["G"].Semantics() != relation.Set {
		t.Errorf("set semantics lost")
	}
}

// The envelope must not alias the caller's snapshot: what Save wrote is
// fixed at the call, regardless of what the caller does to the snapshot
// afterwards (the regression was the envelope sharing snap.LastProcessed,
// so a concurrent mutation mid-encode could corrupt the written ref′).
func TestSaveIsolatedFromLaterMutation(t *testing.T) {
	snap := sampleSnapshot(t)
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	snap.LastProcessed["db1"] = 999999
	snap.LastProcessed["db3"] = 1
	snap.Store["T"].Clear()

	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastProcessed["db1"] != 17 || got.LastProcessed["db2"] != 23 {
		t.Errorf("saved ref′ corrupted by later mutation: %v", got.LastProcessed)
	}
	if _, leaked := got.LastProcessed["db3"]; leaked {
		t.Errorf("later vector insert leaked into the saved envelope")
	}
	if got.Store["T"].Len() != 2 {
		t.Errorf("saved store corrupted by later mutation: %d rows", got.Store["T"].Len())
	}
}

// Load hands back freshly decoded state: mutating one loaded snapshot
// must not affect a second load of the same bytes.
func TestLoadReturnsIndependentCopies(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, sampleSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	first, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	first.Store["T"].Clear()
	first.LastProcessed["db1"] = 0
	second, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if second.Store["T"].Len() != 2 || second.LastProcessed["db1"] != 17 {
		t.Errorf("loads share state: %d rows, ref′ %v", second.Store["T"].Len(), second.LastProcessed)
	}
}

// Version-1 envelopes (row-encoded relations) still load — old snapshots
// on disk survive the columnar upgrade.
func TestLoadVersion1RowEncoded(t *testing.T) {
	env := `{"version": 1,
		"store": {"T": {
			"schema": {"name":"T","attrs":[{"name":"a","type":"int"},{"name":"b","type":"string"}]},
			"sem": "bag",
			"rows": [{"t":[{"k":"int","i":1},{"k":"string","s":"x"}],"n":2},
			         {"t":[{"k":"int","i":2},{"k":"string","s":"y"}],"n":1}]}},
		"last_processed": {"db1": 17},
		"view_init": 5}`
	got, err := Load(strings.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	want := sampleSnapshot(t).Store["T"]
	if !got.Store["T"].Equal(want) {
		t.Errorf("v1 row-encoded store:\n%svs\n%s", got.Store["T"], want)
	}
	if got.LastProcessed["db1"] != 17 || got.ViewInit != 5 {
		t.Errorf("v1 metadata: ref′ %v, view_init %d", got.LastProcessed, got.ViewInit)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Errorf("garbage must fail")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Errorf("bad version must fail")
	}
	if _, err := Load(strings.NewReader(`{"version": 1, "store": {"T": {"schema": {"name":"T","attrs":[{"name":"a","type":"zzz"}]}, "sem":"bag"}}}`)); err == nil {
		t.Errorf("bad attr type must fail")
	}
	if err := Save(&bytes.Buffer{}, nil); err == nil {
		t.Errorf("nil snapshot must fail")
	}
}

func TestEmptyVectorDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, &core.StateSnapshot{Store: map[string]*relation.Relation{}}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastProcessed == nil {
		t.Errorf("lastProcessed must default to an empty vector")
	}
}

func TestAnnotationsRoundTrip(t *testing.T) {
	snap := sampleSnapshot(t)
	snap.Annotations = map[string]vdp.Annotation{
		"T": vdp.Ann([]string{"a"}, []string{"b"}),
		"G": vdp.Ann([]string{"a", "b"}, nil),
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	// The envelope carries the stable "m"/"v" form, not Mat's numbers.
	if s := buf.String(); !strings.Contains(s, `"annotations"`) || !strings.Contains(s, `"v"`) {
		t.Fatalf("envelope missing string-form annotations:\n%s", s)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !vdp.AnnotationsEqual(got.Annotations, snap.Annotations) {
		t.Errorf("annotations = %v, want %v", got.Annotations, snap.Annotations)
	}

	// Absent annotations stay nil (pre-adaptive envelopes).
	plain := sampleSnapshot(t)
	buf.Reset()
	if err := Save(&buf, plain); err != nil {
		t.Fatal(err)
	}
	plainEnv := buf.String() // Load drains the buffer; keep the text
	if strings.Contains(plainEnv, "annotations") {
		t.Fatal("nil annotations must be omitted from the envelope")
	}
	got, err = Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Annotations != nil {
		t.Errorf("annotations = %v, want nil", got.Annotations)
	}

	// Unknown materialization strings are rejected. Edit the headerless
	// JSON payload (still loadable via the v1/v2 path) — mutating the v3
	// framed form would trip the checksum before the decoder ever runs.
	payload := plainEnv[strings.IndexByte(plainEnv, '\n')+1:]
	verField := fmt.Sprintf(`"version": %d`, Version)
	bad := strings.Replace(payload, verField,
		verField+`, "annotations": {"T": {"a": "x"}}`, 1)
	if bad == payload {
		t.Fatalf("version field not found in envelope:\n%s", payload)
	}
	if _, err := Load(strings.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "unknown materialization") {
		t.Errorf("bad materialization accepted: %v", err)
	}
}
