package persist

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"squirrel/internal/core"
)

// Envelope v3 prepends a one-line header to the v2 JSON payload:
//
//	%SQRLSNAP v3 crc32c=%08x len=%d\n
//	{ ...v2-layout JSON... }
//
// The checksum (CRC32-Castagnoli over the payload bytes) and the exact
// payload length let Load reject truncated or bit-flipped snapshots with
// ErrCorrupt before JSON decoding ever sees them. Headerless input is
// assumed to be a v1/v2 envelope and decoded as before, so old snapshots
// still load.

// magic is the first token of a v3 snapshot header. The leading '%' can
// never begin a JSON document, so sniffing one byte distinguishes v3 from
// the headerless v1/v2 envelopes.
const magic = "%SQRLSNAP"

// ErrCorrupt reports a snapshot or WAL payload that is present but
// damaged: truncated mid-write, bit-flipped at rest, or checksum-mismatched.
// Distinct from decode errors on well-formed-but-unsupported input; callers
// (crash recovery in particular) match it with errors.Is to decide between
// "fall back to an older snapshot" and "refuse to start".
var ErrCorrupt = errors.New("persist: corrupt snapshot")

// castagnoli is the CRC32-C table shared by the snapshot envelope and the
// WAL record framing (internal/wal).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC32-Castagnoli checksum used by the v3 envelope and
// the WAL record framing.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// writeEnvelope frames payload with the v3 header.
func writeEnvelope(w io.Writer, payload []byte) error {
	if _, err := fmt.Fprintf(w, "%s v%d crc32c=%08x len=%d\n",
		magic, Version, Checksum(payload), len(payload)); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readEnvelope returns the verified payload of a v3 envelope, or the raw
// bytes of a headerless (v1/v2) one.
func readEnvelope(r io.Reader) ([]byte, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("%w: empty input", ErrCorrupt)
		}
		return nil, err
	}
	if first[0] != magic[0] {
		// Headerless v1/v2 envelope: the payload is the whole stream.
		return io.ReadAll(br)
	}
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	var ver int
	var sum uint32
	var n int
	// "%%" escapes the magic's leading '%' in the scan format.
	if _, err := fmt.Sscanf(header, "%%"+magic[1:]+" v%d crc32c=%x len=%d", &ver, &sum, &n); err != nil {
		return nil, fmt.Errorf("%w: malformed header %q", ErrCorrupt, header)
	}
	if ver < 3 || ver > Version || n < 0 {
		return nil, fmt.Errorf("persist: unsupported snapshot header version %d", ver)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: payload truncated (want %d bytes): %v", ErrCorrupt, n, err)
	}
	if got := Checksum(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (header %08x, payload %08x)", ErrCorrupt, sum, got)
	}
	return payload, nil
}

// SaveFile atomically replaces path with a snapshot of snap: the envelope
// is written to a temp file in the same directory, fsynced, renamed over
// path, and the directory fsynced — a crash at any instant leaves either
// the old complete snapshot or the new one, never a torn mix.
func SaveFile(path string, snap *core.StateSnapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return syncDir(dir)
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*core.StateSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Errors are surfaced: on filesystems that reject directory fsync the
// caller may choose to ignore them, but silent loss is not our call.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: sync %s: %w", dir, err)
	}
	return nil
}
