package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"squirrel/internal/core"
	"squirrel/internal/relation"
)

// saveBytes renders snap as a v3 envelope.
func saveBytes(t *testing.T, snap *core.StateSnapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsEmptyInput(t *testing.T) {
	_, err := Load(strings.NewReader(""))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty input: err = %v, want ErrCorrupt", err)
	}
}

func TestLoadRejectsTruncatedInput(t *testing.T) {
	enc := saveBytes(t, sampleSnapshot(t))
	// Every proper prefix must fail with ErrCorrupt — a truncated header,
	// a header with no payload, and a partial payload alike.
	for _, n := range []int{1, 4, len(enc) / 4, len(enc) / 2, len(enc) - 1} {
		_, err := Load(bytes.NewReader(enc[:n]))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("prefix of %d/%d bytes: err = %v, want ErrCorrupt", n, len(enc), err)
		}
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	enc := saveBytes(t, sampleSnapshot(t))
	header := bytes.IndexByte(enc, '\n') + 1
	// Flip one bit at a spread of payload offsets: all must be caught by
	// the checksum, none may surface as a confusing JSON decode error.
	for _, off := range []int{header, header + (len(enc)-header)/3, len(enc) - 2} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x10
		_, err := Load(bytes.NewReader(bad))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
	// A damaged header is corruption too.
	bad := append([]byte(nil), enc...)
	bad[2] ^= 0x01
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("header bit flip: err = %v, want ErrCorrupt", err)
	}
}

func TestLoadAcceptsHeaderlessV2(t *testing.T) {
	// Pre-v3 envelopes have no header line; Load must still read them.
	enc := saveBytes(t, sampleSnapshot(t))
	payload := enc[bytes.IndexByte(enc, '\n')+1:]
	snap, err := Load(bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("headerless payload: %v", err)
	}
	if len(snap.Store) == 0 {
		t.Fatalf("headerless payload decoded empty store")
	}
}

func TestLoadRejectsFutureHeaderVersion(t *testing.T) {
	enc := saveBytes(t, sampleSnapshot(t))
	bad := bytes.Replace(enc, []byte(" v3 "), []byte(" v9 "), 1)
	_, err := Load(bytes.NewReader(bad))
	if err == nil || errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("future header version: err = %v, want unsupported (not ErrCorrupt)", err)
	}
}

func TestSaveFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	first := sampleSnapshot(t)
	if err := SaveFile(path, first); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ViewInit != first.ViewInit {
		t.Fatalf("view init = %v, want %v", got.ViewInit, first.ViewInit)
	}

	// Overwrite with a bigger snapshot; the file must be replaced whole.
	second := sampleSnapshot(t)
	second.StoreVersion = first.StoreVersion + 7
	for _, rel := range second.Store {
		for i := 0; i < 64; i++ {
			rel.Add(relation.T(int64(1000+i), "filler"), 1)
		}
		break
	}
	if err := SaveFile(path, second); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.StoreVersion != second.StoreVersion {
		t.Fatalf("store version = %d, want %d", got.StoreVersion, second.StoreVersion)
	}

	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory litter after SaveFile: %v", names)
	}
}

func TestSaveFileKeepsOldSnapshotOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := SaveFile(path, sampleSnapshot(t)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A nil snapshot fails before any write: the old file must survive.
	if err := SaveFile(path, nil); err == nil {
		t.Fatal("nil snapshot must fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed SaveFile damaged the previous snapshot")
	}
}
