package checker

import (
	"strings"
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// tinyEnv builds a one-source, one-view environment: V = σ_{a>0} A.
func tinyEnv(t *testing.T) (Environment, *source.DB, *clock.Logical) {
	t.Helper()
	clk := &clock.Logical{}
	aSchema := relation.MustSchema("A", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindInt}}, "a")
	vSchema := relation.MustSchema("V", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindInt}}, "a")
	v, err := vdp.New(
		&vdp.Node{Name: "A", Schema: aSchema, Source: "db"},
		&vdp.Node{Name: "V", Schema: vSchema, Export: true, Ann: vdp.AllMaterialized(vSchema),
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "A"}},
				Where: algebra.Gt(algebra.A("a"), algebra.CInt(0)),
				Proj:  []string{"a", "b"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	db := source.NewDB("db", clk)
	a := relation.NewSet(aSchema)
	a.Insert(relation.T(1, 10))
	a.Insert(relation.T(-1, 20))
	if err := db.LoadRelation(a); err != nil {
		t.Fatal(err)
	}
	return Environment{
		VDP:     v,
		Sources: map[string]*source.DB{"db": db},
		Trace:   trace.NewRecorder(),
	}, db, clk
}

func vRel(t *testing.T, rows ...[2]int64) *relation.Relation {
	t.Helper()
	s := relation.MustSchema("V", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindInt}}, "a")
	r := relation.NewBag(s)
	for _, row := range rows {
		r.Insert(relation.T(row[0], row[1]))
	}
	return r
}

func TestCheckConsistencyAccepts(t *testing.T) {
	env, db, clk := tinyEnv(t)
	t0 := db.LastCommit() // == Born
	// A valid query: answer = ν at t0.
	env.Trace.RecordQuery(trace.QueryTxn{
		Committed: clk.Now(),
		Reflect:   clock.Vector{"db": t0},
		Export:    "V",
		Answer:    vRel(t, [2]int64{1, 10}),
	})
	// Commit an update, then a query reflecting it.
	d := delta.New()
	d.Insert("A", relation.T(2, 30))
	tc := db.MustApply(d)
	env.Trace.RecordQuery(trace.QueryTxn{
		Committed: clk.Now(),
		Reflect:   clock.Vector{"db": tc},
		Export:    "V",
		Answer:    vRel(t, [2]int64{1, 10}, [2]int64{2, 30}),
	})
	if err := env.CheckConsistency(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestCheckConsistencyRejectsWrongAnswer(t *testing.T) {
	env, db, clk := tinyEnv(t)
	env.Trace.RecordQuery(trace.QueryTxn{
		Committed: clk.Now(),
		Reflect:   clock.Vector{"db": db.LastCommit()},
		Export:    "V",
		Answer:    vRel(t, [2]int64{7, 7}), // bogus
	})
	if err := env.CheckConsistency(); err == nil || !strings.Contains(err.Error(), "validity") {
		t.Fatalf("expected validity violation, got %v", err)
	}
}

func TestCheckConsistencyRejectsFutureReflect(t *testing.T) {
	env, db, clk := tinyEnv(t)
	now := clk.Now()
	_ = db
	env.Trace.RecordQuery(trace.QueryTxn{
		Committed: now,
		Reflect:   clock.Vector{"db": now + 100},
		Export:    "V",
		Answer:    vRel(t, [2]int64{1, 10}),
	})
	if err := env.CheckConsistency(); err == nil || !strings.Contains(err.Error(), "future") {
		t.Fatalf("expected chronology violation, got %v", err)
	}
}

func TestCheckConsistencyRejectsRegression(t *testing.T) {
	env, db, clk := tinyEnv(t)
	t0 := db.LastCommit()
	d := delta.New()
	d.Insert("A", relation.T(2, 30))
	tc := db.MustApply(d)
	env.Trace.RecordQuery(trace.QueryTxn{
		Committed: clk.Now(), Reflect: clock.Vector{"db": tc}, Export: "V",
		Answer: vRel(t, [2]int64{1, 10}, [2]int64{2, 30}),
	})
	env.Trace.RecordQuery(trace.QueryTxn{
		Committed: clk.Now(), Reflect: clock.Vector{"db": t0}, Export: "V",
		Answer: vRel(t, [2]int64{1, 10}),
	})
	if err := env.CheckConsistency(); err == nil || !strings.Contains(err.Error(), "order") {
		t.Fatalf("expected order violation, got %v", err)
	}
}

func TestCheckConsistencyProjectionAndCondition(t *testing.T) {
	env, db, clk := tinyEnv(t)
	env.Trace.RecordQuery(trace.QueryTxn{
		Committed: clk.Now(),
		Reflect:   clock.Vector{"db": db.LastCommit()},
		Export:    "V",
		Attrs:     []string{"b"},
		Cond:      algebra.Gt(algebra.A("b"), algebra.CInt(5)),
		Answer: func() *relation.Relation {
			s := relation.MustSchema("V", []relation.Attribute{{Name: "b", Type: relation.KindInt}})
			r := relation.NewBag(s)
			r.Insert(relation.T(10))
			return r
		}(),
	})
	if err := env.CheckConsistency(); err != nil {
		t.Fatalf("projected query rejected: %v", err)
	}
}

func TestUpdateReflectMonotonicity(t *testing.T) {
	env, _, clk := tinyEnv(t)
	env.Trace.RecordUpdate(trace.UpdateTxn{Committed: clk.Now(), Reflect: clock.Vector{"db": 5}})
	env.Trace.RecordUpdate(trace.UpdateTxn{Committed: clk.Now(), Reflect: clock.Vector{"db": 3}})
	if err := env.CheckConsistency(); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("expected ref′ regression, got %v", err)
	}
}

func TestCheckFreshness(t *testing.T) {
	env, db, _ := tinyEnv(t)
	t0 := db.LastCommit()
	// Commit at a known time: data not reflected by the query below.
	d := delta.New()
	d.Insert("A", relation.T(5, 50))
	tc := db.MustApply(d)

	env.Trace.RecordQuery(trace.QueryTxn{
		Committed: tc + 10, Reflect: clock.Vector{"db": t0}, Export: "V", Answer: vRel(t),
	})
	worst, err := env.CheckFreshness(clock.Vector{"db": 15})
	if err != nil {
		t.Fatalf("within bound: %v", err)
	}
	// Staleness = committed − first unreflected commit = 10.
	if worst["db"] != 10 {
		t.Errorf("worst staleness = %d, want 10", worst["db"])
	}
	if _, err := env.CheckFreshness(clock.Vector{"db": 5}); err == nil {
		t.Errorf("bound 5 must be violated")
	}
	// Sources without bounds are unconstrained.
	if _, err := env.CheckFreshness(clock.Vector{}); err != nil {
		t.Errorf("no bounds: %v", err)
	}

	// An idle source is perfectly fresh no matter how old the recorded
	// reflect component is.
	env2, _, _ := tinyEnv(t)
	env2.Trace.RecordQuery(trace.QueryTxn{
		Committed: 10000, Reflect: clock.Vector{"db": 1}, Export: "V", Answer: vRel(t),
	})
	worst2, err := env2.CheckFreshness(clock.Vector{"db": 1})
	if err != nil || worst2["db"] != 0 {
		t.Errorf("idle source must be fresh: worst=%v err=%v", worst2, err)
	}
	// Unknown sources in the reflect vector are an error.
	env3, _, _ := tinyEnv(t)
	env3.Trace.RecordQuery(trace.QueryTxn{
		Committed: 10, Reflect: clock.Vector{"ghost": 1}, Export: "V", Answer: vRel(t),
	})
	if _, err := env3.CheckFreshness(nil); err == nil {
		t.Errorf("unknown source must error")
	}
}

func TestFigure2PseudoButNotConsistent(t *testing.T) {
	sc, table := Figure2Scenario()
	pseudo, err := sc.PseudoConsistent()
	if err != nil {
		t.Fatal(err)
	}
	if !pseudo {
		t.Fatalf("Figure 2 scenario must be pseudo-consistent\n%s", table)
	}
	consistent, err := sc.Consistent()
	if err != nil {
		t.Fatal(err)
	}
	if consistent {
		t.Fatalf("Figure 2 scenario must NOT be consistent\n%s", table)
	}
	if !strings.Contains(table, "t3    {R(c,a)}    {S(b)}") {
		t.Errorf("rendered table mismatch:\n%s", table)
	}
}

func TestScenarioConsistentPositive(t *testing.T) {
	// A well-behaved scenario (view tracks the source exactly) is both
	// pseudo-consistent and consistent.
	sc, _ := Figure2Scenario()
	wellBehaved := sc
	wellBehaved.ViewAt = func(t clock.Time) *relation.Relation {
		states := map[string]*relation.Relation{"DB": sc.SourceAt("DB", t)}
		v, _ := sc.Nu(states)
		return v
	}
	pseudo, err := wellBehaved.PseudoConsistent()
	if err != nil || !pseudo {
		t.Fatalf("pseudo: %v %v", pseudo, err)
	}
	consistent, err := wellBehaved.Consistent()
	if err != nil || !consistent {
		t.Fatalf("consistent: %v %v", consistent, err)
	}
}

func TestScenarioInvalidView(t *testing.T) {
	// A view state matching NO source state fails both properties.
	sc, _ := Figure2Scenario()
	bad := sc
	bogus := relation.NewSet(relation.MustSchema("S", []relation.Attribute{
		{Name: "a2", Type: relation.KindString}}))
	bogus.Insert(relation.T("zzz"))
	bad.ViewAt = func(t clock.Time) *relation.Relation { return bogus }
	if ok, _ := bad.PseudoConsistent(); ok {
		t.Errorf("bogus view cannot be pseudo-consistent")
	}
	if ok, _ := bad.Consistent(); ok {
		t.Errorf("bogus view cannot be consistent")
	}
}
