package checker

import (
	"fmt"

	"squirrel/internal/clock"
	"squirrel/internal/relation"
)

// Scenario is an explicit small integration environment — a table of
// source states and view states over a handful of instants — used to
// decide pseudo-consistency and consistency exactly, by search over
// candidate reflect functions. This is the machinery behind the Figure 2 /
// Remark 3.1 reproduction: the paper's six-step scenario is
// pseudo-consistent but NOT consistent.
type Scenario struct {
	// Times are the observation instants, strictly increasing.
	Times []clock.Time
	// Sources lists the source database names (defines vector order).
	Sources []string
	// Candidates are the candidate state times per source (typically its
	// commit instants).
	Candidates map[string][]clock.Time
	// SourceAt returns state(DB_src, t).
	SourceAt func(src string, t clock.Time) *relation.Relation
	// Nu is the view definition ν applied to a source-state vector.
	Nu func(states map[string]*relation.Relation) (*relation.Relation, error)
	// ViewAt returns the observed state(V, t).
	ViewAt func(t clock.Time) *relation.Relation
}

// candidateVectors returns every candidate time vector whose ν-image
// equals the observed view state at time t. If chronological is set, only
// vectors with every component ≤ t qualify (the consistency definition's
// chronology condition; pseudo-consistency omits it).
func (s Scenario) candidateVectors(t clock.Time, chronological bool) ([]clock.Vector, error) {
	want := s.ViewAt(t)
	var out []clock.Vector
	vec := make(clock.Vector, len(s.Sources))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(s.Sources) {
			states := make(map[string]*relation.Relation, len(s.Sources))
			for _, src := range s.Sources {
				states[src] = s.SourceAt(src, vec[src])
			}
			got, err := s.Nu(states)
			if err != nil {
				return err
			}
			if got.Equal(want) {
				out = append(out, vec.Clone())
			}
			return nil
		}
		src := s.Sources[i]
		for _, ct := range s.Candidates[src] {
			if chronological && ct > t {
				continue
			}
			vec[src] = ct
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// PseudoConsistent decides the Remark 3.1 property: for every pair
// t1 ≤ t2 of observation instants there exist candidate vectors
// t̄1′ ≤ t̄2′ whose ν-images match the observed view states.
func (s Scenario) PseudoConsistent() (bool, error) {
	cands := make([][]clock.Vector, len(s.Times))
	for i, t := range s.Times {
		cs, err := s.candidateVectors(t, false)
		if err != nil {
			return false, err
		}
		if len(cs) == 0 {
			return false, nil // validity fails outright at t
		}
		cands[i] = cs
	}
	for i := range s.Times {
		for j := i; j < len(s.Times); j++ {
			ok := false
		pair:
			for _, c1 := range cands[i] {
				for _, c2 := range cands[j] {
					if c1.LessEq(c2) {
						ok = true
						break pair
					}
				}
			}
			if !ok {
				return false, nil
			}
		}
	}
	return true, nil
}

// Consistent decides the §3 consistency definition restricted to the
// observation instants: does a single chronological, order-preserving
// reflect selection exist? (States are piecewise constant between
// observation instants, so this is exact for scenario tables.)
func (s Scenario) Consistent() (bool, error) {
	// feasible[i] ⊆ candidates(t_i): vectors extendable from t_1..t_i.
	var feasible []clock.Vector
	for i, t := range s.Times {
		cs, err := s.candidateVectors(t, true)
		if err != nil {
			return false, err
		}
		var next []clock.Vector
		for _, c := range cs {
			if i == 0 {
				next = append(next, c)
				continue
			}
			for _, prev := range feasible {
				if prev.LessEq(c) {
					next = append(next, c)
					break
				}
			}
		}
		if len(next) == 0 {
			return false, nil
		}
		feasible = next
	}
	return true, nil
}

// Figure2Scenario builds the paper's exact Figure 2 table: one source
// database holding binary relation R, view S = π₂(R), six instants.
// It returns the scenario plus a rendering of the table for display.
func Figure2Scenario() (Scenario, string) {
	rSchema := relation.MustSchema("R", []relation.Attribute{
		{Name: "a1", Type: relation.KindString}, {Name: "a2", Type: relation.KindString}})
	sSchema := relation.MustSchema("S", []relation.Attribute{
		{Name: "a2", Type: relation.KindString}})
	mkR := func(x, y string) *relation.Relation {
		r := relation.NewSet(rSchema)
		r.Insert(relation.T(x, y))
		return r
	}
	mkS := func(vals ...string) *relation.Relation {
		r := relation.NewSet(sSchema)
		for _, v := range vals {
			r.Insert(relation.T(v))
		}
		return r
	}
	rStates := map[clock.Time]*relation.Relation{
		1: mkR("a", "a"), 2: mkR("b", "b"), 3: mkR("c", "a"),
		4: mkR("d", "a"), 5: mkR("e", "a"), 6: mkR("f", "a"),
	}
	vStates := map[clock.Time]*relation.Relation{
		1: mkS("a"), 2: mkS("a"), 3: mkS("b"),
		4: mkS("a"), 5: mkS("b"), 6: mkS("a"),
	}
	sc := Scenario{
		Times:      []clock.Time{1, 2, 3, 4, 5, 6},
		Sources:    []string{"DB"},
		Candidates: map[string][]clock.Time{"DB": {1, 2, 3, 4, 5, 6}},
		SourceAt:   func(_ string, t clock.Time) *relation.Relation { return rStates[t] },
		Nu: func(states map[string]*relation.Relation) (*relation.Relation, error) {
			r := states["DB"]
			out := relation.NewSet(sSchema)
			r.Each(func(t relation.Tuple, _ int) bool {
				out.Insert(relation.Tuple{t[1]})
				return true
			})
			return out, nil
		},
		ViewAt: func(t clock.Time) *relation.Relation { return vStates[t] },
	}
	table := "time  state(DB)   state(V)\n"
	for _, t := range sc.Times {
		rRow := rStates[t].Rows()[0].Tuple
		var vVals string
		for _, row := range vStates[t].Rows() {
			vVals += row.Tuple[0].AsString()
		}
		table += fmt.Sprintf("t%d    {R(%s,%s)}    {S(%s)}\n",
			t, rRow[0].AsString(), rRow[1].AsString(), vVals)
	}
	return sc, table
}
