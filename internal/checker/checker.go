// Package checker verifies the formal correctness notions of §3 against
// recorded mediator traces: consistency (validity, chronology, order
// preservation via the constructed ref function), guaranteed freshness
// within a bound vector f̄ (Theorem 7.2), and — for small explicit
// scenarios like Figure 2 — exact pseudo-consistency and consistency
// decision by search over candidate reflect functions (Remark 3.1).
package checker

import (
	"fmt"
	"sort"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// Environment binds a recorded trace to the integration environment that
// produced it: the VDP (ν) and the source databases (whose commit logs
// replay any historical state).
type Environment struct {
	VDP     *vdp.VDP
	Sources map[string]*source.DB
	Trace   *trace.Recorder
}

// CheckConsistency verifies the §3 consistency definition on the recorded
// query transactions:
//
//	(a) validity — each answer equals π σ of ν(state(DB, ref(t)));
//	(b) chronology — ref(t) ≤ t;
//	(c) order preservation — ref is monotone across transactions.
//
// It returns nil if every recorded transaction satisfies all three.
func (e Environment) CheckConsistency() error {
	queries := e.Trace.Queries()
	sort.Slice(queries, func(i, j int) bool { return queries[i].Committed < queries[j].Committed })

	for i, q := range queries {
		// (b) chronology.
		if !q.Reflect.AllAtOrBefore(q.Committed) {
			return fmt.Errorf("checker: query at t=%d forecasts the future: ref=%v", q.Committed, q.Reflect)
		}
		// (a) validity.
		var answer *relation.Relation
		if q.Multi != nil {
			states, err := e.evalAllAt(q.Reflect)
			if err != nil {
				return err
			}
			answer, err = q.Multi.Eval(algebra.MapCatalog(states))
			if err != nil {
				return err
			}
		} else {
			want, err := e.evalViewAt(q.Reflect, q.Export)
			if err != nil {
				return err
			}
			answer, err = projectSelect(want, q.Export, q.Attrs, q)
			if err != nil {
				return err
			}
		}
		if !q.Answer.Equal(answer) {
			return fmt.Errorf("checker: validity violated at t=%d (export %s, ref=%v):\ngot\n%swant\n%s",
				q.Committed, q.Export, q.Reflect, q.Answer, answer)
		}
		// (c) order preservation against the previous transaction.
		if i > 0 {
			prev := queries[i-1].Reflect
			for src, pt := range prev {
				if ct, ok := q.Reflect[src]; ok && ct < pt {
					return fmt.Errorf("checker: order preservation violated: source %s went from %d back to %d",
						src, pt, ct)
				}
			}
		}
	}
	// ref′ of update transactions must be monotone too.
	updates := e.Trace.Updates()
	sort.Slice(updates, func(i, j int) bool { return updates[i].Committed < updates[j].Committed })
	for i := 1; i < len(updates); i++ {
		for src, pt := range updates[i-1].Reflect {
			if ct, ok := updates[i].Reflect[src]; ok && ct < pt {
				return fmt.Errorf("checker: update ref′ regressed for source %s: %d -> %d", src, pt, ct)
			}
		}
	}
	return nil
}

// evalAllAt evaluates ν over the source states at the given time vector,
// returning every node's state.
func (e Environment) evalAllAt(ref clock.Vector) (map[string]*relation.Relation, error) {
	leaves := make(map[string]*relation.Relation)
	for _, leaf := range e.VDP.Leaves() {
		src := e.VDP.Node(leaf).Source
		db, ok := e.Sources[src]
		if !ok {
			return nil, fmt.Errorf("checker: no source database %q", src)
		}
		t, ok := ref[src]
		if !ok {
			return nil, fmt.Errorf("checker: ref vector missing source %q", src)
		}
		st, err := db.StateAt(leaf, t)
		if err != nil {
			return nil, err
		}
		leaves[leaf] = st
	}
	return e.VDP.EvalAll(vdp.ResolverFromCatalog(leaves))
}

// evalViewAt evaluates ν over the source states at the given time vector
// and returns the named export relation.
func (e Environment) evalViewAt(ref clock.Vector, export string) (*relation.Relation, error) {
	states, err := e.evalAllAt(ref)
	if err != nil {
		return nil, err
	}
	out, ok := states[export]
	if !ok {
		return nil, fmt.Errorf("checker: unknown export %q", export)
	}
	return out, nil
}

func projectSelect(rel *relation.Relation, name string, attrs []string, q trace.QueryTxn) (*relation.Relation, error) {
	if attrs == nil {
		attrs = rel.Schema().AttrNames()
	}
	schema, err := rel.Schema().Project(name, attrs)
	if err != nil {
		return nil, err
	}
	positions, err := rel.Schema().Positions(attrs)
	if err != nil {
		return nil, err
	}
	out := relation.NewBag(schema)
	var evalErr error
	rel.Each(func(t relation.Tuple, c int) bool {
		ok, err := evalCond(q, rel.Schema(), t)
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			out.Add(t.Project(positions), c)
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

func evalCond(q trace.QueryTxn, schema *relation.Schema, t relation.Tuple) (bool, error) {
	if q.Cond == nil {
		return true, nil
	}
	v, err := q.Cond.Eval(condEnv{schema: schema, tuple: t})
	if err != nil {
		return false, err
	}
	if v.Kind() != relation.KindBool {
		return false, fmt.Errorf("checker: non-boolean condition")
	}
	return v.AsBool(), nil
}

type condEnv struct {
	schema *relation.Schema
	tuple  relation.Tuple
}

func (e condEnv) Lookup(name string) (relation.Value, bool) {
	i, ok := e.schema.AttrIndex(name)
	if !ok {
		return relation.Null(), false
	}
	return e.tuple[i], true
}

// CheckFreshness verifies Theorem 7.2's guarantee. The staleness of a
// query at time t with respect to source i is the age of the oldest
// source commit NOT reflected by the answer: t − min{c : ref(t)_i < c ≤ t,
// c a commit time of DB_i}, or zero when everything committed by t is
// reflected. (The raw t − ref_i overstates staleness when a source is
// idle: the state is unchanged on (ref_i, t], so the answer reflects the
// current state; the theorem bounds how long committed data can remain
// unreflected.) Staleness must stay within bounds_i for every source with
// a bound. Returns the worst observed staleness per source.
func (e Environment) CheckFreshness(bounds clock.Vector) (worst clock.Vector, err error) {
	worst = make(clock.Vector)
	for _, q := range e.Trace.Queries() {
		for src, rt := range q.Reflect {
			db, ok := e.Sources[src]
			if !ok {
				return worst, fmt.Errorf("checker: no source database %q", src)
			}
			first, ok := db.FirstCommitAfter(rt)
			if !ok || first > q.Committed {
				continue // nothing unreflected: perfectly fresh
			}
			stale := q.Committed - first
			if stale > worst[src] {
				worst[src] = stale
			}
			if b, ok := bounds[src]; ok && stale > b {
				return worst, fmt.Errorf("checker: freshness violated for %s at t=%d: staleness %d > bound %d",
					src, q.Committed, stale, b)
			}
		}
	}
	return worst, nil
}
