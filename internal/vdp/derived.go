package vdp

import (
	"fmt"
	"sort"

	"squirrel/internal/algebra"
)

// Requirement describes a temporary relation to be constructed (§6.3): the
// projection π_Attrs σ_Cond of node Rel. Attrs always covers every
// attribute referenced by Cond that belongs to Rel, so the temporary is
// self-contained. Temporaries are supersets of what each requester needs —
// requesters re-apply their own conditions — which is what makes the
// merge step (2b) of the VAP algorithm safe.
type Requirement struct {
	Rel   string
	Attrs map[string]bool
	Cond  algebra.Expr
}

// NewRequirement builds a requirement, closing Attrs over Cond's
// attributes (restricted to the node's schema).
func NewRequirement(v *VDP, rel string, attrs []string, cond algebra.Expr) (Requirement, error) {
	n := v.Node(rel)
	if n == nil {
		return Requirement{}, fmt.Errorf("vdp: requirement for unknown node %q", rel)
	}
	set := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if !n.Schema.HasAttr(a) {
			return Requirement{}, fmt.Errorf("vdp: requirement for %q mentions unknown attribute %q", rel, a)
		}
		set[a] = true
	}
	for a := range algebra.Attrs(cond) {
		if n.Schema.HasAttr(a) {
			set[a] = true
		}
	}
	return Requirement{Rel: rel, Attrs: set, Cond: cond}, nil
}

// AttrList returns the required attributes in the node's schema order.
func (r Requirement) AttrList(v *VDP) []string {
	n := v.Node(r.Rel)
	var out []string
	for _, a := range n.Schema.AttrNames() {
		if r.Attrs[a] {
			out = append(out, a)
		}
	}
	return out
}

// merge widens the requirement to also cover o (union of attribute sets,
// disjunction of conditions) — step (2b) of the VAP algorithm.
func (r *Requirement) merge(o Requirement) {
	for a := range o.Attrs {
		r.Attrs[a] = true
	}
	r.Cond = algebra.Disj(r.Cond, o.Cond)
}

// NeedsVirtual reports whether the requirement touches at least one
// virtual attribute of its node, i.e. whether a temporary must actually be
// constructed rather than served from the store.
func (r Requirement) NeedsVirtual(v *VDP) bool {
	n := v.Node(r.Rel)
	if n == nil || n.IsLeaf() {
		return false
	}
	for a := range r.Attrs {
		if !n.Ann.IsMaterialized(a) {
			return true
		}
	}
	return false
}

// DerivedFrom implements the derived_from function of §6.3: given a
// requirement for π_A σ_f (node), it returns the requirements on the
// node's children from which the temporary can be constructed. Conjuncts
// of f that are expressible over a single child are pushed into that
// child's condition; everything else is handled by re-evaluation at the
// node level, with the needed attributes added to the child requirement.
func (v *VDP) DerivedFrom(req Requirement) ([]Requirement, error) {
	n := v.Node(req.Rel)
	if n == nil {
		return nil, fmt.Errorf("vdp: derived_from on unknown node %q", req.Rel)
	}
	if n.IsLeaf() {
		return nil, fmt.Errorf("vdp: derived_from on leaf %q", req.Rel)
	}
	switch d := n.Def.(type) {
	case SPJ:
		return v.derivedFromSPJ(n, d, req)
	case UnionDef:
		return v.derivedFromBranches(n, d.L, d.R, req, false)
	case DiffDef:
		return v.derivedFromBranches(n, d.L, d.R, req, true)
	}
	return nil, fmt.Errorf("vdp: node %q has unsupported definition type %T", n.Name, n.Def)
}

func (v *VDP) derivedFromSPJ(n *Node, d SPJ, req Requirement) ([]Requirement, error) {
	joinAttrs := algebra.Attrs(d.JoinCond)
	whereAttrs := algebra.Attrs(d.Where)
	byRel := make(map[string]*Requirement)
	var order []string
	for _, in := range d.Inputs {
		child := v.Node(in.Rel)
		inputAttrs := in.Proj
		if len(inputAttrs) == 0 {
			inputAttrs = child.Schema.AttrNames()
		}
		avail := make(map[string]bool, len(inputAttrs))
		for _, a := range inputAttrs {
			avail[a] = true
		}
		// Conjuncts of the request condition local to this child can be
		// pushed down; the rest contribute their attributes so the node-
		// level re-evaluation can apply them.
		pushed, _ := algebra.ConjunctsOver(req.Cond, avail)

		attrs := make([]string, 0, len(inputAttrs))
		want := make(map[string]bool)
		for a := range req.Attrs { // A ∩ attr(S_i)
			if avail[a] {
				want[a] = true
			}
		}
		for a := range joinAttrs { // D_i: join condition attributes
			if avail[a] {
				want[a] = true
			}
		}
		for a := range whereAttrs { // D_i: outer selection attributes
			if avail[a] {
				want[a] = true
			}
		}
		for a := range algebra.Attrs(req.Cond) { // residual condition attrs
			if avail[a] {
				want[a] = true
			}
		}
		for a := range algebra.Attrs(in.Where) { // local selection attrs
			if child.Schema.HasAttr(a) {
				want[a] = true
			}
		}
		for _, a := range child.Schema.AttrNames() {
			if want[a] {
				attrs = append(attrs, a)
			}
		}
		childReq, err := NewRequirement(v, in.Rel, attrs, algebra.Conj(in.Where, pushed))
		if err != nil {
			return nil, err
		}
		if existing, ok := byRel[in.Rel]; ok {
			existing.merge(childReq)
		} else {
			byRel[in.Rel] = &childReq
			order = append(order, in.Rel)
		}
	}
	out := make([]Requirement, 0, len(order))
	for _, rel := range order {
		out = append(out, *byRel[rel])
	}
	return out, nil
}

func (v *VDP) derivedFromBranches(n *Node, l, r Branch, req Requirement, isDiff bool) ([]Requirement, error) {
	var out []Requirement
	nodeAttrs := n.Schema.AttrNames()
	for _, b := range []Branch{l, r} {
		// Positional rename: node attribute i corresponds to branch
		// projection attribute i.
		toBranch := make(map[string]string, len(nodeAttrs))
		for i, na := range nodeAttrs {
			toBranch[na] = b.Proj[i]
		}
		want := make(map[string]bool)
		if isDiff {
			// Difference needs whole branch tuples for membership tests
			// (the ∪C of case (4)).
			for _, p := range b.Proj {
				want[p] = true
			}
		} else {
			for a := range req.Attrs {
				want[toBranch[a]] = true
			}
		}
		for a := range algebra.Attrs(b.Where) {
			want[a] = true
		}
		// Selection on node attributes distributes through union and
		// difference, so the whole condition pushes down (renamed).
		pushedCond := algebra.SubstAttrs(req.Cond, toBranch)
		child := v.Node(b.Rel)
		var attrs []string
		for _, a := range child.Schema.AttrNames() {
			if want[a] {
				attrs = append(attrs, a)
			}
		}
		childReq, err := NewRequirement(v, b.Rel, attrs, algebra.Conj(b.Where, pushedCond))
		if err != nil {
			return nil, err
		}
		out = append(out, childReq)
	}
	return out, nil
}

// PlanTemporaries runs phase one of the VAP algorithm (§6.3): starting
// from the initial requirements (queries or IUP needs), it walks the VDP
// top-down, expanding every requirement that touches virtual data through
// derived_from, merging requirements on the same node, and returns the
// full set of temporaries to construct, keyed by node, in topological
// (children-first) construction order. Requirements served entirely by
// materialized data are returned too (the construction phase reads them
// from the store); leaves are never returned — leaf-parent temporaries are
// constructed by polling the owning source directly.
func (v *VDP) PlanTemporaries(initial []Requirement) ([]Requirement, error) {
	pending := make(map[string]*Requirement)
	for _, req := range initial {
		if req.Attrs == nil {
			return nil, fmt.Errorf("vdp: requirement for %q has nil attribute set", req.Rel)
		}
		r := req
		if existing, ok := pending[req.Rel]; ok {
			existing.merge(r)
		} else {
			cp := Requirement{Rel: r.Rel, Attrs: copySet(r.Attrs), Cond: r.Cond}
			pending[req.Rel] = &cp
		}
	}
	// Process in reverse topological order (parents before children), the
	// paper's topologically sorted Unprocessed list.
	order := v.Order()
	var processed []Requirement
	for i := len(order) - 1; i >= 0; i-- {
		name := order[i]
		req, ok := pending[name]
		if !ok {
			continue
		}
		n := v.Node(name)
		if n.IsLeaf() {
			return nil, fmt.Errorf("vdp: requirement directly on leaf %q (query leaves through their parents)", name)
		}
		processed = append(processed, *req)
		if !req.NeedsVirtual(v) {
			// Entirely materialized: served from the store; no recursion.
			continue
		}
		children, err := v.DerivedFrom(*req)
		if err != nil {
			return nil, err
		}
		for _, cr := range children {
			child := v.Node(cr.Rel)
			if child.IsLeaf() {
				// Constructed by polling; the leaf-parent requirement
				// (already recorded) carries everything needed.
				continue
			}
			if existing, ok := pending[cr.Rel]; ok {
				existing.merge(cr)
			} else {
				cp := Requirement{Rel: cr.Rel, Attrs: copySet(cr.Attrs), Cond: cr.Cond}
				pending[cr.Rel] = &cp
			}
		}
	}
	// Construction happens bottom-up: reverse the processed list into
	// topological order.
	sort.SliceStable(processed, func(i, j int) bool {
		return v.topoIndex(processed[i].Rel) < v.topoIndex(processed[j].Rel)
	})
	return processed, nil
}

func (v *VDP) topoIndex(name string) int { return v.TopoIndex(name) }

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k, vv := range s {
		out[k] = vv
	}
	return out
}

// IsLeafParent reports whether the node is a leaf-parent (its single child
// is a leaf).
func (v *VDP) IsLeafParent(name string) bool {
	n := v.Node(name)
	if n == nil || n.IsLeaf() {
		return false
	}
	kids := v.Children(name)
	return len(kids) == 1 && v.Node(kids[0]).IsLeaf()
}

// PollSpec describes the query a temporary for a leaf-parent node sends to
// the owning source database: π_Attrs σ_Cond of leaf relation Leaf at
// source Source. Attrs are leaf attributes; Cond is over leaf attributes.
type PollSpec struct {
	Source string
	Leaf   string
	Attrs  []string
	Cond   algebra.Expr
}

// LeafParentPollSpec computes the source query needed to construct the
// temporary for a leaf-parent requirement. Since leaf-parent definitions
// are π σ over the leaf with no renaming, the requirement's attributes and
// condition translate directly; the def's own selection is conjoined so
// only relevant tuples travel.
func (v *VDP) LeafParentPollSpec(req Requirement) (PollSpec, error) {
	n := v.Node(req.Rel)
	if n == nil || !v.IsLeafParent(req.Rel) {
		return PollSpec{}, fmt.Errorf("vdp: %q is not a leaf-parent node", req.Rel)
	}
	d := n.Def.(SPJ)
	in := d.Inputs[0]
	leaf := v.Node(in.Rel)
	cond := algebra.Conj(in.Where, d.Where, req.Cond)
	want := copySet(req.Attrs)
	for a := range algebra.Attrs(cond) {
		if leaf.Schema.HasAttr(a) {
			want[a] = true
		}
	}
	var attrs []string
	for _, a := range leaf.Schema.AttrNames() {
		if want[a] {
			attrs = append(attrs, a)
		}
	}
	return PollSpec{Source: leaf.Source, Leaf: leaf.Name, Attrs: attrs, Cond: cond}, nil
}

// KernelRequirements performs phase (a) of the general IUP algorithm
// (§6.4): it simulates the kernel run for an update touching the given
// leaf relations and returns the requirements on node STATES that the
// §5.2 rules will read — sibling operands of updated children, and (for
// difference nodes and self-joins) the updated child's own pre-update
// state. The mediator materializes temporaries for exactly those
// requirements that touch virtual attributes.
func (v *VDP) KernelRequirements(dirtyLeaves []string) ([]Requirement, error) {
	dirty := make(map[string]bool, len(dirtyLeaves))
	for _, l := range dirtyLeaves {
		n := v.Node(l)
		if n == nil || !n.IsLeaf() {
			return nil, fmt.Errorf("vdp: %q is not a leaf", l)
		}
		dirty[l] = true
	}
	needs := make(map[string]*Requirement)
	record := func(rel string, attrs []string, cond algebra.Expr) error {
		if v.Node(rel).IsLeaf() {
			// Leaf states are never read by rules (leaf-parents are
			// single-input selections/projections).
			return nil
		}
		req, err := NewRequirement(v, rel, attrs, cond)
		if err != nil {
			return err
		}
		if existing, ok := needs[rel]; ok {
			existing.merge(req)
		} else {
			needs[rel] = &req
		}
		return nil
	}

	for _, name := range v.order {
		n := v.Node(name)
		if n.IsLeaf() {
			continue
		}
		// Rules only fire toward nodes from which materialized data is
		// reachable; virtual-only subgraphs are rebuilt on demand by the
		// VAP instead (§6.4's note that update-transaction polls always
		// target hybrid contributors depends on this).
		if !v.MaterializationRelevant(name) {
			continue
		}
		dirtyKids := 0
		for _, c := range v.Children(name) {
			if dirty[c] {
				dirtyKids++
			}
		}
		if dirtyKids == 0 {
			continue
		}
		dirty[name] = true
		switch d := n.Def.(type) {
		case SPJ:
			selfJoin := make(map[string]int)
			for _, in := range d.Inputs {
				selfJoin[in.Rel]++
			}
			for _, in := range d.Inputs {
				attrs := in.Proj
				if len(attrs) == 0 {
					attrs = v.Node(in.Rel).Schema.AttrNames()
				}
				// The rule for a dirty child reads every OTHER occurrence's
				// state; an occurrence's state is therefore needed if some
				// other input is dirty, or its own relation is dirty and
				// self-joined.
				needed := false
				for _, other := range d.Inputs {
					if other.Rel != in.Rel && dirty[other.Rel] {
						needed = true
					}
				}
				if dirty[in.Rel] && selfJoin[in.Rel] > 1 {
					needed = true
				}
				if needed {
					withWhere := append([]string(nil), attrs...)
					if err := record(in.Rel, withWhere, in.Where); err != nil {
						return nil, err
					}
				}
			}
		case UnionDef:
			// Pure pass-through: no states read.
		case DiffDef:
			// Each rule reads the updated branch's own pre-update bag (for
			// set-level deltas) and the co-branch's set state; since at
			// least one branch is dirty, both branch states are needed.
			for _, b := range []Branch{d.L, d.R} {
				if err := record(b.Rel, b.Proj, b.Where); err != nil {
					return nil, err
				}
			}
		}
	}
	var out []Requirement
	for _, name := range v.order {
		if req, ok := needs[name]; ok {
			out = append(out, *req)
		}
	}
	return out, nil
}
