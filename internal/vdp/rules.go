package vdp

import (
	"fmt"

	"squirrel/internal/algebra"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// This file implements the update-propagation rules of §5.2. Each edge
// (parent, child) of the VDP carries a rule computing Δparent from Δchild.
// The rules read sibling states through a Resolver; the IUP's "process
// node" discipline (§6.4) guarantees that already-processed siblings
// resolve to their new states and unprocessed siblings to their old
// states, which is exactly what makes the combined contributions exact
// (avoiding the missed ΔR'⋈ΔS' of Example 6.1).
//
// For self-joins (the same child appearing in several SPJ input
// occurrences, footnote 2 of the paper), the occurrences are differenced
// sequentially inside Propagate: occurrence i is evaluated with occurrences
// j<i at the child's new state and j>i at its old state.

// Propagate computes the contribution to Δn caused by dc, an incremental
// update to child relation `child` of node n, following the rule attached
// to the edge (n, child). dc must be expressed over the child's full
// schema. The returned delta is over n's full schema.
func (v *VDP) Propagate(node, child string, dc *delta.RelDelta, resolve Resolver) (*delta.RelDelta, error) {
	return v.propagate(node, child, dc, resolve, false)
}

// PropagateNaive is the textbook rule of §5.2 applied verbatim: every
// operand, including other occurrences of the updated child, is read at
// whatever state the resolver currently reports, with no sequencing
// discipline for self-joins. When the caller also resolves every sibling
// to its OLD state while several children change in one transaction, this
// reproduces the missed ΔR'⋈ΔS' contribution of Example 6.1. It exists as
// a falsifiable baseline for experiment E6.
func (v *VDP) PropagateNaive(node, child string, dc *delta.RelDelta, resolve Resolver) (*delta.RelDelta, error) {
	return v.propagate(node, child, dc, resolve, true)
}

func (v *VDP) propagate(node, child string, dc *delta.RelDelta, resolve Resolver, naive bool) (*delta.RelDelta, error) {
	n := v.Node(node)
	if n == nil {
		return nil, fmt.Errorf("vdp: unknown node %q", node)
	}
	if n.IsLeaf() {
		return nil, fmt.Errorf("vdp: Propagate on leaf %q", n.Name)
	}
	childNode := v.Node(child)
	if childNode == nil {
		return nil, fmt.Errorf("vdp: unknown child %q", child)
	}
	if dc.IsEmpty() {
		return delta.NewRel(n.Name), nil
	}
	switch d := n.Def.(type) {
	case SPJ:
		return propagateSPJ(n, d, child, childNode.Schema, dc, resolve, naive)
	case UnionDef:
		return propagateUnion(n, d, child, childNode.Schema, dc)
	case DiffDef:
		return propagateDiff(n, d, child, childNode.Schema, dc, resolve)
	}
	return nil, fmt.Errorf("vdp: node %q has unsupported definition type %T", n.Name, n.Def)
}

// deltaThroughInput pushes dc through an input wrapper π_Proj σ_Where,
// yielding the positive and negative parts as bag relations over the
// projected child schema.
func deltaThroughInput(in SPJInput, childSchema *relation.Schema, dc *delta.RelDelta) (pos, neg *relation.Relation, err error) {
	proj := in.Proj
	if len(proj) == 0 {
		proj = childSchema.AttrNames()
	}
	schema, err := childSchema.Project(in.Rel, proj)
	if err != nil {
		return nil, nil, err
	}
	positions, err := childSchema.Positions(proj)
	if err != nil {
		return nil, nil, err
	}
	pos = relation.NewBag(schema)
	neg = relation.NewBag(schema)
	var evalErr error
	dc.Each(func(t relation.Tuple, c int) bool {
		ok, err := algebra.EvalPred(in.Where, childSchema, t)
		if err != nil {
			evalErr = err
			return false
		}
		if !ok {
			return true
		}
		p := t.Project(positions)
		if c > 0 {
			pos.Add(p, c)
		} else {
			neg.Add(p, -c)
		}
		return true
	})
	if evalErr != nil {
		return nil, nil, evalErr
	}
	return pos, neg, nil
}

// projectDeltaTo narrows a full-width delta to the attribute subset of a
// narrower state relation (a temporary), so it can be applied to it.
func projectDeltaTo(dc *delta.RelDelta, full *relation.Schema, narrow *relation.Schema) (*delta.RelDelta, error) {
	if full.Arity() == narrow.Arity() {
		return dc, nil
	}
	positions, err := full.Positions(narrow.AttrNames())
	if err != nil {
		return nil, err
	}
	return dc.Project(dc.Rel(), positions), nil
}

func propagateSPJ(n *Node, d SPJ, child string, childSchema *relation.Schema, dc *delta.RelDelta, resolve Resolver, naive bool) (*delta.RelDelta, error) {
	out := delta.NewRel(n.Name)
	// The child's own state is needed only for self-joins (leaf children,
	// in particular, have no resolvable state), so resolve lazily.
	var childState *relation.Relation
	oldState := func() (*relation.Relation, error) {
		if childState == nil {
			var err error
			childState, err = resolve(child)
			if err != nil {
				return nil, err
			}
		}
		return childState, nil
	}
	// New state of the updated child, materialized lazily. The resolved
	// state may be a narrow temporary, so the delta is projected onto it
	// first.
	var childNew *relation.Relation
	newState := func() (*relation.Relation, error) {
		if childNew == nil {
			old, err := oldState()
			if err != nil {
				return nil, err
			}
			childNew = old.Clone()
			narrowed, err := projectDeltaTo(dc, childSchema, childNew.Schema())
			if err != nil {
				return nil, err
			}
			narrowed.ApplyTo(childNew, false)
		}
		return childNew, nil
	}

	occurrences := 0
	for i, in := range d.Inputs {
		if in.Rel != child {
			continue
		}
		occurrences++
		// Assemble operand states for this occurrence.
		rels := make([]*relation.Relation, len(d.Inputs))
		for j, other := range d.Inputs {
			if j == i {
				continue
			}
			var base *relation.Relation
			var err error
			switch {
			case other.Rel != child:
				base, err = resolve(other.Rel)
			case naive:
				// Naive: all other occurrences at the resolver's state.
				base, err = oldState()
			case j < i:
				base, err = newState()
			default:
				base, err = oldState()
			}
			if err != nil {
				return nil, err
			}
			r, err := projectSelectInput(other, base, j)
			if err != nil {
				return nil, err
			}
			rels[j] = r
		}
		pos, neg, err := deltaThroughInput(in, childSchema, dc)
		if err != nil {
			return nil, err
		}
		for _, part := range []struct {
			rel  *relation.Relation
			sign int
		}{{pos, 1}, {neg, -1}} {
			if part.rel.Len() == 0 {
				continue
			}
			rels[i] = renameBag(part.rel, occName(in.Rel, i))
			contrib, err := joinProjectSPJ(n, d, rels)
			if err != nil {
				return nil, err
			}
			contrib.Each(func(t relation.Tuple, c int) bool {
				out.Add(t, part.sign*c)
				return true
			})
		}
	}
	if occurrences == 0 {
		return nil, fmt.Errorf("vdp: node %q has no input over child %q", n.Name, child)
	}
	return out, nil
}

// projectSelectInput evaluates one SPJ input wrapper over an explicit base
// relation, giving the operand a per-occurrence unique name so self-joins
// concatenate cleanly. When base is a narrow temporary, the projection is
// restricted to the attributes present (the Requirements machinery
// guarantees everything needed is there).
func projectSelectInput(in SPJInput, base *relation.Relation, occ int) (*relation.Relation, error) {
	proj := in.Proj
	if len(proj) == 0 {
		proj = base.Schema().AttrNames()
	} else {
		var avail []string
		for _, p := range proj {
			if base.Schema().HasAttr(p) {
				avail = append(avail, p)
			}
		}
		proj = avail
	}
	return projectSelect(base, occName(in.Rel, occ), proj, in.Where)
}

func occName(rel string, occ int) string { return fmt.Sprintf("%s·occ%d", rel, occ) }

// renameBag relabels a bag relation without copying tuples' contents.
func renameBag(r *relation.Relation, name string) *relation.Relation {
	out := relation.NewBag(r.Schema().Rename(name))
	r.Each(func(t relation.Tuple, c int) bool { out.Add(t, c); return true })
	return out
}

// joinProjectSPJ joins the prepared operand relations under the def's join
// and selection conditions and projects to the node schema.
//
// Self-joins need per-occurrence attribute disambiguation: the same child
// schema appears twice with identical attribute names, which Concat
// rejects. We suffix attributes of later duplicate occurrences and rewrite
// the conditions... — instead, since the paper's language has no
// attribute renaming, duplicate occurrences of a child must project
// disjoint attribute subsets for the def to validate. joinProjectSPJ
// therefore relies on disjointness established at validation time.
func joinProjectSPJ(n *Node, d SPJ, rels []*relation.Relation) (*relation.Relation, error) {
	joined, err := algebra.JoinChain(rels, algebra.Conj(d.JoinCond, d.Where), n.Name+"·joined")
	if err != nil {
		return nil, err
	}
	positions, err := joined.Schema().Positions(d.Proj)
	if err != nil {
		return nil, err
	}
	out := relation.NewBag(n.Schema)
	joined.Each(func(t relation.Tuple, c int) bool {
		out.Add(t.Project(positions), c)
		return true
	})
	return out, nil
}

// propagateUnion: incremental updates pass through each matching branch's
// select/project, relabeled positionally into the node schema (bag
// semantics: counts add).
func propagateUnion(n *Node, d UnionDef, child string, childSchema *relation.Schema, dc *delta.RelDelta) (*delta.RelDelta, error) {
	out := delta.NewRel(n.Name)
	matched := false
	for _, b := range []Branch{d.L, d.R} {
		if b.Rel != child {
			continue
		}
		matched = true
		bd, err := branchDeltaBag(n, b, childSchema, dc)
		if err != nil {
			return nil, err
		}
		bd.Each(func(t relation.Tuple, c int) bool {
			out.Add(t, c)
			return true
		})
	}
	if !matched {
		return nil, fmt.Errorf("vdp: node %q has no branch over child %q", n.Name, child)
	}
	return out, nil
}

// branchDeltaBag pushes dc through branch b yielding a signed RelDelta
// over the node schema's shape.
func branchDeltaBag(n *Node, b Branch, childSchema *relation.Schema, dc *delta.RelDelta) (*delta.RelDelta, error) {
	positions, err := childSchema.Positions(b.Proj)
	if err != nil {
		return nil, err
	}
	out := delta.NewRel(n.Name)
	var evalErr error
	dc.Each(func(t relation.Tuple, c int) bool {
		ok, err := algebra.EvalPred(b.Where, childSchema, t)
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			out.Add(t.Project(positions), c)
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// propagateDiff implements the difference rules of §5.2 with set
// semantics. T = L − R where L, R are the branch sets.
//
//	on ΔL: (ΔT)+ = (ΔL)+ − R      (ΔT)− = (ΔL)− − R
//	on ΔR: (ΔT)+ = (ΔR)− ∩ L      (ΔT)− = (ΔR)+ ∩ L
//
// (The paper prints rule diff1's deletion clause as (ΔR1)− ∩ R2; a tuple
// deleted from R1 leaves T only if it is NOT in R2 — we implement the
// corrected difference. The randomized incremental-equals-recompute tests
// would reject the printed form.)
//
// Branch deltas are converted to set level ("distinct" deltas) against the
// branch's pre-update bag, since children are bag nodes in general.
func propagateDiff(n *Node, d DiffDef, child string, childSchema *relation.Schema, dc *delta.RelDelta, resolve Resolver) (*delta.RelDelta, error) {
	out := delta.NewRel(n.Name)
	childState, err := resolve(child)
	if err != nil {
		return nil, err
	}
	// The resolved child state may be a narrow temporary; the delta is
	// narrowed correspondingly where it must be applied or compared.
	narrowDC, err := projectDeltaTo(dc, childSchema, childState.Schema())
	if err != nil {
		return nil, err
	}
	matched := false

	// Left-branch rule.
	if d.L.Rel == child {
		matched = true
		bagDelta, err := branchDeltaBag(n, d.L, childState.Schema(), narrowDC)
		if err != nil {
			return nil, err
		}
		oldBag, err := evalBranchBagOver(n, d.L, childState)
		if err != nil {
			return nil, err
		}
		setDelta := bagDelta.Distinct(oldBag)
		// Right branch at its current (resolver) state; if the right
		// branch reads the same child, that child is still pre-update
		// here (the left rule fires first).
		rSet, err := evalBranchSet(d.R, resolve)
		if err != nil {
			return nil, err
		}
		setDelta.Each(func(t relation.Tuple, c int) bool {
			if rSet.Count(t) == 0 {
				out.Add(t, sign(c))
			}
			return true
		})
	}

	// Right-branch rule.
	if d.R.Rel == child {
		matched = true
		bagDelta, err := branchDeltaBag(n, d.R, childState.Schema(), narrowDC)
		if err != nil {
			return nil, err
		}
		oldBag, err := evalBranchBagOver(n, d.R, childState)
		if err != nil {
			return nil, err
		}
		setDelta := bagDelta.Distinct(oldBag)
		// Left branch state: if the left branch reads the same child, the
		// left rule above already accounted for the transition, so the
		// left state here must be the NEW one; otherwise the resolver's
		// current state is correct either way.
		var lSet *relation.Relation
		if d.L.Rel == child {
			newChild := childState.Clone()
			narrowDC.ApplyTo(newChild, false)
			lSet, err = evalBranchSetOver(n, d.L, newChild)
		} else {
			lSet, err = evalBranchSet(d.L, resolve)
		}
		if err != nil {
			return nil, err
		}
		setDelta.Each(func(t relation.Tuple, c int) bool {
			if lSet.Count(t) > 0 {
				out.Add(t, -sign(c))
			}
			return true
		})
	}
	if !matched {
		return nil, fmt.Errorf("vdp: node %q has no branch over child %q", n.Name, child)
	}
	return out, nil
}

func sign(c int) int {
	if c < 0 {
		return -1
	}
	return 1
}

// evalBranchBagOver evaluates a branch over an explicit child state.
func evalBranchBagOver(n *Node, b Branch, childState *relation.Relation) (*relation.Relation, error) {
	bag, err := projectSelect(childState, b.Rel+"·branch", b.Proj, b.Where)
	if err != nil {
		return nil, err
	}
	return conform(bag, n.Schema, relation.Bag)
}

func evalBranchSetOver(n *Node, b Branch, childState *relation.Relation) (*relation.Relation, error) {
	bag, err := evalBranchBagOver(n, b, childState)
	if err != nil {
		return nil, err
	}
	return bag.Distinct(), nil
}
