package vdp

import (
	"strings"
	"testing"

	"squirrel/internal/relation"
)

func TestAdviseExample23Profile(t *testing.T) {
	// The Example 2.3 workload: queries mostly touch r1 and s1; R churns,
	// S rarely changes.
	v := paperVDP(t, nil, nil, nil)
	advice := v.Advise(WorkloadProfile{
		AccessFreq:  map[string]float64{"r1": 0.9, "s1": 0.9, "r3": 0.02, "s2": 0.01},
		UpdateShare: map[string]float64{"db1": 0.95, "db2": 0.05},
	})
	tAnn := advice.Annotations["T"]
	if tAnn == nil {
		t.Fatalf("no advice for T")
	}
	// Exactly the paper's suggested T[r1^m, r3^v, s1^m, s2^v].
	if got := tAnn.String(v.Node("T").Schema); got != "[r1^m, r3^v, s1^m, s2^v]" {
		t.Errorf("T advice = %s", got)
	}
	// Example 2.2: R' virtual (db1 churns, db2 quiet), S' materialized.
	if !annIsAllVirtual(advice.Annotations["R'"], v.Node("R'").Schema) {
		t.Errorf("R' advice = %v", advice.Annotations["R'"])
	}
	if !annIsAllMaterialized(advice.Annotations["S'"], v.Node("S'").Schema) {
		t.Errorf("S' advice = %v", advice.Annotations["S'"])
	}
	joined := strings.Join(advice.Reasons, "\n")
	for _, want := range []string{"Example 2.2", "access freq"} {
		if !strings.Contains(joined, want) {
			t.Errorf("reasons missing %q:\n%s", want, joined)
		}
	}
}

func TestAdviseKeyMaterialization(t *testing.T) {
	// Even when r1 is cold, it is a child key in a join export → the
	// advisor keeps it materialized (rule 3, key-based temporaries).
	v := paperVDP(t, nil, nil, nil)
	advice := v.Advise(WorkloadProfile{
		AccessFreq:  map[string]float64{"s2": 0.9},
		UpdateShare: map[string]float64{"db1": 0.2, "db2": 0.2},
	})
	tAnn := advice.Annotations["T"]
	if !tAnn.IsMaterialized("r1") {
		t.Errorf("child key r1 must stay materialized: %v", tAnn)
	}
	if !tAnn.IsMaterialized("s1") {
		t.Errorf("child key s1 must stay materialized: %v", tAnn)
	}
	if tAnn.IsMaterialized("r3") {
		t.Errorf("cold non-key r3 should be virtual")
	}
}

func TestAdviseHottestAttrFallback(t *testing.T) {
	// A single-table export whose attributes are all below threshold but
	// queried occasionally: the hottest one stays materialized.
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("V", `SELECT r1, r3 FROM R WHERE r4 = 100`); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	advice := v.Advise(WorkloadProfile{
		AccessFreq:  map[string]float64{"r1": 0.05, "r3": 0.01},
		UpdateShare: map[string]float64{"db1": 0.5},
	})
	ann := advice.Annotations["V"]
	if !ann.IsMaterialized("r1") || ann.IsMaterialized("r3") {
		t.Errorf("fallback should keep the hottest attribute: %v", ann)
	}
	// Entirely unqueried export: everything virtual.
	advice2 := v.Advise(WorkloadProfile{UpdateShare: map[string]float64{"db1": 0.5}})
	ann2 := advice2.Annotations["V"]
	if ann2.IsMaterialized("r1") || ann2.IsMaterialized("r3") {
		t.Errorf("unqueried export should be fully virtual: %v", ann2)
	}
}

func TestAdviceIsValidAnnotationSet(t *testing.T) {
	// The advisor's output must build into a valid plan.
	v := paperVDP(t, nil, nil, nil)
	advice := v.Advise(WorkloadProfile{
		AccessFreq:  map[string]float64{"r1": 0.9, "s1": 0.9},
		UpdateShare: map[string]float64{"db1": 0.9, "db2": 0.1},
	})
	var nodes []*Node
	for _, name := range v.Order() {
		n := v.Node(name)
		if n.IsLeaf() {
			nodes = append(nodes, n)
			continue
		}
		c := *n
		c.Ann = advice.Annotations[name]
		nodes = append(nodes, &c)
	}
	if _, err := New(nodes...); err != nil {
		t.Fatalf("advised plan invalid: %v", err)
	}
}

func annIsAllVirtual(a Annotation, s *relation.Schema) bool {
	for _, attr := range s.AttrNames() {
		if a.IsMaterialized(attr) {
			return false
		}
	}
	return true
}

func annIsAllMaterialized(a Annotation, s *relation.Schema) bool {
	for _, attr := range s.AttrNames() {
		if !a.IsMaterialized(attr) {
			return false
		}
	}
	return true
}
