package vdp

import (
	"strings"
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/relation"
)

// paperVDP builds the annotated VDP of Figure 1 / Example 2.1:
//
//	R(r1,r2,r3,r4) key r1     S(s1,s2,s3) key s1        (leaves)
//	R' = π_{r1,r2,r3} σ_{r4=100} R
//	S' = π_{s1,s2} σ_{s3<50} S
//	T  = π_{r1,s1,s2} (R' ⋈_{r2=s1} S')                 (export)
//
// with the given annotations (nil means fully materialized).
func paperVDP(t testing.TB, annR, annS, annT Annotation) *VDP {
	t.Helper()
	rSchema := relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}, {Name: "r4", Type: relation.KindInt}}, "r1")
	sSchema := relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt},
		{Name: "s3", Type: relation.KindInt}}, "s1")
	rpSchema := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	spSchema := relation.MustSchema("S'", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")
	tSchema := relation.MustSchema("T", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r3", Type: relation.KindInt},
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}})

	if annR == nil {
		annR = AllMaterialized(rpSchema)
	}
	if annS == nil {
		annS = AllMaterialized(spSchema)
	}
	if annT == nil {
		annT = AllMaterialized(tSchema)
	}
	v, err := New(
		&Node{Name: "R", Schema: rSchema, Source: "db1"},
		&Node{Name: "S", Schema: sSchema, Source: "db2"},
		&Node{Name: "R'", Schema: rpSchema, Ann: annR,
			Def: SPJ{Inputs: []SPJInput{{Rel: "R"}},
				Where: algebra.Eq(algebra.A("r4"), algebra.CInt(100)),
				Proj:  []string{"r1", "r2", "r3"}}},
		&Node{Name: "S'", Schema: spSchema, Ann: annS,
			Def: SPJ{Inputs: []SPJInput{{Rel: "S"}},
				Where: algebra.Lt(algebra.A("s3"), algebra.CInt(50)),
				Proj:  []string{"s1", "s2"}}},
		&Node{Name: "T", Schema: tSchema, Ann: annT, Export: true,
			Def: SPJ{Inputs: []SPJInput{{Rel: "R'"}, {Rel: "S'"}},
				JoinCond: algebra.Eq(algebra.A("r2"), algebra.A("s1")),
				Proj:     []string{"r1", "r3", "s1", "s2"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// paperLeafStates returns source states matching the worked examples.
func paperLeafStates() map[string]*relation.Relation {
	rSchema := relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}, {Name: "r4", Type: relation.KindInt}}, "r1")
	sSchema := relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt},
		{Name: "s3", Type: relation.KindInt}}, "s1")
	r := relation.NewSet(rSchema)
	r.Insert(relation.T(1, 10, 5, 100))
	r.Insert(relation.T(2, 10, 120, 100))
	r.Insert(relation.T(3, 20, 7, 100))
	r.Insert(relation.T(4, 30, 9, 50))
	s := relation.NewSet(sSchema)
	s.Insert(relation.T(10, 1, 20))
	s.Insert(relation.T(20, 2, 40))
	s.Insert(relation.T(30, 3, 80))
	return map[string]*relation.Relation{"R": r, "S": s}
}

func TestVDPStructure(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	if got := v.Order(); len(got) != 5 {
		t.Fatalf("order = %v", got)
	}
	if got := v.Leaves(); len(got) != 2 {
		t.Errorf("leaves = %v", got)
	}
	if got := v.Exports(); len(got) != 1 || got[0] != "T" {
		t.Errorf("exports = %v", got)
	}
	if got := v.Sources(); strings.Join(got, ",") != "db1,db2" {
		t.Errorf("sources = %v", got)
	}
	if got := v.LeavesOf("db1"); len(got) != 1 || got[0] != "R" {
		t.Errorf("leavesOf db1 = %v", got)
	}
	if got := v.Children("T"); strings.Join(got, ",") != "R',S'" {
		t.Errorf("children of T = %v", got)
	}
	if got := v.Parents("R'"); len(got) != 1 || got[0] != "T" {
		t.Errorf("parents of R' = %v", got)
	}
	// Topological: children before parents.
	pos := map[string]int{}
	for i, n := range v.Order() {
		pos[n] = i
	}
	if pos["R"] > pos["R'"] || pos["R'"] > pos["T"] || pos["S'"] > pos["T"] {
		t.Errorf("order not topological: %v", v.Order())
	}
	if !v.IsLeafParent("R'") || v.IsLeafParent("T") || v.IsLeafParent("R") {
		t.Errorf("IsLeafParent misbehaves")
	}
}

func TestNodePredicates(t *testing.T) {
	v := paperVDP(t,
		AllVirtual(relation.MustSchema("R'", []relation.Attribute{
			{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
			{Name: "r3", Type: relation.KindInt}}, "r1")),
		nil,
		Ann([]string{"r1", "s1"}, []string{"r3", "s2"}))
	rp, sp, tn := v.Node("R'"), v.Node("S'"), v.Node("T")
	if !rp.FullyVirtual() || rp.FullyMaterialized() || rp.Hybrid() {
		t.Errorf("R' should be fully virtual")
	}
	if !sp.FullyMaterialized() || sp.Hybrid() {
		t.Errorf("S' should be fully materialized")
	}
	if !tn.Hybrid() {
		t.Errorf("T should be hybrid")
	}
	if got := strings.Join(tn.MaterializedAttrs(), ","); got != "r1,s1" {
		t.Errorf("materialized attrs = %s", got)
	}
	if got := strings.Join(tn.VirtualAttrs(), ","); got != "r3,s2" {
		t.Errorf("virtual attrs = %s", got)
	}
	if tn.Semantics() != relation.Bag || tn.IsSetNode() {
		t.Errorf("T is a bag node")
	}
	// Annotation rendering matches the paper's notation.
	if got := tn.Ann.String(tn.Schema); got != "[r1^m, r3^v, s1^m, s2^v]" {
		t.Errorf("annotation string = %s", got)
	}
}

func TestEvalAllPaperExample(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	states, err := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	if err != nil {
		t.Fatal(err)
	}
	tRel := states["T"]
	want := [][4]int64{{1, 5, 10, 1}, {2, 120, 10, 1}, {3, 7, 20, 2}}
	if tRel.Card() != len(want) {
		t.Fatalf("T = %s", tRel)
	}
	for _, w := range want {
		if !tRel.Contains(relation.T(w[0], w[1], w[2], w[3])) {
			t.Errorf("T missing %v", w)
		}
	}
	if states["R'"].Card() != 3 {
		t.Errorf("R' = %s", states["R'"])
	}
	if states["S'"].Card() != 2 {
		t.Errorf("S' = %s", states["S'"])
	}
}

func TestValidationErrors(t *testing.T) {
	rSchema := relation.MustSchema("R", []relation.Attribute{{Name: "a", Type: relation.KindInt}})
	vSchema := relation.MustSchema("V", []relation.Attribute{{Name: "a", Type: relation.KindInt}})

	cases := []struct {
		name  string
		nodes []*Node
	}{
		{"leaf without source", []*Node{{Name: "R", Schema: rSchema}}},
		{"schema name mismatch", []*Node{{Name: "X", Schema: rSchema, Source: "db"}}},
		{"duplicate node", []*Node{
			{Name: "R", Schema: rSchema, Source: "db"},
			{Name: "R", Schema: rSchema, Source: "db"}}},
		{"unknown child", []*Node{
			{Name: "V", Schema: vSchema, Export: true, Ann: AllMaterialized(vSchema),
				Def: SPJ{Inputs: []SPJInput{{Rel: "NOPE"}}, Proj: []string{"a"}}}}},
		{"maximal node not export", []*Node{
			{Name: "R", Schema: rSchema, Source: "db"},
			{Name: "V", Schema: vSchema, Ann: AllMaterialized(vSchema),
				Def: SPJ{Inputs: []SPJInput{{Rel: "R"}}, Proj: []string{"a"}}}}},
		{"leaf as export", []*Node{{Name: "R", Schema: rSchema, Source: "db", Export: true}}},
		{"missing annotation", []*Node{
			{Name: "R", Schema: rSchema, Source: "db"},
			{Name: "V", Schema: vSchema, Export: true,
				Def: SPJ{Inputs: []SPJInput{{Rel: "R"}}, Proj: []string{"a"}}}}},
		{"annotation on leaf", []*Node{
			{Name: "R", Schema: rSchema, Source: "db", Ann: AllMaterialized(rSchema)}}},
		{"partial annotation", []*Node{
			{Name: "R", Schema: rSchema, Source: "db"},
			{Name: "V", Schema: vSchema, Export: true, Ann: Annotation{},
				Def: SPJ{Inputs: []SPJInput{{Rel: "R"}}, Proj: []string{"a"}}}}},
		{"annotation unknown attr", []*Node{
			{Name: "R", Schema: rSchema, Source: "db"},
			{Name: "V", Schema: vSchema, Export: true, Ann: Annotation{"a": Materialized, "zz": Virtual},
				Def: SPJ{Inputs: []SPJInput{{Rel: "R"}}, Proj: []string{"a"}}}}},
		{"projection of unknown attr", []*Node{
			{Name: "R", Schema: rSchema, Source: "db"},
			{Name: "V", Schema: vSchema, Export: true, Ann: AllMaterialized(vSchema),
				Def: SPJ{Inputs: []SPJInput{{Rel: "R"}}, Proj: []string{"zz"}}}}},
		{"selection on unknown attr", []*Node{
			{Name: "R", Schema: rSchema, Source: "db"},
			{Name: "V", Schema: vSchema, Export: true, Ann: AllMaterialized(vSchema),
				Def: SPJ{Inputs: []SPJInput{{Rel: "R"}},
					Where: algebra.Eq(algebra.A("zz"), algebra.CInt(1)), Proj: []string{"a"}}}}},
		{"join over leaf not allowed", []*Node{
			{Name: "R", Schema: rSchema, Source: "db"},
			{Name: "S", Schema: relation.MustSchema("S", []relation.Attribute{{Name: "b", Type: relation.KindInt}}), Source: "db"},
			{Name: "V", Schema: vSchema, Export: true, Ann: AllMaterialized(vSchema),
				Def: SPJ{Inputs: []SPJInput{{Rel: "R"}, {Rel: "S"}},
					JoinCond: algebra.Eq(algebra.A("a"), algebra.A("b")), Proj: []string{"a"}}}}},
		{"cycle", []*Node{
			{Name: "V", Schema: vSchema, Export: true, Ann: AllMaterialized(vSchema),
				Def: SPJ{Inputs: []SPJInput{{Rel: "W"}}, Proj: []string{"a"}}},
			{Name: "W", Schema: vSchema.Rename("W"), Export: true, Ann: AllMaterialized(vSchema),
				Def: SPJ{Inputs: []SPJInput{{Rel: "V"}}, Proj: []string{"a"}}}}},
	}
	for _, c := range cases {
		if _, err := New(c.nodes...); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDiffNodeValidation(t *testing.T) {
	aSchema := relation.MustSchema("A", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt}})
	bSchema := relation.MustSchema("B", []relation.Attribute{
		{Name: "p", Type: relation.KindInt}, {Name: "q", Type: relation.KindString}})
	ap := relation.MustSchema("A'", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt}})
	bp := relation.MustSchema("B'", []relation.Attribute{
		{Name: "p", Type: relation.KindInt}, {Name: "q", Type: relation.KindString}})
	gSchema := relation.MustSchema("G", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}})

	mk := func(branchR Branch) error {
		_, err := New(
			&Node{Name: "A", Schema: aSchema, Source: "db1"},
			&Node{Name: "B", Schema: bSchema, Source: "db2"},
			&Node{Name: "A'", Schema: ap, Ann: AllMaterialized(ap),
				Def: SPJ{Inputs: []SPJInput{{Rel: "A"}}, Proj: []string{"x", "y"}}},
			&Node{Name: "B'", Schema: bp, Ann: AllMaterialized(bp),
				Def: SPJ{Inputs: []SPJInput{{Rel: "B"}}, Proj: []string{"p", "q"}}},
			&Node{Name: "G", Schema: gSchema, Export: true, Ann: AllMaterialized(gSchema),
				Def: DiffDef{L: Branch{Rel: "A'", Proj: []string{"x"}}, R: branchR}},
		)
		return err
	}
	if err := mk(Branch{Rel: "B'", Proj: []string{"p"}}); err != nil {
		t.Errorf("valid diff rejected: %v", err)
	}
	if err := mk(Branch{Rel: "B'", Proj: []string{"q"}}); err == nil {
		t.Errorf("type-mismatched diff branch accepted")
	}
	if err := mk(Branch{Rel: "B'", Proj: []string{"p", "q"}}); err == nil {
		t.Errorf("arity-mismatched diff branch accepted")
	}
	if err := mk(Branch{Rel: "B'", Proj: []string{"zz"}}); err == nil {
		t.Errorf("unknown branch attr accepted")
	}
	if err := mk(Branch{Rel: "ZZ", Proj: []string{"p"}}); err == nil {
		t.Errorf("unknown branch child accepted")
	}
}

func TestVDPString(t *testing.T) {
	v := paperVDP(t, nil, nil, Ann([]string{"r1", "s1"}, []string{"r3", "s2"}))
	s := v.String()
	for _, want := range []string{"□ R(", "@ db1", "◎ T", "[r1^m, r3^v, s1^m, s2^v]", "⋈", "○ R'"} {
		if !strings.Contains(s, want) {
			t.Errorf("VDP string missing %q:\n%s", want, s)
		}
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Must should panic on invalid plan")
		}
	}()
	Must(&Node{Name: "R", Schema: relation.MustSchema("R", []relation.Attribute{{Name: "a", Type: relation.KindInt}})})
}
