package vdp

import "testing"

// Boundary semantics of the advisor thresholds: both comparisons against
// the workload are inclusive on the "act" side (access >= hot threshold
// materializes; own update share >= churn threshold counts as churning),
// while the partner-quietness test is strict (maxOther < churn threshold).

func TestAdviseAccessAtThresholdIsHot(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	// r3 is a non-key export attribute, so no other rule can resurrect it:
	// its fate is decided purely by the access-frequency comparison.
	at := v.Advise(WorkloadProfile{
		AccessFreq:  map[string]float64{"r3": DefHotAttrThreshold},
		UpdateShare: map[string]float64{"db1": 0.2, "db2": 0.2},
	})
	if !at.Annotations["T"].IsMaterialized("r3") {
		t.Errorf("access freq exactly at the threshold must materialize: %v", at.Annotations["T"])
	}
	below := v.Advise(WorkloadProfile{
		AccessFreq:  map[string]float64{"r3": DefHotAttrThreshold - 1e-9},
		UpdateShare: map[string]float64{"db1": 0.2, "db2": 0.2},
	})
	if below.Annotations["T"].IsMaterialized("r3") {
		t.Errorf("access freq just below the threshold must stay virtual: %v", below.Annotations["T"])
	}
}

func TestAdviseChurnAtThreshold(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	// Own share exactly at the threshold counts as churning; the quiet
	// partner keeps R' virtual (Example 2.2).
	at := v.Advise(WorkloadProfile{
		UpdateShare: map[string]float64{"db1": DefChurnThreshold, "db2": 0.1},
	})
	if !annIsAllVirtual(at.Annotations["R'"], v.Node("R'").Schema) {
		t.Errorf("own share exactly at the churn threshold must virtualize R': %v", at.Annotations["R'"])
	}
	// A partner exactly at the threshold is NOT quiet (strict <): polling
	// would be frequent, so R' stays materialized.
	partner := v.Advise(WorkloadProfile{
		UpdateShare: map[string]float64{"db1": DefChurnThreshold, "db2": DefChurnThreshold},
	})
	if !annIsAllMaterialized(partner.Annotations["R'"], v.Node("R'").Schema) {
		t.Errorf("partner at the churn threshold must keep R' materialized: %v", partner.Annotations["R'"])
	}
	// Just below on the own side: not churning, stays materialized.
	below := v.Advise(WorkloadProfile{
		UpdateShare: map[string]float64{"db1": DefChurnThreshold - 1e-9, "db2": 0.1},
	})
	if !annIsAllMaterialized(below.Annotations["R'"], v.Node("R'").Schema) {
		t.Errorf("own share below the churn threshold must keep R' materialized: %v", below.Annotations["R'"])
	}
}

func TestAdviseExplicitZeroThreshold(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	// Threshold(0) is an explicit zero, not "use the default": every
	// attribute's access frequency (including absent = 0) is >= 0, so the
	// whole export materializes — even though the same profile with a nil
	// threshold virtualizes the untouched attributes.
	zero := v.Advise(WorkloadProfile{
		AccessFreq:       map[string]float64{"r1": 0.05},
		UpdateShare:      map[string]float64{"db1": 0.2, "db2": 0.2},
		HotAttrThreshold: Threshold(0),
	})
	if !annIsAllMaterialized(zero.Annotations["T"], v.Node("T").Schema) {
		t.Errorf("Threshold(0) must materialize every export attribute: %v", zero.Annotations["T"])
	}
	def := v.Advise(WorkloadProfile{
		AccessFreq:  map[string]float64{"r1": 0.05},
		UpdateShare: map[string]float64{"db1": 0.2, "db2": 0.2},
	})
	if annIsAllMaterialized(def.Annotations["T"], v.Node("T").Schema) {
		t.Errorf("nil threshold must fall back to the default, virtualizing cold attributes: %v", def.Annotations["T"])
	}
	// ChurnThreshold zero: every source churns, but then no partner is
	// quiet either (strict <), so leaf-parents stay materialized.
	churn := v.Advise(WorkloadProfile{
		UpdateShare:    map[string]float64{"db1": 0.0, "db2": 0.0},
		ChurnThreshold: Threshold(0),
	})
	if !annIsAllMaterialized(churn.Annotations["R'"], v.Node("R'").Schema) {
		t.Errorf("ChurnThreshold(0): partners can never be strictly quieter, R' must stay materialized: %v",
			churn.Annotations["R'"])
	}
}
