package vdp

import (
	"fmt"
	"testing"

	"squirrel/internal/relation"
)

func intSchema(name string, attrs ...string) *relation.Schema {
	as := make([]relation.Attribute, len(attrs))
	for i, a := range attrs {
		as[i] = relation.Attribute{Name: a, Type: relation.KindInt}
	}
	return relation.MustSchema(name, as, attrs[0])
}

// checkStageInvariants asserts the three Stages() guarantees the staged
// kernel relies on (see stages.go).
func checkStageInvariants(t *testing.T, v *VDP) {
	t.Helper()
	stages := v.Stages()

	// Concatenating the stages reproduces the topological order exactly,
	// so a staged executor replays the serial kernel's discipline.
	var flat []string
	stageOf := make(map[string]int)
	for i, stage := range stages {
		if len(stage) == 0 {
			t.Fatalf("stage %d is empty", i)
		}
		for _, name := range stage {
			flat = append(flat, name)
			stageOf[name] = i
		}
	}
	order := v.Order()
	if len(flat) != len(order) {
		t.Fatalf("stages cover %d nodes, order has %d", len(flat), len(order))
	}
	for i, name := range order {
		if flat[i] != name {
			t.Fatalf("concat(Stages())[%d] = %q, Order()[%d] = %q", i, flat[i], i, name)
		}
		if v.TopoIndex(name) != i {
			t.Fatalf("TopoIndex(%q) = %d, want %d", name, v.TopoIndex(name), i)
		}
	}

	// Every child lies in a strictly earlier stage: at stage entry, all
	// deltas feeding the stage are final.
	for _, stage := range stages {
		for _, name := range stage {
			for _, c := range v.Children(name) {
				if stageOf[c] >= stageOf[name] {
					t.Errorf("child %q (stage %d) not strictly before parent %q (stage %d)",
						c, stageOf[c], name, stageOf[name])
				}
			}
		}
	}

	// No stage member is an ancestor of another member of its stage
	// (stages are antichains).
	var ancestors func(name string, seen map[string]bool)
	ancestors = func(name string, seen map[string]bool) {
		for _, p := range v.Parents(name) {
			if !seen[p] {
				seen[p] = true
				ancestors(p, seen)
			}
		}
	}
	for _, stage := range stages {
		for _, name := range stage {
			up := make(map[string]bool)
			ancestors(name, up)
			for _, other := range stage {
				if other != name && up[other] {
					t.Errorf("stage members %q and %q are comparable (%q is an ancestor)",
						name, other, other)
				}
			}
		}
	}

	if v.StageCount() != len(stages) {
		t.Errorf("StageCount() = %d, want %d", v.StageCount(), len(stages))
	}
	width := 0
	for _, stage := range stages {
		if len(stage) > width {
			width = len(stage)
		}
	}
	if v.MaxStageWidth() != width {
		t.Errorf("MaxStageWidth() = %d, want %d", v.MaxStageWidth(), width)
	}
}

func TestStagesPaperPlan(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	checkStageInvariants(t, v)
	// R, S | R', S' | T: the leaf-parents are independent, T joins them.
	if got, want := v.StageCount(), 3; got != want {
		t.Fatalf("StageCount = %d, want %d (stages: %v)", got, want, v.Stages())
	}
	if got, want := v.MaxStageWidth(), 2; got != want {
		t.Fatalf("MaxStageWidth = %d, want %d (stages: %v)", got, want, v.Stages())
	}
}

func TestStagesUnionAndExcept(t *testing.T) {
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("U",
		"SELECT r1 FROM R WHERE r4 = 100 UNION SELECT s1 FROM S"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("D",
		"SELECT r1 FROM R EXCEPT SELECT s1 FROM S WHERE s3 < 50"); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	checkStageInvariants(t, v)
}

// TestStagesWidePlan checks that independent single-table views form one
// wide antichain — the shape BenchmarkParallelPropagation relies on.
func TestStagesWidePlan(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 8; i++ {
		schema := intSchema(fmt.Sprintf("L%d", i),
			fmt.Sprintf("k%d", i), fmt.Sprintf("p%d", i))
		if err := b.AddSource("db", schema); err != nil {
			t.Fatal(err)
		}
		if err := b.AddViewSQL(fmt.Sprintf("E%d", i),
			fmt.Sprintf("SELECT k%d, p%d FROM L%d", i, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	checkStageInvariants(t, v)
	if got := v.MaxStageWidth(); got < 8 {
		t.Fatalf("MaxStageWidth = %d, want >= 8 (stages: %v)", got, v.Stages())
	}
}

// TestStagesInterleavedOrder builds a plan whose alphabetical Kahn order
// interleaves DAG depths (a deep branch sorts before a shallow leaf), so
// the greedy chunking must cut stages that do NOT coincide with the
// depth-grouped partition — the case that distinguishes "chunks of
// Order()" from "group by depth".
func TestStagesInterleavedOrder(t *testing.T) {
	b := NewBuilder()
	// Deep branch over leaf "a"; shallow branch over leaf "z". In the
	// sorted topological order the deep branch's inner node "b" (and its
	// parent export "c") precede "z"'s parent, exercising interleaving.
	if err := b.AddSource("db", intSchema("a", "x", "y")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSource("db", intSchema("z", "u", "w")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("b", "SELECT x, y FROM a WHERE y = 1"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("c", "SELECT x FROM b"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("y2", "SELECT u FROM z"); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	checkStageInvariants(t, v)
}
