// Package vdp implements the paper's central construct: the annotated View
// Decomposition Plan (§5). A VDP is a labeled DAG whose leaves are source
// database relations and whose internal nodes are relations maintained by
// the mediator, each annotated per attribute as materialized or virtual.
// The package provides:
//
//   - the def(v) forms permitted by §5.1(4): select/project over a leaf,
//     arbitrary select/project/join (SPJ), and union/difference over
//     select/project branches (set nodes);
//   - validation of the structural restrictions;
//   - evaluation of defs over child states (full and attribute-restricted);
//   - the update-propagation rules of §5.2 (SPJ, union, difference) with
//     the processing discipline that avoids the Example 6.1 anomaly;
//   - the derived_from function of §6.3 used by the Virtual Attribute
//     Processor, including key-based construction (Example 2.3).
package vdp

import (
	"fmt"
	"strings"

	"squirrel/internal/algebra"
	"squirrel/internal/relation"
)

// Def is the definition def(v) of a non-leaf node in terms of its
// children. Exactly three shapes are permitted (§5.1 item 4).
type Def interface {
	// Children returns the child relation names in definition order
	// (duplicates possible for self-joins).
	Children() []string
	// String renders the definition.
	String() string
	isDef()
}

// SPJInput is one operand of an SPJ definition: π_Proj σ_Where (Rel).
// Proj lists the retained child attributes; empty means all.
type SPJInput struct {
	Rel   string
	Where algebra.Expr
	Proj  []string
}

// SPJ is the select/project/join definition form:
//
//	T = π_Proj σ_Where (π σ R1 ⋈ ... ⋈ π σ Rn)
//
// JoinCond is the conjunction of all join conditions g_i, evaluated over
// the concatenation of the projected inputs; Where is the outer selection
// f. With a single input and no JoinCond this covers def form (a)
// (project/select over a leaf) as well as form (b).
type SPJ struct {
	Inputs   []SPJInput
	JoinCond algebra.Expr
	Where    algebra.Expr
	Proj     []string
}

func (SPJ) isDef() {}

// Children implements Def.
func (d SPJ) Children() []string {
	out := make([]string, len(d.Inputs))
	for i, in := range d.Inputs {
		out[i] = in.Rel
	}
	return out
}

// String renders the definition in the paper's algebraic notation.
func (d SPJ) String() string {
	parts := make([]string, len(d.Inputs))
	for i, in := range d.Inputs {
		s := in.Rel
		if !algebra.IsTrue(in.Where) {
			s = fmt.Sprintf("σ[%s](%s)", in.Where, s)
		}
		if len(in.Proj) > 0 {
			s = fmt.Sprintf("π[%s](%s)", strings.Join(in.Proj, ","), s)
		}
		parts[i] = s
	}
	body := strings.Join(parts, " ⋈ ")
	if !algebra.IsTrue(d.JoinCond) {
		body = fmt.Sprintf("(%s on %s)", body, d.JoinCond)
	}
	if !algebra.IsTrue(d.Where) {
		body = fmt.Sprintf("σ[%s](%s)", d.Where, body)
	}
	return fmt.Sprintf("π[%s](%s)", strings.Join(d.Proj, ","), body)
}

// Branch is one operand of a union or difference definition:
// π_Proj σ_Where (Rel). Proj maps positionally onto the node's attributes.
type Branch struct {
	Rel   string
	Where algebra.Expr
	Proj  []string
}

// String renders the branch in the paper's algebraic notation.
func (b Branch) String() string {
	s := b.Rel
	if !algebra.IsTrue(b.Where) {
		s = fmt.Sprintf("σ[%s](%s)", b.Where, s)
	}
	return fmt.Sprintf("π[%s](%s)", strings.Join(b.Proj, ","), s)
}

// UnionDef is the bag union of two branches (def form (c)); the node is a
// bag node.
type UnionDef struct {
	L, R Branch
}

func (UnionDef) isDef() {}

// Children implements Def.
func (d UnionDef) Children() []string { return []string{d.L.Rel, d.R.Rel} }

// String renders the definition in the paper's algebraic notation.
func (d UnionDef) String() string { return d.L.String() + " ∪ " + d.R.String() }

// DiffDef is the set difference of two branches (def form (c)); the node
// is a set node, stored with set semantics (§5.1 item 4).
type DiffDef struct {
	L, R Branch
}

func (DiffDef) isDef() {}

// Children implements Def.
func (d DiffDef) Children() []string { return []string{d.L.Rel, d.R.Rel} }

// String renders the definition in the paper's algebraic notation.
func (d DiffDef) String() string { return d.L.String() + " − " + d.R.String() }

// Mat annotates one attribute as materialized or virtual.
type Mat uint8

const (
	// Materialized attributes are stored in the mediator's local store and
	// maintained incrementally.
	Materialized Mat = iota
	// Virtual attributes are not stored; their values are fetched on
	// demand by the Virtual Attribute Processor.
	Virtual
)

// String returns "m" or "v", matching the paper's superscript notation.
func (m Mat) String() string {
	if m == Materialized {
		return "m"
	}
	return "v"
}

// Annotation maps each attribute of a node's relation to Materialized or
// Virtual (§5.1). The zero value of the map's entries is Materialized, so
// an absent entry reads as materialized; Validate requires totality anyway
// to keep intent explicit.
type Annotation map[string]Mat

// AllMaterialized builds a fully-materialized annotation for the schema.
func AllMaterialized(s *relation.Schema) Annotation {
	a := make(Annotation, s.Arity())
	for _, n := range s.AttrNames() {
		a[n] = Materialized
	}
	return a
}

// AllVirtual builds a fully-virtual annotation for the schema.
func AllVirtual(s *relation.Schema) Annotation {
	a := make(Annotation, s.Arity())
	for _, n := range s.AttrNames() {
		a[n] = Virtual
	}
	return a
}

// Ann builds an annotation from explicit materialized and virtual
// attribute lists.
func Ann(materialized, virtual []string) Annotation {
	a := make(Annotation, len(materialized)+len(virtual))
	for _, n := range materialized {
		a[n] = Materialized
	}
	for _, n := range virtual {
		a[n] = Virtual
	}
	return a
}

// IsMaterialized reports whether the named attribute is materialized.
func (a Annotation) IsMaterialized(attr string) bool { return a[attr] == Materialized }

// String renders the annotation in the paper's bracket notation, given the
// schema for attribute ordering: [r1^m, r2^v, ...].
func (a Annotation) String(s *relation.Schema) string {
	parts := make([]string, 0, s.Arity())
	for _, n := range s.AttrNames() {
		parts = append(parts, n+"^"+a[n].String())
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
