package vdp

import (
	"fmt"
	"strings"
)

// Rulebase renders the VDP-rulebase of §5.2/§6.4 — the pair (V, edge_rule)
// mapping every edge to its update-propagation rule — in a human-readable
// form. The actual rule execution lives in Propagate; this listing is the
// declarative view the paper describes the mediator as storing.
func (v *VDP) Rulebase() string {
	var b strings.Builder
	for _, name := range v.order {
		n := v.nodes[name]
		if n.IsLeaf() {
			continue
		}
		switch d := n.Def.(type) {
		case SPJ:
			for i, in := range d.Inputs {
				fmt.Fprintf(&b, "on Δ%s (edge %s→%s):  Δ%s = π σ( ", in.Rel, name, in.Rel, name)
				parts := make([]string, len(d.Inputs))
				for j, other := range d.Inputs {
					if j == i {
						parts[j] = "Δ" + other.Rel
					} else {
						parts[j] = other.Rel
					}
				}
				b.WriteString(strings.Join(parts, " ⋈ "))
				b.WriteString(" )\n")
			}
		case UnionDef:
			for _, br := range []Branch{d.L, d.R} {
				fmt.Fprintf(&b, "on Δ%s (edge %s→%s):  Δ%s = π σ(Δ%s)\n",
					br.Rel, name, br.Rel, name, br.Rel)
			}
		case DiffDef:
			fmt.Fprintf(&b, "on Δ%s (edge %s→%s):  Δ%s⁺ = (Δ%s)⁺ − %s ;  Δ%s⁻ = (Δ%s)⁻ − %s\n",
				d.L.Rel, name, d.L.Rel, name, d.L.Rel, d.R.Rel, name, d.L.Rel, d.R.Rel)
			fmt.Fprintf(&b, "on Δ%s (edge %s→%s):  Δ%s⁺ = (Δ%s)⁻ ∩ %s ;  Δ%s⁻ = (Δ%s)⁺ ∩ %s\n",
				d.R.Rel, name, d.R.Rel, name, d.R.Rel, d.L.Rel, name, d.R.Rel, d.L.Rel)
		}
	}
	return b.String()
}
