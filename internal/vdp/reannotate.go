package vdp

import "fmt"

// This file supports online adaptive materialization (§5.3 as a live
// control loop): a running mediator re-derives its plan with a changed
// annotation while every structural property — definitions, schemas,
// topological order, stages — is recomputed and revalidated by New.

// Annotations returns a deep copy of every non-leaf node's annotation,
// keyed by node name. The copy is safe to mutate and to persist; it is
// the "current annotation" of an adaptively re-annotated mediator, as
// opposed to the one the plan was constructed with.
func (v *VDP) Annotations() map[string]Annotation {
	out := make(map[string]Annotation, len(v.order))
	for _, name := range v.NonLeaves() {
		n := v.nodes[name]
		ann := make(Annotation, len(n.Ann))
		for a, m := range n.Ann {
			ann[a] = m
		}
		out[name] = ann
	}
	return out
}

// AnnotationsEqual reports whether two annotation sets assign the same
// materialization to every attribute. Missing entries on either side
// count as unequal.
func AnnotationsEqual(a, b map[string]Annotation) bool {
	if len(a) != len(b) {
		return false
	}
	for name, aa := range a {
		ba, ok := b[name]
		if !ok || len(aa) != len(ba) {
			return false
		}
		for attr, m := range aa {
			bm, ok := ba[attr]
			if !ok || bm != m {
				return false
			}
		}
	}
	return true
}

// Reannotate derives a new plan from v with the given annotations
// applied on top of the current ones (nodes absent from anns keep
// theirs). The receiver is not modified: unchanged nodes are shared,
// changed nodes are shallow-copied with a cloned annotation, and the
// result goes through New, so it is validated exactly like a freshly
// built plan (annotation totality, order, stages, materialization
// relevance). Unknown node names and leaf targets are errors.
func (v *VDP) Reannotate(anns map[string]Annotation) (*VDP, error) {
	for name := range anns {
		n := v.nodes[name]
		if n == nil {
			return nil, fmt.Errorf("vdp: reannotate unknown node %q", name)
		}
		if n.IsLeaf() {
			return nil, fmt.Errorf("vdp: reannotate leaf %q (leaves carry no annotation)", name)
		}
	}
	nodes := make([]*Node, 0, len(v.nodes))
	for _, name := range v.order {
		n := v.nodes[name]
		if ann, ok := anns[name]; ok {
			cp := *n
			cp.Ann = make(Annotation, len(ann))
			for a, m := range ann {
				cp.Ann[a] = m
			}
			nodes = append(nodes, &cp)
			continue
		}
		nodes = append(nodes, n)
	}
	return New(nodes...)
}
