package vdp

import (
	"fmt"
	"sort"
	"strings"

	"squirrel/internal/algebra"
	"squirrel/internal/relation"
)

// Node is one vertex of a VDP. Leaves (Def == nil) correspond to relations
// in source databases and carry the owning source's name; non-leaf nodes
// are relations maintained by the mediator and carry a definition and an
// annotation.
type Node struct {
	Name   string
	Schema *relation.Schema
	// Source names the owning source database; set exactly on leaves.
	Source string
	// Def defines the node in terms of its children; nil on leaves.
	Def Def
	// Export marks the node as part of the integrated view's export
	// relations (§5.1 item 5).
	Export bool
	// Ann annotates each attribute as materialized or virtual; nil on
	// leaves.
	Ann Annotation
}

// IsLeaf reports whether the node is a source-database relation.
func (n *Node) IsLeaf() bool { return n.Def == nil }

// IsSetNode reports whether the node stores a set (difference nodes); all
// other non-leaf nodes are bag nodes (§5.1 item 4).
func (n *Node) IsSetNode() bool {
	_, ok := n.Def.(DiffDef)
	return ok
}

// Semantics returns the storage semantics of the node's relation.
func (n *Node) Semantics() relation.Semantics {
	if n.IsSetNode() {
		return relation.Set
	}
	return relation.Bag
}

// FullyMaterialized reports whether every attribute is materialized.
func (n *Node) FullyMaterialized() bool {
	for _, a := range n.Schema.AttrNames() {
		if !n.Ann.IsMaterialized(a) {
			return false
		}
	}
	return true
}

// FullyVirtual reports whether every attribute is virtual.
func (n *Node) FullyVirtual() bool {
	for _, a := range n.Schema.AttrNames() {
		if n.Ann.IsMaterialized(a) {
			return false
		}
	}
	return true
}

// Hybrid reports whether the node mixes materialized and virtual
// attributes (a partially materialized relation).
func (n *Node) Hybrid() bool { return !n.FullyMaterialized() && !n.FullyVirtual() }

// MaterializedAttrs returns the materialized attribute names in schema
// order.
func (n *Node) MaterializedAttrs() []string {
	var out []string
	for _, a := range n.Schema.AttrNames() {
		if n.Ann.IsMaterialized(a) {
			out = append(out, a)
		}
	}
	return out
}

// VirtualAttrs returns the virtual attribute names in schema order.
func (n *Node) VirtualAttrs() []string {
	var out []string
	for _, a := range n.Schema.AttrNames() {
		if !n.Ann.IsMaterialized(a) {
			out = append(out, a)
		}
	}
	return out
}

// VDP is a validated View Decomposition Plan.
type VDP struct {
	nodes    map[string]*Node
	order    []string            // topological order, children before parents
	topo     map[string]int      // node -> index in order
	stages   [][]string          // antichain partition of order (stages.go)
	parents  map[string][]string // node -> parents (sorted)
	children map[string][]string // node -> distinct children (sorted)
	relevant map[string]bool     // see MaterializationRelevant
}

// New validates the given nodes and assembles a VDP.
func New(nodes ...*Node) (*VDP, error) {
	v := &VDP{
		nodes:    make(map[string]*Node, len(nodes)),
		parents:  make(map[string][]string),
		children: make(map[string][]string),
	}
	for _, n := range nodes {
		if n.Name == "" || n.Schema == nil {
			return nil, fmt.Errorf("vdp: node needs a name and a schema")
		}
		if n.Name != n.Schema.Name() {
			return nil, fmt.Errorf("vdp: node %q schema is named %q", n.Name, n.Schema.Name())
		}
		if _, dup := v.nodes[n.Name]; dup {
			return nil, fmt.Errorf("vdp: duplicate node %q", n.Name)
		}
		v.nodes[n.Name] = n
	}
	for _, n := range v.nodes {
		if err := v.validateNode(n); err != nil {
			return nil, err
		}
	}
	if err := v.buildOrder(); err != nil {
		return nil, err
	}
	// Every maximal node (no in-edges) must be in Export.
	for _, name := range v.order {
		n := v.nodes[name]
		if len(v.parents[name]) == 0 && !n.IsLeaf() && !n.Export {
			return nil, fmt.Errorf("vdp: maximal node %q must be an export relation", name)
		}
		if n.IsLeaf() && n.Export {
			return nil, fmt.Errorf("vdp: leaf %q cannot be an export relation", name)
		}
	}
	v.computeStages()
	v.computeRelevance()
	return v, nil
}

// computeRelevance marks every node from which materialized data is
// reachable upward: a node is materialization-relevant iff it has a
// materialized attribute itself or some ancestor does. Incremental update
// propagation only needs to traverse relevant nodes; everything else is
// reconstructed on demand by the VAP.
func (v *VDP) computeRelevance() {
	v.relevant = make(map[string]bool, len(v.order))
	for i := len(v.order) - 1; i >= 0; i-- { // parents before children
		name := v.order[i]
		n := v.nodes[name]
		rel := false
		if !n.IsLeaf() {
			for _, a := range n.Schema.AttrNames() {
				if n.Ann.IsMaterialized(a) {
					rel = true
					break
				}
			}
		}
		if !rel {
			for _, p := range v.parents[name] {
				if v.relevant[p] {
					rel = true
					break
				}
			}
		}
		v.relevant[name] = rel
	}
}

// MaterializationRelevant reports whether incremental updates to the node
// can affect any materialized data (the node or an ancestor stores
// something). The IUP skips propagation into irrelevant nodes.
func (v *VDP) MaterializationRelevant(name string) bool { return v.relevant[name] }

// Must is like New but panics on error; for tests and literal plans.
func Must(nodes ...*Node) *VDP {
	v, err := New(nodes...)
	if err != nil {
		panic(err)
	}
	return v
}

func (v *VDP) validateNode(n *Node) error {
	if n.IsLeaf() {
		if n.Source == "" {
			return fmt.Errorf("vdp: leaf %q must name its source database", n.Name)
		}
		if n.Ann != nil {
			return fmt.Errorf("vdp: leaf %q must not carry an annotation", n.Name)
		}
		return nil
	}
	if n.Source != "" {
		return fmt.Errorf("vdp: non-leaf %q must not name a source database", n.Name)
	}
	if n.Ann == nil {
		return fmt.Errorf("vdp: non-leaf %q needs an annotation", n.Name)
	}
	for attr := range n.Ann {
		if !n.Schema.HasAttr(attr) {
			return fmt.Errorf("vdp: node %q annotation mentions unknown attribute %q", n.Name, attr)
		}
	}
	for _, attr := range n.Schema.AttrNames() {
		if _, ok := n.Ann[attr]; !ok {
			return fmt.Errorf("vdp: node %q annotation missing attribute %q", n.Name, attr)
		}
	}
	// Resolve children and check def-shape restrictions.
	kids := n.Def.Children()
	if len(kids) == 0 {
		return fmt.Errorf("vdp: node %q definition has no children", n.Name)
	}
	anyLeaf := false
	for _, c := range kids {
		child, ok := v.nodes[c]
		if !ok {
			return fmt.Errorf("vdp: node %q references unknown child %q", n.Name, c)
		}
		if child.IsLeaf() {
			anyLeaf = true
		}
	}
	if anyLeaf {
		// §5.1 item 4(a): immediate parents of leaf nodes can involve only
		// projection and selection on those leaf nodes.
		spj, ok := n.Def.(SPJ)
		if !ok || len(spj.Inputs) != 1 || !algebra.IsTrue(spj.JoinCond) {
			return fmt.Errorf("vdp: leaf-parent %q must be a project/select over a single leaf", n.Name)
		}
	}
	switch d := n.Def.(type) {
	case SPJ:
		return v.validateSPJ(n, d)
	case UnionDef:
		return v.validateBranchPair(n, d.L, d.R, false)
	case DiffDef:
		return v.validateBranchPair(n, d.L, d.R, true)
	}
	return fmt.Errorf("vdp: node %q has unsupported definition type %T", n.Name, n.Def)
}

// inputSchema returns the post-projection schema of one SPJ input.
func (v *VDP) inputSchema(owner string, in SPJInput) (*relation.Schema, error) {
	child, ok := v.nodes[in.Rel]
	if !ok {
		return nil, fmt.Errorf("vdp: node %q references unknown child %q", owner, in.Rel)
	}
	// Selection attributes must exist on the child.
	for attr := range algebra.Attrs(in.Where) {
		if !child.Schema.HasAttr(attr) {
			return nil, fmt.Errorf("vdp: node %q input %s: selection attribute %q not in child schema", owner, in.Rel, attr)
		}
	}
	if len(in.Proj) == 0 {
		return child.Schema, nil
	}
	return child.Schema.Project(in.Rel, in.Proj)
}

func (v *VDP) validateSPJ(n *Node, d SPJ) error {
	if len(d.Proj) == 0 {
		return fmt.Errorf("vdp: SPJ node %q needs an explicit projection", n.Name)
	}
	// Build the concatenated post-projection schema; attribute names must
	// be disjoint across inputs.
	var concat *relation.Schema
	for i, in := range d.Inputs {
		s, err := v.inputSchema(n.Name, in)
		if err != nil {
			return err
		}
		if concat == nil {
			concat = s.Rename("·")
			continue
		}
		concat, err = concat.Concat("·", s)
		if err != nil {
			return fmt.Errorf("vdp: SPJ node %q input %d: %v", n.Name, i, err)
		}
	}
	for attr := range algebra.Attrs(d.JoinCond) {
		if !concat.HasAttr(attr) {
			return fmt.Errorf("vdp: node %q join condition attribute %q not available", n.Name, attr)
		}
	}
	for attr := range algebra.Attrs(d.Where) {
		if !concat.HasAttr(attr) {
			return fmt.Errorf("vdp: node %q selection attribute %q not available", n.Name, attr)
		}
	}
	if len(d.Proj) != n.Schema.Arity() {
		return fmt.Errorf("vdp: node %q projection arity %d != schema arity %d", n.Name, len(d.Proj), n.Schema.Arity())
	}
	for i, p := range d.Proj {
		if !concat.HasAttr(p) {
			return fmt.Errorf("vdp: node %q projects unknown attribute %q", n.Name, p)
		}
		if n.Schema.AttrNames()[i] != p {
			return fmt.Errorf("vdp: node %q schema attribute %d is %q but projection yields %q (renaming is not supported)",
				n.Name, i, n.Schema.AttrNames()[i], p)
		}
	}
	return nil
}

func (v *VDP) validateBranchPair(n *Node, l, r Branch, isDiff bool) error {
	for _, b := range []Branch{l, r} {
		child, ok := v.nodes[b.Rel]
		if !ok {
			return fmt.Errorf("vdp: node %q references unknown child %q", n.Name, b.Rel)
		}
		if len(b.Proj) != n.Schema.Arity() {
			return fmt.Errorf("vdp: node %q branch %s projection arity %d != schema arity %d",
				n.Name, b.Rel, len(b.Proj), n.Schema.Arity())
		}
		for _, p := range b.Proj {
			if !child.Schema.HasAttr(p) {
				return fmt.Errorf("vdp: node %q branch %s projects unknown attribute %q", n.Name, b.Rel, p)
			}
		}
		for attr := range algebra.Attrs(b.Where) {
			if !child.Schema.HasAttr(attr) {
				return fmt.Errorf("vdp: node %q branch %s selection attribute %q not in child schema", n.Name, b.Rel, attr)
			}
		}
		// Types must match the node schema positionally.
		for i, p := range b.Proj {
			ct, _ := child.Schema.AttrType(p)
			nt := n.Schema.Attrs()[i].Type
			if ct != nt {
				return fmt.Errorf("vdp: node %q branch %s position %d: type %s != node type %s",
					n.Name, b.Rel, i, ct, nt)
			}
		}
	}
	return nil
}

func (v *VDP) buildOrder() error {
	// Collect distinct edges.
	indeg := make(map[string]int, len(v.nodes))
	for name := range v.nodes {
		indeg[name] = 0
	}
	childSets := make(map[string]map[string]bool)
	for name, n := range v.nodes {
		if n.IsLeaf() {
			continue
		}
		set := make(map[string]bool)
		for _, c := range n.Def.Children() {
			set[c] = true
		}
		childSets[name] = set
	}
	for name, set := range childSets {
		kids := make([]string, 0, len(set))
		for c := range set {
			kids = append(kids, c)
			v.parents[c] = append(v.parents[c], name)
		}
		sort.Strings(kids)
		v.children[name] = kids
	}
	for _, ps := range v.parents {
		sort.Strings(ps)
	}
	// Kahn's algorithm from leaves upward: indegree = number of children
	// not yet placed.
	for name, kids := range v.children {
		indeg[name] = len(kids)
	}
	var wave []string
	for name, d := range indeg {
		if d == 0 {
			wave = append(wave, name)
		}
	}
	sort.Strings(wave)
	var order []string
	// Emit ready nodes in whole waves (sorted within each wave) rather
	// than one at a time: the order stays deterministic and topological,
	// and simultaneously-ready nodes land adjacently, so the antichain
	// chunking of stages.go cuts wide stages instead of interleaving
	// parents with unrelated leaves.
	for len(wave) > 0 {
		var next []string
		for _, cur := range wave {
			order = append(order, cur)
			for _, p := range v.parents[cur] {
				indeg[p]--
				if indeg[p] == 0 {
					next = append(next, p)
				}
			}
		}
		sort.Strings(next)
		wave = next
	}
	if len(order) != len(v.nodes) {
		return fmt.Errorf("vdp: the graph contains a cycle")
	}
	v.order = order
	v.topo = make(map[string]int, len(order))
	for i, name := range order {
		v.topo[name] = i
	}
	return nil
}

// Node returns the named node, or nil.
func (v *VDP) Node(name string) *Node { return v.nodes[name] }

// Order returns all node names in topological order (children before
// parents). The slice must not be modified.
func (v *VDP) Order() []string { return v.order }

// Parents returns the parents of a node (sorted).
func (v *VDP) Parents(name string) []string { return v.parents[name] }

// Children returns the distinct children of a node (sorted).
func (v *VDP) Children(name string) []string { return v.children[name] }

// Leaves returns the leaf node names in topological order.
func (v *VDP) Leaves() []string {
	var out []string
	for _, name := range v.order {
		if v.nodes[name].IsLeaf() {
			out = append(out, name)
		}
	}
	return out
}

// NonLeaves returns the non-leaf node names in topological order.
func (v *VDP) NonLeaves() []string {
	var out []string
	for _, name := range v.order {
		if !v.nodes[name].IsLeaf() {
			out = append(out, name)
		}
	}
	return out
}

// Exports returns the export relation names in topological order.
func (v *VDP) Exports() []string {
	var out []string
	for _, name := range v.order {
		if v.nodes[name].Export {
			out = append(out, name)
		}
	}
	return out
}

// Sources returns the sorted distinct source database names.
func (v *VDP) Sources() []string {
	set := make(map[string]bool)
	for _, name := range v.order {
		if n := v.nodes[name]; n.IsLeaf() {
			set[n.Source] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// LeavesOf returns the leaf names owned by the given source database.
func (v *VDP) LeavesOf(source string) []string {
	var out []string
	for _, name := range v.order {
		if n := v.nodes[name]; n.IsLeaf() && n.Source == source {
			out = append(out, name)
		}
	}
	return out
}

// String renders the plan deterministically: one node per line in
// topological order with definition and annotation.
func (v *VDP) String() string {
	var b strings.Builder
	for _, name := range v.order {
		n := v.nodes[name]
		switch {
		case n.IsLeaf():
			fmt.Fprintf(&b, "□ %s @ %s\n", n.Schema, n.Source)
		default:
			marker := "○"
			if n.Export {
				marker = "◎"
			}
			fmt.Fprintf(&b, "%s %s %s := %s\n", marker, name, n.Ann.String(n.Schema), n.Def)
		}
	}
	return b.String()
}
