package vdp

import (
	"fmt"
	"sort"
)

// This file turns the §5.3 "Heuristics for optimization" prose into an
// executable advisor. The paper declines to give precise guidelines and
// offers three suggestions instead:
//
//  1. "if an attribute is rarely accessed … it is a candidate to be
//     selected as a virtual attribute";
//  2. leaf-parent nodes are expensive to evaluate (they poll remote
//     databases), so auxiliary data should stay materialized unless its
//     own maintenance dominates (Example 2.2: keep R′ virtual when R
//     changes frequently and its join partners rarely force polling);
//  3. "the minimal suggested amount of materialization for expensive join
//     relations are the key attributes from the underlying relations, so
//     that the virtual attributes of the join relation can be fetched
//     efficiently" (the key-based construction of Example 2.3).
//
// Advise applies exactly these rules to a plan given observed (or
// estimated) workload statistics.

// WorkloadProfile summarizes what the §5.3 advisor needs to know about
// the observed (or estimated) workload.
type WorkloadProfile struct {
	// AccessFreq is the relative access frequency of each export-relation
	// attribute in queries, in [0,1] (fraction of queries touching it).
	// Missing attributes read as 0 (never accessed).
	AccessFreq map[string]float64
	// UpdateShare is each source database's share of the update stream,
	// in [0,1] (fractions need not sum to 1; they are compared pairwise).
	UpdateShare map[string]float64
	// HotAttrThreshold is the access frequency at or above which an
	// export attribute is materialized. Nil means the default (0.1); an
	// explicit zero is legal and materializes every attribute. Build one
	// with Threshold.
	HotAttrThreshold *float64
	// ChurnThreshold is the update share at or above which a source
	// counts as frequently changing. Nil means the default (0.5); an
	// explicit zero is legal. Build one with Threshold.
	ChurnThreshold *float64
}

// Default advisor thresholds, used when the corresponding
// WorkloadProfile field is nil.
const (
	DefHotAttrThreshold = 0.1
	DefChurnThreshold   = 0.5
)

// Threshold wraps an explicit threshold value for WorkloadProfile.
// Unlike the zero value of a plain float64 field, Threshold(0) is a
// legal threshold (everything counts as hot / churning), distinct from
// "use the default".
func Threshold(x float64) *float64 { return &x }

func (p WorkloadProfile) hotThreshold() float64 {
	if p.HotAttrThreshold != nil {
		return *p.HotAttrThreshold
	}
	return DefHotAttrThreshold
}

func (p WorkloadProfile) churnThreshold() float64 {
	if p.ChurnThreshold != nil {
		return *p.ChurnThreshold
	}
	return DefChurnThreshold
}

// Advice is the advisor's output: one annotation per non-leaf node, plus
// prose justifications for inspection.
type Advice struct {
	Annotations map[string]Annotation
	Reasons     []string
}

// Advise computes §5.3-style annotations for the plan under the given
// profile. Apply them through Builder.Annotate (rebuild the plan) or use
// them to construct nodes directly.
func (v *VDP) Advise(p WorkloadProfile) Advice {
	out := Advice{Annotations: make(map[string]Annotation)}
	reason := func(format string, args ...any) {
		out.Reasons = append(out.Reasons, fmt.Sprintf(format, args...))
	}

	for _, name := range v.NonLeaves() {
		n := v.Node(name)
		ann := make(Annotation, n.Schema.Arity())

		if n.Export {
			// Rule 1: materialize hot attributes, virtualize cold ones.
			for _, a := range n.Schema.AttrNames() {
				if p.AccessFreq[a] >= p.hotThreshold() {
					ann[a] = Materialized
				} else {
					ann[a] = Virtual
					reason("%s.%s: access freq %.2f < %.2f → virtual", name, a, p.AccessFreq[a], p.hotThreshold())
				}
			}
			// Rule 3: keep child keys materialized so virtual attributes
			// can be fetched by key (Example 2.3's minimal
			// materialization for EXPENSIVE JOIN relations — single-input
			// nodes are cheap to rebuild and skip this rule).
			if d, isJoin := n.Def.(SPJ); isJoin && len(d.Inputs) > 1 {
				for _, c := range v.Children(name) {
					child := v.Node(c)
					for _, k := range child.Schema.KeyAttrs() {
						if n.Schema.HasAttr(k) && ann[k] == Virtual {
							ann[k] = Materialized
							reason("%s.%s: child %s's key → materialized (enables key-based temporaries)", name, k, c)
						}
					}
				}
			}
			// Never produce an all-virtual export with hot attributes
			// unreachable: if everything ended up virtual but the export
			// is queried at all, keep the most-accessed attribute.
			allVirtual := true
			for _, a := range n.Schema.AttrNames() {
				if ann[a] == Materialized {
					allVirtual = false
					break
				}
			}
			if allVirtual {
				best, bestF := "", -1.0
				for _, a := range n.Schema.AttrNames() {
					if p.AccessFreq[a] > bestF {
						best, bestF = a, p.AccessFreq[a]
					}
				}
				if bestF > 0 {
					ann[best] = Materialized
					reason("%s.%s: hottest attribute of an otherwise virtual export → materialized", name, best)
				}
			}
			out.Annotations[name] = ann
			continue
		}

		// Auxiliary nodes. Rule 2 / Example 2.2: keep a leaf-parent
		// virtual when its OWN source churns (maintenance is constant
		// work) and the OTHER sources feeding the same parents rarely
		// change (polling is rare). Otherwise materialize.
		if v.IsLeafParent(name) {
			leaf := v.Node(v.Children(name)[0])
			own := p.UpdateShare[leaf.Source]
			maxOther := 0.0
			for _, parent := range v.Parents(name) {
				for _, sib := range v.Children(parent) {
					if sib == name {
						continue
					}
					for _, src := range sourcesFeeding(v, sib) {
						if src != leaf.Source && p.UpdateShare[src] > maxOther {
							maxOther = p.UpdateShare[src]
						}
					}
				}
			}
			if own >= p.churnThreshold() && maxOther < p.churnThreshold() {
				out.Annotations[name] = AllVirtual(n.Schema)
				reason("%s: source %s churns (%.2f) while partners are quiet (%.2f) → virtual (Example 2.2)",
					name, leaf.Source, own, maxOther)
				continue
			}
			out.Annotations[name] = AllMaterialized(n.Schema)
			continue
		}
		// Inner (non-export, non-leaf-parent) nodes: materialized —
		// they exist precisely to support propagation.
		out.Annotations[name] = AllMaterialized(n.Schema)
	}
	sort.Strings(out.Reasons)
	return out
}

// sourcesFeeding returns the source databases whose leaves reach the node.
func sourcesFeeding(v *VDP, name string) []string {
	seen := map[string]bool{}
	var srcs []string
	var walk func(string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		node := v.Node(n)
		if node.IsLeaf() {
			srcs = append(srcs, node.Source)
			return
		}
		for _, c := range v.Children(n) {
			walk(c)
		}
	}
	walk(name)
	sort.Strings(srcs)
	return srcs
}
