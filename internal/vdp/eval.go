package vdp

import (
	"fmt"

	"squirrel/internal/algebra"
	"squirrel/internal/relation"
)

// Resolver supplies the current state of a child relation during def
// evaluation or update propagation. During the IUP kernel run it resolves
// fully-materialized nodes to their stores and virtual/hybrid nodes to the
// temporary relations populated by the VAP; during from-scratch evaluation
// (tests, the consistency oracle) it resolves to replayed source states.
type Resolver func(name string) (*relation.Relation, error)

// ResolverFromCatalog adapts a map to a Resolver.
func ResolverFromCatalog(cat map[string]*relation.Relation) Resolver {
	return func(name string) (*relation.Relation, error) {
		r, ok := cat[name]
		if !ok {
			return nil, fmt.Errorf("vdp: resolver has no relation %q", name)
		}
		return r, nil
	}
}

// evalInput computes π_Proj σ_Where (child) as a bag. If the resolved
// child relation is narrower than the full child schema (a temporary), the
// projection is restricted to the attributes actually present; the caller
// guarantees (via the Requirements machinery) that everything needed
// downstream is present.
func evalInput(in SPJInput, resolve Resolver) (*relation.Relation, error) {
	child, err := resolve(in.Rel)
	if err != nil {
		return nil, err
	}
	proj := in.Proj
	if len(proj) == 0 {
		proj = child.Schema().AttrNames()
	} else {
		// Restrict to available attributes (temporaries may be narrow).
		var avail []string
		for _, p := range proj {
			if child.Schema().HasAttr(p) {
				avail = append(avail, p)
			}
		}
		proj = avail
	}
	return projectSelect(child, in.Rel, proj, in.Where)
}

// projectSelect computes π_proj σ_where rel as a bag named name.
// Selection conjuncts whose attributes are unavailable on rel are skipped;
// callers re-apply full conditions at the top level where all attributes
// are in scope.
func projectSelect(rel *relation.Relation, name string, proj []string, where algebra.Expr) (*relation.Relation, error) {
	avail := make(map[string]bool, rel.Schema().Arity())
	for _, a := range rel.Schema().AttrNames() {
		avail[a] = true
	}
	applicable, _ := algebra.ConjunctsOver(where, avail)
	schema, err := rel.Schema().Project(name, proj)
	if err != nil {
		return nil, err
	}
	positions, err := rel.Schema().Positions(proj)
	if err != nil {
		return nil, err
	}
	out := relation.NewBag(schema)
	var pred func(relation.Tuple) (bool, error)
	if !algebra.IsTrue(applicable) {
		pred = func(t relation.Tuple) (bool, error) {
			return algebra.EvalPred(applicable, rel.Schema(), t)
		}
	}
	// Vectorized select-project: on the blocks backend rows move
	// column-to-column and only predicate evaluation touches tuples.
	if err := relation.ProjectSelectInto(out, rel, positions, pred); err != nil {
		return nil, err
	}
	return out, nil
}

// conform re-labels rel's tuples into the target schema positionally,
// preserving multiplicities, with the target semantics.
func conform(rel *relation.Relation, target *relation.Schema, sem relation.Semantics) (*relation.Relation, error) {
	if rel.Schema().Arity() != target.Arity() {
		return nil, fmt.Errorf("vdp: cannot conform %s to %s: arity mismatch", rel.Schema(), target)
	}
	out := relation.New(target, sem)
	relation.CopyInto(out, rel)
	return out, nil
}

// EvalDef computes the full contents of non-leaf node n from its
// children's states, honoring the node's set/bag semantics. This is the
// ground truth used for initialization and by the incremental-equals-
// recompute invariant tests.
func EvalDef(n *Node, resolve Resolver) (*relation.Relation, error) {
	if n.IsLeaf() {
		return nil, fmt.Errorf("vdp: EvalDef on leaf %q", n.Name)
	}
	switch d := n.Def.(type) {
	case SPJ:
		return evalSPJ(n, d, resolve, nil, nil)
	case UnionDef:
		l, err := evalBranchBag(d.L, resolve)
		if err != nil {
			return nil, err
		}
		r, err := evalBranchBag(d.R, resolve)
		if err != nil {
			return nil, err
		}
		out := relation.NewBag(n.Schema)
		relation.CopyInto(out, l)
		relation.CopyInto(out, r)
		return out, nil
	case DiffDef:
		l, err := evalBranchSet(d.L, resolve)
		if err != nil {
			return nil, err
		}
		r, err := evalBranchSet(d.R, resolve)
		if err != nil {
			return nil, err
		}
		out := relation.NewSet(n.Schema)
		l.Each(func(t relation.Tuple, _ int) bool {
			if r.Count(t) == 0 {
				out.Insert(t)
			}
			return true
		})
		return out, nil
	}
	return nil, fmt.Errorf("vdp: node %q has unsupported definition type %T", n.Name, n.Def)
}

// evalSPJ computes the SPJ definition. If restrictAttrs is non-nil the
// output is projected onto restrictAttrs (which must be a subset of the
// node's attributes) and extraCond is applied before projecting; this is
// the restricted evaluation used for temporary relations (§6.3).
func evalSPJ(n *Node, d SPJ, resolve Resolver, restrictAttrs []string, extraCond algebra.Expr) (*relation.Relation, error) {
	rels := make([]*relation.Relation, len(d.Inputs))
	for i, in := range d.Inputs {
		r, err := evalInput(in, resolve)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	joined, err := algebra.JoinChain(rels, algebra.Conj(d.JoinCond, d.Where, extraCond), n.Name+"·joined")
	if err != nil {
		return nil, err
	}
	proj := d.Proj
	outSchema := n.Schema
	if restrictAttrs != nil {
		proj = restrictAttrs
		outSchema, err = n.Schema.Project(n.Name, restrictAttrs)
		if err != nil {
			return nil, err
		}
	}
	positions, err := joined.Schema().Positions(proj)
	if err != nil {
		return nil, err
	}
	out := relation.NewBag(outSchema)
	if err := relation.ProjectSelectInto(out, joined, positions, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// evalBranchBag computes π_Proj σ_Where (child) with bag semantics, in
// branch-projection attribute order.
func evalBranchBag(b Branch, resolve Resolver) (*relation.Relation, error) {
	child, err := resolve(b.Rel)
	if err != nil {
		return nil, err
	}
	return projectSelect(child, b.Rel+"·branch", b.Proj, b.Where)
}

// evalBranchSet computes the branch as a set (difference operands are read
// with set semantics, §5.1).
func evalBranchSet(b Branch, resolve Resolver) (*relation.Relation, error) {
	bag, err := evalBranchBag(b, resolve)
	if err != nil {
		return nil, err
	}
	return bag.Distinct(), nil
}

// EvalRestricted computes π_attrs σ_cond (n) from the node's children —
// the construction of temporary relations performed bottom-up by the VAP
// (§6.3 phase two). attrs must be a subset of the node's attributes; cond
// is evaluated over the node's full attribute set (children supply every
// attribute cond mentions, via the Requirements computation). The result
// schema is the node schema projected to attrs.
func EvalRestricted(n *Node, attrs []string, cond algebra.Expr, resolve Resolver) (*relation.Relation, error) {
	if n.IsLeaf() {
		return nil, fmt.Errorf("vdp: EvalRestricted on leaf %q", n.Name)
	}
	switch d := n.Def.(type) {
	case SPJ:
		return evalSPJ(n, d, resolve, attrs, cond)
	case UnionDef, DiffDef:
		full, err := EvalDef(n, resolve)
		if err != nil {
			return nil, err
		}
		restricted, err := projectSelect(full, n.Name, attrs, cond)
		if err != nil {
			return nil, err
		}
		if n.IsSetNode() {
			return restricted.Distinct(), nil
		}
		return restricted, nil
	}
	return nil, fmt.Errorf("vdp: node %q has unsupported definition type %T", n.Name, n.Def)
}

// EvalAll computes every non-leaf relation bottom-up from the leaf states
// supplied by resolve, returning a catalog of all node states. This is the
// from-scratch oracle: state(V) = ν(state(DB)).
func (v *VDP) EvalAll(resolve Resolver) (map[string]*relation.Relation, error) {
	out := make(map[string]*relation.Relation, len(v.order))
	inner := func(name string) (*relation.Relation, error) {
		if r, ok := out[name]; ok {
			return r, nil
		}
		return resolve(name)
	}
	for _, name := range v.order {
		n := v.nodes[name]
		if n.IsLeaf() {
			r, err := resolve(name)
			if err != nil {
				return nil, err
			}
			out[name] = r
			continue
		}
		r, err := EvalDef(n, inner)
		if err != nil {
			return nil, fmt.Errorf("vdp: evaluating %s: %w", name, err)
		}
		out[name] = r
	}
	return out, nil
}
