package vdp

// Antichain stages for the staged parallel kernel. The Kernel Algorithm
// (§6.4) processes nodes "in topological order", and Theorem 7.1's
// sibling-state discipline fixes, per fired rule, which sibling states are
// resolved NEW (nodes earlier in that order) and which OLD (the node
// itself and later ones). Nothing in the discipline requires the order to
// be executed serially: two nodes with no ancestry between them never
// read each other's post-state mid-flight as long as each rule still
// resolves the states the chosen order dictates.
//
// Stages() therefore partitions the validated topological order into
// maximal antichain runs: consecutive slices of Order() in which no node
// is defined over another member of the same slice. Because the slices
// are cut from Order() itself (rather than recomputed by depth, which
// could permute incomparable nodes), concatenating the stages reproduces
// Order() exactly — a staged executor that resolves same-stage states by
// topological index replays the serial kernel's discipline verbatim,
// which is what lets the differential oracle demand byte-identical
// stores.
//
// Invariants (checked by stages_test.go):
//   - concat(Stages()) == Order()
//   - every child of a stage member lies in a strictly earlier stage, so
//     at stage entry all deltas feeding the stage are final
//   - no stage member is an ancestor of another member of its stage

// computeStages fills v.stages by greedy antichain chunking of v.order.
// Called once from New, after buildOrder.
func (v *VDP) computeStages() {
	var stages [][]string
	var cur []string
	inCur := make(map[string]bool)
	for _, name := range v.order {
		for _, c := range v.children[name] {
			if inCur[c] {
				stages = append(stages, cur)
				cur = nil
				inCur = make(map[string]bool)
				break
			}
		}
		cur = append(cur, name)
		inCur[name] = true
	}
	if len(cur) > 0 {
		stages = append(stages, cur)
	}
	v.stages = stages
}

// Stages returns the antichain partition of the topological order:
// children-first stages whose concatenation equals Order(). Within a
// stage no node depends on another, so the members' maintenance work is
// mutually independent once same-stage sibling reads follow the
// topological-index discipline. The result is shared; callers must not
// modify it.
func (v *VDP) Stages() [][]string { return v.stages }

// StageCount reports the number of antichain stages.
func (v *VDP) StageCount() int { return len(v.stages) }

// MaxStageWidth reports the size of the widest antichain stage — the
// maximum parallelism a staged executor can extract from this plan.
func (v *VDP) MaxStageWidth() int {
	w := 0
	for _, s := range v.stages {
		if len(s) > w {
			w = len(s)
		}
	}
	return w
}

// TopoIndex returns the node's position in Order(), or -1 if unknown.
// The staged kernel uses it to decide, for two dirty nodes sharing a
// stage, which resolves to its new state when the other's rules fire.
func (v *VDP) TopoIndex(name string) int {
	if i, ok := v.topo[name]; ok {
		return i
	}
	return -1
}
