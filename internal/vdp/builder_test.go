package vdp

import (
	"strings"
	"testing"

	"squirrel/internal/relation"
)

func builderSources(t *testing.T, b *Builder) {
	t.Helper()
	rSchema := relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}, {Name: "r4", Type: relation.KindInt}}, "r1")
	sSchema := relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt},
		{Name: "s3", Type: relation.KindInt}}, "s1")
	if err := b.AddSource("db1", rSchema); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSource("db2", sSchema); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPaperView(t *testing.T) {
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Expect leaves R, S; leaf-parents R', S'; export T (topological, so
	// exact interleaving may vary).
	if len(v.Order()) != 5 || v.Order()[4] != "T" || len(v.Leaves()) != 2 {
		t.Fatalf("order = %v", v.Order())
	}
	if !v.Node("T").Export || v.Node("R'").Export {
		t.Errorf("export flags wrong")
	}
	// The per-table conditions must be pushed into leaf-parents.
	rp := v.Node("R'").Def.(SPJ)
	if !strings.Contains(rp.Where.String(), "r4 = 100") {
		t.Errorf("R' where = %v", rp.Where)
	}
	sp := v.Node("S'").Def.(SPJ)
	if !strings.Contains(sp.Where.String(), "s3 < 50") {
		t.Errorf("S' where = %v", sp.Where)
	}
	// The join condition survives at the T level.
	tn := v.Node("T").Def.(SPJ)
	if !strings.Contains(tn.Where.String(), "r2 = s1") {
		t.Errorf("T where = %v", tn.Where)
	}
	// Leaf-parent projections: R' keeps r1, r3 (outputs) and r2 (join);
	// r4 is filtered then dropped.
	if v.Node("R'").Schema.HasAttr("r4") {
		t.Errorf("r4 should be projected away: %s", v.Node("R'").Schema)
	}
	for _, a := range []string{"r1", "r2", "r3"} {
		if !v.Node("R'").Schema.HasAttr(a) {
			t.Errorf("R' missing %s", a)
		}
	}
	// Keys propagate into leaf-parents (needed for key-based plans).
	if got := strings.Join(v.Node("R'").Schema.KeyAttrs(), ","); got != "r1" {
		t.Errorf("R' key = %s", got)
	}
	// Evaluation ground truth.
	states, err := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	if err != nil {
		t.Fatal(err)
	}
	if states["T"].Card() != 3 {
		t.Errorf("T = %s", states["T"])
	}
}

func TestBuilderSingleTableView(t *testing.T) {
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("V", `SELECT r1, r2 FROM R WHERE r4 = 100`); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n := v.Node("V")
	if n == nil || !n.Export || !v.IsLeafParent("V") {
		t.Fatalf("single-table view should be an exported leaf-parent")
	}
}

func TestBuilderUnionAndExcept(t *testing.T) {
	for _, op := range []string{"UNION", "EXCEPT"} {
		b := NewBuilder()
		builderSources(t, b)
		sql := `SELECT r1 FROM R WHERE r4 = 100 ` + op + ` SELECT s1 FROM S WHERE s3 < 50`
		if err := b.AddViewSQL("W", sql); err != nil {
			t.Fatal(err)
		}
		v, err := b.Build()
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		n := v.Node("W")
		if n == nil || !n.Export {
			t.Fatalf("%s: no export", op)
		}
		if op == "EXCEPT" && !n.IsSetNode() {
			t.Errorf("EXCEPT should build a set node")
		}
		if op == "UNION" && n.IsSetNode() {
			t.Errorf("UNION should build a bag node")
		}
		states, err := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
		if err != nil {
			t.Fatal(err)
		}
		// R side: r1 ∈ {1,2,3}; S side: s1 ∈ {10,20}.
		if op == "UNION" && states["W"].Card() != 5 {
			t.Errorf("union = %s", states["W"])
		}
		if op == "EXCEPT" && states["W"].Card() != 3 {
			t.Errorf("except = %s", states["W"])
		}
	}
}

func TestBuilderSharedLeafParents(t *testing.T) {
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("V1", `SELECT r1, s1 FROM R JOIN S ON r2 = s1`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("V2", `SELECT r1, s2 FROM R JOIN S ON r2 = s1`); err == nil {
		// Different projections → same leaf-parent names with different
		// defs: must be rejected loudly rather than silently shared.
		t.Log("V2 accepted: leaf-parents were reusable")
	}
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderAnnotate(t *testing.T) {
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("T", `SELECT r1, s1, s2 FROM R JOIN S ON r2 = s1`); err != nil {
		t.Fatal(err)
	}
	b.Annotate("T", Ann([]string{"r1", "s1"}, []string{"s2"}))
	b.Annotate("R'", Ann(nil, []string{"r1", "r2"}))
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Node("T").Hybrid() {
		t.Errorf("T annotation not applied")
	}
	if !v.Node("R'").FullyVirtual() {
		t.Errorf("R' annotation not applied")
	}
	if !v.Node("S'").FullyMaterialized() {
		t.Errorf("S' should default to materialized")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("V", `SELECT nope FROM R`); err == nil {
		// Column check happens at build; either stage may reject.
		if _, err2 := b.Build(); err2 == nil {
			t.Errorf("unknown column should fail")
		}
	}

	b2 := NewBuilder()
	builderSources(t, b2)
	if err := b2.AddViewSQL("V", `SELECT x FROM NOPE`); err == nil {
		t.Errorf("unknown table should fail")
	}
	if err := b2.AddViewSQL("V", `SELECT r1 FROM R AS alias`); err == nil {
		t.Errorf("alias should be rejected")
	}
	if err := b2.AddViewSQL("bad sql", `garbage`); err == nil {
		t.Errorf("parse error should propagate")
	}

	b3 := NewBuilder()
	builderSources(t, b3)
	b3.Annotate("GHOST", Ann(nil, nil))
	if _, err := b3.Build(); err == nil {
		t.Errorf("annotation for unknown node should fail")
	}

	// Duplicate source.
	b4 := NewBuilder()
	builderSources(t, b4)
	if err := b4.AddSource("db1", relation.MustSchema("R",
		[]relation.Attribute{{Name: "r1", Type: relation.KindInt}})); err == nil {
		t.Errorf("duplicate source should fail")
	}
}

func TestBuilderCrossJoin(t *testing.T) {
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("X", `SELECT r1, s1 FROM R CROSS JOIN S`); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	states, err := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	if err != nil {
		t.Fatal(err)
	}
	if states["X"].Card() != 4*3 {
		t.Errorf("cross join card = %d", states["X"].Card())
	}
}

func TestBuilderSelectStar(t *testing.T) {
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("ALL", `SELECT * FROM R WHERE r4 = 100`); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if v.Node("ALL").Schema.Arity() != 4 {
		t.Errorf("select * arity = %d", v.Node("ALL").Schema.Arity())
	}
}

func TestBuilderViewOverView(t *testing.T) {
	// Figure 4's shape: G reads export E directly.
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("E", `SELECT r1, r3, s1 FROM R JOIN S ON r2 = s1`); err != nil {
		t.Fatal(err)
	}
	// Single-table block over the non-leaf E.
	if err := b.AddViewSQL("E2", `SELECT r1, s1 FROM E WHERE r3 < 100`); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if v.Node("E2") == nil || !v.Node("E2").Export {
		t.Fatalf("E2 missing")
	}
	kids := v.Children("E2")
	if len(kids) != 1 || kids[0] != "E" {
		t.Fatalf("E2 children = %v", kids)
	}
	states, err := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	if err != nil {
		t.Fatal(err)
	}
	// E joins all R rows (no r4 filter) with all S rows on r2=s1 → E2
	// filters r3<100: rows r1∈{1,3,4}.
	if states["E2"].Card() != 3 {
		t.Fatalf("E2 = %s", states["E2"])
	}
}

func TestBuilderOverlappingAttrsRejected(t *testing.T) {
	// Joining two operands that would both contribute the same attribute
	// name must be rejected (the VDP language has no renaming).
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("E", `SELECT r1, s1 FROM R JOIN S ON r2 = s1`); err != nil {
		t.Fatal(err)
	}
	err := b.AddViewSQL("BAD", `SELECT r1, s1, s2 FROM E JOIN S ON r1 = s3`)
	if err == nil {
		_, err = b.Build()
	}
	if err == nil {
		t.Fatalf("duplicate attribute across join operands must be rejected")
	}
}

func TestBuilderNumberedLeafParents(t *testing.T) {
	// Two views needing different projections/selections of the same leaf
	// get numbered leaf-parent siblings.
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("V1", `SELECT r1, s1 FROM R JOIN S ON r2 = s1`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("V2", `SELECT r3, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100`); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if v.Node("R'") == nil || v.Node("R'2") == nil {
		t.Fatalf("expected numbered leaf-parents: %v", v.Order())
	}
	states, err := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	if err != nil {
		t.Fatal(err)
	}
	if states["V1"].Card() != 4 || states["V2"].Card() != 3 {
		t.Fatalf("V1=%s V2=%s", states["V1"], states["V2"])
	}
}

func TestBuilderExceptOverView(t *testing.T) {
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("E", `SELECT r1, r2 FROM R WHERE r4 = 100`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("G", `SELECT r1 FROM E EXCEPT SELECT s1 FROM S`); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Node("G").IsSetNode() {
		t.Fatalf("G must be a set node")
	}
	states, err := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	if err != nil {
		t.Fatal(err)
	}
	// E r1 ∈ {1,2,3}; S s1 ∈ {10,20,30} → G = {1,2,3}.
	if states["G"].Card() != 3 {
		t.Fatalf("G = %s", states["G"])
	}
}

func TestRulebaseRendering(t *testing.T) {
	b := NewBuilder()
	builderSources(t, b)
	if err := b.AddViewSQL("E", `SELECT r1, r2 FROM R WHERE r4 = 100`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("G", `SELECT r1 FROM E EXCEPT SELECT s1 FROM S`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("U", `SELECT r1 FROM E UNION SELECT s1 FROM S`); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rb := v.Rulebase()
	for _, want := range []string{
		"on ΔR (edge E→R)",
		"on ΔG_l (edge G→G_l):  ΔG⁺ = (ΔG_l)⁺ − G_r",
		"ΔG⁺ = (ΔG_r)⁻ ∩ G_l",
		"on ΔU_l (edge U→U_l):  ΔU = π σ(ΔU_l)",
	} {
		if !strings.Contains(rb, want) {
			t.Errorf("rulebase missing %q:\n%s", want, rb)
		}
	}
}
