package vdp

import (
	"fmt"
	"strings"

	"squirrel/internal/algebra"
	"squirrel/internal/relation"
	"squirrel/internal/sqlview"
)

// Builder assembles a VDP from source-relation declarations and parsed
// view definitions, performing the standard decomposition: one leaf per
// source relation, one leaf-parent node per used source relation holding
// the pushed-down selection and the minimal projection, one SPJ node per
// join block, and a union/difference node on top where the definition has
// one. Different views in the same mediator share leaves; leaf-parents are
// shared when their definitions coincide.
//
// Newly created non-leaf nodes default to fully materialized annotations;
// call Annotate before Build to override (the hybrid configurations of
// Examples 2.2, 2.3 and 5.1).
type Builder struct {
	nodes       map[string]*Node
	order       []string
	annotations map[string]Annotation
}

// NewBuilder creates an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		nodes:       make(map[string]*Node),
		annotations: make(map[string]Annotation),
	}
}

func (b *Builder) add(n *Node) error {
	if _, dup := b.nodes[n.Name]; dup {
		return fmt.Errorf("vdp: builder: duplicate node %q", n.Name)
	}
	b.nodes[n.Name] = n
	b.order = append(b.order, n.Name)
	return nil
}

// AddSource declares a source-database relation (a leaf).
func (b *Builder) AddSource(source string, schema *relation.Schema) error {
	return b.add(&Node{Name: schema.Name(), Schema: schema, Source: source})
}

// Annotate overrides the annotation a node will receive at Build time.
// It may be called before the node exists (e.g. for nodes AddView will
// create).
func (b *Builder) Annotate(node string, ann Annotation) {
	b.annotations[node] = ann
}

// AddViewSQL parses and adds a view definition.
func (b *Builder) AddViewSQL(name, sql string) error {
	stmt, err := sqlview.Parse(sql)
	if err != nil {
		return err
	}
	return b.AddView(name, stmt)
}

// AddView adds a parsed view definition as an export relation named name.
func (b *Builder) AddView(name string, stmt *sqlview.Stmt) error {
	if stmt.Op == "" {
		_, err := b.addBlock(name, stmt.Left, true)
		return err
	}
	left, err := b.addBlock(name+"_l", stmt.Left, false)
	if err != nil {
		return err
	}
	right, err := b.addBlock(name+"_r", stmt.Right, false)
	if err != nil {
		return err
	}
	// The top node takes the left block's attribute names; both blocks
	// must be shape-compatible (checked by Validate).
	attrs := make([]relation.Attribute, left.Schema.Arity())
	copy(attrs, left.Schema.Attrs())
	schema, err := relation.NewSchema(name, attrs)
	if err != nil {
		return err
	}
	lBranch := Branch{Rel: left.Name, Proj: left.Schema.AttrNames()}
	rBranch := Branch{Rel: right.Name, Proj: right.Schema.AttrNames()}
	var def Def
	if stmt.Op == "UNION" {
		def = UnionDef{L: lBranch, R: rBranch}
	} else {
		def = DiffDef{L: lBranch, R: rBranch}
	}
	return b.add(&Node{Name: name, Schema: schema, Def: def, Export: true})
}

// addBlock decomposes one SELECT block into leaf-parents plus (for joins)
// an SPJ node, returning the topmost node of the block. FROM tables may
// name source relations (leaves) or previously defined views/nodes —
// Figure 4's G, for instance, reads export E directly.
func (b *Builder) addBlock(name string, sel *sqlview.SelectStmt, export bool) (*Node, error) {
	if len(sel.Tables) == 0 {
		return nil, fmt.Errorf("vdp: builder: view %q has no tables", name)
	}
	operands := make([]*Node, len(sel.Tables))
	for i, tr := range sel.Tables {
		if tr.As != "" && tr.As != tr.Rel {
			return nil, fmt.Errorf("vdp: builder: view %q: table aliases are not supported (the VDP language has no renaming)", name)
		}
		n, ok := b.nodes[tr.Rel]
		if !ok {
			return nil, fmt.Errorf("vdp: builder: view %q references unknown relation %q", name, tr.Rel)
		}
		operands[i] = n
	}

	// Split conditions: per-table conjuncts push into the operand wrapper;
	// cross-table conjuncts stay at the join level.
	full := algebra.Conj(append(append([]algebra.Expr(nil), sel.JoinConds...), sel.Where)...)
	perTable := make([]algebra.Expr, len(operands))
	rest := full
	for i, op := range operands {
		avail := make(map[string]bool, op.Schema.Arity())
		for _, a := range op.Schema.AttrNames() {
			avail[a] = true
		}
		perTable[i], rest = algebra.ConjunctsOver(rest, avail)
	}

	// Output columns: explicit list, or everything (SELECT *).
	cols := sel.Cols
	if cols == nil {
		for _, op := range operands {
			cols = append(cols, op.Schema.AttrNames()...)
		}
	}
	colSet := make(map[string]bool, len(cols))
	for _, c := range cols {
		colSet[c] = true
	}
	crossAttrs := algebra.Attrs(rest)

	if len(operands) == 1 {
		// Single table: the block is itself a π σ node over the operand
		// (a leaf-parent when the operand is a leaf).
		return b.wrapperNode(name, operands[0], cols, perTable[0], export)
	}

	// Per-operand inputs: leaves get dedicated leaf-parent nodes (§5.1
	// restriction (a)); non-leaf operands are SPJ inputs directly, with
	// the pushed selection and minimal projection inline.
	inputs := make([]SPJInput, len(operands))
	for i, op := range operands {
		var proj []string
		for _, a := range op.Schema.AttrNames() {
			if colSet[a] || crossAttrs[a] {
				proj = append(proj, a)
			}
		}
		if len(proj) == 0 {
			// Degenerate but legal: keep the first attribute so the
			// relation is representable.
			proj = op.Schema.AttrNames()[:1]
		}
		if op.IsLeaf() {
			lp, err := b.leafParentNode(op, proj, perTable[i])
			if err != nil {
				return nil, err
			}
			inputs[i] = SPJInput{Rel: lp.Name}
			continue
		}
		inputs[i] = SPJInput{Rel: op.Name, Where: perTable[i], Proj: proj}
	}

	// The SPJ node on top.
	var attrs []relation.Attribute
	for _, c := range cols {
		found := false
		for _, op := range operands {
			if k, ok := op.Schema.AttrType(c); ok {
				attrs = append(attrs, relation.Attribute{Name: c, Type: k})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("vdp: builder: view %q selects unknown column %q", name, c)
		}
	}
	schema, err := relation.NewSchema(name, attrs)
	if err != nil {
		return nil, err
	}
	node := &Node{
		Name:   name,
		Schema: schema,
		Def:    SPJ{Inputs: inputs, Where: rest, Proj: cols},
		Export: export,
	}
	if err := b.add(node); err != nil {
		return nil, err
	}
	return node, nil
}

// leafParentNode creates (or reuses) the leaf-parent π_proj σ_where node
// for a leaf. Identical definitions share one node ("<leaf>'"); views
// needing a different projection or selection of the same leaf get
// numbered siblings ("<leaf>'2", ...), so several views can decompose over
// shared sources.
func (b *Builder) leafParentNode(leaf *Node, proj []string, where algebra.Expr) (*Node, error) {
	base := leaf.Name + "'"
	for i := 0; i < 100; i++ {
		name := base
		if i > 0 {
			name = fmt.Sprintf("%s%d", base, i+1)
		}
		node, err := b.wrapperNode(name, leaf, proj, where, false)
		if err == nil {
			return node, nil
		}
		if !strings.Contains(err.Error(), "already used with a different definition") {
			return nil, err
		}
	}
	return nil, fmt.Errorf("vdp: builder: too many distinct leaf-parents for %q", leaf.Name)
}

// wrapperNode creates (or reuses) a π_proj σ_where node over a child
// (leaf or not).
func (b *Builder) wrapperNode(name string, child *Node, proj []string, where algebra.Expr, export bool) (*Node, error) {
	if existing, ok := b.nodes[name]; ok {
		// Reuse only when the definition coincides exactly.
		if d, isSPJ := existing.Def.(SPJ); isSPJ && len(d.Inputs) == 1 && d.Inputs[0].Rel == child.Name &&
			d.String() == (SPJ{Inputs: []SPJInput{{Rel: child.Name}}, Where: where, Proj: proj}).String() &&
			existing.Export == export {
			return existing, nil
		}
		return nil, fmt.Errorf("vdp: builder: node name %q already used with a different definition", name)
	}
	schema, err := child.Schema.Project(name, proj)
	if err != nil {
		return nil, err
	}
	node := &Node{
		Name:   name,
		Schema: schema,
		Def:    SPJ{Inputs: []SPJInput{{Rel: child.Name}}, Where: where, Proj: proj},
		Export: export,
	}
	if err := b.add(node); err != nil {
		return nil, err
	}
	return node, nil
}

// Build finalizes annotations and validates the plan.
func (b *Builder) Build() (*VDP, error) {
	nodes := make([]*Node, 0, len(b.order))
	for _, name := range b.order {
		n := b.nodes[name]
		if !n.IsLeaf() && n.Ann == nil {
			if ann, ok := b.annotations[name]; ok {
				// Partial annotations (e.g. the CLI's -virtual NODE:attrs)
				// default every unmentioned attribute to materialized.
				for _, a := range n.Schema.AttrNames() {
					if _, ok := ann[a]; !ok {
						ann[a] = Materialized
					}
				}
				n.Ann = ann
			} else {
				n.Ann = AllMaterialized(n.Schema)
			}
		}
		nodes = append(nodes, n)
	}
	for name := range b.annotations {
		if _, ok := b.nodes[name]; !ok {
			return nil, fmt.Errorf("vdp: builder: annotation for unknown node %q", name)
		}
	}
	return New(nodes...)
}
