package vdp

import (
	"squirrel/internal/algebra"
)

// KeyBased describes the key-based construction of a temporary relation
// (Example 2.3): instead of rebuilding π_A σ_f (node) from ALL of the
// node's children, join the node's materialized store projection with a
// single child that functionally determines the needed virtual attributes
// through its key:
//
//	T_tmp = π_A σ_f ( π_{K ∪ A_mat}(store T)  ⋈_K  π_{K ∪ A_virt}(child) )
//
// Soundness: the child's key K gives the FD child: K → A_virt; every T row
// embeds a child row (π_{K,A_virt} T ⊆ π_{K,A_virt} child), so T: K →
// A_virt, and the key join attaches exactly the right values with the
// store's multiplicities.
type KeyBased struct {
	// Node is the hybrid node whose temporary is being built.
	Node string
	// Child supplies the virtual attributes.
	Child string
	// Key is the child's key, materialized in the node, used as the join
	// key.
	Key []string
	// ChildReq is what must be fetched from the child (possibly by
	// polling its source, if the child itself is virtual).
	ChildReq Requirement
	// StoreAttrs are the node attributes read from the local store
	// (the key plus every needed materialized attribute).
	StoreAttrs []string
}

// KeyBasedPlan determines whether the requirement on a hybrid SPJ node
// admits key-based construction, and returns the plan if so. It applies
// when a single child (a) has a declared key that survives into the node's
// materialized attributes, and (b) supplies every needed virtual
// attribute.
func (v *VDP) KeyBasedPlan(req Requirement) (*KeyBased, bool) {
	n := v.Node(req.Rel)
	if n == nil || n.IsLeaf() {
		return nil, false
	}
	d, ok := n.Def.(SPJ)
	if !ok {
		return nil, false
	}
	// Needed virtual attributes (including condition attributes, which
	// NewRequirement already folded into req.Attrs).
	var neededVirtual []string
	for _, a := range n.Schema.AttrNames() {
		if req.Attrs[a] && !n.Ann.IsMaterialized(a) {
			neededVirtual = append(neededVirtual, a)
		}
	}
	if len(neededVirtual) == 0 {
		return nil, false // store serves the requirement directly
	}
	for _, in := range d.Inputs {
		child := v.Node(in.Rel)
		if child.IsLeaf() {
			// Leaf-parent nodes are rebuilt by polling their single source
			// either way; key-based construction buys nothing and the
			// child fetch machinery only handles mediator nodes.
			continue
		}
		key := child.Schema.KeyAttrs()
		if len(key) == 0 {
			continue
		}
		// The key must survive the input projection...
		inputAttrs := in.Proj
		if len(inputAttrs) == 0 {
			inputAttrs = child.Schema.AttrNames()
		}
		avail := make(map[string]bool, len(inputAttrs))
		for _, a := range inputAttrs {
			avail[a] = true
		}
		ok := true
		for _, k := range key {
			// ...and be a materialized attribute of the node (no renaming,
			// so names carry through).
			if !avail[k] || !n.Schema.HasAttr(k) || !n.Ann.IsMaterialized(k) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Every needed virtual attribute must come from this child.
		for _, a := range neededVirtual {
			if !child.Schema.HasAttr(a) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Child fetch: key + virtual attributes; the input's local
		// selection and the pushable part of the request condition can be
		// applied at the child (tuples contributing to T pass them).
		childAvail := make(map[string]bool, child.Schema.Arity())
		for _, a := range child.Schema.AttrNames() {
			childAvail[a] = true
		}
		pushed, _ := algebra.ConjunctsOver(req.Cond, childAvail)
		attrs := append(append([]string(nil), key...), neededVirtual...)
		childReq, err := NewRequirement(v, in.Rel, attrs, algebra.Conj(in.Where, pushed))
		if err != nil {
			continue
		}
		// Store side: key + needed materialized attributes.
		storeSet := make(map[string]bool, len(key))
		for _, k := range key {
			storeSet[k] = true
		}
		for _, a := range n.MaterializedAttrs() {
			if req.Attrs[a] {
				storeSet[a] = true
			}
		}
		var storeAttrs []string
		for _, a := range n.Schema.AttrNames() {
			if storeSet[a] {
				storeAttrs = append(storeAttrs, a)
			}
		}
		return &KeyBased{
			Node:       n.Name,
			Child:      in.Rel,
			Key:        key,
			ChildReq:   childReq,
			StoreAttrs: storeAttrs,
		}, true
	}
	return nil, false
}

// SourcesNeeded estimates how many distinct source databases must be
// polled to satisfy the requirement by standard (children-based)
// construction; used to decide between standard and key-based plans
// (the paper: "key-based construction is not always more efficient").
func (v *VDP) SourcesNeeded(req Requirement) int {
	plan, err := v.PlanTemporaries([]Requirement{req})
	if err != nil {
		return 0
	}
	sources := make(map[string]bool)
	for _, r := range plan {
		if !r.NeedsVirtual(v) {
			continue
		}
		if v.IsLeafParent(r.Rel) {
			if spec, err := v.LeafParentPollSpec(r); err == nil {
				sources[spec.Source] = true
			}
		}
	}
	return len(sources)
}
