package vdp

import (
	"sort"
	"strings"
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/relation"
)

func attrsOf(req Requirement) string {
	var out []string
	for a := range req.Attrs {
		out = append(out, a)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func TestNewRequirementClosesOverCond(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	req, err := NewRequirement(v, "T", []string{"s1"}, algebra.Lt(algebra.A("s2"), algebra.CInt(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !req.Attrs["s2"] || !req.Attrs["s1"] {
		t.Errorf("attrs = %v", req.Attrs)
	}
	if _, err := NewRequirement(v, "NOPE", []string{"x"}, nil); err == nil {
		t.Errorf("unknown node")
	}
	if _, err := NewRequirement(v, "T", []string{"zz"}, nil); err == nil {
		t.Errorf("unknown attribute")
	}
}

func TestDerivedFromSPJ(t *testing.T) {
	// Example 2.3: q = π_{r3,s1} σ_{r3<100} T. derived_from must request
	// r2, r3 from R' (r3 for output+cond, r2 for the join) and s1, s2...
	// s1 for output+join; s2 only if requested.
	v := paperVDP(t, nil, nil, nil)
	req, err := NewRequirement(v, "T", []string{"r3", "s1"}, algebra.Lt(algebra.A("r3"), algebra.CInt(100)))
	if err != nil {
		t.Fatal(err)
	}
	kids, err := v.DerivedFrom(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 {
		t.Fatalf("children = %v", kids)
	}
	var rp, sp Requirement
	for _, k := range kids {
		switch k.Rel {
		case "R'":
			rp = k
		case "S'":
			sp = k
		}
	}
	if got := attrsOf(rp); got != "r2,r3" {
		t.Errorf("R' attrs = %s, want r2,r3", got)
	}
	if got := attrsOf(sp); got != "s1" {
		t.Errorf("S' attrs = %s, want s1", got)
	}
	// The r3<100 condition is local to R' and must be pushed there.
	if rp.Cond == nil || !strings.Contains(rp.Cond.String(), "r3 < 100") {
		t.Errorf("R' cond = %v", rp.Cond)
	}
	// Nothing pushes to S'.
	if !algebra.IsTrue(sp.Cond) {
		t.Errorf("S' cond = %v", sp.Cond)
	}
}

func TestDerivedFromLeafParent(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	req, _ := NewRequirement(v, "R'", []string{"r1", "r3"}, nil)
	kids, err := v.DerivedFrom(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 1 || kids[0].Rel != "R" {
		t.Fatalf("kids = %v", kids)
	}
	// The leaf requirement includes the leaf-parent's own selection attrs
	// via the poll spec instead; here the def has Where over r4.
	if !kids[0].Attrs["r4"] {
		t.Errorf("leaf requirement should include selection attribute r4: %v", kids[0].Attrs)
	}
}

func TestDerivedFromDiff(t *testing.T) {
	v, _ := diffVDP(t)
	req, _ := NewRequirement(v, "G", []string{"x"}, algebra.Gt(algebra.A("x"), algebra.CInt(0)))
	kids, err := v.DerivedFrom(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 {
		t.Fatalf("kids = %v", kids)
	}
	// Left branch needs x (proj, = node attr) and y (branch Where).
	if got := attrsOf(kids[0]); got != "x,y" {
		t.Errorf("left branch attrs = %s", got)
	}
	// Condition x>0 is renamed to the right branch's p.
	if !strings.Contains(kids[1].Cond.String(), "p > 0") {
		t.Errorf("right branch cond = %v", kids[1].Cond)
	}
	if got := attrsOf(kids[1]); got != "p" {
		t.Errorf("right branch attrs = %s", got)
	}
}

func TestDerivedFromUnion(t *testing.T) {
	v, _ := unionVDP(t)
	req, _ := NewRequirement(v, "G", []string{"x"}, nil)
	kids, err := v.DerivedFrom(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0].Rel != "A'" || kids[1].Rel != "B'" {
		t.Fatalf("kids = %v", kids)
	}
}

func TestDerivedFromErrors(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	if _, err := v.DerivedFrom(Requirement{Rel: "NOPE"}); err == nil {
		t.Errorf("unknown node")
	}
	if _, err := v.DerivedFrom(Requirement{Rel: "R"}); err == nil {
		t.Errorf("leaf node")
	}
}

func TestPlanTemporariesExample23(t *testing.T) {
	// Example 2.3 annotations: T[r1^m, r3^v, s1^m, s2^v] — wait, the
	// example's T is π_{r1,s1,s2}; we use our T(r1,s1,s2) with s2 virtual;
	// R' and S' fully virtual.
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	sp := relation.MustSchema("S'", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")
	v := paperVDP(t, AllVirtual(rp), AllVirtual(sp), Ann([]string{"r1", "s1"}, []string{"r3", "s2"}))

	// Query touching the virtual attribute s2.
	req, _ := NewRequirement(v, "T", []string{"r1", "s2"}, nil)
	plan, err := v.PlanTemporaries([]Requirement{req})
	if err != nil {
		t.Fatal(err)
	}
	// Construction order: children first.
	var rels []string
	for _, p := range plan {
		rels = append(rels, p.Rel)
	}
	joined := strings.Join(rels, ",")
	if !strings.Contains(joined, "T") {
		t.Fatalf("plan must include T: %v", rels)
	}
	// T's requirement recursion must reach S' (s2 virtual there) and R'
	// (join attr r2 virtual there).
	if !strings.Contains(joined, "S'") || !strings.Contains(joined, "R'") {
		t.Fatalf("plan = %v", rels)
	}
	// Children appear before parents.
	idx := map[string]int{}
	for i, r := range rels {
		idx[r] = i
	}
	if idx["R'"] > idx["T"] || idx["S'"] > idx["T"] {
		t.Errorf("construction order wrong: %v", rels)
	}
}

func TestPlanTemporariesMaterializedStopsRecursion(t *testing.T) {
	// Fully materialized plan: requirement served from the store, no
	// recursion to children.
	v := paperVDP(t, nil, nil, nil)
	req, _ := NewRequirement(v, "T", []string{"r1", "s2"}, nil)
	plan, err := v.PlanTemporaries([]Requirement{req})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Rel != "T" || plan[0].NeedsVirtual(v) {
		t.Fatalf("plan = %v", plan)
	}
}

func TestPlanTemporariesMerging(t *testing.T) {
	// Two requirements on T with different attrs and conditions merge.
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	v := paperVDP(t, AllVirtual(rp), nil, Ann([]string{"s1", "s2"}, []string{"r1", "r3"}))
	r1, _ := NewRequirement(v, "T", []string{"r1"}, algebra.Gt(algebra.A("s2"), algebra.CInt(1)))
	r2, _ := NewRequirement(v, "T", []string{"s1", "r1"}, algebra.Lt(algebra.A("s2"), algebra.CInt(9)))
	plan, err := v.PlanTemporaries([]Requirement{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	var tReq *Requirement
	for i := range plan {
		if plan[i].Rel == "T" {
			tReq = &plan[i]
		}
	}
	if tReq == nil {
		t.Fatal("no T in plan")
	}
	if got := attrsOf(*tReq); got != "r1,s1,s2" {
		t.Errorf("merged attrs = %s", got)
	}
	if _, ok := tReq.Cond.(algebra.Or); !ok {
		t.Errorf("merged cond should be a disjunction: %v", tReq.Cond)
	}
}

func TestPlanTemporariesRejectsLeafRequirement(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	if _, err := v.PlanTemporaries([]Requirement{{Rel: "R", Attrs: map[string]bool{"r1": true}}}); err == nil {
		t.Errorf("leaf requirement should be rejected")
	}
	if _, err := v.PlanTemporaries([]Requirement{{Rel: "T"}}); err == nil {
		t.Errorf("nil attr set should be rejected")
	}
}

func TestLeafParentPollSpec(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	req, _ := NewRequirement(v, "R'", []string{"r1", "r3"}, algebra.Lt(algebra.A("r3"), algebra.CInt(100)))
	spec, err := v.LeafParentPollSpec(req)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Source != "db1" || spec.Leaf != "R" {
		t.Errorf("spec = %+v", spec)
	}
	// Attrs: r1, r3 plus the def's selection attr r4.
	if got := strings.Join(spec.Attrs, ","); got != "r1,r3,r4" {
		t.Errorf("poll attrs = %s", got)
	}
	// Condition: both r4=100 (def) and r3<100 (request).
	cs := spec.Cond.String()
	if !strings.Contains(cs, "r4 = 100") || !strings.Contains(cs, "r3 < 100") {
		t.Errorf("poll cond = %s", cs)
	}
	if _, err := v.LeafParentPollSpec(Requirement{Rel: "T"}); err == nil {
		t.Errorf("T is not a leaf-parent")
	}
}

func TestKernelRequirementsPaper(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	// ΔR only: rule (T,R') reads S' — S' state needed, R' not (single
	// occurrence, no self-join), leaf states never needed.
	reqs, err := v.KernelRequirements([]string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].Rel != "S'" {
		t.Fatalf("reqs = %+v", reqs)
	}
	// Both leaves dirty: both R' and S' states needed.
	reqs, err = v.KernelRequirements([]string{"R", "S"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 {
		t.Fatalf("reqs = %+v", reqs)
	}
	if _, err := v.KernelRequirements([]string{"T"}); err == nil {
		t.Errorf("non-leaf dirty set should be rejected")
	}
}

func TestKernelRequirementsSelfJoin(t *testing.T) {
	v, _ := selfJoinVDP(t)
	reqs, err := v.KernelRequirements([]string{"P"})
	if err != nil {
		t.Fatal(err)
	}
	// Self-join: P' own state needed.
	if len(reqs) != 1 || reqs[0].Rel != "P'" {
		t.Fatalf("reqs = %+v", reqs)
	}
}

func TestKernelRequirementsDiff(t *testing.T) {
	v, _ := diffVDP(t)
	reqs, err := v.KernelRequirements([]string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	// Diff rules need both branch states even when only A changed.
	if len(reqs) != 2 {
		t.Fatalf("reqs = %+v", reqs)
	}
	// Left branch requirement covers x (proj) and y (branch where).
	for _, r := range reqs {
		if r.Rel == "A'" {
			if got := attrsOf(r); got != "x,y" {
				t.Errorf("A' attrs = %s", got)
			}
		}
	}
}

func TestKernelRequirementsUnion(t *testing.T) {
	v, _ := unionVDP(t)
	reqs, err := v.KernelRequirements([]string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 0 {
		t.Fatalf("union is pass-through; reqs = %+v", reqs)
	}
}

func TestKeyBasedPlanExample23(t *testing.T) {
	// Example 2.3: T[r1^m, s1^m, s2^v]... the paper's key-based case uses
	// R' key r1 to fetch r3. Our T(r1,s1,s2): s2 lives in S' whose key is
	// s1, materialized in T. So key-based construction via S' applies.
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	v := paperVDP(t, AllVirtual(rp), nil, Ann([]string{"r1", "s1"}, []string{"r3", "s2"}))
	req, _ := NewRequirement(v, "T", []string{"s1", "s2"}, nil)
	plan, ok := v.KeyBasedPlan(req)
	if !ok {
		t.Fatal("key-based plan should apply")
	}
	if plan.Child != "S'" || strings.Join(plan.Key, ",") != "s1" {
		t.Errorf("plan = %+v", plan)
	}
	if got := attrsOf(plan.ChildReq); got != "s1,s2" {
		t.Errorf("child req attrs = %s", got)
	}
	if got := strings.Join(plan.StoreAttrs, ","); got != "s1" {
		t.Errorf("store attrs = %s", got)
	}
}

func TestKeyBasedPlanInapplicable(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	// Fully materialized: no virtual attrs needed → no key-based plan.
	req, _ := NewRequirement(v, "T", []string{"r1", "s2"}, nil)
	if _, ok := v.KeyBasedPlan(req); ok {
		t.Errorf("no virtual attrs → no plan")
	}
	// T's key attr not materialized: plan must not apply via that child.
	v2 := paperVDP(t, nil, nil, Ann([]string{"r1"}, []string{"r3", "s1", "s2"}))
	req2, _ := NewRequirement(v2, "T", []string{"s2"}, nil)
	if plan, ok := v2.KeyBasedPlan(req2); ok && plan.Child == "S'" {
		t.Errorf("s1 virtual in T: S' key-based plan must not apply")
	}
	// Leaves and diff nodes have no key-based plan.
	vd, _ := diffVDP(t)
	reqd, _ := NewRequirement(vd, "G", []string{"x"}, nil)
	if _, ok := vd.KeyBasedPlan(reqd); ok {
		t.Errorf("diff node cannot use key-based construction")
	}
}

func TestSourcesNeeded(t *testing.T) {
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	sp := relation.MustSchema("S'", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")
	v := paperVDP(t, AllVirtual(rp), AllVirtual(sp), Ann([]string{"r1", "s1"}, []string{"r3", "s2"}))
	req, _ := NewRequirement(v, "T", []string{"r1", "s2"}, nil)
	if got := v.SourcesNeeded(req); got != 2 {
		t.Errorf("standard construction should poll both sources, got %d", got)
	}
	// Fully materialized: nothing to poll.
	vm := paperVDP(t, nil, nil, nil)
	reqm, _ := NewRequirement(vm, "T", []string{"r1"}, nil)
	if got := vm.SourcesNeeded(reqm); got != 0 {
		t.Errorf("materialized plan polls nothing, got %d", got)
	}
}

func TestEvalRestricted(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	states, _ := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	resolve := ResolverFromCatalog(states)
	// π_{s1} σ_{r3<100} T in the spirit of the Example 2.3 query: the
	// condition references r3, which T projects away, but restricted
	// evaluation works over the def's joined width where r3 is in scope.
	// T rows: r1=1 (r3=5, s1=10), r1=2 (r3=120, s1=10), r1=3 (r3=7, s1=20).
	got, err := EvalRestricted(v.Node("T"), []string{"s1"},
		algebra.Lt(algebra.A("r3"), algebra.CInt(100)), resolve)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count(relation.T(10)) != 1 || got.Count(relation.T(20)) != 1 || got.Len() != 2 {
		t.Errorf("restricted eval with pre-projection condition = %s", got)
	}

	got2, err := EvalRestricted(v.Node("T"), []string{"s1"},
		algebra.Lt(algebra.A("s2"), algebra.CInt(2)), resolve)
	if err != nil {
		t.Fatal(err)
	}
	// s2<2 keeps rows with s2=1: two rows project to s1=10 (bag: count 2).
	if got2.Count(relation.T(10)) != 2 || got2.Len() != 1 {
		t.Errorf("restricted eval = %s", got2)
	}
	// Restricted eval of a diff node.
	vd, dleaves := diffVDP(t)
	dstates, _ := vd.EvalAll(ResolverFromCatalog(dleaves))
	got3, err := EvalRestricted(vd.Node("G"), []string{"x"}, nil, ResolverFromCatalog(dstates))
	if err != nil {
		t.Fatal(err)
	}
	if got3.Card() != 1 || !got3.Contains(relation.T(1)) {
		t.Errorf("restricted diff eval = %s", got3)
	}
	// Leaf rejected.
	if _, err := EvalRestricted(v.Node("R"), []string{"r1"}, nil, resolve); err == nil {
		t.Errorf("leaf should be rejected")
	}
}
