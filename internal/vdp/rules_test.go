package vdp

import (
	"math/rand"
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// refKernel is an independent, minimal implementation of the IUP Kernel
// Algorithm (§6.4) used to exercise the edge rules: nodes are processed in
// topological order; processing a node fires the rules of its in-edges
// (reading sibling states from the evolving store) and then applies the
// node's accumulated delta. Returns an error only on genuine rule errors.
func refKernel(v *VDP, stores map[string]*relation.Relation, leafDeltas *delta.Delta) error {
	resolve := ResolverFromCatalog(stores)
	pending := make(map[string]*delta.RelDelta)
	for _, name := range v.Order() {
		n := v.Node(name)
		var dn *delta.RelDelta
		if n.IsLeaf() {
			dn = leafDeltas.Get(name)
		} else {
			dn = pending[name]
		}
		if dn == nil || dn.IsEmpty() {
			continue
		}
		for _, parent := range v.Parents(name) {
			contrib, err := v.Propagate(parent, name, dn, resolve)
			if err != nil {
				return err
			}
			if acc, ok := pending[parent]; ok {
				acc.Smash(contrib)
			} else {
				pending[parent] = contrib
			}
		}
		if err := dn.ApplyTo(stores[name], false); err != nil {
			return err
		}
	}
	return nil
}

// checkIncrementalEqualsRecompute drives leafDeltas through refKernel and
// verifies that every non-leaf store equals from-scratch evaluation over
// the new leaf states.
func checkIncrementalEqualsRecompute(t *testing.T, v *VDP, leafStates map[string]*relation.Relation, leafDeltas *delta.Delta) {
	t.Helper()
	stores, err := v.EvalAll(ResolverFromCatalog(leafStates))
	if err != nil {
		t.Fatal(err)
	}
	if err := refKernel(v, stores, leafDeltas); err != nil {
		t.Fatal(err)
	}
	want, err := v.EvalAll(ResolverFromCatalog(stores)) // leaves already updated in stores
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range v.NonLeaves() {
		if !stores[name].Equal(want[name]) {
			t.Errorf("node %s: incremental != recompute\nincremental:\n%swant:\n%s", name, stores[name], want[name])
		}
	}
}

func TestRule1Rule2Example21(t *testing.T) {
	// Example 2.1: rule #1 (ΔT = ΔR' ⋈ S') and rule #2 (ΔT = R' ⋈ ΔS').
	v := paperVDP(t, nil, nil, nil)
	leaves := paperLeafStates()

	// ΔR: insert (5, 20, 11, 100) — joins S' tuple (20, 2).
	d := delta.New()
	d.Insert("R", relation.T(5, 20, 11, 100))
	stores, _ := v.EvalAll(ResolverFromCatalog(leaves))
	before := stores["T"].Clone()
	if err := refKernel(v, stores, d); err != nil {
		t.Fatal(err)
	}
	if stores["T"].Card() != before.Card()+1 || !stores["T"].Contains(relation.T(5, 11, 20, 2)) {
		t.Fatalf("rule #1 failed:\n%s", stores["T"])
	}
	// ΔS: delete (10,1,20) — removes two T rows (r1=1 and r1=2).
	d2 := delta.New()
	d2.Delete("S", relation.T(10, 1, 20))
	if err := refKernel(v, stores, d2); err != nil {
		t.Fatal(err)
	}
	if stores["T"].Contains(relation.T(1, 5, 10, 1)) || stores["T"].Contains(relation.T(2, 120, 10, 1)) {
		t.Fatalf("rule #2 failed:\n%s", stores["T"])
	}
	if stores["T"].Card() != 2 {
		t.Fatalf("T card = %d, want 2:\n%s", stores["T"].Card(), stores["T"])
	}
}

func TestSelectionFiltersDeltas(t *testing.T) {
	// Updates failing the leaf-parent selections must not reach T.
	v := paperVDP(t, nil, nil, nil)
	stores, _ := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	before := stores["T"].Clone()
	d := delta.New()
	d.Insert("R", relation.T(6, 10, 1, 55)) // r4 != 100
	d.Insert("S", relation.T(40, 4, 90))    // s3 >= 50
	if err := refKernel(v, stores, d); err != nil {
		t.Fatal(err)
	}
	if !stores["T"].Equal(before) {
		t.Fatalf("filtered updates leaked into T")
	}
	if stores["R'"].Card() != 3 || stores["S'"].Card() != 2 {
		t.Fatalf("filtered updates leaked into auxiliaries")
	}
}

func TestExample61Discipline(t *testing.T) {
	// Example 6.1: simultaneous ΔR' and ΔS' whose join partners are each
	// other. The kernel discipline must include the ΔR'⋈ΔS' contribution.
	v := paperVDP(t, nil, nil, nil)
	leaves := paperLeafStates()
	d := delta.New()
	d.Insert("R", relation.T(7, 77, 3, 100)) // r2=77: joins ONLY the new S tuple
	d.Insert("S", relation.T(77, 9, 10))     // s1=77
	checkIncrementalEqualsRecompute(t, v, leaves, d)

	// And explicitly: the cross contribution appears.
	stores, _ := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	if err := refKernel(v, stores, d); err != nil {
		t.Fatal(err)
	}
	if !stores["T"].Contains(relation.T(7, 3, 77, 9)) {
		t.Fatalf("missed ΔR'⋈ΔS' contribution:\n%s", stores["T"])
	}
}

func TestNaivePropagationMissesCrossDelta(t *testing.T) {
	// The all-old-state firing (PropagateNaive with a frozen catalog)
	// misses ΔR'⋈ΔS' — the anomaly the paper warns about.
	v := paperVDP(t, nil, nil, nil)
	stores, _ := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	frozen := make(map[string]*relation.Relation, len(stores))
	for k, r := range stores {
		frozen[k] = r.Clone()
	}
	resolveOld := ResolverFromCatalog(frozen)

	dR := delta.NewRel("R'")
	dR.Insert(relation.T(7, 77, 3))
	dS := delta.NewRel("S'")
	dS.Insert(relation.T(77, 9))

	c1, err := v.PropagateNaive("T", "R'", dR, resolveOld)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := v.PropagateNaive("T", "S'", dS, resolveOld)
	if err != nil {
		t.Fatal(err)
	}
	naive := delta.NewRel("T")
	naive.Smash(c1)
	naive.Smash(c2)
	if naive.Count(relation.T(7, 3, 77, 9)) != 0 {
		t.Fatalf("naive firing should miss the cross contribution, got:\n%s", naive)
	}
	// Whereas the disciplined kernel catches it (previous test).
}

// diffVDP: G = π_{x}σ_{y>0}(A') − π_{p}(B') over two leaves; A', B' are
// bag leaf-parents (projections can create duplicates).
func diffVDP(t testing.TB) (*VDP, map[string]*relation.Relation) {
	t.Helper()
	aSchema := relation.MustSchema("A", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt},
		{Name: "z", Type: relation.KindInt}}, "x", "y", "z")
	bSchema := relation.MustSchema("B", []relation.Attribute{
		{Name: "p", Type: relation.KindInt}, {Name: "q", Type: relation.KindInt}}, "p", "q")
	ap := relation.MustSchema("A'", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt}})
	bp := relation.MustSchema("B'", []relation.Attribute{
		{Name: "p", Type: relation.KindInt}})
	g := relation.MustSchema("G", []relation.Attribute{{Name: "x", Type: relation.KindInt}})
	v, err := New(
		&Node{Name: "A", Schema: aSchema, Source: "db1"},
		&Node{Name: "B", Schema: bSchema, Source: "db2"},
		&Node{Name: "A'", Schema: ap, Ann: AllMaterialized(ap),
			Def: SPJ{Inputs: []SPJInput{{Rel: "A"}}, Proj: []string{"x", "y"}}},
		&Node{Name: "B'", Schema: bp, Ann: AllMaterialized(bp),
			Def: SPJ{Inputs: []SPJInput{{Rel: "B"}}, Proj: []string{"p"}}},
		&Node{Name: "G", Schema: g, Export: true, Ann: AllMaterialized(g),
			Def: DiffDef{
				L: Branch{Rel: "A'", Proj: []string{"x"}, Where: algebra.Gt(algebra.A("y"), algebra.CInt(0))},
				R: Branch{Rel: "B'", Proj: []string{"p"}},
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := relation.NewSet(aSchema)
	a.Insert(relation.T(1, 1, 0))
	a.Insert(relation.T(2, 1, 0))
	a.Insert(relation.T(2, 2, 1)) // duplicate x=2 at bag level in A'
	a.Insert(relation.T(3, -1, 0))
	b := relation.NewSet(bSchema)
	b.Insert(relation.T(2, 0))
	b.Insert(relation.T(4, 0))
	return v, map[string]*relation.Relation{"A": a, "B": b}
}

func TestDiffNodeBasics(t *testing.T) {
	v, leaves := diffVDP(t)
	states, err := v.EvalAll(ResolverFromCatalog(leaves))
	if err != nil {
		t.Fatal(err)
	}
	// L = {1,2} (x=3 fails y>0; x=2 twice at bag level), R = {2,4} → G={1}.
	g := states["G"]
	if g.Card() != 1 || !g.Contains(relation.T(1)) {
		t.Fatalf("G = %s", g)
	}
	if g.Semantics() != relation.Set {
		t.Errorf("G must be a set node")
	}
}

func TestDiffPropagationScenarios(t *testing.T) {
	cases := []struct {
		name string
		mut  func(d *delta.Delta)
	}{
		{"insert left new", func(d *delta.Delta) { d.Insert("A", relation.T(9, 5, 0)) }},
		{"insert left blocked by right", func(d *delta.Delta) { d.Insert("A", relation.T(4, 5, 0)) }},
		{"insert right kills", func(d *delta.Delta) { d.Insert("B", relation.T(1, 7)) }},
		{"delete right revives", func(d *delta.Delta) { d.Delete("B", relation.T(2, 0)) }},
		{"delete one dup left keeps", func(d *delta.Delta) { d.Delete("A", relation.T(2, 1, 0)) }},
		{"delete left removes", func(d *delta.Delta) { d.Delete("A", relation.T(1, 1, 0)) }},
		{"paper typo case: delete left tuple also in right", func(d *delta.Delta) {
			// x=2 in both branches: deleting both A dups must NOT emit a
			// deletion from G (2 was never in G). The paper's printed
			// (ΔR1)- ∩ R2 would wrongly emit it.
			d.Delete("A", relation.T(2, 1, 0))
			d.Delete("A", relation.T(2, 2, 1))
		}},
		{"cross: insert left and right same tuple", func(d *delta.Delta) {
			d.Insert("A", relation.T(7, 1, 0))
			d.Insert("B", relation.T(7, 0))
		}},
		{"cross: delete right while deleting left", func(d *delta.Delta) {
			d.Delete("B", relation.T(2, 0))
			d.Delete("A", relation.T(2, 1, 0))
			d.Delete("A", relation.T(2, 2, 1))
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v, leaves := diffVDP(t)
			d := delta.New()
			c.mut(d)
			checkIncrementalEqualsRecompute(t, v, leaves, d)
		})
	}
}

// unionVDP: U = π_x A' ∪ π_p B' (bag union).
func unionVDP(t testing.TB) (*VDP, map[string]*relation.Relation) {
	t.Helper()
	v, leaves := diffVDP(t)
	// Rebuild with a union top instead.
	var nodes []*Node
	for _, name := range v.Order() {
		n := v.Node(name)
		if name == "G" {
			u := relation.MustSchema("G", []relation.Attribute{{Name: "x", Type: relation.KindInt}})
			nodes = append(nodes, &Node{Name: "G", Schema: u, Export: true, Ann: AllMaterialized(u),
				Def: UnionDef{
					L: Branch{Rel: "A'", Proj: []string{"x"}, Where: algebra.Gt(algebra.A("y"), algebra.CInt(0))},
					R: Branch{Rel: "B'", Proj: []string{"p"}},
				}})
			continue
		}
		nodes = append(nodes, n)
	}
	v2, err := New(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	return v2, leaves
}

func TestUnionNodePropagation(t *testing.T) {
	v, leaves := unionVDP(t)
	states, _ := v.EvalAll(ResolverFromCatalog(leaves))
	// L bag: {1, 2, 2}, R bag: {2, 4} → U: 1x1, 2x3, 4x1.
	if states["G"].Count(relation.T(2)) != 3 {
		t.Fatalf("union counts wrong: %s", states["G"])
	}
	d := delta.New()
	d.Insert("A", relation.T(2, 9, 9)) // another x=2 via left
	d.Delete("B", relation.T(2, 0))    // one fewer via right
	d.Insert("B", relation.T(5, 5))
	checkIncrementalEqualsRecompute(t, v, leaves, d)
}

// selfJoinVDP: M = π_{p1,p3}( π_{p1,p2}(P') ⋈_{p2=p3} π_{p3}(P') ) — the
// same child appears twice (footnote 2 of §6.3).
func selfJoinVDP(t testing.TB) (*VDP, map[string]*relation.Relation) {
	t.Helper()
	pSchema := relation.MustSchema("P", []relation.Attribute{
		{Name: "p1", Type: relation.KindInt}, {Name: "p2", Type: relation.KindInt},
		{Name: "p3", Type: relation.KindInt}}, "p1")
	pp := relation.MustSchema("P'", []relation.Attribute{
		{Name: "p1", Type: relation.KindInt}, {Name: "p2", Type: relation.KindInt},
		{Name: "p3", Type: relation.KindInt}}, "p1")
	m := relation.MustSchema("M", []relation.Attribute{
		{Name: "p1", Type: relation.KindInt}, {Name: "p3", Type: relation.KindInt}})
	v, err := New(
		&Node{Name: "P", Schema: pSchema, Source: "db1"},
		&Node{Name: "P'", Schema: pp, Ann: AllMaterialized(pp),
			Def: SPJ{Inputs: []SPJInput{{Rel: "P"}}, Proj: []string{"p1", "p2", "p3"}}},
		&Node{Name: "M", Schema: m, Export: true, Ann: AllMaterialized(m),
			Def: SPJ{
				Inputs:   []SPJInput{{Rel: "P'", Proj: []string{"p1", "p2"}}, {Rel: "P'", Proj: []string{"p3"}}},
				JoinCond: algebra.Eq(algebra.A("p2"), algebra.A("p3")),
				Proj:     []string{"p1", "p3"},
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	p := relation.NewSet(pSchema)
	p.Insert(relation.T(1, 10, 20))
	p.Insert(relation.T(2, 20, 10))
	p.Insert(relation.T(3, 10, 10))
	return v, map[string]*relation.Relation{"P": p}
}

func TestSelfJoinPropagation(t *testing.T) {
	v, leaves := selfJoinVDP(t)
	states, err := v.EvalAll(ResolverFromCatalog(leaves))
	if err != nil {
		t.Fatal(err)
	}
	// Pairs (a,b) with a.p2 = b.p3: (1,2):10? a=1 p2=10, b must have p3=10
	// → b∈{2,3}; a=2 p2=20 → b=1; a=3 p2=10 → b∈{2,3}.
	if states["M"].Card() != 5 {
		t.Fatalf("M = %s", states["M"])
	}
	cases := []func(d *delta.Delta){
		func(d *delta.Delta) { d.Insert("P", relation.T(4, 10, 10)) },
		func(d *delta.Delta) { d.Delete("P", relation.T(3, 10, 10)) },
		func(d *delta.Delta) {
			d.Insert("P", relation.T(5, 99, 99))
			d.Delete("P", relation.T(1, 10, 20))
		},
	}
	for i, mut := range cases {
		v2, leaves2 := selfJoinVDP(t)
		d := delta.New()
		mut(d)
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			checkIncrementalEqualsRecompute(t, v2, leaves2, d)
		})
	}
}

// Randomized incremental-equals-recompute over the paper VDP.
func TestIncrementalEqualsRecomputeRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		v := paperVDP(t, nil, nil, nil)
		leaves := paperLeafStates()
		d := delta.New()
		// Random non-redundant updates to both leaves.
		for i := 0; i < 6; i++ {
			switch rng.Intn(3) {
			case 0: // insert new R tuple
				tp := relation.T(100+rng.Intn(50), 10*(1+rng.Intn(4)), rng.Intn(10), 100*rng.Intn(2)+50)
				if leaves["R"].Count(tp) == 0 && d.Rel("R").Count(tp) == 0 {
					d.Insert("R", tp)
				}
			case 1: // insert new S tuple
				tp := relation.T(10*(1+rng.Intn(6)), rng.Intn(5), rng.Intn(100))
				if leaves["S"].Count(tp) == 0 && d.Rel("S").Count(tp) == 0 {
					d.Insert("S", tp)
				}
			case 2: // delete an existing R tuple
				rows := leaves["R"].Rows()
				if len(rows) > 0 {
					tp := rows[rng.Intn(len(rows))].Tuple
					if d.Rel("R").Count(tp) == 0 {
						d.Delete("R", tp)
					}
				}
			}
		}
		checkIncrementalEqualsRecompute(t, v, leaves, d)
	}
}

// Randomized incremental-equals-recompute over the diff VDP.
func TestDiffIncrementalRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		v, leaves := diffVDP(t)
		d := delta.New()
		for i := 0; i < 5; i++ {
			switch rng.Intn(4) {
			case 0:
				tp := relation.T(rng.Intn(8), rng.Intn(5)-1, rng.Intn(2))
				if leaves["A"].Count(tp) == 0 && d.Rel("A").Count(tp) == 0 {
					d.Insert("A", tp)
				}
			case 1:
				tp := relation.T(rng.Intn(8), rng.Intn(3))
				if leaves["B"].Count(tp) == 0 && d.Rel("B").Count(tp) == 0 {
					d.Insert("B", tp)
				}
			case 2:
				rows := leaves["A"].Rows()
				if len(rows) > 0 {
					tp := rows[rng.Intn(len(rows))].Tuple
					if d.Rel("A").Count(tp) == 0 {
						d.Delete("A", tp)
					}
				}
			case 3:
				rows := leaves["B"].Rows()
				if len(rows) > 0 {
					tp := rows[rng.Intn(len(rows))].Tuple
					if d.Rel("B").Count(tp) == 0 {
						d.Delete("B", tp)
					}
				}
			}
		}
		checkIncrementalEqualsRecompute(t, v, leaves, d)
	}
}

func TestPropagateErrors(t *testing.T) {
	v := paperVDP(t, nil, nil, nil)
	stores, _ := v.EvalAll(ResolverFromCatalog(paperLeafStates()))
	resolve := ResolverFromCatalog(stores)
	d := delta.NewRel("R'")
	d.Insert(relation.T(1, 2, 3))
	if _, err := v.Propagate("NOPE", "R'", d, resolve); err == nil {
		t.Errorf("unknown node")
	}
	if _, err := v.Propagate("T", "NOPE", d, resolve); err == nil {
		t.Errorf("unknown child")
	}
	if _, err := v.Propagate("R", "R'", d, resolve); err == nil {
		t.Errorf("propagate on leaf")
	}
	if _, err := v.Propagate("T", "R", d, resolve); err == nil {
		t.Errorf("R is not a child of T")
	}
	// Empty delta short-circuits.
	out, err := v.Propagate("T", "R'", delta.NewRel("R'"), resolve)
	if err != nil || !out.IsEmpty() {
		t.Errorf("empty delta: %v %v", out, err)
	}
}

// sameChildDiffVDP: G = π_x σ_{y>0}(A') − π_x σ_{z>0}(A') — both branches
// over the SAME child (footnote 2's repeated-relation case, for
// difference nodes).
func sameChildDiffVDP(t testing.TB) (*VDP, map[string]*relation.Relation) {
	t.Helper()
	aSchema := relation.MustSchema("A", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt},
		{Name: "z", Type: relation.KindInt}}, "x", "y", "z")
	ap := relation.MustSchema("A'", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt},
		{Name: "z", Type: relation.KindInt}})
	g := relation.MustSchema("G", []relation.Attribute{{Name: "x", Type: relation.KindInt}})
	v, err := New(
		&Node{Name: "A", Schema: aSchema, Source: "db1"},
		&Node{Name: "A'", Schema: ap, Ann: AllMaterialized(ap),
			Def: SPJ{Inputs: []SPJInput{{Rel: "A"}}, Proj: []string{"x", "y", "z"}}},
		&Node{Name: "G", Schema: g, Export: true, Ann: AllMaterialized(g),
			Def: DiffDef{
				L: Branch{Rel: "A'", Proj: []string{"x"}, Where: algebra.Gt(algebra.A("y"), algebra.CInt(0))},
				R: Branch{Rel: "A'", Proj: []string{"x"}, Where: algebra.Gt(algebra.A("z"), algebra.CInt(0))},
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	a := relation.NewSet(aSchema)
	a.Insert(relation.T(1, 1, 0)) // in L, not R → in G
	a.Insert(relation.T(2, 1, 1)) // in both → out
	a.Insert(relation.T(3, 0, 1)) // only R → out
	return v, map[string]*relation.Relation{"A": a}
}

func TestSameChildDifference(t *testing.T) {
	v, leaves := sameChildDiffVDP(t)
	states, err := v.EvalAll(ResolverFromCatalog(leaves))
	if err != nil {
		t.Fatal(err)
	}
	if states["G"].Card() != 1 || !states["G"].Contains(relation.T(1)) {
		t.Fatalf("G = %s", states["G"])
	}
	cases := []func(d *delta.Delta){
		func(d *delta.Delta) { d.Insert("A", relation.T(4, 1, 0)) }, // joins G
		func(d *delta.Delta) { d.Insert("A", relation.T(5, 1, 1)) }, // both branches
		func(d *delta.Delta) { d.Delete("A", relation.T(2, 1, 1)) }, // leaves both
		func(d *delta.Delta) { d.Delete("A", relation.T(1, 1, 0)) }, // leaves G
		func(d *delta.Delta) { // mixed batch
			d.Insert("A", relation.T(6, 1, 0))
			d.Delete("A", relation.T(3, 0, 1))
			d.Insert("A", relation.T(7, 0, 1))
		},
	}
	for i, mut := range cases {
		v2, leaves2 := sameChildDiffVDP(t)
		d := delta.New()
		mut(d)
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			checkIncrementalEqualsRecompute(t, v2, leaves2, d)
		})
	}
}

func TestSameChildDifferenceRandom(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 900))
		v, leaves := sameChildDiffVDP(t)
		d := delta.New()
		for i := 0; i < 4; i++ {
			if rng.Intn(3) == 0 && leaves["A"].Len() > 0 {
				rows := leaves["A"].Rows()
				tp := rows[rng.Intn(len(rows))].Tuple
				if d.Rel("A").Count(tp) == 0 {
					d.Delete("A", tp)
				}
				continue
			}
			tp := relation.T(rng.Intn(10)+10, rng.Intn(2), rng.Intn(2))
			if leaves["A"].Count(tp) == 0 && d.Rel("A").Count(tp) == 0 {
				d.Insert("A", tp)
			}
		}
		checkIncrementalEqualsRecompute(t, v, leaves, d)
	}
}

func TestSameChildUnion(t *testing.T) {
	// U = π_x σ_{y>0}(A') ∪ π_x σ_{z>0}(A') — both branches on one child.
	v, leaves := sameChildDiffVDP(t)
	var nodes []*Node
	for _, name := range v.Order() {
		n := v.Node(name)
		if name == "G" {
			g := relation.MustSchema("G", []relation.Attribute{{Name: "x", Type: relation.KindInt}})
			d := n.Def.(DiffDef)
			nodes = append(nodes, &Node{Name: "G", Schema: g, Export: true, Ann: AllMaterialized(g),
				Def: UnionDef{L: d.L, R: d.R}})
			continue
		}
		nodes = append(nodes, n)
	}
	v2, err := New(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	states, _ := v2.EvalAll(ResolverFromCatalog(leaves))
	// L: {1,2}; R: {2,3} → bag union {1:1, 2:2, 3:1}.
	if states["G"].Count(relation.T(2)) != 2 || states["G"].Card() != 4 {
		t.Fatalf("union = %s", states["G"])
	}
	d := delta.New()
	d.Insert("A", relation.T(9, 1, 1)) // lands in BOTH branches
	d.Delete("A", relation.T(1, 1, 0))
	checkIncrementalEqualsRecompute(t, v2, leaves, d)
}
