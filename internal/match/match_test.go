package match

import (
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
)

// The canonical ZHKF95 scenario: a CRM knows customers by crm_id, a
// billing system by acct_no; a steward-maintained correspondence table
// links them.
func matchingEnv(t *testing.T) (map[string]*source.DB, *vdp.Builder, *clock.Logical) {
	t.Helper()
	clk := &clock.Logical{}
	crm := source.NewDB("crm", clk)
	crmSchema := relation.MustSchema("Cust", []relation.Attribute{
		{Name: "crm_id", Type: relation.KindInt},
		{Name: "name", Type: relation.KindString}}, "crm_id")
	c := relation.NewSet(crmSchema)
	c.Insert(relation.T(1, "ada"))
	c.Insert(relation.T(2, "grace"))
	c.Insert(relation.T(3, "linus"))
	if err := crm.LoadRelation(c); err != nil {
		t.Fatal(err)
	}

	billing := source.NewDB("billing", clk)
	billSchema := relation.MustSchema("Acct", []relation.Attribute{
		{Name: "acct_no", Type: relation.KindInt},
		{Name: "balance", Type: relation.KindInt}}, "acct_no")
	bRel := relation.NewSet(billSchema)
	bRel.Insert(relation.T(901, 120))
	bRel.Insert(relation.T(902, 250))
	bRel.Insert(relation.T(903, 80))
	if err := billing.LoadRelation(bRel); err != nil {
		t.Fatal(err)
	}

	steward := source.NewDB("steward", clk)
	mapSchema := relation.MustSchema("IdMap", []relation.Attribute{
		{Name: "m_crm", Type: relation.KindInt},
		{Name: "m_acct", Type: relation.KindInt}}, "m_crm")
	m := relation.NewSet(mapSchema)
	m.Insert(relation.T(1, 901))
	m.Insert(relation.T(2, 902))
	// linus (3) unmatched on purpose.
	if err := steward.LoadRelation(m); err != nil {
		t.Fatal(err)
	}

	b := vdp.NewBuilder()
	for db, schema := range map[*source.DB]*relation.Schema{
		crm: crmSchema, billing: billSchema, steward: mapSchema,
	} {
		if err := b.AddSource(db.Name(), schema); err != nil {
			t.Fatal(err)
		}
	}
	return map[string]*source.DB{"crm": crm, "billing": billing, "steward": steward}, b, clk
}

func buildMediator(t *testing.T, dbs map[string]*source.DB, b *vdp.Builder, clk *clock.Logical) *core.Mediator {
	t.Helper()
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	conns := map[string]core.SourceConn{}
	for name, db := range dbs {
		conns[name] = core.LocalSource{DB: db}
	}
	med, err := core.New(core.Config{VDP: plan, Sources: conns, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range dbs {
		core.ConnectLocal(med, db)
	}
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	return med
}

func TestLookupTableMatching(t *testing.T) {
	dbs, b, clk := matchingEnv(t)
	spec := Spec{
		Left: "Cust", Right: "Acct",
		On:  []Pair{{Left: "crm_id", Right: "acct_no"}},
		Via: &Lookup{Rel: "IdMap", LeftKey: "m_crm", RightKey: "m_acct"},
	}
	if err := AddMatchedView(b, "Customer360", spec, []string{"crm_id", "name", "balance"}); err != nil {
		t.Fatal(err)
	}
	med := buildMediator(t, dbs, b, clk)

	ans, err := med.Query("Customer360", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Card() != 2 || !ans.Contains(relation.T(1, "ada", 120)) || !ans.Contains(relation.T(2, "grace", 250)) {
		t.Fatalf("matched view: %s", ans)
	}

	// A new correspondence row matches linus incrementally.
	d := delta.New()
	d.Insert("IdMap", relation.T(3, 903))
	dbs["steward"].MustApply(d)
	if _, err := med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	ans, _ = med.Query("Customer360", nil, nil)
	if ans.Card() != 3 || !ans.Contains(relation.T(3, "linus", 80)) {
		t.Fatalf("after steward update: %s", ans)
	}

	// A billing update flows through too.
	d2 := delta.New()
	d2.Delete("Acct", relation.T(901, 120))
	d2.Insert("Acct", relation.T(901, 99))
	dbs["billing"].MustApply(d2)
	if _, err := med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	ans, _ = med.Query("Customer360", nil, nil)
	if !ans.Contains(relation.T(1, "ada", 99)) {
		t.Fatalf("after billing update: %s", ans)
	}
}

func TestDirectKeyMatching(t *testing.T) {
	// Direct key-equality matching, with an extra Where condition.
	clk2 := &clock.Logical{}
	left := source.NewDB("l", clk2)
	ls := relation.MustSchema("L", []relation.Attribute{
		{Name: "lid", Type: relation.KindInt}, {Name: "lv", Type: relation.KindInt}}, "lid")
	lr := relation.NewSet(ls)
	lr.Insert(relation.T(1, 10))
	lr.Insert(relation.T(2, 20))
	left.LoadRelation(lr)
	right := source.NewDB("r", clk2)
	rs := relation.MustSchema("R", []relation.Attribute{
		{Name: "rid", Type: relation.KindInt}, {Name: "rv", Type: relation.KindInt}}, "rid")
	rr := relation.NewSet(rs)
	rr.Insert(relation.T(1, 100))
	rr.Insert(relation.T(3, 300))
	right.LoadRelation(rr)
	b2 := vdp.NewBuilder()
	b2.AddSource("l", ls)
	b2.AddSource("r", rs)
	if err := AddMatchedView(b2, "M", Spec{
		Left: "L", Right: "R",
		On:    []Pair{{Left: "lid", Right: "rid"}},
		Where: algebra.Gt(algebra.A("rv"), algebra.CInt(0)),
	}, []string{"lid", "lv", "rv"}); err != nil {
		t.Fatal(err)
	}
	med := buildMediator(t, map[string]*source.DB{"l": left, "r": right}, b2, clk2)
	ans, err := med.Query("M", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Card() != 1 || !ans.Contains(relation.T(1, 10, 100)) {
		t.Fatalf("direct match: %s", ans)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Left: "A"},
		{Left: "A", Right: "B"},
		{Left: "A", Right: "B", On: []Pair{{Left: "", Right: "x"}}},
		{Left: "A", Right: "B", Via: &Lookup{Rel: "M"}},
		{Left: "A", Right: "B", Via: &Lookup{Rel: "M", LeftKey: "l", RightKey: "r"}}, // no On pair
		{Left: "A", Right: "B", On: []Pair{{Left: "a", Right: "b"}, {Left: "c", Right: "d"}},
			Via: &Lookup{Rel: "M", LeftKey: "l", RightKey: "r"}}, // too many pairs
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
	good := Spec{Left: "A", Right: "B", On: []Pair{{Left: "a", Right: "b"}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if _, err := good.Stmt(nil); err == nil {
		t.Errorf("empty projection must fail")
	}
}

func TestHybridMatchedView(t *testing.T) {
	// Matched views compose with annotations: balance virtual, polled on
	// demand with compensation.
	dbs, b, clk := matchingEnv(t)
	spec := Spec{
		Left: "Cust", Right: "Acct",
		On:  []Pair{{Left: "crm_id", Right: "acct_no"}},
		Via: &Lookup{Rel: "IdMap", LeftKey: "m_crm", RightKey: "m_acct"},
	}
	if err := AddMatchedView(b, "Customer360", spec, []string{"crm_id", "name", "balance"}); err != nil {
		t.Fatal(err)
	}
	b.Annotate("Customer360", vdp.Ann([]string{"crm_id", "name"}, []string{"balance"}))
	b.Annotate("Acct'", vdp.Ann(nil, []string{"acct_no", "balance"}))
	med := buildMediator(t, dbs, b, clk)

	res, err := med.QueryOpts("Customer360", []string{"crm_id", "balance"}, nil, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Card() != 2 || res.Polled == 0 {
		t.Fatalf("hybrid matched view: polled=%d\n%s", res.Polled, res.Answer)
	}
}
