// Package match implements the object-matching part of the Squirrel
// view-definition language that the paper defers to its companion papers
// ([ZHKF95, ZHK95]): declaring that tuples in relations from different
// source databases denote the same real-world object, so they can be
// integrated into one matched relation.
//
// Two matching criteria are supported, following ZHKF95:
//
//   - key equality: the relations share a common identifier (possibly
//     after arithmetic normalization expressed as a predicate);
//   - lookup-table matching: a correspondence relation (itself a source
//     relation, e.g. maintained by data stewards) translates one
//     relation's keys into the other's.
//
// A Spec compiles to ordinary VDP machinery — a join node through the
// correspondence — so matched relations inherit everything the framework
// provides: annotations, incremental maintenance, virtual attributes, and
// the consistency guarantees.
package match

import (
	"fmt"

	"squirrel/internal/algebra"
	"squirrel/internal/sqlview"
	"squirrel/internal/vdp"
)

// Pair names one attribute from each side that must agree.
type Pair struct {
	Left, Right string
}

// Lookup names a correspondence relation and its two key columns: a row
// (l, r) asserts that left-object l and right-object r are the same
// real-world entity.
type Lookup struct {
	// Rel is the correspondence relation (a source relation registered
	// with the builder — matching data is source data like any other).
	Rel string
	// LeftKey and RightKey are the correspondence relation's columns
	// holding the left and right identifiers.
	LeftKey, RightKey string
}

// Spec declares how two source relations' objects are matched.
type Spec struct {
	// Left and Right are the source relations being integrated.
	Left, Right string
	// On lists direct key-equality pairs (used when the identifiers are
	// directly comparable).
	On []Pair
	// Via, if set, routes the match through a lookup table instead of
	// (or in addition to) direct equality.
	Via *Lookup
	// Where is an optional extra matching condition over the combined
	// attributes (e.g. normalization arithmetic).
	Where algebra.Expr
}

// Validate checks the spec's internal consistency (relation existence is
// checked by the builder at compile time).
func (s Spec) Validate() error {
	if s.Left == "" || s.Right == "" {
		return fmt.Errorf("match: spec needs both relations")
	}
	if len(s.On) == 0 && s.Via == nil {
		return fmt.Errorf("match: spec needs key pairs or a lookup table")
	}
	for _, p := range s.On {
		if p.Left == "" || p.Right == "" {
			return fmt.Errorf("match: empty attribute in key pair")
		}
	}
	if s.Via != nil {
		if s.Via.Rel == "" || s.Via.LeftKey == "" || s.Via.RightKey == "" {
			return fmt.Errorf("match: incomplete lookup table spec")
		}
		if len(s.On) != 1 {
			return fmt.Errorf("match: lookup matching needs exactly one On pair naming the identifier columns")
		}
	}
	return nil
}

// AddMatchedView compiles the spec into the builder as an export relation
// named name projecting cols (attributes drawn from either side; lookup
// columns may be projected too). The matched relation is maintained like
// any other VDP node — annotate it (or its auxiliaries) before Build for
// hybrid support.
func AddMatchedView(b *vdp.Builder, name string, spec Spec, cols []string) error {
	stmt, err := spec.Stmt(cols)
	if err != nil {
		return err
	}
	return b.AddView(name, stmt)
}

// Stmt compiles the matching join into a view-definition statement
// (constructed directly, so arbitrary Where expressions are preserved
// without round-tripping through the SQL dialect).
func (s Spec) Stmt(cols []string) (*sqlview.Stmt, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("match: no projection columns")
	}
	sel := &sqlview.SelectStmt{Cols: append([]string(nil), cols...)}
	var extra []algebra.Expr
	if s.Via != nil {
		// Left ⋈ Lookup ⋈ Right, with the On pair naming the identifier
		// columns being translated.
		sel.Tables = []sqlview.TableRef{{Rel: s.Left}, {Rel: s.Via.Rel}, {Rel: s.Right}}
		sel.JoinConds = []algebra.Expr{
			algebra.Eq(algebra.A(s.On[0].Left), algebra.A(s.Via.LeftKey)),
			algebra.Eq(algebra.A(s.Via.RightKey), algebra.A(s.On[0].Right)),
		}
	} else {
		sel.Tables = []sqlview.TableRef{{Rel: s.Left}, {Rel: s.Right}}
		sel.JoinConds = []algebra.Expr{
			algebra.Eq(algebra.A(s.On[0].Left), algebra.A(s.On[0].Right)),
		}
		for _, p := range s.On[1:] {
			extra = append(extra, algebra.Eq(algebra.A(p.Left), algebra.A(p.Right)))
		}
	}
	if s.Where != nil && !algebra.IsTrue(s.Where) {
		extra = append(extra, s.Where)
	}
	if len(extra) > 0 {
		sel.Where = algebra.Conj(extra...)
	}
	return &sqlview.Stmt{Left: sel}, nil
}
