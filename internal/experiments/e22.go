package experiments

import (
	"fmt"
	"io"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/federate"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
)

// fedEnv is the 1×2×4 federation tree of DESIGN.md §11: four leaf
// databases, two middle-tier mediators each joining its own pair, and a
// top mediator joining the two exports. Announcements flow synchronously
// (ConnectLocal for the leaf hop, Exporter.Subscribe for the tier hop),
// so the measured cost is pure mediator work, not transport.
type fedEnv struct {
	clk    *clock.Logical
	leaves []*source.DB     // db1..db4
	tiers  []*core.Mediator // meda, medb
	exps   []*federate.Exporter
	top    *core.Mediator
	flat   *vdp.VDP // the same views composed in one plan, for ground truth
	cnt    []int64  // per-leaf commit counters (keeps tree-wide keys aligned)
}

func fedLeafSchemas() []*relation.Schema {
	mk := func(rel, k, v string) *relation.Schema {
		return relation.MustSchema(rel, []relation.Attribute{
			{Name: k, Type: relation.KindInt}, {Name: v, Type: relation.KindInt}}, k)
	}
	return []*relation.Schema{
		mk("RA", "a1", "a2"), mk("SA", "a3", "a4"),
		mk("RB", "b1", "b2"), mk("SB", "b3", "b4"),
	}
}

const (
	fedVA = `SELECT a1, a4 FROM RA JOIN SA ON a2 = a3`
	fedVB = `SELECT b1, b4 FROM RB JOIN SB ON b2 = b3`
	fedT  = `SELECT a1, a4, b4 FROM VA JOIN VB ON a1 = b1`
)

// newFedEnv assembles the tree. seedR rows of RA/RB carry join targets
// (i, 16+i) for later SA/SB inserts; SA/SB seed the 16 hot keys RA/RB
// inserts join against.
func newFedEnv(seedR int) (*fedEnv, error) {
	e := &fedEnv{clk: &clock.Logical{}, cnt: make([]int64, 4)}
	schemas := fedLeafSchemas()
	for i, s := range schemas {
		db := source.NewDB(fmt.Sprintf("db%d", i+1), e.clk)
		if err := db.CreateRelation(s, relation.Set); err != nil {
			return nil, err
		}
		e.leaves = append(e.leaves, db)
	}
	for l, rel := range []string{"RA", "SA", "RB", "SB"} {
		seed := delta.New()
		if l%2 == 0 { // RA/RB: join targets for later SA/SB inserts
			for i := int64(0); i < int64(seedR); i++ {
				seed.Insert(rel, relation.T(i, 16+i))
			}
		} else { // SA/SB: the 16 hot keys RA/RB inserts join against
			for k := int64(0); k < 16; k++ {
				seed.Insert(rel, relation.T(k, 100+k))
			}
		}
		e.leaves[l].MustApply(seed)
	}

	buildTier := func(name string, left, right int, view, sql string) error {
		b := vdp.NewBuilder()
		if err := b.AddSource(e.leaves[left].Name(), schemas[left]); err != nil {
			return err
		}
		if err := b.AddSource(e.leaves[right].Name(), schemas[right]); err != nil {
			return err
		}
		if err := b.AddViewSQL(view, sql); err != nil {
			return err
		}
		plan, err := b.Build()
		if err != nil {
			return err
		}
		med, err := core.New(core.Config{VDP: plan, Sources: map[string]core.SourceConn{
			e.leaves[left].Name():  core.LocalSource{DB: e.leaves[left]},
			e.leaves[right].Name(): core.LocalSource{DB: e.leaves[right]},
		}, Clock: e.clk, PropagateWorkers: 2})
		if err != nil {
			return err
		}
		core.ConnectLocal(med, e.leaves[left])
		core.ConnectLocal(med, e.leaves[right])
		if err := med.Initialize(); err != nil {
			return err
		}
		x, err := federate.New(med, name)
		if err != nil {
			return err
		}
		e.tiers = append(e.tiers, med)
		e.exps = append(e.exps, x)
		return nil
	}
	if err := buildTier("meda", 0, 1, "VA", fedVA); err != nil {
		return nil, err
	}
	if err := buildTier("medb", 2, 3, "VB", fedVB); err != nil {
		return nil, err
	}

	b := vdp.NewBuilder()
	for _, x := range e.exps {
		for _, rel := range x.Relations() {
			s, err := x.Schema(rel)
			if err != nil {
				return nil, err
			}
			if err := b.AddSource(x.Name(), s); err != nil {
				return nil, err
			}
		}
	}
	if err := b.AddViewSQL("T", fedT); err != nil {
		return nil, err
	}
	plan, err := b.Build()
	if err != nil {
		return nil, err
	}
	top, err := core.New(core.Config{VDP: plan, Sources: map[string]core.SourceConn{
		e.exps[0].Name(): e.exps[0],
		e.exps[1].Name(): e.exps[1],
	}, Clock: e.clk, PropagateWorkers: 2})
	if err != nil {
		return nil, err
	}
	for _, x := range e.exps {
		x.Subscribe(top.OnAnnouncement)
	}
	if err := top.Initialize(); err != nil {
		return nil, err
	}
	e.top = top

	fb := vdp.NewBuilder()
	for i, s := range schemas {
		if err := fb.AddSource(e.leaves[i].Name(), s); err != nil {
			return nil, err
		}
	}
	for _, v := range []struct{ name, sql string }{
		{"VA", fedVA}, {"VB", fedVB}, {"T", fedT},
	} {
		if err := fb.AddViewSQL(v.name, v.sql); err != nil {
			return nil, err
		}
	}
	if e.flat, err = fb.Build(); err != nil {
		return nil, err
	}
	return e, nil
}

// commitLeaf applies the next scripted insert to leaf l (0..3). RA/RB
// inserts join the 16 hot SA/SB seed keys; SA/SB inserts join the RA/RB
// seed rows, so every commit eventually surfaces in T when its partner
// leaf on the other branch reaches the same counter.
func (e *fedEnv) commitLeaf(l int) error {
	c := e.cnt[l]
	e.cnt[l]++
	d := delta.New()
	switch l {
	case 0:
		d.Insert("RA", relation.T(10000+c, c%16))
	case 1:
		d.Insert("SA", relation.T(16+c, 500+c))
	case 2:
		d.Insert("RB", relation.T(10000+c, c%16))
	case 3:
		d.Insert("SB", relation.T(16+c, 500+c))
	}
	_, err := e.leaves[l].Apply(d)
	return err
}

// drain runs update transactions until the mediator's queue is empty.
func drainMed(m *core.Mediator) error {
	for {
		ran, err := m.RunUpdateTransaction()
		if err != nil {
			return err
		}
		if !ran {
			return nil
		}
	}
}

// groundTruthT evaluates the flat composed plan over the current leaf
// states — what one mediator with the whole tree's views would serve.
func (e *fedEnv) groundTruthT() (*relation.Relation, error) {
	cat := map[string]*relation.Relation{}
	for i, s := range fedLeafSchemas() {
		rel, err := e.leaves[i].Current(s.Name())
		if err != nil {
			return nil, err
		}
		cat[s.Name()] = rel
	}
	states, err := e.flat.EvalAll(vdp.ResolverFromCatalog(cat))
	if err != nil {
		return nil, err
	}
	return states["T"], nil
}

// E22FederationTree measures the 1×2×4 federation: per-hop propagation
// latency (leaf→tier materialization, tier→top lift) and end-to-end
// fan-in throughput as commits batch up before each drain. Batch 1 is
// the latency floor — every commit pays both hops alone; larger batches
// amortize the per-transaction overhead across the announcements each
// drain absorbs, which is exactly the u_hold trade Theorem 7.2 prices.
func E22FederationTree(w io.Writer) error {
	t := &Table{
		Title: "E22 — tiered federation (1 top × 2 tiers × 4 leaves): per-hop cost",
		Header: []string{"batch", "commits", "leaf→tier µs/c", "tier→top µs/c",
			"end-to-end µs/c", "commits/s", "T rows"},
		Notes: []string{
			"leaf→tier: tier update txns (IUP over the leaf pair); tier→top: top update txns over the exports",
			"announcements delivered synchronously — measured cost is mediator work, not transport",
			"batch = commits absorbed per drain cycle; round-robin across the 4 leaves",
		},
	}

	run := func(batch, commits int) error {
		e, err := newFedEnv(512)
		if err != nil {
			return err
		}
		var tierT, topT time.Duration
		start := time.Now()
		for done := 0; done < commits; {
			n := batch
			if commits-done < n {
				n = commits - done
			}
			for i := 0; i < n; i++ {
				if err := e.commitLeaf((done + i) % 4); err != nil {
					return err
				}
			}
			done += n
			t0 := time.Now()
			for _, tier := range e.tiers {
				if err := drainMed(tier); err != nil {
					return err
				}
			}
			t1 := time.Now()
			if err := drainMed(e.top); err != nil {
				return err
			}
			tierT += t1.Sub(t0)
			topT += time.Since(t1)
		}
		total := time.Since(start)

		res, err := e.top.QueryOpts("T", nil, nil, core.QueryOptions{})
		if err != nil {
			return err
		}
		truth, err := e.groundTruthT()
		if err != nil {
			return err
		}
		if !res.Answer.Equal(truth) {
			return fmt.Errorf("E22: batch %d diverged from flat ground truth", batch)
		}

		perC := func(d time.Duration) string {
			return fmt.Sprintf("%.1f", float64(d.Microseconds())/float64(commits))
		}
		t.Add(batch, commits, perC(tierT), perC(topT), perC(total),
			fmt.Sprintf("%.0f", float64(commits)/total.Seconds()), res.Answer.Len())
		return nil
	}

	for _, cfg := range []struct{ batch, commits int }{
		{1, 256}, {8, 512}, {64, 1024},
	} {
		if err := run(cfg.batch, cfg.commits); err != nil {
			return err
		}
	}
	t.Print(w)
	return nil
}

// FederationBench exposes the E22 tree to the root-level testing.B
// benchmark: each Step commits batch leaf transactions round-robin and
// drains both hops. Commits past the seeded join window stop producing
// T rows but still exercise the full per-hop machinery (empty export
// deltas are announced for sequence density).
type FederationBench struct {
	env   *fedEnv
	batch int
	n     int
}

// NewFederationBench builds a fresh 1×2×4 tree for one benchmark run.
func NewFederationBench(batch int) (*FederationBench, error) {
	e, err := newFedEnv(4096)
	if err != nil {
		return nil, err
	}
	return &FederationBench{env: e, batch: batch}, nil
}

// Step runs one drain cycle: batch commits, tier transactions, top
// transactions.
func (f *FederationBench) Step() error {
	for i := 0; i < f.batch; i++ {
		if err := f.env.commitLeaf(f.n % 4); err != nil {
			return err
		}
		f.n++
	}
	for _, tier := range f.env.tiers {
		if err := drainMed(tier); err != nil {
			return err
		}
	}
	return drainMed(f.env.top)
}
