package experiments

import (
	"fmt"
	"io"
	"time"

	"squirrel/internal/core"
	"squirrel/internal/vdp"
)

// E14AdvisorEvaluation closes the loop on §5.3: the advisor turns the
// paper's heuristics into annotations; this experiment runs the same
// workload under all-materialized, all-virtual, and advisor-chosen
// annotations, measuring the costs the heuristics trade off (propagation
// work, query polls, resident bytes, wall time). The advisor should land
// near the per-metric winners without being handed the answer.
func E14AdvisorEvaluation(w io.Writer) error {
	t := &Table{
		Title:  "E14 — §5.3 advisor: heuristic annotations vs the extremes",
		Header: []string{"config", "total time", "polls", "tuplesPolled", "atoms", "resident bytes", "ok"},
		Notes: []string{
			"workload: 60 txns (90% ΔR) interleaved with 120 queries (90% hot π_{r1,s1})",
			"advisor profile: access{r1:.9,s1:.9,r3:.05,s2:.05}, updates{db1:.9,db2:.1}",
		},
	}

	profile := vdp.WorkloadProfile{
		AccessFreq:  map[string]float64{"r1": 0.9, "s1": 0.9, "r3": 0.05, "s2": 0.05},
		UpdateShare: map[string]float64{"db1": 0.9, "db2": 0.1},
	}

	run := func(name string, ann annotations) error {
		e, err := newEnv(60, 3000, 1500, ann)
		if err != nil {
			return err
		}
		base := e.med.Stats()
		rng := newRng(13)
		start := time.Now()
		for i := 0; i < 60; i++ {
			if rng.Float64() < 0.9 {
				if err := e.commitR(4); err != nil {
					return err
				}
			} else if err := e.commitS(4); err != nil {
				return err
			}
			if _, err := e.med.RunUpdateTransaction(); err != nil {
				return err
			}
			for q := 0; q < 2; q++ {
				attrs := []string{"r1", "s1"}
				if rng.Intn(10) == 0 {
					attrs = []string{"r3", "s1"}
				}
				if _, err := e.med.QueryOpts("T", attrs, nil, core.QueryOptions{}); err != nil {
					return err
				}
			}
		}
		elapsed := time.Since(start)
		st := e.med.Stats()
		resident := 0
		for _, node := range e.plan.NonLeaves() {
			if snap := e.med.StoreSnapshot(node); snap != nil {
				resident += snap.MemoryFootprint()
			}
		}
		truth, err := e.groundTruthT()
		if err != nil {
			return err
		}
		ok := true
		if snap := e.med.StoreSnapshot("T"); snap != nil {
			n := e.plan.Node("T")
			want, err := projectTruth(truth, n.MaterializedAttrs(), nil)
			if err != nil {
				return err
			}
			ok = snap.Equal(want)
		}
		t.Add(name, elapsed, st.SourcePolls-base.SourcePolls,
			st.TuplesPolled-base.TuplesPolled, st.AtomsPropagated-base.AtomsPropagated,
			resident, ok)
		if !ok {
			return fmt.Errorf("E14: %s diverged", name)
		}
		return nil
	}

	if err := run("all-materialized", annVariants()["materialized"]); err != nil {
		return err
	}
	if err := run("all-virtual", annVariants()["virtual"]); err != nil {
		return err
	}

	// The advisor needs the plan's shape, so build a throwaway plan first.
	probe, err := newEnv(60, 10, 10, annVariants()["materialized"])
	if err != nil {
		return err
	}
	advice := probe.plan.Advise(profile)
	advised := annotations{
		rp: advice.Annotations["R'"],
		sp: advice.Annotations["S'"],
		t:  advice.Annotations["T"],
	}
	if err := run("advisor (§5.3)", advised); err != nil {
		return err
	}
	for _, r := range advice.Reasons {
		t.Notes = append(t.Notes, "advisor: "+r)
	}
	t.Print(w)
	return nil
}
