package experiments

import (
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// figure4System is the assembled Figure 4 environment: four source
// databases and the hybrid two-export mediator.
type figure4System struct {
	clk  *clock.Logical
	dbs  map[string]*source.DB
	med  *core.Mediator
	rec  *trace.Recorder
	plan *vdp.VDP
}

// buildFigure4System populates each source relation with n rows and
// initializes the mediator.
func buildFigure4System(b *vdp.Builder, n int) (*figure4System, error) {
	plan, err := b.Build()
	if err != nil {
		return nil, err
	}
	clk := &clock.Logical{}
	rng := newRng(21)
	dbs := map[string]*source.DB{}
	conns := map[string]core.SourceConn{}
	for _, src := range plan.Sources() {
		db := source.NewDB(src, clk)
		for _, leaf := range plan.LeavesOf(src) {
			schema := plan.Node(leaf).Schema
			rel := relation.NewSet(schema)
			for i := 0; i < n; i++ {
				rel.Insert(relation.T(int64(i+1), int64(rng.Intn(40))))
			}
			if err := db.LoadRelation(rel); err != nil {
				return nil, err
			}
		}
		dbs[src] = db
		conns[src] = core.LocalSource{DB: db}
	}
	rec := trace.NewRecorder()
	med, err := core.New(core.Config{VDP: plan, Sources: conns, Clock: clk, Recorder: rec})
	if err != nil {
		return nil, err
	}
	for _, db := range dbs {
		core.ConnectLocal(med, db)
	}
	if err := med.Initialize(); err != nil {
		return nil, err
	}
	return &figure4System{clk: clk, dbs: dbs, med: med, rec: rec, plan: plan}, nil
}

// checkAgainstRecompute verifies G's store and E's materialized portion
// against from-scratch evaluation over the current source states.
func (f *figure4System) checkAgainstRecompute() (gOK, eOK bool, err error) {
	leaves := map[string]*relation.Relation{}
	for _, src := range f.plan.Sources() {
		for _, leaf := range f.plan.LeavesOf(src) {
			cur, err := f.dbs[src].Current(leaf)
			if err != nil {
				return false, false, err
			}
			leaves[leaf] = cur
		}
	}
	truth, err := f.plan.EvalAll(vdp.ResolverFromCatalog(leaves))
	if err != nil {
		return false, false, err
	}
	gOK = f.med.StoreSnapshot("G").Equal(truth["G"])
	eMats, err := projectTruth(truth["E"], f.plan.Node("E").MaterializedAttrs(), nil)
	if err != nil {
		return false, false, err
	}
	eOK = f.med.StoreSnapshot("E").Equal(eMats)
	return gOK, eOK, nil
}
