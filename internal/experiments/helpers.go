package experiments

import (
	"math/rand"

	"squirrel/internal/algebra"
	"squirrel/internal/relation"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// projectTruth applies π_attrs σ_cond to a ground-truth relation,
// mirroring the QP's answer construction (bag projection).
func projectTruth(truth *relation.Relation, attrs []string, cond algebra.Expr) (*relation.Relation, error) {
	if attrs == nil {
		attrs = truth.Schema().AttrNames()
	}
	schema, err := truth.Schema().Project(truth.Schema().Name(), attrs)
	if err != nil {
		return nil, err
	}
	positions, err := truth.Schema().Positions(attrs)
	if err != nil {
		return nil, err
	}
	out := relation.NewBag(schema)
	var evalErr error
	truth.Each(func(t relation.Tuple, c int) bool {
		ok, err := algebra.EvalPred(cond, truth.Schema(), t)
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			out.Add(t.Project(positions), c)
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}
