package experiments

import (
	"fmt"
	"io"
	"time"

	"squirrel/internal/core"
	"squirrel/internal/relation"
	"squirrel/internal/vdp"
	"squirrel/internal/wire"
)

// E9Crossover measures the paper's §1 framing — "the virtual approach may
// be better if the information sources are changing frequently, whereas
// the materialized approach may be better if the information sources
// change infrequently and very fast query response time is needed" — as a
// sweep over the update:query ratio. The cost metric is total data moved
// and touched (tuples polled + delta atoms propagated) plus the mean
// query latency; the winner flips as the ratio crosses 1.
func E9Crossover(w io.Writer) error {
	t := &Table{
		Title:  "E9 — §1: materialized vs virtual vs hybrid across the update:query spectrum",
		Header: []string{"upd:qry", "config", "work (tuples)", "µs/query", "µs/update", "polls"},
		Notes: []string{
			"work = tuples polled from sources + delta atoms propagated (data movement proxy)",
			"hybrid = T[r1^m,r3^v,s1^m,s2^v] with virtual auxiliaries; queries are 90% hot",
		},
	}
	ratios := []struct {
		name    string
		updates int
		queries int
	}{
		{"100:1", 100, 1}, {"10:1", 50, 5}, {"1:1", 30, 30}, {"1:10", 5, 50}, {"1:100", 1, 100},
	}
	for _, ratio := range ratios {
		for _, cfg := range []string{"materialized", "hybrid", "virtual"} {
			e, err := newEnv(55, 2000, 1000, annVariants()[cfg])
			if err != nil {
				return err
			}
			base := e.med.Stats()
			var updTime, qryTime time.Duration
			rng := newRng(3)
			steps := ratio.updates + ratio.queries
			updLeft, qryLeft := ratio.updates, ratio.queries
			for i := 0; i < steps; i++ {
				doUpdate := updLeft > 0 && (qryLeft == 0 || rng.Intn(steps) < ratio.updates)
				if doUpdate {
					updLeft--
					if err := e.commitR(4); err != nil {
						return err
					}
					start := time.Now()
					if _, err := e.med.RunUpdateTransaction(); err != nil {
						return err
					}
					updTime += time.Since(start)
				} else {
					qryLeft--
					attrs := []string{"r1", "s1"}
					if rng.Intn(10) == 0 {
						attrs = []string{"r3", "s1"}
					}
					start := time.Now()
					if _, err := e.med.QueryOpts("T", attrs, nil, core.QueryOptions{}); err != nil {
						return err
					}
					qryTime += time.Since(start)
				}
			}
			st := e.med.Stats()
			work := (st.TuplesPolled - base.TuplesPolled) + (st.AtomsPropagated - base.AtomsPropagated)
			perQ, perU := 0.0, 0.0
			if ratio.queries > 0 {
				perQ = float64(qryTime.Microseconds()) / float64(ratio.queries)
			}
			if ratio.updates > 0 {
				perU = float64(updTime.Microseconds()) / float64(ratio.updates)
			}
			t.Add(ratio.name, cfg, work, perQ, perU, st.SourcePolls-base.SourcePolls)
		}
	}
	t.Print(w)
	return nil
}

// E10SpaceVsPerformance measures the §5.3 heuristics: sweeping the share
// of the export relation's attributes that are materialized, trading
// resident bytes against cold-query cost. The paper gives qualitative
// guidance ("rarely accessed attributes are candidates to be virtual");
// the table quantifies the trade-off on this workload.
func E10SpaceVsPerformance(w io.Writer) error {
	t := &Table{
		Title:  "E10 — §5.3: space vs performance across materialization fractions",
		Header: []string{"T annotation", "resident bytes", "polls/cold-query", "µs/hot-query", "µs/cold-query"},
		Notes: []string{
			"auxiliaries virtual throughout; hot = materialized attrs only, cold = all attrs",
		},
	}
	tSchema := relation.MustSchema("T", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r3", Type: relation.KindInt},
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}})
	fractions := []struct {
		label string
		mats  []string
	}{
		{"all virtual", nil},
		{"[r1^m]", []string{"r1"}},
		{"[r1^m,s1^m]", []string{"r1", "s1"}},
		{"[r1^m,r3^m,s1^m]", []string{"r1", "r3", "s1"}},
		{"all materialized", []string{"r1", "r3", "s1", "s2"}},
	}
	for _, f := range fractions {
		var virt []string
		matSet := map[string]bool{}
		for _, m := range f.mats {
			matSet[m] = true
		}
		for _, a := range tSchema.AttrNames() {
			if !matSet[a] {
				virt = append(virt, a)
			}
		}
		ann := annVariants()["virtual-aux"]
		ann.t = vdp.Ann(f.mats, virt)
		e, err := newEnv(56, 3000, 1500, ann)
		if err != nil {
			return err
		}
		resident := 0
		if st := e.med.StoreSnapshot("T"); st != nil {
			resident = st.MemoryFootprint()
		}
		base := e.med.Stats()
		const rounds = 15
		var hotTime, coldTime time.Duration
		hotAttrs := f.mats
		for i := 0; i < rounds; i++ {
			if len(hotAttrs) > 0 {
				start := time.Now()
				if _, err := e.med.QueryOpts("T", hotAttrs, nil, core.QueryOptions{}); err != nil {
					return err
				}
				hotTime += time.Since(start)
			}
			start := time.Now()
			if _, err := e.med.QueryOpts("T", nil, nil, core.QueryOptions{KeyBased: core.KeyBasedOff}); err != nil {
				return err
			}
			coldTime += time.Since(start)
		}
		st := e.med.Stats()
		pollsPerCold := float64(st.SourcePolls-base.SourcePolls) / rounds
		hotCell := "n/a"
		if len(hotAttrs) > 0 {
			hotCell = fmt.Sprintf("%.2f", float64(hotTime.Microseconds())/rounds)
		}
		t.Add(f.label, resident, pollsPerCold, hotCell,
			float64(coldTime.Microseconds())/rounds)
	}
	t.Print(w)
	return nil
}

// E11WireOverhead measures the Figure 3 deployment over real TCP
// (loopback): mediator initialization, update round trips, and query
// latency against in-process sources, quantifying the wire protocol's
// overhead.
func E11WireOverhead(w io.Writer) error {
	t := &Table{
		Title:  "E11 — Figure 3 over TCP: wire protocol overhead (loopback)",
		Header: []string{"transport", "µs/query (hot)", "µs/query (cold poll)", "µs/update txn"},
	}
	for _, transport := range []string{"in-process", "tcp"} {
		e, err := newEnv(57, 2000, 1000, annVariants()["hybrid-mat-aux"])
		if err != nil {
			return err
		}
		med := e.med
		var servers []*wire.SourceServer
		if transport == "tcp" {
			// Rebuild the mediator against TCP-served versions of the same
			// databases.
			srv1 := wire.NewSourceServer(e.db1)
			addr1, err := srv1.Start("127.0.0.1:0")
			if err != nil {
				return err
			}
			srv2 := wire.NewSourceServer(e.db2)
			addr2, err := srv2.Start("127.0.0.1:0")
			if err != nil {
				return err
			}
			servers = append(servers, srv1, srv2)
			c1, err := wire.Dial(addr1)
			if err != nil {
				return err
			}
			c2, err := wire.Dial(addr2)
			if err != nil {
				return err
			}
			med2, err := core.New(core.Config{
				VDP:     e.plan,
				Sources: map[string]core.SourceConn{"db1": c1, "db2": c2},
				Clock:   e.clk,
			})
			if err != nil {
				return err
			}
			c1.OnAnnounce(med2.OnAnnouncement)
			c2.OnAnnounce(med2.OnAnnouncement)
			if err := med2.Initialize(); err != nil {
				return err
			}
			med = med2
		}

		const rounds = 20
		var hot, cold, upd time.Duration
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if _, err := med.QueryOpts("T", []string{"r1", "s1"}, nil, core.QueryOptions{}); err != nil {
				return err
			}
			hot += time.Since(start)
			start = time.Now()
			if _, err := med.QueryOpts("T", []string{"r3", "s1"}, nil,
				core.QueryOptions{KeyBased: core.KeyBasedOff}); err != nil {
				return err
			}
			cold += time.Since(start)
			if err := e.commitR(4); err != nil {
				return err
			}
			if transport == "tcp" {
				if err := waitQueue(med); err != nil {
					return err
				}
			}
			start = time.Now()
			if _, err := med.RunUpdateTransaction(); err != nil {
				return err
			}
			upd += time.Since(start)
		}
		t.Add(transport,
			float64(hot.Microseconds())/rounds,
			float64(cold.Microseconds())/rounds,
			float64(upd.Microseconds())/rounds)
		for _, s := range servers {
			s.Close()
		}
	}
	t.Print(w)
	return nil
}

func waitQueue(med *core.Mediator) error {
	deadline := time.Now().Add(5 * time.Second)
	for med.QueueLen() == 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("E11: announcement never arrived")
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}
