// Package experiments implements the reproduction harness: one runner per
// paper artifact (E1–E18 in DESIGN.md), each regenerating a table whose
// SHAPE mirrors what the paper states or implies. The runners are used by
// `cmd/squirrel bench` and by the root-level testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
	"squirrel/internal/workload"
)

// Table is a printable experiment result: a header and rows of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n## %s\n\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	dashes := make([]string, len(t.Header))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	line(dashes)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// env is the reusable paper-fixture environment (R@db1 ⋈ S@db2 → T) with
// parameterized sizes and annotations.
type env struct {
	clk    *clock.Logical
	db1    *source.DB
	db2    *source.DB
	med    *core.Mediator
	rec    *trace.Recorder
	plan   *vdp.VDP
	rGen   *workload.TupleGen
	sGen   *workload.TupleGen
	rStrm  *workload.Stream
	sStrm  *workload.Stream
	nextID int64
}

type annotations struct {
	rp, sp, t vdp.Annotation
}

func paperSchemas() (*relation.Schema, *relation.Schema) {
	r := relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}, {Name: "r4", Type: relation.KindInt}}, "r1")
	s := relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt},
		{Name: "s3", Type: relation.KindInt}}, "s1")
	return r, s
}

// annVirtualRP etc. build the standard annotation variants.
func annVariants() map[string]annotations {
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	sp := relation.MustSchema("S'", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")
	tS := relation.MustSchema("T", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r3", Type: relation.KindInt},
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}})
	return map[string]annotations{
		"materialized": {},
		"virtual-aux":  {rp: vdp.AllVirtual(rp), sp: vdp.AllVirtual(sp)},
		"virtual": {rp: vdp.AllVirtual(rp), sp: vdp.AllVirtual(sp),
			t: vdp.AllVirtual(tS)},
		"hybrid": {rp: vdp.AllVirtual(rp), sp: vdp.AllVirtual(sp),
			t: vdp.Ann([]string{"r1", "s1"}, []string{"r3", "s2"})},
		"hybrid-mat-aux": {t: vdp.Ann([]string{"r1", "s1"}, []string{"r3", "s2"})},
	}
}

// newEnv builds and initializes the fixture with |R| = nR, |S| = nS.
func newEnv(seed int64, nR, nS int, ann annotations) (*env, error) {
	rSchema, sSchema := paperSchemas()
	rng := rand.New(rand.NewSource(seed))
	rGen, err := workload.NewTupleGen(rSchema,
		workload.NewSeq(1),
		workload.IntRange{Lo: 1, Hi: int64(maxInt(nS, 1))}, // join attr r2 ~ s1 domain
		workload.IntRange{Lo: 0, Hi: 200},
		workload.Choice{Values: []relation.Value{relation.Int(100), relation.Int(100), relation.Int(100), relation.Int(50)}},
	)
	if err != nil {
		return nil, err
	}
	sGen, err := workload.NewTupleGen(sSchema,
		workload.NewSeq(1),
		workload.IntRange{Lo: 0, Hi: 9},
		workload.IntRange{Lo: 0, Hi: 99}, // 50% pass s3 < 50
	)
	if err != nil {
		return nil, err
	}
	rInit := rGen.Populate(rng, nR)
	sInit := sGen.Populate(rng, nS)

	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db2 := source.NewDB("db2", clk)
	if err := db1.LoadRelation(rInit); err != nil {
		return nil, err
	}
	if err := db2.LoadRelation(sInit); err != nil {
		return nil, err
	}

	b := vdp.NewBuilder()
	if err := b.AddSource("db1", rSchema); err != nil {
		return nil, err
	}
	if err := b.AddSource("db2", sSchema); err != nil {
		return nil, err
	}
	if err := b.AddViewSQL("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`); err != nil {
		return nil, err
	}
	if ann.rp != nil {
		b.Annotate("R'", ann.rp)
	}
	if ann.sp != nil {
		b.Annotate("S'", ann.sp)
	}
	if ann.t != nil {
		b.Annotate("T", ann.t)
	}
	plan, err := b.Build()
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	med, err := core.New(core.Config{
		VDP: plan,
		Sources: map[string]core.SourceConn{
			"db1": core.LocalSource{DB: db1}, "db2": core.LocalSource{DB: db2}},
		Clock:    clk,
		Recorder: rec,
	})
	if err != nil {
		return nil, err
	}
	core.ConnectLocal(med, db1)
	core.ConnectLocal(med, db2)
	if err := med.Initialize(); err != nil {
		return nil, err
	}
	return &env{
		clk: clk, db1: db1, db2: db2, med: med, rec: rec, plan: plan,
		rGen: rGen, sGen: sGen,
		rStrm:  workload.NewStream(rGen, seed+1, rInit),
		sStrm:  workload.NewStream(sGen, seed+2, sInit),
		nextID: int64(nR + nS + 10),
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// commitR / commitS apply one generated transaction of the given size.
func (e *env) commitR(size int) error {
	d := e.rStrm.Transaction(size)
	if d.IsEmpty() {
		return nil
	}
	_, err := e.db1.Apply(d)
	return err
}

func (e *env) commitS(size int) error {
	d := e.sStrm.Transaction(size)
	if d.IsEmpty() {
		return nil
	}
	_, err := e.db2.Apply(d)
	return err
}

func (e *env) sync() error {
	for {
		ran, err := e.med.RunUpdateTransaction()
		if err != nil {
			return err
		}
		if !ran {
			return nil
		}
	}
}

// groundTruthT recomputes T from the current source states.
func (e *env) groundTruthT() (*relation.Relation, error) {
	r, err := e.db1.Current("R")
	if err != nil {
		return nil, err
	}
	s, err := e.db2.Current("S")
	if err != nil {
		return nil, err
	}
	states, err := e.plan.EvalAll(vdp.ResolverFromCatalog(
		map[string]*relation.Relation{"R": r, "S": s}))
	if err != nil {
		return nil, err
	}
	return states["T"], nil
}

// condR3 is the Example 2.3 query condition.
func condR3() algebra.Expr { return algebra.Lt(algebra.A("r3"), algebra.CInt(100)) }

// Registry maps experiment IDs to runners.
var Registry = map[string]func(w io.Writer) error{
	"E1":  E1MaterializedMaintenance,
	"E2":  E2VirtualAuxiliary,
	"E3":  E3HybridQueries,
	"E4":  E4Figure2,
	"E5":  E5Figure4,
	"E6":  E6KernelVsNaive,
	"E7":  E7ConsistencySoak,
	"E8":  E8Freshness,
	"E9":  E9Crossover,
	"E10": E10SpaceVsPerformance,
	"E11": E11WireOverhead,
	"E12": E12BatchingAblation,
	"E13": E13JoinStrategyAblation,
	"E14": E14AdvisorEvaluation,
	"E18": E18AdaptiveSkewSweep,
	"E22": E22FederationTree,
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer) error {
	for _, id := range IDs() {
		if err := Registry[id](w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}
