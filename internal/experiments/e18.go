package experiments

import (
	"fmt"
	"io"
	"time"

	"squirrel/internal/core"
	"squirrel/internal/source"
	"squirrel/internal/workload"
)

// E18AdaptiveSkewSweep sweeps query skew toward a hot attribute pair and
// compares a static all-materialized mediator against one running the
// online §5.3 loop (ProfileCollector → advisor → re-annotation). Hot
// queries project π_{r1,s1}T; cold queries project π_{r3,s2}T. As the
// hot share rises, the cold attributes' access frequency falls below the
// advisor's hot threshold (0.1) and the adaptive mediator drops them
// from the store — trading a compensated poll on the now-rare cold
// queries for resident bytes. The crossover sits between hot shares 0.90
// and 0.95: at 0.90 the cold frequency is exactly the (inclusive)
// threshold and nothing flips.
func E18AdaptiveSkewSweep(w io.Writer) error {
	t := &Table{
		Title: "E18 — hot-attribute skew: static store vs the online adaptive loop",
		Header: []string{"hot-share", "config", "hot µs/q", "cold µs/q",
			"resident bytes", "flips", "T annotation"},
		Notes: []string{
			"hot query: π_{r1,s1}T; cold query: π_{r3,s2}T; 6 rounds × 40 queries, ΔR/ΔS churn each round",
			"adaptive: MinQueries=20, HysteresisRounds=2 — flips land on the second stable round",
		},
	}

	const rounds, perRound = 6, 40

	run := func(hotShare float64, adapt bool) error {
		e, err := newEnv(18, 3000, 1500, annVariants()["materialized"])
		if err != nil {
			return err
		}
		var ctrl *core.AdaptController
		if adapt {
			ctrl = core.NewAdaptController(e.med, core.AdaptConfig{
				MinQueries:       20,
				HysteresisRounds: 2,
				Cooldown:         time.Nanosecond, // rounds are driven manually; no wall-time damping
			})
		}
		// Exactly one announcement per source per round: UpdateShare stays
		// pinned at 0.5/0.5, where the leaf-parent churn rule's strict
		// partner test can never pass, so the sweep isolates the export's
		// hot-attribute rule.
		applyOne := func(strm *workload.Stream, db *source.DB) error {
			for {
				d := strm.Transaction(2)
				if d.IsEmpty() {
					continue
				}
				_, err := db.Apply(d)
				return err
			}
		}
		cold := perRound - int(hotShare*perRound+0.5)
		var hotN, coldN int
		var hotT, coldT time.Duration
		for r := 0; r < rounds; r++ {
			if err := applyOne(e.rStrm, e.db1); err != nil {
				return err
			}
			if err := applyOne(e.sStrm, e.db2); err != nil {
				return err
			}
			if err := e.sync(); err != nil {
				return err
			}
			for q := 0; q < perRound; q++ {
				attrs := []string{"r1", "s1"}
				// Spread the cold queries evenly through the round.
				isCold := cold > 0 && q%(perRound/maxInt(cold, 1)) == 0 && coldN < cold*(r+1)
				if isCold {
					attrs = []string{"r3", "s2"}
				}
				start := time.Now()
				if _, err := e.med.QueryOpts("T", attrs, nil,
					core.QueryOptions{KeyBased: core.KeyBasedOff}); err != nil {
					return err
				}
				if isCold {
					coldT += time.Since(start)
					coldN++
				} else {
					hotT += time.Since(start)
					hotN++
				}
			}
			if ctrl != nil {
				if _, err := ctrl.Step(); err != nil {
					return err
				}
			}
		}

		// The final answer must still be exact, whatever layout the
		// controller converged on.
		res, err := e.med.QueryOpts("T", nil, nil, core.QueryOptions{KeyBased: core.KeyBasedOff})
		if err != nil {
			return err
		}
		truth, err := e.groundTruthT()
		if err != nil {
			return err
		}
		want, err := projectTruth(truth, nil, nil)
		if err != nil {
			return err
		}
		if !res.Answer.Equal(want) {
			return fmt.Errorf("E18: hot-share %.2f adapt=%v diverged from ground truth", hotShare, adapt)
		}

		resident := 0
		for _, node := range e.plan.NonLeaves() {
			if snap := e.med.StoreSnapshot(node); snap != nil {
				resident += snap.MemoryFootprint()
			}
		}
		name := "static"
		if adapt {
			name = "adaptive"
		}
		node := e.med.VDP().Node("T")
		avg := func(d time.Duration, n int) string {
			if n == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f", float64(d.Microseconds())/float64(n))
		}
		t.Add(fmt.Sprintf("%.2f", hotShare), name, avg(hotT, hotN), avg(coldT, coldN),
			resident, e.med.Stats().AnnotationSwitches, node.Ann.String(node.Schema))
		return nil
	}

	for _, hotShare := range []float64{0.50, 0.90, 0.95, 1.00} {
		for _, adapt := range []bool{false, true} {
			if err := run(hotShare, adapt); err != nil {
				return err
			}
		}
	}
	t.Print(w)
	return nil
}
