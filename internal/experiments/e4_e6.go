package experiments

import (
	"fmt"
	"io"
	"time"

	"squirrel/internal/checker"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/vdp"
)

// E4Figure2 reproduces Figure 2 / Remark 3.1 exactly: the six-step
// scenario that satisfies pseudo-consistency but not consistency,
// decided by exhaustive search over candidate reflect functions.
func E4Figure2(w io.Writer) error {
	sc, tbl := checker.Figure2Scenario()
	pseudo, err := sc.PseudoConsistent()
	if err != nil {
		return err
	}
	consistent, err := sc.Consistent()
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "E4 — Figure 2 / Remark 3.1: pseudo-consistency vs consistency",
		Header: []string{"property", "paper", "measured"},
	}
	t.Add("pseudo-consistent", "yes", yesNo(pseudo))
	t.Add("consistent", "no", yesNo(consistent))
	t.Notes = append(t.Notes, "scenario (single source DB, view S = π₂(R)):")
	for _, line := range splitLines(tbl) {
		t.Notes = append(t.Notes, line)
	}
	t.Print(w)
	if !pseudo || consistent {
		return fmt.Errorf("E4: verdicts do not match the paper (pseudo=%v consistent=%v)", pseudo, consistent)
	}
	return nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// figure4Plan assembles the Figure 4 / Example 5.1 VDP over four sources:
// E = π(A ⋈_{a1²+a2<b2²} B), G = π_{a1,b1}E − F with F = π(C ⋈_{c2=d2} D),
// annotated per the paper's suggestion (E hybrid, B' and F virtual).
func figure4Plan() (*vdp.Builder, map[string]*relation.Schema) {
	schemas := map[string]*relation.Schema{
		"A": relation.MustSchema("A", []relation.Attribute{
			{Name: "a1", Type: relation.KindInt}, {Name: "a2", Type: relation.KindInt}}, "a1"),
		"B": relation.MustSchema("B", []relation.Attribute{
			{Name: "b1", Type: relation.KindInt}, {Name: "b2", Type: relation.KindInt}}, "b1"),
		"C": relation.MustSchema("C", []relation.Attribute{
			{Name: "c1", Type: relation.KindInt}, {Name: "c2", Type: relation.KindInt}}, "c1"),
		"D": relation.MustSchema("D", []relation.Attribute{
			{Name: "d1", Type: relation.KindInt}, {Name: "d2", Type: relation.KindInt}}, "d1"),
	}
	b := vdp.NewBuilder()
	for name, src := range map[string]string{"A": "dbA", "B": "dbB", "C": "dbC", "D": "dbD"} {
		if err := b.AddSource(src, schemas[name]); err != nil {
			panic(err)
		}
	}
	if err := b.AddViewSQL("E", `SELECT a1, a2, b1 FROM A JOIN B ON a1*a1 + a2 < b2*b2`); err != nil {
		panic(err)
	}
	if err := b.AddViewSQL("G", `SELECT a1, b1 FROM E EXCEPT SELECT c1, d1 FROM C JOIN D ON c2 = d2`); err != nil {
		panic(err)
	}
	b.Annotate("E", vdp.Ann([]string{"a1", "b1"}, []string{"a2"}))
	b.Annotate("B'", vdp.AllVirtual(relation.MustSchema("B'", []relation.Attribute{
		{Name: "b1", Type: relation.KindInt}, {Name: "b2", Type: relation.KindInt}}, "b1")))
	b.Annotate("G_r", vdp.Ann(nil, []string{"c1", "d1"}))
	return b, schemas
}

// E5Figure4 reproduces Example 5.1 / Figure 4 as a measured experiment:
// the hybrid two-export plan maintained under churn on all four sources,
// checked against recomputation, with the per-side maintenance costs the
// paper's annotation reasoning predicts (A/B-side updates are expensive —
// the θ-join — while C/D-side updates only touch the cheap difference).
func E5Figure4(w io.Writer) error {
	t := &Table{
		Title:  "E5 — Example 5.1 / Figure 4: hybrid two-export plan with a difference node",
		Header: []string{"churn side", "txns", "µs/txn", "polls", "G==recompute", "E(store)==recompute"},
		Notes: []string{
			"E hybrid [a1^m,a2^v,b1^m]; B' and F virtual; A/B updates exercise the θ-join",
		},
	}
	for _, side := range []string{"A/B", "C/D"} {
		bld, schemas := figure4Plan()
		_ = schemas
		sys, err := buildFigure4System(bld, 400)
		if err != nil {
			return err
		}
		pollsBefore := sys.med.Stats().SourcePolls
		const txns = 30
		start := time.Now()
		rng := newRng(9)
		for i := 0; i < txns; i++ {
			d := delta.New()
			if side == "A/B" {
				if i%2 == 0 {
					d.Insert("A", relation.T(int64(1000+i), int64(rng.Intn(40))))
					sys.dbs["dbA"].MustApply(d)
				} else {
					d.Insert("B", relation.T(int64(1000+i), int64(rng.Intn(40))))
					sys.dbs["dbB"].MustApply(d)
				}
			} else {
				if i%2 == 0 {
					d.Insert("C", relation.T(int64(1000+i), int64(rng.Intn(40))))
					sys.dbs["dbC"].MustApply(d)
				} else {
					d.Insert("D", relation.T(int64(1000+i), int64(rng.Intn(40))))
					sys.dbs["dbD"].MustApply(d)
				}
			}
			if _, err := sys.med.RunUpdateTransaction(); err != nil {
				return err
			}
		}
		perTxn := float64(time.Since(start).Microseconds()) / float64(txns)
		gOK, eOK, err := sys.checkAgainstRecompute()
		if err != nil {
			return err
		}
		t.Add(side, txns, perTxn, sys.med.Stats().SourcePolls-pollsBefore, gOK, eOK)
		if !gOK || !eOK {
			return fmt.Errorf("E5: divergence on %s churn", side)
		}
	}
	t.Print(w)
	return nil
}

// E6KernelVsNaive reproduces Example 6.1: the missed ΔR'⋈ΔS' contribution.
// The kernel discipline stays exact under simultaneous multi-child
// updates; the naive all-old-state firing diverges.
func E6KernelVsNaive(w io.Writer) error {
	t := &Table{
		Title:  "E6 — Example 6.1: kernel processing discipline vs naive rule firing",
		Header: []string{"engine", "txns", "divergent txns", "missing rows (final)", "exact"},
		Notes: []string{
			"workload: every transaction inserts an R row and its unique matching S row",
			"naive = §5.2 rules fired against all-old states (no processing discipline)",
		},
	}
	// Build the paper VDP and two parallel stores: one maintained by the
	// kernel (via vdp.Propagate + discipline), one by naive firing.
	e, err := newEnv(46, 500, 250, annVariants()["materialized"])
	if err != nil {
		return err
	}
	plan := e.plan

	states := map[string]*relation.Relation{}
	r, _ := e.db1.Current("R")
	s, _ := e.db2.Current("S")
	all, err := plan.EvalAll(vdp.ResolverFromCatalog(map[string]*relation.Relation{"R": r, "S": s}))
	if err != nil {
		return err
	}
	naive := map[string]*relation.Relation{}
	kernel := map[string]*relation.Relation{}
	for name, rel := range all {
		naive[name] = rel.Clone()
		kernel[name] = rel.Clone()
	}
	_ = states

	const txns = 25
	divergentNaive, divergentKernel := 0, 0
	for i := 0; i < txns; i++ {
		// The adversarial pattern of Example 6.1: both new rows join ONLY
		// each other.
		joinKey := int64(90000 + i)
		d := delta.New()
		d.Insert("R", relation.T(int64(70000+i), joinKey, int64(i), 100))
		d.Insert("S", relation.T(joinKey, int64(i%7), int64(i%50)))

		if err := applyKernelStyle(plan, kernel, d, false); err != nil {
			return err
		}
		if err := applyKernelStyle(plan, naive, d, true); err != nil {
			return err
		}
		truth, err := plan.EvalAll(vdp.ResolverFromCatalog(map[string]*relation.Relation{
			"R": kernel["R"], "S": kernel["S"]}))
		if err != nil {
			return err
		}
		if !kernel["T"].Equal(truth["T"]) {
			divergentKernel++
		}
		if !naive["T"].Equal(truth["T"]) {
			divergentNaive++
		}
	}
	missing := 0
	truth, err := plan.EvalAll(vdp.ResolverFromCatalog(map[string]*relation.Relation{
		"R": kernel["R"], "S": kernel["S"]}))
	if err != nil {
		return err
	}
	truth["T"].Each(func(tp relation.Tuple, c int) bool {
		missing += c - naive["T"].Count(tp)
		return true
	})
	t.Add("kernel (§6.4)", txns, divergentKernel, 0, divergentKernel == 0)
	t.Add("naive (all-old)", txns, divergentNaive, missing, divergentNaive == 0)
	t.Print(w)
	if divergentKernel != 0 {
		return fmt.Errorf("E6: the kernel must be exact")
	}
	if divergentNaive == 0 {
		return fmt.Errorf("E6: the naive engine should diverge on this workload")
	}
	return nil
}

// applyKernelStyle processes one multi-relation source delta against a
// full catalog of materialized states, using either the disciplined
// kernel (naive=false) or all-old-state firing (naive=true).
func applyKernelStyle(plan *vdp.VDP, stores map[string]*relation.Relation, d *delta.Delta, naive bool) error {
	var frozen map[string]*relation.Relation
	if naive {
		frozen = make(map[string]*relation.Relation, len(stores))
		for k, rel := range stores {
			frozen[k] = rel.Clone()
		}
	}
	resolveLive := vdp.ResolverFromCatalog(stores)
	resolveFrozen := vdp.ResolverFromCatalog(frozen)
	pending := map[string]*delta.RelDelta{}
	for _, name := range plan.Order() {
		n := plan.Node(name)
		var dn *delta.RelDelta
		if n.IsLeaf() {
			dn = d.Get(name)
		} else {
			dn = pending[name]
		}
		if dn == nil || dn.IsEmpty() {
			continue
		}
		for _, parent := range plan.Parents(name) {
			var contrib *delta.RelDelta
			var err error
			if naive {
				contrib, err = plan.PropagateNaive(parent, name, dn, resolveFrozen)
			} else {
				contrib, err = plan.Propagate(parent, name, dn, resolveLive)
			}
			if err != nil {
				return err
			}
			if acc, ok := pending[parent]; ok {
				acc.Smash(contrib)
			} else {
				pending[parent] = contrib
			}
		}
		if err := dn.ApplyTo(stores[name], false); err != nil {
			return err
		}
	}
	return nil
}
