package experiments

import (
	"fmt"
	"io"
	"time"

	"squirrel/internal/core"
)

// E1MaterializedMaintenance reproduces Example 2.1 / Figure 1 as a
// measured table: a fully materialized VDP maintained by incremental
// update propagation, against the from-scratch recomputation baseline.
// Expected shape: incremental cost is roughly flat in |R|+|S| while
// recomputation grows with it; no source polls ever happen.
func E1MaterializedMaintenance(w io.Writer) error {
	t := &Table{
		Title:  "E1 — Example 2.1 / Figure 1: fully materialized support",
		Header: []string{"|R|", "|S|", "txns", "atoms", "incr/txn", "recompute", "speedup", "polls"},
		Notes: []string{
			"incr/txn: mean wall time of one update transaction (batch of 8 source ops)",
			"recompute: wall time of one from-scratch evaluation of the whole VDP",
			"polls: source round trips after initialization (0 = fully materialized support)",
		},
	}
	for _, n := range []int{1000, 4000, 16000} {
		e, err := newEnv(42, n, n/2, annVariants()["materialized"])
		if err != nil {
			return err
		}
		pollsBefore := e.med.Stats().SourcePolls
		const txns = 40
		start := time.Now()
		for i := 0; i < txns; i++ {
			if i%2 == 0 {
				if err := e.commitR(8); err != nil {
					return err
				}
			} else {
				if err := e.commitS(8); err != nil {
					return err
				}
			}
			if _, err := e.med.RunUpdateTransaction(); err != nil {
				return err
			}
		}
		incr := time.Since(start) / txns

		rs := time.Now()
		truth, err := e.groundTruthT()
		if err != nil {
			return err
		}
		recompute := time.Since(rs)
		if st := e.med.StoreSnapshot("T"); !st.Equal(truth) {
			return fmt.Errorf("E1: incremental state diverged from recompute at n=%d", n)
		}
		st := e.med.Stats()
		speedup := float64(recompute) / float64(incr)
		t.Add(n, n/2, txns, st.AtomsPropagated, incr, recompute, speedup, st.SourcePolls-pollsBefore)
	}
	t.Print(w)
	return nil
}

// E2VirtualAuxiliary reproduces Example 2.2: the auxiliary R' kept
// virtual. Sweeping the share of transactions that touch R (the paper's
// premise: R changes frequently, S rarely), the table shows ΔR
// transactions cost no polls while ΔS transactions each poll db1 —
// so keeping R' virtual is nearly free when P(ΔR) is high.
func E2VirtualAuxiliary(w io.Writer) error {
	t := &Table{
		Title:  "E2 — Example 2.2: virtual auxiliary relation R'",
		Header: []string{"config", "P(ΔR)", "txns", "polls", "polls/ΔS-txn", "tuplesPolled", "T==recompute"},
		Notes: []string{
			"with R' virtual, rule #1 (ΔT = ΔR'⋈S') needs no polling; rule #2 (ΔT = R'⋈ΔS') polls db1",
			"the fully materialized config never polls, at the cost of maintaining R' locally",
		},
	}
	for _, cfg := range []string{"materialized", "virtual-aux"} {
		ann := annVariants()[cfg]
		if cfg == "virtual-aux" {
			// Example 2.2 keeps S' materialized; only R' virtual.
			ann.sp = nil
		}
		for _, pR := range []float64{0.50, 0.90, 0.99} {
			e, err := newEnv(43, 4000, 2000, ann)
			if err != nil {
				return err
			}
			pollsBefore := e.med.Stats().SourcePolls
			const txns = 100
			sTxns := 0
			rng := newRng(7)
			for i := 0; i < txns; i++ {
				if rng.Float64() < pR {
					if err := e.commitR(4); err != nil {
						return err
					}
				} else {
					sTxns++
					if err := e.commitS(4); err != nil {
						return err
					}
				}
				if _, err := e.med.RunUpdateTransaction(); err != nil {
					return err
				}
			}
			st := e.med.Stats()
			polls := st.SourcePolls - pollsBefore
			perS := 0.0
			if sTxns > 0 {
				perS = float64(polls) / float64(sTxns)
			}
			truth, err := e.groundTruthT()
			if err != nil {
				return err
			}
			ok := e.med.StoreSnapshot("T").Equal(truth)
			t.Add(cfg, pR, txns, polls, perS, st.TuplesPolled, ok)
			if !ok {
				return fmt.Errorf("E2: divergence in config %s", cfg)
			}
		}
	}
	t.Print(w)
	return nil
}

// E3HybridQueries reproduces Example 2.3: the hybrid export
// T[r1^m, r3^v, s1^m, s2^v] under query mixes that rarely touch virtual
// attributes, and the standard vs key-based construction comparison. The
// shape to observe: hot queries are poll-free and fast regardless of the
// cold-query machinery; cold queries pay polling; key-based construction
// halves the sources polled for the Example 2.3 query.
func E3HybridQueries(w io.Writer) error {
	t := &Table{
		Title:  "E3 — Example 2.3: hybrid export and key-based temporaries",
		Header: []string{"mix(hot:cold)", "construction", "queries", "polls", "µs/hot-query", "µs/cold-query", "answers ok"},
		Notes: []string{
			"hot = π_{r1,s1}; cold = π_{r3,s1}σ_{r3<100} (touches virtual r3)",
			"key-based: T_tmp from store(T) ⋈ R' via key r1 — one source instead of two",
		},
	}
	mixes := []struct {
		name   string
		hot    int // hot queries per cold query
		rounds int
	}{{"1:1", 1, 30}, {"9:1", 9, 12}, {"99:1", 99, 3}}
	for _, mix := range mixes {
		for _, mode := range []struct {
			name string
			kb   core.KeyBasedMode
		}{{"standard", core.KeyBasedOff}, {"key-based", core.KeyBasedForce}} {
			e, err := newEnv(44, 4000, 2000, annVariants()["hybrid"])
			if err != nil {
				return err
			}
			pollsBefore := e.med.Stats().SourcePolls
			truth, err := e.groundTruthT()
			if err != nil {
				return err
			}
			wantHot, err := projectTruth(truth, []string{"r1", "s1"}, nil)
			if err != nil {
				return err
			}
			wantCold, err := projectTruth(truth, []string{"r3", "s1"}, condR3())
			if err != nil {
				return err
			}
			var hotTime, coldTime time.Duration
			hotCount, coldCount := 0, 0
			ok := true
			for i := 0; i < mix.rounds; i++ {
				for h := 0; h < mix.hot; h++ {
					start := time.Now()
					res, err := e.med.QueryOpts("T", []string{"r1", "s1"}, nil,
						core.QueryOptions{KeyBased: mode.kb})
					if err != nil {
						return err
					}
					hotTime += time.Since(start)
					hotCount++
					ok = ok && res.Answer.Equal(wantHot)
				}
				start := time.Now()
				res, err := e.med.QueryOpts("T", []string{"r3", "s1"}, condR3(),
					core.QueryOptions{KeyBased: mode.kb})
				if err != nil {
					return err
				}
				coldTime += time.Since(start)
				coldCount++
				ok = ok && res.Answer.Equal(wantCold)
			}
			st := e.med.Stats()
			t.Add(mix.name, mode.name, hotCount+coldCount, st.SourcePolls-pollsBefore,
				float64(hotTime.Microseconds())/float64(hotCount),
				float64(coldTime.Microseconds())/float64(coldCount), ok)
			if !ok {
				return fmt.Errorf("E3: wrong answers in mix %s mode %s", mix.name, mode.name)
			}
		}
	}
	t.Print(w)
	return nil
}
