package experiments

import (
	"fmt"
	"io"
	"time"

	"squirrel/internal/algebra"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// E12BatchingAblation measures the design choice behind the paper's
// update-transaction model (§6.1/§6.4): the IUP smashes the ENTIRE queue
// into one delta per transaction. Against a churn-heavy stream (the same
// rows flip back and forth), batching lets smash annihilate atoms before
// they are propagated; per-commit processing propagates every atom.
func E12BatchingAblation(w io.Writer) error {
	t := &Table{
		Title:  "E12 — ablation: per-commit vs batched update transactions (smash annihilation)",
		Header: []string{"policy", "commits", "txns", "atoms propagated", "total time", "T==recompute"},
		Notes: []string{
			"workload: 100 commits; 80% flip a hot row (insert/delete the same tuples)",
			"batched = one transaction per 25 commits (smash cancels flips before propagation)",
		},
	}
	for _, policy := range []struct {
		name  string
		every int
	}{{"per-commit", 1}, {"batch-25", 25}, {"batch-100", 100}} {
		e, err := newEnv(58, 2000, 1000, annVariants()["materialized"])
		if err != nil {
			return err
		}
		base := e.med.Stats()
		const commits = 100
		hot := relation.T(int64(999999), int64(10), int64(1), int64(100))
		present := false
		start := time.Now()
		for i := 0; i < commits; i++ {
			d := delta.New()
			if i%5 == 4 {
				// 20%: genuine new data.
				d.Insert("R", relation.T(int64(500000+i), int64(20), int64(i), int64(100)))
			} else {
				// 80%: flip the hot row.
				if present {
					d.Delete("R", hot)
				} else {
					d.Insert("R", hot)
				}
				present = !present
			}
			if _, err := e.db1.Apply(d); err != nil {
				return err
			}
			if (i+1)%policy.every == 0 {
				if _, err := e.med.RunUpdateTransaction(); err != nil {
					return err
				}
			}
		}
		if err := e.sync(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		st := e.med.Stats()
		truth, err := e.groundTruthT()
		if err != nil {
			return err
		}
		ok := e.med.StoreSnapshot("T").Equal(truth)
		t.Add(policy.name, commits, st.UpdateTxns-base.UpdateTxns,
			st.AtomsPropagated-base.AtomsPropagated, elapsed, ok)
		if !ok {
			return fmt.Errorf("E12: divergence under policy %s", policy.name)
		}
	}
	t.Print(w)
	return nil
}

// E13JoinStrategyAblation measures the §5.3 remark that joins without a
// usable index are expensive: the same equi-join evaluated three ways —
// nested loop (condition hidden from the extractor), transient hash
// build, and a persistent index probe.
func E13JoinStrategyAblation(w io.Writer) error {
	t := &Table{
		Title:  "E13 — ablation: join strategies (§5.3: \"whether indices can be used\")",
		Header: []string{"|L|", "|R|", "strategy", "µs/join", "result rows"},
	}
	ls := relation.MustSchema("L", []relation.Attribute{
		{Name: "lk", Type: relation.KindInt}, {Name: "lv", Type: relation.KindInt}})
	rs := relation.MustSchema("Rr", []relation.Attribute{
		{Name: "rk", Type: relation.KindInt}, {Name: "rv", Type: relation.KindInt}})
	for _, n := range []int{500, 2000} {
		rng := newRng(int64(n))
		l := relation.NewBag(ls)
		rPlain := relation.NewBag(rs)
		rIndexed := relation.NewBag(rs)
		if err := rIndexed.BuildIndex("rk"); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			l.Add(relation.T(rng.Intn(n), rng.Intn(10)), 1)
			tr := relation.T(rng.Intn(n), rng.Intn(10))
			rPlain.Add(tr, 1)
			rIndexed.Add(tr, 1)
		}
		hashCond := algebra.Eq(algebra.A("lk"), algebra.A("rk"))
		// Hiding the equality inside arithmetic defeats extraction →
		// nested loop with residual evaluation.
		nlCond := algebra.Eq(algebra.Add(algebra.A("lk"), algebra.CInt(0)), algebra.A("rk"))

		cases := []struct {
			name string
			r    *relation.Relation
			cond algebra.Expr
			reps int
		}{
			{"nested-loop", rPlain, nlCond, 3},
			{"hash-build", rPlain, hashCond, 10},
			{"index-probe", rIndexed, hashCond, 10},
		}
		var want *relation.Relation
		for _, c := range cases {
			var rows int
			start := time.Now()
			for rep := 0; rep < c.reps; rep++ {
				out, err := algebra.EvalJoin(l, c.r, c.cond, "J")
				if err != nil {
					return err
				}
				rows = out.Card()
				if want == nil {
					want = out
				} else if !out.Equal(want) {
					return fmt.Errorf("E13: %s produced different results", c.name)
				}
			}
			perJoin := float64(time.Since(start).Microseconds()) / float64(c.reps)
			t.Add(n, n, c.name, perJoin, rows)
		}
	}
	t.Print(w)
	return nil
}
