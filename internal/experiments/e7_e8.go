package experiments

import (
	"fmt"
	"io"

	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/sim"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
)

// E7ConsistencySoak is the executable content of Theorem 7.1: randomized
// interleavings of source commits, update transactions, and queries are
// driven through every annotation configuration; the trace checker then
// verifies validity, chronology, and order preservation of the ref
// function for every recorded transaction.
func E7ConsistencySoak(w io.Writer) error {
	t := &Table{
		Title:  "E7 — Theorem 7.1: consistency of Squirrel mediators (randomized soak)",
		Header: []string{"config", "runs", "query txns", "update txns", "consistent"},
	}
	for _, cfg := range []string{"materialized", "virtual-aux", "hybrid", "hybrid-mat-aux", "virtual"} {
		runs := 6
		totalQ, totalU := 0, 0
		allOK := true
		for seed := int64(0); seed < int64(runs); seed++ {
			e, err := newEnv(100+seed, 300, 150, annVariants()[cfg])
			if err != nil {
				return err
			}
			rng := newRng(seed * 7)
			for step := 0; step < 40; step++ {
				switch op := rng.Intn(10); {
				case op < 4:
					if rng.Intn(2) == 0 {
						if err := e.commitR(3); err != nil {
							return err
						}
					} else if err := e.commitS(3); err != nil {
						return err
					}
				case op < 7:
					if _, err := e.med.RunUpdateTransaction(); err != nil {
						return err
					}
				default:
					attrs := [][]string{{"r1", "s1"}, {"r3", "s1"}, nil}[rng.Intn(3)]
					mode := []core.KeyBasedMode{core.KeyBasedAuto, core.KeyBasedOff, core.KeyBasedForce}[rng.Intn(3)]
					if _, err := e.med.QueryOpts("T", attrs, nil, core.QueryOptions{KeyBased: mode}); err != nil {
						return err
					}
				}
			}
			env := checker.Environment{
				VDP:     e.plan,
				Sources: map[string]*source.DB{"db1": e.db1, "db2": e.db2},
				Trace:   e.rec,
			}
			if err := env.CheckConsistency(); err != nil {
				allOK = false
				t.Notes = append(t.Notes, fmt.Sprintf("%s seed %d: %v", cfg, seed, err))
			}
			u, q := e.rec.Len()
			totalQ += q
			totalU += u
		}
		t.Add(cfg, runs, totalQ, totalU, allOK)
		if !allOK {
			t.Print(w)
			return fmt.Errorf("E7: consistency violated in config %s", cfg)
		}
	}
	t.Print(w)
	return nil
}

// E8Freshness is the executable content of Theorem 7.2: under the
// discrete-event simulation with explicit announcement, communication,
// hold, and processing delays, the measured worst-case staleness at query
// time stays within the computed bound vector f̄ — swept across delay
// regimes.
func E8Freshness(w io.Writer) error {
	t := &Table{
		Title:  "E8 — Theorem 7.2: guaranteed freshness under bounded delays",
		Header: []string{"ann(db2)", "u_hold", "worst(db1)", "bound(db1)", "worst(db2)", "bound(db2)", "within"},
		Notes: []string{
			"virtual ticks; db1: ann=100 comm=20; db2: comm=50; horizon 60k ticks",
			"bound f̄ per the Theorem 7.2 delay vocabulary (see sim.Delays.Bounds)",
		},
	}
	for _, ann2 := range []clock.Time{100, 500, 2000} {
		for _, hold := range []clock.Time{500, 2000} {
			plan, err := e8Plan()
			if err != nil {
				return err
			}
			d := sim.Delays{
				Ann:         map[string]clock.Time{"db1": 100, "db2": ann2},
				Comm:        map[string]clock.Time{"db1": 20, "db2": 50},
				QProcSource: map[string]clock.Time{"db1": 10, "db2": 15},
				UHold:       hold,
				UProc:       50,
				QProcMed:    5,
			}
			h, err := sim.NewHarness(plan, nil, d)
			if err != nil {
				return err
			}
			h.Sim.Horizon = 60000
			next := int64(0)
			for tt := clock.Time(137); tt < 60000; tt += 713 {
				h.ScheduleCommit(tt, "db1", func() *delta.Delta {
					next++
					dd := delta.New()
					dd.Insert("R", relation.T(next, 10*(1+next%4), next%50, 100))
					return dd
				})
			}
			for tt := clock.Time(401); tt < 60000; tt += 977 {
				tt := tt
				h.ScheduleCommit(tt, "db2", func() *delta.Delta {
					next++
					dd := delta.New()
					dd.Insert("S", relation.T(10*(1+next%4), next%9, int64(tt)%60))
					return dd
				})
			}
			for tt := clock.Time(550); tt < 60000; tt += 803 {
				h.ScheduleQuery(tt, "T", nil)
			}
			h.Sim.Run()

			env := h.Environment()
			if err := env.CheckConsistency(); err != nil {
				return fmt.Errorf("E8: simulated run inconsistent: %w", err)
			}
			bounds := d.Bounds(h.Med, plan.Sources())
			worst, err := env.CheckFreshness(bounds)
			within := err == nil
			t.Add(ann2, hold, worst["db1"], bounds["db1"], worst["db2"], bounds["db2"], within)
			if !within {
				t.Print(w)
				return fmt.Errorf("E8: freshness bound violated: %v", err)
			}
		}
	}
	t.Print(w)
	return nil
}

func e8Plan() (*vdp.VDP, error) {
	rSchema, sSchema := paperSchemas()
	b := vdp.NewBuilder()
	if err := b.AddSource("db1", rSchema); err != nil {
		return nil, err
	}
	if err := b.AddSource("db2", sSchema); err != nil {
		return nil, err
	}
	if err := b.AddViewSQL("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`); err != nil {
		return nil, err
	}
	return b.Build()
}
