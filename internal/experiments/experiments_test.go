package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// Each experiment must run to completion and self-validate (every runner
// returns an error if its correctness column fails). These are the shape
// checks for the reproduction tables.
func TestExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; run without -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Registry[id](&buf); err != nil {
				t.Fatalf("%s: %v\n%s", id, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"—") && !strings.Contains(out, id+" —") {
				t.Errorf("%s: output lacks experiment header:\n%s", id, out)
			}
		})
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() incomplete: %v", ids)
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E22" {
		t.Errorf("ordering: %v", ids)
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Notes:  []string{"a note"},
	}
	tab.Add("x", 3.14159)
	tab.Add(42, "y")
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"## demo", "long-column", "3.14", "42", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// RunAll stops at the first failure; discard output.
	if err := RunAll(io.Discard); err != nil {
		t.Fatal(err)
	}
}
