// Package federate adapts a mediator's fully materialized exports into
// the autonomous-source contract of §4, so an upstream mediator can list
// a downstream mediator in its VDP like any wrapper and mediators compose
// into trees (the paper's Figure 4 read literally; DESIGN.md §11).
//
// The Exporter is an export-as-source adapter: it observes the
// downstream mediator's commit feed (core.CommitFeed) and re-announces
// every committed update transaction as one source announcement whose
// sequence number IS the published store version's sequence number.
// Update-transaction commits publish consecutive versions, so the
// announced stream is dense and the consuming mediator's standard gap
// detection applies unchanged. A barrier publish (a source resync or a
// re-annotation downstream) consumes a sequence number without a
// trustworthy delta; the Exporter announces it with Announcement.Barrier
// set, which quarantines the stream upstream and forces a snapshot
// resync — and even a consumer that misses the barrier message detects
// the sequence hole at the next commit.
//
// Every announcement and every query answer carries the downstream
// version's ref′ vector in base-source coordinates
// (Announcement.Reflect / QueryMultiBase), which is what lets the
// upstream mediator express its own answers' validity vectors in base
// coordinates (core.QueryResult.BaseReflect) and Theorem 7.1/7.2
// statements survive the hop.
package federate

import (
	"fmt"
	"sort"
	"sync"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/store"
)

// Exporter serves a mediator's fully materialized exports as one
// autonomous source: each export is a relation, announcements follow
// commits, and snapshot queries answer from the last announced version.
//
// Concurrency: all methods are safe for concurrent use. One mutex
// serializes announcement emission (driven by the downstream commit
// path) against query answers, preserving the §6.3 message-ordering
// contract — an answer reflecting version v is produced after v's
// announcement. Handlers registered with Subscribe run synchronously
// inside the downstream mediator's commit, so they must enqueue and
// return, and must not call back into the downstream mediator.
type Exporter struct {
	med     *core.Mediator
	name    string
	exports []string
	schemas map[string]*relation.Schema

	mu       sync.Mutex
	handlers []source.Handler
	cur      *store.Version // last version fed (announced or barriered)
}

// New builds an export-as-source adapter named name over med's fully
// materialized exports and installs it as med's commit feed. Hybrid and
// virtual exports are not served: only a fully materialized export's
// delta stream reconstructs the export exactly (the same eligibility
// rule the subscription registry applies). Errors if no export
// qualifies.
//
// Call New after the downstream mediator is constructed; it may be
// before or after Initialize. Re-annotating an exported relation away
// from full materialization afterwards breaks upstream consumers — the
// barrier quarantines them, and their resync polls fail until the
// annotation is restored (see the DESIGN.md §11 failure matrix).
func New(med *core.Mediator, name string) (*Exporter, error) {
	if name == "" {
		return nil, fmt.Errorf("federate: exporter needs a non-empty source name")
	}
	plan := med.VDP()
	x := &Exporter{med: med, name: name, schemas: map[string]*relation.Schema{}}
	for _, e := range plan.Exports() {
		n := plan.Node(e)
		if !n.FullyMaterialized() {
			continue
		}
		x.exports = append(x.exports, e)
		x.schemas[e] = n.Schema
	}
	sort.Strings(x.exports)
	if len(x.exports) == 0 {
		return nil, fmt.Errorf("federate: mediator has no fully materialized export to serve")
	}
	med.SetCommitFeed(x)
	return x, nil
}

// Name returns the adapter's source name (what upstream VDPs bind as the
// source of its relations).
func (x *Exporter) Name() string { return x.name }

// Relations lists the served export relations, sorted.
func (x *Exporter) Relations() []string {
	out := make([]string, len(x.exports))
	copy(out, x.exports)
	return out
}

// Schema returns an export's full relation schema.
func (x *Exporter) Schema(rel string) (*relation.Schema, error) {
	s, ok := x.schemas[rel]
	if !ok {
		return nil, fmt.Errorf("federate: %s serves no relation %q", x.name, rel)
	}
	return s, nil
}

// Subscribe registers a handler for future announcements. Handlers run
// synchronously inside the downstream mediator's commit, in commit
// order; they must be fast and must not call back into the mediator.
func (x *Exporter) Subscribe(h source.Handler) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.handlers = append(x.handlers, h)
}

// Apply rejects writes: a federated tier is read-only from above —
// updates enter the tree at the base sources.
func (x *Exporter) Apply(*delta.Delta) (clock.Time, error) {
	return 0, fmt.Errorf("federate: %s is a mediator export face; it accepts no writes", x.name)
}

// QueryMulti answers several snapshot reads atomically from the last fed
// version (§6.3's single-transaction packaging). The returned time is
// the version's commit stamp on the downstream mediator's clock: the
// answers are exactly the tier's published state at that instant.
func (x *Exporter) QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error) {
	out, asOf, _, err := x.QueryMultiBase(specs)
	return out, asOf, err
}

// QueryMultiBase is QueryMulti plus the answered version's ref′ vector
// in base-source coordinates (core.TieredConn). Safe for concurrent use;
// serialized with announcement emission so an answer reflecting a
// version is always produced after that version's announcement.
func (x *Exporter) QueryMultiBase(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, clock.Vector, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	v := x.cur
	if v == nil {
		// No commit fed yet: serve the downstream mediator's current
		// version (the adapter may be built after the mediator
		// initialized or restored).
		v = x.med.CurrentVersion()
		x.cur = v
	}
	if v == nil {
		return nil, 0, nil, fmt.Errorf("federate: %s: downstream mediator not initialized", x.name)
	}
	out := make([]*relation.Relation, len(specs))
	for i, spec := range specs {
		if _, ok := x.schemas[spec.Rel]; !ok {
			return nil, 0, nil, fmt.Errorf("federate: %s serves no relation %q", x.name, spec.Rel)
		}
		rel := v.Rel(spec.Rel)
		if rel == nil {
			return nil, 0, nil, fmt.Errorf("federate: %s: export %q has no materialized state", x.name, spec.Rel)
		}
		ans, err := source.EvalSpec(rel, spec)
		if err != nil {
			return nil, 0, nil, err
		}
		out[i] = ans
	}
	return out, v.Stamp(), v.Reflect(), nil
}

// FeedCommit implements core.CommitFeed: announce one committed update
// transaction, sequence number = the published version's sequence
// number. Empty transactions are announced too — sequence density is
// what makes upstream gap detection sound.
func (x *Exporter) FeedCommit(v *store.Version, deltas map[string]*delta.RelDelta) {
	x.mu.Lock()
	defer x.mu.Unlock()
	d := delta.New()
	for _, e := range x.exports {
		if rd := deltas[e]; rd != nil && !rd.IsEmpty() {
			d.Put(rd.Clone())
		}
	}
	x.cur = v
	x.emitLocked(source.Announcement{
		Source: x.name, Time: v.Stamp(), Delta: d,
		Seq: v.Seq(), FirstSeq: v.Seq(), Reflect: v.Reflect(),
	})
}

// FeedBarrier implements core.CommitFeed: announce a publish whose state
// was not produced by a delta (resync, re-annotation). The announcement
// carries no delta and sets Barrier, quarantining consumers into a
// snapshot resync; subsequent QueryMulti answers serve the post-barrier
// state.
func (x *Exporter) FeedBarrier(reason string, v *store.Version) {
	if v == nil {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.cur = v
	x.emitLocked(source.Announcement{
		Source: x.name, Time: v.Stamp(),
		Seq: v.Seq(), FirstSeq: v.Seq(), Reflect: v.Reflect(),
		Barrier: reason,
	})
}

// emitLocked fans one announcement out to every handler. Requires mu.
func (x *Exporter) emitLocked(a source.Announcement) {
	for _, h := range x.handlers {
		h(a)
	}
}
