package federate

import (
	"sync"
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
	"squirrel/internal/wal"
)

// The two-tier differential oracle (ISSUE acceptance criterion): a chain
//
//	db1, db2 → medA (VR, VS fully materialized) → top (T over VR ⋈ VS)
//
// must produce, at equal Reflect vectors, answers byte-identical to one
// flat mediator computing VR, VS, T over db1, db2 directly. The chained
// answer's validity vector in base coordinates is QueryResult.BaseReflect;
// the flat answer's is its plain Reflect.

const (
	oracleVR = `SELECT r1, r2 FROM R WHERE r3 < 100`
	oracleVS = `SELECT s1, s2 FROM S WHERE s3 < 50`
	oracleT  = `SELECT r1, s2 FROM VR JOIN VS ON r2 = s1`
)

func oracleSchemaR() *relation.Schema {
	return relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
}

func oracleSchemaS() *relation.Schema {
	return relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt},
		{Name: "s3", Type: relation.KindInt}}, "s1")
}

// oracleEnv is one world: a shared logical clock and two base sources that
// outlive any mediator crash.
type oracleEnv struct {
	clk *clock.Logical
	db1 *source.DB
	db2 *source.DB
	n   int
}

func newOracleEnv(t testing.TB) *oracleEnv {
	t.Helper()
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	if err := db1.CreateRelation(oracleSchemaR(), relation.Set); err != nil {
		t.Fatal(err)
	}
	db2 := source.NewDB("db2", clk)
	if err := db2.CreateRelation(oracleSchemaS(), relation.Set); err != nil {
		t.Fatal(err)
	}
	return &oracleEnv{clk: clk, db1: db1, db2: db2}
}

// commitOne applies the next scripted leaf transaction: R rows join S rows
// on r2 = s1 over a small shared key space so the join is non-trivial, and
// every third row violates a tier selection so projected-away churn is
// exercised too.
func (e *oracleEnv) commitOne(t testing.TB) {
	t.Helper()
	e.n++
	d := delta.New()
	if e.n%2 == 0 {
		s3 := int64(e.n % 40)
		if e.n%6 == 0 {
			s3 = 90 // filtered by VS
		}
		d.Insert("S", relation.T(int64(e.n%8), int64(5000+e.n), s3))
		e.db2.MustApply(d)
		return
	}
	r3 := int64(e.n % 70)
	if e.n%9 == 0 {
		r3 = 150 // filtered by VR
	}
	d.Insert("R", relation.T(int64(1000+e.n), int64(e.n%8), r3))
	e.db1.MustApply(d)
}

// newTierA builds the downstream mediator (VR, VS over the base sources)
// with the staged kernel. Announcement feeds are NOT connected — a
// recovering mediator must replay with an empty queue, same discipline as
// the wal package tests.
func (e *oracleEnv) newTierA(t testing.TB) *core.Mediator {
	t.Helper()
	b := vdp.NewBuilder()
	if err := b.AddSource("db1", oracleSchemaR()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSource("db2", oracleSchemaS()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("VR", oracleVR); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("VS", oracleVS); err != nil {
		t.Fatal(err)
	}
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	med, err := core.New(core.Config{VDP: plan,
		Sources: map[string]core.SourceConn{
			"db1": core.LocalSource{DB: e.db1},
			"db2": core.LocalSource{DB: e.db2},
		},
		Clock: e.clk, PropagateWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

func (e *oracleEnv) connectTierA(med *core.Mediator) {
	core.ConnectLocal(med, e.db1)
	core.ConnectLocal(med, e.db2)
}

// newFlat builds the flat oracle mediator: same VR, VS plus T over them,
// directly over the base sources, staged kernel.
func (e *oracleEnv) newFlat(t testing.TB) *core.Mediator {
	t.Helper()
	b := vdp.NewBuilder()
	if err := b.AddSource("db1", oracleSchemaR()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSource("db2", oracleSchemaS()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("VR", oracleVR); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("VS", oracleVS); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("T", oracleT); err != nil {
		t.Fatal(err)
	}
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	med, err := core.New(core.Config{VDP: plan,
		Sources: map[string]core.SourceConn{
			"db1": core.LocalSource{DB: e.db1},
			"db2": core.LocalSource{DB: e.db2},
		},
		Clock: e.clk, PropagateWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	core.ConnectLocal(med, e.db1)
	core.ConnectLocal(med, e.db2)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	return med
}

// swapConn is the upstream mediator's connection to the middle tier: a
// SourceConn + TieredConn whose inner adapter can be swapped when the
// middle tier restarts (the wire client would reconnect; locally we swap).
type swapConn struct {
	mu    sync.Mutex
	inner *Exporter
}

func (c *swapConn) get() *Exporter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner
}

func (c *swapConn) set(x *Exporter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner = x
}

func (c *swapConn) Name() string { return c.get().Name() }

func (c *swapConn) QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error) {
	return c.get().QueryMulti(specs)
}

func (c *swapConn) QueryMultiBase(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, clock.Vector, error) {
	return c.get().QueryMultiBase(specs)
}

// newTop builds the upstream mediator: the middle tier's exports are its
// only source, T joins them.
func newTop(t testing.TB, e *oracleEnv, conn *swapConn, x *Exporter) *core.Mediator {
	t.Helper()
	b := vdp.NewBuilder()
	for _, rel := range x.Relations() {
		s, err := x.Schema(rel)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddSource(x.Name(), s); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddViewSQL("T", oracleT); err != nil {
		t.Fatal(err)
	}
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	top, err := core.New(core.Config{VDP: plan,
		Sources: map[string]core.SourceConn{x.Name(): conn},
		Clock:   e.clk, PropagateWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func vecEqual(a, b clock.Vector) bool {
	return a.LessEq(b) && b.LessEq(a)
}

// compareTiers checks the oracle invariant after both worlds are fully
// drained: the answers are byte-identical, and — when wantVec — the
// chained answer's BaseReflect equals the flat answer's Reflect. Vector
// equality only holds once every base source's reflect component comes
// from a commit announcement both worlds processed; right after an
// initialize or a resync the components are fresh poll stamps of the same
// state, which differ on the shared clock, so those call sites pass
// wantVec=false and rely on the answer comparison alone.
func compareTiers(t *testing.T, flat, top *core.Mediator, where string, wantVec bool) {
	t.Helper()
	chained, err := top.QueryOpts("T", nil, nil, core.QueryOptions{})
	if err != nil {
		t.Fatalf("%s: chained query: %v", where, err)
	}
	ref, err := flat.QueryOpts("T", nil, nil, core.QueryOptions{})
	if err != nil {
		t.Fatalf("%s: flat query: %v", where, err)
	}
	if chained.BaseReflect == nil {
		t.Fatalf("%s: chained answer has no BaseReflect", where)
	}
	if wantVec && !vecEqual(chained.BaseReflect, ref.Reflect) {
		t.Fatalf("%s: vectors diverged without a pending delta:\nchained base %v\nflat %v",
			where, chained.BaseReflect, ref.Reflect)
	}
	got, want := chained.Answer.String(), ref.Answer.String()
	if got != want {
		t.Fatalf("%s: answers differ at equal Reflect %v:\nchained\n%s\nflat\n%s",
			where, ref.Reflect, got, want)
	}
}

// drainAll runs update transactions until every mediator in the chain and
// the flat oracle report nothing to do.
func drainAll(t *testing.T, meds ...*core.Mediator) {
	t.Helper()
	for {
		any := false
		for _, m := range meds {
			ran, err := m.RunUpdateTransaction()
			if err != nil {
				t.Fatal(err)
			}
			any = any || ran
		}
		if !any {
			return
		}
	}
}

// TestTwoTierOracle is the happy-path differential run: scripted leaf
// commits, both worlds drained after each batch, answers and vectors
// compared every round.
func TestTwoTierOracle(t *testing.T) {
	e := newOracleEnv(t)
	flat := e.newFlat(t)

	medA := e.newTierA(t)
	e.connectTierA(medA)
	x, err := New(medA, "medA")
	if err != nil {
		t.Fatal(err)
	}
	if err := medA.Initialize(); err != nil {
		t.Fatal(err)
	}
	conn := &swapConn{inner: x}
	top := newTop(t, e, conn, x)
	x.Subscribe(top.OnAnnouncement)
	if err := top.Initialize(); err != nil {
		t.Fatal(err)
	}
	compareTiers(t, flat, top, "initial", false)

	for round := 0; round < 8; round++ {
		for i := 0; i < 3; i++ {
			e.commitOne(t)
		}
		drainAll(t, medA, top, flat)
		compareTiers(t, flat, top, "round", true)
	}
}

// TestTwoTierOracleMidTierCrash kills the middle tier without warning
// mid-stream (WAL running, no Close), commits more leaf transactions while
// it is down, recovers it from the log into a fresh mediator, re-exports,
// and resyncs both hops. After convergence the chained world must again be
// byte-identical to the flat oracle that never stopped.
func TestTwoTierOracleMidTierCrash(t *testing.T) {
	dir := t.TempDir()
	e := newOracleEnv(t)
	flat := e.newFlat(t)

	medA := e.newTierA(t)
	e.connectTierA(medA)
	x, err := New(medA, "medA")
	if err != nil {
		t.Fatal(err)
	}
	if err := medA.Initialize(); err != nil {
		t.Fatal(err)
	}
	mgr, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncCommit, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(medA); err != nil {
		t.Fatal(err)
	}
	conn := &swapConn{inner: x}
	top := newTop(t, e, conn, x)
	x.Subscribe(top.OnAnnouncement)
	if err := top.Initialize(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 6; i++ {
		e.commitOne(t)
	}
	drainAll(t, medA, top, flat)
	compareTiers(t, flat, top, "pre-crash", true)

	// Power cut on the middle tier: no Close, no checkpoint. The base
	// sources and the flat oracle keep going while it is down.
	mgr.Kill()
	for i := 0; i < 4; i++ {
		e.commitOne(t)
	}
	drainAll(t, flat)

	// Recover the tier from its log into a fresh mediator, re-export,
	// reconnect announcements, and resync the base hops (the commits it
	// missed while down are a gap its log cannot fill).
	medA2 := e.newTierA(t)
	mgr2, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncCommit, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if has, err := mgr2.HasState(); err != nil || !has {
		t.Fatalf("HasState = %v, %v after crash", has, err)
	}
	info, err := mgr2.Recover(medA2)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornTail {
		t.Fatalf("unexpected torn tail: %+v", info)
	}
	defer mgr2.Kill()
	e.connectTierA(medA2)
	x2, err := New(medA2, "medA")
	if err != nil {
		t.Fatal(err)
	}
	x2.Subscribe(top.OnAnnouncement)
	conn.set(x2)
	for _, src := range []string{"db1", "db2"} {
		medA2.QuarantineSource(src, "tier restart")
		if err := medA2.ResyncSource(src); err != nil {
			t.Fatal(err)
		}
	}
	// The tier's resyncs published barriers, which the exporter announced
	// upstream: the top mediator must be quarantined on the tier now.
	if qs := top.QuarantinedSources(); len(qs) != 1 || qs[0] != "medA" {
		t.Fatalf("top quarantined %v, want [medA] after tier barriers", qs)
	}
	if err := top.ResyncSource("medA"); err != nil {
		t.Fatal(err)
	}
	drainAll(t, medA2, top, flat)
	compareTiers(t, flat, top, "post-recovery", false)

	// The chain is live again end to end: more leaf commits flow through
	// the recovered tier and the worlds stay identical.
	for round := 0; round < 4; round++ {
		for i := 0; i < 3; i++ {
			e.commitOne(t)
		}
		drainAll(t, medA2, top, flat)
		compareTiers(t, flat, top, "post-recovery round", true)
	}
}
