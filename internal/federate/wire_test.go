package federate

import (
	"testing"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/vdp"
	"squirrel/internal/wire"
)

// TestExporterOverWire runs the two-tier chain with a real TCP hop: the
// downstream mediator's exports are served by wire.NewBackendServer, the
// upstream mediator consumes them through wire.DialWith (which implements
// core.TieredConn), and announcements — commits and barriers — travel the
// wire. This is the deployment shape of the README walkthrough.
func TestExporterOverWire(t *testing.T) {
	clk := &clock.Logical{}
	db1, med, x := buildTier(t, clk)

	srv := wire.NewBackendServer(x)
	srv.Logf = t.Logf
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	cli, err := wire.DialWith(addr, wire.DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	if cli.Name() != "medA" {
		t.Fatalf("hello name = %q, want medA", cli.Name())
	}

	// The upstream plan is assembled from the wire catalog — no shared
	// schema definitions between the tiers.
	schemas, err := cli.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	ub := vdp.NewBuilder()
	for _, s := range schemas {
		if err := ub.AddSource("medA", s); err != nil {
			t.Fatal(err)
		}
	}
	if err := ub.AddViewSQL("T", `SELECT r1, r2 FROM VR`); err != nil {
		t.Fatal(err)
	}
	uplan, err := ub.Build()
	if err != nil {
		t.Fatal(err)
	}
	up, err := core.New(core.Config{VDP: uplan,
		Sources: map[string]core.SourceConn{"medA": cli}, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	cli.OnAnnounce(up.OnAnnouncement)
	if err := up.Initialize(); err != nil {
		t.Fatal(err)
	}

	// A leaf commit crosses both hops; the announcement's Reflect vector
	// survives the wire, so the upstream answer carries base coordinates.
	d := delta.New()
	d.Insert("R", relation.T(3, 30, 9))
	ct := db1.MustApply(d)
	if _, err := med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	waitTxn(t, up)
	res, err := up.QueryOpts("T", nil, nil, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Len() != 3 {
		t.Fatalf("T has %d rows, want 3:\n%s", res.Answer.Len(), res.Answer)
	}
	if res.BaseReflect["db1"] != ct {
		t.Fatalf("BaseReflect %v, want db1:%d", res.BaseReflect, ct)
	}

	// A downstream resync's barrier crosses the wire and quarantines the
	// tier upstream; an upstream resync (a wire snapshot poll) clears it.
	med.QuarantineSource("db1", "test gap")
	if err := med.ResyncSource("db1"); err != nil {
		t.Fatal(err)
	}
	waitQuarantined(t, up, "medA")
	if err := up.ResyncSource("medA"); err != nil {
		t.Fatal(err)
	}
	if len(up.QuarantinedSources()) != 0 {
		t.Fatalf("quarantine not cleared: %v", up.QuarantinedSources())
	}

	d2 := delta.New()
	d2.Insert("R", relation.T(5, 50, 8))
	db1.MustApply(d2)
	if _, err := med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	waitTxn(t, up)
	if got := up.StoreSnapshot("T").Len(); got != 4 {
		t.Fatalf("post-resync T has %d rows, want 4", got)
	}
}

// waitTxn spins until one update transaction runs (wire announcement
// delivery is asynchronous, so the queue may not be populated yet).
func waitTxn(t testing.TB, up *core.Mediator) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); ; {
		ran, err := up.RunUpdateTransaction()
		if err != nil {
			t.Fatal(err)
		}
		if ran {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("announcement never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitQuarantined spins until src is quarantined at the mediator.
func waitQuarantined(t testing.TB, up *core.Mediator, src string) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); ; {
		for _, q := range up.QuarantinedSources() {
			if q == src {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never quarantined; quarantined=%v", src, up.QuarantinedSources())
		}
		time.Sleep(time.Millisecond)
	}
}
