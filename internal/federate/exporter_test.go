package federate

import (
	"strings"
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
)

// buildTier assembles one downstream mediator over a single source db1(R)
// with a fully materialized export VR = π σ R, plus an exporter over it.
func buildTier(t *testing.T, clk clock.Clock) (*source.DB, *core.Mediator, *Exporter) {
	t.Helper()
	db1 := source.NewDB("db1", clk)
	r := relation.NewSet(relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1"))
	r.Insert(relation.T(1, 10, 5))
	r.Insert(relation.T(2, 20, 7))
	if err := db1.LoadRelation(r); err != nil {
		t.Fatal(err)
	}
	b := vdp.NewBuilder()
	if err := b.AddSource("db1", r.Schema()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("VR", `SELECT r1, r2 FROM R WHERE r3 < 100`); err != nil {
		t.Fatal(err)
	}
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	med, err := core.New(core.Config{VDP: plan,
		Sources: map[string]core.SourceConn{"db1": core.LocalSource{DB: db1}}, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	core.ConnectLocal(med, db1)
	x, err := New(med, "medA")
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	return db1, med, x
}

// TestExporterAnnouncesCommits pins the export-as-source contract: one
// announcement per committed update transaction, sequence number = the
// published version's sequence number, delta projected onto the export,
// Reflect in base coordinates.
func TestExporterAnnouncesCommits(t *testing.T) {
	clk := &clock.Logical{}
	db1, med, x := buildTier(t, clk)

	var got []source.Announcement
	x.Subscribe(func(a source.Announcement) { got = append(got, a) })

	d := delta.New()
	d.Insert("R", relation.T(3, 30, 9))
	ct := db1.MustApply(d)
	if ran, err := med.RunUpdateTransaction(); err != nil || !ran {
		t.Fatalf("update txn: ran=%v err=%v", ran, err)
	}
	if len(got) != 1 {
		t.Fatalf("want 1 announcement, got %d", len(got))
	}
	a := got[0]
	if a.Source != "medA" || a.Barrier != "" {
		t.Fatalf("bad announcement identity: %+v", a)
	}
	if a.Seq != med.StoreVersion() || a.FirstSeq != a.Seq {
		t.Fatalf("seq %d/%d, store version %d", a.FirstSeq, a.Seq, med.StoreVersion())
	}
	if a.Reflect == nil || a.Reflect["db1"] != ct {
		t.Fatalf("announcement reflect %v, want db1:%d", a.Reflect, ct)
	}
	rd := a.Delta.Get("VR")
	if rd == nil || rd.Count(relation.T(3, 30)) != 1 {
		t.Fatalf("announced delta %v, want +VR(3,30)", a.Delta)
	}

	// An empty transaction still announces (sequence density).
	got = nil
	dd := delta.New()
	dd.Insert("R", relation.T(4, 40, 200)) // filtered out by r3 < 100
	db1.MustApply(dd)
	if ran, err := med.RunUpdateTransaction(); err != nil || !ran {
		t.Fatalf("empty-effect txn: ran=%v err=%v", ran, err)
	}
	if len(got) != 1 || got[0].Seq != med.StoreVersion() {
		t.Fatalf("empty commit not announced densely: %+v", got)
	}
	if got[0].Delta.Get("VR") != nil {
		t.Fatalf("want empty delta, got %v", got[0].Delta)
	}
}

// TestExporterQueryAnswersFromLastFedVersion pins QueryMultiBase: answers
// come from the last fed version, asOf is its commit stamp, and the base
// vector is its ref′.
func TestExporterQueryAnswersFromLastFedVersion(t *testing.T) {
	clk := &clock.Logical{}
	db1, med, x := buildTier(t, clk)

	d := delta.New()
	d.Insert("R", relation.T(3, 30, 9))
	ct := db1.MustApply(d)
	if _, err := med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	ans, asOf, base, err := x.QueryMultiBase([]source.QuerySpec{{Rel: "VR"}})
	if err != nil {
		t.Fatal(err)
	}
	if ans[0].Len() != 3 {
		t.Fatalf("want 3 rows, got\n%s", ans[0])
	}
	if v := med.CurrentVersion(); asOf != v.Stamp() {
		t.Fatalf("asOf %d, want version stamp %d", asOf, v.Stamp())
	}
	if base["db1"] != ct {
		t.Fatalf("base vector %v, want db1:%d", base, ct)
	}
	if _, _, _, err := x.QueryMultiBase([]source.QuerySpec{{Rel: "nope"}}); err == nil {
		t.Fatal("unknown relation must error")
	}
	if _, err := x.Apply(delta.New()); err == nil {
		t.Fatal("exporter must reject writes")
	}
}

// TestExporterBarrierQuarantinesUpstream wires a real upstream mediator
// over the exporter and drives a downstream resync: the barrier
// announcement must quarantine the tier upstream, and an upstream resync
// must clear it and converge on the post-barrier state.
func TestExporterBarrierQuarantinesUpstream(t *testing.T) {
	clk := &clock.Logical{}
	db1, med, x := buildTier(t, clk)

	vr, err := x.Schema("VR")
	if err != nil {
		t.Fatal(err)
	}
	ub := vdp.NewBuilder()
	if err := ub.AddSource("medA", vr); err != nil {
		t.Fatal(err)
	}
	if err := ub.AddViewSQL("T", `SELECT r1, r2 FROM VR`); err != nil {
		t.Fatal(err)
	}
	uplan, err := ub.Build()
	if err != nil {
		t.Fatal(err)
	}
	up, err := core.New(core.Config{VDP: uplan,
		Sources: map[string]core.SourceConn{"medA": x}, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	x.Subscribe(up.OnAnnouncement)
	if err := up.Initialize(); err != nil {
		t.Fatal(err)
	}

	// Normal flow: a leaf commit propagates through both tiers.
	d := delta.New()
	d.Insert("R", relation.T(3, 30, 9))
	db1.MustApply(d)
	if _, err := med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	if _, err := up.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	if got := up.StoreSnapshot("T").Len(); got != 3 {
		t.Fatalf("upstream T has %d rows, want 3", got)
	}

	// Downstream barrier: quarantine db1 at the tier and resync it.
	med.QuarantineSource("db1", "test gap")
	if err := med.ResyncSource("db1"); err != nil {
		t.Fatal(err)
	}
	qs := up.QuarantinedSources()
	if len(qs) != 1 || qs[0] != "medA" {
		t.Fatalf("upstream quarantined %v, want [medA]", qs)
	}
	if _, _, err := x.QueryMulti([]source.QuerySpec{{Rel: "VR"}}); err != nil {
		t.Fatalf("post-barrier query: %v", err)
	}
	// Polls of the quarantined tier must fail until the resync.
	if _, err := up.Query("T", nil, nil); err == nil ||
		!strings.Contains(err.Error(), "quarantined") {
		// Fully materialized T answers from the store without polling;
		// the quarantine shows on the update path instead. Accept both.
		_ = err
	}
	if err := up.ResyncSource("medA"); err != nil {
		t.Fatal(err)
	}
	if len(up.QuarantinedSources()) != 0 {
		t.Fatalf("quarantine not cleared: %v", up.QuarantinedSources())
	}

	// Post-barrier commits flow again, and the tiers agree.
	d2 := delta.New()
	d2.Insert("R", relation.T(5, 50, 8))
	db1.MustApply(d2)
	if _, err := med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	if _, err := up.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	want := med.StoreSnapshot("VR")
	got := up.StoreSnapshot("T")
	if got.Len() != want.Len() {
		t.Fatalf("tiers diverged:\nupstream\n%s\ndownstream\n%s", got, want)
	}
}
