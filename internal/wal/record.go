// Package wal is the mediator's durable write-ahead delta log. Every
// committed update transaction appends one checksummed, length-prefixed
// record — the committed store version, the Reflect vector, and the
// transaction's combined source deltas in the columnar wire encoding —
// BEFORE the version is published (core.CommitLog, called from the
// commit path under the store mutex). Group commit falls out of the
// existing batching: the batched runtime drains N queued announcements
// as ONE transaction (one record), and the SyncBatch policy further
// amortizes the fsync across a whole drained batch.
//
// Periodic compaction checkpoints the current store version into a
// persist snapshot (copy-on-write: Mediator.Snapshot pins the immutable
// published version, so commits keep flowing while the checkpoint
// writes) and retires the log prefix it covers. Crash recovery loads the
// newest readable checkpoint and replays the log tail through the
// mediator's own update-transaction path, stopping cleanly at the first
// torn or corrupt record — a mid-write crash recovers to the last
// complete transaction instead of refusing to start.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/persist"
	"squirrel/internal/wire"
)

// Record framing:
//
//	[4B magic "SQWL"] [1B type] [4B payload len, LE] [4B CRC32C, LE] [payload]
//
// The checksum covers the type byte and the payload, so a flipped type
// or a torn payload both fail verification. Integers are little-endian.
// The payload itself is JSON — small next to the fsync that dominates
// each append, and debuggable with nothing but `strings`.
const (
	magic      = "SQWL"
	headerSize = 4 + 1 + 4 + 4

	// TypeCommit records one committed update transaction.
	TypeCommit byte = 1
	// TypeBarrier records a publish that did not flow through the
	// update-transaction path (resync, re-annotation): replay cannot
	// cross it.
	TypeBarrier byte = 2

	// maxPayload bounds a record's declared payload length. A torn or
	// bit-flipped length field would otherwise make the scanner attempt
	// a multi-gigabyte allocation before the checksum could object.
	maxPayload = 1 << 30
)

// ErrTorn reports a record that does not verify: short header, short
// payload, bad magic, unknown type, or checksum mismatch. The scanner
// treats it as the torn tail of a crashed append — everything before it
// is intact, everything from it on is discarded.
var ErrTorn = errors.New("wal: torn or corrupt record")

// appendRecord frames (typ, payload) onto buf and returns the extended
// buffer.
func appendRecord(buf []byte, typ byte, payload []byte) []byte {
	buf = append(buf, magic...)
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	sum := persist.Checksum(append([]byte{typ}, payload...))
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	return append(buf, payload...)
}

// DecodeRecord reads one framed record from the front of b, returning
// the record and how many bytes it consumed. Any defect — including a
// clean EOF in the middle of a record — is ErrTorn; len(b) == 0 is
// (0, nil, 0, nil): the scan loop's clean end.
func DecodeRecord(b []byte) (typ byte, payload []byte, consumed int, err error) {
	if len(b) == 0 {
		return 0, nil, 0, nil
	}
	if len(b) < headerSize {
		return 0, nil, 0, fmt.Errorf("%w: %d-byte tail", ErrTorn, len(b))
	}
	if string(b[:4]) != magic {
		return 0, nil, 0, fmt.Errorf("%w: bad magic %q", ErrTorn, b[:4])
	}
	typ = b[4]
	if typ != TypeCommit && typ != TypeBarrier {
		return 0, nil, 0, fmt.Errorf("%w: unknown record type %d", ErrTorn, typ)
	}
	n := binary.LittleEndian.Uint32(b[5:9])
	if n > maxPayload {
		return 0, nil, 0, fmt.Errorf("%w: implausible payload length %d", ErrTorn, n)
	}
	sum := binary.LittleEndian.Uint32(b[9:13])
	if len(b) < headerSize+int(n) {
		return 0, nil, 0, fmt.Errorf("%w: payload truncated (%d of %d bytes)", ErrTorn, len(b)-headerSize, n)
	}
	payload = b[headerSize : headerSize+int(n)]
	if got := persist.Checksum(append([]byte{typ}, payload...)); got != sum {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch (%08x, want %08x)", ErrTorn, got, sum)
	}
	return typ, payload, headerSize + int(n), nil
}

// commitPayload is the JSON body of a TypeCommit record.
type commitPayload struct {
	Version       uint64                `json:"version"`
	Stamp         clock.Time            `json:"stamp"`
	Reflect       map[string]clock.Time `json:"reflect"`
	NewRef        map[string]clock.Time `json:"new_ref"`
	Announcements int                   `json:"announcements,omitempty"`
	Deltas        []wire.RelDeltaCols   `json:"deltas,omitempty"`
}

// barrierPayload is the JSON body of a TypeBarrier record.
type barrierPayload struct {
	Version uint64 `json:"version"`
	Reason  string `json:"reason"`
}

// encodeCommit renders a commit record payload. Deltas are emitted in
// sorted relation order so identical transactions produce identical
// bytes.
func encodeCommit(rec *core.CommitRecord) ([]byte, error) {
	p := commitPayload{
		Version:       rec.Version,
		Stamp:         rec.Stamp,
		Reflect:       rec.Reflect,
		NewRef:        rec.NewRef,
		Announcements: rec.Announcements,
	}
	if rec.Delta != nil {
		rels := append([]string(nil), rec.Delta.Relations()...)
		sort.Strings(rels)
		for _, rel := range rels {
			rd := rec.Delta.Get(rel)
			if rd == nil || rd.IsEmpty() {
				continue
			}
			p.Deltas = append(p.Deltas, wire.EncodeRelDeltaColumnar(rd))
		}
	}
	return json.Marshal(p)
}

// decodeCommit parses a commit record payload back into the form replay
// consumes.
func decodeCommit(payload []byte) (*core.CommitRecord, error) {
	var p commitPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("wal: commit payload: %w", err)
	}
	if p.Version == 0 {
		return nil, fmt.Errorf("wal: commit payload has no version")
	}
	rec := &core.CommitRecord{
		Version:       p.Version,
		Stamp:         p.Stamp,
		Reflect:       clock.Vector(p.Reflect),
		NewRef:        clock.Vector(p.NewRef),
		Announcements: p.Announcements,
		Delta:         delta.New(),
	}
	if rec.Reflect == nil {
		rec.Reflect = clock.Vector{}
	}
	if rec.NewRef == nil {
		rec.NewRef = clock.Vector{}
	}
	for _, w := range p.Deltas {
		rd, err := w.Decode()
		if err != nil {
			return nil, fmt.Errorf("wal: commit v%d: %w", p.Version, err)
		}
		rec.Delta.Rel(w.Rel).Smash(rd)
	}
	return rec, nil
}

func decodeBarrier(payload []byte) (*barrierPayload, error) {
	var p barrierPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("wal: barrier payload: %w", err)
	}
	return &p, nil
}
