package wal

import (
	"fmt"
)

// File is the write side of a log segment file. *os.File satisfies it;
// resilience.ChaosFile wraps one to script filesystem faults
// (short writes, fsync failures, crash-at-offset kills).
type File interface {
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// log owns the append state of one open segment: the accepted tail (end
// of the last fully written record) and the synced tail (end of the last
// record known durable). Appends go through WriteAt at the accepted
// tail, so a failed write can be rolled back by truncating — the file
// offset is ours, not the kernel's. Not safe for concurrent use: the
// Manager serializes all calls under its mutex.
type log struct {
	f      File
	tail   int64
	synced int64
	// poison latches a failed rollback: the on-disk tail state is
	// unknown, so no further append may be trusted. Recovery's checksum
	// scan is the backstop that makes the poisoned bytes harmless.
	poison error
	buf    []byte // reused frame buffer
}

func newLog(f File) *log { return &log{f: f} }

// append frames one record at the tail. On a short or failed write the
// torn bytes are truncated away (self-healing) and the tail is
// unchanged; if even the truncate fails, the log is poisoned.
func (l *log) append(typ byte, payload []byte) (int, error) {
	if l.poison != nil {
		return 0, l.poison
	}
	l.buf = appendRecord(l.buf[:0], typ, payload)
	n, err := l.f.WriteAt(l.buf, l.tail)
	if err != nil {
		if n > 0 {
			if terr := l.f.Truncate(l.tail); terr != nil {
				l.poison = fmt.Errorf("wal: log poisoned: append failed (%v), rollback failed: %w", err, terr)
			}
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if n < len(l.buf) {
		if terr := l.f.Truncate(l.tail); terr != nil {
			l.poison = fmt.Errorf("wal: log poisoned: short write (%d of %d), rollback failed: %w", n, len(l.buf), terr)
			return 0, l.poison
		}
		return 0, fmt.Errorf("wal: short append (%d of %d bytes)", n, len(l.buf))
	}
	l.tail += int64(n)
	return n, nil
}

// sync makes every appended record durable.
func (l *log) sync() error {
	if l.poison != nil {
		return l.poison
	}
	if l.synced == l.tail {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.synced = l.tail
	return nil
}

// rollbackUnsynced discards every record appended since the last
// successful sync — the sync-commit policy's answer to a failed fsync:
// the suspect record's durability is unknown, and the aborted
// transaction will be retried (possibly coalescing differently), so a
// surviving duplicate version record would poison replay. A failed
// truncate poisons the log instead.
func (l *log) rollbackUnsynced() {
	if l.poison != nil || l.synced == l.tail {
		return
	}
	if err := l.f.Truncate(l.synced); err != nil {
		l.poison = fmt.Errorf("wal: log poisoned: rollback to %d failed: %w", l.synced, err)
		return
	}
	l.tail = l.synced
}

// unsynced reports how many bytes await the next sync.
func (l *log) unsynced() int64 { return l.tail - l.synced }

func (l *log) close() error { return l.f.Close() }
