package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"squirrel/internal/core"
	"squirrel/internal/resilience"
	"squirrel/internal/source"
)

// TestCrashRecoverySoak is the chaos acceptance test: a seeded loop that
// kills the mediator mid-commit — a scripted "power cut" tearing the WAL
// at a random byte — then recovers, over and over. After every single
// recovery the recovered store must be byte-identical to the last state
// the dead mediator published (the durable-before-publish invariant
// under SyncCommit: no published version is ever lost), catch-up must
// need only the announcements committed while dead (never a full source
// resync), and at the end the whole survivor chain must be
// byte-identical to a never-crashed oracle replaying the same commits.
func TestCrashRecoverySoak(t *testing.T) {
	cycles := 40
	if testing.Short() {
		cycles = 12
	}
	for _, tc := range []struct {
		seed         int64
		compactEvery int
	}{
		{seed: 1, compactEvery: -1}, // pure replay: the log carries everything
		{seed: 2, compactEvery: 3},  // compaction races the crashes
		{seed: 3, compactEvery: 7},
	} {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d,compact=%d", tc.seed, tc.compactEvery), func(t *testing.T) {
			runCrashSoak(t, tc.seed, tc.compactEvery, cycles)
		})
	}
}

func runCrashSoak(t *testing.T, seed int64, compactEvery, cycles int) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	e := newWalEnv(t)

	med := e.startFresh(t)
	baseSnap, err := med.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	baseVersion := med.StoreVersion()

	newManager := func() (*Manager, *resilience.FileInjector) {
		inj := resilience.NewFileInjector()
		mgr := openManager(t, dir, func(o *Options) {
			o.CompactEvery = compactEvery
			o.WrapFile = func(f File) File { return inj.Wrap(f) }
		})
		return mgr, inj
	}

	mgr, inj := newManager()
	if err := mgr.Start(med); err != nil {
		t.Fatal(err)
	}

	// script records the global order of source commits; the oracle
	// replays it at the end. lastGood is the newest published state.
	var script []string
	lastGood := snapBytes(t, med)
	lastGoodVersion := med.StoreVersion()
	crashes, cleanStops := 0, 0

	commitOnce := func() error {
		e.applyOne(t)
		script = append(script, []string{"db2", "db1", "db1"}[e.n%3])
		_, err := med.RunUpdateTransaction()
		if err == nil {
			lastGood = snapBytes(t, med)
			lastGoodVersion = med.StoreVersion()
		}
		return err
	}

	for cycle := 0; cycle < cycles; cycle++ {
		// Script this life's power cut: a random byte offset a few
		// records ahead in the WAL's write stream.
		clean := rng.Intn(5) == 0
		if !clean {
			inj.KillAtByte(int64(inj.Counts().BytesWritten) + int64(1+rng.Intn(1200)))
		}
		crashed := false
		for i := 0; i < 64; i++ {
			if err := commitOnce(); err != nil {
				crashed = true
				break
			}
		}
		if clean && !crashed {
			cleanStops++
		} else if !crashed {
			t.Fatalf("cycle %d: kill point never fired over 64 commits", cycle)
		} else {
			crashes++
		}
		mgr.Kill()

		// Next life: recover a brand-new mediator from the directory.
		med = e.newMediator(t)
		mgr, inj = newManager()
		info, err := mgr.Recover(med)
		if err != nil {
			t.Fatalf("cycle %d: recover: %v", cycle, err)
		}
		if info.Version != lastGoodVersion {
			t.Fatalf("cycle %d: recovered version %d, want last published %d (info %+v)",
				cycle, info.Version, lastGoodVersion, info)
		}
		if got := snapBytes(t, med); !bytes.Equal(got, lastGood) {
			t.Fatalf("cycle %d: recovered state differs from last published state", cycle)
		}
		if med.Stats().Resyncs != 0 {
			t.Fatalf("cycle %d: recovery resorted to a source resync", cycle)
		}

		// Catch up on commits the dead mediator lost with its queue —
		// one transaction per announcement, so version numbering stays
		// aligned with the oracle's.
		e.connect(med)
		lp := med.LastProcessed()
		var missed []source.Announcement
		for _, db := range []*source.DB{e.db1, e.db2} {
			db.ReplaySince(lp[db.Name()], func(a source.Announcement) {
				missed = append(missed, a)
			})
		}
		if len(missed) > 3 {
			t.Fatalf("cycle %d: %d missed announcements, want at most the crashed batch", cycle, len(missed))
		}
		for _, a := range missed {
			med.OnAnnouncement(a)
			if ran, err := med.RunUpdateTransaction(); err != nil || !ran {
				t.Fatalf("cycle %d: catch-up txn: ran=%v err=%v", cycle, ran, err)
			}
			lastGood = snapBytes(t, med)
			lastGoodVersion = med.StoreVersion()
		}

		// The WAL directory stays bounded: recovery always retires the
		// replayed log behind a fresh checkpoint.
		if entries, err := os.ReadDir(dir); err != nil || len(entries) > 6 {
			t.Fatalf("cycle %d: %d files in WAL dir (err %v), compaction is not keeping up", cycle, len(entries), err)
		}
	}
	mgr.Kill()
	if crashes == 0 {
		t.Fatal("soak never crashed; chaos script is broken")
	}
	t.Logf("soak: %d crashes, %d clean stops, %d commits, final version %d",
		crashes, cleanStops, len(script), lastGoodVersion)

	// The never-crashed oracle: restore the birth snapshot, replay every
	// source commit in script order, one transaction each. Its final
	// state must be byte-identical to the survivor chain's.
	oracle := e.newMediator(t)
	if err := oracle.Restore(baseSnap); err != nil {
		t.Fatal(err)
	}
	feeds := map[string][]source.Announcement{}
	for _, db := range []*source.DB{e.db1, e.db2} {
		name := db.Name()
		db.ReplaySince(baseSnap.LastProcessed[name], func(a source.Announcement) {
			feeds[name] = append(feeds[name], a)
		})
	}
	for i, src := range script {
		if len(feeds[src]) == 0 {
			t.Fatalf("oracle script entry %d: no %s announcement left", i, src)
		}
		a := feeds[src][0]
		feeds[src] = feeds[src][1:]
		oracle.OnAnnouncement(a)
		if ran, err := oracle.RunUpdateTransaction(); err != nil || !ran {
			t.Fatalf("oracle txn %d: ran=%v err=%v", i, ran, err)
		}
	}
	if got := oracle.StoreVersion(); got != baseVersion+uint64(len(script)) || got != lastGoodVersion {
		t.Fatalf("oracle version %d, want %d (= survivor %d)", got, baseVersion+uint64(len(script)), lastGoodVersion)
	}
	if !bytes.Equal(snapBytes(t, oracle), lastGood) {
		t.Fatal("survivor chain state differs from the never-crashed oracle")
	}
}

// TestBatchedRuntimeGroupCommit wires the WAL under the group-commit
// batching loop: announcements arriving inside the flush window coalesce
// into one transaction (one record), and under SyncBatch the runtime's
// single post-drain Sync makes the whole batch durable — fsyncs are
// amortized across the batch, and a crash after the flush loses nothing.
func TestBatchedRuntimeGroupCommit(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med := e.startFresh(t)
	inj := resilience.NewFileInjector()
	mgr := openManager(t, dir, func(o *Options) {
		o.Policy = SyncBatch
		o.WrapFile = func(f File) File { return inj.Wrap(f) }
	})
	if err := mgr.Start(med); err != nil {
		t.Fatal(err)
	}

	rt, err := core.NewBatchedRuntime(med, 20*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	const commits = 12
	for i := 0; i < commits; i++ {
		e.applyOne(t)
	}
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}
	want := snapBytes(t, med)
	wantVersion := med.StoreVersion()
	syncs := inj.Counts().Syncs
	mgr.Kill()

	if wantVersion >= uint64(commits) {
		t.Fatalf("version %d after %d batched commits: batching never coalesced", wantVersion, commits)
	}
	if syncs == 0 || syncs > uint64(commits) {
		t.Fatalf("%d fsyncs for %d commits, want amortized group commit", syncs, commits)
	}

	med2 := e.newMediator(t)
	info, err := openManager(t, dir, nil).Recover(med2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != wantVersion {
		t.Fatalf("recovered version %d, want %d", info.Version, wantVersion)
	}
	if !bytes.Equal(snapBytes(t, med2), want) {
		t.Fatal("recovered state differs from batched-runtime state")
	}
}
