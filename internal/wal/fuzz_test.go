package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// FuzzWALDecode throws arbitrary bytes at the record scanner. The
// invariants under fuzz: never panic, never over-consume, and any input
// that decodes cleanly re-encodes to the identical frame (the scanner
// accepts nothing appendRecord could not have produced).
func FuzzWALDecode(f *testing.F) {
	// Seed with real frames: a commit, a barrier, and classic damage.
	rec := &core.CommitRecord{
		Version: 7, Stamp: 42,
		Reflect: clock.Vector{"db1": 41, "db2": 12},
		NewRef:  clock.Vector{"db1": 41},
		Delta:   delta.New(),
	}
	rec.Delta.Insert("R", relation.T(int64(1), int64(2), int64(3), int64(100)))
	commitPayloadBytes, err := encodeCommit(rec)
	if err != nil {
		f.Fatal(err)
	}
	commit := appendRecord(nil, TypeCommit, commitPayloadBytes)
	barrierBytes, _ := json.Marshal(barrierPayload{Version: 9, Reason: "resync:db1"})
	barrier := appendRecord(nil, TypeBarrier, barrierBytes)

	f.Add(commit)
	f.Add(barrier)
	f.Add(append(commit, barrier...))
	f.Add(commit[:len(commit)-3]) // torn tail
	f.Add([]byte("SQWL"))         // bare magic
	f.Add([]byte{})
	flipped := append([]byte(nil), commit...)
	flipped[len(flipped)/2] ^= 1
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, consumed, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTorn) {
				t.Fatalf("non-ErrTorn failure: %v", err)
			}
			return
		}
		if len(data) == 0 {
			if consumed != 0 {
				t.Fatalf("consumed %d of empty input", consumed)
			}
			return
		}
		if consumed < headerSize || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
		// Round-trip: a frame the scanner accepts is a frame we write.
		if got := appendRecord(nil, typ, payload); !bytes.Equal(got, data[:consumed]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, data[:consumed])
		}
		// A commit payload that passes the CRC may still be garbage JSON;
		// decodeCommit must fail cleanly, never panic.
		switch typ {
		case TypeCommit:
			if rec, err := decodeCommit(payload); err == nil {
				if _, err := encodeCommit(rec); err != nil {
					t.Fatalf("decoded commit does not re-encode: %v", err)
				}
			}
		case TypeBarrier:
			_, _ = decodeBarrier(payload)
		}
	})
}
