package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"squirrel/internal/core"
	"squirrel/internal/metrics"
	"squirrel/internal/persist"
)

// On-disk layout of a WAL directory:
//
//	checkpoint-%016d.snap   persist snapshot of store version N (atomic
//	                        tmp+fsync+rename writes; the newest readable
//	                        one is recovery's starting point)
//	wal-%016d.log           log segment; every record in it has version
//	                        greater than the segment's base N
//
// Compaction rotates to a fresh segment, snapshots the store (version
// V >= the rotated segment's base), writes checkpoint-V, and deletes
// every file the checkpoint covers. Recovery always ends with a fresh
// checkpoint + segment, so an append-side log never reopens old bytes.

// Metric names (see internal/metrics).
const (
	MetricFsyncSeconds  = "squirrel_wal_fsync_seconds"
	MetricBytesTotal    = "squirrel_wal_bytes_total"
	MetricRecordsTotal  = "squirrel_wal_records_total"
	MetricCompactions   = "squirrel_wal_compactions_total"
	MetricCompactErrors = "squirrel_wal_compact_errors_total"
	MetricReplayed      = "squirrel_wal_replayed_records_total"
	MetricRecoveries    = "squirrel_wal_recoveries_total"
	MetricSegmentBytes  = "squirrel_wal_segment_bytes"
)

// SyncPolicy decides when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncCommit (default) fsyncs inside every LogCommit: a published
	// version is always durable. One fsync per update transaction — the
	// batched runtime already coalesces N announcements into one
	// transaction, so group commit still pays one fsync per batch.
	SyncCommit SyncPolicy = iota
	// SyncBatch appends without fsync and lets the runtime's drain loop
	// call Sync once per batch: the fsync amortizes across every
	// transaction in the batch, at the cost of a bounded durability
	// window (a crash may lose the current batch, never a synced one).
	SyncBatch
	// SyncNone never fsyncs (the OS flushes when it pleases). Benchmarks
	// and tests only.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncCommit:
		return "commit"
	case SyncBatch:
		return "batch"
	case SyncNone:
		return "none"
	}
	return "unknown"
}

// ParseSyncPolicy reads the -wal-fsync flag form.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "commit", "":
		return SyncCommit, nil
	case "batch":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want commit, batch, or none)", s)
}

// Options configures a Manager.
type Options struct {
	// Dir is the WAL directory, created if absent. Required.
	Dir string
	// Policy is the fsync policy (default SyncCommit).
	Policy SyncPolicy
	// CompactEvery checkpoints after this many logged commits
	// (default 1024; negative disables periodic compaction).
	CompactEvery int
	// Metrics, if non-nil, receives the WAL instruments.
	Metrics *metrics.Registry
	// WrapFile, if non-nil, wraps every segment file the manager opens —
	// the chaos hook (resilience.FileInjector.Wrap satisfies it).
	WrapFile func(File) File
}

// RecoveryInfo describes what Recover did.
type RecoveryInfo struct {
	// CheckpointVersion is the store version of the checkpoint recovery
	// started from.
	CheckpointVersion uint64
	// Version is the store version after replay.
	Version uint64
	// Replayed counts commit records re-applied.
	Replayed int
	// Skipped counts records already covered by the checkpoint.
	Skipped int
	// TornTail is true when the scan hit a torn/corrupt record and
	// discarded the log from there on — the expected shape of a
	// mid-append crash.
	TornTail bool
	// Stopped, when non-empty, says why replay ended before the log did:
	// "barrier:<reason>" for a logged non-replayable publish, or a
	// version-gap description. Recovered state is consistent either way;
	// it is merely earlier than the log's horizon.
	Stopped string
}

// Manager owns a WAL directory: it is the core.CommitLog the mediator
// appends through, and the recovery engine that rebuilds a mediator
// from the directory after a crash.
type Manager struct {
	opts Options

	// ckptMu serializes whole Checkpoint runs (compaction goroutine,
	// Close, and explicit calls) without blocking appends.
	ckptMu sync.Mutex

	mu         sync.Mutex
	log        *log
	segBase    uint64 // base version of the open segment
	lastLogged uint64 // version of the newest logged commit record
	ckptVer    uint64 // version of the newest durable checkpoint
	sinceCkpt  int    // commits logged since that checkpoint
	running    bool   // compaction goroutine launched
	stopping   bool   // Close/Kill in progress (guards stopCh)
	closed     bool

	med *core.Mediator // attached by Start/Recover; Snapshot is lock-free

	compactCh chan struct{}
	stopCh    chan struct{}
	doneCh    chan struct{}

	fsyncHist   *metrics.Histogram
	bytesC      *metrics.Counter
	recordsC    *metrics.Counter
	compactC    *metrics.Counter
	compactErrC *metrics.Counter
	replayedC   *metrics.Counter
	recoveriesC *metrics.Counter
	segBytesG   *metrics.Gauge
}

// Open prepares a manager over dir (created if missing). No mediator is
// attached yet: call Recover (dir has state) or Start (fresh) next —
// HasState picks.
func Open(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: options need a directory")
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 1024
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry(0)
	}
	m := &Manager{
		opts:        opts,
		compactCh:   make(chan struct{}, 1),
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
		fsyncHist:   reg.Histogram(MetricFsyncSeconds, metrics.DefLatencyBuckets),
		bytesC:      reg.Counter(MetricBytesTotal),
		recordsC:    reg.Counter(MetricRecordsTotal),
		compactC:    reg.Counter(MetricCompactions),
		compactErrC: reg.Counter(MetricCompactErrors),
		replayedC:   reg.Counter(MetricReplayed),
		recoveriesC: reg.Counter(MetricRecoveries),
		segBytesG:   reg.Gauge(MetricSegmentBytes),
	}
	return m, nil
}

// HasState reports whether the directory holds a checkpoint to recover
// from.
func (m *Manager) HasState() (bool, error) {
	ckpts, _, err := m.scanDir()
	if err != nil {
		return false, err
	}
	return len(ckpts) > 0, nil
}

// Start attaches a freshly initialized mediator (Initialize already
// called, store version published): it writes the baseline checkpoint,
// opens the first segment, hooks the mediator's commit path, and starts
// the compaction goroutine. The directory must not already hold state.
func (m *Manager) Start(med *core.Mediator) error {
	has, err := m.HasState()
	if err != nil {
		return err
	}
	if has {
		return fmt.Errorf("wal: directory %s already holds state; use Recover", m.opts.Dir)
	}
	m.mu.Lock()
	m.med = med
	m.lastLogged = med.StoreVersion()
	m.mu.Unlock()
	if err := m.Checkpoint(); err != nil {
		return err
	}
	med.SetCommitLog(m)
	m.mu.Lock()
	m.running = true
	m.mu.Unlock()
	go m.compactLoop()
	return nil
}

// Recover rebuilds med — constructed but NOT initialized — from the
// directory: restore the newest readable checkpoint, replay the log
// tail through the mediator's own update-transaction path (stopping at
// the first torn record, version gap, or barrier), then checkpoint the
// recovered state, rotate to a fresh segment, attach the commit hook,
// and start compaction. The returned info says how far recovery got.
func (m *Manager) Recover(med *core.Mediator) (*RecoveryInfo, error) {
	ckpts, segs, err := m.scanDir()
	if err != nil {
		return nil, err
	}
	if len(ckpts) == 0 {
		return nil, fmt.Errorf("wal: no checkpoint in %s; use Start", m.opts.Dir)
	}
	// Newest readable checkpoint wins. An unreadable newer one (torn by
	// a crash that beat the atomic rename discipline, or flipped at
	// rest) falls back to its predecessor — whose log coverage is intact
	// if the failed compaction never reached its deletes.
	var snap *core.StateSnapshot
	var info RecoveryInfo
	var loadErr error
	for i := len(ckpts) - 1; i >= 0; i-- {
		snap, loadErr = persist.LoadFile(m.ckptPath(ckpts[i]))
		if loadErr == nil {
			info.CheckpointVersion = ckpts[i]
			break
		}
		if !errors.Is(loadErr, persist.ErrCorrupt) {
			return nil, loadErr
		}
	}
	if snap == nil {
		return nil, fmt.Errorf("wal: every checkpoint in %s is corrupt: %w", m.opts.Dir, loadErr)
	}
	if err := med.Restore(snap); err != nil {
		return nil, fmt.Errorf("wal: restoring checkpoint v%d: %w", info.CheckpointVersion, err)
	}

	// Replay the tail. Segments scan in base order; only the LAST may be
	// torn (a torn middle segment means later segments are unreachable —
	// the version-continuity check stops replay there anyway).
scan:
	for si, base := range segs {
		data, err := os.ReadFile(m.segPath(base))
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		off := 0
		for off < len(data) {
			typ, payload, n, derr := DecodeRecord(data[off:])
			if derr != nil {
				if si != len(segs)-1 {
					info.Stopped = fmt.Sprintf("segment wal-%d torn mid-chain: %v", base, derr)
					break scan
				}
				info.TornTail = true
				break scan
			}
			if n == 0 {
				break
			}
			off += n
			switch typ {
			case TypeBarrier:
				bp, err := decodeBarrier(payload)
				if err != nil {
					info.TornTail = true
					break scan
				}
				if bp.Version <= med.StoreVersion() {
					info.Skipped++
					continue // the checkpoint already covers it
				}
				info.Stopped = "barrier:" + bp.Reason
				break scan
			case TypeCommit:
				rec, err := decodeCommit(payload)
				if err != nil {
					info.TornTail = true
					break scan
				}
				if rec.Version <= med.StoreVersion() {
					info.Skipped++
					continue
				}
				if err := med.ReplayCommitRecord(rec); err != nil {
					if errors.Is(err, core.ErrReplayGap) {
						info.Stopped = err.Error()
						break scan
					}
					return nil, err
				}
				info.Replayed++
				m.replayedC.Inc()
			}
		}
	}
	info.Version = med.StoreVersion()
	m.recoveriesC.Inc()

	// Seal the recovery: checkpoint the recovered state and rotate, so
	// the torn tail (and anything beyond a barrier or gap) is retired
	// rather than appended over. lastLogged starts at the recovered
	// version so the rotation opens a segment PAST every old one — an
	// old segment is never truncated before the checkpoint covering its
	// replayed records is durable. (A name collision is harmless: it can
	// only happen when the old segment's entire content was discarded by
	// the torn-tail/barrier rule above.)
	m.mu.Lock()
	m.med = med
	m.lastLogged = med.StoreVersion()
	m.mu.Unlock()
	if err := m.Checkpoint(); err != nil {
		return nil, err
	}
	med.SetCommitLog(m)
	m.mu.Lock()
	m.running = true
	m.mu.Unlock()
	go m.compactLoop()
	return &info, nil
}

// LogCommit implements core.CommitLog: called by the mediator's commit
// path, under its store mutex, before the version publishes.
func (m *Manager) LogCommit(rec *core.CommitRecord) error {
	payload, err := encodeCommit(rec)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return fmt.Errorf("wal: manager not started")
	}
	n, err := m.log.append(TypeCommit, payload)
	if err != nil {
		return err
	}
	m.bytesC.Add(int64(n))
	m.recordsC.Inc()
	m.segBytesG.Set(m.log.tail)
	if m.opts.Policy == SyncCommit {
		if err := m.syncLocked(); err != nil {
			// The record's durability is unknown and the transaction is
			// about to abort; scrub it so a retry cannot leave two
			// version-N records racing for replay's attention.
			m.log.rollbackUnsynced()
			return err
		}
	}
	m.lastLogged = rec.Version
	m.sinceCkpt++
	if m.opts.CompactEvery > 0 && m.sinceCkpt >= m.opts.CompactEvery {
		m.requestCompact()
	}
	return nil
}

// LogBarrier implements core.CommitLog: a publish replay cannot cross.
// The barrier record is best-effort (the version-continuity check backs
// it up); a checkpoint is scheduled so the unreplayable region retires
// promptly.
func (m *Manager) LogBarrier(version uint64, reason string) error {
	payload, err := json.Marshal(barrierPayload{Version: version, Reason: reason})
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return fmt.Errorf("wal: manager not started")
	}
	n, err := m.log.append(TypeBarrier, payload)
	if err != nil {
		return err
	}
	m.bytesC.Add(int64(n))
	m.recordsC.Inc()
	if m.opts.Policy == SyncCommit {
		if err := m.syncLocked(); err != nil {
			m.log.rollbackUnsynced()
			return err
		}
	}
	m.requestCompact()
	return nil
}

// Sync implements core.CommitLog: the group-commit flush point under
// SyncBatch (no-op when nothing is buffered).
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil || m.opts.Policy == SyncNone {
		return nil
	}
	return m.syncLocked()
}

func (m *Manager) syncLocked() error {
	if m.log.unsynced() == 0 {
		return nil
	}
	start := time.Now()
	if err := m.log.sync(); err != nil {
		return err
	}
	m.fsyncHist.ObserveSince(start)
	return nil
}

// Checkpoint snapshots the attached mediator's current store version,
// writes it as the newest checkpoint, rotates to a fresh segment, and
// deletes every file the checkpoint covers. Safe while commits flow:
// the snapshot is copy-on-write off the published version, and rotation
// happens first, so any commit racing the checkpoint lands in a segment
// the garbage collector provably keeps.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	m.mu.Lock()
	if m.med == nil {
		m.mu.Unlock()
		return fmt.Errorf("wal: no mediator attached")
	}
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("wal: manager closed")
	}
	med := m.med
	// Rotate FIRST: every record <= lastLogged is sealed in the old
	// segments, and the snapshot below (taken after) can only be at a
	// version >= any record the GC will delete.
	rotated := m.lastLogged
	if m.log == nil || m.log.tail > 0 || rotated > m.segBase {
		if err := m.rotateLocked(rotated); err != nil {
			m.mu.Unlock()
			return err
		}
	}
	m.mu.Unlock()

	snap, err := med.Snapshot()
	if err != nil {
		return err
	}
	if err := persist.SaveFile(m.ckptPath(snap.StoreVersion), snap); err != nil {
		return err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if snap.StoreVersion > m.ckptVer {
		m.ckptVer = snap.StoreVersion
	}
	m.sinceCkpt = 0
	m.compactC.Inc()
	return m.gcLocked()
}

// rotateLocked (mu held) seals the open segment and opens a fresh one
// based at base.
func (m *Manager) rotateLocked(base uint64) error {
	f, err := os.OpenFile(m.segPath(base), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var file File = f
	if m.opts.WrapFile != nil {
		file = m.opts.WrapFile(file)
	}
	if m.log != nil {
		if m.log.unsynced() > 0 {
			m.log.sync() //nolint:errcheck // best effort: SyncBatch tolerates losing an unsynced tail
		}
		m.log.close() //nolint:errcheck // sealed segment; scan-time CRC is the authority
	}
	m.log = newLog(file)
	m.segBase = base
	m.segBytesG.Set(0)
	return nil
}

// gcLocked deletes checkpoints older than the newest and every sealed
// segment whose records are all covered by it. A sealed segment's
// records are bounded above by the NEXT segment's base, so it is
// deletable exactly when that next base is <= the checkpoint version.
func (m *Manager) gcLocked() error {
	ckpts, segs, err := m.scanDir()
	if err != nil {
		return err
	}
	var firstErr error
	for _, v := range ckpts {
		if v < m.ckptVer {
			if err := os.Remove(m.ckptPath(v)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for i, base := range segs {
		if base == m.segBase {
			continue
		}
		next := m.segBase
		if i+1 < len(segs) {
			next = segs[i+1]
		}
		if next <= m.ckptVer {
			if err := os.Remove(m.segPath(base)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (m *Manager) requestCompact() {
	select {
	case m.compactCh <- struct{}{}:
	default:
	}
}

func (m *Manager) compactLoop() {
	defer close(m.doneCh)
	for {
		select {
		case <-m.stopCh:
			return
		case <-m.compactCh:
			if err := m.Checkpoint(); err != nil {
				m.compactErrC.Inc()
			}
		}
	}
}

// Close stops compaction, takes a final checkpoint (so restart replays
// nothing), and closes the segment. Detach the mediator's runtime
// first; the mediator's commit log is unhooked here.
func (m *Manager) Close() error {
	med, running, ok := m.beginStop()
	if !ok {
		return nil
	}
	if running {
		close(m.stopCh)
		<-m.doneCh
	}
	if med != nil {
		med.SetCommitLog(nil)
	}
	var err error
	if med != nil {
		err = m.Checkpoint()
	}
	m.mu.Lock()
	m.closed = true
	if m.log != nil {
		if cerr := m.log.close(); cerr != nil && err == nil {
			err = cerr
		}
		m.log = nil
	}
	m.mu.Unlock()
	return err
}

// Kill abandons the manager the way a crash would: the compaction
// goroutine stops, the open segment closes with no sync and no final
// checkpoint, and the directory is left exactly as the "power cut" left
// it. Crash-soak hook; production shutdown is Close.
func (m *Manager) Kill() {
	med, running, ok := m.beginStop()
	if !ok {
		return
	}
	if running {
		close(m.stopCh)
		<-m.doneCh
	}
	if med != nil {
		med.SetCommitLog(nil)
	}
	m.mu.Lock()
	m.closed = true
	if m.log != nil {
		m.log.close() //nolint:errcheck // simulated crash: the error is the point
		m.log = nil
	}
	m.mu.Unlock()
}

// beginStop claims the one-shot shutdown transition; ok is false when a
// Close or Kill already ran.
func (m *Manager) beginStop() (med *core.Mediator, running, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.stopping {
		return nil, false, false
	}
	m.stopping = true
	return m.med, m.running, true
}

// --- directory layout helpers ---

func (m *Manager) ckptPath(v uint64) string {
	return filepath.Join(m.opts.Dir, fmt.Sprintf("checkpoint-%016d.snap", v))
}

func (m *Manager) segPath(v uint64) string {
	return filepath.Join(m.opts.Dir, fmt.Sprintf("wal-%016d.log", v))
}

// scanDir lists checkpoint and segment versions, each sorted ascending.
// Stray files (tmp leftovers from an interrupted atomic save) are
// ignored.
func (m *Manager) scanDir() (ckpts, segs []uint64, err error) {
	entries, err := os.ReadDir(m.opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".snap"):
			if v, ok := parseVersion(name, "checkpoint-", ".snap"); ok {
				ckpts = append(ckpts, v)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if v, ok := parseVersion(name, "wal-", ".log"); ok {
				segs = append(segs, v)
			}
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return ckpts, segs, nil
}

func parseVersion(name, prefix, suffix string) (uint64, bool) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
