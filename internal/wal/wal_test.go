package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/persist"
	"squirrel/internal/relation"
	"squirrel/internal/resilience"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
)

// testPlan is the paper's T = π(σ(R ⋈ S)) view over db1/db2, fully
// materialized (the default) so recovery replay needs no source polls.
func testPlan(t testing.TB) *vdp.VDP {
	t.Helper()
	b := vdp.NewBuilder()
	if err := b.AddSource("db1", schemaR()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSource("db2", schemaS()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("T",
		`SELECT r1, r3, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`); err != nil {
		t.Fatal(err)
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func schemaR() *relation.Schema {
	return relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}, {Name: "r4", Type: relation.KindInt}}, "r1")
}

func schemaS() *relation.Schema {
	return relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt},
		{Name: "s3", Type: relation.KindInt}}, "s1")
}

// walEnv is one "world": a logical clock and two source databases that
// survive mediator crashes (sources are other people's computers).
type walEnv struct {
	clk *clock.Logical
	db1 *source.DB
	db2 *source.DB
	n   int // commits issued so far (distinct keys)
}

func newWalEnv(t testing.TB) *walEnv {
	t.Helper()
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	if err := db1.CreateRelation(schemaR(), relation.Set); err != nil {
		t.Fatal(err)
	}
	db2 := source.NewDB("db2", clk)
	if err := db2.CreateRelation(schemaS(), relation.Set); err != nil {
		t.Fatal(err)
	}
	return &walEnv{clk: clk, db1: db1, db2: db2}
}

// newMediator builds a mediator over the env's sources. Announcement
// feeds are NOT connected; the caller decides (a recovering mediator
// must replay with an empty queue).
func (e *walEnv) newMediator(t testing.TB) *core.Mediator {
	t.Helper()
	med, err := core.New(core.Config{
		VDP: testPlan(t),
		Sources: map[string]core.SourceConn{
			"db1": core.LocalSource{DB: e.db1},
			"db2": core.LocalSource{DB: e.db2},
		},
		Clock: e.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

func (e *walEnv) connect(med *core.Mediator) {
	core.ConnectLocal(med, e.db1)
	core.ConnectLocal(med, e.db2)
}

// startFresh assembles a connected, initialized mediator — "first boot".
func (e *walEnv) startFresh(t testing.TB) *core.Mediator {
	t.Helper()
	med := e.newMediator(t)
	e.connect(med)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	return med
}

// commit applies one distinct-keyed transaction to db1 or db2
// (alternating-ish by call count) and runs one update transaction.
func (e *walEnv) commit(t testing.TB, med *core.Mediator) {
	t.Helper()
	e.applyOne(t)
	if ran, err := med.RunUpdateTransaction(); err != nil || !ran {
		t.Fatalf("commit %d: ran=%v err=%v", e.n, ran, err)
	}
}

// applyOne commits the next scripted transaction to a source (no
// mediator involvement).
func (e *walEnv) applyOne(t testing.TB) {
	t.Helper()
	e.n++
	d := delta.New()
	if e.n%3 == 0 {
		d.Insert("S", relation.T(int64(2000+e.n), int64(e.n%9), int64(e.n%60)))
		e.db2.MustApply(d)
		return
	}
	d.Insert("R", relation.T(int64(1000+e.n), int64(2000+3*e.n), int64(e.n%7), int64(100)))
	e.db1.MustApply(d)
}

// snapBytes serializes the mediator's state — the byte-identical oracle
// comparison (persist output is deterministic: sorted rows, sorted JSON
// keys).
func snapBytes(t testing.TB, med *core.Mediator) []byte {
	t.Helper()
	snap, err := med.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := persist.Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openManager(t testing.TB, dir string, mut func(*Options)) *Manager {
	t.Helper()
	opts := Options{Dir: dir, Policy: SyncCommit, CompactEvery: -1}
	if mut != nil {
		mut(&opts)
	}
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// lastSegment returns the path of the highest-based segment file.
func lastSegment(t testing.TB, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log") && name > last {
			last = name
		}
	}
	if last == "" {
		t.Fatal("no segment file in", dir)
	}
	return filepath.Join(dir, last)
}

func countFiles(t testing.TB, dir, prefix string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			n++
		}
	}
	return n
}

// TestManagerLogsAndRecovers is the tentpole invariant end to end: boot,
// commit, crash without warning, recover — and the recovered mediator is
// byte-identical to the pre-crash one.
func TestManagerLogsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	base := med1.StoreVersion()

	mgr1 := openManager(t, dir, nil)
	if has, err := mgr1.HasState(); err != nil || has {
		t.Fatalf("fresh dir HasState = %v, %v", has, err)
	}
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	const commits = 5
	for i := 0; i < commits; i++ {
		e.commit(t, med1)
	}
	want := snapBytes(t, med1)
	wantVersion := med1.StoreVersion()
	mgr1.Kill() // power cut: no Close, no final checkpoint

	med2 := e.newMediator(t)
	mgr2 := openManager(t, dir, nil)
	if has, err := mgr2.HasState(); err != nil || !has {
		t.Fatalf("HasState = %v, %v after crash", has, err)
	}
	info, err := mgr2.Recover(med2)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointVersion != base || info.Version != wantVersion ||
		info.Replayed != commits || info.TornTail || info.Stopped != "" {
		t.Fatalf("recovery info %+v, want ckpt=%d version=%d replayed=%d clean", info, base, wantVersion, commits)
	}
	if got := snapBytes(t, med2); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs from pre-crash state:\n%s\nwant\n%s", got, want)
	}

	// The recovered mediator is live: new commits log and survive a
	// clean restart with nothing to replay.
	e.connect(med2)
	e.commit(t, med2)
	want2 := snapBytes(t, med2)
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}
	med3 := e.newMediator(t)
	mgr3 := openManager(t, dir, nil)
	info, err = mgr3.Recover(med3)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 0 || info.Version != wantVersion+1 {
		t.Fatalf("post-Close recovery info %+v, want replayed=0 version=%d", info, wantVersion+1)
	}
	if got := snapBytes(t, med3); !bytes.Equal(got, want2) {
		t.Fatal("state after clean restart differs")
	}
	mgr3.Kill()
}

// TestManagerTornTailRecovery chops bytes off the live segment — the
// classic mid-append power cut — and recovery must stop cleanly at the
// last complete record.
func TestManagerTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	mgr1 := openManager(t, dir, nil)
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	// Snapshot after every commit: byVersion[v] is the oracle at v.
	byVersion := map[uint64][]byte{med1.StoreVersion(): snapBytes(t, med1)}
	for i := 0; i < 4; i++ {
		e.commit(t, med1)
		byVersion[med1.StoreVersion()] = snapBytes(t, med1)
	}
	final := med1.StoreVersion()
	mgr1.Kill()

	// Tear the tail: drop 7 bytes from the end of the last record.
	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	med2 := e.newMediator(t)
	info, err := openManager(t, dir, nil).Recover(med2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.TornTail || info.Version != final-1 || info.Replayed != 3 {
		t.Fatalf("recovery info %+v, want torn tail at version %d", info, final-1)
	}
	if got := snapBytes(t, med2); !bytes.Equal(got, byVersion[final-1]) {
		t.Fatal("recovered state differs from oracle at the torn-tail version")
	}
}

// TestManagerBitFlipStopsReplay flips one byte in the middle of the
// segment: every record before it replays, everything after is
// discarded, and the run is reported torn.
func TestManagerBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	mgr1 := openManager(t, dir, nil)
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	byVersion := map[uint64][]byte{}
	for i := 0; i < 6; i++ {
		e.commit(t, med1)
		byVersion[med1.StoreVersion()] = snapBytes(t, med1)
	}
	mgr1.Kill()

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	med2 := e.newMediator(t)
	info, err := openManager(t, dir, nil).Recover(med2)
	if err != nil {
		t.Fatal(err)
	}
	if !info.TornTail {
		t.Fatalf("recovery info %+v, want TornTail", info)
	}
	if info.Replayed == 0 || info.Replayed >= 6 {
		t.Fatalf("replayed %d records, want a proper prefix of 6", info.Replayed)
	}
	want, ok := byVersion[info.Version]
	if !ok {
		t.Fatalf("recovered to version %d, never published", info.Version)
	}
	if got := snapBytes(t, med2); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs from oracle at the stop version")
	}
}

// TestManagerFsyncFailureAbortsCommit: under SyncCommit a failed fsync
// aborts the transaction (nothing published), the suspect record is
// rolled back (no duplicate on retry), and the retry commits.
func TestManagerFsyncFailureAbortsCommit(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	inj := resilience.NewFileInjector()
	mgr1 := openManager(t, dir, func(o *Options) {
		o.WrapFile = func(f File) File { return inj.Wrap(f) }
	})
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	e.commit(t, med1)
	before := med1.StoreVersion()

	inj.FailSyncNext(1)
	e.applyOne(t)
	if _, err := med1.RunUpdateTransaction(); !errors.Is(err, resilience.ErrSyncFailed) {
		t.Fatalf("err = %v, want ErrSyncFailed", err)
	}
	if got := med1.StoreVersion(); got != before {
		t.Fatalf("version advanced to %d despite failed fsync", got)
	}
	if n := med1.QueueLen(); n != 1 {
		t.Fatalf("queue len %d after aborted commit, want 1", n)
	}
	// Retry commits; crash; recovery sees exactly one record per version.
	if ran, err := med1.RunUpdateTransaction(); err != nil || !ran {
		t.Fatalf("retry: ran=%v err=%v", ran, err)
	}
	want := snapBytes(t, med1)
	mgr1.Kill()

	med2 := e.newMediator(t)
	info, err := openManager(t, dir, nil).Recover(med2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 2 || info.Version != before+1 {
		t.Fatalf("recovery info %+v, want 2 records to version %d", info, before+1)
	}
	if got := snapBytes(t, med2); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after fsync-failure retry")
	}
}

// TestManagerShortWriteHeals: a torn append (ENOSPC/EINTR-style) rolls
// back in place; the log stays scannable and the retry lands.
func TestManagerShortWriteHeals(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	inj := resilience.NewFileInjector()
	mgr1 := openManager(t, dir, func(o *Options) {
		o.WrapFile = func(f File) File { return inj.Wrap(f) }
	})
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	e.commit(t, med1)

	inj.ShortWriteNext(1, 9) // tear mid-header
	e.applyOne(t)
	if _, err := med1.RunUpdateTransaction(); !errors.Is(err, resilience.ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
	if ran, err := med1.RunUpdateTransaction(); err != nil || !ran {
		t.Fatalf("retry: ran=%v err=%v", ran, err)
	}
	e.commit(t, med1)
	want := snapBytes(t, med1)
	wantVersion := med1.StoreVersion()
	mgr1.Kill()

	med2 := e.newMediator(t)
	info, err := openManager(t, dir, nil).Recover(med2)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornTail || info.Version != wantVersion {
		t.Fatalf("recovery info %+v, want clean log to version %d", info, wantVersion)
	}
	if got := snapBytes(t, med2); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after healed short write")
	}
}

// TestManagerCheckpointRetiresLog: an explicit checkpoint rotates,
// leaves exactly one checkpoint + one live segment, and recovery
// replays only records logged after it.
func TestManagerCheckpointRetiresLog(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	mgr1 := openManager(t, dir, nil)
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		e.commit(t, med1)
	}
	if err := mgr1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := countFiles(t, dir, "checkpoint-"); n != 1 {
		t.Fatalf("%d checkpoints after compaction, want 1", n)
	}
	if n := countFiles(t, dir, "wal-"); n != 1 {
		t.Fatalf("%d segments after compaction, want 1", n)
	}
	for i := 0; i < 2; i++ {
		e.commit(t, med1)
	}
	want := snapBytes(t, med1)
	mgr1.Kill()

	med2 := e.newMediator(t)
	info, err := openManager(t, dir, nil).Recover(med2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 2 || info.Skipped != 0 {
		t.Fatalf("recovery info %+v, want exactly the 2 post-checkpoint records", info)
	}
	if got := snapBytes(t, med2); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after compaction")
	}
}

// TestManagerPeriodicCompaction: CompactEvery triggers the async
// compaction goroutine, which retires the log without being asked.
func TestManagerPeriodicCompaction(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	base := med1.StoreVersion()
	mgr1 := openManager(t, dir, func(o *Options) { o.CompactEvery = 2 })
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	defer mgr1.Kill()
	for i := 0; i < 6; i++ {
		e.commit(t, med1)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mgr1.mu.Lock()
		ckpt := mgr1.ckptVer
		mgr1.mu.Unlock()
		if ckpt >= base+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction never advanced the checkpoint past %d", ckpt)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecoverFallsBackToOlderCheckpoint: a corrupt newest checkpoint is
// skipped and recovery restarts from its predecessor plus the log.
func TestRecoverFallsBackToOlderCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	base := med1.StoreVersion()
	mgr1 := openManager(t, dir, nil)
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		e.commit(t, med1)
	}
	want := snapBytes(t, med1)
	wantVersion := med1.StoreVersion()
	mgr1.Kill()

	// A corrupt "newer" checkpoint appears (torn at rest).
	bogus := filepath.Join(dir, fmt.Sprintf("checkpoint-%016d.snap", wantVersion+10))
	if err := os.WriteFile(bogus, []byte("%SQRLSNAP v3 crc32c=deadbeef len=4\nxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}

	med2 := e.newMediator(t)
	info, err := openManager(t, dir, nil).Recover(med2)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointVersion != base || info.Version != wantVersion || info.Replayed != 3 {
		t.Fatalf("recovery info %+v, want fallback to ckpt %d and full replay", info, base)
	}
	if got := snapBytes(t, med2); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after checkpoint fallback")
	}
}

// TestRecoverAllCheckpointsCorrupt: when no checkpoint is readable,
// recovery refuses loudly instead of inventing an empty store.
func TestRecoverAllCheckpointsCorrupt(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	mgr1 := openManager(t, dir, nil)
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	e.commit(t, med1)
	mgr1.Kill()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasPrefix(ent.Name(), "checkpoint-") {
			if err := os.WriteFile(filepath.Join(dir, ent.Name()), []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	med2 := e.newMediator(t)
	if _, err := openManager(t, dir, nil).Recover(med2); err == nil {
		t.Fatal("Recover succeeded with every checkpoint corrupt")
	}
}

// TestStartRefusesExistingState: booting fresh over a directory that
// holds a previous life's state must be an explicit error.
func TestStartRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	mgr1 := openManager(t, dir, nil)
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	mgr1.Kill()
	if err := openManager(t, dir, nil).Start(e.newMediator(t)); err == nil {
		t.Fatal("Start succeeded over an existing WAL directory")
	}
	med2 := e.newMediator(t)
	if _, err := openManager(t, t.TempDir(), nil).Recover(med2); err == nil {
		t.Fatal("Recover succeeded on a directory without state")
	}
}

// TestBarrierStopsReplay: a resync publish logs a barrier; recovery
// stops there instead of replaying across the unreplayable publish.
func TestBarrierStopsReplay(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	// Disable compaction entirely so the barrier stays in the log tail
	// (normally a barrier schedules an immediate checkpoint that retires
	// it; killing the manager right after leaves it visible).
	mgr1 := openManager(t, dir, nil)
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}
	e.commit(t, med1)
	preBarrier := snapBytes(t, med1)
	preVersion := med1.StoreVersion()

	med1.QuarantineSource("db1", "test")
	e.applyOne(t) // lands while quarantined
	if err := med1.ResyncSource("db1"); err != nil {
		t.Fatal(err)
	}
	mgr1.Kill() // crash before the barrier-triggered checkpoint lands

	med2 := e.newMediator(t)
	info, err := openManager(t, dir, nil).Recover(med2)
	if err != nil {
		t.Fatal(err)
	}
	// Either the barrier stopped replay at the pre-resync version (the
	// barrier-triggered checkpoint lost the race with the crash), or the
	// checkpoint landed and recovery starts at the resync version. Both
	// are consistent; replaying PAST the barrier would not be.
	switch {
	case strings.HasPrefix(info.Stopped, "barrier:resync:db1") && info.Version == preVersion:
		if got := snapBytes(t, med2); !bytes.Equal(got, preBarrier) {
			t.Fatal("recovered state differs from pre-barrier oracle")
		}
	case info.Stopped == "" && info.Version > preVersion && info.Replayed == 0:
		// Checkpoint covered the resync publish.
	default:
		t.Fatalf("recovery info %+v, want barrier stop at %d or checkpoint past it", info, preVersion)
	}
}
