package wal

import (
	"fmt"
	"testing"

	"squirrel/internal/core"
)

// benchRecord builds one realistic commit record by running a live
// transaction through a recording commit log.
type recLog struct{ recs []*core.CommitRecord }

func (l *recLog) LogCommit(rec *core.CommitRecord) error {
	cp := *rec
	cp.Reflect = rec.Reflect.Clone()
	cp.NewRef = rec.NewRef.Clone()
	l.recs = append(l.recs, &cp)
	return nil
}
func (l *recLog) LogBarrier(uint64, string) error { return nil }
func (l *recLog) Sync() error                     { return nil }

func captureRecords(b *testing.B, e *walEnv, med *core.Mediator, n int) []*core.CommitRecord {
	b.Helper()
	rec := &recLog{}
	med.SetCommitLog(rec)
	for i := 0; i < n; i++ {
		e.applyOne(b)
		if ran, err := med.RunUpdateTransaction(); err != nil || !ran {
			b.Fatalf("txn %d: ran=%v err=%v", i, ran, err)
		}
	}
	med.SetCommitLog(nil)
	return rec.recs
}

// BenchmarkWALLogCommit measures one logged commit — encode, frame,
// write — under each sync policy. The commit/none gap is the price of
// one fsync; SyncBatch amortizes it (see BenchmarkWALGroupCommit).
func BenchmarkWALLogCommit(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy SyncPolicy
	}{{"none", SyncNone}, {"fsync-per-commit", SyncCommit}} {
		b.Run(tc.name, func(b *testing.B) {
			e := newWalEnv(b)
			med := e.startFresh(b)
			rec := captureRecords(b, e, med, 1)[0]
			mgr := openManager(b, b.TempDir(), func(o *Options) { o.Policy = tc.policy })
			if err := mgr.Start(med); err != nil {
				b.Fatal(err)
			}
			defer mgr.Kill()
			med.SetCommitLog(nil) // drive the manager directly
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mgr.LogCommit(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALGroupCommit measures the group-commit amortization: a
// batch of appends made durable by ONE Sync, per batch size. ns/op is
// per record; the fsync cost fades as the batch grows.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			e := newWalEnv(b)
			med := e.startFresh(b)
			rec := captureRecords(b, e, med, 1)[0]
			mgr := openManager(b, b.TempDir(), func(o *Options) { o.Policy = SyncBatch })
			if err := mgr.Start(med); err != nil {
				b.Fatal(err)
			}
			defer mgr.Kill()
			med.SetCommitLog(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mgr.LogCommit(rec); err != nil {
					b.Fatal(err)
				}
				if (i+1)%batch == 0 {
					if err := mgr.Sync(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkWALReplay measures recovery's replay rate: records re-applied
// per second through the serial reference kernel, decode included.
func BenchmarkWALReplay(b *testing.B) {
	const records = 64
	e := newWalEnv(b)
	med := e.startFresh(b)
	base, err := med.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	recs := captureRecords(b, e, med, records)
	// Pre-encode: replay reads frames off disk, so decode is on the
	// clock; the encode below is setup, not measured.
	var frames [][]byte
	for _, rec := range recs {
		payload, err := encodeCommit(rec)
		if err != nil {
			b.Fatal(err)
		}
		frames = append(frames, appendRecord(nil, TypeCommit, payload))
	}
	b.ResetTimer()
	replayed := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		med2 := e.newMediator(b)
		if err := med2.Restore(base); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, frame := range frames {
			_, payload, _, err := DecodeRecord(frame)
			if err != nil {
				b.Fatal(err)
			}
			rec, err := decodeCommit(payload)
			if err != nil {
				b.Fatal(err)
			}
			if err := med2.ReplayCommitRecord(rec); err != nil {
				b.Fatal(err)
			}
			replayed++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(replayed)/b.Elapsed().Seconds(), "records/s")
}
