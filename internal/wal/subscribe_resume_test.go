package wal

import (
	"testing"

	"squirrel/internal/core"
	"squirrel/internal/relation"
)

// TestSubscriptionResumeAfterRecovery pins the WAL half of the
// resume-from-version contract: recovery replays committed transactions
// through the normal commit path, so the subscription registry's
// per-export rings are rehydrated before any listener comes up — a
// subscriber reconnecting with its pre-crash position receives exactly
// the delta frames it missed, no snapshot. A resume point older than the
// recovered ring (e.g. after a checkpoint truncated the tail) degrades to
// a snapshot instead of silently skipping versions.
func TestSubscriptionResumeAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	e := newWalEnv(t)
	med1 := e.startFresh(t)
	mgr1 := openManager(t, dir, nil)
	if err := mgr1.Start(med1); err != nil {
		t.Fatal(err)
	}

	// A subscriber tracks the export up to the pre-crash version.
	sub, err := med1.Subscribe("T", core.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var replica *relation.Relation
	f, rerr := sub.Recv()
	if rerr != nil || f.Kind != core.SubSnapshot {
		t.Fatalf("first frame: %+v %v", f, rerr)
	}
	replica = f.Snapshot.Clone()
	for i := 0; i < 3; i++ {
		e.commit(t, med1)
		f, err := sub.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Delta.ApplyTo(replica, false); err != nil {
			t.Fatal(err)
		}
	}
	resumeAt := sub.Delivered()
	sub.Close()

	// More commits the subscriber never hears about, then a power cut.
	for i := 0; i < 4; i++ {
		e.commit(t, med1)
	}
	wantVersion := med1.StoreVersion()
	mgr1.Kill()

	// Recover: replay runs the commit path, so the rings cover everything
	// since the checkpoint — including the subscriber's missed window.
	med2 := e.newMediator(t)
	mgr2 := openManager(t, dir, nil)
	info, err := mgr2.Recover(med2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != wantVersion || info.Replayed != 7 {
		t.Fatalf("recovery info %+v, want version=%d replayed=7", info, wantVersion)
	}
	sub2, err := med2.Subscribe("T", core.SubscribeOptions{FromVersion: resumeAt})
	if err != nil {
		t.Fatal(err)
	}
	prev := resumeAt
	for i := 0; i < 4; i++ {
		f, ok, err := sub2.TryRecv()
		if err != nil || !ok {
			t.Fatalf("resume frame %d: ok=%v err=%v", i, ok, err)
		}
		if f.Kind != core.SubDelta || f.First != prev+1 {
			t.Fatalf("resume frame %d: kind=%v first=%d (prev %d)", i, f.Kind, f.First, prev)
		}
		prev = f.Version
		if err := f.Delta.ApplyTo(replica, false); err != nil {
			t.Fatal(err)
		}
	}
	if prev != wantVersion {
		t.Fatalf("resumed to v%d, want v%d", prev, wantVersion)
	}
	if want := med2.StoreSnapshot("T"); !replica.Equal(want) {
		t.Fatalf("resumed replica differs:\n%s\nwant\n%s", replica, want)
	}
	sub2.Close()

	// A clean shutdown checkpoints at the tip: the next recovery replays
	// nothing, the rings are empty, and the same resume point now falls
	// back to a snapshot of the recovered state.
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}
	med3 := e.newMediator(t)
	mgr3 := openManager(t, dir, nil)
	if info, err = mgr3.Recover(med3); err != nil || info.Replayed != 0 {
		t.Fatalf("post-Close recovery: %+v %v", info, err)
	}
	defer mgr3.Close()
	sub3, err := med3.Subscribe("T", core.SubscribeOptions{FromVersion: resumeAt})
	if err != nil {
		t.Fatal(err)
	}
	defer sub3.Close()
	f, ok, err := sub3.TryRecv()
	if err != nil || !ok || f.Kind != core.SubSnapshot || f.Version != wantVersion {
		t.Fatalf("off-ring resume: kind=%v v=%d ok=%v err=%v", f.Kind, f.Version, ok, err)
	}
	if st := med3.Stats(); st.SubSnapshotResyncs == 0 {
		t.Fatal("snapshot fallback not counted as a resync")
	}
	if !f.Snapshot.Equal(med3.StoreSnapshot("T")) {
		t.Fatal("fallback snapshot differs from recovered store")
	}
}
