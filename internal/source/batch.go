package source

import (
	"sync"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// BatchingAnnouncer implements the source-side announcement policy behind
// the paper's ann_delay (§7): instead of announcing every commit
// immediately, the source accumulates commits and periodically publishes
// ONE message holding their smash — still "all the updates that reflect
// the difference between two database states in a single undividable
// message" (§4), stamped with the latest covered commit time, delivered in
// order.
//
// Wire it between a DB and its consumers:
//
//	ba := source.NewBatchingAnnouncer(db, 10) // flush every 10 commits
//	ba.Subscribe(mediator.OnAnnouncement)
//
// Flush publishes whatever is pending (call it on a timer for time-based
// policies).
type BatchingAnnouncer struct {
	db    *DB
	every int

	mu        sync.Mutex
	pending   *delta.Delta
	count     int
	last      clock.Time
	firstSeq  uint64
	lastSeq   uint64
	published clock.Time
	handlers  []Handler
}

// NewBatchingAnnouncer subscribes to db and batches its announcements,
// flushing automatically after every `every` commits (0 means manual
// flushing only).
func NewBatchingAnnouncer(db *DB, every int) *BatchingAnnouncer {
	ba := &BatchingAnnouncer{db: db, every: every, pending: delta.New(), published: db.Born()}
	db.Subscribe(ba.onCommit)
	return ba
}

// Subscribe registers a downstream handler for the batched announcements.
func (ba *BatchingAnnouncer) Subscribe(h Handler) {
	ba.mu.Lock()
	defer ba.mu.Unlock()
	ba.handlers = append(ba.handlers, h)
}

func (ba *BatchingAnnouncer) onCommit(a Announcement) {
	ba.mu.Lock()
	ba.pending.Smash(a.Delta)
	ba.count++
	ba.last = a.Time
	if ba.firstSeq == 0 {
		ba.firstSeq = a.FirstSeq
	}
	ba.lastSeq = a.Seq
	flush := ba.every > 0 && ba.count >= ba.every
	ba.mu.Unlock()
	if flush {
		ba.Flush()
	}
}

// Flush publishes the pending batch (no-op when nothing is pending).
// Smash may have annihilated everything (a row inserted and deleted within
// the batch); an empty batch still advances the announced time so the
// mediator's ref′ moves forward.
func (ba *BatchingAnnouncer) Flush() {
	ba.mu.Lock()
	if ba.count == 0 {
		ba.mu.Unlock()
		return
	}
	out := Announcement{
		Source: ba.db.Name(), Time: ba.last, Delta: ba.pending,
		Seq: ba.lastSeq, FirstSeq: ba.firstSeq,
	}
	ba.pending = delta.New()
	ba.count = 0
	ba.firstSeq, ba.lastSeq = 0, 0
	ba.published = ba.last
	handlers := append([]Handler(nil), ba.handlers...)
	ba.mu.Unlock()
	for _, h := range handlers {
		h(out)
	}
}

// Pending reports how many commits await flushing.
func (ba *BatchingAnnouncer) Pending() int {
	ba.mu.Lock()
	defer ba.mu.Unlock()
	return ba.count
}

// Published returns the commit time of the last flushed batch (the
// database's birth time before any flush): the state the source has made
// visible downstream.
func (ba *BatchingAnnouncer) Published() clock.Time {
	ba.mu.Lock()
	defer ba.mu.Unlock()
	return ba.published
}

// PublishedConn answers mediator queries from the source's PUBLISHED
// state — the last flushed batch — rather than its live state. This is
// required for correctness when announcements are batched: Eager
// Compensation assumes every commit reflected in a poll answer has already
// been announced (the in-order message assumption of §4), which live reads
// would violate for commits still sitting in the batch buffer.
// PublishedConn satisfies core.SourceConn.
type PublishedConn struct {
	DB *DB
	BA *BatchingAnnouncer
}

// Name implements the connection interface.
func (c PublishedConn) Name() string { return c.DB.Name() }

// QueryMulti answers from the published snapshot.
func (c PublishedConn) QueryMulti(specs []QuerySpec) ([]*relation.Relation, clock.Time, error) {
	return c.DB.QueryMultiAt(specs, c.BA.Published())
}
