package source

import (
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

func newTestDB(t *testing.T) (*DB, *clock.Logical) {
	t.Helper()
	clk := &clock.Logical{}
	db := NewDB("db1", clk)
	schema := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindInt}}, "a")
	r := relation.NewSet(schema)
	r.Insert(relation.T(1, 10))
	r.Insert(relation.T(2, 20))
	if err := db.LoadRelation(r); err != nil {
		t.Fatal(err)
	}
	return db, clk
}

func TestCreateAndLoad(t *testing.T) {
	db, _ := newTestDB(t)
	if db.Name() != "db1" {
		t.Errorf("name")
	}
	if got := db.Relations(); len(got) != 1 || got[0] != "R" {
		t.Errorf("relations = %v", got)
	}
	s, err := db.Schema("R")
	if err != nil || s.Arity() != 2 {
		t.Errorf("schema: %v %v", s, err)
	}
	if _, err := db.Schema("X"); err == nil {
		t.Errorf("unknown schema")
	}
	other := relation.MustSchema("Q", []relation.Attribute{{Name: "x", Type: relation.KindInt}})
	if err := db.CreateRelation(other, relation.Bag); err != nil {
		t.Errorf("create: %v", err)
	}
	if err := db.CreateRelation(other, relation.Bag); err == nil {
		t.Errorf("duplicate create")
	}
	if err := db.LoadRelation(relation.NewSet(relation.MustSchema("R",
		[]relation.Attribute{{Name: "a", Type: relation.KindInt}}))); err == nil {
		t.Errorf("duplicate load")
	}
}

func TestApplyAnnouncesInOrder(t *testing.T) {
	db, _ := newTestDB(t)
	var anns []Announcement
	db.Subscribe(func(a Announcement) { anns = append(anns, a) })

	d1 := delta.New()
	d1.Insert("R", relation.T(3, 30))
	t1 := db.MustApply(d1)
	d2 := delta.New()
	d2.Delete("R", relation.T(1, 10))
	t2 := db.MustApply(d2)

	if len(anns) != 2 || anns[0].Time != t1 || anns[1].Time != t2 || t1 >= t2 {
		t.Fatalf("announcements: %v (t1=%d t2=%d)", anns, t1, t2)
	}
	if anns[0].Source != "db1" {
		t.Errorf("source name in announcement")
	}
	cur, _ := db.Current("R")
	if cur.Card() != 2 || !cur.Contains(relation.T(3, 30)) || cur.Contains(relation.T(1, 10)) {
		t.Errorf("state after commits: %s", cur)
	}
	if db.Stats().Commits != 2 {
		t.Errorf("stats: %+v", db.Stats())
	}
	if len(db.Log()) != 2 {
		t.Errorf("log: %v", db.Log())
	}
}

func TestApplyAtomicOnFailure(t *testing.T) {
	db, _ := newTestDB(t)
	bad := delta.New()
	bad.Insert("R", relation.T(9, 90))
	bad.Delete("R", relation.T(777, 7)) // not present → strict failure
	if _, err := db.Apply(bad); err == nil {
		t.Fatalf("redundant delete must fail")
	}
	cur, _ := db.Current("R")
	if cur.Contains(relation.T(9, 90)) {
		t.Fatalf("failed transaction leaked effects: %s", cur)
	}
	unknown := delta.New()
	unknown.Insert("ZZ", relation.T(1))
	if _, err := db.Apply(unknown); err == nil {
		t.Errorf("unknown relation must fail")
	}
}

func TestQueryAndQueryMulti(t *testing.T) {
	db, _ := newTestDB(t)
	ans, asOf, err := db.Query(QuerySpec{Rel: "R", Attrs: []string{"b"},
		Cond: algebra.Gt(algebra.A("a"), algebra.CInt(1))})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Card() != 1 || !ans.Contains(relation.T(20)) {
		t.Errorf("answer: %s", ans)
	}
	if asOf <= db.Born() {
		t.Errorf("asOf must be a read instant after birth")
	}
	// Multi: both answers from one instant.
	answers, _, err := db.QueryMulti([]QuerySpec{{Rel: "R"}, {Rel: "R", Attrs: []string{"a"}}})
	if err != nil || len(answers) != 2 {
		t.Fatalf("multi: %v %v", answers, err)
	}
	if answers[0].Card() != 2 || answers[1].Card() != 2 {
		t.Errorf("multi answers: %s %s", answers[0], answers[1])
	}
	if _, _, err := db.Query(QuerySpec{Rel: "ZZ"}); err == nil {
		t.Errorf("unknown relation query")
	}
	if _, _, err := db.Query(QuerySpec{Rel: "R", Attrs: []string{"zz"}}); err == nil {
		t.Errorf("unknown attribute query")
	}
	if _, _, err := db.Query(QuerySpec{Rel: "R", Cond: algebra.Gt(algebra.A("zz"), algebra.CInt(0))}); err == nil {
		t.Errorf("bad condition query")
	}
}

func TestStateAtReplay(t *testing.T) {
	db, _ := newTestDB(t)
	t0 := db.Born()
	d1 := delta.New()
	d1.Insert("R", relation.T(3, 30))
	t1 := db.MustApply(d1)
	d2 := delta.New()
	d2.Delete("R", relation.T(2, 20))
	t2 := db.MustApply(d2)

	s0, err := db.StateAt("R", t0)
	if err != nil || s0.Card() != 2 {
		t.Errorf("state at birth: %v %v", s0, err)
	}
	s1, _ := db.StateAt("R", t1)
	if s1.Card() != 3 || !s1.Contains(relation.T(3, 30)) {
		t.Errorf("state at t1: %s", s1)
	}
	s2, _ := db.StateAt("R", t2)
	if s2.Card() != 2 || s2.Contains(relation.T(2, 20)) {
		t.Errorf("state at t2: %s", s2)
	}
	if _, err := db.StateAt("ZZ", t1); err == nil {
		t.Errorf("unknown relation replay")
	}
	if db.LastCommit() != t2 {
		t.Errorf("LastCommit = %d, want %d", db.LastCommit(), t2)
	}
	if db.LastCommitAtOrBefore(t1) != t1 || db.LastCommitAtOrBefore(t0) != t0 {
		t.Errorf("LastCommitAtOrBefore wrong")
	}
}

func TestQueryMultiAt(t *testing.T) {
	db, _ := newTestDB(t)
	t0 := db.Born()
	d := delta.New()
	d.Insert("R", relation.T(3, 30))
	db.MustApply(d)

	answers, asOf, err := db.QueryMultiAt([]QuerySpec{{Rel: "R"}}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if asOf != t0 || answers[0].Card() != 2 {
		t.Errorf("historical answer: asOf=%d %s", asOf, answers[0])
	}
	if _, _, err := db.QueryMultiAt([]QuerySpec{{Rel: "ZZ"}}, t0); err == nil {
		t.Errorf("unknown relation")
	}
}

func TestMustApplyPanics(t *testing.T) {
	db, _ := newTestDB(t)
	defer func() {
		if recover() == nil {
			t.Errorf("MustApply should panic")
		}
	}()
	bad := delta.New()
	bad.Insert("ZZ", relation.T(1))
	db.MustApply(bad)
}
