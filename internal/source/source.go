// Package source implements the autonomous source databases of §4: each DB
// commits local transactions, assigns them globally unique timestamps,
// announces per-transaction net updates to subscribers in commit order
// (the "single undividable message" requirement), answers snapshot
// queries, and can replay any historical state for the correctness
// checkers.
//
// Message-ordering contract (needed for the Eager Compensation Algorithm,
// §6.3): announcements and query answers produced by one DB are emitted
// under the same lock, so any in-process or FIFO transport preserves the
// property the paper assumes — a query answer is received after the
// announcements of every transaction it reflects.
package source

import (
	"fmt"
	"sync"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// Announcement is the net update of one committed transaction.
//
// Seq and FirstSeq carry the per-source commit sequence numbers covered by
// this announcement: [FirstSeq, Seq] for a batch, FirstSeq == Seq for a
// single commit. Sequence numbers start at 1 and are dense in commit
// order, so a receiver that last saw seq n must see FirstSeq == n+1 next;
// anything larger proves announcements were lost (a gap). Zero means
// "unknown" — producers that predate sequencing — and disables gap
// detection for that announcement.
// Reflect and Barrier exist for federated tiers (a mediator re-announcing
// its own commits as a source; internal/federate). Reflect, when non-nil,
// is the announcing tier's ref′ vector at Time in base-source
// coordinates; plain sources leave it nil. Barrier, when non-empty, marks
// a publish that was NOT derived from the previous announcement by a
// delta (a downstream resync or re-annotation): it carries no Delta, and
// consumers must quarantine the stream and resynchronize from a snapshot.
type Announcement struct {
	Source   string
	Time     clock.Time
	Delta    *delta.Delta
	Seq      uint64
	FirstSeq uint64
	Reflect  clock.Vector
	Barrier  string
}

// Handler receives announcements; called synchronously at commit, in
// commit order.
type Handler func(Announcement)

// Commit is one entry of the transaction log.
type Commit struct {
	Time  clock.Time
	Delta *delta.Delta
}

// DB is an autonomous source database.
type DB struct {
	name  string
	clock clock.Clock

	mu       sync.Mutex
	rels     map[string]*relation.Relation
	initial  map[string]*relation.Relation
	log      []Commit
	born     clock.Time
	handlers []Handler

	// Stats counts operations, for the experiments.
	stats Stats
}

// Stats aggregates operation counters.
type Stats struct {
	Commits      int
	Queries      int
	TuplesServed int
}

// NewDB creates an empty source database named name stamping events with
// the given clock.
func NewDB(name string, c clock.Clock) *DB {
	return &DB{
		name:    name,
		clock:   c,
		rels:    make(map[string]*relation.Relation),
		initial: make(map[string]*relation.Relation),
		born:    c.Now(),
	}
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// Born returns the creation timestamp; states are defined from this time.
func (db *DB) Born() clock.Time { return db.born }

// CreateRelation adds an empty relation.
func (db *DB) CreateRelation(schema *relation.Schema, sem relation.Semantics) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.rels[schema.Name()]; dup {
		return fmt.Errorf("source %s: relation %q already exists", db.name, schema.Name())
	}
	db.rels[schema.Name()] = relation.New(schema, sem)
	db.initial[schema.Name()] = relation.New(schema, sem)
	return nil
}

// LoadRelation installs rel (with its current contents) as the initial
// state of a relation.
func (db *DB) LoadRelation(rel *relation.Relation) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	name := rel.Schema().Name()
	if _, dup := db.rels[name]; dup {
		return fmt.Errorf("source %s: relation %q already exists", db.name, name)
	}
	db.rels[name] = rel.Clone()
	db.initial[name] = rel.Clone()
	return nil
}

// Relations returns the relation names (unsorted).
func (db *DB) Relations() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	return out
}

// Schema returns the schema of the named relation.
func (db *DB) Schema(rel string) (*relation.Schema, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.rels[rel]
	if !ok {
		return nil, fmt.Errorf("source %s: unknown relation %q", db.name, rel)
	}
	return r.Schema(), nil
}

// Subscribe registers a handler for future announcements. Handlers run
// synchronously inside the commit, so they must be fast (enqueue and
// return) and must not call back into the DB.
func (db *DB) Subscribe(h Handler) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.handlers = append(db.handlers, h)
}

// Apply atomically commits the transaction described by d (strictly: every
// atom must be non-redundant), assigns it a timestamp, logs it, and
// announces the net update. It returns the commit time.
func (db *DB) Apply(d *delta.Delta) (clock.Time, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	// Pre-validate against a scratch copy so a failed transaction leaves
	// no partial effects.
	for _, relName := range d.Relations() {
		r, ok := db.rels[relName]
		if !ok {
			return 0, fmt.Errorf("source %s: transaction touches unknown relation %q", db.name, relName)
		}
		scratch := r.Clone()
		if err := d.Get(relName).ApplyTo(scratch, true); err != nil {
			return 0, fmt.Errorf("source %s: %w", db.name, err)
		}
	}
	for _, relName := range d.Relations() {
		if err := d.Get(relName).ApplyTo(db.rels[relName], true); err != nil {
			// Unreachable after pre-validation; surface loudly if not.
			panic(fmt.Sprintf("source %s: apply after validation failed: %v", db.name, err))
		}
	}
	t := db.clock.Now()
	snapshot := d.Clone()
	db.log = append(db.log, Commit{Time: t, Delta: snapshot})
	db.stats.Commits++
	// The commit's position in the log is its sequence number (1-based);
	// ReplaySince recomputes the same numbers from log indices.
	seq := uint64(len(db.log))
	ann := Announcement{Source: db.name, Time: t, Delta: snapshot, Seq: seq, FirstSeq: seq}
	for _, h := range db.handlers {
		h(ann)
	}
	return t, nil
}

// MustApply is Apply that panics on error (examples and tests).
func (db *DB) MustApply(d *delta.Delta) clock.Time {
	t, err := db.Apply(d)
	if err != nil {
		panic(err)
	}
	return t
}

// QuerySpec is one snapshot read: π_Attrs σ_Cond (Rel). Nil Attrs means
// all attributes.
type QuerySpec struct {
	Rel   string
	Attrs []string
	Cond  algebra.Expr
}

// Query answers a single snapshot read. The answer corresponds to the
// database state as of the returned time (the last commit at or before the
// read; Born if none).
func (db *DB) Query(spec QuerySpec) (*relation.Relation, clock.Time, error) {
	res, t, err := db.QueryMulti([]QuerySpec{spec})
	if err != nil {
		return nil, 0, err
	}
	return res[0], t, nil
}

// QueryMulti answers several reads atomically — the "single transaction"
// packaging of §6.3 that guarantees all answers reflect one state. The
// returned time is the read's serialization instant: the answers are
// exactly the database state at that time.
func (db *DB) QueryMulti(specs []QuerySpec) ([]*relation.Relation, clock.Time, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*relation.Relation, len(specs))
	for i, spec := range specs {
		r, ok := db.rels[spec.Rel]
		if !ok {
			return nil, 0, fmt.Errorf("source %s: unknown relation %q", db.name, spec.Rel)
		}
		ans, err := evalSpec(r, spec)
		if err != nil {
			return nil, 0, err
		}
		out[i] = ans
		db.stats.TuplesServed += ans.Len()
	}
	db.stats.Queries++
	return out, db.clock.Now(), nil
}

// QueryMultiAt answers several reads against the historical state at time
// at (replayed from the log). Used by the simulation harness to model
// sources that publish batched snapshots: the answers correspond exactly
// to the state at the returned time (= at).
func (db *DB) QueryMultiAt(specs []QuerySpec, at clock.Time) ([]*relation.Relation, clock.Time, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]*relation.Relation, len(specs))
	for i, spec := range specs {
		init, ok := db.initial[spec.Rel]
		if !ok {
			return nil, 0, fmt.Errorf("source %s: unknown relation %q", db.name, spec.Rel)
		}
		hist := init.Clone()
		for _, c := range db.log {
			if c.Time > at {
				break
			}
			if rd := c.Delta.Get(spec.Rel); rd != nil {
				if err := rd.ApplyTo(hist, true); err != nil {
					return nil, 0, fmt.Errorf("source %s: replay: %w", db.name, err)
				}
			}
		}
		ans, err := evalSpec(hist, spec)
		if err != nil {
			return nil, 0, err
		}
		out[i] = ans
		db.stats.TuplesServed += ans.Len()
	}
	db.stats.Queries++
	return out, at, nil
}

// FirstCommitAfter returns the time of the earliest commit strictly after
// t, and whether one exists.
func (db *DB) FirstCommitAfter(t clock.Time) (clock.Time, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, c := range db.log {
		if c.Time > t {
			return c.Time, true
		}
	}
	return 0, false
}

// LastCommitAtOrBefore returns the time of the latest commit ≤ t (Born if
// none).
func (db *DB) LastCommitAtOrBefore(t clock.Time) clock.Time {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := db.born
	for _, c := range db.log {
		if c.Time > t {
			break
		}
		out = c.Time
	}
	return out
}

// EvalSpec answers one snapshot read (π_Attrs σ_Cond) against an
// arbitrary relation, with the same semantics a DB applies to its own
// state. It never mutates r. Exported for source-protocol backends that
// are not DBs (the federated-mediator exporter).
func EvalSpec(r *relation.Relation, spec QuerySpec) (*relation.Relation, error) {
	return evalSpec(r, spec)
}

func evalSpec(r *relation.Relation, spec QuerySpec) (*relation.Relation, error) {
	attrs := spec.Attrs
	if attrs == nil {
		attrs = r.Schema().AttrNames()
	}
	schema, err := r.Schema().Project(r.Schema().Name(), attrs)
	if err != nil {
		return nil, err
	}
	positions, err := r.Schema().Positions(attrs)
	if err != nil {
		return nil, err
	}
	out := relation.New(schema, relation.Bag)
	var evalErr error
	r.Each(func(t relation.Tuple, n int) bool {
		ok, err := algebra.EvalPred(spec.Cond, r.Schema(), t)
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			out.Add(t.Project(positions), n)
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

func (db *DB) lastCommitLocked() clock.Time {
	if len(db.log) == 0 {
		return db.born
	}
	return db.log[len(db.log)-1].Time
}

// LastCommit returns the time of the most recent commit (Born if none).
func (db *DB) LastCommit() clock.Time {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.lastCommitLocked()
}

// StateAt replays the named relation to its contents as of global time t
// (used by the consistency checker — mediators never call this).
func (db *DB) StateAt(rel string, t clock.Time) (*relation.Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	init, ok := db.initial[rel]
	if !ok {
		return nil, fmt.Errorf("source %s: unknown relation %q", db.name, rel)
	}
	out := init.Clone()
	for _, c := range db.log {
		if c.Time > t {
			break
		}
		if rd := c.Delta.Get(rel); rd != nil {
			if err := rd.ApplyTo(out, true); err != nil {
				return nil, fmt.Errorf("source %s: replay: %w", db.name, err)
			}
		}
	}
	return out, nil
}

// Current returns a snapshot (clone) of the named relation's live state.
func (db *DB) Current(rel string) (*relation.Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.rels[rel]
	if !ok {
		return nil, fmt.Errorf("source %s: unknown relation %q", db.name, rel)
	}
	return r.Clone(), nil
}

// Log returns a copy of the commit log.
func (db *DB) Log() []Commit {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]Commit(nil), db.log...)
}

// Stats returns a copy of the operation counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// ReplaySince re-delivers, in commit order, the announcements of every
// transaction committed strictly after t. A mediator restored from a
// snapshot calls this (via its announcement feed) to catch up on commits
// it missed while down; the mediator's own dedup (announcement time ≤
// ref′) makes over-replay harmless.
func (db *DB) ReplaySince(t clock.Time, h Handler) {
	db.mu.Lock()
	var replay []Announcement
	for i, c := range db.log {
		if c.Time > t {
			seq := uint64(i + 1)
			replay = append(replay, Announcement{
				Source: db.name, Time: c.Time, Delta: c.Delta.Clone(),
				Seq: seq, FirstSeq: seq,
			})
		}
	}
	db.mu.Unlock()
	for _, a := range replay {
		h(a)
	}
}
