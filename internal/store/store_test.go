package store

import (
	"sync"
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/relation"
)

func rel(t *testing.T, name string, vals ...int64) *relation.Relation {
	t.Helper()
	s := relation.MustSchema(name, []relation.Attribute{{Name: "a", Type: relation.KindInt}})
	r := relation.NewSet(s)
	for _, v := range vals {
		r.Insert(relation.T(v))
	}
	return r
}

func TestPublishAndCopyOnWrite(t *testing.T) {
	s := New()
	if s.Current() != nil {
		t.Fatal("empty store has a current version")
	}
	b := s.Begin()
	b.Set("X", rel(t, "X", 1, 2))
	b.Set("Y", rel(t, "Y", 7))
	v1 := s.Publish(b, clock.Vector{"db": 5}, 10)
	if v1.Seq() != 1 || s.Current() != v1 {
		t.Fatalf("v1 seq=%d", v1.Seq())
	}
	if v1.RefOf("db") != 5 || v1.Stamp() != 10 {
		t.Fatalf("v1 metadata: ref=%d stamp=%d", v1.RefOf("db"), v1.Stamp())
	}

	// Next version touches only X; Y must be shared, X cloned.
	b2 := s.Begin()
	mx := b2.Mutable("X")
	mx.Insert(relation.T(3))
	if b2.Touched() != 1 {
		t.Fatalf("touched %d nodes, want 1", b2.Touched())
	}
	if b2.Rel("X") != mx {
		t.Fatal("builder read does not see its own write")
	}
	v2 := s.Publish(b2, clock.Vector{"db": 8}, 20)
	if v2.Seq() != 2 {
		t.Fatalf("v2 seq=%d", v2.Seq())
	}
	if v2.Rel("Y") != v1.Rel("Y") {
		t.Fatal("untouched node was not shared")
	}
	if v2.Rel("X") == v1.Rel("X") {
		t.Fatal("touched node was not cloned")
	}
	if v1.Rel("X").Card() != 2 || v2.Rel("X").Card() != 3 {
		t.Fatalf("isolation broken: v1=%d v2=%d", v1.Rel("X").Card(), v2.Rel("X").Card())
	}
	if got := v2.Nodes(); len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Fatalf("nodes: %v", got)
	}
	if s.VersionsPublished() != 2 {
		t.Fatalf("published=%d", s.VersionsPublished())
	}
}

func TestPublishAtResumesSequence(t *testing.T) {
	s := New()
	b := s.Begin()
	b.Set("X", rel(t, "X", 1))
	v := s.PublishAt(b, 41, clock.Vector{"db": 3}, 9)
	if v.Seq() != 41 {
		t.Fatalf("seq=%d, want 41", v.Seq())
	}
	b2 := s.Begin()
	b2.Mutable("X").Insert(relation.T(2))
	if v2 := s.Publish(b2, clock.Vector{"db": 4}, 11); v2.Seq() != 42 {
		t.Fatalf("seq=%d, want 42", v2.Seq())
	}
}

// TestConcurrentReadersSeeCompleteVersions publishes rapidly while readers
// pin versions and check internal consistency (both nodes always agree on
// the version's generation) — the no-torn-reads property. Run with -race.
func TestConcurrentReadersSeeCompleteVersions(t *testing.T) {
	s := New()
	b := s.Begin()
	b.Set("X", rel(t, "X", 0))
	b.Set("Y", rel(t, "Y", 0))
	s.Publish(b, clock.Vector{"db": 0}, 0)

	const rounds = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.Current()
				// Each publish inserts generation g into both nodes, so a
				// complete version has equal cardinalities.
				if x, y := v.Rel("X").Card(), v.Rel("Y").Card(); x != y {
					t.Errorf("torn read: |X|=%d |Y|=%d at seq %d", x, y, v.Seq())
					return
				}
			}
		}()
	}
	for g := int64(1); g <= rounds; g++ {
		b := s.Begin()
		b.Mutable("X").Insert(relation.T(g))
		b.Mutable("Y").Insert(relation.T(g))
		s.Publish(b, clock.Vector{"db": clock.Time(g)}, clock.Time(g))
	}
	close(stop)
	wg.Wait()
	if got := s.Current().Seq(); got != rounds+1 {
		t.Fatalf("final seq=%d", got)
	}
}
