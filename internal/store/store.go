// Package store holds the mediator's materialized portions as a sequence
// of immutable, atomically-published versions — the multi-version read
// surface that lets query transactions run lock-free while the
// Incremental Update Processor builds the next state.
//
// The paper's transaction model (§4) serializes update transactions; this
// package keeps that discipline on the WRITE side (a single writer builds
// each next version copy-on-write under the mediator's update mutex) while
// publishing every committed state for concurrent readers:
//
//   - A Version is one committed materialized state: an immutable map of
//     node → relation stamped with the transaction's commit time and the
//     ref′ vector it corresponds to (§6.1). Once published, a Version
//     never changes; holding the pointer pins the state for as long as a
//     reader needs it.
//   - A Builder constructs the next version from the current one. Only
//     nodes the kernel actually touches are cloned (copy-on-write);
//     untouched relations are shared structurally between versions.
//   - Store.Publish swings an atomic pointer, so readers always observe a
//     complete, internally consistent state — no torn reads across nodes,
//     the property the mediator's global mutex used to buy behaviorally
//     and the version now buys structurally.
//
// Concurrency contract: Begin and Publish calls are serialized (the
// mediator's store mutex enforces this), but a builder may live across a
// window in which another writer publishes — whoever reaches Publish
// first wins, and the loser detects the conflict by comparing
// Builder.Base against Current and discards its builder. Any number of
// goroutines may call Current concurrently. Relations reachable from a
// published Version are read-only — mutating one is a bug in the caller.
package store

import (
	"sort"
	"sync/atomic"

	"squirrel/internal/clock"
	"squirrel/internal/relation"
)

// View is a readable state of the materialized store: either a published
// Version or an in-progress Builder (whose reads see the transaction's own
// writes, preserving the kernel's sibling-state discipline).
type View interface {
	// Rel returns the node's materialized portion, or nil if the node is
	// fully virtual. The result must not be modified.
	Rel(node string) *relation.Relation
	// RefOf returns the ref′ component for one source: the commit time of
	// the last update from that source reflected by this view (zero if
	// none).
	RefOf(src string) clock.Time
}

// Version is one immutable, published materialized state.
type Version struct {
	seq     uint64
	rels    map[string]*relation.Relation
	reflect clock.Vector
	stamp   clock.Time
}

// Seq returns the version's sequence number (1 for the initial state,
// incremented by every published update transaction).
func (v *Version) Seq() uint64 { return v.seq }

// Stamp returns the clock time at which the version was published (the
// view-initialization time for the first version, the update
// transaction's commit time afterwards).
func (v *Version) Stamp() clock.Time { return v.stamp }

// Reflect returns a copy of the version's ref′ vector: per source, the
// commit time of the last update this state reflects.
func (v *Version) Reflect() clock.Vector { return v.reflect.Clone() }

// RefOf implements View without copying the vector.
func (v *Version) RefOf(src string) clock.Time { return v.reflect[src] }

// Rel implements View. The returned relation is shared between versions
// and must not be modified.
func (v *Version) Rel(node string) *relation.Relation { return v.rels[node] }

// Nodes returns the names of all nodes with a materialized portion, in
// sorted order.
func (v *Version) Nodes() []string {
	out := make([]string, 0, len(v.rels))
	for name := range v.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len reports how many nodes have a materialized portion.
func (v *Version) Len() int { return len(v.rels) }

// Store publishes versions for concurrent readers. The zero value is not
// ready; use New.
type Store struct {
	cur       atomic.Pointer[Version]
	published atomic.Uint64
}

// New creates an empty store (no published version yet).
func New() *Store { return &Store{} }

// Current returns the most recently published version, or nil if nothing
// has been published. Safe for concurrent use; the result is immutable.
func (s *Store) Current() *Version { return s.cur.Load() }

// VersionsPublished reports how many versions this store instance has
// published (restored snapshots count as one).
func (s *Store) VersionsPublished() uint64 { return s.published.Load() }

// Begin starts building the next version on top of the current one (which
// may be nil before initialization). Single writer only.
func (s *Store) Begin() *Builder {
	return &Builder{base: s.cur.Load(), dirty: make(map[string]*relation.Relation)}
}

// Publish freezes the builder into the next version — sequence number
// base+1 — and swings the atomic pointer. It returns the published
// version. Single writer only; the builder must not be used afterwards.
func (s *Store) Publish(b *Builder, reflect clock.Vector, stamp clock.Time) *Version {
	var seq uint64 = 1
	if b.base != nil {
		seq = b.base.seq + 1
	}
	return s.publishAt(b, seq, reflect, stamp)
}

// PublishAt is Publish with an explicit sequence number — used when
// restoring a persisted snapshot so version numbering resumes where the
// saving mediator left off.
func (s *Store) PublishAt(b *Builder, seq uint64, reflect clock.Vector, stamp clock.Time) *Version {
	return s.publishAt(b, seq, reflect, stamp)
}

func (s *Store) publishAt(b *Builder, seq uint64, reflect clock.Vector, stamp clock.Time) *Version {
	rels := b.dirty
	if b.base != nil {
		// Overlay the touched nodes on the (shared) untouched ones,
		// skipping nodes this transaction dropped.
		rels = make(map[string]*relation.Relation, len(b.base.rels)+len(b.dirty))
		for name, rel := range b.base.rels {
			if b.deleted[name] {
				continue
			}
			rels[name] = rel
		}
		for name, rel := range b.dirty {
			rels[name] = rel
		}
	}
	v := &Version{seq: seq, rels: rels, reflect: reflect, stamp: stamp}
	s.cur.Store(v)
	s.published.Add(1)
	return v
}

// Builder accumulates one transaction's writes copy-on-write over a base
// version. It implements View: reads see the transaction's own writes
// first, then the base — exactly the in-place semantics the kernel had
// when it mutated the store directly.
type Builder struct {
	base    *Version
	dirty   map[string]*relation.Relation
	deleted map[string]bool // nodes dropped by this transaction (re-annotation)
}

// Rel implements View (dirty overlay first, then base; deleted nodes
// read as fully virtual).
func (b *Builder) Rel(node string) *relation.Relation {
	if r, ok := b.dirty[node]; ok {
		return r
	}
	if b.deleted[node] {
		return nil
	}
	if b.base != nil {
		return b.base.rels[node]
	}
	return nil
}

// RefOf implements View: the base version's ref′ (the pre-transaction
// state ref′(t_{i-1}) that Eager Compensation rolls polls back to).
func (b *Builder) RefOf(src string) clock.Time {
	if b.base == nil {
		return 0
	}
	return b.base.reflect[src]
}

// Base returns the published version this builder was begun from (nil
// before initialization). The mediator's commit compares it against the
// store's current version: a mismatch means another writer published
// while the transaction ran outside the store mutex, so the builder
// extends a superseded state and must be discarded.
func (b *Builder) Base() *Version { return b.base }

// Mutable returns a writable relation for the node, cloning the base
// version's relation on first touch. Returns nil if the node has no
// materialized portion in the base and none was Set.
//
// Concurrency: the builder's own bookkeeping (the dirty map) is
// single-writer — Mutable/Set/Rel calls must stay on one goroutine. The
// *relation.Relation a call returns, however, is exclusively owned by
// this builder for its node, so the staged kernel may hand distinct
// nodes' clones to distinct workers and mutate them concurrently, as
// long as no builder method is called until the workers are joined.
func (b *Builder) Mutable(node string) *relation.Relation {
	if r, ok := b.dirty[node]; ok {
		return r
	}
	if b.deleted[node] || b.base == nil {
		return nil
	}
	base, ok := b.base.rels[node]
	if !ok {
		return nil
	}
	clone := base.Clone()
	b.dirty[node] = clone
	return clone
}

// Set installs a relation for a node (used when initializing or restoring,
// where every node is new, and when a re-annotation grows or narrows a
// node's materialized portion). Set after Delete revives the node.
func (b *Builder) Set(node string, rel *relation.Relation) {
	b.dirty[node] = rel
	delete(b.deleted, node)
}

// Delete drops a node's materialized portion from the version under
// construction — the node becomes fully virtual when the builder is
// published. Used by re-annotation transactions; a no-op for nodes the
// base never stored.
func (b *Builder) Delete(node string) {
	delete(b.dirty, node)
	if b.deleted == nil {
		b.deleted = make(map[string]bool)
	}
	b.deleted[node] = true
}

// Touched reports how many nodes this builder has cloned or set.
func (b *Builder) Touched() int { return len(b.dirty) }
