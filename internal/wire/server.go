package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"sync"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
)

// SourceBackend is what SourceServer serves: anything that behaves as an
// autonomous source — a name, a relation catalog, an announcement feed,
// atomic multi-relation snapshot reads, and (optionally honored) write
// submission. *source.DB is the canonical backend; federate.Exporter
// satisfies it too, which is how a mediator's exports go on the wire as a
// source for the tier above (DESIGN.md §11).
//
// Concurrency: the server calls QueryMulti from per-connection handler
// goroutines concurrently with the Subscribe feed; implementations must
// be safe for that, and must invoke announcement handlers in commit
// order (the §6.3 FIFO contract the server preserves per connection).
type SourceBackend interface {
	// Name identifies the source (sent in the hello).
	Name() string
	// Relations lists the served relation names.
	Relations() []string
	// Schema returns one relation's schema.
	Schema(rel string) (*relation.Schema, error)
	// Subscribe registers an announcement handler. Handlers run inside
	// the backend's commit path and must not block.
	Subscribe(h source.Handler)
	// QueryMulti answers several snapshot reads atomically, returning the
	// answered state's timestamp.
	QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error)
	// Apply submits a write transaction (backends that are read-only from
	// above, like a mediator export face, return an error).
	Apply(d *delta.Delta) (clock.Time, error)
}

// TieredBackend is optionally implemented by backends whose answers carry
// a base-source-coordinates validity vector alongside the timestamp —
// federate.Exporter does. The server forwards the vector on answer
// messages so a consuming mediator can compose Reflect vectors across
// tiers (core.TieredConn on the client side).
type TieredBackend interface {
	QueryMultiBase(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, clock.Vector, error)
}

// SourceServer exposes one source backend over TCP. Each accepted
// connection gets the announcement feed plus query service, multiplexed
// over a single per-connection FIFO so Eager Compensation's ordering
// assumption holds end to end.
//
// Concurrency: Start/Serve may be called once; Close is safe from any
// goroutine and waits for per-connection handlers to exit. The exported
// fields (Logf, OutboxCap) must be set before Serve/Start.
type SourceServer struct {
	db SourceBackend
	ln net.Listener

	mu     sync.Mutex
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup
	// Logf, if set, receives protocol errors (default: log.Printf).
	Logf func(format string, args ...any)
	// OutboxCap bounds each connection's outgoing message queue (0 =
	// default 1024). Set before Serve/Start. A connection whose reader
	// stalls long enough to fill its outbox is dropped — the announcement
	// feed never blocks on one slow consumer.
	OutboxCap int
}

type srvConn struct {
	conn net.Conn
	out  chan Message
	done chan struct{}
}

// NewSourceServer wraps a source database; call Serve with a listener.
func NewSourceServer(db *source.DB) *SourceServer {
	return NewBackendServer(db)
}

// NewBackendServer wraps any SourceBackend — the constructor to use when
// serving a mediator's exports (federate.Exporter) as a source for the
// tier above.
func NewBackendServer(b SourceBackend) *SourceServer {
	return &SourceServer{db: b, conns: make(map[*srvConn]struct{})}
}

// ListenAndServe listens on addr and serves until Close. It returns the
// bound address via the Addr method once listening; use Start for a
// ready-signaled variant.
func (s *SourceServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Start listens on addr (use ":0" for an ephemeral port), begins serving
// in the background, and returns the bound address.
func (s *SourceServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(ln); err != nil {
			s.logf("wire: serve: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// Serve accepts connections on ln until Close.
func (s *SourceServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("wire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	// One subscription on the database fans out to all live connections.
	// The callback runs inside the source's commit, so it must never
	// block: the connection set is snapshotted under mu (released before
	// any send), and each send is non-blocking — a connection whose
	// bounded outbox is full has a stalled reader and is dropped, rather
	// than stalling the feed to every other connection (and the committer
	// behind it).
	s.db.Subscribe(func(a source.Announcement) {
		msg := Message{Type: "announce", Source: a.Source, Time: a.Time,
			Seq: a.Seq, FirstSeq: a.FirstSeq,
			Reflect: a.Reflect, Barrier: a.Barrier}
		if a.Delta != nil {
			// Barrier announcements carry no delta: the publish they
			// report was not produced by one.
			d := EncodeDelta(a.Delta)
			msg.Delta = &d
		}
		s.mu.Lock()
		live := make([]*srvConn, 0, len(s.conns))
		for c := range s.conns {
			live = append(live, c)
		}
		s.mu.Unlock()
		for _, c := range live {
			if !c.trySend(msg) {
				s.logf("wire: dropping %v: announcement outbox full (stalled reader)", c.conn.RemoteAddr())
				s.drop(c)
			}
		}
	})
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		outCap := s.OutboxCap
		if outCap <= 0 {
			outCap = 1024
		}
		c := &srvConn{conn: conn, out: make(chan Message, outCap), done: make(chan struct{})}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(2)
		go s.writeLoop(c)
		go s.readLoop(c)
	}
}

func (c *srvConn) send(m Message) {
	select {
	case c.out <- m:
	case <-c.done:
	}
}

// trySend is the non-blocking send the announcement fan-out uses. It
// reports false only when the outbox is full (a stalled reader); a
// closed connection swallows the message and reports true.
func (c *srvConn) trySend(m Message) bool {
	select {
	case c.out <- m:
		return true
	case <-c.done:
		return true
	default:
		return false
	}
}

func (s *SourceServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (s *SourceServer) writeLoop(c *srvConn) {
	defer s.wg.Done()
	w := bufio.NewWriter(c.conn)
	for {
		select {
		case m := <-c.out:
			b, err := encode(m)
			if err != nil {
				s.logf("wire: encode: %v", err)
				continue
			}
			if _, err := w.Write(b); err != nil {
				s.drop(c)
				return
			}
			// Flush when the queue drains so batches coalesce.
			if len(c.out) == 0 {
				if err := w.Flush(); err != nil {
					s.drop(c)
					return
				}
			}
		case <-c.done:
			return
		}
	}
}

func (s *SourceServer) readLoop(c *srvConn) {
	defer s.wg.Done()
	defer s.drop(c)
	c.send(Message{Type: "hello", Name: s.db.Name()})
	scanner := bufio.NewScanner(c.conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for scanner.Scan() {
		var m Message
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			c.send(Message{Type: "error", Error: "bad message: " + err.Error()})
			continue
		}
		switch m.Type {
		case "query":
			specs := make([]source.QuerySpec, len(m.Specs))
			ok := true
			for i, ws := range m.Specs {
				spec, err := ws.Decode()
				if err != nil {
					c.send(Message{Type: "error", ID: m.ID, Error: err.Error()})
					ok = false
					break
				}
				specs[i] = spec
			}
			if !ok {
				continue
			}
			var answers []*relation.Relation
			var asOf clock.Time
			var base clock.Vector
			var err error
			if tb, tiered := s.db.(TieredBackend); tiered {
				answers, asOf, base, err = tb.QueryMultiBase(specs)
			} else {
				answers, asOf, err = s.db.QueryMulti(specs)
			}
			if err != nil {
				c.send(Message{Type: "error", ID: m.ID, Error: err.Error()})
				continue
			}
			resp := Message{Type: "answer", ID: m.ID, AsOf: asOf, Reflect: base}
			for _, a := range answers {
				resp.Answers = append(resp.Answers, EncodeRelation(a))
			}
			c.send(resp)
		case "catalog":
			resp := Message{Type: "answer", ID: m.ID}
			names := s.db.Relations()
			sortStrings(names)
			for _, name := range names {
				schema, err := s.db.Schema(name)
				if err != nil {
					continue
				}
				resp.Schemas = append(resp.Schemas, EncodeSchema(schema))
			}
			c.send(resp)
		case "apply":
			// Remote transaction submission (used by drivers/loaders).
			if m.Delta == nil {
				c.send(Message{Type: "error", ID: m.ID, Error: "apply without delta"})
				continue
			}
			d, err := m.Delta.Decode()
			if err != nil {
				c.send(Message{Type: "error", ID: m.ID, Error: err.Error()})
				continue
			}
			t, err := s.db.Apply(d)
			if err != nil {
				c.send(Message{Type: "error", ID: m.ID, Error: err.Error()})
				continue
			}
			c.send(Message{Type: "answer", ID: m.ID, AsOf: t})
		default:
			c.send(Message{Type: "error", ID: m.ID, Error: "unknown message type " + m.Type})
		}
	}
}

func (s *SourceServer) drop(c *srvConn) {
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		close(c.done)
		c.conn.Close()
	}
	s.mu.Unlock()
}

// Close stops the listener and drops every connection.
func (s *SourceServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		delete(s.conns, c)
		close(c.done)
		c.conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
