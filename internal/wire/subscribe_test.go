package wire

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
)

// commitV inserts one fresh A row and runs one update transaction.
func commitV(t testing.TB, db *source.DB, med *core.Mediator, key int64) {
	t.Helper()
	d := delta.New()
	d.Insert("A", relation.T(key, key*10))
	db.MustApply(d)
	if ran, err := med.RunUpdateTransaction(); err != nil || !ran {
		t.Fatalf("commit %d: ran=%v err=%v", key, ran, err)
	}
}

// applyWireFrame folds one decoded frame into the subscriber's replica.
func applyWireFrame(t testing.TB, replica **relation.Relation, f core.SubFrame) {
	t.Helper()
	switch f.Kind {
	case core.SubSnapshot:
		*replica = f.Snapshot.Clone()
	case core.SubDelta:
		if err := f.Delta.ApplyTo(*replica, false); err != nil {
			t.Fatalf("apply frame v%d: %v", f.Version, err)
		}
	}
}

// TestSubscribeStreamOverWire drives the full push pipeline: subscribe
// over TCP, receive the initial snapshot, then per-commit delta frames,
// and verify the replica tracks the mediator's published store exactly.
func TestSubscribeStreamOverWire(t *testing.T) {
	db, med, addr := startMediator(t)
	sc, err := SubscribeView(addr, "V", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	f, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != core.SubSnapshot || f.Export != "V" {
		t.Fatalf("first frame: kind=%v export=%q", f.Kind, f.Export)
	}
	var replica *relation.Relation
	applyWireFrame(t, &replica, f)
	if cur := med.CurrentVersion(); f.Version != cur.Seq() || !replica.Equal(cur.Rel("V")) {
		t.Fatalf("snapshot differs from store v%d", cur.Seq())
	}

	prev := f.Version
	for i := int64(0); i < 5; i++ {
		commitV(t, db, med, 100+i)
		f, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind != core.SubDelta || f.First != prev+1 || f.Version != prev+1 {
			t.Fatalf("frame %d: kind=%v first=%d v=%d (prev %d)", i, f.Kind, f.First, f.Version, prev)
		}
		prev = f.Version
		applyWireFrame(t, &replica, f)
		cur := med.CurrentVersion()
		if f.Version != cur.Seq() || f.Stamp != cur.Stamp() || f.Reflect["db"] != cur.RefOf("db") {
			t.Fatalf("frame v%d metadata: stamp=%d reflect=%v", f.Version, f.Stamp, f.Reflect)
		}
		if !replica.Equal(cur.Rel("V")) {
			t.Fatalf("after frame v%d: replica %s != store %s", f.Version, replica, cur.Rel("V"))
		}
	}
	if sc.Delivered() != prev {
		t.Fatalf("Delivered = %d, want %d", sc.Delivered(), prev)
	}

	// Rejections surface as dial errors.
	if _, err := SubscribeView(addr, "NOPE", SubOptions{}); err == nil ||
		!strings.Contains(err.Error(), "subscribe rejected") {
		t.Fatalf("bad export: %v", err)
	}
}

// TestSubscribeResumeOverWire covers both reconnect shapes: an explicit
// re-subscribe with FromVersion (replayed from the server's ring, no
// snapshot), and the client's automatic redial + resume when its
// connection is severed mid-stream.
func TestSubscribeResumeOverWire(t *testing.T) {
	db, med, addr := startMediator(t)
	srv := activeMediatorServer(t, addr)

	sc, err := SubscribeView(addr, "V", SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	var replica *relation.Relation
	applyWireFrame(t, &replica, f)
	resumeAt := sc.Delivered()
	sc.Close()

	// Commits during the outage, then an explicit resume: delta frames
	// only, contiguous from the resume point.
	for i := int64(0); i < 3; i++ {
		commitV(t, db, med, 200+i)
	}
	sc2, err := SubscribeView(addr, "V", SubOptions{FromVersion: resumeAt, Reconnect: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	prev := resumeAt
	for i := 0; i < 3; i++ {
		f, err := sc2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind != core.SubDelta || f.First != prev+1 {
			t.Fatalf("resume frame %d: kind=%v first=%d (prev %d)", i, f.Kind, f.First, prev)
		}
		prev = f.Version
		applyWireFrame(t, &replica, f)
	}
	if cur := med.CurrentVersion(); !replica.Equal(cur.Rel("V")) {
		t.Fatalf("resumed replica diverges at v%d", prev)
	}

	// Sever every server-side connection: the client must redial,
	// resubscribe after its last delivered version, and continue gap-free.
	srv.mu.Lock()
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
	for i := int64(0); i < 3; i++ {
		commitV(t, db, med, 300+i)
	}
	// Track consumption by the frames Next returns, not Delivered(): the
	// resume cursor may run ahead of the consumer by the hand-off
	// channel's capacity.
	target := prev + 3
	for prev < target {
		f, err := sc2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind != core.SubDelta || f.First != prev+1 {
			t.Fatalf("post-reconnect frame: kind=%v first=%d (prev %d)", f.Kind, f.First, prev)
		}
		prev = f.Version
		applyWireFrame(t, &replica, f)
	}
	if sc2.Resumes() == 0 {
		t.Fatal("client never resumed")
	}
	if cur := med.CurrentVersion(); !replica.Equal(cur.Rel("V")) {
		t.Fatalf("post-reconnect replica diverges")
	}
}

// activeMediatorServer digs the serving MediatorServer out of the test
// fixture via its bound address (startMediator owns the server).
func activeMediatorServer(t *testing.T, addr string) *MediatorServer {
	t.Helper()
	// startMediator registers exactly one server per test; stash it on a
	// package-level map keyed by address.
	srvMu.Lock()
	defer srvMu.Unlock()
	srv := srvByAddr[addr]
	if srv == nil {
		t.Fatalf("no server registered for %s", addr)
	}
	return srv
}

var (
	srvMu     sync.Mutex
	srvByAddr = map[string]*MediatorServer{}
)

// TestFanoutSurvivesStalledReader is the regression test for the
// announcement fan-out bug: one connection whose reader stalls (its
// bounded outbox full, its write loop jammed) must be dropped — the
// commit path and every other connection continue unaffected. Before the
// fix, the db.Subscribe callback blocked on the stalled connection's
// outbox, stalling the committer and every other subscriber behind it.
func TestFanoutSurvivesStalledReader(t *testing.T) {
	clk := &clock.Logical{}
	db := source.NewDB("db1", clk)
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindInt}}, "a")
	if err := db.CreateRelation(s, relation.Set); err != nil {
		t.Fatal(err)
	}
	srv := NewSourceServer(db)
	srv.Logf = t.Logf
	srv.OutboxCap = 4 // set before Start so every connection gets it
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// A raw connection that never reads: its socket buffers fill, then its
	// outbox, then it is dead weight on the feed.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var stalled *srvConn
	for deadline := time.Now().Add(5 * time.Second); ; {
		srv.mu.Lock()
		for c := range srv.conns {
			stalled = c
		}
		srv.mu.Unlock()
		if stalled != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if stalled == nil {
		t.Fatal("server never registered the stalled connection")
	}

	// A healthy subscriber on its own connection.
	healthy, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	got := make(chan clock.Time, 16)
	healthy.OnAnnounce(func(a source.Announcement) { got <- a.Time })

	// Jam the stalled connection's write loop: large frames fill the
	// un-drained socket buffer, then the bounded outbox.
	noise := Message{Type: "noise", Error: strings.Repeat("x", 1<<20)}
	go func() {
		for i := 0; i < 64; i++ {
			stalled.send(noise) // returns early once the conn is dropped
		}
	}()
	for deadline := time.Now().Add(10 * time.Second); len(stalled.out) < cap(stalled.out); {
		if time.Now().After(deadline) {
			t.Fatal("outbox never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// The commit must neither block nor lose the healthy feed.
	applied := make(chan clock.Time, 1)
	go func() {
		d := delta.New()
		d.Insert("R", relation.T(7, 70))
		applied <- db.MustApply(d)
	}()
	var ct clock.Time
	select {
	case ct = <-applied:
	case <-time.After(10 * time.Second):
		t.Fatal("commit blocked behind a stalled reader")
	}
	select {
	case at := <-got:
		if at != ct {
			t.Fatalf("announcement at %d, commit at %d", at, ct)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("healthy connection lost the announcement")
	}
	// The stalled connection is dropped, not the feed.
	select {
	case <-stalled.done:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled connection was never dropped")
	}
}

// TestReconnectGateBlocksRequestsUntilOnReconnect is the regression test
// for the reconnect-ordering bug: after a redial, requests must fail fast
// until OnReconnect has returned. Before the fix, connect() installed the
// new connection before OnReconnect ran, so a round trip could return an
// answer reflecting commits whose announcements were lost in the outage
// BEFORE the mediator quarantined the source — an answer observed ahead
// of its announcement, violating the FIFO contract at the top of
// client.go. The fake server makes the window deterministic: it answers
// instantly on the second connection while OnReconnect is held open.
func TestReconnectGateBlocksRequestsUntilOnReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Fake source: hello, then answer every request immediately. The first
	// connection is killed right after a commit "happens" during the
	// outage (the client never hears its announcement).
	connCount := make(chan net.Conn, 4)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connCount <- conn
			go func(conn net.Conn) {
				w := bufio.NewWriter(conn)
				hello, _ := encode(Message{Type: "hello", Name: "fake"})
				w.Write(hello)
				w.Flush()
				scanner := bufio.NewScanner(conn)
				scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
				for scanner.Scan() {
					var m Message
					if json.Unmarshal(scanner.Bytes(), &m) != nil {
						return
					}
					b, _ := encode(Message{Type: "answer", ID: m.ID, AsOf: 99})
					w.Write(b)
					w.Flush()
				}
			}(conn)
		}
	}()

	entered := make(chan struct{})
	release := make(chan struct{})
	c, err := DialWith(ln.Addr().String(), DialOptions{
		Reconnect: true,
		RetryBase: 10 * time.Millisecond,
		OnReconnect: func() {
			close(entered)
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Sever the first connection: the commit-during-outage window opens.
	first := <-connCount
	first.Close()

	// The client redials; OnReconnect (the quarantine hook) is now held
	// open. The new connection is live and would answer instantly — but
	// the gate must refuse to issue requests on it.
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("client never redialed")
	}
	start := time.Now()
	if _, err := c.Apply(Delta{}); err == nil {
		t.Fatal("request succeeded inside the reconnect window")
	} else if !strings.Contains(err.Error(), "reconnect in progress") {
		t.Fatalf("gate error = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("gated request did not fail fast")
	}

	// Once OnReconnect returns, requests flow again.
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		ct, err := c.Apply(Delta{})
		if err == nil {
			if ct != 99 {
				t.Fatalf("answer asof = %d", ct)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never unblocked: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
