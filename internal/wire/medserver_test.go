package wire

import (
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
)

// startMediator assembles a local mediator over one source and serves it.
func startMediator(t *testing.T) (*source.DB, *core.Mediator, string) {
	t.Helper()
	clk := &clock.Logical{}
	db := source.NewDB("db", clk)
	schema := relation.MustSchema("A", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt}}, "x")
	rel := relation.NewSet(schema)
	rel.Insert(relation.T(1, 10))
	rel.Insert(relation.T(2, 20))
	if err := db.LoadRelation(rel); err != nil {
		t.Fatal(err)
	}
	b := vdp.NewBuilder()
	if err := b.AddSource("db", schema); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("V", `SELECT x, y FROM A WHERE y > 0`); err != nil {
		t.Fatal(err)
	}
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	med, err := core.New(core.Config{
		VDP:     plan,
		Sources: map[string]core.SourceConn{"db": core.LocalSource{DB: db}},
		Clock:   clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	core.ConnectLocal(med, db)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	srv := NewMediatorServer(med)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvMu.Lock()
	srvByAddr[addr] = srv
	srvMu.Unlock()
	t.Cleanup(func() {
		srv.Close()
		srvMu.Lock()
		delete(srvByAddr, addr)
		srvMu.Unlock()
	})
	return db, med, addr
}

func TestMediatorServerQuery(t *testing.T) {
	_, _, addr := startMediator(t)
	c, err := DialMediator(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ans, committed, err := c.Query("V", []string{"x"}, algebra.Gt(algebra.A("y"), algebra.CInt(15)))
	if err != nil {
		t.Fatal(err)
	}
	if committed == 0 || ans.Card() != 1 || !ans.Contains(relation.T(2)) {
		t.Fatalf("answer: t=%d %s", committed, ans)
	}
	// Full query with nil attrs/cond.
	all, _, err := c.Query("V", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if all.Card() != 2 {
		t.Errorf("full answer: %s", all)
	}
	// Errors propagate.
	if _, _, err := c.Query("NOPE", nil, nil); err == nil {
		t.Errorf("unknown export must error")
	}
}

func TestMediatorServerSync(t *testing.T) {
	db, med, addr := startMediator(t)
	c, err := DialMediator(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	d := delta.New()
	d.Insert("A", relation.T(3, 30))
	db.MustApply(d)
	if med.QueueLen() == 0 {
		t.Fatal("announcement missing")
	}
	n, err := c.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("sync ran %d transactions", n)
	}
	ans, _, err := c.Query("V", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Card() != 3 {
		t.Errorf("after sync: %s", ans)
	}
	// Sync with nothing queued.
	n, err = c.Sync()
	if err != nil || n != 0 {
		t.Errorf("idle sync: %d %v", n, err)
	}
}

func TestMediatorServerMultipleClients(t *testing.T) {
	_, _, addr := startMediator(t)
	c1, err := DialMediator(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := DialMediator(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 5; i++ {
		if _, _, err := c1.Query("V", nil, nil); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c2.Query("V", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMediatorServerReadvise(t *testing.T) {
	_, med, addr := startMediator(t)
	c, err := DialMediator(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// First call lazily attaches a manual controller and opens its window.
	if _, err := c.Readvise(true); err != nil {
		t.Fatal(err)
	}

	// A workload touching only x: the advisor should virtualize V.y.
	for i := 0; i < 5; i++ {
		if _, _, err := c.Query("V", []string{"x"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := c.Readvise(true)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Applied || dec.Skipped != "dry run" {
		t.Fatalf("dry run decision: %+v", dec)
	}
	if dec.Queries != 5 || dec.Profile.AccessFreq["x"] != 1 {
		t.Fatalf("window: queries=%d profile=%v", dec.Queries, dec.Profile)
	}
	if len(dec.Flips) != 1 || dec.Flips[0].String() != "V.y m->v" {
		t.Fatalf("flips = %v", dec.Flips)
	}
	if !med.VDP().Node("V").Ann.IsMaterialized("y") {
		t.Fatal("dry run must not re-annotate")
	}

	// Applying for real flips the live plan; answers stay exact.
	dec, err = c.Readvise(false)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Applied || len(dec.Flips) != 1 {
		t.Fatalf("apply decision: %+v", dec)
	}
	if med.VDP().Node("V").Ann.IsMaterialized("y") {
		t.Fatal("readvise did not re-annotate")
	}
	ans, _, err := c.Query("V", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Card() != 2 || !ans.Contains(relation.T(1, 10)) || !ans.Contains(relation.T(2, 20)) {
		t.Fatalf("post-switch answer: %s", ans)
	}
}
