package wire

import (
	"net"
	"testing"
	"time"

	"squirrel/internal/relation"
	"squirrel/internal/resilience"
	"squirrel/internal/source"
)

// Regression tests for the roundTrip waiter leak: every exit path —
// write error, timeout — must unregister the request's reply waiter, or
// the map accumulates dead entries and a later connection teardown closes
// channels nobody is listening on.

// TestWaiterUnregisteredOnWriteError injects a single write failure on a
// LIVE connection (the transport survives; only the one operation fails):
// the failed round trip must leave no waiter behind, and the next request
// on the same connection must succeed.
func TestWaiterUnregisteredOnWriteError(t *testing.T) {
	_, _, addr, _ := startServer(t)
	inj := resilience.NewInjector(1)
	c, err := DialWith(addr, DialOptions{
		WrapConn: func(conn net.Conn) net.Conn {
			return resilience.WrapNetConn(conn, inj, "link")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Let the read loop settle into its blocking Read so the scripted
	// fault is consumed by our write, not a loop iteration.
	time.Sleep(20 * time.Millisecond)

	inj.FailNext("link", 1)
	if _, _, err := c.QueryMulti([]source.QuerySpec{{Rel: "R"}}); err == nil {
		t.Fatal("query should fail on the injected write error")
	}
	if n := c.WaiterCount(); n != 0 {
		t.Fatalf("leaked %d waiters after write error", n)
	}
	// The connection is still good: the next round trip succeeds.
	answers, _, err := c.QueryMulti([]source.QuerySpec{{Rel: "R"}})
	if err != nil {
		t.Fatalf("query after transient write error: %v", err)
	}
	if answers[0].Card() != 2 || !answers[0].Contains(relation.T(1, 10)) {
		t.Errorf("answer: %s", answers[0])
	}
	if n := c.WaiterCount(); n != 0 {
		t.Fatalf("leaked %d waiters after successful round trip", n)
	}
}

// TestWaiterUnregisteredOnTimeout runs a round trip into a server that
// never answers: the timed-out request must unregister its waiter.
func TestWaiterUnregisteredOnTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write([]byte(`{"type":"hello","name":"mute"}` + "\n"))
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 30 * time.Millisecond
	for i := 0; i < 3; i++ {
		if _, _, err := c.QueryMulti([]source.QuerySpec{{Rel: "R"}}); err == nil {
			t.Fatal("expected timeout")
		}
	}
	if n := c.WaiterCount(); n != 0 {
		t.Fatalf("leaked %d waiters after %d timeouts", n, 3)
	}
}
