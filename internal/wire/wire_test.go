package wire

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []relation.Value{
		relation.Null(), relation.Bool(true), relation.Bool(false),
		relation.Int(-42), relation.Float(2.5), relation.Str("héllo\nworld"),
	}
	for _, v := range vals {
		got, err := EncodeValue(v).Decode()
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip %s -> %s", v, got)
		}
	}
	if _, err := (Value{K: "zzz"}).Decode(); err == nil {
		t.Errorf("bad kind should fail")
	}
}

func TestSchemaAndRelationRoundTrip(t *testing.T) {
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindString}}, "a")
	r := relation.NewBag(s)
	r.Add(relation.T(1, "x"), 2)
	r.Add(relation.T(2, "y"), 1)
	got, err := EncodeRelation(r).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) || got.Schema().String() != s.String() || got.Semantics() != relation.Bag {
		t.Errorf("relation round trip:\n%s\nvs\n%s", got, r)
	}
	set := relation.NewSet(s)
	set.Insert(relation.T(1, "x"))
	got2, _ := EncodeRelation(set).Decode()
	if got2.Semantics() != relation.Set {
		t.Errorf("set semantics lost")
	}
	if _, err := (Schema{Name: "R", Attrs: []Attr{{Name: "a", Type: "zzz"}}}).Decode(); err == nil {
		t.Errorf("bad type should fail")
	}
}

func TestColumnarRelationRoundTrip(t *testing.T) {
	// A "mixed" column (null/bool alongside scalars) forces the boxed
	// fallback; the others specialize.
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindString},
		{Name: "c", Type: relation.KindFloat}, {Name: "d", Type: relation.KindNull}})
	for _, bk := range []relation.Backend{relation.Rows, relation.Blocks} {
		t.Run("backend="+bk.String(), func(t *testing.T) {
			r := relation.NewWith(s, relation.Bag, bk)
			r.Add(relation.T(1, "x", 2.5, nil), 2)
			r.Add(relation.T(2, "y", -0.25, true), 1)
			r.Add(relation.T(-7, "z", 0.0, 3), 4)
			enc := EncodeRelationColumnar(r)
			if len(enc.Rows) != 0 || len(enc.Cols) != 4 || len(enc.Counts) != 3 {
				t.Fatalf("columnar encode shape: rows=%d cols=%d counts=%d",
					len(enc.Rows), len(enc.Cols), len(enc.Counts))
			}
			if enc.Cols[0].Kind != "int" || enc.Cols[1].Kind != "string" ||
				enc.Cols[2].Kind != "float" || enc.Cols[3].Kind != "mixed" {
				t.Fatalf("column kinds = %q %q %q %q",
					enc.Cols[0].Kind, enc.Cols[1].Kind, enc.Cols[2].Kind, enc.Cols[3].Kind)
			}
			got, err := enc.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(r) || got.String() != r.String() {
				t.Errorf("columnar round trip:\n%svs\n%s", got, r)
			}

			// Empty relation round-trips too.
			empty, err := EncodeRelationColumnar(relation.NewWith(s, relation.Set, bk)).Decode()
			if err != nil {
				t.Fatal(err)
			}
			if empty.Len() != 0 || empty.Semantics() != relation.Set {
				t.Errorf("empty columnar round trip: len=%d sem=%v", empty.Len(), empty.Semantics())
			}
		})
	}
	// Malformed columnar payloads are rejected, not silently truncated.
	enc := EncodeRelationColumnar(func() *relation.Relation {
		r := relation.NewBag(s)
		r.Add(relation.T(1, "x", 2.5, nil), 1)
		return r
	}())
	bad := enc
	bad.Cols = bad.Cols[:2]
	if _, err := bad.Decode(); err == nil {
		t.Errorf("arity mismatch must fail")
	}
	bad = enc
	bad.Counts = append([]int64{}, bad.Counts...)
	bad.Counts = append(bad.Counts, 9)
	if _, err := bad.Decode(); err == nil {
		t.Errorf("ragged columns must fail")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d := delta.New()
	d.Insert("R", relation.T(1, "x"))
	d.Add("S", relation.T(9), -3)
	got, err := EncodeDelta(d).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(d) {
		t.Errorf("delta round trip:\n%svs\n%s", got, d)
	}
}

func TestRelDeltaColumnarRoundTrip(t *testing.T) {
	for _, bk := range []relation.Backend{relation.Rows, relation.Blocks} {
		t.Run("backend="+bk.String(), func(t *testing.T) {
			d := delta.NewRelWith("R", bk)
			d.Add(relation.T(1, "x", 2.5), 2)
			d.Add(relation.T(2, "y", -0.25), -1) // deletion atoms keep their sign
			d.Add(relation.T(-7, "z", 0.0), 4)
			enc := EncodeRelDeltaColumnar(d)
			if enc.Rel != "R" || len(enc.Cols) != 3 || len(enc.Counts) != 3 {
				t.Fatalf("encode shape: rel=%q cols=%d counts=%d", enc.Rel, len(enc.Cols), len(enc.Counts))
			}
			if enc.Cols[0].Kind != "int" || enc.Cols[1].Kind != "string" || enc.Cols[2].Kind != "float" {
				t.Fatalf("column kinds = %q %q %q", enc.Cols[0].Kind, enc.Cols[1].Kind, enc.Cols[2].Kind)
			}
			got, err := enc.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if got.Rel() != "R" || !got.Equal(d) {
				t.Errorf("delta columnar round trip:\n%svs\n%s", got, d)
			}

			// Empty delta round-trips to an empty delta.
			empty, err := EncodeRelDeltaColumnar(delta.NewRelWith("E", bk)).Decode()
			if err != nil {
				t.Fatal(err)
			}
			if empty.Rel() != "E" || !empty.IsEmpty() {
				t.Errorf("empty delta round trip: rel=%q len=%d", empty.Rel(), empty.Len())
			}
		})
	}

	// Malformed payloads are rejected, not silently misread.
	good := EncodeRelDeltaColumnar(func() *delta.RelDelta {
		d := delta.NewRel("R")
		d.Add(relation.T(1, "x"), 1)
		d.Add(relation.T(2, "y"), -2)
		return d
	}())
	bad := good
	bad.Counts = bad.Counts[:1]
	if _, err := bad.Decode(); err == nil {
		t.Errorf("ragged columns must fail")
	}
	bad = good
	bad.Counts = []int64{0, 0}
	if _, err := bad.Decode(); err == nil {
		t.Errorf("zero-count atoms must fail")
	}
	bad = good
	bad.Cols = append([]Col{}, bad.Cols...)
	bad.Cols[0] = Col{Kind: "zzz", V: []Value{{K: "zzz"}, {K: "zzz"}}}
	if _, err := bad.Decode(); err == nil {
		t.Errorf("bad cell kind must fail")
	}
}

func TestExprRoundTrip(t *testing.T) {
	exprs := []algebra.Expr{
		nil,
		algebra.A("x"),
		algebra.CInt(5),
		algebra.CStr("s"),
		algebra.Eq(algebra.A("x"), algebra.CInt(1)),
		algebra.Conj(algebra.Lt(algebra.A("a"), algebra.CInt(2)), algebra.Ge(algebra.A("b"), algebra.CFloat(1.5))),
		algebra.Or{Terms: []algebra.Expr{algebra.Ne(algebra.A("a"), algebra.CInt(0))}},
		algebra.Not{Term: algebra.Gt(algebra.Add(algebra.A("a"), algebra.CInt(1)), algebra.Mul(algebra.A("b"), algebra.A("b")))},
		algebra.Le(algebra.Div(algebra.A("a"), algebra.CInt(2)), algebra.Sub(algebra.A("b"), algebra.CInt(3))),
	}
	for _, e := range exprs {
		got, err := EncodeExpr(e).Decode()
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if (e == nil) != (got == nil) {
			t.Fatalf("nil handling: %v -> %v", e, got)
		}
		if e != nil && got.String() != e.String() {
			t.Errorf("expr round trip: %s -> %s", e, got)
		}
	}
	bad := []*Expr{
		{Op: "zzz"},
		{Op: "const"},
		{Op: "arith", Sub: "%"},
		{Op: "cmp", Sub: "~"},
	}
	for _, w := range bad {
		if _, err := w.Decode(); err == nil {
			t.Errorf("decode of %+v should fail", w)
		}
	}
}

func startServer(t *testing.T) (*source.DB, *SourceServer, string, *clock.Logical) {
	t.Helper()
	clk := &clock.Logical{}
	db := source.NewDB("db1", clk)
	s := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindInt}}, "a")
	r := relation.NewSet(s)
	r.Insert(relation.T(1, 10))
	r.Insert(relation.T(2, 20))
	if err := db.LoadRelation(r); err != nil {
		t.Fatal(err)
	}
	srv := NewSourceServer(db)
	srv.Logf = t.Logf
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return db, srv, addr, clk
}

func TestClientQueryOverTCP(t *testing.T) {
	_, _, addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Name() != "db1" {
		t.Errorf("hello name = %q", c.Name())
	}
	answers, asOf, err := c.QueryMulti([]source.QuerySpec{
		{Rel: "R", Attrs: []string{"b"}, Cond: algebra.Gt(algebra.A("a"), algebra.CInt(1))},
		{Rel: "R"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if asOf == 0 || len(answers) != 2 {
		t.Fatalf("asOf=%d answers=%d", asOf, len(answers))
	}
	if answers[0].Card() != 1 || !answers[0].Contains(relation.T(20)) {
		t.Errorf("answer 0: %s", answers[0])
	}
	if answers[1].Card() != 2 {
		t.Errorf("answer 1: %s", answers[1])
	}
	// Errors propagate.
	if _, _, err := c.QueryMulti([]source.QuerySpec{{Rel: "ZZ"}}); err == nil {
		t.Errorf("remote error must propagate")
	}
}

func TestAnnouncementsBeforeAnswers(t *testing.T) {
	db, _, addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var anns []source.Announcement
	c.OnAnnounce(func(a source.Announcement) { anns = append(anns, a) })

	// Commit, then query: the announcement must be delivered before the
	// answer unblocks (FIFO on one connection, handler synchronous).
	d := delta.New()
	d.Insert("R", relation.T(3, 30))
	ct := db.MustApply(d)
	answers, asOf, err := c.QueryMulti([]source.QuerySpec{{Rel: "R"}})
	if err != nil {
		t.Fatal(err)
	}
	if asOf <= ct {
		t.Fatalf("asOf %d should follow commit %d", asOf, ct)
	}
	if len(anns) != 1 || anns[0].Time != ct {
		t.Fatalf("announcement must precede the answer: %v", anns)
	}
	if answers[0].Card() != 3 {
		t.Errorf("answer: %s", answers[0])
	}
}

func TestClientApply(t *testing.T) {
	db, _, addr, _ := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d := delta.New()
	d.Insert("R", relation.T(9, 90))
	ct, err := c.Apply(EncodeDelta(d))
	if err != nil || ct == 0 {
		t.Fatalf("apply: %d %v", ct, err)
	}
	cur, _ := db.Current("R")
	if !cur.Contains(relation.T(9, 90)) {
		t.Errorf("remote apply missing: %s", cur)
	}
	bad := delta.New()
	bad.Insert("ZZ", relation.T(1))
	if _, err := c.Apply(EncodeDelta(bad)); err == nil {
		t.Errorf("remote apply error must propagate")
	}
}

// TestMediatorOverWire runs the full mediator against TCP-served sources:
// the paper's Figure 3 architecture, end to end.
func TestMediatorOverWire(t *testing.T) {
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db2 := source.NewDB("db2", clk)
	rs := relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt}}, "r1")
	ss := relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")
	r := relation.NewSet(rs)
	r.Insert(relation.T(1, 10))
	r.Insert(relation.T(2, 20))
	s := relation.NewSet(ss)
	s.Insert(relation.T(10, 7))
	db1.LoadRelation(r)
	db2.LoadRelation(s)

	srv1 := NewSourceServer(db1)
	srv2 := NewSourceServer(db2)
	addr1, err := srv1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()
	addr2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	c1, err := Dial(addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	b := vdp.NewBuilder()
	b.AddSource("db1", rs)
	b.AddSource("db2", ss)
	if err := b.AddViewSQL("V", `SELECT r1, s2 FROM R JOIN S ON r2 = s1`); err != nil {
		t.Fatal(err)
	}
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	med, err := core.New(core.Config{
		VDP:     plan,
		Sources: map[string]core.SourceConn{"db1": c1, "db2": c2},
		Clock:   clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	c1.OnAnnounce(med.OnAnnouncement)
	c2.OnAnnounce(med.OnAnnouncement)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	ans, err := med.Query("V", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Card() != 1 || !ans.Contains(relation.T(1, 7)) {
		t.Fatalf("initial view: %s", ans)
	}

	// Remote commit propagates through the wire into the view.
	d := delta.New()
	d.Insert("S", relation.T(20, 9))
	db2.MustApply(d)
	// Wait for the announcement to arrive.
	deadline := time.Now().Add(3 * time.Second)
	for med.QueueLen() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if med.QueueLen() == 0 {
		t.Fatal("announcement never arrived")
	}
	if _, err := med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	ans2, err := med.Query("V", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Card() != 2 || !ans2.Contains(relation.T(2, 9)) {
		t.Fatalf("view after remote commit: %s", ans2)
	}
}

func TestClientCatalog(t *testing.T) {
	db, _, addr, _ := startServer(t)
	// Add a second relation so ordering is exercised.
	extra := relation.MustSchema("Zed", []relation.Attribute{{Name: "z", Type: relation.KindString}})
	if err := db.CreateRelation(extra, relation.Bag); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	schemas, err := c.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(schemas) != 2 || schemas[0].Name() != "R" || schemas[1].Name() != "Zed" {
		t.Fatalf("catalog = %v", schemas)
	}
	if got := schemas[0].KeyAttrs(); len(got) != 1 || got[0] != "a" {
		t.Errorf("keys must survive the catalog: %v", got)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	_, _, addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewScanner(conn)
	if !r.Scan() { // hello
		t.Fatal("no hello")
	}
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	if !r.Scan() {
		t.Fatal("no error reply")
	}
	if !strings.Contains(r.Text(), "error") {
		t.Fatalf("expected error reply, got %q", r.Text())
	}
	// The connection survives: a valid request still works.
	if _, err := conn.Write([]byte(`{"type":"query","id":1,"specs":[{"rel":"R"}]}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if !r.Scan() || !strings.Contains(r.Text(), "answer") {
		t.Fatalf("valid request after garbage failed: %q", r.Text())
	}
	// Unknown message types get error replies too.
	if _, err := conn.Write([]byte(`{"type":"zzz","id":2}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if !r.Scan() || !strings.Contains(r.Text(), "unknown message type") {
		t.Fatalf("unknown type reply: %q", r.Text())
	}
}

func TestClientTimeout(t *testing.T) {
	// A server that says hello and then never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write([]byte(`{"type":"hello","name":"mute"}` + "\n"))
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, _, err = c.QueryMulti([]source.QuerySpec{{Rel: "R"}})
	if err == nil {
		t.Fatalf("expected timeout")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("error = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("timeout took too long")
	}
}
