package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/relation"
	"squirrel/internal/source"
)

// DialOptions tune a source-client connection.
type DialOptions struct {
	// Reconnect redials automatically (with capped backoff) whenever the
	// read loop exits on a broken connection. The server re-subscribes the
	// new connection to the announcement feed; announcements committed
	// during the outage are LOST, which is exactly what the mediator's
	// sequence-gap detection + quarantine + resync exists to absorb — wire
	// OnReconnect to Mediator.QuarantineSource so the resync is proactive
	// rather than waiting for the next gap-revealing announcement.
	Reconnect bool
	// RetryBase/RetryMax bound the redial backoff (defaults 100ms / 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Timeout bounds each request round trip (0 = wait forever).
	Timeout time.Duration
	// WrapConn, if non-nil, wraps every new connection — the hook for
	// resilience.WrapNetConn fault injection.
	WrapConn func(net.Conn) net.Conn
	// OnDrop runs when an established connection is lost (before any
	// redial); OnReconnect runs after each successful redial + hello.
	OnDrop      func(error)
	OnReconnect func()
}

// Client connects a mediator to a remote source database served by
// SourceServer. It implements core.SourceConn; announcements received on
// the connection are forwarded, in order, to the handler registered with
// OnAnnounce — and, crucially, before any query answer that follows them
// on the wire, preserving the FIFO contract.
type Client struct {
	addr string
	opts DialOptions

	// Timeout bounds each request round trip (0 = wait forever). Set it
	// before issuing requests; a timed-out request leaves the connection
	// usable (the stale reply is discarded when it arrives).
	Timeout time.Duration

	wmu    sync.Mutex
	writer *bufio.Writer

	mu      sync.Mutex
	name    string
	conn    net.Conn
	nextID  uint64
	waiters map[uint64]chan Message
	handler func(source.Announcement)
	closed  bool
	readErr error
	// ready gates roundTrip: it is false from the moment a connection is
	// lost until the replacement is fully adopted — redialed, hello'd,
	// AND OnReconnect has returned. Without the gate, a request could
	// race the redial and return an answer reflecting commits whose
	// announcements were lost in the outage BEFORE OnReconnect
	// (typically Mediator.QuarantineSource) has marked the stream
	// untrusted — violating the announcement-before-answer FIFO contract
	// the Eager Compensation Algorithm needs. Requests issued while not
	// ready fail fast, exactly like requests issued while disconnected.
	ready bool
}

// Dial connects to a source server and waits for its hello.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DialOptions{})
}

// DialWith connects with explicit options.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 5 * time.Second
	}
	c := &Client{
		addr:    addr,
		opts:    opts,
		Timeout: opts.Timeout,
		waiters: make(map[uint64]chan Message),
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	// The initial dial has no reconnect window to order against: the
	// connection is ready as soon as the hello resolves.
	c.mu.Lock()
	c.ready = true
	c.mu.Unlock()
	return c, nil
}

// connect dials, installs the new connection, and waits for the server's
// hello. On success the read loop is running against the new connection.
func (c *Client) connect() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	if c.opts.WrapConn != nil {
		conn = c.opts.WrapConn(conn)
	}
	hello := make(chan string, 1)
	done := make(chan struct{})
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return fmt.Errorf("wire: client closed")
	}
	c.conn = conn
	c.mu.Unlock()
	c.wmu.Lock()
	c.writer = bufio.NewWriter(conn)
	c.wmu.Unlock()
	go c.readLoop(conn, hello, done)
	select {
	case name := <-hello:
		c.mu.Lock()
		if c.name != "" && c.name != name {
			c.mu.Unlock()
			conn.Close()
			return fmt.Errorf("wire: reconnected to %q, expected %q", name, c.name)
		}
		c.name = name
		c.mu.Unlock()
		return nil
	case <-done:
		conn.Close()
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return fmt.Errorf("wire: connection closed before hello: %v", err)
	}
}

// Name returns the remote source database's name (core.SourceConn).
func (c *Client) Name() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.name
}

// OnAnnounce registers the announcement handler (call before the first
// commit you care about; typically wired to Mediator.OnAnnouncement before
// Initialize). The handler survives reconnects: the server re-subscribes
// every new connection to its announcement feed.
func (c *Client) OnAnnounce(h func(source.Announcement)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handler = h
}

func (c *Client) readLoop(conn net.Conn, hello chan<- string, done chan struct{}) {
	defer close(done)
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for scanner.Scan() {
		var m Message
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			continue // tolerate garbage lines
		}
		switch m.Type {
		case "hello":
			select {
			case hello <- m.Name:
			default:
			}
		case "announce":
			c.mu.Lock()
			h := c.handler
			c.mu.Unlock()
			if h == nil {
				break
			}
			a := source.Announcement{
				Source: m.Source, Time: m.Time,
				Seq: m.Seq, FirstSeq: m.FirstSeq,
				Reflect: m.Reflect, Barrier: m.Barrier,
			}
			if m.Delta != nil {
				dd, err := m.Delta.Decode()
				if err != nil {
					break
				}
				a.Delta = dd
			} else if m.Barrier == "" {
				// Neither delta nor barrier: malformed, drop it. The
				// consuming mediator's gap detection catches the hole if
				// the sender numbered it.
				break
			}
			// Synchronous, in receive order: FIFO preserved. Barrier
			// announcements (delta-less, from a federated tier) pass
			// through like any other — OnAnnouncement quarantines on them.
			h(a)
		case "answer", "error":
			c.mu.Lock()
			ch := c.waiters[m.ID]
			delete(c.waiters, m.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		}
	}
	// Connection gone: fail every in-flight round trip, then (optionally)
	// redial in the background. Requests issued while disconnected fail on
	// write; the announcement handler stays registered for the new
	// connection.
	c.mu.Lock()
	c.readErr = scanner.Err()
	for id, ch := range c.waiters {
		if ch != nil {
			close(ch)
		}
		delete(c.waiters, id)
	}
	closed := c.closed
	stale := c.conn != conn // a newer connection already took over
	if !stale {
		// Gate requests until the reconnect protocol (redial + hello +
		// OnReconnect) has fully adopted a replacement connection.
		c.ready = false
	}
	c.mu.Unlock()
	if closed || stale {
		return
	}
	if c.opts.OnDrop != nil {
		c.opts.OnDrop(c.readErr)
	}
	if c.opts.Reconnect {
		go c.reconnectLoop()
	}
}

// reconnectLoop redials with capped exponential backoff until it succeeds
// or the client is closed.
func (c *Client) reconnectLoop() {
	backoff := c.opts.RetryBase
	for {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if err := c.connect(); err == nil {
			// OnReconnect must complete BEFORE requests may flow again:
			// it is the hook that accounts for announcements lost in the
			// outage (quarantine + resync), and an answer returned ahead
			// of it could reflect commits the mediator has not yet
			// learned to distrust.
			if c.opts.OnReconnect != nil {
				c.opts.OnReconnect()
			}
			c.mu.Lock()
			c.ready = true
			c.mu.Unlock()
			return
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > c.opts.RetryMax {
			backoff = c.opts.RetryMax
		}
	}
}

// roundTrip sends a request and waits for its matched reply. The waiter
// registered for the request is removed on EVERY exit path — encode
// error, write error, timeout, reply — so shutdown never finds (and
// closes) a channel its request already abandoned, and the map cannot
// accumulate dead entries.
func (c *Client) roundTrip(m Message) (Message, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Message{}, fmt.Errorf("wire: client closed")
	}
	if !c.ready {
		c.mu.Unlock()
		return Message{}, fmt.Errorf("wire: not connected (reconnect in progress)")
	}
	c.nextID++
	id := c.nextID
	ch := make(chan Message, 1)
	c.waiters[id] = ch
	c.mu.Unlock()
	unregister := func() {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
	}

	m.ID = id
	b, err := encode(m)
	if err != nil {
		unregister()
		return Message{}, err
	}
	c.wmu.Lock()
	_, werr := c.writer.Write(b)
	if werr == nil {
		werr = c.writer.Flush()
	}
	if werr != nil {
		// A write error poisons a bufio.Writer permanently (it returns the
		// cached error forever after). Reset it against the current
		// connection so a transient fault doesn't outlive itself; if the
		// transport really is broken, the read loop notices and tears the
		// connection down anyway.
		c.mu.Lock()
		conn := c.conn
		c.mu.Unlock()
		if conn != nil {
			c.writer = bufio.NewWriter(conn)
		}
	}
	c.wmu.Unlock()
	if werr != nil {
		unregister()
		return Message{}, werr
	}
	var timeout <-chan time.Time
	if c.Timeout > 0 {
		timer := time.NewTimer(c.Timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return Message{}, fmt.Errorf("wire: connection closed awaiting reply")
		}
		if reply.Type == "error" {
			return Message{}, fmt.Errorf("wire: remote error: %s", reply.Error)
		}
		return reply, nil
	case <-timeout:
		unregister()
		return Message{}, fmt.Errorf("wire: request %d timed out after %s", id, c.Timeout)
	}
}

// WaiterCount reports the number of registered reply waiters (tests).
func (c *Client) WaiterCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// QueryMulti implements core.SourceConn over the wire.
func (c *Client) QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error) {
	out, asOf, _, err := c.QueryMultiBase(specs)
	return out, asOf, err
}

// QueryMultiBase is QueryMulti plus the answer's validity vector in
// base-source coordinates, when the remote backend reports one
// (TieredBackend on the server side — a mediator export face does, a
// plain source database returns nil). It implements core.TieredConn, so a
// mediator dialed into a downstream mediator composes Reflect vectors
// across the hop. Safe for concurrent use, like every request method.
func (c *Client) QueryMultiBase(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, clock.Vector, error) {
	req := Message{Type: "query"}
	for _, s := range specs {
		req.Specs = append(req.Specs, EncodeSpec(s))
	}
	reply, err := c.roundTrip(req)
	if err != nil {
		return nil, 0, nil, err
	}
	if len(reply.Answers) != len(specs) {
		return nil, 0, nil, fmt.Errorf("wire: got %d answers for %d specs", len(reply.Answers), len(specs))
	}
	out := make([]*relation.Relation, len(reply.Answers))
	for i, wr := range reply.Answers {
		r, err := wr.Decode()
		if err != nil {
			return nil, 0, nil, err
		}
		out[i] = r
	}
	return out, reply.AsOf, reply.Reflect, nil
}

// Apply submits a transaction to the remote source (for loaders and
// drivers) and returns its commit time.
func (c *Client) Apply(d Delta) (clock.Time, error) {
	reply, err := c.roundTrip(Message{Type: "apply", Delta: &d})
	if err != nil {
		return 0, err
	}
	return reply.AsOf, nil
}

// Close tears the connection down and disables reconnection.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// Catalog fetches the source's relation schemas (for mediators assembled
// against remote sources without shared schema definitions).
func (c *Client) Catalog() ([]*relation.Schema, error) {
	reply, err := c.roundTrip(Message{Type: "catalog"})
	if err != nil {
		return nil, err
	}
	out := make([]*relation.Schema, 0, len(reply.Schemas))
	for _, ws := range reply.Schemas {
		s, err := ws.Decode()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
