package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/relation"
	"squirrel/internal/source"
)

// Client connects a mediator to a remote source database served by
// SourceServer. It implements core.SourceConn; announcements received on
// the connection are forwarded, in order, to the handler registered with
// OnAnnounce — and, crucially, before any query answer that follows them
// on the wire, preserving the FIFO contract.
type Client struct {
	name string
	conn net.Conn

	// Timeout bounds each request round trip (0 = wait forever). Set it
	// before issuing requests; a timed-out request leaves the connection
	// usable (the stale reply is discarded when it arrives).
	Timeout time.Duration

	wmu    sync.Mutex
	writer *bufio.Writer

	mu       sync.Mutex
	nextID   uint64
	waiters  map[uint64]chan Message
	handler  func(source.Announcement)
	closed   bool
	readErr  error
	readDone chan struct{}
}

// Dial connects to a source server and waits for its hello.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		writer:   bufio.NewWriter(conn),
		waiters:  make(map[uint64]chan Message),
		readDone: make(chan struct{}),
	}
	hello := make(chan string, 1)
	c.mu.Lock()
	c.waiters[0] = nil // reserved
	c.mu.Unlock()
	go c.readLoop(hello)
	select {
	case name := <-hello:
		c.name = name
		return c, nil
	case <-c.readDone:
		conn.Close()
		return nil, fmt.Errorf("wire: connection closed before hello: %v", c.readErr)
	}
}

// Name returns the remote source database's name (core.SourceConn).
func (c *Client) Name() string { return c.name }

// OnAnnounce registers the announcement handler (call before the first
// commit you care about; typically wired to Mediator.OnAnnouncement before
// Initialize).
func (c *Client) OnAnnounce(h func(source.Announcement)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handler = h
}

func (c *Client) readLoop(hello chan<- string) {
	defer close(c.readDone)
	scanner := bufio.NewScanner(c.conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for scanner.Scan() {
		var m Message
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			continue // tolerate garbage lines
		}
		switch m.Type {
		case "hello":
			select {
			case hello <- m.Name:
			default:
			}
		case "announce":
			var d Message = m
			c.mu.Lock()
			h := c.handler
			c.mu.Unlock()
			if h != nil && d.Delta != nil {
				dd, err := d.Delta.Decode()
				if err == nil {
					// Synchronous, in receive order: FIFO preserved.
					h(source.Announcement{Source: d.Source, Time: d.Time, Delta: dd})
				}
			}
		case "answer", "error":
			c.mu.Lock()
			ch := c.waiters[m.ID]
			delete(c.waiters, m.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		}
	}
	c.mu.Lock()
	c.readErr = scanner.Err()
	for id, ch := range c.waiters {
		if ch != nil {
			close(ch)
		}
		delete(c.waiters, id)
	}
	c.mu.Unlock()
}

// roundTrip sends a request and waits for its matched reply.
func (c *Client) roundTrip(m Message) (Message, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Message{}, fmt.Errorf("wire: client closed")
	}
	c.nextID++
	id := c.nextID
	ch := make(chan Message, 1)
	c.waiters[id] = ch
	c.mu.Unlock()

	m.ID = id
	b, err := encode(m)
	if err != nil {
		return Message{}, err
	}
	c.wmu.Lock()
	_, werr := c.writer.Write(b)
	if werr == nil {
		werr = c.writer.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		return Message{}, werr
	}
	var timeout <-chan time.Time
	if c.Timeout > 0 {
		timer := time.NewTimer(c.Timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return Message{}, fmt.Errorf("wire: connection closed awaiting reply")
		}
		if reply.Type == "error" {
			return Message{}, fmt.Errorf("wire: remote error: %s", reply.Error)
		}
		return reply, nil
	case <-timeout:
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
		return Message{}, fmt.Errorf("wire: request %d timed out after %s", id, c.Timeout)
	}
}

// QueryMulti implements core.SourceConn over the wire.
func (c *Client) QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error) {
	req := Message{Type: "query"}
	for _, s := range specs {
		req.Specs = append(req.Specs, EncodeSpec(s))
	}
	reply, err := c.roundTrip(req)
	if err != nil {
		return nil, 0, err
	}
	if len(reply.Answers) != len(specs) {
		return nil, 0, fmt.Errorf("wire: got %d answers for %d specs", len(reply.Answers), len(specs))
	}
	out := make([]*relation.Relation, len(reply.Answers))
	for i, wr := range reply.Answers {
		r, err := wr.Decode()
		if err != nil {
			return nil, 0, err
		}
		out[i] = r
	}
	return out, reply.AsOf, nil
}

// Apply submits a transaction to the remote source (for loaders and
// drivers) and returns its commit time.
func (c *Client) Apply(d Delta) (clock.Time, error) {
	reply, err := c.roundTrip(Message{Type: "apply", Delta: &d})
	if err != nil {
		return 0, err
	}
	return reply.AsOf, nil
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// Catalog fetches the source's relation schemas (for mediators assembled
// against remote sources without shared schema definitions).
func (c *Client) Catalog() ([]*relation.Schema, error) {
	reply, err := c.roundTrip(Message{Type: "catalog"})
	if err != nil {
		return nil, err
	}
	out := make([]*relation.Schema, 0, len(reply.Schemas))
	for _, ws := range reply.Schemas {
		s, err := ws.Decode()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
