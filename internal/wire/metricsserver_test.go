package wire

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"squirrel/internal/delta"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// The end-to-end observability smoke: drive a served mediator through
// update transactions and queries, then scrape /metrics and check the
// key series an operator's dashboard would be built on.
func TestMetricsEndpointSmoke(t *testing.T) {
	db, med, addr := startMediator(t)
	msrv := NewMetricsServer(med)
	maddr, err := msrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer msrv.Close()

	// Generate traffic: a few update transactions and queries.
	c, err := DialMediator(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		d := delta.New()
		d.Insert("A", relation.T(100+i, 10*i))
		db.MustApply(d)
		if _, err := c.Sync(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Query("V", nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	code, body := httpGet(t, "http://"+maddr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE squirrel_update_txn_seconds histogram",
		`squirrel_update_txn_seconds_bucket{phase="total",le="+Inf"} 5`,
		`squirrel_update_txn_seconds_bucket{phase="polls",le=`,
		`squirrel_update_txn_seconds_bucket{phase="commit",le="+Inf"} 5`,
		"squirrel_update_txns_total 5",
		`squirrel_source_poll_seconds_bucket{source="db",outcome="ok",le="+Inf"}`,
		`squirrel_query_seconds_bucket{path="fast",le="+Inf"} 5`,
		"# TYPE squirrel_query_version_age_ticks histogram",
		"squirrel_queue_len 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n--- scrape ---\n%s", want, body)
		}
	}

	// /debug/vars is the same snapshot as JSON, events included.
	code, vars := httpGet(t, "http://"+maddr+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(vars), &snap); err != nil {
		t.Fatalf("/debug/vars is not a metrics.Snapshot: %v", err)
	}
	if snap.Counters["squirrel_update_txns_total"] != 5 {
		t.Errorf("/debug/vars txn counter = %d", snap.Counters["squirrel_update_txns_total"])
	}
	if snap.EventsTotal == 0 || len(snap.Events) == 0 {
		t.Errorf("/debug/vars carries no events")
	}

	// pprof answers on the operator port.
	if code, _ := httpGet(t, "http://"+maddr+"/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	// The same snapshot is reachable over the query protocol.
	wsnap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if wsnap.Counters["squirrel_update_txns_total"] != 5 {
		t.Errorf("wire metrics txn counter = %d", wsnap.Counters["squirrel_update_txns_total"])
	}
	evs, total, err := c.Events(10)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 || len(evs) == 0 || len(evs) > 10 {
		t.Errorf("wire events: %d of %d", len(evs), total)
	}
	// Publish events carry the version sequence.
	found := false
	for _, ev := range evs {
		if ev.Type == metrics.EventPublish {
			found = true
		}
	}
	// The ring may have evicted publishes behind newer events; fetch all.
	if !found {
		all, _, err := c.Events(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range all {
			if ev.Type == metrics.EventPublish {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no publish events after %d update transactions", 5)
	}
}
