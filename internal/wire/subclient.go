package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/core"
)

// SubOptions tunes a SubClient.
type SubOptions struct {
	// FromVersion resumes delivery after the given committed store version
	// (0 = start with a snapshot). On auto-reconnect the client always
	// resumes from its own last delivered version, so the stream stays
	// gap-free across outages without re-transferring state it already has
	// (unless the server's resume ring no longer covers it, in which case
	// the server falls back to a snapshot frame).
	FromVersion uint64
	// MaxQueue and MaxLag are forwarded to core.SubscribeOptions on the
	// server (0 = server defaults / unbounded lag).
	MaxQueue int
	MaxLag   clock.Time
	// Reconnect enables automatic redial + resubscribe when the connection
	// drops. Without it, Next returns the transport error.
	Reconnect bool
	// RetryBase/RetryMax bound the reconnect backoff (defaults 50ms / 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
}

// SubClient consumes one export's subscription stream from a
// MediatorServer over its own connection. Next is single-consumer; Close
// may be called from any goroutine.
type SubClient struct {
	addr   string
	export string
	opts   SubOptions

	mu        sync.Mutex
	conn      net.Conn
	scanner   *bufio.Scanner
	delivered uint64
	resumes   int
	closed    bool
}

// SubscribeView connects to a mediator server and registers for export's
// delta stream. The first frame Next returns is a snapshot (or, with
// FromVersion set and the server's ring covering it, the deltas since).
func SubscribeView(addr, export string, opts SubOptions) (*SubClient, error) {
	if opts.RetryBase <= 0 {
		opts.RetryBase = 50 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 2 * time.Second
	}
	c := &SubClient{addr: addr, export: export, opts: opts}
	if err := c.connect(opts.FromVersion); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials, consumes the hello, and performs the subscribe handshake
// resuming after version from.
func (c *SubClient) connect(from uint64) error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	read := func() (Message, error) {
		if !scanner.Scan() {
			if err := scanner.Err(); err != nil {
				return Message{}, err
			}
			return Message{}, fmt.Errorf("wire: connection closed")
		}
		var m Message
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			return Message{}, err
		}
		return m, nil
	}
	if m, err := read(); err != nil || m.Type != "hello" {
		conn.Close()
		return fmt.Errorf("wire: mediator handshake failed: %v", err)
	}
	req := Message{Type: "subscribe", ID: 1, Export: c.export,
		FromVersion: from, MaxQueue: c.opts.MaxQueue, MaxLag: c.opts.MaxLag}
	b, err := encode(req)
	if err != nil {
		conn.Close()
		return err
	}
	w := bufio.NewWriter(conn)
	if _, err := w.Write(b); err != nil {
		conn.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		conn.Close()
		return err
	}
	reply, err := read()
	if err != nil {
		conn.Close()
		return err
	}
	if reply.Type == "error" {
		conn.Close()
		return fmt.Errorf("wire: subscribe rejected: %s", reply.Error)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return fmt.Errorf("wire: subscription client closed")
	}
	c.conn = conn
	c.scanner = scanner
	c.mu.Unlock()
	return nil
}

// reconnect redials with exponential backoff and resubscribes after the
// last delivered version, so an outage costs at most one coalesced delta
// frame (or a snapshot, if the server's ring moved on).
func (c *SubClient) reconnect() error {
	delay := c.opts.RetryBase
	for {
		c.mu.Lock()
		closed := c.closed
		from := c.delivered
		c.mu.Unlock()
		if closed {
			return fmt.Errorf("wire: subscription client closed")
		}
		if err := c.connect(from); err == nil {
			c.mu.Lock()
			c.resumes++
			c.mu.Unlock()
			return nil
		}
		time.Sleep(delay)
		if delay *= 2; delay > c.opts.RetryMax {
			delay = c.opts.RetryMax
		}
	}
}

// Next blocks for the next frame. Frames arrive in version order; the
// caller applies delta frames to its copy of the export (or replaces it
// on a snapshot frame) to track the mediator's published state.
func (c *SubClient) Next() (core.SubFrame, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return core.SubFrame{}, fmt.Errorf("wire: subscription client closed")
		}
		scanner := c.scanner
		c.mu.Unlock()
		if !scanner.Scan() {
			err := scanner.Err()
			if err == nil {
				err = fmt.Errorf("wire: connection closed")
			}
			if !c.opts.Reconnect {
				return core.SubFrame{}, err
			}
			if rerr := c.reconnect(); rerr != nil {
				return core.SubFrame{}, rerr
			}
			continue
		}
		var m Message
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			return core.SubFrame{}, err
		}
		switch m.Type {
		case "frame":
			f, err := DecodeSubFrame(m)
			if err != nil {
				return core.SubFrame{}, err
			}
			c.mu.Lock()
			c.delivered = f.Version
			c.mu.Unlock()
			return f, nil
		case "error":
			return core.SubFrame{}, fmt.Errorf("wire: subscription error: %s", m.Error)
		default:
			// Stray replies (e.g. the unsubscribe ack) are not frames.
			continue
		}
	}
}

// Delivered returns the last delivered version (the implicit resume point).
func (c *SubClient) Delivered() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered
}

// Resumes returns how many times the client reconnected and resubscribed.
func (c *SubClient) Resumes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumes
}

// Close tears the stream down; a blocked Next returns with an error.
func (c *SubClient) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
