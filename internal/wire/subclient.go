package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/core"
)

// SubOptions tunes a SubClient.
type SubOptions struct {
	// FromVersion resumes delivery after the given committed store version
	// (0 = start with a snapshot). On auto-reconnect the client always
	// resumes from its own resume cursor — the highest version committed
	// to the frame channel — so the stream stays duplicate- and gap-free
	// across outages without re-transferring state it already holds
	// (unless the server's resume ring no longer covers it, in which case
	// the server falls back to a snapshot frame).
	FromVersion uint64
	// MaxQueue and MaxLag are forwarded to core.SubscribeOptions on the
	// server (0 = server defaults / unbounded lag).
	MaxQueue int
	MaxLag   clock.Time
	// Reconnect enables automatic redial + resubscribe when the connection
	// drops. Without it, the first transport error is terminal: Next
	// returns it, and keeps returning it.
	Reconnect bool
	// RetryBase/RetryMax bound the reconnect backoff (defaults 50ms / 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
}

// SubClient consumes one export's subscription stream from a
// MediatorServer over its own connection.
//
// Concurrency and resume contract: a single background read loop owns the
// connection — it decodes frames, advances the resume cursor, and hands
// each frame to Next through a channel. The cursor is advanced in the
// same critical section that commits the frame for hand-off, BEFORE the
// loop reads anything further from the connection; a redial therefore
// always resubscribes after the last frame the consumer can still
// observe, and the consumer never sees a version twice (see Next).
// Next must be called from one goroutine at a time; Close may be called
// from any goroutine, and unblocks a waiting Next.
type SubClient struct {
	addr   string
	export string
	opts   SubOptions

	// frames is the hand-off channel from the read loop to Next. It is
	// closed by the read loop (and only by it) when the stream ends
	// terminally, after termErr is set.
	frames chan core.SubFrame
	// done is closed by Close; it unblocks the read loop's hand-off and
	// backoff sleeps, and any Next waiting on an idle stream.
	done chan struct{}

	mu        sync.Mutex
	conn      net.Conn
	delivered uint64 // resume cursor: highest version handed off
	resumes   int
	closed    bool
	termErr   error
}

// SubscribeView connects to a mediator server and registers for export's
// delta stream. The first frame Next returns is a snapshot (or, with
// FromVersion set and the server's ring covering it, the deltas since).
func SubscribeView(addr, export string, opts SubOptions) (*SubClient, error) {
	if opts.RetryBase <= 0 {
		opts.RetryBase = 50 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 2 * time.Second
	}
	c := &SubClient{
		addr: addr, export: export, opts: opts,
		frames: make(chan core.SubFrame, 8),
		done:   make(chan struct{}),
	}
	c.delivered = opts.FromVersion
	scanner, err := c.connect(opts.FromVersion)
	if err != nil {
		return nil, err
	}
	go c.readLoop(scanner)
	return c, nil
}

// connect dials, consumes the hello, and performs the subscribe handshake
// resuming after version from. On success the returned scanner is
// positioned at the first frame.
func (c *SubClient) connect(from uint64) (*bufio.Scanner, error) {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, err
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	read := func() (Message, error) {
		if !scanner.Scan() {
			if err := scanner.Err(); err != nil {
				return Message{}, err
			}
			return Message{}, fmt.Errorf("wire: connection closed")
		}
		var m Message
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			return Message{}, err
		}
		return m, nil
	}
	if m, err := read(); err != nil || m.Type != "hello" {
		conn.Close()
		return nil, fmt.Errorf("wire: mediator handshake failed: %v", err)
	}
	req := Message{Type: "subscribe", ID: 1, Export: c.export,
		FromVersion: from, MaxQueue: c.opts.MaxQueue, MaxLag: c.opts.MaxLag}
	b, err := encode(req)
	if err != nil {
		conn.Close()
		return nil, err
	}
	w := bufio.NewWriter(conn)
	if _, err := w.Write(b); err != nil {
		conn.Close()
		return nil, err
	}
	if err := w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	reply, err := read()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if reply.Type == "error" {
		conn.Close()
		return nil, fmt.Errorf("wire: subscribe rejected: %s", reply.Error)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("wire: subscription client closed")
	}
	c.conn = conn
	c.mu.Unlock()
	return scanner, nil
}

// readLoop is the connection owner: it decodes frames, advances the
// resume cursor, hands frames to Next, and redials on transport errors
// (when Reconnect is set). It exits on Close or a terminal error, closing
// the frame channel on the terminal path.
func (c *SubClient) readLoop(scanner *bufio.Scanner) {
	for {
		if !scanner.Scan() {
			err := scanner.Err()
			if err == nil {
				err = fmt.Errorf("wire: connection closed")
			}
			ns, rerr := c.redialOr(err)
			if rerr != nil {
				c.fail(rerr)
				return
			}
			scanner = ns
			continue
		}
		var m Message
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			// A corrupt line means the framing is gone: the rest of the
			// stream cannot be trusted, so treat it like a dropped
			// connection (the resubscribe replays anything torn off).
			c.dropConn()
			ns, rerr := c.redialOr(err)
			if rerr != nil {
				c.fail(rerr)
				return
			}
			scanner = ns
			continue
		}
		switch m.Type {
		case "frame":
			f, err := DecodeSubFrame(m)
			if err != nil {
				c.dropConn()
				ns, rerr := c.redialOr(err)
				if rerr != nil {
					c.fail(rerr)
					return
				}
				scanner = ns
				continue
			}
			// Advance the resume cursor atomically with the hand-off:
			// the cursor must cover this frame BEFORE the loop can
			// possibly redial (it redials only after returning here), or
			// a drop between hand-off and advancement would resubscribe
			// below a frame the consumer already has — and the replay
			// would deliver that version twice.
			c.mu.Lock()
			c.delivered = f.Version
			c.mu.Unlock()
			select {
			case c.frames <- f:
			case <-c.done:
				return
			}
		case "error":
			c.fail(fmt.Errorf("wire: subscription error: %s", m.Error))
			return
		default:
			// Stray replies (e.g. the unsubscribe ack) are not frames.
		}
	}
}

// redialOr handles a transport error: terminal when Reconnect is off,
// otherwise it redials with capped backoff and resubscribes after the
// resume cursor, returning the new connection's scanner.
func (c *SubClient) redialOr(cause error) (*bufio.Scanner, error) {
	if !c.opts.Reconnect {
		return nil, cause
	}
	delay := c.opts.RetryBase
	for {
		c.mu.Lock()
		closed := c.closed
		from := c.delivered
		c.mu.Unlock()
		if closed {
			return nil, fmt.Errorf("wire: subscription client closed")
		}
		scanner, err := c.connect(from)
		if err == nil {
			c.mu.Lock()
			c.resumes++
			c.mu.Unlock()
			return scanner, nil
		}
		select {
		case <-c.done:
			return nil, fmt.Errorf("wire: subscription client closed")
		case <-time.After(delay):
		}
		if delay *= 2; delay > c.opts.RetryMax {
			delay = c.opts.RetryMax
		}
	}
}

// dropConn closes the current connection (the read loop's way of
// abandoning a stream whose framing it no longer trusts).
func (c *SubClient) dropConn() {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// fail records the terminal error and closes the frame channel. Called
// only by the read loop, exactly once, as it exits.
func (c *SubClient) fail(err error) {
	c.mu.Lock()
	if c.termErr == nil {
		c.termErr = err
	}
	c.mu.Unlock()
	close(c.frames)
}

// Next blocks for the next frame. Frames arrive in version order with no
// duplicates, across reconnects included; the caller applies delta frames
// to its copy of the export (or replaces it on a snapshot frame) to track
// the mediator's published state. Single-consumer: call Next from one
// goroutine at a time. After a terminal error (transport failure with
// Reconnect off, a server-side stream error, or Close), Next returns that
// error on every call.
func (c *SubClient) Next() (core.SubFrame, error) {
	select {
	case f, ok := <-c.frames:
		if !ok {
			return core.SubFrame{}, c.terminalErr()
		}
		return f, nil
	case <-c.done:
		// Prefer a frame that raced the close over the close itself.
		select {
		case f, ok := <-c.frames:
			if ok {
				return f, nil
			}
		default:
		}
		return core.SubFrame{}, fmt.Errorf("wire: subscription client closed")
	}
}

func (c *SubClient) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.termErr != nil {
		return c.termErr
	}
	return fmt.Errorf("wire: subscription stream ended")
}

// Delivered returns the resume cursor: the highest version the read loop
// has committed for hand-off (and therefore the version a reconnect
// resumes after). It may run ahead of the last frame returned by Next by
// at most the hand-off channel's capacity.
func (c *SubClient) Delivered() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered
}

// Resumes returns how many times the client reconnected and resubscribed.
func (c *SubClient) Resumes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumes
}

// Close tears the stream down; a blocked Next returns with an error, and
// the read loop exits. Safe to call from any goroutine, more than once.
func (c *SubClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	close(c.done)
	if conn != nil {
		return conn.Close()
	}
	return nil
}
