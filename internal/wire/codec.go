// Package wire implements the network protocol between Squirrel mediators
// and remote source databases: newline-delimited JSON over TCP. A single
// connection carries both the mediator's snapshot queries and the source's
// update announcements, preserving the per-source FIFO ordering that the
// Eager Compensation Algorithm requires (an announcement for a commit is
// always delivered before any query answer that reflects that commit).
package wire

import (
	"encoding/json"
	"fmt"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
	"squirrel/internal/source"
)

// Value is the wire form of relation.Value.
type Value struct {
	K string  `json:"k"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
	B bool    `json:"b,omitempty"`
}

// EncodeValue converts a value to wire form.
func EncodeValue(v relation.Value) Value {
	switch v.Kind() {
	case relation.KindNull:
		return Value{K: "null"}
	case relation.KindBool:
		return Value{K: "bool", B: v.AsBool()}
	case relation.KindInt:
		return Value{K: "int", I: v.AsInt()}
	case relation.KindFloat:
		return Value{K: "float", F: v.AsFloat()}
	case relation.KindString:
		return Value{K: "string", S: v.AsString()}
	}
	return Value{K: "null"}
}

// Decode converts a wire value back.
func (w Value) Decode() (relation.Value, error) {
	switch w.K {
	case "null":
		return relation.Null(), nil
	case "bool":
		return relation.Bool(w.B), nil
	case "int":
		return relation.Int(w.I), nil
	case "float":
		return relation.Float(w.F), nil
	case "string":
		return relation.Str(w.S), nil
	}
	return relation.Null(), fmt.Errorf("wire: unknown value kind %q", w.K)
}

// Attr is the wire form of a schema attribute.
type Attr struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Schema is the wire form of relation.Schema.
type Schema struct {
	Name  string   `json:"name"`
	Attrs []Attr   `json:"attrs"`
	Key   []string `json:"key,omitempty"`
}

var kindNames = map[relation.Kind]string{
	relation.KindNull: "null", relation.KindBool: "bool", relation.KindInt: "int",
	relation.KindFloat: "float", relation.KindString: "string",
}

var kindsByName = map[string]relation.Kind{
	"null": relation.KindNull, "bool": relation.KindBool, "int": relation.KindInt,
	"float": relation.KindFloat, "string": relation.KindString,
}

// EncodeSchema converts a schema to wire form.
func EncodeSchema(s *relation.Schema) Schema {
	out := Schema{Name: s.Name(), Key: s.KeyAttrs()}
	for _, a := range s.Attrs() {
		out.Attrs = append(out.Attrs, Attr{Name: a.Name, Type: kindNames[a.Type]})
	}
	return out
}

// Decode converts a wire schema back.
func (w Schema) Decode() (*relation.Schema, error) {
	attrs := make([]relation.Attribute, len(w.Attrs))
	for i, a := range w.Attrs {
		k, ok := kindsByName[a.Type]
		if !ok {
			return nil, fmt.Errorf("wire: unknown attribute type %q", a.Type)
		}
		attrs[i] = relation.Attribute{Name: a.Name, Type: k}
	}
	return relation.NewSchema(w.Name, attrs, w.Key...)
}

// Row is a tuple with a (signed, for deltas) multiplicity.
type Row struct {
	T []Value `json:"t"`
	N int     `json:"n"`
}

// Relation is the wire form of relation.Relation. Exactly one of Rows
// (row-oriented, EncodeRelation) or Cols+Counts (columnar,
// EncodeRelationColumnar) carries the tuples; Decode accepts either.
type Relation struct {
	Schema Schema  `json:"schema"`
	Sem    string  `json:"sem"`
	Rows   []Row   `json:"rows,omitempty"`
	Cols   []Col   `json:"cols,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
}

// Col is one column of the columnar relation encoding: a type-specialized
// vector when every value in the column shares one scalar kind, else
// boxed values. Values at index i across all columns plus Counts[i] form
// one row.
type Col struct {
	Kind string    `json:"kind"` // int, float, string, mixed
	I    []int64   `json:"i,omitempty"`
	F    []float64 `json:"f,omitempty"`
	S    []string  `json:"s,omitempty"`
	V    []Value   `json:"v,omitempty"`
}

// EncodeRelation converts a relation to wire form (deterministic row
// order).
func EncodeRelation(r *relation.Relation) Relation {
	out := Relation{Schema: EncodeSchema(r.Schema()), Sem: r.Semantics().String()}
	for _, row := range r.Rows() {
		wr := Row{N: row.Count}
		for _, v := range row.Tuple {
			wr.T = append(wr.T, EncodeValue(v))
		}
		out.Rows = append(out.Rows, wr)
	}
	return out
}

// EncodeRelationColumnar converts a relation to the columnar wire form
// (deterministic row order): one type-specialized vector per attribute
// plus a multiplicity vector. Snapshots use it — for a wide store it is
// both smaller and cheaper to decode than the row form, since each
// specialized column round-trips as a bare JSON array.
func EncodeRelationColumnar(r *relation.Relation) Relation {
	out := Relation{Schema: EncodeSchema(r.Schema()), Sem: r.Semantics().String()}
	out.Cols, out.Counts = encodeCols(r.Rows(), r.Schema().Arity())
	return out
}

// encodeCols renders rows (tuples of uniform arity plus signed counts) as
// type-specialized column vectors: the shared core of the columnar
// relation and delta encodings. Empty input yields nil/nil.
func encodeCols(rows []relation.Row, arity int) ([]Col, []int64) {
	if len(rows) == 0 {
		return nil, nil
	}
	counts := make([]int64, len(rows))
	for i, row := range rows {
		counts[i] = int64(row.Count)
	}
	cols := make([]Col, arity)
	for j := 0; j < arity; j++ {
		kind := rows[0].Tuple[j].Kind()
		for _, row := range rows[1:] {
			if row.Tuple[j].Kind() != kind {
				kind = relation.KindNull // sentinel: mixed
				break
			}
		}
		c := &cols[j]
		switch kind {
		case relation.KindInt:
			c.Kind = "int"
			c.I = make([]int64, len(rows))
			for i, row := range rows {
				c.I[i] = row.Tuple[j].AsInt()
			}
		case relation.KindFloat:
			c.Kind = "float"
			c.F = make([]float64, len(rows))
			for i, row := range rows {
				c.F[i] = row.Tuple[j].AsFloat()
			}
		case relation.KindString:
			c.Kind = "string"
			c.S = make([]string, len(rows))
			for i, row := range rows {
				c.S[i] = row.Tuple[j].AsString()
			}
		default: // mixed, bool, null: boxed fallback
			c.Kind = "mixed"
			c.V = make([]Value, len(rows))
			for i, row := range rows {
				c.V[i] = EncodeValue(row.Tuple[j])
			}
		}
	}
	return cols, counts
}

// decodeCols validates column/count agreement and streams each decoded
// (tuple, count) row to add. arity < 0 skips the arity check (the delta
// form carries no schema, so the column count is the arity).
func decodeCols(cols []Col, counts []int64, arity int, add func(t relation.Tuple, n int) error) error {
	if arity >= 0 && len(cols) != arity {
		return fmt.Errorf("wire: columnar relation has %d columns, schema arity %d", len(cols), arity)
	}
	for j := range cols {
		if n := cols[j].length(); n != len(counts) {
			return fmt.Errorf("wire: column %d has %d values, want %d", j, n, len(counts))
		}
	}
	t := make(relation.Tuple, len(cols))
	for i := range counts {
		for j := range cols {
			dv, err := cols[j].colValue(i)
			if err != nil {
				return err
			}
			t[j] = dv
		}
		if err := add(t, int(counts[i])); err != nil {
			return err
		}
	}
	return nil
}

// RelDeltaCols is the columnar wire form of one relation's delta
// (delta.RelDelta): type-specialized column vectors plus a SIGNED count
// vector (positive = insertion atoms, negative = deletion atoms), in the
// delta's deterministic row order. The write-ahead delta log
// (internal/wal) persists committed update transactions in this form.
type RelDeltaCols struct {
	Rel    string  `json:"rel"`
	Cols   []Col   `json:"cols,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
}

// EncodeRelDeltaColumnar converts a relation delta to columnar wire form.
func EncodeRelDeltaColumnar(d *delta.RelDelta) RelDeltaCols {
	out := RelDeltaCols{Rel: d.Rel()}
	rows := d.Rows()
	arity := 0
	if len(rows) > 0 {
		arity = len(rows[0].Tuple)
	}
	out.Cols, out.Counts = encodeCols(rows, arity)
	return out
}

// Decode converts a columnar wire delta back.
func (w RelDeltaCols) Decode() (*delta.RelDelta, error) {
	out := delta.NewRel(w.Rel)
	if len(w.Cols) == 0 && len(w.Counts) == 0 {
		return out, nil
	}
	err := decodeCols(w.Cols, w.Counts, -1, func(t relation.Tuple, n int) error {
		if n == 0 {
			return fmt.Errorf("wire: delta %q carries a zero-count tuple", w.Rel)
		}
		out.Add(t, n)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// colValue decodes one cell of a columnar-encoded relation.
func (c *Col) colValue(i int) (relation.Value, error) {
	switch c.Kind {
	case "int":
		return relation.Int(c.I[i]), nil
	case "float":
		return relation.Float(c.F[i]), nil
	case "string":
		return relation.Str(c.S[i]), nil
	case "mixed":
		return c.V[i].Decode()
	}
	return relation.Null(), fmt.Errorf("wire: unknown column kind %q", c.Kind)
}

func (c *Col) length() int {
	switch c.Kind {
	case "int":
		return len(c.I)
	case "float":
		return len(c.F)
	case "string":
		return len(c.S)
	}
	return len(c.V)
}

// Decode converts a wire relation back, accepting either the row or the
// columnar encoding.
func (w Relation) Decode() (*relation.Relation, error) {
	schema, err := w.Schema.Decode()
	if err != nil {
		return nil, err
	}
	sem := relation.Bag
	if w.Sem == "set" {
		sem = relation.Set
	}
	out := relation.New(schema, sem)
	if len(w.Cols) > 0 || len(w.Counts) > 0 {
		err := decodeCols(w.Cols, w.Counts, schema.Arity(), func(t relation.Tuple, n int) error {
			out.Add(t, n)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	for _, row := range w.Rows {
		t := make(relation.Tuple, len(row.T))
		for i, v := range row.T {
			dv, err := v.Decode()
			if err != nil {
				return nil, err
			}
			t[i] = dv
		}
		out.Add(t, row.N)
	}
	return out, nil
}

// Delta is the wire form of delta.Delta: per-relation signed rows.
type Delta struct {
	Rels map[string][]Row `json:"rels"`
}

// EncodeDelta converts a delta to wire form.
func EncodeDelta(d *delta.Delta) Delta {
	out := Delta{Rels: map[string][]Row{}}
	for _, rel := range d.Relations() {
		rd := d.Get(rel)
		var rows []Row
		for _, row := range rd.Rows() {
			wr := Row{N: row.Count}
			for _, v := range row.Tuple {
				wr.T = append(wr.T, EncodeValue(v))
			}
			rows = append(rows, wr)
		}
		out.Rels[rel] = rows
	}
	return out
}

// Decode converts a wire delta back.
func (w Delta) Decode() (*delta.Delta, error) {
	out := delta.New()
	for rel, rows := range w.Rels {
		for _, row := range rows {
			t := make(relation.Tuple, len(row.T))
			for i, v := range row.T {
				dv, err := v.Decode()
				if err != nil {
					return nil, err
				}
				t[i] = dv
			}
			out.Add(rel, t, row.N)
		}
	}
	return out, nil
}

// Expr is the wire form of algebra.Expr — a tagged union.
type Expr struct {
	Op    string  `json:"op"` // attr, const, arith, cmp, and, or, not
	Name  string  `json:"name,omitempty"`
	Value *Value  `json:"value,omitempty"`
	Sub   string  `json:"sub,omitempty"` // arith/cmp operator symbol
	L     *Expr   `json:"l,omitempty"`
	R     *Expr   `json:"r,omitempty"`
	Terms []*Expr `json:"terms,omitempty"`
}

var arithBySymbol = map[string]algebra.ArithOp{
	"+": algebra.OpAdd, "-": algebra.OpSub, "*": algebra.OpMul, "/": algebra.OpDiv,
}

var cmpBySymbol = map[string]algebra.CmpOp{
	"=": algebra.OpEq, "<>": algebra.OpNe, "<": algebra.OpLt,
	"<=": algebra.OpLe, ">": algebra.OpGt, ">=": algebra.OpGe,
}

// EncodeExpr converts an expression to wire form (nil stays nil).
func EncodeExpr(e algebra.Expr) *Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case algebra.Attr:
		return &Expr{Op: "attr", Name: x.Name}
	case algebra.Const:
		v := EncodeValue(x.Value)
		return &Expr{Op: "const", Value: &v}
	case algebra.Arith:
		return &Expr{Op: "arith", Sub: x.Op.String(), L: EncodeExpr(x.L), R: EncodeExpr(x.R)}
	case algebra.Cmp:
		return &Expr{Op: "cmp", Sub: x.Op.String(), L: EncodeExpr(x.L), R: EncodeExpr(x.R)}
	case algebra.And:
		out := &Expr{Op: "and"}
		for _, t := range x.Terms {
			out.Terms = append(out.Terms, EncodeExpr(t))
		}
		return out
	case algebra.Or:
		out := &Expr{Op: "or"}
		for _, t := range x.Terms {
			out.Terms = append(out.Terms, EncodeExpr(t))
		}
		return out
	case algebra.Not:
		return &Expr{Op: "not", L: EncodeExpr(x.Term)}
	}
	return nil
}

// Decode converts a wire expression back (nil stays nil).
func (w *Expr) Decode() (algebra.Expr, error) {
	if w == nil {
		return nil, nil
	}
	switch w.Op {
	case "attr":
		return algebra.Attr{Name: w.Name}, nil
	case "const":
		if w.Value == nil {
			return nil, fmt.Errorf("wire: const without value")
		}
		v, err := w.Value.Decode()
		if err != nil {
			return nil, err
		}
		return algebra.Const{Value: v}, nil
	case "arith":
		op, ok := arithBySymbol[w.Sub]
		if !ok {
			return nil, fmt.Errorf("wire: unknown arith op %q", w.Sub)
		}
		l, err := w.L.Decode()
		if err != nil {
			return nil, err
		}
		r, err := w.R.Decode()
		if err != nil {
			return nil, err
		}
		return algebra.Arith{Op: op, L: l, R: r}, nil
	case "cmp":
		op, ok := cmpBySymbol[w.Sub]
		if !ok {
			return nil, fmt.Errorf("wire: unknown cmp op %q", w.Sub)
		}
		l, err := w.L.Decode()
		if err != nil {
			return nil, err
		}
		r, err := w.R.Decode()
		if err != nil {
			return nil, err
		}
		return algebra.Cmp{Op: op, L: l, R: r}, nil
	case "and", "or":
		terms := make([]algebra.Expr, len(w.Terms))
		for i, t := range w.Terms {
			d, err := t.Decode()
			if err != nil {
				return nil, err
			}
			terms[i] = d
		}
		if w.Op == "and" {
			return algebra.And{Terms: terms}, nil
		}
		return algebra.Or{Terms: terms}, nil
	case "not":
		l, err := w.L.Decode()
		if err != nil {
			return nil, err
		}
		return algebra.Not{Term: l}, nil
	}
	return nil, fmt.Errorf("wire: unknown expression op %q", w.Op)
}

// QuerySpec is the wire form of source.QuerySpec.
type QuerySpec struct {
	Rel   string   `json:"rel"`
	Attrs []string `json:"attrs,omitempty"`
	Cond  *Expr    `json:"cond,omitempty"`
}

// EncodeSpec converts a query spec.
func EncodeSpec(s source.QuerySpec) QuerySpec {
	return QuerySpec{Rel: s.Rel, Attrs: s.Attrs, Cond: EncodeExpr(s.Cond)}
}

// Decode converts a wire spec back.
func (w QuerySpec) Decode() (source.QuerySpec, error) {
	cond, err := w.Cond.Decode()
	if err != nil {
		return source.QuerySpec{}, err
	}
	return source.QuerySpec{Rel: w.Rel, Attrs: w.Attrs, Cond: cond}, nil
}

// Message is the protocol envelope. Exactly one payload field is set,
// according to Type.
type Message struct {
	Type string `json:"type"`
	ID   uint64 `json:"id,omitempty"`

	// type "query": a batched snapshot read.
	Specs []QuerySpec `json:"specs,omitempty"`
	// type "answer".
	AsOf    clock.Time `json:"asof,omitempty"`
	Answers []Relation `json:"answers,omitempty"`
	// type "announce".
	Source string     `json:"source,omitempty"`
	Time   clock.Time `json:"time,omitempty"`
	Delta  *Delta     `json:"delta,omitempty"`
	// type "announce": dense per-source sequence numbers for mediator-side
	// gap detection (source.Announcement semantics; 0 = sender does not
	// number its announcements, which disables detection).
	Seq      uint64 `json:"seq,omitempty"`
	FirstSeq uint64 `json:"fseq,omitempty"`
	// type "announce", from a federated tier: the barrier reason. A
	// barrier announcement carries no delta — it reports a downstream
	// publish (resync, re-annotation) whose state no delta stream
	// reconstructs, and quarantines the consumer into a snapshot resync
	// (source.Announcement.Barrier semantics).
	Barrier string `json:"barrier,omitempty"`
	// type "medquery": degradation policy ("" / "failfast" / "stale") and
	// the client's maximum tolerable staleness bound (0 = unbounded).
	Degrade  string     `json:"degrade,omitempty"`
	MaxStale clock.Time `json:"maxstale,omitempty"`
	// type "answer" to "medquery": set when the answer was served from
	// cached data for the listed sources (per-source staleness bounds).
	Degraded  bool         `json:"degraded,omitempty"`
	Staleness clock.Vector `json:"staleness,omitempty"`
	// type "answer" to "medquery"/"medversion": the published store
	// version the answer was computed against.
	Version uint64 `json:"version,omitempty"`
	// type "error".
	Error string `json:"error,omitempty"`
	// type "hello": server identifies itself.
	Name string `json:"name,omitempty"`
	// type "catalog" (reply): the source's relation schemas.
	Schemas []Schema `json:"schemas,omitempty"`
	// type "answer" to "medstats": the mediator's operation counters and
	// per-source health (core.Stats marshals as plain JSON).
	Stats *StatsPayload `json:"stats,omitempty"`
	// type "medevents": cap on the number of returned events (0 = server
	// default).
	Limit int `json:"limit,omitempty"`
	// type "answer" to "medmetrics": a full instrument snapshot.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
	// type "answer" to "medevents": the retained events, oldest first,
	// plus the total ever emitted (retained or evicted).
	Events      []metrics.Event `json:"events,omitempty"`
	EventsTotal uint64          `json:"events_total,omitempty"`
	// type "readvise": when set, the advisor only reports what it would
	// change — no re-annotation runs.
	DryRun bool `json:"dryrun,omitempty"`
	// type "answer" to "readvise": the advisor round's decision — observed
	// profile, proposed/applied flips, and justifications.
	Advice *AdvicePayload `json:"advice,omitempty"`
	// type "subscribe"/"unsubscribe": the view export to stream (must be a
	// fully materialized export of the mediator's current plan).
	Export string `json:"export,omitempty"`
	// type "subscribe": resume after this committed store version (0 = start
	// with a snapshot of the current version). MaxQueue/MaxLag mirror
	// core.SubscribeOptions (0 = server defaults / unbounded lag).
	FromVersion uint64     `json:"fromversion,omitempty"`
	MaxQueue    int        `json:"maxqueue,omitempty"`
	MaxLag      clock.Time `json:"maxlag,omitempty"`
	// type "frame": one subscription stream element. FrameKind is
	// "snapshot" (Snapshot holds the export's relation at version Version)
	// or "delta" (FrameDelta covers versions (First-1, Version]); Version,
	// Time, and Reflect carry the committed version's sequence number,
	// commit stamp, and Reflect vector; Coalesced counts extra commits
	// folded in under backpressure.
	//
	// Reflect is shared with two other message types: on "announce" from a
	// federated tier it is the announced version's ref′ vector in
	// base-source coordinates, and on an "answer" from a tiered backend it
	// is the answered version's (both source.Announcement.Reflect /
	// TieredBackend semantics — what lets the consuming mediator compose
	// validity vectors across hops, DESIGN.md §11).
	FrameKind  string        `json:"framekind,omitempty"`
	First      uint64        `json:"first,omitempty"`
	Reflect    clock.Vector  `json:"reflect,omitempty"`
	Snapshot   *Relation     `json:"snapshot,omitempty"`
	FrameDelta *RelDeltaCols `json:"framedelta,omitempty"`
	Coalesced  int           `json:"coalesced,omitempty"`
}

// EncodeSubFrame converts a core subscription frame to its wire form
// (snapshot relations and deltas travel columnar).
func EncodeSubFrame(f core.SubFrame) Message {
	m := Message{
		Type: "frame", Export: f.Export, FrameKind: f.Kind.String(),
		First: f.First, Version: f.Version,
		Time: f.Stamp, Reflect: f.Reflect, Coalesced: f.Coalesced,
	}
	if f.Snapshot != nil {
		snap := EncodeRelationColumnar(f.Snapshot)
		m.Snapshot = &snap
	}
	if f.Delta != nil {
		d := EncodeRelDeltaColumnar(f.Delta)
		m.FrameDelta = &d
	}
	return m
}

// DecodeSubFrame converts a wire "frame" message back to a core frame.
func DecodeSubFrame(m Message) (core.SubFrame, error) {
	f := core.SubFrame{
		Export: m.Export, First: m.First, Version: m.Version,
		Stamp: m.Time, Reflect: m.Reflect, Coalesced: m.Coalesced,
	}
	switch m.FrameKind {
	case "snapshot":
		f.Kind = core.SubSnapshot
		if m.Snapshot == nil {
			return core.SubFrame{}, fmt.Errorf("wire: snapshot frame without relation")
		}
		rel, err := m.Snapshot.Decode()
		if err != nil {
			return core.SubFrame{}, err
		}
		f.Snapshot = rel
	case "delta":
		f.Kind = core.SubDelta
		if m.FrameDelta == nil {
			return core.SubFrame{}, fmt.Errorf("wire: delta frame without delta")
		}
		d, err := m.FrameDelta.Decode()
		if err != nil {
			return core.SubFrame{}, err
		}
		f.Delta = d
	default:
		return core.SubFrame{}, fmt.Errorf("wire: unknown frame kind %q", m.FrameKind)
	}
	return f, nil
}

// encode marshals a message plus newline.
func encode(m Message) ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
