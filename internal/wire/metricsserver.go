package wire

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"squirrel/internal/core"
)

// MetricsServer exposes a mediator's instruments over HTTP for scraping
// and ad-hoc inspection:
//
//	/metrics       Prometheus text exposition format (0.0.4)
//	/debug/vars    the full metrics.Snapshot as JSON (instruments + events)
//	/debug/pprof/  the standard Go profiling endpoints
//
// It is deliberately separate from MediatorServer: the query protocol
// listens on the application port, observability on an operator port, so
// a firewall can keep profiling endpoints off the application network.
type MetricsServer struct {
	med *core.Mediator

	mu  sync.Mutex
	ln  net.Listener
	srv *http.Server
}

// NewMetricsServer wraps a mediator.
func NewMetricsServer(med *core.Mediator) *MetricsServer {
	return &MetricsServer{med: med}
}

// Handler returns the server's HTTP handler, for embedding in an existing
// mux instead of a dedicated listener.
func (s *MetricsServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.med.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(s.med.MetricsSnapshot())
	})
	// The pprof handlers are mounted on this private mux explicitly (not
	// via the package's DefaultServeMux side effect), so importing this
	// package never exposes profiling on a mux we don't own.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (":0" for ephemeral) and serves in the
// background, returning the bound address.
func (s *MetricsServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and shuts the server down.
func (s *MetricsServer) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.ln, s.srv = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
