package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
)

// StatsPayload is the wire form of the mediator's counters — core.Stats
// marshals directly (all fields exported, health values string-typed).
type StatsPayload = core.Stats

// AdvicePayload is the wire form of one adaptive-annotation decision round
// — core.AdaptDecision marshals directly (all fields exported).
type AdvicePayload = core.AdaptDecision

// MediatorServer exposes a mediator's Query Processor over TCP, completing
// the Figure 3 deployment: applications connect to the mediator exactly as
// the mediator connects to its sources. Each connection is served on its
// own goroutine, and the mediator's query path is lock-free against a
// published store version — so concurrent clients' purely-materialized
// queries proceed in parallel, even while update transactions run.
type MediatorServer struct {
	med *core.Mediator

	mu     sync.Mutex
	adapt  *core.AdaptController
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewMediatorServer wraps a mediator.
func NewMediatorServer(med *core.Mediator) *MediatorServer {
	return &MediatorServer{med: med, conns: make(map[net.Conn]struct{})}
}

// SetAdaptController attaches an adaptive-annotation controller so
// "readvise" requests share its workload window and hysteresis state
// (typically the controller whose loop is already running against this
// mediator). Without one, the first "readvise" lazily creates a manual
// controller owned by the server.
func (s *MediatorServer) SetAdaptController(ctrl *core.AdaptController) {
	s.mu.Lock()
	s.adapt = ctrl
	s.mu.Unlock()
}

// adaptController returns the attached controller, creating a manual one
// on first use.
func (s *MediatorServer) adaptController() *core.AdaptController {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.adapt == nil {
		s.adapt = core.NewAdaptController(s.med, core.AdaptConfig{Manual: true})
	}
	return s.adapt
}

// Start listens on addr (":0" for ephemeral) and serves in the background,
// returning the bound address.
func (s *MediatorServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *MediatorServer) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *MediatorServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Subscription pump goroutines share the connection's writer with the
	// request/reply loop, so sends are serialized behind wmu. Replies and
	// frames may interleave, but each message is written atomically.
	w := bufio.NewWriter(conn)
	var wmu sync.Mutex
	send := func(m Message) bool {
		b, err := encode(m)
		if err != nil {
			return false
		}
		wmu.Lock()
		defer wmu.Unlock()
		if _, err := w.Write(b); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	// subs tracks this connection's live subscriptions by export (touched
	// only by this goroutine); their pump goroutines exit when the
	// subscription closes or the connection dies.
	subs := make(map[string]*core.Subscription)
	var pumps sync.WaitGroup
	defer func() {
		for _, sub := range subs {
			sub.Close()
		}
		pumps.Wait()
	}()
	if !send(Message{Type: "hello", Name: "mediator"}) {
		return
	}
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for scanner.Scan() {
		var m Message
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			if !send(Message{Type: "error", Error: "bad message: " + err.Error()}) {
				return
			}
			continue
		}
		switch m.Type {
		case "medquery":
			var cond algebra.Expr
			var err error
			if len(m.Specs) != 1 {
				err = fmt.Errorf("medquery needs exactly one spec")
			} else {
				cond, err = m.Specs[0].Cond.Decode()
			}
			if err != nil {
				if !send(Message{Type: "error", ID: m.ID, Error: err.Error()}) {
					return
				}
				continue
			}
			opts := core.QueryOptions{MaxStaleness: m.MaxStale}
			if m.Degrade == "stale" {
				opts.Degrade = core.ServeStale
			}
			res, err := s.med.QueryOpts(m.Specs[0].Rel, m.Specs[0].Attrs, cond, opts)
			if err != nil {
				if !send(Message{Type: "error", ID: m.ID, Error: err.Error()}) {
					return
				}
				continue
			}
			if !send(Message{Type: "answer", ID: m.ID, AsOf: res.Committed,
				Answers:  []Relation{EncodeRelation(res.Answer)},
				Version:  res.Version,
				Degraded: res.Degraded, Staleness: res.Staleness}) {
				return
			}
		case "medversion":
			if !send(Message{Type: "answer", ID: m.ID, Version: s.med.StoreVersion()}) {
				return
			}
		case "medstats":
			st := s.med.Stats()
			if !send(Message{Type: "answer", ID: m.ID, Stats: &st}) {
				return
			}
		case "medmetrics":
			snap := s.med.MetricsSnapshot()
			if !send(Message{Type: "answer", ID: m.ID, Metrics: &snap}) {
				return
			}
		case "medevents":
			n := m.Limit
			if n <= 0 {
				n = 100
			}
			evs, total := s.med.Metrics().Events().Recent(n)
			if !send(Message{Type: "answer", ID: m.ID, Events: evs, EventsTotal: total}) {
				return
			}
		case "readvise":
			dec, err := s.adaptController().Readvise(m.DryRun)
			if err != nil {
				if !send(Message{Type: "error", ID: m.ID, Error: err.Error()}) {
					return
				}
				continue
			}
			if !send(Message{Type: "answer", ID: m.ID, Advice: dec}) {
				return
			}
		case "subscribe":
			sub, err := s.med.Subscribe(m.Export, core.SubscribeOptions{
				FromVersion: m.FromVersion, MaxQueue: m.MaxQueue, MaxLag: m.MaxLag})
			if err != nil {
				if !send(Message{Type: "error", ID: m.ID, Error: err.Error()}) {
					return
				}
				continue
			}
			if old := subs[m.Export]; old != nil {
				old.Close()
			}
			subs[m.Export] = sub
			if !send(Message{Type: "answer", ID: m.ID, Export: m.Export,
				Version: s.med.StoreVersion()}) {
				return
			}
			pumps.Add(1)
			go func(export string, sub *core.Subscription) {
				defer pumps.Done()
				for {
					f, err := sub.Recv()
					if err != nil {
						if err != core.ErrSubscriptionClosed {
							// A registry-side failure (barrier on a plan that
							// dropped the export): surface it on the stream.
							send(Message{Type: "error", Export: export, Error: err.Error()})
						}
						return
					}
					if !send(EncodeSubFrame(f)) {
						sub.Close()
						return
					}
				}
			}(m.Export, sub)
		case "unsubscribe":
			if sub := subs[m.Export]; sub != nil {
				sub.Close()
				delete(subs, m.Export)
			}
			if !send(Message{Type: "answer", ID: m.ID, Export: m.Export}) {
				return
			}
		case "sync":
			// Drain the update queue on request (a remote Flush).
			var flushed int
			var err error
			for {
				var ran bool
				ran, err = s.med.RunUpdateTransaction()
				if err != nil || !ran {
					break
				}
				flushed++
			}
			if err != nil {
				if !send(Message{Type: "error", ID: m.ID, Error: err.Error()}) {
					return
				}
				continue
			}
			if !send(Message{Type: "answer", ID: m.ID, AsOf: clock.Time(flushed)}) {
				return
			}
		default:
			if !send(Message{Type: "error", ID: m.ID, Error: "unknown message type " + m.Type}) {
				return
			}
		}
	}
}

// Close stops the listener, drops every connection (ending their
// subscription streams), and waits for in-flight handlers.
func (s *MediatorServer) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// MediatorClient is an application-side connection to a MediatorServer.
type MediatorClient struct {
	conn    net.Conn
	writer  *bufio.Writer
	scanner *bufio.Scanner
	mu      sync.Mutex
	nextID  uint64
}

// DialMediator connects to a mediator server and consumes its hello.
func DialMediator(addr string) (*MediatorClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &MediatorClient{
		conn:    conn,
		writer:  bufio.NewWriter(conn),
		scanner: bufio.NewScanner(conn),
	}
	c.scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	m, err := c.read()
	if err != nil || m.Type != "hello" {
		conn.Close()
		return nil, fmt.Errorf("wire: mediator handshake failed: %v", err)
	}
	return c, nil
}

func (c *MediatorClient) read() (Message, error) {
	if !c.scanner.Scan() {
		if err := c.scanner.Err(); err != nil {
			return Message{}, err
		}
		return Message{}, fmt.Errorf("wire: connection closed")
	}
	var m Message
	if err := json.Unmarshal(c.scanner.Bytes(), &m); err != nil {
		return Message{}, err
	}
	return m, nil
}

func (c *MediatorClient) roundTrip(m Message) (Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	m.ID = c.nextID
	b, err := encode(m)
	if err != nil {
		return Message{}, err
	}
	if _, err := c.writer.Write(b); err != nil {
		return Message{}, err
	}
	if err := c.writer.Flush(); err != nil {
		return Message{}, err
	}
	reply, err := c.read()
	if err != nil {
		return Message{}, err
	}
	if reply.Type == "error" {
		return Message{}, fmt.Errorf("wire: mediator error: %s", reply.Error)
	}
	return reply, nil
}

// Query answers π_attrs σ_cond (export) remotely; the returned time is
// the query transaction's commit time at the mediator.
func (c *MediatorClient) Query(export string, attrs []string, cond algebra.Expr) (*relation.Relation, clock.Time, error) {
	reply, err := c.roundTrip(Message{Type: "medquery",
		Specs: []QuerySpec{{Rel: export, Attrs: attrs, Cond: EncodeExpr(cond)}}})
	if err != nil {
		return nil, 0, err
	}
	if len(reply.Answers) != 1 {
		return nil, 0, fmt.Errorf("wire: expected one answer, got %d", len(reply.Answers))
	}
	ans, err := reply.Answers[0].Decode()
	if err != nil {
		return nil, 0, err
	}
	return ans, reply.AsOf, nil
}

// QueryVersioned is Query plus the published store version the answer was
// computed against.
func (c *MediatorClient) QueryVersioned(export string, attrs []string, cond algebra.Expr) (*relation.Relation, clock.Time, uint64, error) {
	reply, err := c.roundTrip(Message{Type: "medquery",
		Specs: []QuerySpec{{Rel: export, Attrs: attrs, Cond: EncodeExpr(cond)}}})
	if err != nil {
		return nil, 0, 0, err
	}
	if len(reply.Answers) != 1 {
		return nil, 0, 0, fmt.Errorf("wire: expected one answer, got %d", len(reply.Answers))
	}
	ans, err := reply.Answers[0].Decode()
	if err != nil {
		return nil, 0, 0, err
	}
	return ans, reply.AsOf, reply.Version, nil
}

// QueryStale is Query under the ServeStale degradation policy: if a
// polled source is down, the mediator may answer from cached data, and
// the returned vector carries the per-source staleness bounds (nil when
// nothing was degraded). maxStale > 0 refuses answers staler than that
// bound (Theorem 7.2's f̄ as a client-side contract); 0 accepts any age.
func (c *MediatorClient) QueryStale(export string, attrs []string, cond algebra.Expr, maxStale clock.Time) (*relation.Relation, clock.Time, clock.Vector, error) {
	reply, err := c.roundTrip(Message{Type: "medquery", Degrade: "stale", MaxStale: maxStale,
		Specs: []QuerySpec{{Rel: export, Attrs: attrs, Cond: EncodeExpr(cond)}}})
	if err != nil {
		return nil, 0, nil, err
	}
	if len(reply.Answers) != 1 {
		return nil, 0, nil, fmt.Errorf("wire: expected one answer, got %d", len(reply.Answers))
	}
	ans, err := reply.Answers[0].Decode()
	if err != nil {
		return nil, 0, nil, err
	}
	return ans, reply.AsOf, reply.Staleness, nil
}

// Stats fetches the mediator's operation counters and per-source health.
func (c *MediatorClient) Stats() (*StatsPayload, error) {
	reply, err := c.roundTrip(Message{Type: "medstats"})
	if err != nil {
		return nil, err
	}
	if reply.Stats == nil {
		return nil, fmt.Errorf("wire: stats reply without payload")
	}
	return reply.Stats, nil
}

// Metrics fetches a full snapshot of the mediator's instruments (latency
// histograms, counters, gauges) and its retained events.
func (c *MediatorClient) Metrics() (*metrics.Snapshot, error) {
	reply, err := c.roundTrip(Message{Type: "medmetrics"})
	if err != nil {
		return nil, err
	}
	if reply.Metrics == nil {
		return nil, fmt.Errorf("wire: metrics reply without payload")
	}
	return reply.Metrics, nil
}

// Events fetches up to n recent structured events (oldest first; n <= 0
// uses the server default) plus the total number ever emitted.
func (c *MediatorClient) Events(n int) ([]metrics.Event, uint64, error) {
	reply, err := c.roundTrip(Message{Type: "medevents", Limit: n})
	if err != nil {
		return nil, 0, err
	}
	return reply.Events, reply.EventsTotal, nil
}

// Readvise asks the mediator's adaptive-annotation advisor for one
// on-demand decision round (§5.3): it observes the workload window since
// the last round and either applies the advised re-annotation immediately
// (bypassing the controller's hysteresis and cooldown) or, with dryRun,
// only reports what it would change. The returned decision carries the
// observed profile, the proposed or applied flips, and the advisor's
// justifications.
func (c *MediatorClient) Readvise(dryRun bool) (*AdvicePayload, error) {
	reply, err := c.roundTrip(Message{Type: "readvise", DryRun: dryRun})
	if err != nil {
		return nil, err
	}
	if reply.Advice == nil {
		return nil, fmt.Errorf("wire: readvise reply without payload")
	}
	return reply.Advice, nil
}

// StoreVersion returns the mediator's currently published store version.
func (c *MediatorClient) StoreVersion() (uint64, error) {
	reply, err := c.roundTrip(Message{Type: "medversion"})
	if err != nil {
		return 0, err
	}
	return reply.Version, nil
}

// Sync asks the mediator to drain its update queue, returning how many
// update transactions ran.
func (c *MediatorClient) Sync() (int, error) {
	reply, err := c.roundTrip(Message{Type: "sync"})
	if err != nil {
		return 0, err
	}
	return int(reply.AsOf), nil
}

// Close tears down the connection.
func (c *MediatorClient) Close() error { return c.conn.Close() }
