package wire

import (
	"bufio"
	"encoding/json"
	"net"
	"testing"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// TestSubClientRedialResumesAfterHandedOffFrames is the regression test
// for the redial duplicate-frame race: the resume cursor must advance
// atomically with each frame's hand-off into the delivery channel, NOT
// when the consumer finally calls Next. The fake server makes the window
// deterministic — it pushes three frames, waits for the client's cursor
// to cover them WHILE THE CONSUMER HAS READ NONE, then severs the
// connection. A client whose cursor trails consumption would resubscribe
// below version 3 and the replay would hand versions the channel already
// holds to the consumer twice; the fixed client resubscribes after
// exactly the last handed-off frame, and the consumer sees every version
// once, in order.
func TestSubClientRedialResumesAfterHandedOffFrames(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	schema := relation.MustSchema("V", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}}, "a")
	snap := relation.New(schema, relation.Set)
	snap.Insert(relation.T(1))
	deltaFrame := func(v uint64) Message {
		rd := delta.NewRel("V")
		rd.Add(relation.T(int64(v)), 1)
		return EncodeSubFrame(core.SubFrame{
			Export: "V", Kind: core.SubDelta, Delta: rd,
			First: v, Version: v, Stamp: clock.Time(10 * v),
		})
	}

	// Fake mediator: serves the scripted handshake per connection and
	// reports each connection's subscribe FromVersion.
	fromVersions := make(chan uint64, 4)
	serveConn := func(conn net.Conn, frames []Message) {
		w := bufio.NewWriter(conn)
		send := func(m Message) {
			b, err := encode(m)
			if err != nil {
				t.Errorf("encode: %v", err)
				return
			}
			w.Write(b)
			w.Flush()
		}
		send(Message{Type: "hello", Name: "mediator"})
		scanner := bufio.NewScanner(conn)
		if !scanner.Scan() {
			t.Error("no subscribe request")
			return
		}
		var req Message
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil || req.Type != "subscribe" {
			t.Errorf("bad subscribe request: %v %q", err, scanner.Bytes())
			return
		}
		fromVersions <- req.FromVersion
		send(Message{Type: "answer", ID: req.ID, Export: req.Export})
		for _, f := range frames {
			send(f)
		}
	}
	firstDone := make(chan net.Conn, 1)
	go func() {
		// Connection 1: snapshot at v1 plus deltas v2, v3, then hold the
		// connection open (the test severs it once the cursor covers v3).
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		snapMsg := EncodeSubFrame(core.SubFrame{
			Export: "V", Kind: core.SubSnapshot, Snapshot: snap,
			First: 1, Version: 1, Stamp: clock.Time(10),
		})
		serveConn(conn, []Message{snapMsg, deltaFrame(2), deltaFrame(3)})
		firstDone <- conn
		// Connection 2: the resumed stream — one more delta.
		conn2, err := ln.Accept()
		if err != nil {
			return
		}
		serveConn(conn2, []Message{deltaFrame(4)})
	}()

	sc, err := SubscribeView(ln.Addr().String(), "V", SubOptions{
		Reconnect: true, RetryBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if from := <-fromVersions; from != 0 {
		t.Fatalf("initial subscribe FromVersion = %d, want 0", from)
	}

	// Do NOT consume: wait until the read loop has handed all three
	// frames to the channel (the cursor covers them), then cut the
	// connection. This is exactly the window where a consumer-side cursor
	// would still read 0.
	for deadline := time.Now().Add(10 * time.Second); sc.Delivered() < 3; {
		if time.Now().After(deadline) {
			t.Fatalf("cursor stuck at %d", sc.Delivered())
		}
		time.Sleep(time.Millisecond)
	}
	(<-firstDone).Close()

	// The redial must resume after the last handed-off frame — the
	// regression: a lagging cursor resubscribes at 0 here, and the replay
	// duplicates versions 1–3 behind the copies still in the channel.
	select {
	case from := <-fromVersions:
		if from != 3 {
			t.Fatalf("resumed subscribe FromVersion = %d, want 3", from)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client never resubscribed")
	}

	// The consumer drains everything: each version exactly once, in order.
	for want := uint64(1); want <= 4; want++ {
		f, err := sc.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", want, err)
		}
		if f.Version != want {
			t.Fatalf("got version %d, want %d (duplicate or gap)", f.Version, want)
		}
	}
	if sc.Resumes() != 1 {
		t.Fatalf("Resumes = %d, want 1", sc.Resumes())
	}
}
