package algebra

import (
	"strings"
	"testing"
)

func TestSubstAttrs(t *testing.T) {
	e := Conj(
		Eq(A("a"), A("b")),
		Lt(Add(A("a"), CInt(1)), Mul(A("c"), A("c"))),
		Or{Terms: []Expr{Not{Term: Ge(A("b"), CStr("x"))}}},
	)
	m := map[string]string{"a": "x1", "b": "x2"}
	got := SubstAttrs(e, m).String()
	for _, want := range []string{"x1 = x2", "(x1 + 1)", "x2 >="} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
	if strings.Contains(strings.ReplaceAll(strings.ReplaceAll(got, "x1", ""), "x2", ""), "a =") {
		t.Errorf("unsubstituted attrs remain: %q", got)
	}
	// c is not in the mapping: unchanged.
	if !strings.Contains(got, "(c * c)") {
		t.Errorf("unmapped attr must survive: %q", got)
	}
	if SubstAttrs(nil, m) != nil {
		t.Errorf("nil stays nil")
	}
	// Constants pass through.
	if SubstAttrs(CInt(5), m).String() != "5" {
		t.Errorf("const subst")
	}
}

func TestConjunctsOver(t *testing.T) {
	e := Conj(
		Eq(A("a"), CInt(1)),
		Lt(A("b"), CInt(2)),
		Gt(Add(A("a"), A("c")), CInt(0)),
	)
	push, rest := ConjunctsOver(e, map[string]bool{"a": true, "b": true})
	ps, rs := push.String(), rest.String()
	if !strings.Contains(ps, "a = 1") || !strings.Contains(ps, "b < 2") {
		t.Errorf("pushable = %q", ps)
	}
	if !strings.Contains(rs, "c") {
		t.Errorf("residual = %q", rs)
	}
	// All pushable.
	push2, rest2 := ConjunctsOver(Eq(A("a"), CInt(1)), map[string]bool{"a": true})
	if IsTrue(push2) || !IsTrue(rest2) {
		t.Errorf("all-pushable: %q / %q", push2, rest2)
	}
	// True input: both empty.
	p3, r3 := ConjunctsOver(True(), nil)
	if !IsTrue(p3) || !IsTrue(r3) {
		t.Errorf("true input")
	}
}

func TestBaseRelationsAllNodeTypes(t *testing.T) {
	e := Union{
		L: Diff{
			L: DistinctOf{Input: Scan{Rel: "A"}},
			R: Project{Input: Scan{Rel: "B"}, Cols: []string{"x"}},
		},
		R: Select{Input: Join{L: Scan{Rel: "C"}, R: Scan{Rel: "D"}}, Pred: True()},
	}
	got := BaseRelationsOf(e)
	if strings.Join(got, ",") != "A,B,C,D" {
		t.Errorf("base relations = %v", got)
	}
}

func TestCollectAttrsConstAndArith(t *testing.T) {
	set := map[string]bool{}
	CInt(1).CollectAttrs(set)
	if len(set) != 0 {
		t.Errorf("const collects nothing")
	}
	Add(A("p"), Div(A("q"), CInt(2))).CollectAttrs(set)
	if !set["p"] || !set["q"] {
		t.Errorf("arith attrs: %v", set)
	}
}

func TestArithOpStrings(t *testing.T) {
	for op, want := range map[ArithOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/"} {
		if op.String() != want {
			t.Errorf("%v != %s", op, want)
		}
	}
	if ArithOp(99).String() != "?" || CmpOp(99).String() != "?" {
		t.Errorf("unknown op strings")
	}
}
