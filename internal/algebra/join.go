package algebra

import (
	"fmt"

	"squirrel/internal/relation"
)

// equiPair is an equality conjunct leftAttr = rightAttr extracted from a
// join condition, expressed as attribute positions in the two inputs.
type equiPair struct {
	lpos, rpos int
}

// splitJoinCondition decomposes cond (a conjunction) into hash-joinable
// equality pairs between the two schemas plus a residual predicate to be
// evaluated over the concatenated tuple. Conjuncts that are not of the
// simple attr = attr cross-schema form land in the residual.
func splitJoinCondition(cond Expr, ls, rs *relation.Schema) (pairs []equiPair, residual Expr) {
	var resid []Expr
	var visit func(e Expr)
	visit = func(e Expr) {
		if IsTrue(e) {
			return
		}
		if a, ok := e.(And); ok {
			for _, t := range a.Terms {
				visit(t)
			}
			return
		}
		if c, ok := e.(Cmp); ok && c.Op == OpEq {
			la, lok := c.L.(Attr)
			ra, rok := c.R.(Attr)
			if lok && rok {
				if lp, ok1 := ls.AttrIndex(la.Name); ok1 {
					if rp, ok2 := rs.AttrIndex(ra.Name); ok2 {
						pairs = append(pairs, equiPair{lp, rp})
						return
					}
				}
				if lp, ok1 := ls.AttrIndex(ra.Name); ok1 {
					if rp, ok2 := rs.AttrIndex(la.Name); ok2 {
						pairs = append(pairs, equiPair{lp, rp})
						return
					}
				}
			}
		}
		resid = append(resid, e)
	}
	visit(cond)
	return pairs, Conj(resid...)
}

// EvalJoin joins two materialized relations under cond, producing a bag
// over the concatenated schema named outName. Equality conjuncts between
// the sides are executed with a hash join; any residual condition is
// applied to each candidate pair. A nil or true cond yields the cross
// product.
func EvalJoin(l, r *relation.Relation, cond Expr, outName string) (*relation.Relation, error) {
	outSchema, err := l.Schema().Concat(outName, r.Schema())
	if err != nil {
		return nil, err
	}
	out := relation.NewBag(outSchema)
	pairs, residual := splitJoinCondition(cond, l.Schema(), r.Schema())

	emit := func(lt relation.Tuple, ln int, rt relation.Tuple, rn int) error {
		joined := lt.Concat(rt)
		ok, err := EvalPred(residual, outSchema, joined)
		if err != nil {
			return err
		}
		if ok {
			out.Add(joined, ln*rn)
		}
		return nil
	}

	if len(pairs) == 0 {
		// Nested-loop cross product with residual filter.
		var evalErr error
		l.Each(func(lt relation.Tuple, ln int) bool {
			r.Each(func(rt relation.Tuple, rn int) bool {
				if err := emit(lt, ln, rt, rn); err != nil {
					evalErr = err
					return false
				}
				return true
			})
			return evalErr == nil
		})
		if evalErr != nil {
			return nil, evalErr
		}
		return out, nil
	}

	// Hash join: build on the smaller side — unless one side already has a
	// persistent index over exactly the join attributes (§5.3's suggestion
	// that indexed joins avoid the expensive path), in which case probe it
	// directly and skip the build phase.
	build, probe := r, l
	buildPos := make([]int, len(pairs))
	probePos := make([]int, len(pairs))
	for i, p := range pairs {
		buildPos[i], probePos[i] = p.rpos, p.lpos
	}
	swapped := false
	swap := func() {
		build, probe = l, r
		for i, p := range pairs {
			buildPos[i], probePos[i] = p.lpos, p.rpos
		}
		swapped = true
	}
	attrNamesAt := func(rel *relation.Relation, positions []int) []string {
		names := make([]string, len(positions))
		all := rel.Schema().AttrNames()
		for i, p := range positions {
			names[i] = all[p]
		}
		return names
	}
	rIndexed := r.HasIndex(attrNamesAt(r, buildPos)...)
	lNames := make([]string, len(pairs))
	for i, p := range pairs {
		lNames[i] = l.Schema().AttrNames()[p.lpos]
	}
	lIndexed := l.HasIndex(lNames...)
	switch {
	case rIndexed:
		// keep r as build side, probe its index
	case lIndexed:
		swap()
	case l.Len() < r.Len():
		swap()
	}
	useIndex := (swapped && lIndexed) || (!swapped && rIndexed)

	var evalErr error
	if useIndex {
		buildNames := attrNamesAt(build, buildPos)
		probe.Each(func(pt relation.Tuple, pn int) bool {
			vals := make([]relation.Value, len(probePos))
			for i, p := range probePos {
				vals[i] = pt[p]
			}
			rows, err := build.Probe(buildNames, vals)
			if err != nil {
				evalErr = err
				return false
			}
			for _, brw := range rows {
				var err error
				if swapped {
					err = emit(brw.Tuple, brw.Count, pt, pn)
				} else {
					err = emit(pt, pn, brw.Tuple, brw.Count)
				}
				if err != nil {
					evalErr = err
					return false
				}
			}
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
		return out, nil
	}

	table := make(map[string][]relation.Row, build.Len())
	build.Each(func(t relation.Tuple, n int) bool {
		k := t.KeyOn(buildPos)
		table[k] = append(table[k], relation.Row{Tuple: t, Count: n})
		return true
	})
	probe.Each(func(pt relation.Tuple, pn int) bool {
		for _, brw := range table[pt.KeyOn(probePos)] {
			var err error
			if swapped {
				// build side is l, probe side is r
				err = emit(brw.Tuple, brw.Count, pt, pn)
			} else {
				err = emit(pt, pn, brw.Tuple, brw.Count)
			}
			if err != nil {
				evalErr = err
				return false
			}
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// JoinChain evaluates an n-way theta join of the given relations under a
// single condition evaluated over the full concatenated schema, folding
// left. Used by the VDP SPJ evaluator.
func JoinChain(rels []*relation.Relation, cond Expr, outName string) (*relation.Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("algebra: empty join chain")
	}
	if len(rels) == 1 {
		// Apply the condition as a selection.
		out := relation.NewBag(rels[0].Schema().Rename(outName))
		var evalErr error
		rels[0].Each(func(t relation.Tuple, n int) bool {
			ok, err := EvalPred(cond, rels[0].Schema(), t)
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				out.Add(t, n)
			}
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
		return out, nil
	}
	// Fold left. Push down only the conjuncts that are fully evaluable at
	// each intermediate stage; remaining conjuncts apply at the end.
	acc := rels[0]
	for i := 1; i < len(rels); i++ {
		name := outName
		var stageCond Expr
		if i == len(rels)-1 {
			stageCond = cond
		} else {
			stageCond, cond = splitEvaluable(cond, func(attrs map[string]bool) bool {
				// Evaluable if every attribute is in acc or rels[i].
				for a := range attrs {
					if !acc.Schema().HasAttr(a) && !rels[i].Schema().HasAttr(a) {
						return false
					}
				}
				return true
			})
			name = fmt.Sprintf("%s#%d", outName, i)
		}
		next, err := EvalJoin(acc, rels[i], stageCond, name)
		if err != nil {
			return nil, err
		}
		acc = next
	}
	return acc, nil
}

// splitEvaluable partitions a conjunction into the conjuncts for which
// canEval reports true (returned first) and the remainder.
func splitEvaluable(cond Expr, canEval func(attrs map[string]bool) bool) (now, later Expr) {
	var nowTerms, laterTerms []Expr
	var visit func(e Expr)
	visit = func(e Expr) {
		if IsTrue(e) {
			return
		}
		if a, ok := e.(And); ok {
			for _, t := range a.Terms {
				visit(t)
			}
			return
		}
		if canEval(Attrs(e)) {
			nowTerms = append(nowTerms, e)
		} else {
			laterTerms = append(laterTerms, e)
		}
	}
	visit(cond)
	return Conj(nowTerms...), Conj(laterTerms...)
}
