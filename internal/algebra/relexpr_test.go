package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"squirrel/internal/relation"
)

// Fixtures modeled on the paper's running example:
// R(r1, r2, r3, r4) key r1;  S(s1, s2, s3) key s1.
func paperCatalog(t testing.TB) MapCatalog {
	t.Helper()
	rs := relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}, {Name: "r4", Type: relation.KindInt}}, "r1")
	ss := relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt},
		{Name: "s3", Type: relation.KindInt}}, "s1")
	r := relation.NewSet(rs)
	r.Insert(relation.T(1, 10, 5, 100))
	r.Insert(relation.T(2, 10, 120, 100))
	r.Insert(relation.T(3, 20, 7, 100))
	r.Insert(relation.T(4, 30, 9, 50)) // fails r4=100
	s := relation.NewSet(ss)
	s.Insert(relation.T(10, 1, 20))
	s.Insert(relation.T(20, 2, 40))
	s.Insert(relation.T(30, 3, 80)) // fails s3<50
	return MapCatalog{"R": r, "S": s}
}

// T = π_{r1,s1,s2}(σ_{r4=100} R ⋈_{r2=s1} σ_{s3<50} S)  (Example 2.1)
func paperView() RelExpr {
	return Project{
		Cols: []string{"r1", "s1", "s2"},
		As:   "T",
		Input: Join{
			L:  Select{Input: Scan{Rel: "R"}, Pred: Eq(A("r4"), CInt(100))},
			R:  Select{Input: Scan{Rel: "S"}, Pred: Lt(A("s3"), CInt(50))},
			On: Eq(A("r2"), A("s1")),
		},
	}
}

func TestPaperViewEvaluation(t *testing.T) {
	cat := paperCatalog(t)
	got, err := paperView().Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]int64{{1, 10, 1}, {2, 10, 1}, {3, 20, 2}}
	if got.Card() != len(want) {
		t.Fatalf("T = %s", got)
	}
	for _, w := range want {
		if !got.Contains(relation.T(w[0], w[1], w[2])) {
			t.Errorf("missing tuple %v in %s", w, got)
		}
	}
}

func TestScanUnknownRelation(t *testing.T) {
	if _, err := (Scan{Rel: "nope"}).Eval(paperCatalog(t)); err == nil {
		t.Errorf("unknown relation should error")
	}
}

func TestSelectErrorPropagates(t *testing.T) {
	cat := paperCatalog(t)
	if _, err := (Select{Input: Scan{Rel: "R"}, Pred: Eq(A("nope"), CInt(1))}).Eval(cat); err == nil {
		t.Errorf("bad predicate should error")
	}
}

func TestProjectBagSemantics(t *testing.T) {
	cat := paperCatalog(t)
	// π_{r2} R has duplicate r2=10 values: bag projection keeps counts.
	got, err := (Project{Input: Scan{Rel: "R"}, Cols: []string{"r2"}, As: "P"}).Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count(relation.T(10)) != 2 {
		t.Errorf("bag projection count = %d, want 2", got.Count(relation.T(10)))
	}
	if got.Card() != 4 || got.Len() != 3 {
		t.Errorf("card=%d len=%d", got.Card(), got.Len())
	}
	if _, err := (Project{Input: Scan{Rel: "R"}, Cols: []string{"zz"}}).Eval(cat); err == nil {
		t.Errorf("unknown projection attr should error")
	}
}

func TestJoinHashVsNestedLoop(t *testing.T) {
	cat := paperCatalog(t)
	// Equality join (hash path).
	hashJoin := Join{L: Scan{Rel: "R"}, R: Scan{Rel: "S"}, On: Eq(A("r2"), A("s1"))}
	hj, err := hashJoin.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	// Same condition forced through the residual (nested-loop) path by
	// wrapping in a non-extractable form: r2+0 = s1.
	nlJoin := Join{L: Scan{Rel: "R"}, R: Scan{Rel: "S"}, On: Eq(Add(A("r2"), CInt(0)), A("s1"))}
	nl, err := nlJoin.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if !hj.Equal(nl) {
		t.Fatalf("hash join and nested loop disagree:\n%s\nvs\n%s", hj, nl)
	}
	if hj.Card() != 4 {
		t.Errorf("join cardinality = %d", hj.Card())
	}
}

func TestJoinResidualCondition(t *testing.T) {
	cat := paperCatalog(t)
	// Mixed: hash pair + residual range condition.
	j := Join{L: Scan{Rel: "R"}, R: Scan{Rel: "S"},
		On: Conj(Eq(A("r2"), A("s1")), Lt(A("r3"), A("s3")))}
	got, err := j.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates with r2=s1: (1,10,5,100|10,1,20) r3=5<20 ok;
	// (2,10,120,100|10,1,20) 120<20 no; (3,20,7,100|20,2,40) 7<40 ok;
	// (4,30,9,50|30,3,80) 9<80 ok.
	if got.Card() != 3 {
		t.Errorf("residual join card = %d: %s", got.Card(), got)
	}
}

func TestJoinThetaInequality(t *testing.T) {
	cat := paperCatalog(t)
	// Pure inequality join like Example 5.1's a1²+a2 < b2².
	j := Join{L: Scan{Rel: "R"}, R: Scan{Rel: "S"},
		On: Lt(Add(Mul(A("r1"), A("r1")), A("r3")), Mul(A("s2"), A("s2")))}
	got, err := j.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	// r1²+r3: 1+5=6, 4+120=124, 9+7=16, 16+9=25; s2²: 1, 4, 9.
	// Matches: 6<9 only => 1 row... check: 6 vs 1,4,9 → 6<9 yes (1 row).
	// 16,25,124 all >= 9. So 1 row.
	if got.Card() != 1 {
		t.Errorf("theta join card = %d: %s", got.Card(), got)
	}
}

func TestJoinDuplicateAttrsRejected(t *testing.T) {
	cat := paperCatalog(t)
	j := Join{L: Scan{Rel: "R"}, R: Scan{Rel: "R"}}
	if _, err := j.Eval(cat); err == nil {
		t.Errorf("self-join without renaming must be rejected")
	}
}

func TestJoinMultiplicities(t *testing.T) {
	s1 := relation.MustSchema("A", []relation.Attribute{{Name: "x", Type: relation.KindInt}})
	s2 := relation.MustSchema("B", []relation.Attribute{{Name: "y", Type: relation.KindInt}})
	a := relation.NewBag(s1)
	a.Add(relation.T(1), 2)
	b := relation.NewBag(s2)
	b.Add(relation.T(1), 3)
	got, err := EvalJoin(a, b, Eq(A("x"), A("y")), "AB")
	if err != nil {
		t.Fatal(err)
	}
	if got.Count(relation.T(1, 1)) != 6 {
		t.Errorf("bag join must multiply counts: %d", got.Count(relation.T(1, 1)))
	}
}

func TestUnionAndDiff(t *testing.T) {
	s := relation.MustSchema("A", []relation.Attribute{{Name: "x", Type: relation.KindInt}})
	a := relation.NewBag(s)
	a.Insert(relation.T(1))
	a.Insert(relation.T(2))
	b := relation.NewBag(s.Rename("B"))
	b.Insert(relation.T(2))
	b.Insert(relation.T(3))
	cat := MapCatalog{"A": a, "B": b}

	u, err := (Union{L: Scan{Rel: "A"}, R: Scan{Rel: "B"}}).Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if u.Card() != 4 || u.Count(relation.T(2)) != 2 {
		t.Errorf("bag union: %s", u)
	}
	d, err := (Diff{L: Scan{Rel: "A"}, R: Scan{Rel: "B"}}).Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if d.Card() != 1 || !d.Contains(relation.T(1)) {
		t.Errorf("difference: %s", d)
	}
	if d.Semantics() != relation.Set {
		t.Errorf("difference must be a set")
	}

	// Incompatible shapes must be rejected.
	wide := relation.NewBag(relation.MustSchema("W", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt}}))
	cat["W"] = wide
	if _, err := (Union{L: Scan{Rel: "A"}, R: Scan{Rel: "W"}}).Eval(cat); err == nil {
		t.Errorf("union shape mismatch should error")
	}
	if _, err := (Diff{L: Scan{Rel: "A"}, R: Scan{Rel: "W"}}).Eval(cat); err == nil {
		t.Errorf("diff shape mismatch should error")
	}
}

func TestDistinctOf(t *testing.T) {
	s := relation.MustSchema("A", []relation.Attribute{{Name: "x", Type: relation.KindInt}})
	a := relation.NewBag(s)
	a.Add(relation.T(1), 3)
	got, err := (DistinctOf{Input: Scan{Rel: "A"}}).Eval(MapCatalog{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != 1 {
		t.Errorf("distinct: %s", got)
	}
}

func TestJoinChain(t *testing.T) {
	cat := paperCatalog(t)
	us := relation.MustSchema("U", []relation.Attribute{
		{Name: "u1", Type: relation.KindInt}, {Name: "u2", Type: relation.KindInt}}, "u1")
	u := relation.NewSet(us)
	u.Insert(relation.T(1, 100))
	u.Insert(relation.T(2, 200))
	r, _ := cat.Relation("R")
	s, _ := cat.Relation("S")
	got, err := JoinChain([]*relation.Relation{r, s, u},
		Conj(Eq(A("r2"), A("s1")), Eq(A("r1"), A("u1"))), "RSU")
	if err != nil {
		t.Fatal(err)
	}
	// r2=s1 matches r1∈{1,2,3}; u1∈{1,2} verse r1 → 2 rows.
	if got.Card() != 2 {
		t.Errorf("3-way join card = %d: %s", got.Card(), got)
	}
	if got.Schema().Arity() != 4+3+2 {
		t.Errorf("3-way join arity = %d", got.Schema().Arity())
	}
	// Single-relation chain behaves as selection.
	single, err := JoinChain([]*relation.Relation{r}, Eq(A("r4"), CInt(100)), "RR")
	if err != nil {
		t.Fatal(err)
	}
	if single.Card() != 3 {
		t.Errorf("single chain card = %d", single.Card())
	}
	if _, err := JoinChain(nil, nil, "X"); err == nil {
		t.Errorf("empty chain should error")
	}
}

func TestBaseRelationsOf(t *testing.T) {
	got := BaseRelationsOf(paperView())
	if len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Errorf("base relations = %v", got)
	}
}

func TestRelExprStrings(t *testing.T) {
	s := paperView().String()
	for _, want := range []string{"π", "σ", "⋈", "R", "S"} {
		if !contains(s, want) {
			t.Errorf("missing %q in %q", want, s)
		}
	}
	_ = (Union{L: Scan{Rel: "A"}, R: Scan{Rel: "B"}}).String()
	_ = (Diff{L: Scan{Rel: "A"}, R: Scan{Rel: "B"}}).String()
	_ = (DistinctOf{Input: Scan{Rel: "A"}}).String()
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: hash-join output equals brute-force nested-loop output on
// random bags.
func TestJoinEquivalenceProperty(t *testing.T) {
	as := relation.MustSchema("A", []relation.Attribute{
		{Name: "a1", Type: relation.KindInt}, {Name: "a2", Type: relation.KindInt}})
	bs := relation.MustSchema("B", []relation.Attribute{
		{Name: "b1", Type: relation.KindInt}, {Name: "b2", Type: relation.KindInt}})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := relation.NewBag(as)
		b := relation.NewBag(bs)
		for i := 0; i < 20; i++ {
			a.Add(relation.T(rng.Intn(5), rng.Intn(5)), rng.Intn(2)+1)
			b.Add(relation.T(rng.Intn(5), rng.Intn(5)), rng.Intn(2)+1)
		}
		cond := Eq(A("a1"), A("b1"))
		fast, err := EvalJoin(a, b, cond, "J")
		if err != nil {
			return false
		}
		// Brute force.
		js, _ := as.Concat("J", bs)
		slow := relation.NewBag(js)
		a.Each(func(at relation.Tuple, an int) bool {
			b.Each(func(bt relation.Tuple, bn int) bool {
				joined := at.Concat(bt)
				if ok, _ := EvalPred(cond, js, joined); ok {
					slow.Add(joined, an*bn)
				}
				return true
			})
			return true
		})
		return fast.Equal(slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIndexAwareJoinEquivalence(t *testing.T) {
	// A persistent index on the join attribute must produce identical
	// results to the transient hash build.
	as := relation.MustSchema("A", []relation.Attribute{
		{Name: "a1", Type: relation.KindInt}, {Name: "a2", Type: relation.KindInt}})
	bs := relation.MustSchema("B", []relation.Attribute{
		{Name: "b1", Type: relation.KindInt}, {Name: "b2", Type: relation.KindInt}})
	rng := rand.New(rand.NewSource(5))
	plainA, plainB := relation.NewBag(as), relation.NewBag(bs)
	idxA, idxB := relation.NewBag(as), relation.NewBag(bs)
	if err := idxB.BuildIndex("b1"); err != nil {
		t.Fatal(err)
	}
	if err := idxA.BuildIndex("a1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		ta := relation.T(rng.Intn(8), rng.Intn(5))
		tb := relation.T(rng.Intn(8), rng.Intn(5))
		plainA.Add(ta, 1)
		idxA.Add(ta, 1)
		plainB.Add(tb, 1)
		idxB.Add(tb, 1)
	}
	cond := Eq(A("a1"), A("b1"))
	want, err := EvalJoin(plainA, plainB, cond, "J")
	if err != nil {
		t.Fatal(err)
	}
	// Index on the right side.
	got1, err := EvalJoin(plainA, idxB, cond, "J")
	if err != nil {
		t.Fatal(err)
	}
	if !got1.Equal(want) {
		t.Fatalf("right-index join diverged:\n%svs\n%s", got1, want)
	}
	// Index on the left side.
	got2, err := EvalJoin(idxA, plainB, cond, "J")
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want) {
		t.Fatalf("left-index join diverged:\n%svs\n%s", got2, want)
	}
	// Indexes on both: either path must still be exact.
	got3, err := EvalJoin(idxA, idxB, cond, "J")
	if err != nil {
		t.Fatal(err)
	}
	if !got3.Equal(want) {
		t.Fatalf("both-index join diverged")
	}
}
