package algebra

import (
	"strings"
	"testing"

	"squirrel/internal/relation"
)

func env(t *testing.T, attrs map[string]relation.Value) Env {
	t.Helper()
	return mapEnv(attrs)
}

type mapEnv map[string]relation.Value

func (m mapEnv) Lookup(name string) (relation.Value, bool) {
	v, ok := m[name]
	return v, ok
}

func TestAttrAndConst(t *testing.T) {
	e := env(t, map[string]relation.Value{"x": relation.Int(5)})
	v, err := A("x").Eval(e)
	if err != nil || v.AsInt() != 5 {
		t.Fatalf("attr: %v %v", v, err)
	}
	if _, err := A("missing").Eval(e); err == nil {
		t.Errorf("unknown attribute should error")
	}
	v, err = CStr("hi").Eval(e)
	if err != nil || v.AsString() != "hi" {
		t.Errorf("const: %v %v", v, err)
	}
}

func TestArithmetic(t *testing.T) {
	e := env(t, map[string]relation.Value{"x": relation.Int(7), "y": relation.Float(2)})
	cases := []struct {
		expr Expr
		want relation.Value
	}{
		{Add(A("x"), CInt(3)), relation.Int(10)},
		{Sub(A("x"), CInt(3)), relation.Int(4)},
		{Mul(A("x"), CInt(2)), relation.Int(14)},
		{Div(A("x"), CInt(2)), relation.Int(3)}, // integer division
		{Add(A("x"), A("y")), relation.Float(9)},
		{Div(A("x"), A("y")), relation.Float(3.5)},
		{Mul(A("y"), A("y")), relation.Float(4)}, // b2² from Example 5.1
	}
	for _, c := range cases {
		v, err := c.expr.Eval(e)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if !v.Equal(c.want) {
			t.Errorf("%s = %s, want %s", c.expr, v, c.want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	e := env(t, map[string]relation.Value{"s": relation.Str("x")})
	if _, err := Add(A("s"), CInt(1)).Eval(e); err == nil {
		t.Errorf("arithmetic on string should error")
	}
	if _, err := Div(CInt(1), CInt(0)).Eval(e); err == nil {
		t.Errorf("int division by zero should error")
	}
	if _, err := Div(CFloat(1), CFloat(0)).Eval(e); err == nil {
		t.Errorf("float division by zero should error")
	}
	if _, err := Add(A("missing"), CInt(1)).Eval(e); err == nil {
		t.Errorf("error must propagate from operands")
	}
}

func TestComparisons(t *testing.T) {
	e := env(t, map[string]relation.Value{"x": relation.Int(5)})
	cases := []struct {
		expr Expr
		want bool
	}{
		{Eq(A("x"), CInt(5)), true},
		{Ne(A("x"), CInt(5)), false},
		{Lt(A("x"), CInt(6)), true},
		{Le(A("x"), CInt(5)), true},
		{Gt(A("x"), CInt(5)), false},
		{Ge(A("x"), CInt(5)), true},
		{Eq(CStr("a"), CStr("a")), true},
		{Eq(CStr("a"), CInt(1)), false}, // cross-kind equality is false, not error
		{Ne(CStr("a"), CInt(1)), true},
	}
	for _, c := range cases {
		v, err := c.expr.Eval(e)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if v.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", c.expr, v.AsBool(), c.want)
		}
	}
	// Ordered comparison across incompatible kinds errors.
	if _, err := Lt(CStr("a"), CInt(1)).Eval(e); err == nil {
		t.Errorf("ordered cross-kind comparison should error")
	}
}

func TestLogical(t *testing.T) {
	e := env(t, map[string]relation.Value{"x": relation.Int(5)})
	tr := Eq(A("x"), CInt(5))
	fa := Eq(A("x"), CInt(6))
	cases := []struct {
		expr Expr
		want bool
	}{
		{And{Terms: []Expr{tr, tr}}, true},
		{And{Terms: []Expr{tr, fa}}, false},
		{And{}, true},
		{Or{Terms: []Expr{fa, tr}}, true},
		{Or{Terms: []Expr{fa, fa}}, false},
		{Or{}, false},
		{Not{Term: fa}, true},
		{Not{Term: tr}, false},
	}
	for _, c := range cases {
		v, err := c.expr.Eval(e)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if v.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", c.expr, v.AsBool(), c.want)
		}
	}
	// Non-boolean operands error.
	if _, err := (And{Terms: []Expr{CInt(1)}}).Eval(e); err == nil {
		t.Errorf("AND over int should error")
	}
	if _, err := (Or{Terms: []Expr{CInt(1)}}).Eval(e); err == nil {
		t.Errorf("OR over int should error")
	}
	if _, err := (Not{Term: CInt(1)}).Eval(e); err == nil {
		t.Errorf("NOT over int should error")
	}
}

func TestShortCircuit(t *testing.T) {
	// A("missing") would error; short-circuiting must avoid evaluating it.
	e := env(t, map[string]relation.Value{"x": relation.Int(5)})
	fa := Eq(A("x"), CInt(6))
	tr := Eq(A("x"), CInt(5))
	bad := Eq(A("missing"), CInt(1))
	if v, err := (And{Terms: []Expr{fa, bad}}).Eval(e); err != nil || v.AsBool() {
		t.Errorf("AND short circuit: %v %v", v, err)
	}
	if v, err := (Or{Terms: []Expr{tr, bad}}).Eval(e); err != nil || !v.AsBool() {
		t.Errorf("OR short circuit: %v %v", v, err)
	}
}

func TestConjDisj(t *testing.T) {
	a := Eq(A("x"), CInt(1))
	b := Lt(A("y"), CInt(2))
	if !IsTrue(Conj()) || !IsTrue(True()) || !IsTrue(nil) {
		t.Errorf("IsTrue on trivials")
	}
	if IsTrue(a) {
		t.Errorf("IsTrue on comparison")
	}
	if got := Conj(a); got.String() != a.String() {
		t.Errorf("single Conj should unwrap: %s", got)
	}
	c := Conj(a, True(), Conj(b, True()))
	if and, ok := c.(And); !ok || len(and.Terms) != 2 {
		t.Errorf("Conj flatten: %s", c)
	}
	d := Disj(a, Or{Terms: []Expr{b}})
	if or, ok := d.(Or); !ok || len(or.Terms) != 2 {
		t.Errorf("Disj flatten: %s", d)
	}
	if !IsTrue(Disj(a, True())) {
		t.Errorf("Disj with true is true")
	}
	if got := Disj(b); got.String() != b.String() {
		t.Errorf("single Disj should unwrap")
	}
}

func TestCollectAttrs(t *testing.T) {
	e := Conj(
		Eq(A("r1"), A("s1")),
		Lt(Add(A("r2"), CInt(1)), Mul(A("s2"), A("s2"))),
		Not{Term: Gt(A("r3"), CInt(0))},
		Or{Terms: []Expr{Eq(A("u"), CStr("x"))}},
	)
	got := Attrs(e)
	want := []string{"r1", "r2", "r3", "s1", "s2", "u"}
	if len(got) != len(want) {
		t.Fatalf("attrs = %v", got)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing attr %s", w)
		}
	}
	if len(Attrs(nil)) != 0 {
		t.Errorf("Attrs(nil) should be empty")
	}
}

func TestEvalPred(t *testing.T) {
	s := relation.MustSchema("R", []relation.Attribute{{Name: "a", Type: relation.KindInt}})
	ok, err := EvalPred(nil, s, relation.T(1))
	if err != nil || !ok {
		t.Errorf("nil predicate is true")
	}
	ok, err = EvalPred(Gt(A("a"), CInt(0)), s, relation.T(1))
	if err != nil || !ok {
		t.Errorf("predicate eval: %v %v", ok, err)
	}
	if _, err := EvalPred(CInt(3), s, relation.T(1)); err == nil {
		t.Errorf("non-boolean predicate should error")
	}
}

func TestExprStrings(t *testing.T) {
	e := Conj(Eq(A("x"), CInt(1)), Lt(A("y"), CStr("z")))
	s := e.String()
	for _, want := range []string{"x = 1", `y < "z"`, "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if (And{}).String() != "TRUE" || (Or{}).String() != "FALSE" {
		t.Errorf("trivial strings")
	}
	if !strings.Contains((Not{Term: e}).String(), "NOT") {
		t.Errorf("not string")
	}
	if got := Add(A("a"), CInt(1)).String(); got != "(a + 1)" {
		t.Errorf("arith string: %s", got)
	}
	for op, want := range map[CmpOp]string{OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="} {
		if op.String() != want {
			t.Errorf("op string %v", op)
		}
	}
}
