// Package algebra implements the attribute-based relational algebra the
// paper uses as its view-definition language (§5): scalar expressions and
// selection predicates over named attributes, and relational expressions
// (select, project, join, union, difference) with a hash-join evaluator.
//
// Predicates support arithmetic, so join conditions like the paper's
// Example 5.1 (a1² + a2 < b2²) are expressible directly.
package algebra

import (
	"fmt"
	"strings"

	"squirrel/internal/relation"
)

// Env resolves attribute names to values during expression evaluation.
type Env interface {
	Lookup(name string) (relation.Value, bool)
}

// TupleEnv binds a tuple to a schema for attribute lookup.
type TupleEnv struct {
	Schema *relation.Schema
	Tuple  relation.Tuple
}

// Lookup implements Env.
func (e TupleEnv) Lookup(name string) (relation.Value, bool) {
	i, ok := e.Schema.AttrIndex(name)
	if !ok {
		return relation.Null(), false
	}
	return e.Tuple[i], true
}

// Expr is a scalar expression over attributes.
type Expr interface {
	// Eval evaluates the expression in the given environment.
	Eval(env Env) (relation.Value, error)
	// CollectAttrs adds every attribute name referenced to the set.
	CollectAttrs(set map[string]bool)
	// String renders the expression in the surface syntax.
	String() string
}

// Attr references a named attribute.
type Attr struct{ Name string }

// Eval implements Expr.
func (a Attr) Eval(env Env) (relation.Value, error) {
	v, ok := env.Lookup(a.Name)
	if !ok {
		return relation.Null(), fmt.Errorf("algebra: unknown attribute %q", a.Name)
	}
	return v, nil
}

// CollectAttrs implements Expr.
func (a Attr) CollectAttrs(set map[string]bool) { set[a.Name] = true }

func (a Attr) String() string { return a.Name }

// Const is a literal value.
type Const struct{ Value relation.Value }

// Eval implements Expr.
func (c Const) Eval(Env) (relation.Value, error) { return c.Value, nil }

// CollectAttrs implements Expr.
func (c Const) CollectAttrs(map[string]bool) {}

func (c Const) String() string { return c.Value.String() }

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Arith applies an arithmetic operator to two numeric subexpressions.
// If both operands are ints the result is an int (integer division for /);
// otherwise the result is a float.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a Arith) Eval(env Env) (relation.Value, error) {
	l, err := a.L.Eval(env)
	if err != nil {
		return relation.Null(), err
	}
	r, err := a.R.Eval(env)
	if err != nil {
		return relation.Null(), err
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return relation.Null(), fmt.Errorf("algebra: arithmetic on non-numeric values %s %s %s", l, a.Op, r)
	}
	if l.Kind() == relation.KindInt && r.Kind() == relation.KindInt {
		x, y := l.AsInt(), r.AsInt()
		switch a.Op {
		case OpAdd:
			return relation.Int(x + y), nil
		case OpSub:
			return relation.Int(x - y), nil
		case OpMul:
			return relation.Int(x * y), nil
		case OpDiv:
			if y == 0 {
				return relation.Null(), fmt.Errorf("algebra: integer division by zero")
			}
			return relation.Int(x / y), nil
		}
	}
	x, y := l.AsFloat(), r.AsFloat()
	switch a.Op {
	case OpAdd:
		return relation.Float(x + y), nil
	case OpSub:
		return relation.Float(x - y), nil
	case OpMul:
		return relation.Float(x * y), nil
	case OpDiv:
		if y == 0 {
			return relation.Null(), fmt.Errorf("algebra: division by zero")
		}
		return relation.Float(x / y), nil
	}
	return relation.Null(), fmt.Errorf("algebra: bad arithmetic op %v", a.Op)
}

// CollectAttrs implements Expr.
func (a Arith) CollectAttrs(set map[string]bool) {
	a.L.CollectAttrs(set)
	a.R.CollectAttrs(set)
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Cmp compares two subexpressions, yielding a boolean.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c Cmp) Eval(env Env) (relation.Value, error) {
	l, err := c.L.Eval(env)
	if err != nil {
		return relation.Null(), err
	}
	r, err := c.R.Eval(env)
	if err != nil {
		return relation.Null(), err
	}
	if c.Op == OpEq || c.Op == OpNe {
		eq := l.Equal(r)
		if c.Op == OpNe {
			eq = !eq
		}
		return relation.Bool(eq), nil
	}
	n, err := l.Compare(r)
	if err != nil {
		return relation.Null(), err
	}
	var out bool
	switch c.Op {
	case OpLt:
		out = n < 0
	case OpLe:
		out = n <= 0
	case OpGt:
		out = n > 0
	case OpGe:
		out = n >= 0
	}
	return relation.Bool(out), nil
}

// CollectAttrs implements Expr.
func (c Cmp) CollectAttrs(set map[string]bool) {
	c.L.CollectAttrs(set)
	c.R.CollectAttrs(set)
}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// And is a conjunction of boolean subexpressions; the empty conjunction is
// true (used for unconditional selections).
type And struct{ Terms []Expr }

// Eval implements Expr (short-circuiting).
func (a And) Eval(env Env) (relation.Value, error) {
	for _, t := range a.Terms {
		v, err := t.Eval(env)
		if err != nil {
			return relation.Null(), err
		}
		if v.Kind() != relation.KindBool {
			return relation.Null(), fmt.Errorf("algebra: AND over non-boolean %s", v)
		}
		if !v.AsBool() {
			return relation.Bool(false), nil
		}
	}
	return relation.Bool(true), nil
}

// CollectAttrs implements Expr.
func (a And) CollectAttrs(set map[string]bool) {
	for _, t := range a.Terms {
		t.CollectAttrs(set)
	}
}

func (a And) String() string {
	if len(a.Terms) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Or is a disjunction of boolean subexpressions; the empty disjunction is
// false.
type Or struct{ Terms []Expr }

// Eval implements Expr (short-circuiting).
func (o Or) Eval(env Env) (relation.Value, error) {
	for _, t := range o.Terms {
		v, err := t.Eval(env)
		if err != nil {
			return relation.Null(), err
		}
		if v.Kind() != relation.KindBool {
			return relation.Null(), fmt.Errorf("algebra: OR over non-boolean %s", v)
		}
		if v.AsBool() {
			return relation.Bool(true), nil
		}
	}
	return relation.Bool(false), nil
}

// CollectAttrs implements Expr.
func (o Or) CollectAttrs(set map[string]bool) {
	for _, t := range o.Terms {
		t.CollectAttrs(set)
	}
}

func (o Or) String() string {
	if len(o.Terms) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(o.Terms))
	for i, t := range o.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// Not negates a boolean subexpression.
type Not struct{ Term Expr }

// Eval implements Expr.
func (n Not) Eval(env Env) (relation.Value, error) {
	v, err := n.Term.Eval(env)
	if err != nil {
		return relation.Null(), err
	}
	if v.Kind() != relation.KindBool {
		return relation.Null(), fmt.Errorf("algebra: NOT over non-boolean %s", v)
	}
	return relation.Bool(!v.AsBool()), nil
}

// CollectAttrs implements Expr.
func (n Not) CollectAttrs(set map[string]bool) { n.Term.CollectAttrs(set) }

func (n Not) String() string { return "NOT " + n.Term.String() }

// True is the always-true predicate.
func True() Expr { return And{} }

// IsTrue reports whether e is syntactically the always-true predicate
// (nil, an empty conjunction, or the literal true).
func IsTrue(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case And:
		return len(x.Terms) == 0
	case Const:
		return x.Value.Kind() == relation.KindBool && x.Value.AsBool()
	}
	return false
}

// Conj builds the conjunction of the given predicates, flattening nested
// Ands and dropping always-true terms; it returns True() when nothing
// remains.
func Conj(terms ...Expr) Expr {
	var out []Expr
	var add func(e Expr)
	add = func(e Expr) {
		if IsTrue(e) {
			return
		}
		if a, ok := e.(And); ok {
			for _, t := range a.Terms {
				add(t)
			}
			return
		}
		out = append(out, e)
	}
	for _, t := range terms {
		add(t)
	}
	if len(out) == 0 {
		return True()
	}
	if len(out) == 1 {
		return out[0]
	}
	return And{Terms: out}
}

// Disj builds the disjunction of the given predicates, flattening nested
// Ors. Used by the VAP when merging temporary-relation requests (f ∨ g,
// §6.3 step 2b).
func Disj(terms ...Expr) Expr {
	var out []Expr
	for _, t := range terms {
		if IsTrue(t) {
			return True()
		}
		if o, ok := t.(Or); ok {
			out = append(out, o.Terms...)
			continue
		}
		out = append(out, t)
	}
	if len(out) == 1 {
		return out[0]
	}
	return Or{Terms: out}
}

// Attrs returns the set of attribute names referenced by e (nil-safe).
func Attrs(e Expr) map[string]bool {
	set := make(map[string]bool)
	if e != nil {
		e.CollectAttrs(set)
	}
	return set
}

// EvalPred evaluates e as a predicate over (schema, tuple). A nil
// predicate is true.
func EvalPred(e Expr, schema *relation.Schema, tuple relation.Tuple) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(TupleEnv{Schema: schema, Tuple: tuple})
	if err != nil {
		return false, err
	}
	if v.Kind() != relation.KindBool {
		return false, fmt.Errorf("algebra: predicate yielded non-boolean %s", v)
	}
	return v.AsBool(), nil
}

// Convenience constructors used widely in tests, examples, and the parser.

// Eq builds the predicate l = r.
func Eq(l, r Expr) Expr { return Cmp{Op: OpEq, L: l, R: r} }

// Ne builds l <> r.
func Ne(l, r Expr) Expr { return Cmp{Op: OpNe, L: l, R: r} }

// Lt builds l < r.
func Lt(l, r Expr) Expr { return Cmp{Op: OpLt, L: l, R: r} }

// Le builds l <= r.
func Le(l, r Expr) Expr { return Cmp{Op: OpLe, L: l, R: r} }

// Gt builds l > r.
func Gt(l, r Expr) Expr { return Cmp{Op: OpGt, L: l, R: r} }

// Ge builds l >= r.
func Ge(l, r Expr) Expr { return Cmp{Op: OpGe, L: l, R: r} }

// A references attribute name.
func A(name string) Expr { return Attr{Name: name} }

// CInt is an integer literal.
func CInt(v int64) Expr { return Const{Value: relation.Int(v)} }

// CFloat is a float literal.
func CFloat(v float64) Expr { return Const{Value: relation.Float(v)} }

// CStr is a string literal.
func CStr(v string) Expr { return Const{Value: relation.Str(v)} }

// Add builds l + r.
func Add(l, r Expr) Expr { return Arith{Op: OpAdd, L: l, R: r} }

// Sub builds l - r.
func Sub(l, r Expr) Expr { return Arith{Op: OpSub, L: l, R: r} }

// Mul builds l * r.
func Mul(l, r Expr) Expr { return Arith{Op: OpMul, L: l, R: r} }

// Div builds l / r.
func Div(l, r Expr) Expr { return Arith{Op: OpDiv, L: l, R: r} }
