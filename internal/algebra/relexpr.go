package algebra

import (
	"fmt"
	"strings"

	"squirrel/internal/relation"
)

// Catalog resolves relation names to instances during evaluation.
type Catalog interface {
	Relation(name string) (*relation.Relation, error)
}

// MapCatalog is a Catalog backed by a map.
type MapCatalog map[string]*relation.Relation

// Relation implements Catalog.
func (m MapCatalog) Relation(name string) (*relation.Relation, error) {
	r, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("algebra: unknown relation %q", name)
	}
	return r, nil
}

// RelExpr is a relational-algebra expression tree.
type RelExpr interface {
	// Eval computes the expression over the catalog, producing a bag
	// relation (Distinct converts to a set where required).
	Eval(cat Catalog) (*relation.Relation, error)
	// BaseRelations adds the names of all base (leaf) relations referenced.
	BaseRelations(set map[string]bool)
	// String renders the expression.
	String() string
}

// Scan reads a base relation.
type Scan struct{ Rel string }

// Eval implements RelExpr.
func (s Scan) Eval(cat Catalog) (*relation.Relation, error) {
	r, err := cat.Relation(s.Rel)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// BaseRelations implements RelExpr.
func (s Scan) BaseRelations(set map[string]bool) { set[s.Rel] = true }

func (s Scan) String() string { return s.Rel }

// Select filters its input by a predicate.
type Select struct {
	Input RelExpr
	Pred  Expr
}

// Eval implements RelExpr.
func (s Select) Eval(cat Catalog) (*relation.Relation, error) {
	in, err := s.Input.Eval(cat)
	if err != nil {
		return nil, err
	}
	out := relation.NewBag(in.Schema())
	var evalErr error
	in.Each(func(t relation.Tuple, n int) bool {
		ok, err := EvalPred(s.Pred, in.Schema(), t)
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			out.Add(t, n)
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// BaseRelations implements RelExpr.
func (s Select) BaseRelations(set map[string]bool) { s.Input.BaseRelations(set) }

func (s Select) String() string {
	return fmt.Sprintf("σ[%s](%s)", exprString(s.Pred), s.Input)
}

// Project projects its input onto the named columns (bag projection:
// multiplicities are preserved and merged).
type Project struct {
	Input RelExpr
	Cols  []string
	// As optionally renames the output relation.
	As string
}

// Eval implements RelExpr.
func (p Project) Eval(cat Catalog) (*relation.Relation, error) {
	in, err := p.Input.Eval(cat)
	if err != nil {
		return nil, err
	}
	name := p.As
	if name == "" {
		name = in.Schema().Name()
	}
	schema, err := in.Schema().Project(name, p.Cols)
	if err != nil {
		return nil, err
	}
	positions, err := in.Schema().Positions(p.Cols)
	if err != nil {
		return nil, err
	}
	out := relation.NewBag(schema)
	in.Each(func(t relation.Tuple, n int) bool {
		out.Add(t.Project(positions), n)
		return true
	})
	return out, nil
}

// BaseRelations implements RelExpr.
func (p Project) BaseRelations(set map[string]bool) { p.Input.BaseRelations(set) }

func (p Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Cols, ","), p.Input)
}

// Join is a theta join of two inputs. Attribute names of the two sides
// must be disjoint; On may be nil (cross product). Equality conjuncts of
// the form leftAttr = rightAttr are executed as hash joins.
type Join struct {
	L, R RelExpr
	On   Expr
	// As optionally names the output relation (default "⋈").
	As string
}

// Eval implements RelExpr.
func (j Join) Eval(cat Catalog) (*relation.Relation, error) {
	l, err := j.L.Eval(cat)
	if err != nil {
		return nil, err
	}
	r, err := j.R.Eval(cat)
	if err != nil {
		return nil, err
	}
	return EvalJoin(l, r, j.On, j.name())
}

func (j Join) name() string {
	if j.As != "" {
		return j.As
	}
	return "join"
}

// BaseRelations implements RelExpr.
func (j Join) BaseRelations(set map[string]bool) {
	j.L.BaseRelations(set)
	j.R.BaseRelations(set)
}

func (j Join) String() string {
	return fmt.Sprintf("(%s ⋈[%s] %s)", j.L, exprString(j.On), j.R)
}

// Union is the bag union (multiplicities add). Inputs must be
// union-compatible (same shape); the output takes the left input's schema.
type Union struct{ L, R RelExpr }

// Eval implements RelExpr.
func (u Union) Eval(cat Catalog) (*relation.Relation, error) {
	l, err := u.L.Eval(cat)
	if err != nil {
		return nil, err
	}
	r, err := u.R.Eval(cat)
	if err != nil {
		return nil, err
	}
	if !l.Schema().SameShape(r.Schema()) {
		return nil, fmt.Errorf("algebra: union of incompatible shapes %s and %s", l.Schema(), r.Schema())
	}
	out := relation.NewBag(l.Schema())
	l.Each(func(t relation.Tuple, n int) bool { out.Add(t, n); return true })
	r.Each(func(t relation.Tuple, n int) bool { out.Add(t, n); return true })
	return out, nil
}

// BaseRelations implements RelExpr.
func (u Union) BaseRelations(set map[string]bool) {
	u.L.BaseRelations(set)
	u.R.BaseRelations(set)
}

func (u Union) String() string { return fmt.Sprintf("(%s ∪ %s)", u.L, u.R) }

// Diff is the set difference: distinct tuples of L not occurring in R
// (§5.1 difference nodes are set nodes; operands are read as sets).
type Diff struct{ L, R RelExpr }

// Eval implements RelExpr.
func (d Diff) Eval(cat Catalog) (*relation.Relation, error) {
	l, err := d.L.Eval(cat)
	if err != nil {
		return nil, err
	}
	r, err := d.R.Eval(cat)
	if err != nil {
		return nil, err
	}
	if !l.Schema().SameShape(r.Schema()) {
		return nil, fmt.Errorf("algebra: difference of incompatible shapes %s and %s", l.Schema(), r.Schema())
	}
	out := relation.NewSet(l.Schema())
	l.Each(func(t relation.Tuple, _ int) bool {
		// Shape-compatible but distinct schemas: compare by tuple key.
		if r.Count(t) == 0 {
			out.Insert(t)
		}
		return true
	})
	return out, nil
}

// BaseRelations implements RelExpr.
func (d Diff) BaseRelations(set map[string]bool) {
	d.L.BaseRelations(set)
	d.R.BaseRelations(set)
}

func (d Diff) String() string { return fmt.Sprintf("(%s − %s)", d.L, d.R) }

// DistinctOf converts its input to set semantics.
type DistinctOf struct{ Input RelExpr }

// Eval implements RelExpr.
func (d DistinctOf) Eval(cat Catalog) (*relation.Relation, error) {
	in, err := d.Input.Eval(cat)
	if err != nil {
		return nil, err
	}
	return in.Distinct(), nil
}

// BaseRelations implements RelExpr.
func (d DistinctOf) BaseRelations(set map[string]bool) { d.Input.BaseRelations(set) }

func (d DistinctOf) String() string { return fmt.Sprintf("δ(%s)", d.Input) }

func exprString(e Expr) string {
	if e == nil {
		return "TRUE"
	}
	return e.String()
}

// BaseRelationsOf returns the sorted base relations of e.
func BaseRelationsOf(e RelExpr) []string {
	set := make(map[string]bool)
	e.BaseRelations(set)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
