package algebra

// SubstAttrs returns a copy of e with attribute references renamed
// according to mapping; attributes absent from the mapping are unchanged.
// Used when pushing conditions through the positional renames of union and
// difference branches in a VDP.
func SubstAttrs(e Expr, mapping map[string]string) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case Attr:
		if to, ok := mapping[x.Name]; ok {
			return Attr{Name: to}
		}
		return x
	case Const:
		return x
	case Arith:
		return Arith{Op: x.Op, L: SubstAttrs(x.L, mapping), R: SubstAttrs(x.R, mapping)}
	case Cmp:
		return Cmp{Op: x.Op, L: SubstAttrs(x.L, mapping), R: SubstAttrs(x.R, mapping)}
	case And:
		terms := make([]Expr, len(x.Terms))
		for i, t := range x.Terms {
			terms[i] = SubstAttrs(t, mapping)
		}
		return And{Terms: terms}
	case Or:
		terms := make([]Expr, len(x.Terms))
		for i, t := range x.Terms {
			terms[i] = SubstAttrs(t, mapping)
		}
		return Or{Terms: terms}
	case Not:
		return Not{Term: SubstAttrs(x.Term, mapping)}
	}
	return e
}

// ConjunctsOver partitions predicate e (viewed as a conjunction) into the
// conjuncts whose attributes all lie within avail, and the rest. Used to
// push selection conditions toward source databases.
func ConjunctsOver(e Expr, avail map[string]bool) (pushable, residual Expr) {
	var push, rest []Expr
	var visit func(t Expr)
	visit = func(t Expr) {
		if IsTrue(t) {
			return
		}
		if a, ok := t.(And); ok {
			for _, term := range a.Terms {
				visit(term)
			}
			return
		}
		all := true
		for attr := range Attrs(t) {
			if !avail[attr] {
				all = false
				break
			}
		}
		if all {
			push = append(push, t)
		} else {
			rest = append(rest, t)
		}
	}
	visit(e)
	return Conj(push...), Conj(rest...)
}
