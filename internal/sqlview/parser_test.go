package sqlview

import (
	"strings"
	"testing"

	"squirrel/internal/algebra"
	"squirrel/internal/relation"
)

func TestParsePaperView(t *testing.T) {
	stmt, err := Parse(`SELECT r1, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Op != "" || stmt.Right != nil {
		t.Fatalf("unexpected set op")
	}
	sel := stmt.Left
	if len(sel.Cols) != 3 || sel.Cols[0] != "r1" {
		t.Errorf("cols = %v", sel.Cols)
	}
	if len(sel.Tables) != 2 || sel.Tables[0].Rel != "R" || sel.Tables[1].Rel != "S" {
		t.Errorf("tables = %v", sel.Tables)
	}
	if len(sel.JoinConds) != 1 || sel.JoinConds[0] == nil {
		t.Fatalf("join conds = %v", sel.JoinConds)
	}
	if sel.Where == nil || !strings.Contains(sel.Where.String(), "AND") {
		t.Errorf("where = %v", sel.Where)
	}
}

func TestParseAndEvaluate(t *testing.T) {
	rs := relation.MustSchema("R", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}, {Name: "r4", Type: relation.KindInt}}, "r1")
	ss := relation.MustSchema("S", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt},
		{Name: "s3", Type: relation.KindInt}}, "s1")
	r := relation.NewSet(rs)
	r.Insert(relation.T(1, 10, 5, 100))
	r.Insert(relation.T(2, 20, 6, 50))
	s := relation.NewSet(ss)
	s.Insert(relation.T(10, 7, 20))
	s.Insert(relation.T(20, 8, 90))
	cat := algebra.MapCatalog{"R": r, "S": s}

	stmt, err := Parse(`SELECT r1, s1, s2 FROM R JOIN S ON r2 = s1 WHERE r4 = 100 AND s3 < 50`)
	if err != nil {
		t.Fatal(err)
	}
	expr, err := stmt.ToRelExpr("T")
	if err != nil {
		t.Fatal(err)
	}
	got, err := expr.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != 1 || !got.Contains(relation.T(1, 10, 7)) {
		t.Fatalf("eval = %s", got)
	}
	if got.Schema().Name() != "T" {
		t.Errorf("output name = %s", got.Schema().Name())
	}
}

func TestParseUnionExcept(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM X WHERE a > 0 UNION SELECT b FROM Y`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Op != "UNION" || stmt.Right == nil {
		t.Fatalf("union not parsed: %+v", stmt)
	}
	stmt, err = Parse(`SELECT a FROM X EXCEPT SELECT b FROM Y WHERE b < 3`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Op != "EXCEPT" {
		t.Fatalf("except not parsed")
	}
	expr, err := stmt.ToRelExpr("G")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := expr.(algebra.Diff); !ok {
		t.Errorf("expected Diff, got %T", expr)
	}
}

func TestParseSelectStar(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM R`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Left.Cols != nil {
		t.Errorf("* should yield nil cols")
	}
	expr, err := stmt.ToRelExpr("V")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := expr.(algebra.Scan); !ok {
		t.Errorf("SELECT * FROM R should compile to a scan, got %T", expr)
	}
}

func TestParseCrossJoin(t *testing.T) {
	stmt, err := Parse(`SELECT a, b FROM X CROSS JOIN Y`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Left.Tables) != 2 || stmt.Left.JoinConds[0] != nil {
		t.Errorf("cross join: %+v", stmt.Left)
	}
}

func TestParseAlias(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM Orders AS o JOIN Customers AS c ON a = b`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Left.Tables[0].Name() != "o" || stmt.Left.Tables[1].Name() != "c" {
		t.Errorf("aliases: %+v", stmt.Left.Tables)
	}
	if stmt.Left.Tables[0].Rel != "Orders" {
		t.Errorf("rel name: %+v", stmt.Left.Tables[0])
	}
	plain := TableRef{Rel: "R"}
	if plain.Name() != "R" {
		t.Errorf("unaliased Name")
	}
}

func TestParseArithmeticPredicates(t *testing.T) {
	// Example 5.1's join condition: a1*a1 + a2 < b2*b2.
	e, err := ParseExpr(`a1*a1 + a2 < b2*b2`)
	if err != nil {
		t.Fatal(err)
	}
	s := relation.MustSchema("E", []relation.Attribute{
		{Name: "a1", Type: relation.KindInt}, {Name: "a2", Type: relation.KindInt},
		{Name: "b2", Type: relation.KindInt}})
	ok, err := algebra.EvalPred(e, s, relation.T(2, 3, 3)) // 4+3 < 9
	if err != nil || !ok {
		t.Errorf("pred: %v %v", ok, err)
	}
	ok, _ = algebra.EvalPred(e, s, relation.T(3, 1, 3)) // 10 < 9 false
	if ok {
		t.Errorf("pred should be false")
	}
}

func TestParseLiteralsAndPrecedence(t *testing.T) {
	e, err := ParseExpr(`1 + 2 * 3 = 7`)
	if err != nil {
		t.Fatal(err)
	}
	s := relation.MustSchema("X", []relation.Attribute{{Name: "dummy", Type: relation.KindInt}})
	ok, err := algebra.EvalPred(e, s, relation.T(0))
	if err != nil || !ok {
		t.Errorf("precedence: %v %v", ok, err)
	}
	e, err = ParseExpr(`(1 + 2) * 3 = 9`)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := algebra.EvalPred(e, s, relation.T(0)); !ok {
		t.Errorf("parenthesization")
	}
	e, err = ParseExpr(`-2 + 3 = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := algebra.EvalPred(e, s, relation.T(0)); !ok {
		t.Errorf("unary minus")
	}
	e, err = ParseExpr(`2.5 * 2 = 5.0`)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := algebra.EvalPred(e, s, relation.T(0)); !ok {
		t.Errorf("float literal")
	}
	e, err = ParseExpr(`name = 'O''Brien'`)
	if err != nil {
		t.Fatal(err)
	}
	ns := relation.MustSchema("N", []relation.Attribute{{Name: "name", Type: relation.KindString}})
	if ok, _ := algebra.EvalPred(e, ns, relation.T("O'Brien")); !ok {
		t.Errorf("quoted string escape")
	}
}

func TestParseBooleanOperators(t *testing.T) {
	s := relation.MustSchema("X", []relation.Attribute{{Name: "a", Type: relation.KindInt}})
	cases := []struct {
		src  string
		tup  int64
		want bool
	}{
		{`a > 0 AND a < 10`, 5, true},
		{`a > 0 AND a < 10`, 15, false},
		{`a < 0 OR a > 10`, 15, true},
		{`NOT a = 5`, 5, false},
		{`NOT (a = 5 OR a = 6)`, 7, true},
		{`a <> 3`, 4, true},
		{`a != 3`, 3, false},
		{`a >= 3 AND a <= 3`, 3, true},
		{`TRUE`, 0, true},
		{`FALSE OR a = 1`, 1, true},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		got, err := algebra.EvalPred(e, s, relation.T(c.tup))
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s with a=%d: got %v want %v", c.src, c.tup, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM R`,
		`SELECT a R`,
		`SELECT a FROM`,
		`SELECT a FROM R JOIN`,
		`SELECT a FROM R JOIN S`,     // missing ON
		`SELECT a FROM R JOIN S ON`,  // missing condition
		`SELECT a FROM R WHERE`,      // missing predicate
		`SELECT a FROM R WHERE a = `, // dangling operator
		`SELECT a FROM R trailing junk`,
		`SELECT a, FROM R`,
		`SELECT a FROM R AS`,
		`SELECT a FROM R CROSS S`, // CROSS must be followed by JOIN
		`SELECT a FROM R WHERE a = 'unterminated`,
		`SELECT a FROM R WHERE (a = 1`,
		`SELECT a FROM R WHERE a @ 1`,
		`SELECT a FROM R UNION`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	if _, err := ParseExpr(`a = 1 extra`); err == nil {
		t.Errorf("ParseExpr should reject trailing input")
	}
	if _, err := ParseExpr(`a @ 1`); err == nil {
		t.Errorf("ParseExpr should reject bad chars")
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	if _, err := Parse(`select a from R where a = 1 and a > 0`); err != nil {
		t.Errorf("lowercase keywords: %v", err)
	}
}

func TestThreeWayJoinParse(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM X JOIN Y ON a = b JOIN Z ON b = c WHERE a > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Left.Tables) != 3 || len(stmt.Left.JoinConds) != 2 {
		t.Errorf("three-way join: %+v", stmt.Left)
	}
}
