// Package sqlview parses a small SQL dialect into relational-algebra
// expressions. It covers exactly the view-definition language of §5 of the
// paper: select/project/join blocks, optionally combined by a single UNION
// or EXCEPT (difference):
//
//	SELECT r1, s1, s2
//	FROM R JOIN S ON r2 = s1
//	WHERE r4 = 100 AND s3 < 50
//
// Predicates support arithmetic (+ - * /), comparisons
// (= <> != < <= > >=), AND/OR/NOT, parentheses, integer, float and string
// literals.
package sqlview

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp // = <> != < <= > >= + - * / ,  ( ) .
	tokError
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "JOIN": true, "ON": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true, "UNION": true, "EXCEPT": true,
	"AS": true, "TRUE": true, "FALSE": true, "CROSS": true,
}

type lexer struct {
	input string
	pos   int
}

func (l *lexer) errf(pos int, format string, args ...any) token {
	return token{kind: tokError, pos: pos, text: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() token {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
			l.pos++
		}
		text := l.input[start:l.pos]
		if keywords[strings.ToUpper(text)] {
			return token{kind: tokKeyword, text: strings.ToUpper(text), pos: start}
		}
		return token{kind: tokIdent, text: text, pos: start}
	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.input) {
			ch := l.input[l.pos]
			if ch == '.' {
				if seenDot {
					break
				}
				seenDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.input) {
			ch := l.input[l.pos]
			if ch == '\'' {
				// Doubled quote escapes a quote, SQL style.
				if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return l.errf(start, "unterminated string literal")
	}
	// Operators.
	two := ""
	if l.pos+1 < len(l.input) {
		two = l.input[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "!=", "<=", ">=":
		l.pos += 2
		return token{kind: tokOp, text: two, pos: start}
	}
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', ',', '(', ')', '.':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}
	}
	return l.errf(start, "unexpected character %q", string(c))
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	var out []token
	for {
		t := l.next()
		if t.kind == tokError {
			return nil, fmt.Errorf("sqlview: position %d: %s", t.pos, t.text)
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
