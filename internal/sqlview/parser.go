package sqlview

import (
	"fmt"
	"strconv"
	"strings"

	"squirrel/internal/algebra"
)

// SelectStmt is the parsed form of one SELECT block.
type SelectStmt struct {
	// Cols are the projected attribute names; nil means SELECT *.
	Cols []string
	// Tables are the FROM/JOIN operands in order.
	Tables []TableRef
	// JoinConds holds the ON condition following each joined table
	// (JoinConds[i] belongs to Tables[i+1]); entries may be nil for
	// CROSS JOIN.
	JoinConds []algebra.Expr
	// Where is the WHERE condition, or nil.
	Where algebra.Expr
}

// TableRef names a base relation, optionally renamed by AS.
type TableRef struct {
	Rel string
	As  string
}

// Name returns the effective name of the operand.
func (t TableRef) Name() string {
	if t.As != "" {
		return t.As
	}
	return t.Rel
}

// Stmt is a full view definition: one SELECT block, or two combined with
// UNION or EXCEPT — exactly the def shapes permitted by §5.1(4).
type Stmt struct {
	Left  *SelectStmt
	Op    string // "", "UNION", or "EXCEPT"
	Right *SelectStmt
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.advance()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sqlview: position %d: expected %s, got %q", t.pos, kw, t.text)
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	t := p.advance()
	if t.kind != tokOp || t.text != op {
		return fmt.Errorf("sqlview: position %d: expected %q, got %q", t.pos, op, t.text)
	}
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) atOp(op string) bool {
	t := p.peek()
	return t.kind == tokOp && t.text == op
}

// Parse parses a view definition.
func Parse(input string) (*Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	left, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt := &Stmt{Left: left}
	if p.atKeyword("UNION") || p.atKeyword("EXCEPT") {
		stmt.Op = p.advance().text
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Right = right
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlview: position %d: unexpected trailing input %q", t.pos, t.text)
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{}
	if p.atOp("*") {
		p.advance()
	} else {
		for {
			t := p.advance()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("sqlview: position %d: expected column name, got %q", t.pos, t.text)
			}
			st.Cols = append(st.Cols, t.text)
			if !p.atOp(",") {
				break
			}
			p.advance()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st.Tables = append(st.Tables, tr)
	for p.atKeyword("JOIN") || p.atKeyword("CROSS") {
		cross := p.atKeyword("CROSS")
		p.advance()
		if cross {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		st.Tables = append(st.Tables, tr)
		var cond algebra.Expr
		if !cross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		st.JoinConds = append(st.JoinConds, cond)
	}
	if p.atKeyword("WHERE") {
		p.advance()
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return TableRef{}, fmt.Errorf("sqlview: position %d: expected table name, got %q", t.pos, t.text)
	}
	tr := TableRef{Rel: t.text}
	if p.atKeyword("AS") {
		p.advance()
		a := p.advance()
		if a.kind != tokIdent {
			return TableRef{}, fmt.Errorf("sqlview: position %d: expected alias after AS, got %q", a.pos, a.text)
		}
		tr.As = a.text
	}
	return tr, nil
}

// Expression grammar: or > and > not > comparison > additive > multiplicative > unary.

func (p *parser) parseExpr() (algebra.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (algebra.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []algebra.Expr{left}
	for p.atKeyword("OR") {
		p.advance()
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return left, nil
	}
	return algebra.Or{Terms: terms}, nil
}

func (p *parser) parseAnd() (algebra.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	terms := []algebra.Expr{left}
	for p.atKeyword("AND") {
		p.advance()
		t, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return left, nil
	}
	return algebra.And{Terms: terms}, nil
}

func (p *parser) parseNot() (algebra.Expr, error) {
	if p.atKeyword("NOT") {
		p.advance()
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return algebra.Not{Term: inner}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]algebra.CmpOp{
	"=": algebra.OpEq, "<>": algebra.OpNe, "!=": algebra.OpNe,
	"<": algebra.OpLt, "<=": algebra.OpLe, ">": algebra.OpGt, ">=": algebra.OpGe,
}

func (p *parser) parseComparison() (algebra.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return algebra.Cmp{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (algebra.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.advance().text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			left = algebra.Add(left, right)
		} else {
			left = algebra.Sub(left, right)
		}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (algebra.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") {
		op := p.advance().text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op == "*" {
			left = algebra.Mul(left, right)
		} else {
			left = algebra.Div(left, right)
		}
	}
	return left, nil
}

func (p *parser) parseUnary() (algebra.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokOp && t.text == "-":
		p.advance()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return algebra.Sub(algebra.CInt(0), inner), nil
	case t.kind == tokOp && t.text == "(":
		p.advance()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlview: position %d: bad number %q", t.pos, t.text)
			}
			return algebra.CFloat(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlview: position %d: bad number %q", t.pos, t.text)
		}
		return algebra.CInt(n), nil
	case t.kind == tokString:
		p.advance()
		return algebra.CStr(t.text), nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.advance()
		if t.text == "TRUE" {
			return algebra.True(), nil
		}
		return algebra.Or{}, nil
	case t.kind == tokIdent:
		p.advance()
		return algebra.A(t.text), nil
	}
	return nil, fmt.Errorf("sqlview: position %d: unexpected token %q", t.pos, t.text)
}

// ToRelExpr compiles a parsed statement into a relational-algebra
// expression named outName.
func (s *Stmt) ToRelExpr(outName string) (algebra.RelExpr, error) {
	left, err := s.Left.toRelExpr(outName)
	if err != nil {
		return nil, err
	}
	if s.Op == "" {
		return left, nil
	}
	right, err := s.Right.toRelExpr(outName + "_rhs")
	if err != nil {
		return nil, err
	}
	switch s.Op {
	case "UNION":
		return algebra.Union{L: left, R: right}, nil
	case "EXCEPT":
		return algebra.Diff{L: left, R: right}, nil
	}
	return nil, fmt.Errorf("sqlview: unknown set operator %q", s.Op)
}

func (st *SelectStmt) toRelExpr(outName string) (algebra.RelExpr, error) {
	if len(st.Tables) == 0 {
		return nil, fmt.Errorf("sqlview: SELECT with no FROM tables")
	}
	var acc algebra.RelExpr = algebra.Scan{Rel: st.Tables[0].Rel}
	for i := 1; i < len(st.Tables); i++ {
		acc = algebra.Join{L: acc, R: algebra.Scan{Rel: st.Tables[i].Rel}, On: st.JoinConds[i-1]}
	}
	if st.Where != nil {
		acc = algebra.Select{Input: acc, Pred: st.Where}
	}
	if st.Cols != nil {
		acc = algebra.Project{Input: acc, Cols: st.Cols, As: outName}
	}
	return acc, nil
}

// ParseExpr parses a standalone predicate/scalar expression (used for query
// conditions posed against the integrated view).
func ParseExpr(input string) (algebra.Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlview: position %d: unexpected trailing input %q", t.pos, t.text)
	}
	return e, nil
}
