package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as the conventional _bucket/_sum/_count series
// with cumulative "le" buckets. Series of one family are grouped under a
// single # TYPE line and emitted in sorted order, so scrapes are
// deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	return WriteSnapshotPrometheus(w, s)
}

// WriteSnapshotPrometheus renders an already-taken snapshot (events are
// not exported — Prometheus has no event type; use /debug/vars or the
// events CLI for those).
func WriteSnapshotPrometheus(w io.Writer, s Snapshot) error {
	type sample struct {
		name  string
		value string
	}
	families := make(map[string][]sample) // family -> samples
	kinds := make(map[string]string)      // family -> TYPE

	add := func(family, series, value, kind string) {
		if _, seen := kinds[family]; !seen {
			kinds[family] = kind
		}
		families[family] = append(families[family], sample{series, value})
	}
	for name, v := range s.Counters {
		add(familyOf(name), name, strconv.FormatInt(v, 10), "counter")
	}
	for name, v := range s.Gauges {
		add(familyOf(name), name, strconv.FormatInt(v, 10), "gauge")
	}
	for name, h := range s.Histograms {
		family := familyOf(name)
		labels := labelsOf(name)
		kinds[family] = "histogram"
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			families[family] = append(families[family], sample{
				family + "_bucket{" + joinLabels(labels, `le="`+le+`"`) + "}",
				strconv.FormatUint(cum, 10),
			})
		}
		sumSeries, countSeries := family+"_sum", family+"_count"
		if labels != "" {
			sumSeries += "{" + labels + "}"
			countSeries += "{" + labels + "}"
		}
		families[family] = append(families[family],
			sample{sumSeries, formatFloat(h.Sum)},
			sample{countSeries, strconv.FormatUint(h.Count, 10)})
	}

	names := make([]string, 0, len(families))
	for f := range families {
		names = append(names, f)
	}
	sort.Strings(names)
	for _, f := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f, kinds[f]); err != nil {
			return err
		}
		samples := families[f]
		sort.SliceStable(samples, func(i, j int) bool { return samples[i].name < samples[j].name })
		for _, sm := range samples {
			if _, err := fmt.Fprintf(w, "%s %s\n", sm.name, sm.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// joinLabels concatenates two label bodies with a comma, tolerating an
// empty first part.
func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// formatFloat renders a float the Prometheus way: shortest representation
// that round-trips, no exponent for typical bucket bounds.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	out := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(out, ".e") {
		out += ".0"
	}
	return out
}
