// Package metrics is the mediator's observability layer: lock-cheap
// instruments (atomic counters and gauges, fixed-bucket latency
// histograms) plus a bounded ring buffer of structured events, gathered
// in a Registry that snapshots programmatically and renders in the
// Prometheus text exposition format.
//
// The instruments are built for hot paths: a Counter or Gauge is one
// atomic word; a Histogram takes one short mutex-protected critical
// section per observation (a handful of integer ops), so an Observe on
// the update-transaction path costs nanoseconds against poll round trips
// measured in milliseconds. Snapshots are internally consistent per
// instrument: a histogram snapshot's bucket counts always sum to its
// Count, because observation and snapshot serialize on the same mutex.
//
// Series names may carry a Prometheus label set inline, e.g.
//
//	squirrel_source_poll_seconds{source="db1",outcome="ok"}
//
// The registry treats the full string as the instrument key; the
// Prometheus writer splits the base name from the labels so bucket lines
// can merge in their "le" label.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is a programming error; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue length, version age).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the current value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are the default histogram bounds for wall-clock
// latencies, in seconds: 50µs up to 10s, roughly doubling — wide enough
// for an in-process poll and a hung-source timeout alike.
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefTickBuckets are histogram bounds for logical-clock distances
// (version ages, staleness in ticks).
var DefTickBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 1000}

// Histogram is a fixed-bucket histogram. Bounds are upper bounds in
// ascending order; an implicit +Inf bucket catches the rest. One mutex
// guards the whole instrument, so snapshots are exactly consistent
// (bucket counts sum to Count) and observation stays a short critical
// section.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last is +Inf
	count  uint64
	sum    float64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value (seconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveSince records the elapsed wall time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count,
		Sum:    h.sum,
	}
	copy(s.Counts, h.counts)
	return s
}

// HistogramSnapshot is one consistent observation of a Histogram:
// Counts[i] observations fell at or below Bounds[i] (and above the
// previous bound); Counts[len(Bounds)] is the +Inf bucket. The bucket
// counts always sum to Count.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket, the standard Prometheus estimation. An
// observation in the +Inf bucket reports the highest finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry holds named instruments and the event log. Instrument lookup
// is get-or-create and safe for concurrent use; returned instrument
// pointers may (and should) be cached by hot paths so steady-state
// observation never touches the registry lock.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	bounds   map[string][]float64 // declared bounds per histogram family
	events   *EventLog
}

// NewRegistry creates an empty registry with an event log of the given
// capacity (<= 0 means DefEventCapacity).
func NewRegistry(eventCapacity int) *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		bounds:   make(map[string][]float64),
		events:   NewEventLog(eventCapacity),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (nil bounds means DefLatencyBuckets). Later calls
// ignore bounds — the first declaration wins, so every series of one
// family shares a bucket layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if bounds == nil {
			// Share the family's declared bounds so labeled series line up.
			bounds = r.bounds[familyOf(name)]
		} else {
			r.bounds[familyOf(name)] = bounds
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Events returns the registry's event log.
func (r *Registry) Events() *EventLog { return r.events }

// Emit appends a structured event (see EventLog.Emit).
func (r *Registry) Emit(e Event) { r.events.Emit(e) }

// Snapshot is a consistent-per-instrument copy of every instrument plus
// the retained events, oldest first. Marshals directly to JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events     []Event                      `json:"events,omitempty"`
	// EventsTotal counts every event ever emitted (retained or evicted).
	EventsTotal uint64 `json:"events_total"`
}

// Snapshot captures every instrument. Each instrument is read atomically
// (or under its own mutex), so per-instrument values are exact; the
// snapshot as a whole is a near-instantaneous read, not a global
// barrier.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	s.Events, s.EventsTotal = r.events.Recent(0)
	return s
}

// familyOf strips the label part of a series name: the metric family.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelsOf returns the label part of a series name without braces ("" if
// unlabeled).
func labelsOf(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// SeriesName assembles a labeled series name with deterministic label
// order (the order given).
func SeriesName(family string, kv ...string) string {
	if len(kv) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}
