package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event types emitted by the mediator stack. The set is open — these
// constants just keep producers and consumers spelling them the same way.
const (
	EventUpdateTxn  = "update-txn"   // one committed update transaction
	EventPoll       = "poll"         // one source poll attempt
	EventBreaker    = "breaker"      // circuit-breaker transition
	EventQuarantine = "quarantine"   // source quarantined
	EventResync     = "resync"       // source resync attempt
	EventPublish    = "publish"      // store version published
	EventStage      = "kernel-stage" // one staged-kernel stage
	EventFlush      = "flush"        // one runtime flush tick
	EventQuery      = "query"        // one query transaction
	// EventAnnotation marks one attribute's materialization flip applied
	// by a re-annotation transaction (adaptive annotation, core §5.3
	// loop); Subject is "node.attr v->m" or "node.attr m->v".
	EventAnnotation = "annotation-switch"
	// EventAdapt marks one adaptive-controller decision round; Err carries
	// the skip reason for rounds that applied nothing.
	EventAdapt = "adapt"
)

// DefEventCapacity is the default ring-buffer size of an EventLog.
const DefEventCapacity = 1024

// Event is one structured observability record. Numeric payload rides in
// Fields (atoms, polls, version seq, stage index...), keeping the struct
// JSON-friendly and allocation-light.
type Event struct {
	// Seq is a monotone sequence number stamped by the log.
	Seq uint64 `json:"seq"`
	// Wall is the wall-clock emission time stamped by the log.
	Wall time.Time `json:"wall"`
	// Type is one of the Event* constants (or a producer-defined string).
	Type string `json:"type"`
	// Subject names what the event is about: a source, a node, a phase.
	Subject string `json:"subject,omitempty"`
	// Dur is the measured duration, when the event times something.
	Dur time.Duration `json:"dur,omitempty"`
	// Err carries the error text for failure events.
	Err string `json:"err,omitempty"`
	// Fields is a small numeric payload.
	Fields map[string]int64 `json:"fields,omitempty"`
}

// String renders the event compactly for CLI output.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %s", e.Seq, e.Wall.Format("15:04:05.000"), e.Type)
	if e.Subject != "" {
		fmt.Fprintf(&b, " %s", e.Subject)
	}
	if e.Dur > 0 {
		fmt.Fprintf(&b, " dur=%s", e.Dur)
	}
	if len(e.Fields) > 0 {
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, e.Fields[k])
		}
	}
	if e.Err != "" {
		fmt.Fprintf(&b, " err=%q", e.Err)
	}
	return b.String()
}

// EventLog is a bounded ring buffer of events. Emission is a short
// mutex-protected append; when full, the oldest event is overwritten.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // buf index the next event lands in
	total uint64 // events ever emitted
}

// NewEventLog creates a log retaining up to capacity events (<= 0 means
// DefEventCapacity).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefEventCapacity
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Emit stamps Seq and Wall and appends the event, evicting the oldest
// when the buffer is full.
func (l *EventLog) Emit(e Event) {
	l.mu.Lock()
	l.total++
	e.Seq = l.total
	e.Wall = time.Now()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.mu.Unlock()
}

// Recent returns up to n retained events, oldest first (n <= 0 means
// all), plus the total number of events ever emitted.
func (l *EventLog) Recent(n int) ([]Event, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) {
		out = append(out, l.buf...)
	} else {
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out, l.total
}

// Len reports how many events are currently retained.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total reports how many events were ever emitted.
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
