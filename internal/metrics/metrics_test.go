package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry(0)
	c := r.Counter("squirrel_update_txns_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("squirrel_update_txns_total") != c {
		t.Fatal("Counter not idempotent: second lookup returned a different instrument")
	}
	g := r.Gauge("squirrel_queue_len")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry(0)
	h := r.Histogram("lat", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 0.5, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket counts sum to %d, count is %d", sum, s.Count)
	}
	want := []uint64{1, 2, 1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", s.Counts, want)
		}
	}
	if math.Abs(s.Sum-(0.0005+0.002+0.002+0.05+0.5+3)) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
	if m := s.Mean(); math.Abs(m-s.Sum/6) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	// p50 lands in the (0.001, 0.01] bucket, p99 in +Inf which reports
	// the highest finite bound.
	if q := s.Quantile(0.5); q <= 0.001 || q > 0.01+1e-12 {
		t.Fatalf("p50 = %v, want in (0.001, 0.01]", q)
	}
	if q := s.Quantile(0.99); q != 1 {
		t.Fatalf("p99 = %v, want 1 (highest finite bound)", q)
	}
}

func TestHistogramEmptyAndBoundaryValues(t *testing.T) {
	var s HistogramSnapshot
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot should report zeros")
	}
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // exactly on a bound: counted at or below that bound
	s = h.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatalf("boundary value landed in %v", s.Counts)
	}
}

func TestHistogramFamilyBoundsShared(t *testing.T) {
	r := NewRegistry(0)
	a := r.Histogram(`poll{source="db1"}`, []float64{1, 2, 3})
	b := r.Histogram(`poll{source="db2"}`, nil)
	if len(a.Snapshot().Bounds) != 3 || len(b.Snapshot().Bounds) != 3 {
		t.Fatalf("labeled series of one family should share bounds: %v vs %v",
			a.Snapshot().Bounds, b.Snapshot().Bounds)
	}
}

func TestEventLogRingBuffer(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Type: EventPoll, Subject: "db1", Fields: map[string]int64{"i": int64(i)}})
	}
	events, total := l.Recent(0)
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	if len(events) != 4 {
		t.Fatalf("retained %d, want 4", len(events))
	}
	for i, e := range events {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d (oldest first)", i, e.Seq, want)
		}
	}
	recent, _ := l.Recent(2)
	if len(recent) != 2 || recent[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v", recent)
	}
	if l.Len() != 4 || l.Total() != 10 {
		t.Fatalf("Len=%d Total=%d", l.Len(), l.Total())
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Seq: 3, Wall: time.Date(2026, 1, 1, 12, 30, 45, 0, time.UTC),
		Type: EventUpdateTxn, Subject: "T", Dur: 2 * time.Millisecond,
		Fields: map[string]int64{"atoms": 5, "polls": 2}, Err: "boom",
	}
	s := e.String()
	for _, want := range []string{"#3", "update-txn", "T", "dur=2ms", "atoms=5", "polls=2", `err="boom"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestSeriesNameAndLabelSplit(t *testing.T) {
	name := SeriesName("squirrel_source_poll_seconds", "source", "db1", "outcome", "ok")
	if name != `squirrel_source_poll_seconds{source="db1",outcome="ok"}` {
		t.Fatalf("SeriesName = %q", name)
	}
	if familyOf(name) != "squirrel_source_poll_seconds" {
		t.Fatalf("familyOf = %q", familyOf(name))
	}
	if labelsOf(name) != `source="db1",outcome="ok"` {
		t.Fatalf("labelsOf = %q", labelsOf(name))
	}
	if familyOf("plain") != "plain" || labelsOf("plain") != "" {
		t.Fatal("unlabeled split broken")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry(8)
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram("h", []float64{1}).Observe(0.5)
	r.Emit(Event{Type: EventPublish, Subject: "v2"})
	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 3 || back.Gauges["g"] != -2 {
		t.Fatalf("round trip lost values: %+v", back)
	}
	if back.Histograms["h"].Count != 1 || back.EventsTotal != 1 || len(back.Events) != 1 {
		t.Fatalf("round trip lost histogram/events: %+v", back)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("squirrel_update_txns_total").Add(2)
	r.Gauge("squirrel_queue_len").Set(3)
	h := r.Histogram(`squirrel_source_poll_seconds{source="db1",outcome="ok"}`, []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	r.Histogram("squirrel_query_seconds", []float64{0.25}).Observe(0.1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE squirrel_update_txns_total counter\nsquirrel_update_txns_total 2\n",
		"# TYPE squirrel_queue_len gauge\nsquirrel_queue_len 3\n",
		"# TYPE squirrel_source_poll_seconds histogram\n",
		`squirrel_source_poll_seconds_bucket{source="db1",outcome="ok",le="0.01"} 1`,
		`squirrel_source_poll_seconds_bucket{source="db1",outcome="ok",le="0.1"} 2`,
		`squirrel_source_poll_seconds_bucket{source="db1",outcome="ok",le="+Inf"} 3`,
		`squirrel_source_poll_seconds_count{source="db1",outcome="ok"} 3`,
		`squirrel_query_seconds_bucket{le="0.25"} 1`,
		`squirrel_query_seconds_bucket{le="+Inf"} 1`,
		"squirrel_query_seconds_sum 0.1\n",
		"squirrel_query_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render must be byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatal("prometheus output not deterministic")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:       "1.0",
		0.5:     "0.5",
		0.00005: "5e-05",
		10:      "10.0",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestRegistryConcurrent exercises get-or-create races and concurrent
// observation under -race; it also pins the snapshot consistency
// contract (bucket counts sum to Count) while observers are running.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(64)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("c").Inc()
				r.Histogram("h", DefLatencyBuckets).Observe(0.001)
				r.Emit(Event{Type: EventPoll})
				s := r.Snapshot()
				h := s.Histograms["h"]
				var sum uint64
				for _, c := range h.Counts {
					sum += c
				}
				if sum != h.Count {
					t.Errorf("inconsistent snapshot: buckets sum %d, count %d", sum, h.Count)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Events().Total(); got != goroutines*perG {
		t.Fatalf("events total = %d, want %d", got, goroutines*perG)
	}
}
