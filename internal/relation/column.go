package relation

// A column is one attribute's value vector inside a TupleMap: type
// specialized when every value seen so far shares one kind (the common
// case — schemas are typed), with a generic Value fallback for mixed,
// boolean, or null data. Specialization is adaptive: the first appended
// value picks the representation and a later mismatching value demotes
// the column to generic, converting in place, so correctness never
// depends on the declared schema being honest.
type column struct {
	tag    uint8
	ints   []int64   // colInt
	floats []float64 // colFloat
	syms   []Sym     // colSym (interned strings)
	vals   []Value   // colGeneric
}

const (
	colEmpty uint8 = iota
	colInt
	colFloat
	colSym
	colGeneric
)

// tagFor picks the specialized representation for a value kind.
func tagFor(k Kind) uint8 {
	switch k {
	case KindInt:
		return colInt
	case KindFloat:
		return colFloat
	case KindString:
		return colSym
	default: // bool, null
		return colGeneric
	}
}

// length returns the number of slots the column holds.
func (c *column) length() int {
	switch c.tag {
	case colInt:
		return len(c.ints)
	case colFloat:
		return len(c.floats)
	case colSym:
		return len(c.syms)
	case colGeneric:
		return len(c.vals)
	}
	return 0
}

// demote converts the column to the generic representation in place.
func (c *column) demote() {
	if c.tag == colGeneric {
		return
	}
	n := c.length()
	vals := make([]Value, n)
	for i := 0; i < n; i++ {
		vals[i] = c.valueAt(i)
	}
	c.vals = vals
	c.ints, c.floats, c.syms = nil, nil, nil
	c.tag = colGeneric
}

// grow appends one zero slot and returns its index.
func (c *column) grow() int {
	switch c.tag {
	case colInt:
		c.ints = append(c.ints, 0)
		return len(c.ints) - 1
	case colFloat:
		c.floats = append(c.floats, 0)
		return len(c.floats) - 1
	case colSym:
		c.syms = append(c.syms, 0)
		return len(c.syms) - 1
	default:
		if c.tag == colEmpty {
			c.tag = colGeneric
		}
		c.vals = append(c.vals, Value{})
		return len(c.vals) - 1
	}
}

// set stores v at slot i, demoting the column if v's kind does not match
// the specialization. Slot i must exist (grow first for appends).
func (c *column) set(i int, v Value) {
	if c.tag == colEmpty {
		// First value after construction at a pre-grown slot cannot
		// happen: grow() resolves colEmpty to colGeneric. Defensive only.
		c.tag = colGeneric
	}
	want := tagFor(v.kind)
	if c.tag != want && c.tag != colGeneric {
		c.demote()
	}
	switch c.tag {
	case colInt:
		c.ints[i] = v.i
	case colFloat:
		c.floats[i] = v.f
	case colSym:
		c.syms[i] = Intern(v.s)
	default:
		c.vals[i] = v
	}
}

// appendValue appends v, choosing the specialization on first append.
func (c *column) appendValue(v Value) {
	if c.tag == colEmpty {
		c.tag = tagFor(v.kind)
	}
	want := tagFor(v.kind)
	if c.tag != want && c.tag != colGeneric {
		c.demote()
	}
	switch c.tag {
	case colInt:
		c.ints = append(c.ints, v.i)
	case colFloat:
		c.floats = append(c.floats, v.f)
	case colSym:
		c.syms = append(c.syms, Intern(v.s))
	default:
		c.vals = append(c.vals, v)
	}
}

// valueAt materializes the value stored at slot i. Allocation free: the
// interned string header is shared, not copied.
func (c *column) valueAt(i int) Value {
	switch c.tag {
	case colInt:
		return Value{kind: KindInt, i: c.ints[i]}
	case colFloat:
		return Value{kind: KindFloat, f: c.floats[i]}
	case colSym:
		return Value{kind: KindString, s: SymStr(c.syms[i])}
	default:
		return c.vals[i]
	}
}

// keyEqualAt reports whether the value at slot i equals v under the
// canonical-key equivalence (the same relation appendKey induces: ints
// and floats compare numerically through the float encoding, strings by
// content). This is the collision check behind hashed lookups, so it must
// agree exactly with the byte encoding produced by Value.appendKey.
func (c *column) keyEqualAt(i int, v Value) bool {
	switch c.tag {
	case colInt:
		switch v.kind {
		case KindInt:
			return c.ints[i] == v.i
		case KindFloat:
			x := c.ints[i]
			f := float64(x)
			return int64(f) == x && floatKeyEqual(f, v.f)
		}
		return false
	case colFloat:
		switch v.kind {
		case KindFloat:
			return floatKeyEqual(c.floats[i], v.f)
		case KindInt:
			f := float64(v.i)
			return int64(f) == v.i && floatKeyEqual(c.floats[i], f)
		}
		return false
	case colSym:
		return v.kind == KindString && SymStr(c.syms[i]) == v.s
	default:
		return valueKeyEqual(c.vals[i], v)
	}
}

// appendKeyAt appends the canonical key encoding of the value at slot i —
// byte-identical to Value.appendKey of valueAt(i).
func (c *column) appendKeyAt(b []byte, i int) []byte {
	switch c.tag {
	case colInt:
		return Value{kind: KindInt, i: c.ints[i]}.appendKey(b)
	case colFloat:
		return appendFloatKey(b, c.floats[i])
	case colSym:
		v := Value{kind: KindString, s: SymStr(c.syms[i])}
		return v.appendKey(b)
	default:
		return c.vals[i].appendKey(b)
	}
}

// setFromCol stores src's slot j into this column's slot i, copying the
// typed payload directly when the specializations agree (the vectorized
// path smash/apply use; symbols copy as integers, no string bytes move).
func (c *column) setFromCol(i int, src *column, j int) {
	if c.tag == src.tag {
		switch c.tag {
		case colInt:
			c.ints[i] = src.ints[j]
			return
		case colFloat:
			c.floats[i] = src.floats[j]
			return
		case colSym:
			c.syms[i] = src.syms[j]
			return
		case colGeneric:
			c.vals[i] = src.vals[j]
			return
		}
	}
	c.set(i, src.valueAt(j))
}

// colEqualAt compares this column's slot i with src's slot j under
// canonical-key equivalence, using the typed fast path when the
// specializations agree.
func (c *column) colEqualAt(i int, src *column, j int) bool {
	if c.tag == src.tag {
		switch c.tag {
		case colInt:
			return c.ints[i] == src.ints[j]
		case colFloat:
			return floatKeyEqual(c.floats[i], src.floats[j])
		case colSym:
			return c.syms[i] == src.syms[j]
		}
	}
	return c.keyEqualAt(i, src.valueAt(j))
}

// clone deep-copies the column (Values are immutable; shallow element
// copies are safe).
func (c *column) clone() column {
	out := column{tag: c.tag}
	switch c.tag {
	case colInt:
		out.ints = append([]int64(nil), c.ints...)
	case colFloat:
		out.floats = append([]float64(nil), c.floats...)
	case colSym:
		out.syms = append([]Sym(nil), c.syms...)
	case colGeneric:
		out.vals = append([]Value(nil), c.vals...)
	}
	return out
}

// payloadBytes estimates the resident payload of slot i using the same
// accounting MemoryFootprint has always used (24 bytes per value plus
// string bytes), so backend choice does not change advisor arithmetic.
func (c *column) payloadBytes(i int) int {
	total := 24
	switch c.tag {
	case colSym:
		total += len(SymStr(c.syms[i]))
	case colGeneric:
		if v := c.vals[i]; v.kind == KindString {
			total += len(v.s)
		}
	}
	return total
}
