package relation

import (
	"fmt"
	"strings"
)

// Attribute describes one column of a relation schema.
type Attribute struct {
	Name string
	Type Kind
}

// Schema describes the structure of a relation: its name, ordered
// attributes, and (optionally) a primary key. Attribute names must be
// unique within a schema. Following the paper we use globally suggestive
// attribute names (r1, s1, ...) but nothing requires global uniqueness
// except when relations are joined, where the combined schema must not
// contain duplicate names.
type Schema struct {
	name  string
	attrs []Attribute
	index map[string]int
	key   []int // attribute positions forming the primary key; empty if none
}

// NewSchema constructs a schema. keyAttrs lists the names of the primary
// key attributes (may be empty). It returns an error on duplicate or
// unknown attribute names.
func NewSchema(name string, attrs []Attribute, keyAttrs ...string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema needs a name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema %s needs at least one attribute", name)
	}
	s := &Schema{
		name:  name,
		attrs: append([]Attribute(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: schema %s has an unnamed attribute at position %d", name, i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("relation: schema %s has duplicate attribute %q", name, a.Name)
		}
		s.index[a.Name] = i
	}
	for _, k := range keyAttrs {
		i, ok := s.index[k]
		if !ok {
			return nil, fmt.Errorf("relation: schema %s key attribute %q not found", name, k)
		}
		s.key = append(s.key, i)
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for tests and
// examples with literal schemas.
func MustSchema(name string, attrs []Attribute, keyAttrs ...string) *Schema {
	s, err := NewSchema(name, attrs, keyAttrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the schema (relation) name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attrs returns the ordered attribute list (a copy).
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// AttrNames returns the ordered attribute names.
func (s *Schema) AttrNames() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// AttrIndex returns the position of the named attribute.
func (s *Schema) AttrIndex(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// HasAttr reports whether the schema contains the named attribute.
func (s *Schema) HasAttr(name string) bool {
	_, ok := s.index[name]
	return ok
}

// AttrType returns the kind of the named attribute.
func (s *Schema) AttrType(name string) (Kind, bool) {
	i, ok := s.index[name]
	if !ok {
		return KindNull, false
	}
	return s.attrs[i].Type, true
}

// KeyAttrs returns the names of the primary-key attributes, or nil if the
// schema has no declared key.
func (s *Schema) KeyAttrs() []string {
	if len(s.key) == 0 {
		return nil
	}
	out := make([]string, len(s.key))
	for i, p := range s.key {
		out[i] = s.attrs[p].Name
	}
	return out
}

// KeyPositions returns the attribute positions of the primary key.
func (s *Schema) KeyPositions() []int { return append([]int(nil), s.key...) }

// HasKey reports whether the schema declares a primary key.
func (s *Schema) HasKey() bool { return len(s.key) > 0 }

// Rename returns a copy of the schema with a different relation name.
func (s *Schema) Rename(name string) *Schema {
	c := *s
	c.name = name
	return &c
}

// Project returns a new schema with only the named attributes, in the given
// order, named newName. The key is retained only if every key attribute
// survives the projection.
func (s *Schema) Project(newName string, names []string) (*Schema, error) {
	attrs := make([]Attribute, 0, len(names))
	kept := make(map[string]bool, len(names))
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("relation: project: schema %s has no attribute %q", s.name, n)
		}
		attrs = append(attrs, s.attrs[i])
		kept[n] = true
	}
	var key []string
	if s.HasKey() {
		all := true
		for _, k := range s.KeyAttrs() {
			if !kept[k] {
				all = false
				break
			}
		}
		if all {
			key = s.KeyAttrs()
		}
	}
	return NewSchema(newName, attrs, key...)
}

// Concat returns the schema of the natural concatenation (cross product /
// theta join) of s and o, named newName. Attribute names must be disjoint.
// Keys are not propagated.
func (s *Schema) Concat(newName string, o *Schema) (*Schema, error) {
	attrs := make([]Attribute, 0, len(s.attrs)+len(o.attrs))
	attrs = append(attrs, s.attrs...)
	attrs = append(attrs, o.attrs...)
	return NewSchema(newName, attrs)
}

// Positions maps the given attribute names to their positions.
func (s *Schema) Positions(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		p, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("relation: schema %s has no attribute %q", s.name, n)
		}
		out[i] = p
	}
	return out, nil
}

// String renders the schema as Name(a1 type, a2 type, ...) with key
// attributes marked by a leading asterisk.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	keyed := make(map[int]bool, len(s.key))
	for _, p := range s.key {
		keyed[p] = true
	}
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		if keyed[i] {
			b.WriteByte('*')
		}
		b.WriteString(a.Name)
		b.WriteByte(' ')
		b.WriteString(a.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// SameShape reports whether two schemas are union-compatible: same arity
// and same attribute types position by position (names may differ).
func (s *Schema) SameShape(o *Schema) bool {
	if len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i].Type != o.attrs[i].Type {
			return false
		}
	}
	return true
}

// FD is a functional dependency From -> To over attribute names. The paper
// uses FDs derived from source keys to justify key-based construction of
// temporary relations (Example 2.3).
type FD struct {
	From []string
	To   []string
}

// String renders the FD as "a,b -> c".
func (fd FD) String() string {
	return strings.Join(fd.From, ",") + " -> " + strings.Join(fd.To, ",")
}
