package relation

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// withBackend runs the rest of the test with the process-default backend
// switched, restoring it afterward.
func withBackend(t *testing.T, b Backend) {
	t.Helper()
	prev := DefaultBackend()
	SetDefaultBackend(b)
	t.Cleanup(func() { SetDefaultBackend(prev) })
}

func TestBackendParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"blocks", Blocks, true},
		{"rows", Rows, true},
		{"columns", Blocks, false},
		{"", Blocks, false},
	} {
		got, err := ParseBackend(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseBackend(%q) = %v, %v", tc.in, got, err)
		}
	}
	if Blocks.String() != "blocks" || Rows.String() != "rows" {
		t.Errorf("Backend.String wrong: %s %s", Blocks, Rows)
	}
}

// TestCrossBackendEquivalence drives an identical random operation stream
// into a rows-backed and a blocks-backed relation and requires every
// observable — deterministic render, cardinalities, footprint accounting,
// probes, clones, distinct — to agree byte for byte.
func TestCrossBackendEquivalence(t *testing.T) {
	schema := MustSchema("X", []Attribute{
		{"a", KindInt}, {"b", KindString}, {"c", KindFloat},
	})
	for seed := int64(0); seed < 8; seed++ {
		for _, sem := range []Semantics{Set, Bag} {
			rng := rand.New(rand.NewSource(seed))
			rr := NewWith(schema, sem, Rows)
			rb := NewWith(schema, sem, Blocks)
			randTuple := func() Tuple {
				var a Value
				// Mix int and float spellings of the same numbers so the
				// canonical-key equivalence is exercised, plus a
				// non-float-representable int64.
				switch rng.Intn(4) {
				case 0:
					a = Int(int64(rng.Intn(6)))
				case 1:
					a = Float(float64(rng.Intn(6)))
				case 2:
					a = Int(math.MaxInt64 - 1)
				default:
					a = Null()
				}
				return Tuple{a, Str(fmt.Sprintf("s%d", rng.Intn(4))), Float(float64(rng.Intn(3)))}
			}
			for i := 0; i < 300; i++ {
				tp := randTuple()
				n := rng.Intn(5) - 2
				ar, nr := rr.Add(tp, n)
				ab, nb := rb.Add(tp, n)
				if ar != ab || nr != nb {
					t.Fatalf("seed %d sem %s op %d: Add(%s,%d) rows=(%d,%d) blocks=(%d,%d)",
						seed, sem, i, tp, n, ar, nr, ab, nb)
				}
			}
			if rr.String() != rb.String() {
				t.Fatalf("seed %d sem %s: renders diverge\nrows:\n%s\nblocks:\n%s",
					seed, sem, rr.String(), rb.String())
			}
			if rr.Len() != rb.Len() || rr.Card() != rb.Card() {
				t.Fatalf("seed %d: len/card diverge", seed)
			}
			if rr.MemoryFootprint() != rb.MemoryFootprint() {
				t.Fatalf("seed %d: footprint accounting diverges: rows=%d blocks=%d",
					seed, rr.MemoryFootprint(), rb.MemoryFootprint())
			}
			if !rr.Equal(rb) || !rb.Equal(rr) || !rr.EqualAsSet(rb) || !rb.EqualAsSet(rr) {
				t.Fatalf("seed %d: cross-backend Equal failed", seed)
			}
			if got := rb.Clone(); got.Backend() != Blocks || got.String() != rr.String() {
				t.Fatalf("seed %d: blocks clone diverges", seed)
			}
			if rr.Distinct().String() != rb.Distinct().String() {
				t.Fatalf("seed %d: distinct diverges", seed)
			}
			for v := 0; v < 4; v++ {
				pr, err1 := rr.Probe([]string{"b"}, []Value{Str(fmt.Sprintf("s%d", v))})
				pb, err2 := rb.Probe([]string{"b"}, []Value{Str(fmt.Sprintf("s%d", v))})
				if err1 != nil || err2 != nil || len(pr) != len(pb) {
					t.Fatalf("seed %d: probe diverges: %v %v %d %d", seed, err1, err2, len(pr), len(pb))
				}
				for i := range pr {
					if !pr[i].Tuple.Equal(pb[i].Tuple) || pr[i].Count != pb[i].Count {
						t.Fatalf("seed %d: probe row %d diverges", seed, i)
					}
				}
			}
		}
	}
}

// TestBlocksIndexedProbe exercises the index layer over the columnar
// backend, including maintenance on delete.
func TestBlocksIndexedProbe(t *testing.T) {
	withBackend(t, Blocks)
	r := NewBag(MustSchema("R", []Attribute{{"k", KindInt}, {"v", KindString}}))
	if err := r.BuildIndex("v"); err != nil {
		t.Fatal(err)
	}
	r.Insert(T(1, "a"))
	r.Insert(T(2, "a"))
	r.Add(T(2, "a"), 2)
	r.Insert(T(3, "b"))
	rows, err := r.Probe([]string{"v"}, []Value{Str("a")})
	if err != nil || len(rows) != 2 {
		t.Fatalf("probe: %v %v", rows, err)
	}
	if rows[1].Count != 3 {
		t.Errorf("multiplicity through index: %d", rows[1].Count)
	}
	r.Add(T(1, "a"), -1)
	rows, _ = r.Probe([]string{"v"}, []Value{Str("a")})
	if len(rows) != 1 || rows[0].Tuple[0].AsInt() != 2 {
		t.Errorf("index not maintained on delete: %v", rows)
	}
}

// TestNumericKeyEquivalence checks that Int and Float spellings of the
// same number collapse to one tuple on both backends, and that -0 and +0
// share an identity (the rows backend's canonical key semantics).
func TestNumericKeyEquivalence(t *testing.T) {
	schema := MustSchema("N", []Attribute{{"x", KindFloat}})
	for _, bk := range []Backend{Rows, Blocks} {
		r := NewWith(schema, Bag, bk)
		r.Add(Tuple{Int(2)}, 1)
		r.Add(Tuple{Float(2.0)}, 1)
		if r.Len() != 1 || r.Count(Tuple{Int(2)}) != 2 {
			t.Errorf("%s: Int(2)/Float(2.0) should merge: len=%d", bk, r.Len())
		}
		r.Add(Tuple{Float(math.Copysign(0, -1))}, 1)
		r.Add(Tuple{Float(0)}, 1)
		if r.Count(Tuple{Float(0)}) != 2 {
			t.Errorf("%s: -0/+0 should merge: %d", bk, r.Count(Tuple{Float(0)}))
		}
		// Non-representable int64s stay in integer form and must not
		// collide with their float rounding.
		big := int64(math.MaxInt64 - 1)
		r.Add(Tuple{Int(big)}, 1)
		r.Add(Tuple{Float(float64(big))}, 1)
		if r.Count(Tuple{Int(big)}) != 1 {
			t.Errorf("%s: big int merged with its float rounding", bk)
		}
	}
}

// TestColumnDemotion stores mixed kinds in one column: the adaptive
// specialization must demote to generic without losing data.
func TestColumnDemotion(t *testing.T) {
	withBackend(t, Blocks)
	schema := MustSchema("M", []Attribute{{"x", KindInt}})
	r := NewBag(schema)
	r.Insert(Tuple{Int(1)})
	r.Insert(Tuple{Int(2)})
	r.Insert(Tuple{Str("mixed")}) // schema lies; must still work
	r.Insert(Tuple{Bool(true)})
	r.Insert(Tuple{Null()})
	if r.Len() != 5 {
		t.Fatalf("len after mixed inserts: %d", r.Len())
	}
	for _, tp := range []Tuple{{Int(1)}, {Int(2)}, {Str("mixed")}, {Bool(true)}, {Null()}} {
		if r.Count(tp) != 1 {
			t.Errorf("lost %s after demotion", tp)
		}
	}
}

// TestTupleMapChurn hammers add/remove cycles to exercise tombstone reuse
// and rehash-with-purge, verifying against a shadow map.
func TestTupleMapChurn(t *testing.T) {
	m := NewTupleMap(2)
	shadow := make(map[string]int64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		tp := T(rng.Intn(50), rng.Intn(4))
		n := int64(rng.Intn(7) - 3)
		m.Add(tp, n, ModeSigned)
		k := tp.Key()
		shadow[k] += n
		if shadow[k] == 0 {
			delete(shadow, k)
		}
	}
	if m.Len() != len(shadow) {
		t.Fatalf("live=%d shadow=%d", m.Len(), len(shadow))
	}
	m.Each(func(tp Tuple, n int64) bool {
		if shadow[tp.Key()] != n {
			t.Errorf("count mismatch at %s: %d vs %d", tp, n, shadow[tp.Key()])
		}
		return true
	})
}

// TestTupleMapCloneIndependence verifies clones share nothing mutable.
func TestTupleMapCloneIndependence(t *testing.T) {
	m := NewTupleMap(1)
	m.Add(T("a"), 1, ModeBag)
	c := m.Clone()
	m.Add(T("a"), 5, ModeBag)
	m.Add(T("b"), 1, ModeBag)
	if c.Get(T("a")) != 1 || c.Get(T("b")) != 0 || c.Len() != 1 {
		t.Errorf("clone mutated: a=%d b=%d len=%d", c.Get(T("a")), c.Get(T("b")), c.Len())
	}
}

// TestAddFromProjected checks the vectorized projected insert against the
// tuple-wise path.
func TestAddFromProjected(t *testing.T) {
	src := NewTupleMap(3)
	src.Add(T(1, "x", 2.5), 2, ModeBag)
	src.Add(T(1, "y", 2.5), 3, ModeBag)
	dst := NewTupleMap(2)
	positions := []int{2, 0}
	src.EachSlot(func(s int32, n int64) bool {
		dst.AddFromProjected(src, s, positions, n, ModeBag)
		return true
	})
	if dst.Len() != 1 || dst.Get(T(2.5, 1)) != 5 {
		t.Errorf("projected merge: len=%d n=%d", dst.Len(), dst.Get(T(2.5, 1)))
	}
}

// TestInternerConcurrent exercises lock-free readers racing writers; run
// under -race in CI.
func TestInternerConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	start := make(chan struct{})
	syms := make([][]Sym, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				y := Intern(fmt.Sprintf("conc-%d", i%97))
				syms[g] = append(syms[g], y)
				if got := SymStr(y); got != fmt.Sprintf("conc-%d", i%97) {
					t.Errorf("SymStr(%d) = %q", y, got)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < 4; g++ {
		for i := range syms[0] {
			if syms[g][i] != syms[0][i] {
				t.Fatalf("interning not stable across goroutines")
			}
		}
	}
}

// TestCopyIntoAndProjectSelectInto checks the vectorized bulk helpers
// against the scalar path on both backends.
func TestCopyIntoAndProjectSelectInto(t *testing.T) {
	schema := MustSchema("S", []Attribute{{"a", KindInt}, {"b", KindString}})
	proj := MustSchema("P", []Attribute{{"b", KindString}})
	for _, bk := range []Backend{Rows, Blocks} {
		src := NewWith(schema, Bag, bk)
		src.Add(T(1, "p"), 2)
		src.Add(T(2, "q"), 1)
		src.Add(T(3, "p"), 1)

		dst := NewWith(schema, Bag, bk)
		dst.Add(T(1, "p"), 1)
		CopyInto(dst, src)
		if dst.Count(T(1, "p")) != 3 || dst.Card() != 5 {
			t.Errorf("%s: CopyInto: count=%d card=%d", bk, dst.Count(T(1, "p")), dst.Card())
		}

		out := NewWith(proj, Bag, bk)
		err := ProjectSelectInto(out, src, []int{1}, func(tp Tuple) (bool, error) {
			return tp[0].AsInt() != 2, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Count(T("p")) != 3 || out.Count(T("q")) != 0 || out.Card() != 3 {
			t.Errorf("%s: ProjectSelectInto: p=%d q=%d card=%d",
				bk, out.Count(T("p")), out.Count(T("q")), out.Card())
		}

		// Error propagation stops the scan.
		errOut := NewWith(proj, Bag, bk)
		wantErr := fmt.Errorf("boom")
		if err := ProjectSelectInto(errOut, src, []int{1}, func(Tuple) (bool, error) {
			return false, wantErr
		}); err != wantErr {
			t.Errorf("%s: error not propagated: %v", bk, err)
		}
	}
}
