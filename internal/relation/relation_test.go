package relation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("R",
		[]Attribute{{"r1", KindInt}, {"r2", KindString}, {"r3", KindInt}}, "r1")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Name() != "R" || s.Arity() != 3 {
		t.Fatalf("basic accessors: %s %d", s.Name(), s.Arity())
	}
	if got := s.AttrNames(); strings.Join(got, ",") != "r1,r2,r3" {
		t.Errorf("AttrNames = %v", got)
	}
	if i, ok := s.AttrIndex("r2"); !ok || i != 1 {
		t.Errorf("AttrIndex(r2) = %d,%v", i, ok)
	}
	if _, ok := s.AttrIndex("zz"); ok {
		t.Errorf("AttrIndex(zz) should miss")
	}
	if k, ok := s.AttrType("r2"); !ok || k != KindString {
		t.Errorf("AttrType(r2) = %v,%v", k, ok)
	}
	if !s.HasKey() || strings.Join(s.KeyAttrs(), ",") != "r1" {
		t.Errorf("key = %v", s.KeyAttrs())
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema("", []Attribute{{"a", KindInt}}); err == nil {
		t.Errorf("empty name should fail")
	}
	if _, err := NewSchema("R", nil); err == nil {
		t.Errorf("no attributes should fail")
	}
	if _, err := NewSchema("R", []Attribute{{"a", KindInt}, {"a", KindInt}}); err == nil {
		t.Errorf("duplicate attribute should fail")
	}
	if _, err := NewSchema("R", []Attribute{{"a", KindInt}}, "b"); err == nil {
		t.Errorf("unknown key attribute should fail")
	}
	if _, err := NewSchema("R", []Attribute{{"", KindInt}}); err == nil {
		t.Errorf("unnamed attribute should fail")
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project("P", []string{"r3", "r1"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p.AttrNames(), ",") != "r3,r1" {
		t.Errorf("projected attrs = %v", p.AttrNames())
	}
	if !p.HasKey() {
		t.Errorf("key r1 survives projection containing r1")
	}
	q, err := s.Project("Q", []string{"r2"})
	if err != nil {
		t.Fatal(err)
	}
	if q.HasKey() {
		t.Errorf("key must be dropped when key attrs projected away")
	}
	if _, err := s.Project("X", []string{"nope"}); err == nil {
		t.Errorf("projecting unknown attribute should fail")
	}
}

func TestSchemaConcat(t *testing.T) {
	s := testSchema(t)
	o := MustSchema("S", []Attribute{{"s1", KindInt}}, "s1")
	c, err := s.Concat("RS", o)
	if err != nil {
		t.Fatal(err)
	}
	if c.Arity() != 4 {
		t.Errorf("concat arity = %d", c.Arity())
	}
	// Overlapping names must fail.
	dup := MustSchema("S2", []Attribute{{"r1", KindInt}})
	if _, err := s.Concat("X", dup); err == nil {
		t.Errorf("concat with duplicate attr names should fail")
	}
}

func TestSetRelationBasics(t *testing.T) {
	r := NewSet(testSchema(t))
	if !r.Insert(T(1, "a", 10)) {
		t.Fatalf("first insert")
	}
	if r.Insert(T(1, "a", 10)) {
		t.Errorf("duplicate insert into set must be a no-op")
	}
	if r.Len() != 1 || r.Card() != 1 {
		t.Errorf("len=%d card=%d", r.Len(), r.Card())
	}
	if !r.Contains(T(1, "a", 10)) || r.Contains(T(2, "b", 20)) {
		t.Errorf("Contains wrong")
	}
	if !r.Delete(T(1, "a", 10)) {
		t.Errorf("delete existing")
	}
	if r.Delete(T(1, "a", 10)) {
		t.Errorf("delete absent must return false")
	}
	if r.Len() != 0 || r.Card() != 0 {
		t.Errorf("after delete: len=%d card=%d", r.Len(), r.Card())
	}
}

func TestBagRelationMultiplicity(t *testing.T) {
	r := NewBag(testSchema(t))
	tp := T(1, "a", 10)
	r.Insert(tp)
	r.Insert(tp)
	r.Insert(tp)
	if r.Count(tp) != 3 || r.Len() != 1 || r.Card() != 3 {
		t.Fatalf("count=%d len=%d card=%d", r.Count(tp), r.Len(), r.Card())
	}
	applied, n := r.Add(tp, -2)
	if applied != -2 || n != 1 {
		t.Errorf("Add(-2): applied=%d n=%d", applied, n)
	}
	applied, n = r.Add(tp, -5)
	if applied != -1 || n != 0 {
		t.Errorf("underflow must clamp: applied=%d n=%d", applied, n)
	}
	if r.Contains(tp) {
		t.Errorf("tuple should be gone")
	}
}

func TestSetCount(t *testing.T) {
	r := NewBag(testSchema(t))
	tp := T(5, "z", 1)
	r.SetCount(tp, 4)
	if r.Count(tp) != 4 {
		t.Errorf("SetCount up: %d", r.Count(tp))
	}
	r.SetCount(tp, 1)
	if r.Count(tp) != 1 {
		t.Errorf("SetCount down: %d", r.Count(tp))
	}
	r.SetCount(tp, 0)
	if r.Contains(tp) {
		t.Errorf("SetCount 0 should remove")
	}
}

func TestRelationEqualAndClone(t *testing.T) {
	a := NewBag(testSchema(t))
	a.Add(T(1, "a", 1), 2)
	a.Insert(T(2, "b", 2))
	b := a.Clone()
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("clone must be equal")
	}
	b.Insert(T(2, "b", 2))
	if a.Equal(b) {
		t.Errorf("multiplicity difference must break Equal")
	}
	if !a.EqualAsSet(b) {
		t.Errorf("EqualAsSet ignores multiplicities")
	}
	b.Insert(T(3, "c", 3))
	if a.EqualAsSet(b) {
		t.Errorf("distinct tuple sets differ")
	}
}

func TestRelationRowsDeterministic(t *testing.T) {
	r := NewSet(testSchema(t))
	r.Insert(T(3, "c", 30))
	r.Insert(T(1, "a", 10))
	r.Insert(T(2, "b", 20))
	rows := r.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 0; i+1 < len(rows); i++ {
		if rows[i].Tuple.Compare(rows[i+1].Tuple) >= 0 {
			t.Errorf("rows not sorted at %d", i)
		}
	}
}

func TestIndexProbe(t *testing.T) {
	r := NewBag(testSchema(t))
	if err := r.BuildIndex("r2"); err != nil {
		t.Fatal(err)
	}
	r.Insert(T(1, "a", 10))
	r.Insert(T(2, "a", 20))
	r.Insert(T(3, "b", 30))
	r.Add(T(2, "a", 20), 1)

	rows, err := r.Probe([]string{"r2"}, []Value{Str("a")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("probe a: %d rows", len(rows))
	}
	if rows[1].Count != 2 {
		t.Errorf("multiplicity through index: %d", rows[1].Count)
	}
	// Deleting updates the index.
	r.Add(T(1, "a", 10), -1)
	rows, _ = r.Probe([]string{"r2"}, []Value{Str("a")})
	if len(rows) != 1 {
		t.Errorf("after delete: %d rows", len(rows))
	}
	// Probe without an index must agree.
	plain := NewBag(testSchema(t))
	plain.Insert(T(2, "a", 20))
	plain.Add(T(2, "a", 20), 1)
	rows2, err := plain.Probe([]string{"r2"}, []Value{Str("a")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 1 || rows2[0].Count != 2 {
		t.Errorf("scan probe disagrees: %v", rows2)
	}
	if _, err := r.Probe([]string{"zz"}, []Value{Str("a")}); err == nil {
		t.Errorf("probe on unknown attr should fail")
	}
}

func TestIndexBuildOverExisting(t *testing.T) {
	r := NewSet(testSchema(t))
	r.Insert(T(1, "x", 1))
	r.Insert(T(2, "x", 2))
	if err := r.BuildIndex("r2"); err != nil {
		t.Fatal(err)
	}
	if !r.HasIndex("r2") || r.HasIndex("r1") {
		t.Errorf("HasIndex wrong")
	}
	rows, _ := r.Probe([]string{"r2"}, []Value{Str("x")})
	if len(rows) != 2 {
		t.Errorf("index built over existing rows: %d", len(rows))
	}
	if err := r.BuildIndex("nope"); err == nil {
		t.Errorf("index on unknown attribute should fail")
	}
}

func TestClear(t *testing.T) {
	r := NewSet(testSchema(t))
	r.BuildIndex("r2")
	r.Insert(T(1, "a", 1))
	r.Clear()
	if r.Len() != 0 || r.Card() != 0 {
		t.Errorf("clear failed")
	}
	rows, _ := r.Probe([]string{"r2"}, []Value{Str("a")})
	if len(rows) != 0 {
		t.Errorf("index not cleared")
	}
}

func TestDistinct(t *testing.T) {
	r := NewBag(testSchema(t))
	r.Add(T(1, "a", 1), 3)
	r.Add(T(2, "b", 2), 1)
	d := r.Distinct()
	if d.Semantics() != Set || d.Len() != 2 || d.Card() != 2 {
		t.Errorf("distinct: %v", d)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on arity mismatch")
		}
	}()
	NewSet(testSchema(t)).Insert(T(1, "a"))
}

// Property: for a bag relation, Card equals the sum of a shadow count map
// under random Add operations.
func TestBagCardProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewBag(testSchema(t))
		shadow := make(map[string]int)
		for i := 0; i < 200; i++ {
			tp := T(rng.Intn(10), "k", rng.Intn(3))
			n := rng.Intn(5) - 2
			r.Add(tp, n)
			c := shadow[tp.Key()] + n
			if c < 0 {
				c = 0
			}
			if c == 0 {
				delete(shadow, tp.Key())
			} else {
				shadow[tp.Key()] = c
			}
		}
		total := 0
		for _, c := range shadow {
			total += c
		}
		if r.Card() != total || r.Len() != len(shadow) {
			return false
		}
		for _, rw := range r.Rows() {
			if shadow[rw.Tuple.Key()] != rw.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: index probes agree with scan probes under random mutation.
func TestIndexConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		indexed := NewBag(testSchema(t))
		indexed.BuildIndex("r3")
		plain := NewBag(testSchema(t))
		for i := 0; i < 150; i++ {
			tp := T(rng.Intn(8), "v", rng.Intn(4))
			n := rng.Intn(3) - 1
			indexed.Add(tp, n)
			plain.Add(tp, n)
		}
		for v := 0; v < 4; v++ {
			a, _ := indexed.Probe([]string{"r3"}, []Value{Int(int64(v))})
			b, _ := plain.Probe([]string{"r3"}, []Value{Int(int64(v))})
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if !a[i].Tuple.Equal(b[i].Tuple) || a[i].Count != b[i].Count {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMemoryFootprintMonotone(t *testing.T) {
	r := NewSet(testSchema(t))
	before := r.MemoryFootprint()
	r.Insert(T(1, "abcdefg", 10))
	after := r.MemoryFootprint()
	if after <= before {
		t.Errorf("footprint should grow: %d -> %d", before, after)
	}
}

func TestSchemaString(t *testing.T) {
	s := testSchema(t)
	got := s.String()
	if !strings.Contains(got, "*r1") || !strings.Contains(got, "r2 string") {
		t.Errorf("schema string: %s", got)
	}
}

func TestSameShape(t *testing.T) {
	a := MustSchema("A", []Attribute{{"x", KindInt}, {"y", KindString}})
	b := MustSchema("B", []Attribute{{"p", KindInt}, {"q", KindString}})
	c := MustSchema("C", []Attribute{{"p", KindString}, {"q", KindInt}})
	if !a.SameShape(b) {
		t.Errorf("same shapes should match")
	}
	if a.SameShape(c) {
		t.Errorf("different types should not match")
	}
}
