package relation

import (
	"fmt"
	"sync/atomic"
)

// Backend selects the physical representation of relations and deltas.
//
// Blocks is the columnar data plane: type-specialized column vectors with
// a multiplicity column, hashed by canonical key encoding (TupleMap).
// Rows is the original map[string]*row representation, kept alive behind
// the same API as a differential oracle and operator fallback.
type Backend uint8

const (
	// Blocks is the columnar backend (default).
	Blocks Backend = iota
	// Rows is the row-oriented oracle backend.
	Rows
)

// String returns "blocks" or "rows".
func (b Backend) String() string {
	if b == Rows {
		return "rows"
	}
	return "blocks"
}

// ParseBackend parses a backend name as used by the -relation-backend flag.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "blocks":
		return Blocks, nil
	case "rows":
		return Rows, nil
	}
	return Blocks, fmt.Errorf("relation: unknown backend %q (want rows or blocks)", s)
}

// defaultBackend is the process-wide backend for newly created relations.
// Stored atomically so tests and the serve-mediator flag can flip it
// without racing concurrent relation construction.
var defaultBackend atomic.Uint32

// SetDefaultBackend sets the backend used by New/NewSet/NewBag.
func SetDefaultBackend(b Backend) { defaultBackend.Store(uint32(b)) }

// DefaultBackend returns the backend used by New/NewSet/NewBag.
func DefaultBackend() Backend { return Backend(defaultBackend.Load()) }

// addMode maps the relation's semantics to TupleMap count arithmetic.
func (r *Relation) addMode() AddMode {
	if r.sem == Set {
		return ModeSet
	}
	return ModeBag
}

// AddSlot adds n occurrences of src's slot tuple into r under r's
// semantics, maintaining cardinality and indexes, and returns the applied
// change. This is the slot-wise apply primitive block-backed deltas use;
// it falls back to tuple materialization when r is row-backed or indexed.
func (r *Relation) AddSlot(src *TupleMap, slot int32, n int64) int64 {
	if r.tm == nil || len(r.indexes) > 0 {
		t := make(Tuple, 0, src.Arity())
		t = src.AppendTupleAt(t, slot)
		a, _ := r.Add(t, int(n))
		return int64(a)
	}
	a, _ := r.tm.AddFrom(src, slot, n, r.addMode())
	r.card += int(a)
	return a
}

// CopyInto adds every row of src into dst, accumulating multiplicities
// under dst's semantics. When both relations are block-backed (and dst is
// unindexed) the copy is vectorized: stored hashes are reused and values
// move column-to-column without materializing tuples or key strings.
// Arities must match.
func CopyInto(dst, src *Relation) {
	if dst.tm != nil && src.tm != nil && len(dst.indexes) == 0 {
		mode := dst.addMode()
		src.tm.EachSlot(func(s int32, n int64) bool {
			a, _ := dst.tm.AddFrom(src.tm, s, n, mode)
			dst.card += int(a)
			return true
		})
		return
	}
	src.Each(func(t Tuple, n int) bool {
		dst.Add(t, n)
		return true
	})
}

// ProjectSelectInto evaluates a select-project block from src into dst:
// rows passing pred (nil selects everything) are projected onto positions
// and added to dst. On the vectorized path the tuple handed to pred is a
// scratch buffer reused between calls — predicates must not retain it.
// len(positions) must equal dst's arity.
func ProjectSelectInto(dst, src *Relation, positions []int, pred func(t Tuple) (bool, error)) error {
	if dst.tm != nil && src.tm != nil && len(dst.indexes) == 0 {
		mode := dst.addMode()
		var scratch Tuple
		var err error
		src.tm.EachSlot(func(s int32, n int64) bool {
			if pred != nil {
				scratch = src.tm.AppendTupleAt(scratch[:0], s)
				ok, e := pred(scratch)
				if e != nil {
					err = e
					return false
				}
				if !ok {
					return true
				}
			}
			a, _ := dst.tm.AddFromProjected(src.tm, s, positions, n, mode)
			dst.card += int(a)
			return true
		})
		return err
	}
	var err error
	src.Each(func(t Tuple, n int) bool {
		if pred != nil {
			ok, e := pred(t)
			if e != nil {
				err = e
				return false
			}
			if !ok {
				return true
			}
		}
		dst.Add(t.Project(positions), n)
		return true
	})
	return err
}
