package relation

import (
	"sync"
	"sync/atomic"
)

// Sym is an interned string symbol: a dense index into the process-wide
// string table. Two equal strings always intern to the same Sym, so
// symbol equality is string equality — the property the columnar string
// columns rely on to compare and hash without touching string bytes
// beyond the first intern.
type Sym uint32

// interner is an append-only process-wide string table. Writes (first
// intern of a new string) take the mutex and republish the lookup slice;
// reads (Sym → string) are lock-free via the atomic pointer, which is
// what makes concurrent query evaluation over shared block-backed store
// versions safe without a read lock.
type interner struct {
	mu   sync.Mutex
	ids  map[string]Sym
	strs atomic.Pointer[[]string]
}

var strTable = newInterner()

func newInterner() *interner {
	in := &interner{ids: make(map[string]Sym)}
	empty := make([]string, 0, 64)
	in.strs.Store(&empty)
	return in
}

// Intern returns the symbol for s, assigning a new one on first sight.
func Intern(s string) Sym {
	in := strTable
	// Fast path: already interned. The ids map is only written under mu,
	// but reading it concurrently with a write would race, so the fast
	// path goes through the published slice? No — the map is the only
	// by-string lookup. Take the mutex for both paths; interning happens
	// on ingest (inserts), not on reads, and the critical section is a
	// map probe.
	in.mu.Lock()
	if y, ok := in.ids[s]; ok {
		in.mu.Unlock()
		return y
	}
	cur := *in.strs.Load()
	y := Sym(len(cur))
	// Append under the mutex and republish the longer header. In-place
	// growth within capacity is safe for lock-free readers: a snapshot
	// with length n never indexes position n, and the atomic Store
	// publishing the longer header happens-after the element write.
	next := append(cur, s)
	in.ids[s] = y
	in.strs.Store(&next)
	in.mu.Unlock()
	return y
}

// SymStr returns the string for an interned symbol. Lock-free.
func SymStr(y Sym) string {
	return (*strTable.strs.Load())[y]
}

// InternedStrings reports how many distinct strings have been interned in
// this process (observability; the table is append-only and never shrinks).
func InternedStrings() int {
	return len(*strTable.strs.Load())
}
