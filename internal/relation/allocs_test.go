package relation

import "testing"

// The blocks backend must not build key strings on the tuple hot path:
// Add and Count on an unindexed relation hash the tuple's canonical
// encoding in a stack buffer and touch only column vectors. These tests
// pin that property so a regression (an escaping buffer, a closure that
// heap-allocates, a map key materialization) fails loudly.

func TestAddZeroAllocs(t *testing.T) {
	r := NewWith(MustSchema("Z", []Attribute{
		{"a", KindInt}, {"b", KindString}, {"c", KindInt},
	}), Bag, Blocks)
	tp := T(7, "hot-path", 9)
	r.Add(tp, 1) // warm: column growth, interning, table sizing

	if allocs := testing.AllocsPerRun(200, func() {
		r.Add(tp, 1)
	}); allocs != 0 {
		t.Errorf("Add on existing tuple: %v allocs/op, want 0", allocs)
	}
}

func TestCountZeroAllocs(t *testing.T) {
	r := NewWith(MustSchema("Z", []Attribute{
		{"a", KindInt}, {"b", KindString}, {"c", KindInt},
	}), Bag, Blocks)
	present := T(7, "hot-path", 9)
	absent := T(8, "missing", 1)
	r.Add(present, 3)

	if allocs := testing.AllocsPerRun(200, func() {
		if r.Count(present) != 3 {
			t.Fatal("wrong count")
		}
	}); allocs != 0 {
		t.Errorf("Count hit: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if r.Count(absent) != 0 {
			t.Fatal("phantom tuple")
		}
	}); allocs != 0 {
		t.Errorf("Count miss: %v allocs/op, want 0", allocs)
	}
}

// Insert/Delete churn over an existing slot population also stays
// allocation-free once the free list and table have warmed up.
func TestChurnZeroAllocs(t *testing.T) {
	r := NewWith(MustSchema("Z", []Attribute{{"a", KindInt}}), Bag, Blocks)
	tp := T(1)
	r.Add(tp, 1)
	r.Add(tp, -1) // warm the free list
	r.Add(tp, 1)
	r.Add(tp, -1)

	if allocs := testing.AllocsPerRun(200, func() {
		r.Add(tp, 1)
		r.Add(tp, -1)
	}); allocs != 0 {
		t.Errorf("insert/delete churn: %v allocs/op, want 0", allocs)
	}
}
