package relation

// TupleMap is the columnar tuple store behind the blocks backend: a
// signed-count map from tuples to int64 counts laid out as type
// specialized column vectors (one per attribute) plus a multiplicity
// column, indexed by an open-addressed hash table over the tuples'
// canonical key encodings.
//
// It serves both relations (counts clamped to the set/bag range by the
// caller-supplied AddMode) and deltas (signed counts), which is what lets
// the smash, apply, and select-project kernels move data column-to-column
// between deltas and stores without materializing a single tuple or key
// string.
//
// Concurrency: mutation is single-writer, like every relation in this
// codebase. All read paths (Get, Each, EachSlot, value accessors) are
// safe for any number of concurrent readers once mutation stops — they
// allocate nothing shared and mutate nothing, which is what published
// store versions require.
type TupleMap struct {
	arity  int
	cols   []column
	counts []int64
	hashes []uint64
	// Open addressing: table[i] == 0 means empty, == tombstone means a
	// deleted entry (probes continue), otherwise slot+1. Kept at a load
	// factor below 3/4 including tombstones; cloning is a straight slice
	// copy, which is the reason this is not a Go map.
	table []int32
	mask  uint64
	live  int // slots with a nonzero count
	used  int // table entries occupied, tombstones included
	free  []int32
}

const tombstone = int32(-1)

// AddMode selects the count arithmetic for TupleMap.Add and the
// vectorized AddFrom variants.
type AddMode uint8

const (
	// ModeSigned leaves counts unclamped (delta semantics).
	ModeSigned AddMode = iota
	// ModeBag clamps counts at zero from below (bag relation semantics).
	ModeBag
	// ModeSet clamps counts to {0, 1} (set relation semantics).
	ModeSet
	// ModeAssign sets the count to n outright (override-smash semantics).
	ModeAssign
)

// NewTupleMap creates an empty map for tuples of the given arity.
func NewTupleMap(arity int) *TupleMap {
	return &TupleMap{
		arity: arity,
		cols:  make([]column, arity),
		table: make([]int32, 8),
		mask:  7,
	}
}

// Arity returns the tuple width.
func (m *TupleMap) Arity() int { return m.arity }

// Len returns the number of tuples with a nonzero count.
func (m *TupleMap) Len() int { return m.live }

// Slots returns the slot-space upper bound for EachSlot-style iteration:
// every live slot index is < Slots(), dead slots have count zero.
func (m *TupleMap) Slots() int { return len(m.counts) }

// CountAt returns the signed count at a slot (zero for dead slots).
func (m *TupleMap) CountAt(slot int32) int64 { return m.counts[slot] }

// HashAt returns the canonical-key hash of the tuple at a live slot.
func (m *TupleMap) HashAt(slot int32) uint64 { return m.hashes[slot] }

// ValueAt materializes one attribute of the tuple at a live slot.
func (m *TupleMap) ValueAt(slot int32, col int) Value {
	return m.cols[col].valueAt(int(slot))
}

// AppendTupleAt appends the tuple at a live slot to dst and returns it —
// the materialization primitive Each builds on.
func (m *TupleMap) AppendTupleAt(dst Tuple, slot int32) Tuple {
	for c := range m.cols {
		dst = append(dst, m.cols[c].valueAt(int(slot)))
	}
	return dst
}

// hashBytes is FNV-1a over the canonical key encoding.
func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// HashTuple computes the canonical-key hash of a tuple without retaining
// any allocation: the encoding is built in a stack buffer (heap spill
// only for tuples encoding past 128 bytes, where correctness still
// holds).
func HashTuple(t Tuple) uint64 {
	var arr [128]byte
	b := arr[:0]
	for _, v := range t {
		b = v.appendKey(b)
		b = append(b, '|')
	}
	return hashBytes(b)
}

// hashSlotProjected hashes the projection of src's slot onto positions,
// matching HashTuple of the materialized projected tuple.
func hashSlotProjected(src *TupleMap, slot int32, positions []int) uint64 {
	var arr [128]byte
	b := arr[:0]
	for _, p := range positions {
		b = src.cols[p].appendKeyAt(b, int(slot))
		b = append(b, '|')
	}
	return hashBytes(b)
}

// hashSlot hashes src's full-width slot; equal to the stored hash, kept
// as a helper for callers that do not have it at hand.
func hashSlot(src *TupleMap, slot int32) uint64 { return src.hashes[slot] }

// findWith probes for a slot with hash h satisfying eq. It returns the
// slot (or -1), the table index where the probe ended (the match, or the
// insertion point), and the first tombstone passed (-1 if none) for
// insert reuse.
func (m *TupleMap) findWith(h uint64, eq func(slot int32) bool) (slot int32, tableIdx int, tombIdx int) {
	tombIdx = -1
	i := h & m.mask
	for {
		switch e := m.table[i]; {
		case e == 0:
			return -1, int(i), tombIdx
		case e == tombstone:
			if tombIdx < 0 {
				tombIdx = int(i)
			}
		default:
			s := e - 1
			if m.hashes[s] == h && eq(s) {
				return s, int(i), tombIdx
			}
		}
		i = (i + 1) & m.mask
	}
}

// equalTuple is the eq predicate for probe tuples.
func (m *TupleMap) equalTuple(slot int32, t Tuple) bool {
	for c := range m.cols {
		if !m.cols[c].keyEqualAt(int(slot), t[c]) {
			return false
		}
	}
	return true
}

// Get returns the signed count of t (zero if absent). Allocation free for
// tuples whose canonical encoding fits the stack buffer; safe for
// concurrent readers.
func (m *TupleMap) Get(t Tuple) int64 {
	if m.live == 0 {
		return 0
	}
	h := HashTuple(t)
	slot, _, _ := m.findWith(h, func(s int32) bool { return m.equalTuple(s, t) })
	if slot < 0 {
		return 0
	}
	return m.counts[slot]
}

// target applies the mode arithmetic.
func applyMode(old, n int64, mode AddMode) int64 {
	if mode == ModeAssign {
		return n
	}
	t := old + n
	if mode != ModeSigned && t < 0 {
		t = 0
	}
	if mode == ModeSet && t > 1 {
		t = 1
	}
	return t
}

// Add adjusts the count of t by n under the given mode, returning the
// actual applied change and the new count. Entries reaching zero are
// removed.
func (m *TupleMap) Add(t Tuple, n int64, mode AddMode) (applied, newCount int64) {
	h := HashTuple(t)
	slot, tableIdx, tombIdx := m.findWith(h, func(s int32) bool { return m.equalTuple(s, t) })
	return m.adjust(slot, tableIdx, tombIdx, h, n, mode, func(s int32) {
		for c := range m.cols {
			m.cols[c].set(int(s), t[c])
		}
	})
}

// AddFrom adds n occurrences of src's slot tuple under mode — the
// vectorized path: the stored hash is reused and values copy
// column-to-column without materializing the tuple.
func (m *TupleMap) AddFrom(src *TupleMap, srcSlot int32, n int64, mode AddMode) (applied, newCount int64) {
	h := src.hashes[srcSlot]
	slot, tableIdx, tombIdx := m.findWith(h, func(s int32) bool {
		for c := range m.cols {
			if !m.cols[c].colEqualAt(int(s), &src.cols[c], int(srcSlot)) {
				return false
			}
		}
		return true
	})
	return m.adjust(slot, tableIdx, tombIdx, h, n, mode, func(s int32) {
		for c := range m.cols {
			m.cols[c].setFromCol(int(s), &src.cols[c], int(srcSlot))
		}
	})
}

// AddFromProjected adds n occurrences of the projection of src's slot
// onto positions (len(positions) must equal m.arity). The projected hash
// is recomputed column-wise; values still copy column-to-column.
func (m *TupleMap) AddFromProjected(src *TupleMap, srcSlot int32, positions []int, n int64, mode AddMode) (applied, newCount int64) {
	h := hashSlotProjected(src, srcSlot, positions)
	slot, tableIdx, tombIdx := m.findWith(h, func(s int32) bool {
		for c := range m.cols {
			if !m.cols[c].colEqualAt(int(s), &src.cols[positions[c]], int(srcSlot)) {
				return false
			}
		}
		return true
	})
	return m.adjust(slot, tableIdx, tombIdx, h, n, mode, func(s int32) {
		for c := range m.cols {
			m.cols[c].setFromCol(int(s), &src.cols[positions[c]], int(srcSlot))
		}
	})
}

// adjust performs the count update found by a probe: slot >= 0 names an
// existing entry (tableIdx its table position), slot < 0 means absent
// with tableIdx the probe's empty stop and tombIdx a reusable tombstone.
// write stores the tuple's values into a newly reserved slot.
func (m *TupleMap) adjust(slot int32, tableIdx, tombIdx int, h uint64, n int64, mode AddMode, write func(s int32)) (applied, newCount int64) {
	var old int64
	if slot >= 0 {
		old = m.counts[slot]
	}
	target := applyMode(old, n, mode)
	applied = target - old
	if applied == 0 {
		return 0, old
	}
	if slot >= 0 {
		if target == 0 {
			m.counts[slot] = 0
			m.free = append(m.free, slot)
			m.table[tableIdx] = tombstone
			m.live--
			return applied, 0
		}
		m.counts[slot] = target
		return applied, target
	}
	// New entry.
	s := m.reserveSlot()
	write(s)
	m.counts[s] = target
	m.hashes[s] = h
	if tombIdx >= 0 {
		m.table[tombIdx] = s + 1
	} else {
		m.table[tableIdx] = s + 1
		m.used++
	}
	m.live++
	if uint64(m.used)*4 >= (m.mask+1)*3 {
		m.rehash()
	}
	return applied, target
}

// reserveSlot returns a writable slot index: a freed one if available,
// otherwise freshly appended across every column vector.
func (m *TupleMap) reserveSlot() int32 {
	if n := len(m.free); n > 0 {
		s := m.free[n-1]
		m.free = m.free[:n-1]
		return s
	}
	for c := range m.cols {
		m.cols[c].grow()
	}
	m.counts = append(m.counts, 0)
	m.hashes = append(m.hashes, 0)
	return int32(len(m.counts) - 1)
}

// rehash rebuilds the table at double size, dropping tombstones.
func (m *TupleMap) rehash() {
	size := (m.mask + 1) * 2
	// Keep doubling while the live entries alone would exceed half the
	// new size (pathological tombstone churn).
	for uint64(m.live)*2 >= size {
		size *= 2
	}
	m.table = make([]int32, size)
	m.mask = size - 1
	m.used = 0
	for s, n := range m.counts {
		if n == 0 {
			continue
		}
		i := m.hashes[s] & m.mask
		for m.table[i] != 0 {
			i = (i + 1) & m.mask
		}
		m.table[i] = int32(s) + 1
		m.used++
	}
}

// EachSlot iterates the live slots (slot index plus signed count) in slot
// order — the deterministic, allocation-free iteration the vectorized
// kernels use. Return false to stop.
func (m *TupleMap) EachSlot(fn func(slot int32, n int64) bool) {
	for s, n := range m.counts {
		if n == 0 {
			continue
		}
		if !fn(int32(s), n) {
			return
		}
	}
}

// Each iterates live entries, materializing a fresh tuple per row (safe
// to retain). Return false to stop.
func (m *TupleMap) Each(fn func(t Tuple, n int64) bool) {
	for s, n := range m.counts {
		if n == 0 {
			continue
		}
		t := make(Tuple, 0, m.arity)
		t = m.AppendTupleAt(t, int32(s))
		if !fn(t, n) {
			return
		}
	}
}

// Clone deep-copies the map. Column vectors, the count/hash vectors, and
// the open-addressed table copy as whole slices — the structural reason
// copy-on-write cloning of large block-backed stores is cheap.
func (m *TupleMap) Clone() *TupleMap {
	out := &TupleMap{
		arity:  m.arity,
		cols:   make([]column, m.arity),
		counts: append([]int64(nil), m.counts...),
		hashes: append([]uint64(nil), m.hashes...),
		table:  append([]int32(nil), m.table...),
		mask:   m.mask,
		live:   m.live,
		used:   m.used,
	}
	if len(m.free) > 0 {
		out.free = append([]int32(nil), m.free...)
	}
	for c := range m.cols {
		out.cols[c] = m.cols[c].clone()
	}
	return out
}

// Clear removes every entry, retaining capacity.
func (m *TupleMap) Clear() {
	for i := range m.table {
		m.table[i] = 0
	}
	m.counts = m.counts[:0]
	m.hashes = m.hashes[:0]
	m.free = m.free[:0]
	m.live, m.used = 0, 0
	for c := range m.cols {
		cc := &m.cols[c]
		cc.ints = cc.ints[:0]
		cc.floats = cc.floats[:0]
		cc.syms = cc.syms[:0]
		cc.vals = cc.vals[:0]
	}
}

// GetFrom returns the count in m of src's slot tuple — the vectorized
// membership probe (used by Distinct-style transitions).
func (m *TupleMap) GetFrom(src *TupleMap, srcSlot int32) int64 {
	if m.live == 0 {
		return 0
	}
	h := src.hashes[srcSlot]
	slot, _, _ := m.findWith(h, func(s int32) bool {
		for c := range m.cols {
			if !m.cols[c].colEqualAt(int(s), &src.cols[c], int(srcSlot)) {
				return false
			}
		}
		return true
	})
	if slot < 0 {
		return 0
	}
	return m.counts[slot]
}

// hashString is hashBytes over a string without conversion.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// findKey resolves a canonical tuple key (the Tuple.Key form) to its live
// slot, or -1. Used by the index layer, which stores canonical keys.
func (m *TupleMap) findKey(key string) int32 {
	if m.live == 0 {
		return -1
	}
	h := hashString(key)
	var arr [128]byte
	slot, _, _ := m.findWith(h, func(s int32) bool {
		return string(m.appendKeyAt(arr[:0], s)) == key
	})
	return slot
}

// appendKeyAt appends the canonical key encoding of the full tuple at a
// live slot (the '|'-separated form Tuple.Key produces).
func (m *TupleMap) appendKeyAt(b []byte, slot int32) []byte {
	for c := range m.cols {
		b = m.cols[c].appendKeyAt(b, int(slot))
		b = append(b, '|')
	}
	return b
}
