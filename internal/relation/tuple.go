package relation

import "strings"

// Tuple is an ordered list of values matching a schema's attributes.
type Tuple []Value

// Row pairs a tuple with its multiplicity in a bag relation (always 1 in a
// set relation).
type Row struct {
	Tuple Tuple
	Count int
}

// Key returns a canonical string encoding of the tuple, usable as a map
// key. Numerically equal tuples (e.g. Int(2) vs Float(2)) share a key.
func (t Tuple) Key() string {
	b := make([]byte, 0, 16*len(t))
	for _, v := range t {
		b = v.appendKey(b)
		b = append(b, '|')
	}
	return string(b)
}

// KeyOn returns the canonical encoding of the tuple restricted to the given
// attribute positions, in order.
func (t Tuple) KeyOn(positions []int) string {
	b := make([]byte, 0, 16*len(positions))
	for _, p := range positions {
		b = t[p].appendKey(b)
		b = append(b, '|')
	}
	return string(b)
}

// Project returns a new tuple containing the values at the given positions.
func (t Tuple) Project(positions []int) Tuple {
	out := make(Tuple, len(positions))
	for i, p := range positions {
		out[i] = t[p]
	}
	return out
}

// Concat returns the concatenation of t and o as a new tuple.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	return append(out, o...)
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports value-wise equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically. Tuples of different lengths
// order by length first. Incomparable values order by kind.
func (t Tuple) Compare(o Tuple) int {
	if len(t) != len(o) {
		if len(t) < len(o) {
			return -1
		}
		return 1
	}
	for i := range t {
		c, err := t[i].Compare(o[i])
		if err != nil {
			a, b := t[i].Kind(), o[i].Kind()
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			continue
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// T builds a tuple from a mixed list of Go values. Supported types:
// int, int64, float64, string, bool, Value, and nil (null).
// It panics on any other type; intended for tests and examples.
func T(vals ...any) Tuple {
	out := make(Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			out[i] = Null()
		case int:
			out[i] = Int(int64(x))
		case int64:
			out[i] = Int(x)
		case float64:
			out[i] = Float(x)
		case string:
			out[i] = Str(x)
		case bool:
			out[i] = Bool(x)
		case Value:
			out[i] = x
		default:
			panic("relation: T: unsupported value type")
		}
	}
	return out
}
