package relation

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Bool(true), KindBool},
		{Int(7), KindInt},
		{Float(2.5), KindFloat},
		{Str("x"), KindString},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Errorf("IsNull misbehaves")
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Errorf("AsInt")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Errorf("AsFloat")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Errorf("AsFloat should coerce ints")
	}
	if Str("hi").AsString() != "hi" {
		t.Errorf("AsString")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Errorf("AsBool")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("AsInt on string", func() { Str("x").AsInt() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsBool on float", func() { Float(1).AsBool() })
	mustPanic("AsFloat on bool", func() { Bool(true).AsFloat() })
}

func TestValueCompareNumericCoercion(t *testing.T) {
	c, err := Int(2).Compare(Float(2.0))
	if err != nil || c != 0 {
		t.Errorf("Int(2) vs Float(2.0): c=%d err=%v", c, err)
	}
	c, err = Int(2).Compare(Float(2.5))
	if err != nil || c >= 0 {
		t.Errorf("Int(2) vs Float(2.5): c=%d err=%v", c, err)
	}
	if !Int(2).Equal(Float(2.0)) {
		t.Errorf("numeric Equal coercion failed")
	}
}

func TestValueCompareErrors(t *testing.T) {
	if _, err := Int(1).Compare(Str("1")); err == nil {
		t.Errorf("expected error comparing int with string")
	}
	if _, err := Bool(true).Compare(Str("true")); err == nil {
		t.Errorf("expected error comparing bool with string")
	}
	if Int(1).Equal(Str("1")) {
		t.Errorf("cross-kind Equal must be false")
	}
}

func TestNullOrdering(t *testing.T) {
	c, err := Null().Compare(Int(-100))
	if err != nil || c != -1 {
		t.Errorf("null should sort first: c=%d err=%v", c, err)
	}
	c, err = Int(0).Compare(Null())
	if err != nil || c != 1 {
		t.Errorf("null should sort first: c=%d err=%v", c, err)
	}
	if !Null().Equal(Null()) {
		t.Errorf("null equals null")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":   Null(),
		"true":   Bool(true),
		"42":     Int(42),
		"2.5":    Float(2.5),
		`"hi"`:   Str("hi"),
		`"a\"b"`: Str(`a"b`),
		"-7":     Int(-7),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestKeyEncodingDistinguishes(t *testing.T) {
	// Values that must NOT collide.
	distinct := []Value{
		Str("1"), Int(1), Bool(true), Null(), Str(""), Str("n"), Str("T"),
		Float(1.5), Int(2), Str("2"),
	}
	seen := make(map[string]Value)
	for _, v := range distinct {
		k := string(v.appendKey(nil))
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision: %v and %v both encode to %q", prev, v, k)
		}
		seen[k] = v
	}
	// Numerically equal values MUST collide (Equal implies same key).
	if a, b := string(Int(2).appendKey(nil)), string(Float(2).appendKey(nil)); a != b {
		t.Errorf("Int(2) and Float(2.0) should share a key: %q vs %q", a, b)
	}
}

func TestKeyEquivalenceProperty(t *testing.T) {
	// Property: for int values, equal values <=> equal keys.
	f := func(a, b int64) bool {
		ka := string(Int(a).appendKey(nil))
		kb := string(Int(b).appendKey(nil))
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Property: string values, equal <=> equal keys.
	g := func(a, b string) bool {
		ka := string(Str(a).appendKey(nil))
		kb := string(Str(b).appendKey(nil))
		return (a == b) == (ka == kb)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyUnambiguous(t *testing.T) {
	// Adjacent string boundaries must not be confusable.
	a := T("ab", "c")
	b := T("a", "bc")
	if a.Key() == b.Key() {
		t.Errorf("tuple key ambiguity: %v vs %v", a, b)
	}
}
