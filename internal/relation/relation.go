package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Semantics selects set or bag (multiset) storage for a relation.
// Difference nodes in a VDP are set nodes; nodes involving projection or
// union are stored as bags so incremental maintenance stays correct (§5.1).
type Semantics uint8

const (
	// Set semantics: every tuple has multiplicity 0 or 1.
	Set Semantics = iota
	// Bag semantics: tuples carry arbitrary non-negative multiplicities.
	Bag
)

// String returns "set" or "bag".
func (s Semantics) String() string {
	if s == Set {
		return "set"
	}
	return "bag"
}

type row struct {
	tuple Tuple
	count int
}

// Relation is an in-memory relation instance with set or bag semantics and
// optional hash indexes on attribute subsets.
//
// Two physical backends implement the same observable behavior: the
// columnar Blocks backend (a TupleMap of type-specialized column vectors)
// and the original Rows backend (map[string]*row keyed by canonical tuple
// encodings), retained as a differential oracle. Exactly one of tm / rows
// is non-nil.
type Relation struct {
	schema  *Schema
	sem     Semantics
	bk      Backend
	rows    map[string]*row // Rows backend
	tm      *TupleMap       // Blocks backend
	indexes map[string]*index
	card    int // total multiplicity
}

type index struct {
	positions []int
	buckets   map[string]map[string]struct{} // value key -> set of tuple keys
}

// New creates an empty relation over the given schema with the given
// semantics, using the process-default backend.
func New(schema *Schema, sem Semantics) *Relation {
	return NewWith(schema, sem, DefaultBackend())
}

// NewWith creates an empty relation on an explicit backend.
func NewWith(schema *Schema, sem Semantics, bk Backend) *Relation {
	r := &Relation{
		schema:  schema,
		sem:     sem,
		bk:      bk,
		indexes: make(map[string]*index),
	}
	if bk == Rows {
		r.rows = make(map[string]*row)
	} else {
		r.tm = NewTupleMap(schema.Arity())
	}
	return r
}

// NewSet creates an empty set-semantics relation.
func NewSet(schema *Schema) *Relation { return New(schema, Set) }

// NewBag creates an empty bag-semantics relation.
func NewBag(schema *Schema) *Relation { return New(schema, Bag) }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Semantics returns the relation's storage semantics.
func (r *Relation) Semantics() Semantics { return r.sem }

// Backend returns the relation's physical backend.
func (r *Relation) Backend() Backend { return r.bk }

// Blockmap exposes the underlying columnar store when the relation is
// block-backed (nil otherwise). Intended for the vectorized kernels in
// internal/delta; mutating through it bypasses index and cardinality
// maintenance.
func (r *Relation) Blockmap() *TupleMap { return r.tm }

// Len returns the number of distinct tuples.
func (r *Relation) Len() int {
	if r.tm != nil {
		return r.tm.Len()
	}
	return len(r.rows)
}

// Card returns the total cardinality including multiplicities (equal to
// Len for set relations).
func (r *Relation) Card() int { return r.card }

// Count returns the multiplicity of t (0 if absent).
func (r *Relation) Count(t Tuple) int {
	if r.tm != nil {
		return int(r.tm.Get(t))
	}
	if rw, ok := r.rows[t.Key()]; ok {
		return rw.count
	}
	return 0
}

// Contains reports whether t occurs at least once.
func (r *Relation) Contains(t Tuple) bool { return r.Count(t) > 0 }

// Insert adds one occurrence of t. For set relations, inserting an existing
// tuple is a no-op and returns false; otherwise it returns true.
func (r *Relation) Insert(t Tuple) bool {
	n, _ := r.Add(t, 1)
	return n > 0
}

// Delete removes one occurrence of t, reporting whether anything was
// removed.
func (r *Relation) Delete(t Tuple) bool {
	n, _ := r.Add(t, -1)
	return n < 0
}

// Add adjusts the multiplicity of t by n (which may be negative), clamping
// the result at zero and, for sets, at one. It returns the actual applied
// change and the new multiplicity. On the blocks backend with no indexes
// this path builds no key string and performs zero per-tuple allocations.
func (r *Relation) Add(t Tuple, n int) (applied, newCount int) {
	if len(t) != r.schema.Arity() {
		panic(fmt.Sprintf("relation: arity mismatch inserting into %s: tuple %s", r.schema.Name(), t))
	}
	if r.tm != nil {
		a, nc := r.tm.Add(t, int64(n), r.addMode())
		r.card += int(a)
		if len(r.indexes) > 0 && a != 0 {
			old := nc - a
			if old == 0 && nc > 0 {
				r.indexTuple(t.Key(), t)
			} else if old > 0 && nc == 0 {
				r.unindex(t.Key(), t)
			}
		}
		return int(a), int(nc)
	}
	key := t.Key()
	rw := r.rows[key]
	old := 0
	if rw != nil {
		old = rw.count
	}
	target := old + n
	if target < 0 {
		target = 0
	}
	if r.sem == Set && target > 1 {
		target = 1
	}
	applied = target - old
	if applied == 0 {
		return 0, old
	}
	r.card += applied
	if target == 0 {
		delete(r.rows, key)
		r.unindex(key, rw.tuple)
		return applied, 0
	}
	if rw == nil {
		rw = &row{tuple: t.Clone()}
		r.rows[key] = rw
		r.indexTuple(key, rw.tuple)
	}
	rw.count = target
	return applied, target
}

// SetCount forces the multiplicity of t to n (>= 0).
func (r *Relation) SetCount(t Tuple, n int) {
	cur := r.Count(t)
	r.Add(t, n-cur)
}

// Each iterates over distinct rows; fn receives each tuple and its
// multiplicity, returning false to stop early. The iteration order is
// unspecified. The callback must not mutate the relation. Tuples handed
// out are safe to retain on every backend.
func (r *Relation) Each(fn func(t Tuple, count int) bool) {
	if r.tm != nil {
		r.tm.Each(func(t Tuple, n int64) bool { return fn(t, int(n)) })
		return
	}
	for _, rw := range r.rows {
		if !fn(rw.tuple, rw.count) {
			return
		}
	}
}

// Rows returns all distinct rows in deterministic (sorted) order.
func (r *Relation) Rows() []Row {
	out := make([]Row, 0, r.Len())
	r.Each(func(t Tuple, n int) bool {
		out = append(out, Row{Tuple: t, Count: n})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out
}

// Tuples returns all tuples expanded by multiplicity in deterministic order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, r.card)
	for _, rw := range r.Rows() {
		for i := 0; i < rw.Count; i++ {
			out = append(out, rw.Tuple)
		}
	}
	return out
}

// Clone returns a deep copy of the relation (indexes are rebuilt lazily).
// On the blocks backend this is a handful of slice copies, which is what
// makes copy-on-write store versions cheap for large relations.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		schema:  r.schema,
		sem:     r.sem,
		bk:      r.bk,
		indexes: make(map[string]*index),
		card:    r.card,
	}
	if r.tm != nil {
		c.tm = r.tm.Clone()
		return c
	}
	c.rows = make(map[string]*row, len(r.rows))
	for key, rw := range r.rows {
		c.rows[key] = &row{tuple: rw.tuple.Clone(), count: rw.count}
	}
	return c
}

// Clear removes all tuples, keeping schema and index definitions.
func (r *Relation) Clear() {
	if r.tm != nil {
		r.tm.Clear()
	} else {
		r.rows = make(map[string]*row)
	}
	r.card = 0
	for _, ix := range r.indexes {
		ix.buckets = make(map[string]map[string]struct{})
	}
}

// Equal reports whether two relations have identical contents (same tuples
// with the same multiplicities). Schemas are compared by shape only; the
// backends need not match.
func (r *Relation) Equal(o *Relation) bool {
	if r.Len() != o.Len() || r.Card() != o.Card() {
		return false
	}
	if r.tm != nil && o.tm != nil {
		eq := true
		r.tm.EachSlot(func(s int32, n int64) bool {
			if o.tm.GetFrom(r.tm, s) != n {
				eq = false
			}
			return eq
		})
		return eq
	}
	eq := true
	r.Each(func(t Tuple, n int) bool {
		if o.Count(t) != n {
			eq = false
		}
		return eq
	})
	return eq
}

// EqualAsSet reports whether two relations contain the same distinct
// tuples, ignoring multiplicities.
func (r *Relation) EqualAsSet(o *Relation) bool {
	if r.Len() != o.Len() {
		return false
	}
	if r.tm != nil && o.tm != nil {
		eq := true
		r.tm.EachSlot(func(s int32, n int64) bool {
			if o.tm.GetFrom(r.tm, s) == 0 {
				eq = false
			}
			return eq
		})
		return eq
	}
	eq := true
	r.Each(func(t Tuple, n int) bool {
		if !o.Contains(t) {
			eq = false
		}
		return eq
	})
	return eq
}

// BuildIndex creates (or rebuilds) a hash index over the named attributes.
// Probe can then be used for constant-time lookups. Indexes are maintained
// incrementally by Insert/Delete/Add.
func (r *Relation) BuildIndex(attrs ...string) error {
	positions, err := r.schema.Positions(attrs)
	if err != nil {
		return err
	}
	name := strings.Join(attrs, ",")
	ix := &index{positions: positions, buckets: make(map[string]map[string]struct{})}
	r.Each(func(t Tuple, n int) bool {
		ix.add(t.Key(), t)
		return true
	})
	r.indexes[name] = ix
	return nil
}

// HasIndex reports whether an index exists over exactly the named
// attributes.
func (r *Relation) HasIndex(attrs ...string) bool {
	_, ok := r.indexes[strings.Join(attrs, ",")]
	return ok
}

// Probe returns the rows whose named attributes equal the given values,
// using an index if one exists over exactly those attributes and scanning
// otherwise.
func (r *Relation) Probe(attrs []string, vals []Value) ([]Row, error) {
	positions, err := r.schema.Positions(attrs)
	if err != nil {
		return nil, err
	}
	want := Tuple(vals).Key()
	var out []Row
	if ix, ok := r.indexes[strings.Join(attrs, ",")]; ok {
		for key := range ix.buckets[want] {
			if rw, found := r.lookupKey(key); found {
				out = append(out, rw)
			}
		}
	} else {
		r.Each(func(t Tuple, n int) bool {
			if t.KeyOn(positions) == want {
				out = append(out, Row{Tuple: t, Count: n})
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tuple.Compare(out[j].Tuple) < 0 })
	return out, nil
}

// lookupKey resolves a canonical tuple key to its row on either backend.
func (r *Relation) lookupKey(key string) (Row, bool) {
	if r.tm != nil {
		slot := r.tm.findKey(key)
		if slot < 0 {
			return Row{}, false
		}
		t := make(Tuple, 0, r.tm.Arity())
		t = r.tm.AppendTupleAt(t, slot)
		return Row{Tuple: t, Count: int(r.tm.CountAt(slot))}, true
	}
	rw, ok := r.rows[key]
	if !ok {
		return Row{}, false
	}
	return Row{Tuple: rw.tuple, Count: rw.count}, true
}

func (ix *index) add(key string, t Tuple) {
	vk := t.KeyOn(ix.positions)
	b := ix.buckets[vk]
	if b == nil {
		b = make(map[string]struct{})
		ix.buckets[vk] = b
	}
	b[key] = struct{}{}
}

func (ix *index) remove(key string, t Tuple) {
	vk := t.KeyOn(ix.positions)
	if b := ix.buckets[vk]; b != nil {
		delete(b, key)
		if len(b) == 0 {
			delete(ix.buckets, vk)
		}
	}
}

func (r *Relation) indexTuple(key string, t Tuple) {
	for _, ix := range r.indexes {
		ix.add(key, t)
	}
}

func (r *Relation) unindex(key string, t Tuple) {
	for _, ix := range r.indexes {
		ix.remove(key, t)
	}
}

// String renders the relation contents deterministically, one row per line.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s, %d distinct / %d total]\n", r.schema.String(), r.sem, r.Len(), r.Card())
	for _, rw := range r.Rows() {
		b.WriteString("  ")
		b.WriteString(rw.Tuple.String())
		if rw.Count != 1 {
			fmt.Fprintf(&b, " x%d", rw.Count)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MemoryFootprint estimates the resident bytes of the relation's tuple
// data. Used by the §5.3 space-vs-performance experiments; it is an
// estimate of payload size, not Go heap overhead. Both backends use the
// same accounting formula so annotation-advisor decisions do not depend
// on the physical representation.
func (r *Relation) MemoryFootprint() int {
	total := 0
	if r.tm != nil {
		var arr [128]byte
		r.tm.EachSlot(func(s int32, n int64) bool {
			b := r.tm.appendKeyAt(arr[:0], s)
			total += len(b) + 16
			for c := 0; c < r.tm.Arity(); c++ {
				total += r.tm.cols[c].payloadBytes(int(s))
			}
			return true
		})
		return total
	}
	for key, rw := range r.rows {
		total += len(key) + 16 // key string + row header estimate
		for _, v := range rw.tuple {
			total += 24
			if v.Kind() == KindString {
				total += len(v.AsString())
			}
		}
	}
	return total
}

// Distinct returns a new set-semantics relation with the distinct tuples
// of r, on the same backend.
func (r *Relation) Distinct() *Relation {
	out := NewWith(r.schema, Set, r.bk)
	if r.tm != nil {
		r.tm.EachSlot(func(s int32, n int64) bool {
			out.tm.AddFrom(r.tm, s, 1, ModeSet)
			return true
		})
		out.card = out.tm.Len()
		return out
	}
	for key, rw := range r.rows {
		out.rows[key] = &row{tuple: rw.tuple.Clone(), count: 1}
		out.card++
	}
	return out
}
