// Package relation implements the relational substrate used throughout the
// Squirrel reproduction: typed values, tuples, schemas with keys, and
// relations with either set or bag (multiset) semantics, including hash
// indexes for join and probe support.
//
// The paper (Hull & Zhou, SIGMOD 1996) works in the relational model with
// attribute-based algebra; some mediator relations are stored as bags to
// support incremental maintenance under projection and union (§5.1).
package relation

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds supported by the engine.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is null.
//
// Values are immutable and comparable via Equal and Compare; numeric
// comparisons coerce between int and float.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. (Named to avoid colliding with the
// fmt.Stringer method on Value.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Str is shorthand for String_.
func Str(v string) Value { return String_(v) }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload. It panics unless the kind is int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("relation: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the value as a float64, coercing from int.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic("relation: AsFloat on " + v.kind.String())
}

// AsString returns the string payload. It panics unless the kind is string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("relation: AsString on " + v.kind.String())
	}
	return v.s
}

// AsBool returns the boolean payload. It panics unless the kind is bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("relation: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports whether two values are equal. Ints and floats compare
// numerically; null equals only null.
func (v Value) Equal(o Value) bool {
	c, err := v.Compare(o)
	if err != nil {
		return false
	}
	return c == 0
}

// Compare orders two values. It returns a negative, zero, or positive
// integer as v sorts before, equal to, or after o. Numeric kinds are
// mutually comparable; otherwise the kinds must match. Null sorts before
// everything and equals null.
func (v Value) Compare(o Value) (int, error) {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0, nil
		case v.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1, nil
			case v.i > o.i:
				return 1, nil
			}
			return 0, nil
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		}
		return 0, nil
	}
	if v.kind != o.kind {
		return 0, fmt.Errorf("relation: cannot compare %s with %s", v.kind, o.kind)
	}
	switch v.kind {
	case KindBool:
		switch {
		case v.i < o.i:
			return -1, nil
		case v.i > o.i:
			return 1, nil
		}
		return 0, nil
	case KindString:
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("relation: cannot compare %s values", v.kind)
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	}
	return "?"
}

// appendKey appends a canonical, unambiguous encoding of v to b, suitable
// for use as a hash-map key component. Numerically equal ints and floats
// encode identically so that join keys built from mixed numeric columns
// match.
func (v Value) appendKey(b []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(b, 'n')
	case KindBool:
		if v.i != 0 {
			return append(b, 'T')
		}
		return append(b, 'F')
	case KindInt:
		// Integers that are exactly representable as float64 encode in
		// float form so Int(2) and Float(2.0) collide, matching Equal.
		f := float64(v.i)
		if int64(f) == v.i {
			return appendFloatKey(b, f)
		}
		b = append(b, 'i')
		return strconv.AppendInt(b, v.i, 10)
	case KindFloat:
		return appendFloatKey(b, v.f)
	case KindString:
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(v.s)), 10)
		b = append(b, ':')
		return append(b, v.s...)
	}
	return b
}

func appendFloatKey(b []byte, f float64) []byte {
	b = append(b, 'f')
	return strconv.AppendUint(b, floatKeyBits(f), 16)
}

// floatKeyBits is the normalized bit pattern appendFloatKey encodes:
// -0 collapses to +0 so the two zero representations share a key.
func floatKeyBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	return math.Float64bits(f + 0)
}

// floatKeyEqual reports whether two floats produce identical canonical
// key encodings.
func floatKeyEqual(a, b float64) bool {
	return floatKeyBits(a) == floatKeyBits(b)
}

// valueKeyEqual reports whether two values produce identical canonical
// key encodings (appendKey) — the equivalence the hashed columnar lookup
// uses, which by construction matches the string-keyed row backend.
func valueKeyEqual(a, b Value) bool {
	switch a.kind {
	case KindNull:
		return b.kind == KindNull
	case KindBool:
		return b.kind == KindBool && a.i == b.i
	case KindString:
		return b.kind == KindString && a.s == b.s
	case KindInt, KindFloat:
		if !b.IsNumeric() {
			return false
		}
		aInt, ai, af := numKeyForm(a)
		bInt, bi, bf := numKeyForm(b)
		if aInt != bInt {
			return false
		}
		if aInt {
			return ai == bi
		}
		return floatKeyEqual(af, bf)
	}
	return false
}

// numKeyForm reports which encoding form a numeric value takes: the
// integer form ('i', for ints not exactly representable as float64) or
// the float form, with the corresponding payload.
func numKeyForm(v Value) (isInt bool, i int64, f float64) {
	if v.kind == KindInt {
		fv := float64(v.i)
		if int64(fv) == v.i {
			return false, 0, fv
		}
		return true, v.i, 0
	}
	return false, 0, v.f
}
