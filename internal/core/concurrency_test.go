package core

import (
	"sync"
	"testing"

	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// TestConcurrentAccess hammers one mediator from many goroutines —
// committing sources, running update transactions, querying (all paths),
// reading stats — and then verifies the final state against recomputation.
// Run with -race.
func TestConcurrentAccess(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Source committers.
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d := delta.New()
				d.Insert("R", relation.T(int64(100000+w*1000+i), int64(10+10*(i%3)), int64(i), 100))
				if _, err := e.db1.Apply(d); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			d := delta.New()
			d.Insert("S", relation.T(int64(200000+i), int64(i%9), int64(i%40)))
			if _, err := e.db2.Apply(d); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Update-transaction loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.med.RunUpdateTransaction(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Query and stats readers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := e.med.QueryOpts("T", []string{"r1", "s1"}, nil, QueryOptions{}); err != nil {
					t.Error(err)
					return
				}
				_ = e.med.Stats()
				_ = e.med.QueueLen()
				_ = e.med.LastProcessed()
				_ = e.med.StoreSnapshot("T")
			}
		}()
	}

	// The committers and readers are bounded; the flusher runs until
	// stopped. A separate watcher closes stop once the queue has gone
	// quiet (any leftovers are drained below).
	go func() {
		for e.med.QueueLen() > 0 {
			// busy-wait; bounded by the committers finishing
		}
		close(stop)
	}()
	wg.Wait()

	// Drain and verify.
	for {
		ran, err := e.med.RunUpdateTransaction()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
	}
	truth := e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Fatalf("concurrent run diverged: %d vs %d rows", got.Card(), truth["T"].Card())
	}
}
