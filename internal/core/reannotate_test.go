package core

import (
	"strings"
	"testing"

	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/vdp"
)

// queryTruth asserts a full projection of T matches the from-scratch
// evaluation of the current source states.
func queryTruth(t *testing.T, e *testEnv) {
	t.Helper()
	res, err := e.med.QueryOpts("T", nil, nil, QueryOptions{KeyBased: KeyBasedOff})
	if err != nil {
		t.Fatal(err)
	}
	truth := e.groundTruth(t)
	want, err := projectSelectLocal(truth["T"], "T", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(want) {
		t.Fatalf("answer diverged:\n%swant\n%s", res.Answer, want)
	}
}

func TestReannotateVirtualizeAndBack(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	v0 := e.med.StoreVersion()

	// m → v: drop T.s2 from the store.
	hybrid := e.med.VDP().Annotations()
	hybrid["T"] = vdp.Ann([]string{"r1", "r3", "s1"}, []string{"s2"})
	flips, err := e.med.Reannotate(hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 1 || flips[0].String() != "T.s2 m->v" {
		t.Fatalf("flips = %v", flips)
	}
	if e.med.StoreVersion() != v0+1 {
		t.Fatalf("re-annotation must publish a new version: %d", e.med.StoreVersion())
	}
	if e.med.StoreSnapshot("T").Schema().HasAttr("s2") {
		t.Fatal("virtualized column still stored")
	}
	queryTruth(t, e)

	// Updates keep propagating against the new layout.
	d := delta.New()
	d.Insert("R", relation.T(5, 10, 55, 100))
	e.db1.MustApply(d)
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	queryTruth(t, e)

	// v → m: backfill T.s2 by a compensated VAP poll.
	all := e.med.VDP().Annotations()
	all["T"] = vdp.AllMaterialized(e.med.VDP().Node("T").Schema)
	flips, err = e.med.Reannotate(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 1 || flips[0].String() != "T.s2 v->m" {
		t.Fatalf("flips = %v", flips)
	}
	if !e.med.StoreSnapshot("T").Schema().HasAttr("s2") {
		t.Fatal("materialized column missing from store")
	}
	queryTruth(t, e)
	if got := e.med.Stats().AnnotationSwitches; got != 2 {
		t.Fatalf("AnnotationSwitches = %d, want 2", got)
	}

	// The rebuilt store agrees with ground truth after more updates.
	d = delta.New()
	d.Insert("S", relation.T(40, 4, 10))
	e.db2.MustApply(d)
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	queryTruth(t, e)
}

func TestReannotateNoopAndErrors(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	v0 := e.med.StoreVersion()
	flips, err := e.med.Reannotate(e.med.VDP().Annotations())
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 0 {
		t.Fatalf("no-op re-annotation flipped %v", flips)
	}
	if e.med.StoreVersion() != v0 {
		t.Fatal("no-op re-annotation must not publish")
	}
	if _, err := e.med.Reannotate(map[string]vdp.Annotation{
		"nope": vdp.Ann([]string{"x"}, nil),
	}); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := e.med.Reannotate(map[string]vdp.Annotation{
		"R": vdp.Ann(nil, []string{"r1"}),
	}); err == nil {
		t.Fatal("leaf annotation accepted")
	}
}

// TestReannotateNewlyAnnouncing covers the capture path: flipping a fully
// virtual plan to fully materialized turns both sources into announcing
// contributors mid-flight. The backfill polls pin ref′ at each poll
// instant, and announcements captured during the transaction must not be
// lost or double-applied.
func TestReannotateNewlyAnnouncing(t *testing.T) {
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	sp := relation.MustSchema("S'", []relation.Attribute{
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}}, "s1")
	tS := relation.MustSchema("T", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r3", Type: relation.KindInt},
		{Name: "s1", Type: relation.KindInt}, {Name: "s2", Type: relation.KindInt}})
	e := newEnv(t, vdp.AllVirtual(rp), vdp.AllVirtual(sp), vdp.AllVirtual(tS))
	for _, src := range []string{"db1", "db2"} {
		if e.med.Contributor(src) != VirtualContributor {
			t.Fatalf("%s should start as a virtual contributor", src)
		}
	}

	// Commit while fully virtual: these announcements are dropped (virtual
	// contributors' streams are not consumed), the data lives at the
	// sources only.
	d := delta.New()
	d.Insert("R", relation.T(6, 20, 66, 100))
	e.db1.MustApply(d)

	anns := map[string]vdp.Annotation{
		"R'": vdp.AllMaterialized(rp),
		"S'": vdp.AllMaterialized(sp),
		"T":  vdp.AllMaterialized(tS),
	}
	flips, err := e.med.Reannotate(anns)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 9 { // 3 + 2 + 4 attributes all flip v->m
		t.Fatalf("flips = %v", flips)
	}
	for _, src := range []string{"db1", "db2"} {
		if e.med.Contributor(src) != MaterializedContributor {
			t.Fatalf("%s should now be a materialized contributor", src)
		}
	}
	queryTruth(t, e)

	// The stream is live from the backfill's poll instant: later commits
	// propagate incrementally into the new stores.
	d = delta.New()
	d.Insert("R", relation.T(7, 10, 77, 100))
	e.db1.MustApply(d)
	d = delta.New()
	d.Insert("S", relation.T(50, 5, 30))
	e.db2.MustApply(d)
	for {
		ran, err := e.med.RunUpdateTransaction()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
	}
	queryTruth(t, e)

	// And back down: everything virtual again drops every store.
	back := map[string]vdp.Annotation{
		"R'": vdp.AllVirtual(rp), "S'": vdp.AllVirtual(sp), "T": vdp.AllVirtual(tS),
	}
	if _, err := e.med.Reannotate(back); err != nil {
		t.Fatal(err)
	}
	if cur := e.med.CurrentVersion(); len(cur.Nodes()) != 0 {
		t.Fatalf("fully virtual plan still stores %v", cur.Nodes())
	}
	queryTruth(t, e)

	// No capture flags, pins, or retained announcements leak.
	e.med.qmu.Lock()
	pins, done := len(e.med.pins), len(e.med.done)
	e.med.qmu.Unlock()
	e.med.qmu.Lock()
	captures := len(e.med.capture)
	e.med.qmu.Unlock()
	if pins != 0 || done != 0 || captures != 0 {
		t.Fatalf("leaked %d pins, %d retained announcements, %d captures", pins, done, captures)
	}
}

// TestReannotateEventsAndReasons checks the observability surface of a
// switch: per-flip annotation-switch events and a publish event.
func TestReannotateEventsAndReasons(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	anns := e.med.VDP().Annotations()
	anns["T"] = vdp.Ann([]string{"r1", "r3", "s1"}, []string{"s2"})
	if _, err := e.med.Reannotate(anns); err != nil {
		t.Fatal(err)
	}
	evs, _ := e.med.Metrics().Events().Recent(0)
	var switches, publishes int
	for _, ev := range evs {
		switch ev.Type {
		case "annotation-switch":
			switches++
			if !strings.Contains(ev.Subject, "m->v") {
				t.Errorf("unexpected switch subject %q", ev.Subject)
			}
		case "publish":
			publishes++
		}
	}
	if switches != 1 {
		t.Errorf("annotation-switch events = %d, want 1", switches)
	}
	if publishes < 2 { // Initialize + the re-annotation
		t.Errorf("publish events = %d, want >= 2", publishes)
	}
}
