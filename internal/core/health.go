package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
	"squirrel/internal/resilience"
	"squirrel/internal/source"
)

// This file is the mediator's per-source fault boundary. Every poll of an
// autonomous source goes through pollSource: a quarantine gate (sources
// with a detected announcement gap are not polled until resynced), a
// circuit breaker, a retry loop with capped jittered backoff, and a
// per-attempt deadline. Successful raw poll answers are cached so that a
// ServeStale query can still be answered — with an explicit, enforced
// staleness bound — when a source is down (§7's f̄ as a runtime contract
// instead of a silently violated assumption).

// ResilienceConfig tunes the mediator's fault boundary. The zero value is
// exactly the pre-resilience behavior: one attempt, no timeout, no
// breaker — required by the sequential transaction model's tests, which
// expect a single poll failure to surface immediately.
type ResilienceConfig struct {
	// PollTimeout is the per-attempt deadline for one source round trip
	// (0 = none). The attempt's goroutine is abandoned on expiry — the
	// transport must eventually fail it (wire connections do); an
	// in-process source that truly hangs forever leaks that goroutine.
	PollTimeout time.Duration
	// Retry bounds repeated attempts per poll.
	Retry resilience.RetryPolicy
	// Breaker configures the per-source circuit breaker.
	Breaker resilience.BreakerPolicy
	// Seed makes the retry jitter deterministic (0 = seed from source
	// names only, still deterministic).
	Seed int64
}

// sourceHealth is the per-source fault-boundary state.
type sourceHealth struct {
	breaker *resilience.Breaker // nil when disabled
	backoff *resilience.Backoff
}

// initHealth builds the per-source health state; called from New.
func (m *Mediator) initHealth() {
	m.health = make(map[string]*sourceHealth, len(m.sources))
	seed := m.resil.Seed
	var i int64
	for src := range m.sources {
		m.health[src] = &sourceHealth{
			breaker: resilience.NewBreaker(m.resil.Breaker),
			backoff: resilience.NewBackoff(m.resil.Retry, seed+i),
		}
		i++
	}
	if m.sleep == nil {
		m.sleep = time.Sleep
	}
}

// pollSource runs one logical poll of src through the fault boundary:
// quarantine gate, breaker, per-attempt deadline, retry with backoff.
// allowQuarantined bypasses the gate for the resync/initialize polls that
// re-establish consistency.
func (m *Mediator) pollSource(src string, specs []source.QuerySpec, allowQuarantined bool) ([]*relation.Relation, clock.Time, error) {
	conn, ok := m.sources[src]
	if !ok {
		return nil, 0, fmt.Errorf("core: no connection for source %q", src)
	}
	if !allowQuarantined {
		if reason := m.quarantineReason(src); reason != "" {
			return nil, 0, fmt.Errorf("core: source %q quarantined (%s); resync pending", src, reason)
		}
	}
	h := m.health[src]
	attempts := m.resil.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		// Capture the breaker state around every interaction so
		// transitions (open → half-open happens inside Allow) become
		// events.
		before := h.breaker.State().String()
		if !h.breaker.Allow() {
			m.stats.breakerFastFails.Add(1)
			if c := m.obs.fastFails[src]; c != nil {
				c.Inc()
			}
			m.obs.observeBreaker(src, before, h.breaker.State().String(), h.breaker.Trips())
			if lastErr != nil {
				return nil, 0, fmt.Errorf("core: source %q circuit open after %w", src, lastErr)
			}
			return nil, 0, fmt.Errorf("core: source %q circuit open", src)
		}
		m.obs.observeBreaker(src, before, h.breaker.State().String(), h.breaker.Trips())
		start := time.Now()
		answers, asOf, base, err := m.callSource(conn, specs)
		m.obs.observePollAttempt(src, start, err)
		if err == nil {
			before = h.breaker.State().String()
			h.breaker.Success()
			m.obs.observeBreaker(src, before, h.breaker.State().String(), h.breaker.Trips())
			m.noteContact(src, asOf)
			if base != nil {
				// A federated tier's answer carries its ref′ in base
				// coordinates: extend the translation ring so the poll
				// instant this query will report maps exactly (feed.go).
				m.noteBaseReflect(src, asOf, base)
			}
			return answers, asOf, nil
		}
		lastErr = err
		before = h.breaker.State().String()
		h.breaker.Failure()
		m.obs.observeBreaker(src, before, h.breaker.State().String(), h.breaker.Trips())
		m.stats.pollFailures.Add(1)
		if attempt < attempts {
			m.stats.pollRetries.Add(1)
			m.sleep(h.backoff.Delay(attempt))
		}
	}
	return nil, 0, lastErr
}

// callSource performs one attempt, bounded by the configured per-attempt
// deadline. Connections to federated tiers (TieredConn) additionally
// return the answer's ref′ in base-source coordinates; plain sources
// return a nil vector.
func (m *Mediator) callSource(conn SourceConn, specs []source.QuerySpec) ([]*relation.Relation, clock.Time, clock.Vector, error) {
	call := func() ([]*relation.Relation, clock.Time, clock.Vector, error) {
		if tc, ok := conn.(TieredConn); ok {
			return tc.QueryMultiBase(specs)
		}
		a, t, err := conn.QueryMulti(specs)
		return a, t, nil, err
	}
	to := m.resil.PollTimeout
	if to <= 0 {
		return call()
	}
	type reply struct {
		answers []*relation.Relation
		asOf    clock.Time
		base    clock.Vector
		err     error
	}
	ch := make(chan reply, 1)
	go func() {
		a, t, base, err := call()
		ch <- reply{a, t, base, err}
	}()
	timer := time.NewTimer(to)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.answers, r.asOf, r.base, r.err
	case <-timer.C:
		return nil, 0, nil, fmt.Errorf("core: poll timed out after %s", to)
	}
}

// noteContact records the latest instant src's state is known at: the
// serialization instant of a successful poll or the time of a delivered
// announcement. The ServeStale bound is measured from this.
func (m *Mediator) noteContact(src string, t clock.Time) {
	m.qmu.Lock()
	if t > m.lastContact[src] {
		m.lastContact[src] = t
	}
	m.qmu.Unlock()
}

// lastContactOf reads the last-known instant for src.
func (m *Mediator) lastContactOf(src string) clock.Time {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	return m.lastContact[src]
}

// quarantineReason returns why src is quarantined ("" when it is not).
func (m *Mediator) quarantineReason(src string) string {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	return m.quarantined[src]
}

// QuarantineSource marks an announcing source's announcement stream as
// untrusted — used on a detected gap, and proactively on a transport
// reconnect (the outage may have dropped announcements silently). New
// announcements are penned rather than queued, polls of the source fail,
// and ResyncSource re-establishes consistency. No-op for virtual
// contributors (nothing materialized depends on their announcements) and
// for already-quarantined sources.
func (m *Mediator) QuarantineSource(src, reason string) {
	if m.Contributor(src) == VirtualContributor && !m.announcingAnywhere(src) {
		return
	}
	if _, ok := m.sources[src]; !ok {
		return
	}
	m.qmu.Lock()
	defer m.qmu.Unlock()
	m.quarantineLocked(src, reason)
}

// quarantineLocked requires qmu. The event log's mutex is a strict
// leaf, so emitting under qmu is safe.
func (m *Mediator) quarantineLocked(src, reason string) {
	if m.quarantined[src] != "" {
		return
	}
	m.quarantined[src] = reason
	m.stats.gapsDetected.Add(1)
	m.obs.reg.Emit(metrics.Event{Type: metrics.EventQuarantine, Subject: src, Err: reason})
}

// QuarantinedSources lists the currently quarantined sources, sorted.
func (m *Mediator) QuarantinedSources() []string {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	out := make([]string, 0, len(m.quarantined))
	for src := range m.quarantined {
		out = append(out, src)
	}
	sort.Strings(out)
	return out
}

// penAppendLocked holds back an announcement that arrived while its
// source is quarantined. The pen is maintained as a single seq-contiguous
// run: an inner gap restarts the run (its prefix is unusable anyway — the
// snapshot resync covers it). Requires qmu.
func (m *Mediator) penAppendLocked(a source.Announcement) {
	pen := m.gapPen[a.Source]
	first := a.FirstSeq
	if first == 0 {
		first = a.Seq
	}
	if len(pen) > 0 {
		tail := pen[len(pen)-1]
		switch {
		case a.Seq != 0 && tail.Seq != 0 && a.Seq <= tail.Seq:
			return // duplicate / replay
		case a.Seq == 0 || tail.Seq == 0 || first == tail.Seq+1:
			m.gapPen[a.Source] = append(pen, a)
		default:
			m.gapPen[a.Source] = []source.Announcement{a} // inner gap: restart
		}
		return
	}
	m.gapPen[a.Source] = []source.Announcement{a}
}

// resolveSourceLocked re-establishes src's announcement stream after a
// full snapshot poll serialized at asOf: queued and penned announcements
// the snapshot covers (time ≤ asOf) are dropped, the penned tail beyond
// it is promoted to the queue, sequence tracking restarts from whatever
// survives, and the quarantine is lifted. It refuses (returns false) when
// the pen starts after asOf — then the commits lost in the gap might also
// be after asOf, so the snapshot cannot vouch for them; poll again later.
// Requires qmu.
func (m *Mediator) resolveSourceLocked(src string, asOf clock.Time) bool {
	pen := m.gapPen[src]
	if len(pen) > 0 && pen[0].Time > asOf {
		return false
	}
	oldLen := len(m.queue)
	kept := m.queue[:0]
	var lastSeq uint64
	for _, a := range m.queue {
		if a.Source == src && a.Time <= asOf {
			continue
		}
		if a.Source == src {
			lastSeq = a.Seq
		}
		kept = append(kept, a)
	}
	m.queue = trimAnnouncements(kept, oldLen)
	for _, a := range pen {
		if a.Time <= asOf {
			continue
		}
		m.queue = append(m.queue, a)
		lastSeq = a.Seq
	}
	if len(m.queue) > m.queueHighWater {
		m.queueHighWater = len(m.queue)
	}
	m.lastSeq[src] = lastSeq
	delete(m.gapPen, src)
	delete(m.quarantined, src)
	return true
}

// --- raw poll cache (for ServeStale degradation) ---

// cachedPoll is a successful poll's raw (pre-compensation) answers, kept
// so a later query can be served when the source is down.
type cachedPoll struct {
	answers []*relation.Relation
	asOf    clock.Time
}

// pollKey identifies a poll shape: the source plus every spec's relation,
// projection, and selection.
func pollKey(src string, specs []source.QuerySpec) string {
	var b strings.Builder
	b.WriteString(src)
	for _, s := range specs {
		b.WriteByte(0x1f)
		b.WriteString(s.Rel)
		b.WriteByte('|')
		b.WriteString(strings.Join(s.Attrs, ","))
		b.WriteByte('|')
		if s.Cond != nil {
			b.WriteString(s.Cond.String())
		}
	}
	return b.String()
}

// cachePoll stores clones of a successful poll's raw answers. cmu is a
// strict leaf lock: never held while acquiring any other.
func (m *Mediator) cachePoll(key string, answers []*relation.Relation, asOf clock.Time) {
	clones := make([]*relation.Relation, len(answers))
	for i, r := range answers {
		clones[i] = r.Clone()
	}
	m.cmu.Lock()
	if m.pollCache == nil {
		m.pollCache = make(map[string]*cachedPoll)
	}
	m.pollCache[key] = &cachedPoll{answers: clones, asOf: asOf}
	m.cmu.Unlock()
}

// cachedAnswers returns clones of the cached raw answers for key (nil if
// none); clones, because compensation mutates its input.
func (m *Mediator) cachedAnswers(key string) ([]*relation.Relation, clock.Time, bool) {
	m.cmu.Lock()
	c := m.pollCache[key]
	m.cmu.Unlock()
	if c == nil {
		return nil, 0, false
	}
	out := make([]*relation.Relation, len(c.answers))
	for i, r := range c.answers {
		out[i] = r.Clone()
	}
	return out, c.asOf, true
}

// SourceHealth is the externally visible per-source fault-boundary state.
type SourceHealth struct {
	// Contributor is the §4 classification.
	Contributor string
	// Breaker is the circuit state ("closed", "open", "half-open";
	// "closed" when disabled). Trips counts breaker openings.
	Breaker string
	Trips   uint64
	// Quarantined is the quarantine reason ("" when healthy).
	Quarantined string
	// LastContact is the latest instant the source's state is known at
	// (successful poll or announcement).
	LastContact clock.Time
	// LastSeq is the last accepted announcement sequence number (0 before
	// any, or right after a resync restarts tracking).
	LastSeq uint64
	// PennedAnnouncements counts announcements held back by quarantine.
	PennedAnnouncements int
	// ResyncOvertaken counts consecutive resync attempts that failed
	// because penned announcements outran the snapshot poll (see
	// ErrResyncOvertaken); reset by a successful resync. ResyncStuck is
	// set once the count reaches resyncStuckThreshold — the source keeps
	// committing faster than it can be snapshotted, and retrying on the
	// same cadence will never converge without operator action (pause
	// the source's writes, or poll it with a longer window).
	ResyncOvertaken int
	ResyncStuck     bool
}

// resyncStuckThreshold is how many consecutive overtaken resyncs flag a
// source as stuck.
const resyncStuckThreshold = 3

// sourceHealthStats assembles the per-source health map for Stats.
// Breaker state is read before taking qmu (qmu stays a leaf lock).
func (m *Mediator) sourceHealthStats() map[string]SourceHealth {
	out := make(map[string]SourceHealth, len(m.sources))
	contribs := m.epoch().contributors
	for src := range m.sources {
		h := m.health[src]
		out[src] = SourceHealth{
			Contributor: contribs[src].String(),
			Breaker:     h.breaker.State().String(),
			Trips:       h.breaker.Trips(),
		}
	}
	m.qmu.Lock()
	for src := range out {
		sh := out[src]
		sh.Quarantined = m.quarantined[src]
		sh.LastContact = m.lastContact[src]
		sh.LastSeq = m.lastSeq[src]
		sh.PennedAnnouncements = len(m.gapPen[src])
		sh.ResyncOvertaken = m.resyncOvertaken[src]
		sh.ResyncStuck = sh.ResyncOvertaken >= resyncStuckThreshold
		out[src] = sh
	}
	m.qmu.Unlock()
	return out
}
