package core

import (
	"fmt"
	"sync"
	"time"
)

// Runtime drives a mediator's update transactions on a wall-clock period —
// the u_hold_delay policy of §7 as a deployable component. Queries go
// straight to the mediator (its transactions are internally serialized);
// the runtime only owns the flush loop.
//
// The loop's resync-then-drain ordering relies on the mediator's narrow
// store mutex: an update transaction stuck polling a slow source holds
// only txnMu, so a tick's ResyncSource calls proceed regardless, and the
// transaction detects their publishes at commit (via the builder's base
// version) and retries rather than clobbering the resynced state.
type Runtime struct {
	med    *Mediator
	period time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	lastErr error
	flushes int
}

// NewRuntime wraps a mediator with a periodic flush loop; call Start.
func NewRuntime(med *Mediator, period time.Duration) (*Runtime, error) {
	if med == nil {
		return nil, fmt.Errorf("core: runtime needs a mediator")
	}
	if period <= 0 {
		return nil, fmt.Errorf("core: runtime period must be positive")
	}
	return &Runtime{med: med, period: period}, nil
}

// Start launches the flush loop. It is an error to start a running
// runtime.
func (r *Runtime) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return fmt.Errorf("core: runtime already started")
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.loop(r.stop, r.done)
	return nil
}

func (r *Runtime) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(r.period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			// Final drain so Stop leaves nothing queued.
			r.flushAll()
			return
		case <-ticker.C:
			r.flushAll()
		}
	}
}

func (r *Runtime) flushAll() {
	// Attempt to repair quarantined sources first: their penned
	// announcements rejoin the queue on success, and the flush below
	// then drains everything. A failed resync (source still down, or
	// overtaken by new announcements) is retried next tick.
	for _, src := range r.med.QuarantinedSources() {
		if err := r.med.ResyncSource(src); err != nil {
			r.mu.Lock()
			r.lastErr = err
			r.mu.Unlock()
		}
	}
	for {
		ran, err := r.med.RunUpdateTransaction()
		if err != nil {
			r.mu.Lock()
			r.lastErr = err
			r.mu.Unlock()
			return
		}
		if !ran {
			return
		}
		r.mu.Lock()
		r.flushes++
		r.mu.Unlock()
	}
}

// Flush runs update transactions until the queue is empty, synchronously
// (useful before a query that must observe everything announced so far).
func (r *Runtime) Flush() error {
	for {
		ran, err := r.med.RunUpdateTransaction()
		if err != nil {
			return err
		}
		if !ran {
			return nil
		}
	}
}

// Stop terminates the loop after a final drain and reports any error the
// loop hit. Stopping a never-started or already-stopped runtime is a
// no-op returning the last error.
func (r *Runtime) Stop() error {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Flushes reports how many update transactions the loop has committed.
func (r *Runtime) Flushes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushes
}

// Err reports the most recent loop error (nil if none). A loop error
// stops further automatic flushing until the next tick retries.
func (r *Runtime) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}
