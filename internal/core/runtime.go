package core

import (
	"fmt"
	"sync"
	"time"

	"squirrel/internal/metrics"
)

// Runtime drives a mediator's update transactions on a wall-clock period —
// the u_hold_delay policy of §7 as a deployable component. Queries go
// straight to the mediator (its transactions are internally serialized);
// the runtime only owns the flush loop.
//
// The loop's resync-then-drain ordering relies on the mediator's narrow
// store mutex: an update transaction stuck polling a slow source holds
// only txnMu, so a tick's ResyncSource calls proceed regardless, and the
// transaction detects their publishes at commit (via the builder's base
// version) and retries rather than clobbering the resynced state.
type Runtime struct {
	med    *Mediator
	period time.Duration

	// Group-commit batching (NewBatchedRuntime): instead of a fixed
	// period, the loop sleeps on the mediator's announce signal, then
	// holds the transaction open for window (or until maxBatch
	// announcements are queued) so one staged-kernel pass — one
	// copy-on-write clone per touched node — amortizes every coalesced
	// delta in the batch.
	window   time.Duration
	maxBatch int

	flushHist *metrics.Histogram

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
	// lastErr is the loop's CURRENT error condition: set when a tick's
	// resync or drain fails, cleared when a later tick drains the queue
	// with no failure at all — Err() reporting a long-recovered failure
	// forever made health checks permanently red. History survives in
	// lastFailure/errCount.
	lastErr     error
	lastFailure error
	errCount    int
	flushes     int
}

// NewRuntime wraps a mediator with a periodic flush loop; call Start.
func NewRuntime(med *Mediator, period time.Duration) (*Runtime, error) {
	if med == nil {
		return nil, fmt.Errorf("core: runtime needs a mediator")
	}
	if period <= 0 {
		return nil, fmt.Errorf("core: runtime period must be positive")
	}
	return &Runtime{
		med:       med,
		period:    period,
		flushHist: med.obs.reg.Histogram(MetricFlushSeconds, metrics.DefLatencyBuckets),
	}, nil
}

// NewBatchedRuntime wraps a mediator with an event-driven group-commit
// loop: it wakes when an announcement arrives, absorbs further arrivals
// for window (ending early once maxBatch announcements are queued;
// maxBatch <= 0 means no early close), then drains the queue in one
// coalesced update transaction. window = 0 degenerates to
// commit-per-wakeup.
func NewBatchedRuntime(med *Mediator, window time.Duration, maxBatch int) (*Runtime, error) {
	if med == nil {
		return nil, fmt.Errorf("core: runtime needs a mediator")
	}
	if window < 0 {
		return nil, fmt.Errorf("core: group-commit window must be non-negative")
	}
	return &Runtime{
		med:       med,
		window:    window,
		maxBatch:  maxBatch,
		flushHist: med.obs.reg.Histogram(MetricFlushSeconds, metrics.DefLatencyBuckets),
	}, nil
}

// Batched reports whether the runtime is in group-commit mode.
func (r *Runtime) Batched() bool { return r.period == 0 }

// Start launches the flush loop. It is an error to start a running
// runtime.
func (r *Runtime) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return fmt.Errorf("core: runtime already started")
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	if r.Batched() {
		go r.loopBatched(r.stop, r.done)
	} else {
		go r.loop(r.stop, r.done)
	}
	return nil
}

// loopBatched is the group-commit loop: sleep on the announce signal,
// hold for the batching window, drain once.
func (r *Runtime) loopBatched(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	sig := r.med.AnnounceSignal()
	for {
		select {
		case <-stop:
			r.flushAll()
			return
		case <-sig:
		}
		if r.window > 0 && (r.maxBatch <= 0 || r.med.QueueLen() < r.maxBatch) {
			timer := time.NewTimer(r.window)
		collect:
			for {
				select {
				case <-stop:
					timer.Stop()
					r.flushAll()
					return
				case <-sig:
					if r.maxBatch > 0 && r.med.QueueLen() >= r.maxBatch {
						break collect
					}
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		}
		r.flushAll()
	}
}

func (r *Runtime) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(r.period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			// Final drain so Stop leaves nothing queued.
			r.flushAll()
			return
		case <-ticker.C:
			r.flushAll()
		}
	}
}

// noteErr records a tick failure: it both latches the current condition
// and appends to the history.
func (r *Runtime) noteErr(err error) {
	r.mu.Lock()
	r.lastErr = err
	r.lastFailure = err
	r.errCount++
	r.mu.Unlock()
}

func (r *Runtime) flushAll() {
	start := time.Now()
	clean := true
	committed := 0
	var tickErr error
	// Attempt to repair quarantined sources first: their penned
	// announcements rejoin the queue on success, and the flush below
	// then drains everything. A failed resync is retried next tick —
	// unless it was overtaken by newer penned announcements
	// (ErrResyncOvertaken), which retrying on the same cadence will
	// never fix; the mediator's ResyncStuck health condition flags that
	// case for the operator.
	for _, src := range r.med.QuarantinedSources() {
		if err := r.med.ResyncSource(src); err != nil {
			clean = false
			tickErr = err
			r.noteErr(err)
		}
	}
	for {
		ran, err := r.med.RunUpdateTransaction()
		if err != nil {
			clean = false
			tickErr = err
			r.noteErr(err)
			break
		}
		if !ran {
			break
		}
		committed++
		r.mu.Lock()
		r.flushes++
		r.mu.Unlock()
	}
	// Group commit, durability half: under a batch-sync'd commit log the
	// drained transactions' records are buffered — one fsync now makes
	// the whole batch durable (N announcements, one disk flush).
	if err := r.med.syncCommitLog(); err != nil {
		clean = false
		tickErr = err
		r.noteErr(err)
	}
	if clean {
		// The queue drained with no failure: whatever condition a past
		// tick latched is over.
		r.mu.Lock()
		r.lastErr = nil
		r.mu.Unlock()
	}
	r.flushHist.ObserveSince(start)
	ev := metrics.Event{
		Type: metrics.EventFlush, Dur: time.Since(start),
		Fields: map[string]int64{"txns": int64(committed)},
	}
	if tickErr != nil {
		ev.Err = tickErr.Error()
	}
	r.med.obs.reg.Emit(ev)
}

// Flush runs update transactions until the queue is empty, synchronously
// (useful before a query that must observe everything announced so far).
func (r *Runtime) Flush() error {
	for {
		ran, err := r.med.RunUpdateTransaction()
		if err != nil {
			return err
		}
		if !ran {
			return r.med.syncCommitLog()
		}
	}
}

// Stop terminates the loop after a final drain and reports the current
// error condition (nil when the final drain was clean). Stopping a
// never-started or already-stopped runtime is a no-op returning the
// current condition.
func (r *Runtime) Stop() error {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Flushes reports how many update transactions the loop has committed.
func (r *Runtime) Flushes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushes
}

// Err reports the loop's current error condition: the most recent tick
// failure not yet followed by a fully clean drain (nil when healthy —
// including after recovery). Use LastErr/ErrCount for history.
func (r *Runtime) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// LastErr reports the most recent tick failure ever, surviving recovery
// (nil if the loop never failed).
func (r *Runtime) LastErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastFailure
}

// ErrCount reports how many tick failures the loop has recorded.
func (r *Runtime) ErrCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.errCount
}
