package core

import (
	"testing"

	"squirrel/internal/checker"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// batchedEnv wires the paper fixture through BatchingAnnouncers and
// PublishedConns (the ann_delay policy with its matching snapshot reads).
func batchedEnv(t *testing.T, annT vdp.Annotation, every int) (*testEnv, *source.BatchingAnnouncer, *source.BatchingAnnouncer) {
	t.Helper()
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db2 := source.NewDB("db2", clk)
	r := relation.NewSet(rSchema())
	r.Insert(relation.T(1, 10, 5, 100))
	r.Insert(relation.T(2, 10, 120, 100))
	r.Insert(relation.T(3, 20, 7, 100))
	s := relation.NewSet(sSchema())
	s.Insert(relation.T(10, 1, 20))
	s.Insert(relation.T(20, 2, 40))
	if err := db1.LoadRelation(r); err != nil {
		t.Fatal(err)
	}
	if err := db2.LoadRelation(s); err != nil {
		t.Fatal(err)
	}
	ba1 := source.NewBatchingAnnouncer(db1, every)
	ba2 := source.NewBatchingAnnouncer(db2, every)
	plan := paperPlan(t, nil, nil, annT)
	rec := trace.NewRecorder()
	med, err := New(Config{
		VDP: plan,
		Sources: map[string]SourceConn{
			"db1": source.PublishedConn{DB: db1, BA: ba1},
			"db2": source.PublishedConn{DB: db2, BA: ba2},
		},
		Clock:    clk,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ba1.Subscribe(med.OnAnnouncement)
	ba2.Subscribe(med.OnAnnouncement)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	return &testEnv{clk: clk, db1: db1, db2: db2, med: med, rec: rec, vdp_: plan}, ba1, ba2
}

func TestBatchedAnnouncementsMaterialized(t *testing.T) {
	e, ba1, _ := batchedEnv(t, nil, 0) // manual flushing
	// Three commits in one batch; two cancel each other.
	tmp := relation.T(7, 10, 1, 100)
	d1 := delta.New()
	d1.Insert("R", tmp)
	e.db1.MustApply(d1)
	d2 := delta.New()
	d2.Delete("R", tmp)
	e.db1.MustApply(d2)
	d3 := delta.New()
	d3.Insert("R", relation.T(8, 20, 9, 100))
	e.db1.MustApply(d3)
	if e.med.QueueLen() != 0 {
		t.Fatalf("nothing should arrive before the flush")
	}
	if ba1.Pending() != 3 {
		t.Fatalf("pending = %d", ba1.Pending())
	}
	ba1.Flush()
	if e.med.QueueLen() != 1 {
		t.Fatalf("one batched announcement expected, queue=%d", e.med.QueueLen())
	}
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	truth := e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Fatalf("batched propagation diverged:\n%swant\n%s", got, truth["T"])
	}
	// The smashed batch dropped the annihilated pair: only one atom.
	if st := e.med.Stats(); st.AtomsPropagated != 1 {
		t.Errorf("smash should annihilate the insert/delete pair: atoms=%d", st.AtomsPropagated)
	}
}

func TestBatchedPublishedSnapshotECA(t *testing.T) {
	// Hybrid T with virtual S': a poll between commit and flush must see
	// the PUBLISHED state (pre-commit), not the live one — otherwise
	// compensation would miss the unannounced commit.
	e, _, ba2 := batchedEnv(t, vdp.Ann([]string{"r1", "r3", "s1"}, []string{"s2"}), 0)
	before := e.rec // trace shared

	d := delta.New()
	d.Delete("S", relation.T(10, 1, 20))
	d.Insert("S", relation.T(10, 77, 20))
	e.db2.MustApply(d) // committed but NOT yet announced

	res, err := e.med.QueryOpts("T", []string{"r1", "s2"}, nil, QueryOptions{KeyBased: KeyBasedOff})
	if err != nil {
		t.Fatal(err)
	}
	// Published state still has s2=1 for s1=10.
	if !res.Answer.Contains(relation.T(1, 1)) || res.Answer.Contains(relation.T(1, 77)) {
		t.Fatalf("poll must see the published snapshot:\n%s", res.Answer)
	}

	// Flush + process: now the new value shows.
	ba2.Flush()
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	res2, err := e.med.QueryOpts("T", []string{"r1", "s2"}, nil, QueryOptions{KeyBased: KeyBasedOff})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Answer.Contains(relation.T(1, 77)) {
		t.Fatalf("post-flush poll must see the new value:\n%s", res2.Answer)
	}
	_ = before

	env := checker.Environment{VDP: e.vdp_, Sources: map[string]*source.DB{"db1": e.db1, "db2": e.db2}, Trace: e.rec}
	if err := env.CheckConsistency(); err != nil {
		t.Fatalf("batched run inconsistent: %v", err)
	}
}

func TestBatchedAutoFlush(t *testing.T) {
	e, _, _ := batchedEnv(t, nil, 2) // flush every 2 commits
	d1 := delta.New()
	d1.Insert("R", relation.T(7, 10, 1, 100))
	e.db1.MustApply(d1)
	if e.med.QueueLen() != 0 {
		t.Fatalf("first commit must buffer")
	}
	d2 := delta.New()
	d2.Insert("R", relation.T(8, 20, 2, 100))
	e.db1.MustApply(d2)
	if e.med.QueueLen() != 1 {
		t.Fatalf("second commit must trigger the flush, queue=%d", e.med.QueueLen())
	}
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	truth := e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Fatalf("auto-flush propagation diverged")
	}
}

// TestHybridDifferenceExport exercises a set node with a PARTIALLY
// materialized annotation: the store holds a bag projection of the set,
// and queries for the virtual part rebuild through the VAP.
func TestHybridDifferenceExport(t *testing.T) {
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db2 := source.NewDB("db2", clk)
	aS := relation.MustSchema("A", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt}}, "x", "y")
	bS := relation.MustSchema("B", []relation.Attribute{
		{Name: "p", Type: relation.KindInt}, {Name: "q", Type: relation.KindInt}}, "p", "q")
	a := relation.NewSet(aS)
	a.Insert(relation.T(1, 10))
	a.Insert(relation.T(2, 20))
	a.Insert(relation.T(3, 30))
	bR := relation.NewSet(bS)
	bR.Insert(relation.T(2, 20))
	db1.LoadRelation(a)
	db2.LoadRelation(bR)

	ap := relation.MustSchema("A'", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt}})
	bp := relation.MustSchema("B'", []relation.Attribute{
		{Name: "p", Type: relation.KindInt}, {Name: "q", Type: relation.KindInt}})
	gS := relation.MustSchema("G", []relation.Attribute{
		{Name: "x", Type: relation.KindInt}, {Name: "y", Type: relation.KindInt}})
	plan, err := vdp.New(
		&vdp.Node{Name: "A", Schema: aS, Source: "db1"},
		&vdp.Node{Name: "B", Schema: bS, Source: "db2"},
		&vdp.Node{Name: "A'", Schema: ap, Ann: vdp.AllMaterialized(ap),
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "A"}}, Proj: []string{"x", "y"}}},
		&vdp.Node{Name: "B'", Schema: bp, Ann: vdp.AllMaterialized(bp),
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "B"}}, Proj: []string{"p", "q"}}},
		&vdp.Node{Name: "G", Schema: gS, Export: true,
			Ann: vdp.Ann([]string{"x"}, []string{"y"}), // hybrid SET node
			Def: vdp.DiffDef{
				L: vdp.Branch{Rel: "A'", Proj: []string{"x", "y"}},
				R: vdp.Branch{Rel: "B'", Proj: []string{"p", "q"}},
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	med, err := New(Config{
		VDP:      plan,
		Sources:  map[string]SourceConn{"db1": LocalSource{DB: db1}, "db2": LocalSource{DB: db2}},
		Clock:    clk,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ConnectLocal(med, db1)
	ConnectLocal(med, db2)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}

	check := func() {
		t.Helper()
		ca, _ := db1.Current("A")
		cb, _ := db2.Current("B")
		truth, err := plan.EvalAll(vdp.ResolverFromCatalog(map[string]*relation.Relation{"A": ca, "B": cb}))
		if err != nil {
			t.Fatal(err)
		}
		// Materialized projection check.
		want, err := projectSelectLocal(truth["G"], "G", []string{"x"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := med.StoreSnapshot("G"); !got.Equal(want) {
			t.Fatalf("hybrid set store diverged:\n%swant\n%s", got, want)
		}
		// Full query (touches virtual y) through the VAP.
		res, err := med.QueryOpts("G", nil, nil, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		full, err := projectSelectLocal(truth["G"], "G", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Answer.Equal(full) {
			t.Fatalf("hybrid set query diverged:\n%swant\n%s", res.Answer, full)
		}
	}
	check()

	// Mutations on both sides, including ones that collide on the
	// materialized projection (two A rows share x after projection).
	muts := []*delta.Delta{}
	d1 := delta.New()
	d1.Insert("A", relation.T(1, 99)) // same x=1, different y
	muts = append(muts, d1)
	d2 := delta.New()
	d2.Insert("B", relation.T(1, 10)) // kills (1,10) but not (1,99)
	muts = append(muts, d2)
	d3 := delta.New()
	d3.Delete("A", relation.T(2, 20))
	d3.Insert("B", relation.T(3, 30))
	muts = append(muts, d3)
	for i, d := range muts {
		if _, err := func() (clock.Time, error) {
			if d.Get("A") != nil && d.Get("B") != nil {
				// Split across the two sources.
				if _, err := db1.Apply(d.Filter("A")); err != nil {
					return 0, err
				}
				return db2.Apply(d.Filter("B"))
			}
			if d.Get("A") != nil {
				return db1.Apply(d)
			}
			return db2.Apply(d)
		}(); err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
		if _, err := med.RunUpdateTransaction(); err != nil {
			t.Fatalf("mutation %d txn: %v", i, err)
		}
		check()
	}
	env := checker.Environment{VDP: plan, Sources: map[string]*source.DB{"db1": db1, "db2": db2}, Trace: rec}
	if err := env.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
