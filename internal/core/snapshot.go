package core

import (
	"fmt"

	"squirrel/internal/clock"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
	"squirrel/internal/store"
	"squirrel/internal/vdp"
)

// StateSnapshot is the mediator's durable state: the materialized store,
// the ref′ vector it corresponds to, the view-initialization time, and
// the store version it was cut from. Serialize it with internal/persist.
type StateSnapshot struct {
	Store         map[string]*relation.Relation
	LastProcessed clock.Vector
	ViewInit      clock.Time
	// StoreVersion is the published version the snapshot captured (zero in
	// snapshots saved before versioning; Restore then resumes at 1).
	StoreVersion uint64
	// Annotations is the live annotation the saving mediator had adapted
	// to (per non-leaf node) — possibly different from the one any
	// restoring mediator is constructed with. Nil in snapshots saved
	// before adaptive annotation; Restore then assumes the constructed
	// plan's annotation.
	Annotations map[string]vdp.Annotation
}

// Snapshot captures a consistent copy of the durable state. Lock-free: it
// pins the currently published store version — an immutable state — and
// clones from it, so updates keep committing while (potentially large)
// relations are copied. The snapshot corresponds to the source states at
// LastProcessed, so a mediator restored from it resumes exactly where
// this one left off — provided the announcement feed replays everything
// committed after LastProcessed (see source.DB.ReplaySince).
func (m *Mediator) Snapshot() (*StateSnapshot, error) {
	// Capture a (version, epoch) pair that agree: planFor(nil) means a
	// re-annotation published and pruned between the two loads — retry.
	var v *store.Version
	var ep *planEpoch
	for {
		v = m.vstore.Current()
		if v == nil {
			return nil, fmt.Errorf("core: snapshot of uninitialized mediator")
		}
		if ep = m.planFor(v.Seq()); ep != nil {
			break
		}
	}
	out := &StateSnapshot{
		Store:         make(map[string]*relation.Relation, v.Len()),
		LastProcessed: v.Reflect(),
		ViewInit:      m.viewInit,
		StoreVersion:  v.Seq(),
		Annotations:   ep.v.Annotations(),
	}
	for _, name := range v.Nodes() {
		out.Store[name] = v.Rel(name).Clone()
	}
	return out, nil
}

// Restore installs a snapshot in lieu of Initialize, publishing it as the
// snapshot's store version (so version numbering resumes where the saving
// mediator left off). The snapshot must come from a mediator with the
// same VDP structure; if it carries Annotations (the live annotation the
// saving mediator had adapted to), the plan is re-annotated to match
// before the store layout is validated, so an adaptively drifted mediator
// round-trips through persistence. Announcements already queued that the
// snapshot covers are discarded.
func (m *Mediator) Restore(snap *StateSnapshot) error {
	if snap == nil {
		return fmt.Errorf("core: nil snapshot")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vstore.Current() != nil {
		return fmt.Errorf("core: mediator already initialized")
	}
	v := m.curVDP()
	if snap.Annotations != nil && !vdp.AnnotationsEqual(snap.Annotations, v.Annotations()) {
		nv, err := v.Reannotate(snap.Annotations)
		if err != nil {
			return fmt.Errorf("core: restoring persisted annotation: %w", err)
		}
		v = nv
		// Replace the construction epoch wholesale: nothing was published
		// yet, so no reader can hold the old plan.
		m.plan.Store(&planEpoch{v: nv, contributors: classifyContributors(nv)})
	}
	// Validate coverage before touching anything.
	for _, name := range v.NonLeaves() {
		n := v.Node(name)
		schema, err := storeSchema(n)
		if err != nil {
			return err
		}
		if schema == nil {
			if _, extra := snap.Store[name]; extra {
				return fmt.Errorf("core: snapshot has a store for fully virtual node %q", name)
			}
			continue
		}
		rel, ok := snap.Store[name]
		if !ok {
			return fmt.Errorf("core: snapshot missing store for node %q", name)
		}
		if !rel.Schema().SameShape(schema) {
			return fmt.Errorf("core: snapshot store for %q has shape %s, want %s",
				name, rel.Schema(), schema)
		}
	}
	for name := range snap.Store {
		n := v.Node(name)
		if n == nil || n.IsLeaf() {
			return fmt.Errorf("core: snapshot has a store for unknown or leaf node %q", name)
		}
	}
	b := m.vstore.Begin()
	for name, rel := range snap.Store {
		b.Set(name, rel.Clone())
	}
	seq := snap.StoreVersion
	if seq == 0 {
		seq = 1
	}
	m.qmu.Lock()
	m.lastProcessed = snap.LastProcessed.Clone()
	oldLen := len(m.queue)
	kept := m.queue[:0]
	for _, a := range m.queue {
		if a.Time > m.lastProcessed[a.Source] {
			kept = append(kept, a)
		}
	}
	m.queue = trimAnnouncements(kept, oldLen)
	m.initialized = true
	m.viewInit = snap.ViewInit
	m.vstore.PublishAt(b, seq, m.lastProcessed.Clone(), snap.ViewInit)
	m.qmu.Unlock()
	m.obs.reg.Emit(metrics.Event{
		Type: metrics.EventPublish, Subject: fmt.Sprintf("v%d", seq),
		Fields: map[string]int64{"version": int64(seq)},
	})
	return nil
}
