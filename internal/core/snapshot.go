package core

import (
	"fmt"

	"squirrel/internal/clock"
	"squirrel/internal/relation"
)

// StateSnapshot is the mediator's durable state: the materialized store,
// the ref′ vector it corresponds to, and the view-initialization time.
// Serialize it with internal/persist.
type StateSnapshot struct {
	Store         map[string]*relation.Relation
	LastProcessed clock.Vector
	ViewInit      clock.Time
}

// Snapshot captures a consistent copy of the durable state. The snapshot
// corresponds to the source states at LastProcessed, so a mediator
// restored from it resumes exactly where this one left off — provided the
// announcement feed replays everything committed after LastProcessed (see
// source.DB.ReplaySince).
func (m *Mediator) Snapshot() (*StateSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.isInitialized() {
		return nil, fmt.Errorf("core: snapshot of uninitialized mediator")
	}
	out := &StateSnapshot{Store: make(map[string]*relation.Relation, len(m.store))}
	for name, rel := range m.store {
		out.Store[name] = rel.Clone()
	}
	m.qmu.Lock()
	out.LastProcessed = m.lastProcessed.Clone()
	m.qmu.Unlock()
	out.ViewInit = m.viewInit
	return out, nil
}

// Restore installs a snapshot in lieu of Initialize. The snapshot must
// come from a mediator with the same annotated VDP: every expected
// materialized node must be present with a matching schema shape.
// Announcements already queued that the snapshot covers are discarded.
func (m *Mediator) Restore(snap *StateSnapshot) error {
	if snap == nil {
		return fmt.Errorf("core: nil snapshot")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.isInitialized() {
		return fmt.Errorf("core: mediator already initialized")
	}
	// Validate coverage before touching anything.
	for _, name := range m.v.NonLeaves() {
		n := m.v.Node(name)
		schema, err := storeSchema(n)
		if err != nil {
			return err
		}
		if schema == nil {
			if _, extra := snap.Store[name]; extra {
				return fmt.Errorf("core: snapshot has a store for fully virtual node %q", name)
			}
			continue
		}
		rel, ok := snap.Store[name]
		if !ok {
			return fmt.Errorf("core: snapshot missing store for node %q", name)
		}
		if !rel.Schema().SameShape(schema) {
			return fmt.Errorf("core: snapshot store for %q has shape %s, want %s",
				name, rel.Schema(), schema)
		}
	}
	for name := range snap.Store {
		n := m.v.Node(name)
		if n == nil || n.IsLeaf() {
			return fmt.Errorf("core: snapshot has a store for unknown or leaf node %q", name)
		}
	}
	for name, rel := range snap.Store {
		m.store[name] = rel.Clone()
	}
	m.qmu.Lock()
	m.lastProcessed = snap.LastProcessed.Clone()
	kept := m.queue[:0]
	for _, a := range m.queue {
		if a.Time > m.lastProcessed[a.Source] {
			kept = append(kept, a)
		}
	}
	m.queue = kept
	m.initialized = true
	m.qmu.Unlock()
	m.viewInit = snap.ViewInit
	return nil
}
