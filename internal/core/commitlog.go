package core

import (
	"errors"
	"fmt"
	"sort"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/source"
)

// This file is the mediator's durability seam. A CommitLog (implemented
// by internal/wal; core deliberately does not import it) receives every
// committed update transaction BEFORE its store version is published —
// Theorem 7.1's per-transaction commit points become durable recovery
// points. Recovery runs the records back through ReplayCommitRecord, the
// same queue → coalesce → kernel → publish path that produced them, so a
// replayed store is bit-for-bit the store the original commits built.

// CommitRecord is one committed update transaction, exactly as the commit
// path decided it: the store version it published, the commit stamp, the
// published Reflect vector, the per-source announcement high-water marks
// the transaction folded in (NewRef), and the combined per-leaf delta
// that entered the kernel.
type CommitRecord struct {
	// Version is the store version the transaction published (base + 1).
	Version uint64
	// Stamp is the commit's logical time. Informational: replay restamps
	// with the recovering mediator's clock (query answers depend on the
	// Reflect vector, never on the stamp).
	Stamp clock.Time
	// Reflect is the ref′ vector published with the version.
	Reflect clock.Vector
	// NewRef holds, per source that announced in this transaction, the
	// latest announcement time folded in — what replay must feed back so
	// ref′ advances identically.
	NewRef clock.Vector
	// Announcements counts the queue entries the transaction coalesced
	// (observability only; replay synthesizes one announcement per source).
	Announcements int
	// Delta is the combined per-leaf net delta that entered the kernel.
	Delta *delta.Delta
}

// CommitLog is the durability hook the mediator calls while holding its
// store mutex. LogCommit must make rec durable (subject to the log's sync
// policy) before returning nil; a non-nil error ABORTS the transaction —
// nothing is published, the queue keeps its announcements, and a later
// flush retries. LogBarrier marks a publish that did NOT flow through the
// update-transaction path (resync, re-annotation): the log cannot replay
// past it, so recovery stops there and the implementation should schedule
// a fresh checkpoint. Sync flushes any buffered records to stable storage
// (group commit: a batched runtime calls it once per drained batch).
type CommitLog interface {
	LogCommit(rec *CommitRecord) error
	LogBarrier(version uint64, reason string) error
	Sync() error
}

// ErrReplayGap reports a commit record that does not extend the
// mediator's current store version — the log skipped a publish (a lost
// barrier, a checkpoint/log mismatch). Replay must stop; the recovered
// prefix is still consistent.
var ErrReplayGap = errors.New("core: commit record does not extend current version")

// SetCommitLog attaches (or, with nil, detaches) the durability hook.
// Attach after Initialize/Restore/replay and before sources start
// announcing: recovery itself must not append to the log it is reading.
func (m *Mediator) SetCommitLog(l CommitLog) {
	m.mu.Lock()
	m.commitLog = l
	m.mu.Unlock()
}

// syncCommitLog flushes buffered log records, if a log is attached.
func (m *Mediator) syncCommitLog() error {
	m.mu.Lock()
	l := m.commitLog
	m.mu.Unlock()
	if l == nil {
		return nil
	}
	return l.Sync()
}

// logBarrierLocked (mu held) records that the version just published did
// not come from an update transaction. Best-effort: the publish already
// happened and cannot be unwound, and replay's version-continuity check
// (ErrReplayGap) stops recovery at this point even if the barrier record
// itself never reaches the disk.
func (m *Mediator) logBarrierLocked(reason string) {
	if m.commitLog == nil {
		return
	}
	seq := uint64(0)
	if v := m.vstore.Current(); v != nil {
		seq = v.Seq()
	}
	if err := m.commitLog.LogBarrier(seq, reason); err != nil {
		m.stats.walBarrierErrs.Add(1)
	}
}

// ReplayCommitRecord re-applies one logged commit through the normal
// update-transaction path. The record must extend the current store
// version exactly (ErrReplayGap otherwise): callers replay a log tail in
// order, starting from the checkpoint the tail was logged against, and
// stop at the first gap. Call after Restore/Initialize and before any
// source announces or a CommitLog is attached.
//
// Replay synthesizes one announcement per source named in NewRef — the
// source's slice of the combined delta, stamped at its NewRef time — and
// drains them in a single transaction. Because announcement coalescing is
// additive and the kernel is deterministic, the published version is
// byte-identical to the original commit's; the version number and Reflect
// vector are asserted to match the record.
func (m *Mediator) ReplayCommitRecord(rec *CommitRecord) error {
	if rec == nil {
		return fmt.Errorf("core: nil commit record")
	}
	cur := m.vstore.Current()
	if cur == nil {
		return fmt.Errorf("core: replay on uninitialized mediator")
	}
	if rec.Version != cur.Seq()+1 {
		return fmt.Errorf("%w: record v%d after store v%d", ErrReplayGap, rec.Version, cur.Seq())
	}
	if len(rec.NewRef) == 0 {
		return fmt.Errorf("core: commit record v%d names no announcing source", rec.Version)
	}
	// Slice the combined delta back into per-source announcements.
	plan := m.curVDP()
	bySource := make(map[string]*delta.Delta)
	if rec.Delta != nil {
		for _, relName := range rec.Delta.Relations() {
			n := plan.Node(relName)
			if n == nil || !n.IsLeaf() {
				return fmt.Errorf("core: commit record v%d has delta for unknown leaf %q", rec.Version, relName)
			}
			d := bySource[n.Source]
			if d == nil {
				d = delta.New()
				bySource[n.Source] = d
			}
			d.Rel(relName).Smash(rec.Delta.Get(relName))
		}
	}
	sources := make([]string, 0, len(rec.NewRef))
	for src := range rec.NewRef {
		sources = append(sources, src)
	}
	sort.Strings(sources)
	for _, src := range sources {
		d := bySource[src]
		if d == nil {
			d = delta.New() // announced, but every delta cancelled or irrelevant
		}
		delete(bySource, src)
		// Seq 0: replay bypasses gap detection — continuity was already
		// proven when the record was logged.
		m.OnAnnouncement(source.Announcement{Source: src, Time: rec.NewRef[src], Delta: d})
	}
	if len(bySource) > 0 {
		return fmt.Errorf("core: commit record v%d has deltas from sources outside NewRef", rec.Version)
	}
	ran, err := m.RunUpdateTransaction()
	if err != nil {
		return fmt.Errorf("core: replaying record v%d: %w", rec.Version, err)
	}
	if !ran {
		return fmt.Errorf("core: replaying record v%d produced no transaction (announcements dropped)", rec.Version)
	}
	got := m.vstore.Current()
	if got.Seq() != rec.Version {
		return fmt.Errorf("core: replay published v%d, record says v%d", got.Seq(), rec.Version)
	}
	if ref := got.Reflect(); !ref.LessEq(rec.Reflect) || !rec.Reflect.LessEq(ref) {
		return fmt.Errorf("core: replay of v%d diverged: reflect %v, record says %v", rec.Version, ref, rec.Reflect)
	}
	return nil
}
