package core_test

// Wire-level fault-boundary tests: a real mediator polling a real
// SourceServer over TCP, with deterministic faults injected at the
// net.Conn layer. This is the package-external twin of failure_test.go
// (core cannot import wire, but core_test can import both).

import (
	"net"
	"strings"
	"testing"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/core"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/resilience"
	"squirrel/internal/source"
	"squirrel/internal/vdp"
	"squirrel/internal/wire"
)

// wireEnv is a one-source mediator over TCP: R(a,b)@db1 behind a
// SourceServer, export V = R annotated hybrid (b virtual), so every
// query for b polls db1 through the client connection — which is
// wrapped in net.Conn-level fault injection under the label "link".
type wireEnv struct {
	clk *clock.Logical
	db  *source.DB
	med *core.Mediator
	cli *wire.Client
	inj *resilience.Injector
}

func newWireEnv(t *testing.T, resil core.ResilienceConfig, dialOpts wire.DialOptions) *wireEnv {
	t.Helper()
	clk := &clock.Logical{}
	db := source.NewDB("db1", clk)
	rs := relation.MustSchema("R", []relation.Attribute{
		{Name: "a", Type: relation.KindInt}, {Name: "b", Type: relation.KindInt}}, "a")
	r := relation.NewSet(rs)
	r.Insert(relation.T(1, 10))
	r.Insert(relation.T(2, 20))
	if err := db.LoadRelation(r); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewSourceServer(db)
	srv.Logf = t.Logf
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	inj := resilience.NewInjector(1)
	dialOpts.WrapConn = func(c net.Conn) net.Conn {
		return resilience.WrapNetConn(c, inj, "link")
	}
	cli, err := wire.DialWith(addr, dialOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	b := vdp.NewBuilder()
	if err := b.AddSource("db1", rs); err != nil {
		t.Fatal(err)
	}
	if err := b.AddViewSQL("V", `SELECT a, b FROM R`); err != nil {
		t.Fatal(err)
	}
	b.Annotate("V", vdp.Ann([]string{"a"}, []string{"b"}))
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	med, err := core.New(core.Config{
		VDP:        plan,
		Sources:    map[string]core.SourceConn{"db1": cli},
		Clock:      clk,
		Resilience: resil,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli.OnAnnounce(med.OnAnnouncement)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	// Let the client's read loop re-enter its blocking Read so the next
	// injector decision is consumed by the operation under test, not by a
	// stale loop iteration.
	time.Sleep(20 * time.Millisecond)
	return &wireEnv{clk: clk, db: db, med: med, cli: cli, inj: inj}
}

// TestWireMidPollDisconnectRetries injects a mid-stream disconnect into a
// poll: the write closes the connection, the attempt fails, the client
// redials in the background, and the retry succeeds on the fresh
// connection. Afterwards the announcement subscription must have survived
// the reconnect.
func TestWireMidPollDisconnectRetries(t *testing.T) {
	e := newWireEnv(t,
		core.ResilienceConfig{Retry: resilience.RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond}},
		wire.DialOptions{Reconnect: true, RetryBase: 10 * time.Millisecond},
	)
	e.inj.DropNext("link", 1)
	ans, err := e.med.Query("V", nil, nil)
	if err != nil {
		t.Fatalf("query across disconnect: %v", err)
	}
	if ans.Card() != 2 || !ans.Contains(relation.T(1, 10)) {
		t.Fatalf("answer after reconnect: %s", ans)
	}
	if c := e.inj.Counts("link").Drops; c != 1 {
		t.Errorf("injected drops = %d, want 1", c)
	}
	if st := e.med.Stats(); st.PollRetries < 1 {
		t.Errorf("PollRetries = %d, want >= 1", st.PollRetries)
	}

	// The server re-subscribes the new connection to the announcement
	// feed: a commit after the reconnect must reach the mediator.
	d := delta.New()
	d.Insert("R", relation.T(3, 30))
	e.db.MustApply(d)
	deadline := time.Now().Add(3 * time.Second)
	for e.med.QueueLen() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.med.QueueLen() == 0 {
		t.Fatal("announcement lost after reconnect")
	}
	if _, err := e.med.RunUpdateTransaction(); err != nil {
		t.Fatal(err)
	}
	ans2, err := e.med.Query("V", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ans2.Contains(relation.T(3, 30)) {
		t.Fatalf("post-reconnect commit missing from view: %s", ans2)
	}
}

// TestWirePollDeadlineTimeoutThenRetry stalls one poll attempt past the
// per-attempt deadline: the attempt's goroutine is abandoned at the
// deadline, the retry waits out the backoff (by which time the stalled
// write has unwound), and succeeds.
func TestWirePollDeadlineTimeoutThenRetry(t *testing.T) {
	e := newWireEnv(t,
		core.ResilienceConfig{
			PollTimeout: 50 * time.Millisecond,
			Retry:       resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: 150 * time.Millisecond},
		},
		wire.DialOptions{Reconnect: true, RetryBase: 10 * time.Millisecond},
	)
	e.inj.HangNext("link", 1, 120*time.Millisecond)
	start := time.Now()
	ans, err := e.med.Query("V", nil, nil)
	if err != nil {
		t.Fatalf("query across stalled attempt: %v", err)
	}
	if ans.Card() != 2 {
		t.Fatalf("answer: %s", ans)
	}
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Errorf("query returned in %s; a deadline + backoff must have elapsed", el)
	}
	st := e.med.Stats()
	if st.PollFailures < 1 || st.PollRetries < 1 {
		t.Errorf("PollFailures=%d PollRetries=%d, want >= 1 each", st.PollFailures, st.PollRetries)
	}
	if c := e.inj.Counts("link").Hangs; c != 1 {
		t.Errorf("injected hangs = %d, want 1", c)
	}
}

// TestWireBreakerTransitions drives the per-source circuit breaker around
// its full automaton over a real connection: closed → (failures) → open →
// fast-fail → (cooldown) → half-open → (probe succeeds) → closed.
func TestWireBreakerTransitions(t *testing.T) {
	e := newWireEnv(t,
		core.ResilienceConfig{
			Retry:   resilience.RetryPolicy{MaxAttempts: 1},
			Breaker: resilience.BreakerPolicy{Failures: 2, Cooldown: 60 * time.Millisecond},
		},
		wire.DialOptions{},
	)
	health := func() core.SourceHealth { return e.med.Stats().Sources["db1"] }
	if got := health().Breaker; got != "closed" {
		t.Fatalf("initial breaker = %q", got)
	}

	e.inj.SetDown("link", true)
	for i := 0; i < 2; i++ {
		if _, err := e.med.Query("V", nil, nil); err == nil {
			t.Fatalf("query %d should fail while link is down", i)
		}
	}
	h := health()
	if h.Breaker != "open" || h.Trips != 1 {
		t.Fatalf("after %d failures: breaker=%q trips=%d, want open/1", 2, h.Breaker, h.Trips)
	}

	// Open: polls fail fast without touching the wire.
	before := e.inj.Counts("link").DownOps
	if _, err := e.med.Query("V", nil, nil); err == nil || !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("open breaker must fast-fail, got %v", err)
	}
	if after := e.inj.Counts("link").DownOps; after != before {
		t.Errorf("fast-fail still hit the wire (%d -> %d down ops)", before, after)
	}
	if st := e.med.Stats(); st.BreakerFastFails < 1 {
		t.Errorf("BreakerFastFails = %d, want >= 1", st.BreakerFastFails)
	}

	// After the cooldown the breaker half-opens and admits one probe.
	time.Sleep(80 * time.Millisecond)
	if got := health().Breaker; got != "half-open" {
		t.Fatalf("after cooldown: breaker = %q, want half-open", got)
	}
	e.inj.SetDown("link", false)
	if _, err := e.med.Query("V", nil, nil); err != nil {
		t.Fatalf("probe query: %v", err)
	}
	if got := health().Breaker; got != "closed" {
		t.Fatalf("after successful probe: breaker = %q, want closed", got)
	}
}
