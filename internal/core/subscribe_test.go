package core

import (
	"sync"
	"testing"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/store"
	"squirrel/internal/vdp"
)

// commitR inserts one fresh R row that joins into T and runs one update
// transaction, returning the newly published version.
func (e *testEnv) commitR(t testing.TB, key int64) *store.Version {
	t.Helper()
	d := delta.New()
	d.Insert("R", relation.T(key, 10, key%7, 100))
	e.db1.MustApply(d)
	if ran, err := e.med.RunUpdateTransaction(); err != nil || !ran {
		t.Fatalf("commit %d: ran=%v err=%v", key, ran, err)
	}
	return e.med.CurrentVersion()
}

// recvNow drains one frame that must already be queued (the update
// transaction has committed, so delivery may not block).
func recvNow(t testing.TB, sub *Subscription) SubFrame {
	t.Helper()
	f, ok, err := sub.TryRecv()
	if err != nil {
		t.Fatalf("TryRecv: %v", err)
	}
	if !ok {
		t.Fatalf("no frame ready")
	}
	return f
}

// applyFrame folds one frame into the subscriber's replica of the export.
func applyFrame(t testing.TB, replica **relation.Relation, f SubFrame) {
	t.Helper()
	switch f.Kind {
	case SubSnapshot:
		*replica = f.Snapshot.Clone()
	case SubDelta:
		if err := f.Delta.ApplyTo(*replica, false); err != nil {
			t.Fatalf("apply frame v%d: %v", f.Version, err)
		}
	}
}

// TestSubscribeStreamMatchesPull is the core delivery contract: the first
// frame is a snapshot of the current version, every commit yields one
// in-order delta frame, and applying them reconstructs, after the frame
// for version v, exactly the relation a pull query pinned at v sees.
func TestSubscribeStreamMatchesPull(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	sub, err := e.med.Subscribe("T", SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if got := e.med.ActiveSubscriptions(); got != 1 {
		t.Fatalf("active subscriptions = %d", got)
	}

	first := recvNow(t, sub)
	cur := e.med.CurrentVersion()
	if first.Kind != SubSnapshot || first.Version != cur.Seq() || first.Stamp != cur.Stamp() {
		t.Fatalf("first frame: kind=%v v=%d stamp=%d (store v%d@%d)",
			first.Kind, first.Version, first.Stamp, cur.Seq(), cur.Stamp())
	}
	if !first.Snapshot.Equal(cur.Rel("T")) {
		t.Fatalf("snapshot differs from store")
	}
	var replica *relation.Relation
	applyFrame(t, &replica, first)

	versions := map[uint64]*store.Version{}
	for i := int64(0); i < 5; i++ {
		v := e.commitR(t, 100+i)
		versions[v.Seq()] = v
	}
	prev := first.Version
	for i := 0; i < 5; i++ {
		f := recvNow(t, sub)
		if f.Kind != SubDelta || f.First != prev+1 || f.Version != f.First || f.Coalesced != 0 {
			t.Fatalf("frame %d: kind=%v first=%d v=%d coalesced=%d (prev %d)",
				i, f.Kind, f.First, f.Version, f.Coalesced, prev)
		}
		prev = f.Version
		applyFrame(t, &replica, f)
		pinned := versions[f.Version]
		if pinned == nil {
			t.Fatalf("frame for unknown version %d", f.Version)
		}
		if f.Stamp != pinned.Stamp() || f.Reflect["db1"] != pinned.RefOf("db1") {
			t.Fatalf("frame v%d metadata: stamp=%d reflect=%v", f.Version, f.Stamp, f.Reflect)
		}
		if !replica.Equal(pinned.Rel("T")) {
			t.Fatalf("after frame v%d: replica %s != pinned %s",
				f.Version, replica, pinned.Rel("T"))
		}
	}
	if _, ok, _ := sub.TryRecv(); ok {
		t.Fatal("unexpected extra frame")
	}
	st := e.med.Stats()
	if st.ActiveSubscribers != 1 || st.SubFramesDelivered != 6 {
		t.Fatalf("stats: %+v", st)
	}
	sub.Close()
	if err := sub.Err(); err != ErrSubscriptionClosed {
		t.Fatalf("terminal err = %v", err)
	}
	if got := e.med.ActiveSubscriptions(); got != 0 {
		t.Fatalf("active after close = %d", got)
	}
}

// TestSubscribeBackpressureCoalesces pins the overflow policy: past
// MaxQueue, new frames smash into the tail; the coalesced frame covers a
// contiguous version range and composes to the same final state.
func TestSubscribeBackpressureCoalesces(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	sub, err := e.med.Subscribe("T", SubscribeOptions{MaxQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	var replica *relation.Relation
	applyFrame(t, &replica, recvNow(t, sub))

	for i := int64(0); i < 6; i++ {
		e.commitR(t, 200+i)
	}
	final := e.med.CurrentVersion()
	var frames []SubFrame
	for {
		f, ok, err := sub.TryRecv()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		frames = append(frames, f)
		applyFrame(t, &replica, f)
	}
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2 (bounded queue)", len(frames))
	}
	tail := frames[1]
	if tail.Coalesced != 4 || tail.Version != final.Seq() || tail.First != frames[0].Version+1 {
		t.Fatalf("coalesced tail: first=%d v=%d coalesced=%d", tail.First, tail.Version, tail.Coalesced)
	}
	if !replica.Equal(final.Rel("T")) {
		t.Fatalf("replica %s != final %s", replica, final.Rel("T"))
	}
	if st := e.med.Stats(); st.SubCoalesces != 4 {
		t.Fatalf("SubCoalesces = %d", st.SubCoalesces)
	}
}

// TestSubscribeStalledSubscriberDoesNotBlockCommits is the ISSUE's
// acceptance check: a subscriber that never consumes costs bounded memory
// and zero commit-path latency — every commit still runs to completion.
func TestSubscribeStalledSubscriberDoesNotBlockCommits(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	sub, err := e.med.Subscribe("T", SubscribeOptions{MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	before := e.med.StoreVersion()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 50; i++ {
			e.commitR(t, 300+i)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("commits stalled behind a non-consuming subscriber")
	}
	if got := e.med.StoreVersion(); got != before+50 {
		t.Fatalf("store version %d, want %d", got, before+50)
	}
}

// TestSubscribeMaxLagDropsToSnapshot pins Theorem 7.2 as a delivery
// contract: when the backlog's age exceeds MaxLag, the queue is dropped
// and the subscriber resyncs from a fresh snapshot.
func TestSubscribeMaxLagDropsToSnapshot(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	sub, err := e.med.Subscribe("T", SubscribeOptions{MaxLag: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	var replica *relation.Relation
	applyFrame(t, &replica, recvNow(t, sub))

	// Each commit advances the logical clock by several ticks, so the
	// second undelivered frame already trails by more than MaxLag=1.
	for i := int64(0); i < 4; i++ {
		e.commitR(t, 400+i)
	}
	st := e.med.Stats()
	if st.SubLagDrops == 0 {
		t.Fatalf("no lag drops recorded: %+v", st)
	}
	f := recvNow(t, sub)
	if f.Kind != SubSnapshot {
		t.Fatalf("post-lag frame kind = %v", f.Kind)
	}
	applyFrame(t, &replica, f)
	if cur := e.med.CurrentVersion(); f.Version != cur.Seq() || !replica.Equal(cur.Rel("T")) {
		t.Fatalf("resync snapshot at v%d (store v%d)", f.Version, cur.Seq())
	}
}

// TestSubscribeResumeFromVersion pins reconnect semantics: a resume point
// the ring still covers replays the missed delta frames; one it no longer
// covers degrades to a snapshot (counted as a resync).
func TestSubscribeResumeFromVersion(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	sub, err := e.med.Subscribe("T", SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var replica *relation.Relation
	applyFrame(t, &replica, recvNow(t, sub))
	resumeAt := sub.Delivered()
	sub.Close()

	for i := int64(0); i < 3; i++ {
		e.commitR(t, 500+i)
	}
	sub2, err := e.med.Subscribe("T", SubscribeOptions{FromVersion: resumeAt})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	prev := resumeAt
	for i := 0; i < 3; i++ {
		f := recvNow(t, sub2)
		if f.Kind != SubDelta || f.First != prev+1 {
			t.Fatalf("resume frame %d: kind=%v first=%d (prev %d)", i, f.Kind, f.First, prev)
		}
		prev = f.Version
		applyFrame(t, &replica, f)
	}
	cur := e.med.CurrentVersion()
	if prev != cur.Seq() || !replica.Equal(cur.Rel("T")) {
		t.Fatalf("resumed replica diverges at v%d", prev)
	}

	// Push the resume point off the ring: after subRingCap more commits the
	// ring no longer covers it, so the reconnect falls back to a snapshot.
	for i := int64(0); i < subRingCap+1; i++ {
		e.commitR(t, 600+i)
	}
	resyncsBefore := e.med.Stats().SubSnapshotResyncs
	sub3, err := e.med.Subscribe("T", SubscribeOptions{FromVersion: resumeAt})
	if err != nil {
		t.Fatal(err)
	}
	defer sub3.Close()
	f := recvNow(t, sub3)
	if f.Kind != SubSnapshot || f.Version != e.med.StoreVersion() {
		t.Fatalf("off-ring resume frame: kind=%v v=%d", f.Kind, f.Version)
	}
	if got := e.med.Stats().SubSnapshotResyncs; got != resyncsBefore+1 {
		t.Fatalf("SubSnapshotResyncs = %d, want %d", got, resyncsBefore+1)
	}
}

// TestSubscribeBarrierOnResync pins the barrier rule: a publish that
// bypassed the kernel (source resync) has no sound delta stream, so every
// live subscriber is forced onto a fresh snapshot.
func TestSubscribeBarrierOnResync(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	sub, err := e.med.Subscribe("T", SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	var replica *relation.Relation
	applyFrame(t, &replica, recvNow(t, sub))
	e.commitR(t, 700)

	if err := e.med.ResyncSource("db1"); err != nil {
		t.Fatal(err)
	}
	// The pre-barrier delta frame was discarded with the queue: delivery
	// continues from a snapshot of the post-resync store.
	f := recvNow(t, sub)
	if f.Kind != SubSnapshot {
		t.Fatalf("post-barrier frame kind = %v", f.Kind)
	}
	applyFrame(t, &replica, f)
	cur := e.med.CurrentVersion()
	if f.Version != cur.Seq() || !replica.Equal(cur.Rel("T")) {
		t.Fatalf("post-barrier snapshot at v%d (store v%d)", f.Version, cur.Seq())
	}
}

// TestSubscribeIneligibleExport: only fully materialized exports have an
// exact store-side delta stream to subscribe to.
func TestSubscribeIneligibleExport(t *testing.T) {
	e := newEnv(t, nil, nil, vdp.Ann([]string{"r1", "r3", "s1"}, []string{"s2"}))
	if _, err := e.med.Subscribe("T", SubscribeOptions{}); err == nil {
		t.Fatal("subscribe to a partially virtual export must fail")
	}
	if _, err := e.med.Subscribe("NOPE", SubscribeOptions{}); err == nil {
		t.Fatal("subscribe to an unknown export must fail")
	}
}

// TestSubscriptionSoak races fast, slow, and disconnect-resume
// subscribers against concurrent staged-kernel commits (run under -race
// in CI). Every replica must converge to the final published version, and
// every in-flight comparison against a pinned version must match.
func TestSubscriptionSoak(t *testing.T) {
	const commits = 150

	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db2 := source.NewDB("db2", clk)
	r := relation.NewSet(rSchema())
	s := relation.NewSet(sSchema())
	s.Insert(relation.T(10, 1, 20))
	s.Insert(relation.T(20, 2, 40))
	if err := db1.LoadRelation(r); err != nil {
		t.Fatal(err)
	}
	if err := db2.LoadRelation(s); err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		VDP: paperPlan(t, nil, nil, nil),
		Sources: map[string]SourceConn{
			"db1": LocalSource{DB: db1}, "db2": LocalSource{DB: db2}},
		Clock:            clk,
		PropagateWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ConnectLocal(med, db1)
	ConnectLocal(med, db2)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}

	// pinned records every published version so subscribers can compare
	// mid-stream; the committer stores the pointer after RunUpdateTransaction
	// returns, so a subscriber may briefly see a frame before its pin.
	var pinMu sync.Mutex
	pinned := map[uint64]*store.Version{}
	pin := func(v *store.Version) {
		pinMu.Lock()
		pinned[v.Seq()] = v
		pinMu.Unlock()
	}
	lookup := func(seq uint64) *store.Version {
		pinMu.Lock()
		defer pinMu.Unlock()
		return pinned[seq]
	}
	pin(med.CurrentVersion())

	commitErr := make(chan error, 1)
	committerDone := make(chan struct{})
	go func() {
		defer close(committerDone)
		for i := int64(0); i < commits; i++ {
			d := delta.New()
			d.Insert("R", relation.T(1000+i, 10+10*(i%2), i%7, 100))
			if i%5 == 4 {
				d.Delete("R", relation.T(1000+i-4, 10+10*(i%2), (i-4)%7, 100))
			}
			db1.MustApply(d)
			if ran, err := med.RunUpdateTransaction(); err != nil || !ran {
				commitErr <- err
				return
			}
			pin(med.CurrentVersion())
		}
	}()

	// drain consumes frames until the replica reaches atLeast, verifying
	// exact agreement with every pinned version it lands on.
	drain := func(t *testing.T, sub *Subscription, replica **relation.Relation, atLeast uint64, slow bool) uint64 {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		var at uint64
		for at < atLeast {
			if time.Now().After(deadline) {
				t.Fatalf("drain stuck at v%d (want >= v%d)", at, atLeast)
			}
			f, ok, err := sub.TryRecv()
			if err != nil {
				t.Fatalf("drain at v%d: %v", at, err)
			}
			if !ok {
				time.Sleep(time.Millisecond)
				continue
			}
			applyFrame(t, replica, f)
			at = f.Version
			if v := lookup(at); v != nil && !(*replica).Equal(v.Rel("T")) {
				t.Fatalf("replica diverges from pinned v%d", at)
			}
			if slow {
				time.Sleep(2 * time.Millisecond)
			}
		}
		return at
	}

	var wg sync.WaitGroup
	// Fast subscriber: unbounded pace, default queue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sub, err := med.Subscribe("T", SubscribeOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		defer sub.Close()
		var replica *relation.Relation
		drain(t, sub, &replica, commits, false)
	}()
	// Slow subscriber: tiny queue, sleeps per frame — must survive on
	// coalesced frames and still converge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sub, err := med.Subscribe("T", SubscribeOptions{MaxQueue: 4})
		if err != nil {
			t.Error(err)
			return
		}
		defer sub.Close()
		var replica *relation.Relation
		drain(t, sub, &replica, commits, true)
	}()
	// Disconnecting subscriber: repeatedly drops the subscription and
	// resumes from its last delivered version.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var replica *relation.Relation
		var at uint64
		for hop := 0; at < commits; hop++ {
			sub, err := med.Subscribe("T", SubscribeOptions{FromVersion: at, MaxQueue: 8})
			if err != nil {
				t.Error(err)
				return
			}
			target := at + 20
			if target > commits {
				target = commits
			}
			at = drain(t, sub, &replica, target, false)
			sub.Close()
		}
	}()

	wg.Wait()
	<-committerDone
	select {
	case err := <-commitErr:
		t.Fatalf("committer: %v", err)
	default:
	}
	final := med.CurrentVersion()
	if final.Seq() < commits {
		t.Fatalf("final version %d < %d", final.Seq(), commits)
	}
	if med.ActiveSubscriptions() != 0 {
		t.Fatalf("leaked subscriptions: %d", med.ActiveSubscriptions())
	}
}
