package core

import (
	"fmt"
	"sort"
	"time"

	"squirrel/internal/clock"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
	"squirrel/internal/store"
	"squirrel/internal/vdp"
)

// This file implements the re-annotation transaction: switching a running
// mediator to a different annotation of the same plan structure with no
// downtime — §5.3's materialized/virtual trade-off as a live control
// action instead of a construction-time choice. The transaction is
// serialized with update transactions (txnMu), builds the relaid-out
// store copy-on-write, and publishes it together with a new plan epoch,
// so every concurrent query still resolves a (version, plan) pair that
// agree (see planEpoch).
//
// Consistency (Theorem 7.1 across the switch): a backfilled column is
// computed by the VAP under the OLD plan against the builder's base
// version — polls of announcing sources are compensated back to the
// base's ref′, so the new columns agree exactly with every untouched
// store portion; polls of newly-announcing sources are adopted at their
// serialization instant asOf, which is sound because a source that was a
// virtual contributor had NO materialized state derived from it, so
// advancing ref′[src] to asOf invalidates nothing. Dropping a column
// never changes ref′ at all. Queries pinned to pre-switch versions keep
// answering under the old epoch (their compensation log is retained while
// the pin lives), so every answer remains exact at its Reflect vector.

// AnnotationFlip describes one attribute's materialization change applied
// (or proposed) by a re-annotation.
type AnnotationFlip struct {
	// Node and Attr name the annotated attribute.
	Node string
	Attr string
	// Materialize is true for a virtual→materialized flip, false for
	// materialized→virtual.
	Materialize bool
}

// String renders the flip like "T.s2 v->m".
func (f AnnotationFlip) String() string {
	dir := "m->v"
	if f.Materialize {
		dir = "v->m"
	}
	return f.Node + "." + f.Attr + " " + dir
}

// diffAnnotations lists the attribute flips taking oldV's annotation to
// newV's, in plan order.
func diffAnnotations(oldV, newV *vdp.VDP) []AnnotationFlip {
	var flips []AnnotationFlip
	for _, name := range newV.NonLeaves() {
		on, nn := oldV.Node(name), newV.Node(name)
		for _, a := range nn.Schema.AttrNames() {
			was, is := on.Ann.IsMaterialized(a), nn.Ann.IsMaterialized(a)
			if was != is {
				flips = append(flips, AnnotationFlip{Node: name, Attr: a, Materialize: is})
			}
		}
	}
	return flips
}

// Reannotate switches the mediator to the given annotations (applied on
// top of the current ones; see vdp.VDP.Reannotate) while it keeps serving
// queries and updates. Newly materialized attributes are backfilled from
// source polls pinned to a consistent store state; newly virtual ones
// have their stored columns dropped. It returns the attribute flips
// applied — nil (with nil error) when the new annotation equals the
// current one.
func (m *Mediator) Reannotate(anns map[string]vdp.Annotation) ([]AnnotationFlip, error) {
	m.txnMu.Lock()
	defer m.txnMu.Unlock()
	start := time.Now()

	old := m.epoch()
	newV, err := old.v.Reannotate(anns)
	if err != nil {
		return nil, err
	}
	flips := diffAnnotations(old.v, newV)
	if len(flips) == 0 {
		return nil, nil
	}
	newContribs := classifyContributors(newV)

	// Partition the changed nodes by what the store must do: grown nodes
	// (some attribute newly materialized) are backfilled via the VAP,
	// shrunk-only nodes are re-projected locally from their stored
	// portion, and nodes with nothing materialized anymore are dropped.
	var grown, shrunk, dropped []string
	for _, name := range newV.NonLeaves() {
		oldMats := old.v.Node(name).MaterializedAttrs()
		newMats := newV.Node(name).MaterializedAttrs()
		if sameStrings(oldMats, newMats) {
			continue
		}
		switch {
		case len(newMats) == 0:
			dropped = append(dropped, name)
		case anyNewString(newMats, oldMats):
			grown = append(grown, name)
		default:
			shrunk = append(shrunk, name)
		}
	}

	// Sources flipping virtual→announcing need their announcement stream
	// captured before the backfill polls them.
	var capture []string
	for src, k := range old.contributors {
		if k == VirtualContributor && newContribs[src] != VirtualContributor {
			capture = append(capture, src)
		}
	}
	sort.Strings(capture)

	for attempt := 0; ; attempt++ {
		retry, err := m.reannotateOnce(old, newV, newContribs, grown, shrunk, dropped, capture)
		if err != nil {
			m.abortCapture(capture)
			return nil, err
		}
		if !retry {
			break
		}
		if attempt == maxUpdateRetries {
			m.abortCapture(capture)
			return nil, fmt.Errorf("core: re-annotation overtaken by %d concurrent publishes; giving up", attempt+1)
		}
		m.stats.txnRetries.Add(1)
		m.obs.txnRetries.Inc()
	}

	seq := uint64(0)
	if v := m.vstore.Current(); v != nil {
		seq = v.Seq()
	}
	for _, f := range flips {
		m.stats.annotationSwitches.Add(1)
		m.obs.annSwitches.Inc()
		m.obs.reg.Emit(metrics.Event{
			Type: metrics.EventAnnotation, Subject: f.String(), Dur: time.Since(start),
			Fields: map[string]int64{"version": int64(seq)},
		})
	}
	m.obs.reg.Emit(metrics.Event{
		Type: metrics.EventPublish, Subject: fmt.Sprintf("v%d", seq),
		Fields: map[string]int64{"version": int64(seq)},
	})
	return flips, nil
}

// reannotateOnce is one attempt: begin under mu, backfill outside it,
// commit under mu. retry reports that a concurrent publish (a resync)
// superseded the builder's base and the caller should start over.
func (m *Mediator) reannotateOnce(old *planEpoch, newV *vdp.VDP, newContribs map[string]ContributorKind, grown, shrunk, dropped, capture []string) (retry bool, err error) {
	m.mu.Lock()
	if m.vstore.Current() == nil {
		m.mu.Unlock()
		return false, fmt.Errorf("core: mediator not initialized")
	}
	b := m.vstore.Begin()
	m.mu.Unlock()

	// From here on, announcements from the about-to-announce sources are
	// queued even though every retained epoch still classifies them as
	// virtual: the backfill poll below anchors each stream at asOf, and
	// commits landing in the poll-to-switch gap must not be lost. Sequence
	// tracking restarts for streams that were dropped untracked while the
	// source was fully virtual.
	if len(capture) > 0 {
		m.qmu.Lock()
		for _, src := range capture {
			if !m.capture[src] && !m.announcingAnywhere(src) {
				m.lastSeq[src] = 0
			}
			m.capture[src] = true
		}
		m.qmu.Unlock()
	}

	// Backfill grown nodes under the OLD plan (see the file comment for
	// why this is exact at the builder base's ref′ / the new asOf).
	res := &tempResult{temps: map[string]*relation.Relation{}, polledAt: map[string]clock.Time{}}
	if len(grown) > 0 {
		reqs := make([]vdp.Requirement, 0, len(grown))
		for _, name := range grown {
			req, err := vdp.NewRequirement(old.v, name, newV.Node(name).MaterializedAttrs(), nil)
			if err != nil {
				return false, err
			}
			reqs = append(reqs, req)
		}
		plan, err := old.v.PlanTemporaries(reqs)
		if err != nil {
			return false, err
		}
		res, err = m.buildTemporaries(old, plan, b, FailFast)
		if err != nil {
			return false, err
		}
	}
	for _, src := range capture {
		if res.polledAt[src] == 0 {
			// Unreachable by construction: src becomes announcing only
			// because some grown node is reachable from its leaves, and that
			// node's backfill expands through src's (fully virtual under the
			// old plan) subtree, polling it. Fail loudly rather than publish
			// a ref′ component the store does not actually reflect.
			return false, fmt.Errorf("core: re-annotation backfill did not poll newly announcing source %q", src)
		}
	}

	for _, name := range grown {
		temp, ok := res.temps[name]
		if !ok {
			return false, fmt.Errorf("core: re-annotation backfill built no temporary for %q", name)
		}
		if err := rebuildPortion(b, newV.Node(name), temp); err != nil {
			return false, err
		}
	}
	for _, name := range shrunk {
		cur := b.Rel(name)
		if cur == nil {
			return false, fmt.Errorf("core: no stored portion for %q to shrink", name)
		}
		if err := rebuildPortion(b, newV.Node(name), cur); err != nil {
			return false, err
		}
	}
	for _, name := range dropped {
		b.Delete(name)
	}

	// Commit: adopt the captured sources' poll instants, swap the plan
	// epoch, publish — mu first (discard and retry if a resync published
	// while we were polling), then everything else under qmu like every
	// other publisher.
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vstore.Current() != b.Base() {
		return true, nil
	}
	newEp := &planEpoch{v: newV, contributors: newContribs, since: b.Base().Seq() + 1}
	m.qmu.Lock()
	for _, src := range capture {
		asOf := res.polledAt[src]
		// The backfill reflects every commit of src up to asOf: drop the
		// captured announcements it covers (to the done log while pinned
		// versions from an epoch that classified src as announcing might
		// still compensate with them), and adopt asOf as ref′[src]. A
		// quarantine raised during capture (a gap in the newly adopted
		// stream) deliberately survives: the switch itself is exact at
		// asOf, and the runtime's next tick resyncs the now-announcing
		// source.
		oldLen := len(m.queue)
		kept := m.queue[:0]
		for _, a := range m.queue {
			if a.Source == src && a.Time <= asOf {
				if len(m.pins) > 0 {
					m.done = append(m.done, a)
				}
				continue
			}
			kept = append(kept, a)
		}
		m.queue = trimAnnouncements(kept, oldLen)
		if asOf > m.lastProcessed[src] {
			m.lastProcessed[src] = asOf
		}
		delete(m.capture, src)
	}
	// Swap the epoch head BEFORE publishing: a lock-free reader that
	// captured the old current version must still resolve the old epoch
	// (the new head's since is past that version's seq), and one that
	// observes the new version resolves the new head. Publishing first
	// would let a reader pair the new version with the old plan.
	newEp.prev.Store(m.plan.Load())
	m.plan.Store(newEp)
	m.vstore.Publish(b, m.lastProcessed.Clone(), m.clk.Now())
	m.pruneDoneLocked()
	m.pruneEpochsLocked()
	m.obs.queueLen.Set(int64(len(m.queue)))
	m.qmu.Unlock()
	// A re-annotation publish rebuilt store portions from backfill polls
	// the commit log never saw: replay cannot cross it (and the restored
	// annotation would not match the older records' layout anyway). mu is
	// held by the caller for the whole commit.
	m.logBarrierLocked("reannotate")
	// The relaid-out store was not produced by deltas, and the eligible
	// export set may have changed with the annotation: clear the resume
	// rings and drop every subscriber to snapshot-resync (or fail it, if
	// its export lost full materialization).
	m.subs.barrier("reannotate")
	m.feedBarrierLocked("reannotate", m.vstore.Current())
	return false, nil
}

// abortCapture undoes the capture flags after a failed re-annotation.
// Sources that stay virtual in every retained epoch have their
// provisionally adopted announcements dropped and their stream state
// reset (the next capture re-anchors it); sources some retained epoch
// still classifies as announcing keep everything but the flag — their
// entries were flowing regardless of the capture.
func (m *Mediator) abortCapture(capture []string) {
	if len(capture) == 0 {
		return
	}
	m.qmu.Lock()
	for _, src := range capture {
		if !m.capture[src] {
			continue
		}
		delete(m.capture, src)
		if m.announcingAnywhere(src) {
			continue
		}
		oldLen := len(m.queue)
		kept := m.queue[:0]
		for _, a := range m.queue {
			if a.Source != src {
				kept = append(kept, a)
			}
		}
		m.queue = trimAnnouncements(kept, oldLen)
		delete(m.gapPen, src)
		delete(m.quarantined, src)
		m.lastSeq[src] = 0
	}
	m.obs.queueLen.Set(int64(len(m.queue)))
	m.qmu.Unlock()
}

// rebuildPortion replaces a node's stored portion with the projection of
// from — the node's state over at least the new materialized attributes —
// onto the node's (new) store schema, under its store semantics (bag for
// hybrid portions: a projection of a set node can carry duplicates).
func rebuildPortion(b *store.Builder, n *vdp.Node, from *relation.Relation) error {
	schema, err := storeSchema(n)
	if err != nil {
		return err
	}
	if schema == nil {
		b.Delete(n.Name)
		return nil
	}
	positions, err := from.Schema().Positions(schema.AttrNames())
	if err != nil {
		return err
	}
	sem := n.Semantics()
	if n.Hybrid() {
		sem = relation.Bag
	}
	rel := relation.New(schema, sem)
	from.Each(func(t relation.Tuple, c int) bool {
		rel.Add(t.Project(positions), c)
		return true
	})
	b.Set(n.Name, rel)
	return nil
}

// anyNewString reports whether next contains a string absent from prev.
func anyNewString(next, prev []string) bool {
	have := make(map[string]bool, len(prev))
	for _, s := range prev {
		have[s] = true
	}
	for _, s := range next {
		if !have[s] {
			return true
		}
	}
	return false
}

// sameStrings reports element-wise equality.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
