package core

import (
	"errors"
	"fmt"
	"sync"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/store"
	"squirrel/internal/vdp"
)

// This file implements push-based continuous queries (ROADMAP item 4): a
// subscriber registers for a fully materialized view export and receives
// its incremental delta stream — the per-node ΔR the IUP already computes
// and used to discard. The delivery contract:
//
//   - Every committed store version v publishes exactly one frame per
//     eligible export (empty deltas included), tagged with v's sequence
//     number, commit stamp, and Reflect vector. A subscriber that applies
//     its frames in order reconstructs, after the frame for version v,
//     a relation byte-identical to a pull query pinned at v.
//   - Queues are bounded per subscriber. On overflow the newest frames
//     coalesce via the vectorized delta.Smash, so a slow subscriber costs
//     O(maxQueue + |export|) memory and never stalls the commit path or
//     other subscribers. A coalesced frame covers a contiguous version
//     range (First..Version] and is exactly the smash of its parts.
//   - Theorem 7.2 as a delivery contract: with MaxLag set, a subscriber
//     whose oldest queued frame trails the newest commit by more than
//     MaxLag is dropped to snapshot-resync (the queue is cleared and the
//     next Recv returns a fresh SubSnapshot frame), surfaced in
//     Stats.SubLagDrops and squirrel_sub_lag_drops_total.
//   - Resume: Subscribe with FromVersion > 0 replays delta frames from
//     the registry's per-export ring when it still covers
//     (FromVersion, current]; otherwise the subscriber falls back to a
//     snapshot (counted in SubResyncs). WAL recovery replays committed
//     transactions through the normal commit path, so the rings are
//     rehydrated before the wire listener comes up.
//   - Publishes that bypass the kernel (ResyncSource rebuilding from a
//     snapshot poll, Reannotate relaying out the store) have no sound
//     delta stream: they act as subscription barriers — rings are cleared
//     and every live subscriber is forced to snapshot-resync (or failed,
//     if its export is no longer fully materialized).
//
// Locking: the registry lock reg.mu orders ring appends, membership, and
// frame offers against Subscribe; each subscriber's own mu guards its
// queue. Order: m.mu → reg.mu → sub.mu, all strictly after the locks the
// commit path already holds (reg.mu is only ever taken under mu or from
// subscriber goroutines holding nothing). Frames are shared: ring frames,
// queued frames, and delivered frames alias the same immutable deltas and
// relations — a subscriber coalescing under backpressure clones the tail
// frame's delta before smashing into it (tailOwned), so shared state is
// never mutated.

// ErrSubscriptionClosed is returned by Recv/TryRecv after Close.
var ErrSubscriptionClosed = errors.New("core: subscription closed")

// subRingCap bounds the per-export frame ring used for
// resume-from-version; older frames fall off and resumes beyond the ring
// degrade to a snapshot.
const subRingCap = 64

// SubFrameKind classifies a subscription frame.
type SubFrameKind uint8

const (
	// SubDelta carries the net delta taking the export from version
	// First-1 to version Version (one commit, or a coalesced range).
	SubDelta SubFrameKind = iota
	// SubSnapshot carries the export's full relation at version Version
	// (initial delivery, or a forced resync).
	SubSnapshot
)

// String names the kind.
func (k SubFrameKind) String() string {
	if k == SubSnapshot {
		return "snapshot"
	}
	return "delta"
}

// SubFrame is one unit of subscription delivery. Snapshot and Delta are
// shared with the store and with other subscribers: treat them as
// read-only (clone before mutating).
type SubFrame struct {
	Kind   SubFrameKind
	Export string
	// First and Version bound the committed store versions the frame
	// covers: a delta frame takes the subscriber from version First-1 to
	// Version (First == Version unless coalesced); a snapshot frame IS
	// version Version (First == Version).
	First   uint64
	Version uint64
	// Stamp and Reflect are version Version's commit stamp and Reflect
	// vector — the same consistency metadata a pull query at that version
	// carries.
	Stamp   clock.Time
	Reflect clock.Vector
	// Snapshot is the export's relation (SubSnapshot only).
	Snapshot *relation.Relation
	// Delta is the net change (SubDelta only; may be empty).
	Delta *delta.RelDelta
	// Coalesced counts the extra commits folded into this frame under
	// backpressure (0 = one commit per frame).
	Coalesced int
}

// SubscribeOptions tunes one subscription.
type SubscribeOptions struct {
	// FromVersion resumes delivery after the given committed version: the
	// subscriber has state as of FromVersion and wants the deltas since.
	// 0 (or a version the ring no longer covers) starts with a snapshot.
	FromVersion uint64
	// MaxQueue bounds the undelivered frame queue (default 256). At the
	// bound, new frames coalesce into the tail.
	MaxQueue int
	// MaxLag, when > 0, is the Theorem 7.2 staleness bound on delivery:
	// if the oldest undelivered frame's stamp trails a newly committed
	// frame's stamp by more than MaxLag, the queue is dropped and the
	// subscriber resyncs from a snapshot.
	MaxLag clock.Time
}

// Subscription is one registered consumer of an export's delta stream.
// Recv/TryRecv/Close are safe for concurrent use with the mediator's
// commit path; a Subscription is not meant to be shared by multiple
// consumer goroutines.
type Subscription struct {
	id       uint64
	export   string
	reg      *subRegistry
	maxQueue int
	maxLag   clock.Time

	// signal is a coalescing wakeup (cap 1) poked whenever the queue or
	// terminal state changes; done closes on Close/failure.
	signal chan struct{}
	done   chan struct{}

	mu    sync.Mutex
	queue []SubFrame
	// tailOwned marks the queue's last frame as this subscription's
	// private copy (its delta was cloned for coalescing and may be
	// smashed into); every other frame aliases shared state.
	tailOwned bool
	// needSnapshot forces the next delivery to be a fresh snapshot;
	// while set, offered frames are discarded (the snapshot covers them).
	needSnapshot bool
	// delivered is the last version handed to the consumer (or adopted
	// via FromVersion); frame continuity is checked against it.
	delivered uint64
	closed    bool
	err       error
}

// Export returns the subscribed export name.
func (s *Subscription) Export() string { return s.export }

// Delivered returns the last version delivered to the consumer — the
// FromVersion to resume with after a disconnect.
func (s *Subscription) Delivered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// Done returns a channel closed when the subscription terminates
// (Close, or a registry-side failure).
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Err returns the terminal error (nil while live, ErrSubscriptionClosed
// after Close, or the registry's reason for failing the subscription).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close terminates the subscription and unregisters it. Idempotent.
func (s *Subscription) Close() { s.reg.remove(s, ErrSubscriptionClosed) }

// notifyLocked pokes the consumer; sends coalesce. Caller holds s.mu.
func (s *Subscription) notifyLocked() {
	select {
	case s.signal <- struct{}{}:
	default:
	}
}

// failLocked moves the subscription to its terminal state. Caller holds
// s.mu.
func (s *Subscription) failLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.err = err
	if n := len(s.queue); n > 0 {
		s.reg.m.obs.subQueueDepth.Add(int64(-n))
	}
	s.queue = nil
	s.tailOwned = false
	close(s.done)
}

// offer enqueues a committed frame, applying backpressure policy. It
// never blocks: at the queue bound the frame coalesces into the tail via
// Smash, and past the staleness bound the queue drops to snapshot-resync.
// Called by the registry with reg.mu held.
func (s *Subscription) offer(f SubFrame) {
	m := s.reg.m
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.needSnapshot || f.Version <= s.delivered {
		return
	}
	if s.maxLag > 0 && len(s.queue) > 0 && f.Stamp-s.queue[0].Stamp > s.maxLag {
		// The consumer is lagging beyond the Theorem 7.2 bound: delivering
		// the backlog would violate the freshness contract, so drop to a
		// snapshot at the current (fresh) version instead.
		m.obs.subQueueDepth.Add(int64(-len(s.queue)))
		s.queue = nil
		s.tailOwned = false
		s.needSnapshot = true
		m.stats.subLagDrops.Add(1)
		m.obs.subLagDrops.Inc()
		s.notifyLocked()
		return
	}
	if len(s.queue) >= s.maxQueue {
		tail := &s.queue[len(s.queue)-1]
		if !s.tailOwned {
			tail.Delta = tail.Delta.Clone()
			s.tailOwned = true
		}
		tail.Delta.Smash(f.Delta)
		tail.Version = f.Version
		tail.Stamp = f.Stamp
		tail.Reflect = f.Reflect
		tail.Coalesced += 1 + f.Coalesced
		m.stats.subCoalesces.Add(1)
		m.obs.subCoalesces.Inc()
	} else {
		s.queue = append(s.queue, f)
		s.tailOwned = false
		m.obs.subQueueDepth.Add(1)
	}
	s.notifyLocked()
}

// resyncLocked forces the next delivery to be a snapshot (a barrier, or
// a frame-continuity gap). Caller holds s.mu.
func (s *Subscription) resyncLocked() {
	if s.closed || s.needSnapshot {
		return
	}
	m := s.reg.m
	if n := len(s.queue); n > 0 {
		m.obs.subQueueDepth.Add(int64(-n))
	}
	s.queue = nil
	s.tailOwned = false
	s.needSnapshot = true
	m.stats.subResyncs.Add(1)
	m.obs.subResyncs.Inc()
	s.notifyLocked()
}

// TryRecv returns the next frame without blocking. ok is false when no
// frame is ready; err is terminal (the subscription is dead).
func (s *Subscription) TryRecv() (f SubFrame, ok bool, err error) {
	m := s.reg.m
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return SubFrame{}, false, s.err
		}
		if s.needSnapshot {
			cur := m.vstore.Current()
			rel := cur.Rel(s.export)
			if rel == nil {
				err := fmt.Errorf("core: export %q is no longer fully materialized", s.export)
				s.failLocked(err)
				s.reg.forget(s.id)
				return SubFrame{}, false, err
			}
			s.needSnapshot = false
			s.delivered = cur.Seq()
			m.stats.subFrames.Add(1)
			m.obs.subFrames.Inc()
			return SubFrame{
				Kind: SubSnapshot, Export: s.export,
				First: cur.Seq(), Version: cur.Seq(),
				Stamp: cur.Stamp(), Reflect: cur.Reflect(),
				Snapshot: rel,
			}, true, nil
		}
		if len(s.queue) == 0 {
			return SubFrame{}, false, nil
		}
		f := s.queue[0]
		s.queue[0] = SubFrame{}
		s.queue = s.queue[1:]
		if len(s.queue) == 0 {
			s.queue = nil
			s.tailOwned = false
		}
		m.obs.subQueueDepth.Add(-1)
		if f.First != s.delivered+1 {
			// Continuity gap (a barrier publish slipped between frames):
			// applying f would silently skip versions, so resync instead.
			s.resyncLocked()
			continue
		}
		s.delivered = f.Version
		m.stats.subFrames.Add(1)
		m.obs.subFrames.Inc()
		return f, true, nil
	}
}

// Recv blocks until the next frame (or the subscription terminates).
func (s *Subscription) Recv() (SubFrame, error) {
	for {
		f, ok, err := s.TryRecv()
		if err != nil {
			return SubFrame{}, err
		}
		if ok {
			return f, nil
		}
		select {
		case <-s.signal:
		case <-s.done:
		}
	}
}

// subRegistry owns the mediator's subscriptions and the per-export frame
// rings that serve resume-from-version.
type subRegistry struct {
	m *Mediator

	mu     sync.Mutex
	nextID uint64
	subs   map[uint64]*Subscription
	// rings holds, per eligible export, the most recent delta frames in
	// ascending, dense version order.
	rings map[string][]SubFrame
	// eligible is the set of exports a subscriber may register for:
	// fully materialized exports of the current plan epoch. Recomputed on
	// barriers (the only time the plan changes).
	eligible map[string]bool
}

func newSubRegistry(m *Mediator, plan *vdp.VDP) *subRegistry {
	r := &subRegistry{
		m:     m,
		subs:  make(map[uint64]*Subscription),
		rings: make(map[string][]SubFrame),
	}
	r.eligible = eligibleExports(plan)
	return r
}

// eligibleExports lists the exports whose full state lives in the store —
// the only ones whose IUP delta stream reconstructs the export exactly.
func eligibleExports(plan *vdp.VDP) map[string]bool {
	out := make(map[string]bool)
	for _, name := range plan.Exports() {
		if plan.Node(name).FullyMaterialized() {
			out[name] = true
		}
	}
	return out
}

// publish fans a committed version out: one frame per eligible export
// (captured kernel delta, or empty), appended to the resume ring and
// offered to every matching subscriber. Called from the commit path with
// m.mu held, after the version is published; it never blocks on a
// subscriber.
func (r *subRegistry) publish(v *store.Version, captured map[string]*delta.RelDelta) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.eligible) == 0 {
		return
	}
	reflect := v.Reflect()
	for export := range r.eligible {
		d := captured[export]
		if d == nil {
			d = delta.NewRel(export)
		}
		f := SubFrame{
			Kind: SubDelta, Export: export,
			First: v.Seq(), Version: v.Seq(),
			Stamp: v.Stamp(), Reflect: reflect,
			Delta: d,
		}
		ring := append(r.rings[export], f)
		if len(ring) > subRingCap {
			copy(ring, ring[len(ring)-subRingCap:])
			ring = ring[:subRingCap]
		}
		r.rings[export] = ring
		for _, s := range r.subs {
			if s.export == export {
				s.offer(f)
			}
		}
	}
}

// barrier invalidates the delta streams after a publish the kernel did
// not produce (resync, re-annotation): rings are cleared, eligibility is
// recomputed against the current plan, subscribers on now-ineligible
// exports fail, and the rest are forced to snapshot-resync. Called with
// m.mu held.
func (r *subRegistry) barrier(reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rings = make(map[string][]SubFrame)
	r.eligible = eligibleExports(r.m.curVDP())
	for id, s := range r.subs {
		if !r.eligible[s.export] {
			s.mu.Lock()
			s.failLocked(fmt.Errorf("core: subscription barrier (%s): export %q is no longer fully materialized", reason, s.export))
			s.mu.Unlock()
			delete(r.subs, id)
			r.m.obs.subsActive.Add(-1)
			continue
		}
		s.mu.Lock()
		s.resyncLocked()
		s.mu.Unlock()
	}
}

// remove terminates and unregisters a subscription.
func (r *subRegistry) remove(s *Subscription, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.mu.Lock()
	wasLive := !s.closed
	s.failLocked(err)
	s.mu.Unlock()
	if _, ok := r.subs[s.id]; ok && wasLive {
		delete(r.subs, s.id)
		r.m.obs.subsActive.Add(-1)
	}
}

// forget unregisters a subscription that already failed itself (it holds
// sub.mu, so it cannot call remove). Safe to call with sub.mu held:
// lock order reg.mu → sub.mu is only for offers, and offers skip closed
// subscriptions, so taking reg.mu here cannot deadlock — forget is the
// exception that inverts the order, which is sound because it touches
// only the membership map, never another subscription's lock.
func (r *subRegistry) forget(id uint64) {
	// Deferred to a goroutine to keep the lock order strict: the caller
	// holds sub.mu, and reg.mu must never be acquired under it.
	m := r.m
	go func() {
		r.mu.Lock()
		if _, ok := r.subs[id]; ok {
			delete(r.subs, id)
			m.obs.subsActive.Add(-1)
		}
		r.mu.Unlock()
	}()
}

// active returns the live subscription count.
func (r *subRegistry) active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Subscribe registers a consumer for an export's delta stream. The
// export must be a fully materialized export of the current plan and the
// mediator must be initialized. With FromVersion > 0 and the resume ring
// still covering (FromVersion, current], delivery starts with the delta
// frames since FromVersion; otherwise (including FromVersion == 0) the
// first frame is a snapshot of the current version.
func (m *Mediator) Subscribe(export string, opts SubscribeOptions) (*Subscription, error) {
	if m.vstore.Current() == nil {
		return nil, fmt.Errorf("core: mediator not initialized")
	}
	maxQueue := opts.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 256
	}
	r := m.subs
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.eligible[export] {
		return nil, fmt.Errorf("core: export %q is not a fully materialized export of the current plan", export)
	}
	r.nextID++
	s := &Subscription{
		id: r.nextID, export: export, reg: r,
		maxQueue: maxQueue, maxLag: opts.MaxLag,
		signal: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	resumed := false
	if ring := r.rings[export]; opts.FromVersion > 0 && len(ring) > 0 {
		first, last := ring[0].Version, ring[len(ring)-1].Version
		if opts.FromVersion >= first-1 && opts.FromVersion <= last {
			s.delivered = opts.FromVersion
			for _, f := range ring {
				if f.Version > opts.FromVersion {
					s.queue = append(s.queue, f)
				}
			}
			if n := len(s.queue); n > 0 {
				m.obs.subQueueDepth.Add(int64(n))
				s.notifyLocked()
			}
			resumed = true
		}
	}
	if !resumed {
		s.needSnapshot = true
		s.notifyLocked()
		if opts.FromVersion > 0 {
			// The requested resume point fell off the ring (or never
			// existed): the reconnect degrades to a snapshot.
			m.stats.subResyncs.Add(1)
			m.obs.subResyncs.Inc()
		}
	}
	r.subs[s.id] = s
	m.obs.subsActive.Add(1)
	return s, nil
}

// ActiveSubscriptions reports the number of live subscriptions.
func (m *Mediator) ActiveSubscriptions() int { return m.subs.active() }
