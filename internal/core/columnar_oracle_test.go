package core

import (
	"fmt"
	"testing"

	"squirrel/internal/relation"
)

// The differential test oracle for the columnar data plane: the
// row-oriented backend is the reference implementation, and the blocks
// backend must be observationally identical to it on the same random plan
// and the same random update/query stream — the full transcript
// (published versions, store renderings, query answers and their
// consistency metadata) matches byte for byte. CI runs this under -race
// (the columnar-oracle job), which also exercises the interner and the
// shared immutable TupleMaps of published store versions.

// backendTranscript runs the differential workload with the given
// process-default relation backend. Every relation in the run — source
// states, materialized stores, deltas, temporaries — is created on bk.
func backendTranscript(t *testing.T, bk relation.Backend, seed int64, workers int) []string {
	t.Helper()
	prev := relation.DefaultBackend()
	relation.SetDefaultBackend(bk)
	defer relation.SetDefaultBackend(prev)
	return differentialTranscript(t, seed, workers)
}

// TestColumnarOracle: for each seeded random plan and workload, the rows
// transcript must equal the blocks transcript, on both the serial and the
// staged kernel (the staged×blocks case composes the two refactors).
func TestColumnarOracle(t *testing.T) {
	seeds := int64(30)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := backendTranscript(t, relation.Rows, seed, 0)
			for _, workers := range []int{0, 2} {
				got := backendTranscript(t, relation.Blocks, seed, workers)
				if len(got) != len(ref) {
					t.Fatalf("blocks workers=%d transcript has %d records, rows reference has %d",
						workers, len(got), len(ref))
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("blocks workers=%d transcript diverges from the rows reference at record %d:\n--- blocks ---\n%s\n--- rows ---\n%s",
							workers, i, got[i], ref[i])
					}
				}
			}
		})
	}
}
