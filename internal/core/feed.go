package core

import (
	"sort"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/store"
)

// This file is the mediator side of tiered federation (DESIGN.md §11):
// the commit feed that lets an adapter re-announce this mediator's
// committed versions as an autonomous source (internal/federate), and the
// Reflect-vector composition that translates an upstream answer's
// validity vector from tier coordinates (per downstream mediator) into
// base-source coordinates, so Theorem 7.1 consistency statements survive
// a hop.

// CommitFeed observes the mediator's publishes synchronously from inside
// the commit path. FeedCommit is called once per committed update
// transaction, in version order, with the published version and the
// kernel's captured per-node deltas (store-schema projected; exports
// absent from the map had an empty delta this transaction). FeedBarrier
// is called for every publish NOT produced by a delta on the previous
// version (a source resync or a re-annotation): the feed's consumers must
// treat their derived state as unusable and resynchronize from a
// snapshot.
//
// Concurrency: both methods run with the mediator's update mutex held, so
// they are mutually serialized and ordered exactly like the publishes
// they describe. Implementations must not call back into the mediator's
// transaction API (RunUpdateTransaction, ResyncSource, Reannotate) and
// must return quickly — the commit blocks until the feed returns.
type CommitFeed interface {
	FeedCommit(v *store.Version, deltas map[string]*delta.RelDelta)
	FeedBarrier(reason string, v *store.Version)
}

// SetCommitFeed installs the commit feed (nil to remove). At most one
// feed is supported; installing a second replaces the first. Safe to call
// concurrently with transactions: the swap happens under the update
// mutex, so a feed sees either all of a commit or none of it.
func (m *Mediator) SetCommitFeed(f CommitFeed) {
	m.mu.Lock()
	m.feed = f
	m.mu.Unlock()
}

// feedCommitLocked forwards a published update transaction to the commit
// feed. Requires mu.
func (m *Mediator) feedCommitLocked(v *store.Version, deltas map[string]*delta.RelDelta) {
	if m.feed != nil {
		m.feed.FeedCommit(v, deltas)
	}
}

// feedBarrierLocked forwards a barrier publish to the commit feed.
// Requires mu.
func (m *Mediator) feedBarrierLocked(reason string, v *store.Version) {
	if m.feed != nil {
		m.feed.FeedBarrier(reason, v)
	}
}

// TieredConn is an optional SourceConn extension implemented by
// connections to federated mediators (a downstream tier serving its
// exports through the source protocol). QueryMultiBase is QueryMulti
// plus the answering tier's ref′ vector at the answer's serialization
// instant, expressed in base-source coordinates — nil when the peer is a
// plain source. The mediator uses it to keep the per-source translation
// ring exact for polled states, not only announced ones.
type TieredConn interface {
	QueryMultiBase(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, clock.Vector, error)
}

// refMapEntry is one point of a tier's time-to-base-coordinates mapping:
// at tier time t, the tier's published state reflected base vector base.
type refMapEntry struct {
	t    clock.Time
	base clock.Vector
}

// refRingCap bounds the per-source translation ring. Entries are evicted
// oldest-first; a query pinned to a state older than every retained entry
// keeps its tier coordinate untranslated (see composeBaseReflect).
const refRingCap = 1024

// noteBaseReflectLocked records that src's state at tier time t reflects
// the given base vector. Entries arrive in (mostly) increasing t —
// announcements in commit order, poll instants monotone — so the ring is
// kept sorted with an append fast path. Requires qmu.
func (m *Mediator) noteBaseReflectLocked(src string, t clock.Time, base clock.Vector) {
	if base == nil {
		return
	}
	if m.refRing == nil {
		m.refRing = make(map[string][]refMapEntry)
	}
	ring := m.refRing[src]
	n := len(ring)
	if n == 0 || ring[n-1].t < t {
		ring = append(ring, refMapEntry{t: t, base: base.Clone()})
	} else {
		i := sort.Search(n, func(i int) bool { return ring[i].t >= t })
		if ring[i].t == t {
			return // already mapped; the first report wins
		}
		ring = append(ring, refMapEntry{})
		copy(ring[i+1:], ring[i:])
		ring[i] = refMapEntry{t: t, base: base.Clone()}
	}
	if len(ring) > refRingCap {
		ring = append(ring[:0], ring[len(ring)-refRingCap:]...)
	}
	m.refRing[src] = ring
}

// noteBaseReflect is noteBaseReflectLocked taking qmu.
func (m *Mediator) noteBaseReflect(src string, t clock.Time, base clock.Vector) {
	m.qmu.Lock()
	m.noteBaseReflectLocked(src, t, base)
	m.qmu.Unlock()
}

// composeBaseReflect translates a query's Reflect vector into base-source
// coordinates. For each component (src, t): if src has a translation ring
// (it is a federated tier), the entry with the greatest time ≤ t
// contributes its base vector — exact, because every tier coordinate a
// query can report (an announcement time or a poll instant) inserted an
// entry at exactly that time before the query completed; components
// without a ring (plain sources) pass through unchanged. Overlapping base
// components merge by maximum, which is sound because vectors over
// distinct tiers cover disjoint base sources in a tree. A component older
// than every retained ring entry (evicted: a very long-pinned query)
// keeps its tier coordinate, which is still a valid per-source time — in
// the tier's own clock — just not translated.
func (m *Mediator) composeBaseReflect(ref clock.Vector) clock.Vector {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	if len(m.refRing) == 0 {
		return ref.Clone()
	}
	out := make(clock.Vector, len(ref))
	for src, t := range ref {
		ring := m.refRing[src]
		i := sort.Search(len(ring), func(i int) bool { return ring[i].t > t })
		if i == 0 {
			if cur := out[src]; t > cur {
				out[src] = t
			}
			continue
		}
		for b, bt := range ring[i-1].base {
			if bt > out[b] {
				out[b] = bt
			}
		}
	}
	return out
}
