package core

import (
	"errors"
	"testing"

	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
)

// A resync that fails because the source is still unreachable is a
// transient condition — retrying next tick is the right move — and must
// NOT be classified as overtaken or count toward ResyncStuck.
func TestResyncStillDownNotOvertaken(t *testing.T) {
	e, flaky := flakyEnv(t, 0, nil)
	if err := e.med.Initialize(); err != nil {
		t.Fatal(err)
	}
	e.med.QuarantineSource("db1", "test: simulated announcement gap")
	flaky.failures = flaky.calls + 1

	err := e.med.ResyncSource("db1")
	if err == nil {
		t.Fatalf("resync with failing poll must error")
	}
	if errors.Is(err, ErrResyncOvertaken) {
		t.Fatalf("source-down failure misclassified as overtaken: %v", err)
	}
	st := e.med.Stats()
	if h := st.Sources["db1"]; h.ResyncOvertaken != 0 || h.ResyncStuck {
		t.Errorf("down-source failure must not count toward ResyncStuck: overtaken=%d stuck=%v",
			h.ResyncOvertaken, h.ResyncStuck)
	}
	if st.ResyncsStuck != 0 {
		t.Errorf("ResyncsStuck = %d, want 0", st.ResyncsStuck)
	}

	// The source recovers; the retry succeeds and lifts the quarantine.
	if err := e.med.ResyncSource("db1"); err != nil {
		t.Fatalf("retry after recovery: %v", err)
	}
	if q := e.med.QuarantinedSources(); len(q) != 0 {
		t.Errorf("quarantine must lift after successful resync: %v", q)
	}
}

// A resync whose snapshot poll is overtaken by newer penned announcements
// will never converge on the retry cadence — consecutive occurrences must
// be classified as ErrResyncOvertaken and flag ResyncStuck, and a later
// success must clear both.
func TestResyncOvertakenClassifiedAndCleared(t *testing.T) {
	e, _ := flakyEnv(t, 0, nil)
	if err := e.med.Initialize(); err != nil {
		t.Fatal(err)
	}
	e.med.QuarantineSource("db1", "test: simulated announcement gap")
	// Pen an announcement stamped well past any near-term poll instant:
	// every resync's snapshot lands before it, so the snapshot cannot
	// vouch for the commits the gap may have lost after it.
	future := e.clk.Now() + 1000
	fd := delta.New()
	fd.Insert("R", relation.T(9, 90, 1, 100))
	e.med.OnAnnouncement(source.Announcement{Source: "db1", Time: future, Delta: fd})

	for i := 1; i <= resyncStuckThreshold; i++ {
		err := e.med.ResyncSource("db1")
		if !errors.Is(err, ErrResyncOvertaken) {
			t.Fatalf("attempt %d: err = %v, want ErrResyncOvertaken", i, err)
		}
		h := e.med.Stats().Sources["db1"]
		if h.ResyncOvertaken != i {
			t.Errorf("attempt %d: ResyncOvertaken = %d", i, h.ResyncOvertaken)
		}
		if want := i >= resyncStuckThreshold; h.ResyncStuck != want {
			t.Errorf("attempt %d: ResyncStuck = %v, want %v", i, h.ResyncStuck, want)
		}
	}
	if got := e.med.Stats().ResyncsStuck; got != 1 {
		t.Errorf("ResyncsStuck = %d, want 1", got)
	}

	// Once the clock passes the penned announcement, the next snapshot
	// poll covers it: the resync converges and the condition clears.
	for e.clk.Now() <= future {
	}
	if err := e.med.ResyncSource("db1"); err != nil {
		t.Fatalf("resync after clock passed the pen: %v", err)
	}
	st := e.med.Stats()
	if h := st.Sources["db1"]; h.ResyncOvertaken != 0 || h.ResyncStuck {
		t.Errorf("success must clear the condition: overtaken=%d stuck=%v",
			h.ResyncOvertaken, h.ResyncStuck)
	}
	if st.ResyncsStuck != 0 {
		t.Errorf("ResyncsStuck after success = %d, want 0", st.ResyncsStuck)
	}
	if q := e.med.QuarantinedSources(); len(q) != 0 {
		t.Errorf("quarantine must lift: %v", q)
	}
}
