package core

import (
	"fmt"
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// flakyConn fails its first N QueryMulti calls, then delegates.
type flakyConn struct {
	inner    SourceConn
	failures int
	calls    int
}

func (f *flakyConn) Name() string { return f.inner.Name() }

func (f *flakyConn) QueryMulti(specs []source.QuerySpec) ([]*relation.Relation, clock.Time, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, 0, fmt.Errorf("injected network failure %d", f.calls)
	}
	return f.inner.QueryMulti(specs)
}

// flakyEnv wires the paper fixture with a flaky db1 connection (R' virtual
// so db1 gets polled during ΔS processing and cold queries).
func flakyEnv(t *testing.T, failures int, annT vdp.Annotation) (*testEnv, *flakyConn) {
	t.Helper()
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db2 := source.NewDB("db2", clk)
	r := relation.NewSet(rSchema())
	r.Insert(relation.T(1, 10, 5, 100))
	r.Insert(relation.T(2, 20, 7, 100))
	s := relation.NewSet(sSchema())
	s.Insert(relation.T(10, 1, 20))
	s.Insert(relation.T(20, 2, 40))
	db1.LoadRelation(r)
	db2.LoadRelation(s)
	rp := relation.MustSchema("R'", []relation.Attribute{
		{Name: "r1", Type: relation.KindInt}, {Name: "r2", Type: relation.KindInt},
		{Name: "r3", Type: relation.KindInt}}, "r1")
	plan := paperPlan(t, vdp.AllVirtual(rp), nil, annT)
	flaky := &flakyConn{inner: LocalSource{DB: db1}, failures: failures}
	rec := trace.NewRecorder()
	med, err := New(Config{
		VDP:      plan,
		Sources:  map[string]SourceConn{"db1": flaky, "db2": LocalSource{DB: db2}},
		Clock:    clk,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ConnectLocal(med, db1)
	ConnectLocal(med, db2)
	return &testEnv{clk: clk, db1: db1, db2: db2, med: med, rec: rec, vdp_: plan}, flaky
}

func TestInitializeFailureIsRetryable(t *testing.T) {
	e, _ := flakyEnv(t, 1, nil)
	if err := e.med.Initialize(); err == nil {
		t.Fatalf("first initialize must fail")
	}
	// Second attempt succeeds (the failure consumed the flaky budget).
	if err := e.med.Initialize(); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if e.med.StoreSnapshot("T") == nil {
		t.Fatalf("store empty after retried initialize")
	}
}

func TestUpdateTransactionPollFailureLeavesQueueIntact(t *testing.T) {
	e, flaky := flakyEnv(t, 0, nil)
	if err := e.med.Initialize(); err != nil {
		t.Fatal(err)
	}
	// ΔS forces a poll of db1 (R' virtual). Make the NEXT poll fail.
	flaky.failures = flaky.calls + 1
	d := delta.New()
	d.Insert("S", relation.T(40, 4, 10))
	e.db2.MustApply(d)

	if _, err := e.med.RunUpdateTransaction(); err == nil {
		t.Fatalf("transaction with failing poll must error")
	}
	// Nothing was drained; the store is unchanged; a retry succeeds.
	if e.med.QueueLen() != 1 {
		t.Fatalf("queue must be intact after failure: %d", e.med.QueueLen())
	}
	before := e.med.StoreSnapshot("T")
	if before.Contains(relation.T(0, 0, 40, 4)) {
		t.Fatalf("partial effects leaked")
	}
	ran, err := e.med.RunUpdateTransaction()
	if err != nil || !ran {
		t.Fatalf("retry: ran=%v err=%v", ran, err)
	}
	truth := e.groundTruth(t)
	if got := e.med.StoreSnapshot("T"); !got.Equal(truth["T"]) {
		t.Fatalf("after retry:\n%swant\n%s", got, truth["T"])
	}
}

func TestQueryPollFailureDoesNotRecordTransaction(t *testing.T) {
	// T hybrid with r3 virtual: cold queries must poll db1.
	e, flaky := flakyEnv(t, 0, vdp.Ann([]string{"r1", "s1", "s2"}, []string{"r3"}))
	if err := e.med.Initialize(); err != nil {
		t.Fatal(err)
	}
	_, qBefore := e.rec.Len()
	flaky.failures = flaky.calls + 1
	// A cold query over virtual data must poll db1 — and fail cleanly.
	if _, err := e.med.QueryOpts("T", []string{"r3"}, nil, QueryOptions{KeyBased: KeyBasedOff}); err == nil {
		t.Fatalf("query with failing poll must error")
	}
	_, qAfter := e.rec.Len()
	if qAfter != qBefore {
		t.Fatalf("failed query must not be recorded as a transaction")
	}
	// Subsequent query works.
	if _, err := e.med.QueryOpts("T", []string{"r3"}, nil, QueryOptions{}); err != nil {
		t.Fatalf("retry query: %v", err)
	}
}
