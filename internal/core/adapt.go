package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"squirrel/internal/metrics"
	"squirrel/internal/vdp"
)

// This file closes the §5.3 loop online: a ProfileCollector derives a
// live vdp.WorkloadProfile from the mediator's own instruments
// (observe.go), and an AdaptController periodically feeds it to the
// advisor, damps the advice with hysteresis and a cooldown, and applies
// surviving flips through the re-annotation transaction (reannotate.go).
// The paper presents the materialized/virtual trade-off as a design-time
// choice informed by workload heuristics; here the same heuristics run
// against the workload the mediator is actually serving.

// Default AdaptConfig values, exported so the CLI flags can share them.
const (
	// DefAdaptInterval is the default controller period.
	DefAdaptInterval = 30 * time.Second
	// DefAdaptHysteresis is how many consecutive rounds the advisor must
	// repeat the same flip set before it is applied.
	DefAdaptHysteresis = 2
	// DefAdaptMinQueries is the minimum number of query transactions a
	// window must contain before its profile is trusted.
	DefAdaptMinQueries = 10
)

// ProfileCollector turns the mediator's metrics into windowed
// vdp.WorkloadProfiles: each Collect reports the traffic since the
// previous Collect (attribute access frequencies normalized by the
// window's query count, per-source announcement shares) and starts a new
// window. Peek reports the same without ending the window. Safe for
// concurrent use.
type ProfileCollector struct {
	med *Mediator

	mu sync.Mutex
	// Baselines: instrument values already consumed by a previous window.
	baseQueries int64
	baseAttr    map[string]map[string]int64 // export → attr → consumed count
	baseAnn     map[string]int64            // source → consumed count
}

// NewProfileCollector builds a collector over the mediator's instruments.
// The first window starts at the mediator's current counter values as
// seen now — construct the collector when observation should begin.
func NewProfileCollector(m *Mediator) *ProfileCollector {
	c := &ProfileCollector{
		med:         m,
		baseQueries: m.obs.queryCount.Value(),
		baseAttr:    make(map[string]map[string]int64),
		baseAnn:     make(map[string]int64),
	}
	for export, byAttr := range m.obs.attrAccess {
		c.baseAttr[export] = make(map[string]int64, len(byAttr))
		for a, ctr := range byAttr {
			c.baseAttr[export][a] = ctr.Value()
		}
	}
	for src, ctr := range m.obs.announcements {
		c.baseAnn[src] = ctr.Value()
	}
	return c
}

// Peek returns the profile of the window accumulated so far and its query
// count, without starting a new window.
func (c *ProfileCollector) Peek() (vdp.WorkloadProfile, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.profileLocked(false)
}

// Collect returns the profile of the window accumulated so far and its
// query count, and starts a new window.
func (c *ProfileCollector) Collect() (vdp.WorkloadProfile, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.profileLocked(true)
}

// PendingQueries reports how many query transactions the current window
// has accumulated.
func (c *ProfileCollector) PendingQueries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.med.obs.queryCount.Value() - c.baseQueries
}

// profileLocked computes the window profile; consume advances the
// baselines to the values just read. Requires mu.
func (c *ProfileCollector) profileLocked(consume bool) (vdp.WorkloadProfile, int64) {
	obs := c.med.obs
	queries := obs.queryCount.Value() - c.baseQueries

	// AccessFreq is keyed by bare attribute name (the advisor's contract):
	// touches of a name are summed across exports, normalized by the
	// window's query count, and capped at 1.
	access := make(map[string]float64)
	for export, byAttr := range obs.attrAccess {
		for a, ctr := range byAttr {
			v := ctr.Value()
			d := v - c.baseAttr[export][a]
			if d > 0 {
				access[a] += float64(d)
			}
			if consume {
				c.baseAttr[export][a] = v
			}
		}
	}
	if queries > 0 {
		for a, n := range access {
			f := n / float64(queries)
			if f > 1 {
				f = 1
			}
			access[a] = f
		}
	} else {
		for a := range access {
			access[a] = 0
		}
	}

	// UpdateShare: each source's fraction of the window's announcement
	// arrivals (the full stream, including announcements the mediator
	// dropped as irrelevant — churn is churn).
	share := make(map[string]float64)
	var total int64
	deltas := make(map[string]int64, len(obs.announcements))
	for src, ctr := range obs.announcements {
		v := ctr.Value()
		d := v - c.baseAnn[src]
		if d < 0 {
			d = 0
		}
		deltas[src] = d
		total += d
		if consume {
			c.baseAnn[src] = v
		}
	}
	for src, d := range deltas {
		if total > 0 {
			share[src] = float64(d) / float64(total)
		} else {
			share[src] = 0
		}
	}

	if consume {
		c.baseQueries += queries
	}
	return vdp.WorkloadProfile{AccessFreq: access, UpdateShare: share}, queries
}

// AdaptConfig tunes an AdaptController. The zero value is usable: default
// interval, hysteresis, and minimum window, automatic apply, default
// advisor thresholds.
type AdaptConfig struct {
	// Interval is the controller loop period (<= 0 means DefAdaptInterval).
	Interval time.Duration
	// Cooldown is the minimum wall time between applied re-annotations
	// (<= 0 means twice the interval). Hysteresis guards against a
	// flapping advisor; the cooldown additionally bounds how often the
	// store can be re-laid-out even when the advice legitimately keeps
	// changing.
	Cooldown time.Duration
	// HysteresisRounds is how many consecutive rounds the advisor must
	// propose the same flip set before it is applied (<= 0 means
	// DefAdaptHysteresis).
	HysteresisRounds int
	// MinQueries is the minimum query count a window needs before its
	// profile is trusted; smaller windows are left to keep accumulating
	// (<= 0 means DefAdaptMinQueries).
	MinQueries int64
	// Manual makes the controller observe-and-report only: loop rounds
	// never apply, and switches happen through Readvise(false) or
	// Mediator.Reannotate.
	Manual bool
	// HotAttrThreshold / ChurnThreshold override the advisor defaults
	// (vdp.WorkloadProfile semantics: nil means default, Threshold(0) is
	// an explicit zero).
	HotAttrThreshold *float64
	ChurnThreshold   *float64
}

func (c AdaptConfig) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return DefAdaptInterval
}

func (c AdaptConfig) cooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 2 * c.interval()
}

func (c AdaptConfig) hysteresis() int {
	if c.HysteresisRounds > 0 {
		return c.HysteresisRounds
	}
	return DefAdaptHysteresis
}

func (c AdaptConfig) minQueries() int64 {
	if c.MinQueries > 0 {
		return c.MinQueries
	}
	return DefAdaptMinQueries
}

// AdaptDecision is one controller round's outcome: the observed window,
// the advisor's proposal, and what happened to it.
type AdaptDecision struct {
	// Profile is the windowed workload profile the advisor saw (with the
	// controller's thresholds filled in).
	Profile vdp.WorkloadProfile
	// Queries is the window's query-transaction count.
	Queries int64
	// Flips are the attribute changes the advice implies against the live
	// annotation (empty when the advisor agrees with it).
	Flips []AnnotationFlip
	// Reasons are the advisor's prose justifications.
	Reasons []string
	// Applied reports whether the flips were applied this round.
	Applied bool
	// Skipped is why nothing was applied ("" when Applied, or when there
	// was nothing to apply).
	Skipped string
}

// AdaptController runs the observe → advise → apply loop against one
// mediator. Construct with NewAdaptController; drive it with Start/Stop
// (the background loop), Step (one gated round), or Readvise (an
// operator-triggered round that bypasses the damping).
type AdaptController struct {
	med *Mediator
	cfg AdaptConfig
	col *ProfileCollector

	mu            sync.Mutex
	stop          chan struct{}
	done          chan struct{}
	pendingKey    string // canonical flip set awaiting hysteresis confirmation
	pendingRounds int
	lastApplied   time.Time
	last          *AdaptDecision
	rounds        int
	applied       int
}

// NewAdaptController builds a controller over the mediator. Observation
// starts now (the first window opens at the current counter values).
func NewAdaptController(m *Mediator, cfg AdaptConfig) *AdaptController {
	return &AdaptController{med: m, cfg: cfg, col: NewProfileCollector(m)}
}

// Collector returns the controller's profile collector (shared windows:
// a Collect through it ends the window the controller would otherwise
// consume).
func (c *AdaptController) Collector() *ProfileCollector { return c.col }

// Start launches the periodic loop. It is an error to start a running
// controller.
func (c *AdaptController) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return fmt.Errorf("core: adapt controller already started")
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.loop(c.stop, c.done)
	return nil
}

// Stop terminates the loop (no final round). Stopping a never-started or
// already-stopped controller is a no-op.
func (c *AdaptController) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

func (c *AdaptController) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(c.cfg.interval())
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if _, err := c.Step(); err != nil {
				c.med.obs.reg.Emit(metrics.Event{
					Type: metrics.EventAdapt, Subject: "error", Err: err.Error(),
				})
			}
		}
	}
}

// Step runs one gated controller round: skip if the window is too thin,
// otherwise consume it, advise, and apply the flips once they have
// survived hysteresis and cooldown (and the controller is not Manual).
func (c *AdaptController) Step() (*AdaptDecision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	if q := c.col.PendingQueries(); q < c.cfg.minQueries() {
		// Too few queries to trust the access frequencies; leave the
		// window accumulating rather than consuming a noisy one.
		d := &AdaptDecision{
			Queries: q,
			Skipped: fmt.Sprintf("window has %d queries (< %d): keep observing", q, c.cfg.minQueries()),
		}
		c.recordLocked(d)
		return d, nil
	}

	d, anns, err := c.adviseLocked(true)
	if err != nil {
		return nil, err
	}
	if len(d.Flips) == 0 {
		c.pendingKey, c.pendingRounds = "", 0
		d.Skipped = "advice matches the live annotation"
		c.recordLocked(d)
		return d, nil
	}
	key := flipKey(d.Flips)
	if key == c.pendingKey {
		c.pendingRounds++
	} else {
		c.pendingKey, c.pendingRounds = key, 1
	}
	if c.pendingRounds < c.cfg.hysteresis() {
		d.Skipped = fmt.Sprintf("hysteresis: flip set stable for %d/%d rounds", c.pendingRounds, c.cfg.hysteresis())
		c.recordLocked(d)
		return d, nil
	}
	if since := time.Since(c.lastApplied); !c.lastApplied.IsZero() && since < c.cfg.cooldown() {
		d.Skipped = fmt.Sprintf("cooldown: %s since last switch (< %s)", since.Round(time.Second), c.cfg.cooldown())
		c.recordLocked(d)
		return d, nil
	}
	if c.cfg.Manual {
		d.Skipped = "manual mode: apply with readvise or Reannotate"
		c.recordLocked(d)
		return d, nil
	}
	return c.applyLocked(d, anns)
}

// Readvise runs one operator-triggered round. dryRun previews: the window
// is peeked (not consumed) and nothing changes. Otherwise the window is
// consumed and the advice applied immediately — hysteresis, cooldown, and
// Manual are deliberately bypassed; the operator asked.
func (c *AdaptController) Readvise(dryRun bool) (*AdaptDecision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dryRun {
		d, _, err := c.adviseLocked(false)
		if err != nil {
			return nil, err
		}
		d.Skipped = "dry run"
		return d, nil
	}
	d, anns, err := c.adviseLocked(true)
	if err != nil {
		return nil, err
	}
	if len(d.Flips) == 0 {
		d.Skipped = "advice matches the live annotation"
		c.recordLocked(d)
		return d, nil
	}
	return c.applyLocked(d, anns)
}

// adviseLocked computes the window profile (consuming it or not), runs
// the advisor against the live plan, and diffs the advice into flips.
// Requires mu.
func (c *AdaptController) adviseLocked(consume bool) (*AdaptDecision, map[string]vdp.Annotation, error) {
	var profile vdp.WorkloadProfile
	var queries int64
	if consume {
		profile, queries = c.col.Collect()
	} else {
		profile, queries = c.col.Peek()
	}
	profile.HotAttrThreshold = c.cfg.HotAttrThreshold
	profile.ChurnThreshold = c.cfg.ChurnThreshold
	d := &AdaptDecision{Profile: profile, Queries: queries}

	v := c.med.VDP()
	advice := v.Advise(profile)
	d.Reasons = advice.Reasons
	// Build (and validate) the advised plan only to diff it — Reannotate
	// below re-derives it under txnMu against the then-current epoch.
	newV, err := v.Reannotate(advice.Annotations)
	if err != nil {
		return nil, nil, err
	}
	d.Flips = diffAnnotations(v, newV)
	return d, advice.Annotations, nil
}

// applyLocked applies the advice through the re-annotation transaction
// and records the round. Requires mu.
func (c *AdaptController) applyLocked(d *AdaptDecision, anns map[string]vdp.Annotation) (*AdaptDecision, error) {
	flips, err := c.med.Reannotate(anns)
	if err != nil {
		return nil, err
	}
	d.Flips = flips
	d.Applied = true
	c.pendingKey, c.pendingRounds = "", 0
	c.lastApplied = time.Now()
	c.applied++
	c.recordLocked(d)
	return d, nil
}

// recordLocked stores the round outcome and emits its event. Requires mu.
func (c *AdaptController) recordLocked(d *AdaptDecision) {
	c.rounds++
	c.last = d
	ev := metrics.Event{
		Type:    metrics.EventAdapt,
		Subject: "observed",
		Fields:  map[string]int64{"queries": d.Queries, "flips": int64(len(d.Flips))},
	}
	if d.Applied {
		ev.Subject = "applied " + flipKey(d.Flips)
	} else if d.Skipped != "" {
		ev.Err = d.Skipped
	}
	c.med.obs.reg.Emit(ev)
}

// LastDecision returns the most recent round's outcome (nil before any).
func (c *AdaptController) LastDecision() *AdaptDecision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Rounds reports how many rounds the controller has recorded; Applied how
// many of them applied a re-annotation.
func (c *AdaptController) Rounds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds
}

// Applied reports how many rounds applied a re-annotation.
func (c *AdaptController) Applied() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// flipKey canonicalizes a flip set for hysteresis comparison.
func flipKey(flips []AnnotationFlip) string {
	parts := make([]string, len(flips))
	for i, f := range flips {
		parts[i] = f.String()
	}
	return strings.Join(parts, ", ")
}
