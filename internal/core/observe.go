package core

import (
	"time"

	"squirrel/internal/metrics"
	"squirrel/internal/vdp"
)

// observe.go wires the mediator into internal/metrics. All instruments
// are resolved once at construction and cached here, so hot paths touch
// only an atomic (counters, gauges) or one short mutex-protected
// critical section (histograms) — the registry lock is never on a
// steady-state path. Event emission goes to the registry's bounded ring
// buffer; its mutex is a strict leaf (the log never acquires another
// lock), so emitting while holding qmu or mu cannot deadlock.

// Metric family names exposed on /metrics. Kept as constants so the
// smoke tests and the CLI renderer spell them identically.
const (
	MetricUpdateTxnSeconds    = "squirrel_update_txn_seconds" // labeled phase=prepare|polls|propagate|commit|total
	MetricUpdateTxnsTotal     = "squirrel_update_txns_total"  // committed update transactions
	MetricUpdateTxnRetries    = "squirrel_update_txn_retries_total"
	MetricKernelStageSeconds  = "squirrel_kernel_stage_seconds"    // labeled phase=apply|rules|total
	MetricSourcePollSeconds   = "squirrel_source_poll_seconds"     // labeled source=...,outcome=ok|error
	MetricBreakerFastFails    = "squirrel_breaker_fastfails_total" // labeled source=...
	MetricCompensationSeconds = "squirrel_compensation_seconds"
	MetricQuerySeconds        = "squirrel_query_seconds" // labeled path=fast|polling
	MetricQueryErrors         = "squirrel_query_errors_total"
	MetricVersionAgeTicks     = "squirrel_query_version_age_ticks" // logical clock distance commit − version stamp
	MetricQueueLen            = "squirrel_queue_len"
	MetricFlushSeconds        = "squirrel_flush_seconds" // runtime flushAll duration
	// Adaptive-annotation instruments (adapt.go): per-export-attribute
	// query touch counts and the total query count they are normalized
	// by, per-source announcement arrivals (the update-share signal), and
	// applied annotation switches.
	MetricQueryTxnsTotal          = "squirrel_query_txns_total"
	MetricAttrAccessTotal         = "squirrel_query_attr_access_total" // labeled export=...,attr=...
	MetricAnnouncementsTotal      = "squirrel_announcements_total"     // labeled source=...
	MetricAnnotationSwitchesTotal = "squirrel_annotation_switches_total"
	// Subscription instruments (subscribe.go): live subscription count,
	// aggregate undelivered-frame depth across all queues, frames
	// delivered, coalesces under backpressure, MaxLag queue drops, and
	// forced snapshot resyncs.
	MetricSubscribersActive = "squirrel_subscribers_active"
	MetricSubQueueDepth     = "squirrel_sub_queue_depth"
	MetricSubFramesTotal    = "squirrel_sub_frames_total"
	MetricSubCoalescesTotal = "squirrel_sub_coalesces_total"
	MetricSubLagDropsTotal  = "squirrel_sub_lag_drops_total"
	MetricSubResyncsTotal   = "squirrel_sub_resyncs_total"
)

// mediatorObs caches the mediator's instruments. Per-source series are
// pre-resolved for the fixed source set; the maps are read-only after
// construction.
type mediatorObs struct {
	reg *metrics.Registry

	txnPrepare   *metrics.Histogram
	txnPolls     *metrics.Histogram
	txnPropagate *metrics.Histogram
	txnCommit    *metrics.Histogram
	txnTotal     *metrics.Histogram
	txnsTotal    *metrics.Counter
	txnRetries   *metrics.Counter

	stageApply *metrics.Histogram
	stageRules *metrics.Histogram
	stageTotal *metrics.Histogram

	compensation *metrics.Histogram

	queryFast    *metrics.Histogram
	queryPolling *metrics.Histogram
	queryErrors  *metrics.Counter
	versionAge   *metrics.Histogram

	queueLen *metrics.Gauge

	pollOK    map[string]*metrics.Histogram
	pollErr   map[string]*metrics.Histogram
	fastFails map[string]*metrics.Counter

	// Adaptive-annotation signal instruments: per-source announcement
	// arrivals, per-export-attribute query touches (keyed export → attr;
	// schemas are fixed even across re-annotation, so the nested maps are
	// read-only after construction), the query count they are normalized
	// by, and applied annotation switches.
	announcements map[string]*metrics.Counter
	attrAccess    map[string]map[string]*metrics.Counter
	queryCount    *metrics.Counter
	annSwitches   *metrics.Counter

	// Subscription instruments (subscribe.go).
	subsActive    *metrics.Gauge
	subQueueDepth *metrics.Gauge
	subFrames     *metrics.Counter
	subCoalesces  *metrics.Counter
	subLagDrops   *metrics.Counter
	subResyncs    *metrics.Counter
}

func newMediatorObs(reg *metrics.Registry, plan *vdp.VDP) *mediatorObs {
	if reg == nil {
		reg = metrics.NewRegistry(0)
	}
	sources := plan.Sources()
	txnHist := func(phase string) *metrics.Histogram {
		return reg.Histogram(metrics.SeriesName(MetricUpdateTxnSeconds, "phase", phase), metrics.DefLatencyBuckets)
	}
	stageHist := func(phase string) *metrics.Histogram {
		return reg.Histogram(metrics.SeriesName(MetricKernelStageSeconds, "phase", phase), metrics.DefLatencyBuckets)
	}
	o := &mediatorObs{
		reg:           reg,
		txnPrepare:    txnHist("prepare"),
		txnPolls:      txnHist("polls"),
		txnPropagate:  txnHist("propagate"),
		txnCommit:     txnHist("commit"),
		txnTotal:      txnHist("total"),
		txnsTotal:     reg.Counter(MetricUpdateTxnsTotal),
		txnRetries:    reg.Counter(MetricUpdateTxnRetries),
		stageApply:    stageHist("apply"),
		stageRules:    stageHist("rules"),
		stageTotal:    stageHist("total"),
		compensation:  reg.Histogram(MetricCompensationSeconds, metrics.DefLatencyBuckets),
		queryFast:     reg.Histogram(metrics.SeriesName(MetricQuerySeconds, "path", "fast"), metrics.DefLatencyBuckets),
		queryPolling:  reg.Histogram(metrics.SeriesName(MetricQuerySeconds, "path", "polling"), metrics.DefLatencyBuckets),
		queryErrors:   reg.Counter(MetricQueryErrors),
		versionAge:    reg.Histogram(MetricVersionAgeTicks, metrics.DefTickBuckets),
		queueLen:      reg.Gauge(MetricQueueLen),
		pollOK:        make(map[string]*metrics.Histogram, len(sources)),
		pollErr:       make(map[string]*metrics.Histogram, len(sources)),
		fastFails:     make(map[string]*metrics.Counter, len(sources)),
		announcements: make(map[string]*metrics.Counter, len(sources)),
		attrAccess:    make(map[string]map[string]*metrics.Counter),
		queryCount:    reg.Counter(MetricQueryTxnsTotal),
		annSwitches:   reg.Counter(MetricAnnotationSwitchesTotal),
		subsActive:    reg.Gauge(MetricSubscribersActive),
		subQueueDepth: reg.Gauge(MetricSubQueueDepth),
		subFrames:     reg.Counter(MetricSubFramesTotal),
		subCoalesces:  reg.Counter(MetricSubCoalescesTotal),
		subLagDrops:   reg.Counter(MetricSubLagDropsTotal),
		subResyncs:    reg.Counter(MetricSubResyncsTotal),
	}
	for _, src := range sources {
		o.pollOK[src] = reg.Histogram(metrics.SeriesName(MetricSourcePollSeconds, "source", src, "outcome", "ok"), metrics.DefLatencyBuckets)
		o.pollErr[src] = reg.Histogram(metrics.SeriesName(MetricSourcePollSeconds, "source", src, "outcome", "error"), metrics.DefLatencyBuckets)
		o.fastFails[src] = reg.Counter(metrics.SeriesName(MetricBreakerFastFails, "source", src))
		o.announcements[src] = reg.Counter(metrics.SeriesName(MetricAnnouncementsTotal, "source", src))
	}
	for _, name := range plan.Exports() {
		n := plan.Node(name)
		byAttr := make(map[string]*metrics.Counter, n.Schema.Arity())
		for _, a := range n.Schema.AttrNames() {
			byAttr[a] = reg.Counter(metrics.SeriesName(MetricAttrAccessTotal, "export", name, "attr", a))
		}
		o.attrAccess[name] = byAttr
	}
	return o
}

// noteQuery bumps the adaptive-annotation workload signal for one query
// transaction: the per-attribute touch counters of the export it read and
// the query count they are normalized by. attrs is the requirement's
// closed attribute list (projection plus condition attributes).
func (o *mediatorObs) noteQuery(export string, attrs []string) {
	o.queryCount.Inc()
	byAttr := o.attrAccess[export]
	for _, a := range attrs {
		if c := byAttr[a]; c != nil {
			c.Inc()
		}
	}
}

// observePollAttempt records one source round trip's latency under its
// outcome series and emits a poll event for failures (success polls are
// summarized by the per-transaction events; failures are rare and worth
// a line each).
func (o *mediatorObs) observePollAttempt(src string, start time.Time, err error) {
	d := time.Since(start)
	if err == nil {
		if h := o.pollOK[src]; h != nil {
			h.Observe(d.Seconds())
		}
		return
	}
	if h := o.pollErr[src]; h != nil {
		h.Observe(d.Seconds())
	}
	o.reg.Emit(metrics.Event{Type: metrics.EventPoll, Subject: src, Dur: d, Err: err.Error()})
}

// observeBreaker emits a breaker-transition event when the state changed
// across one breaker interaction.
func (o *mediatorObs) observeBreaker(src, before, after string, trips uint64) {
	if before == after {
		return
	}
	o.reg.Emit(metrics.Event{
		Type:    metrics.EventBreaker,
		Subject: src + " " + before + "->" + after,
		Fields:  map[string]int64{"trips": int64(trips)},
	})
}

// Metrics returns the mediator's metrics registry. Always non-nil: when
// Config.Metrics is unset the mediator creates a private registry, so
// instrumentation is unconditional (its cost is the overhead budget
// DESIGN.md documents, not a mode).
func (m *Mediator) Metrics() *metrics.Registry { return m.obs.reg }

// MetricsSnapshot captures every instrument and the retained events; see
// metrics.Registry.Snapshot for the consistency contract.
func (m *Mediator) MetricsSnapshot() metrics.Snapshot { return m.obs.reg.Snapshot() }
