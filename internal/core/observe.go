package core

import (
	"time"

	"squirrel/internal/metrics"
)

// observe.go wires the mediator into internal/metrics. All instruments
// are resolved once at construction and cached here, so hot paths touch
// only an atomic (counters, gauges) or one short mutex-protected
// critical section (histograms) — the registry lock is never on a
// steady-state path. Event emission goes to the registry's bounded ring
// buffer; its mutex is a strict leaf (the log never acquires another
// lock), so emitting while holding qmu or mu cannot deadlock.

// Metric family names exposed on /metrics. Kept as constants so the
// smoke tests and the CLI renderer spell them identically.
const (
	MetricUpdateTxnSeconds    = "squirrel_update_txn_seconds" // labeled phase=prepare|polls|propagate|commit|total
	MetricUpdateTxnsTotal     = "squirrel_update_txns_total"  // committed update transactions
	MetricUpdateTxnRetries    = "squirrel_update_txn_retries_total"
	MetricKernelStageSeconds  = "squirrel_kernel_stage_seconds"    // labeled phase=apply|rules|total
	MetricSourcePollSeconds   = "squirrel_source_poll_seconds"     // labeled source=...,outcome=ok|error
	MetricBreakerFastFails    = "squirrel_breaker_fastfails_total" // labeled source=...
	MetricCompensationSeconds = "squirrel_compensation_seconds"
	MetricQuerySeconds        = "squirrel_query_seconds" // labeled path=fast|polling
	MetricQueryErrors         = "squirrel_query_errors_total"
	MetricVersionAgeTicks     = "squirrel_query_version_age_ticks" // logical clock distance commit − version stamp
	MetricQueueLen            = "squirrel_queue_len"
	MetricFlushSeconds        = "squirrel_flush_seconds" // runtime flushAll duration
)

// mediatorObs caches the mediator's instruments. Per-source series are
// pre-resolved for the fixed source set; the maps are read-only after
// construction.
type mediatorObs struct {
	reg *metrics.Registry

	txnPrepare   *metrics.Histogram
	txnPolls     *metrics.Histogram
	txnPropagate *metrics.Histogram
	txnCommit    *metrics.Histogram
	txnTotal     *metrics.Histogram
	txnsTotal    *metrics.Counter
	txnRetries   *metrics.Counter

	stageApply *metrics.Histogram
	stageRules *metrics.Histogram
	stageTotal *metrics.Histogram

	compensation *metrics.Histogram

	queryFast    *metrics.Histogram
	queryPolling *metrics.Histogram
	queryErrors  *metrics.Counter
	versionAge   *metrics.Histogram

	queueLen *metrics.Gauge

	pollOK    map[string]*metrics.Histogram
	pollErr   map[string]*metrics.Histogram
	fastFails map[string]*metrics.Counter
}

func newMediatorObs(reg *metrics.Registry, sources []string) *mediatorObs {
	if reg == nil {
		reg = metrics.NewRegistry(0)
	}
	txnHist := func(phase string) *metrics.Histogram {
		return reg.Histogram(metrics.SeriesName(MetricUpdateTxnSeconds, "phase", phase), metrics.DefLatencyBuckets)
	}
	stageHist := func(phase string) *metrics.Histogram {
		return reg.Histogram(metrics.SeriesName(MetricKernelStageSeconds, "phase", phase), metrics.DefLatencyBuckets)
	}
	o := &mediatorObs{
		reg:          reg,
		txnPrepare:   txnHist("prepare"),
		txnPolls:     txnHist("polls"),
		txnPropagate: txnHist("propagate"),
		txnCommit:    txnHist("commit"),
		txnTotal:     txnHist("total"),
		txnsTotal:    reg.Counter(MetricUpdateTxnsTotal),
		txnRetries:   reg.Counter(MetricUpdateTxnRetries),
		stageApply:   stageHist("apply"),
		stageRules:   stageHist("rules"),
		stageTotal:   stageHist("total"),
		compensation: reg.Histogram(MetricCompensationSeconds, metrics.DefLatencyBuckets),
		queryFast:    reg.Histogram(metrics.SeriesName(MetricQuerySeconds, "path", "fast"), metrics.DefLatencyBuckets),
		queryPolling: reg.Histogram(metrics.SeriesName(MetricQuerySeconds, "path", "polling"), metrics.DefLatencyBuckets),
		queryErrors:  reg.Counter(MetricQueryErrors),
		versionAge:   reg.Histogram(MetricVersionAgeTicks, metrics.DefTickBuckets),
		queueLen:     reg.Gauge(MetricQueueLen),
		pollOK:       make(map[string]*metrics.Histogram, len(sources)),
		pollErr:      make(map[string]*metrics.Histogram, len(sources)),
		fastFails:    make(map[string]*metrics.Counter, len(sources)),
	}
	for _, src := range sources {
		o.pollOK[src] = reg.Histogram(metrics.SeriesName(MetricSourcePollSeconds, "source", src, "outcome", "ok"), metrics.DefLatencyBuckets)
		o.pollErr[src] = reg.Histogram(metrics.SeriesName(MetricSourcePollSeconds, "source", src, "outcome", "error"), metrics.DefLatencyBuckets)
		o.fastFails[src] = reg.Counter(metrics.SeriesName(MetricBreakerFastFails, "source", src))
	}
	return o
}

// observePollAttempt records one source round trip's latency under its
// outcome series and emits a poll event for failures (success polls are
// summarized by the per-transaction events; failures are rare and worth
// a line each).
func (o *mediatorObs) observePollAttempt(src string, start time.Time, err error) {
	d := time.Since(start)
	if err == nil {
		if h := o.pollOK[src]; h != nil {
			h.Observe(d.Seconds())
		}
		return
	}
	if h := o.pollErr[src]; h != nil {
		h.Observe(d.Seconds())
	}
	o.reg.Emit(metrics.Event{Type: metrics.EventPoll, Subject: src, Dur: d, Err: err.Error()})
}

// observeBreaker emits a breaker-transition event when the state changed
// across one breaker interaction.
func (o *mediatorObs) observeBreaker(src, before, after string, trips uint64) {
	if before == after {
		return
	}
	o.reg.Emit(metrics.Event{
		Type:    metrics.EventBreaker,
		Subject: src + " " + before + "->" + after,
		Fields:  map[string]int64{"trips": int64(trips)},
	})
}

// Metrics returns the mediator's metrics registry. Always non-nil: when
// Config.Metrics is unset the mediator creates a private registry, so
// instrumentation is unconditional (its cost is the overhead budget
// DESIGN.md documents, not a mode).
func (m *Mediator) Metrics() *metrics.Registry { return m.obs.reg }

// MetricsSnapshot captures every instrument and the retained events; see
// metrics.Registry.Snapshot for the consistency contract.
func (m *Mediator) MetricsSnapshot() metrics.Snapshot { return m.obs.reg.Snapshot() }
