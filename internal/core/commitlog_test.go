package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"squirrel/internal/delta"
	"squirrel/internal/relation"
)

// fakeLog records everything the mediator hands it.
type fakeLog struct {
	mu       sync.Mutex
	records  []*CommitRecord
	barriers []string // "version:reason"
	syncs    int
	failNext error
}

func (l *fakeLog) LogCommit(rec *CommitRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.failNext; err != nil {
		l.failNext = nil
		return err
	}
	// Deep-enough copy: the commit path hands us live vectors.
	cp := *rec
	cp.Reflect = rec.Reflect.Clone()
	cp.NewRef = rec.NewRef.Clone()
	l.records = append(l.records, &cp)
	return nil
}

func (l *fakeLog) LogBarrier(version uint64, reason string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.barriers = append(l.barriers, fmt.Sprintf("%d:%s", version, reason))
	return nil
}

func (l *fakeLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncs++
	return nil
}

func (l *fakeLog) all() []*CommitRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*CommitRecord(nil), l.records...)
}

func TestCommitLogReceivesEveryCommit(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	log := &fakeLog{}
	e.med.SetCommitLog(log)

	for i := 0; i < 3; i++ {
		d := delta.New()
		d.Insert("R", relation.T(100+i, 20, 11, 100))
		e.db1.MustApply(d)
		if ran, err := e.med.RunUpdateTransaction(); err != nil || !ran {
			t.Fatalf("txn %d: ran=%v err=%v", i, ran, err)
		}
	}
	recs := log.all()
	if len(recs) != 3 {
		t.Fatalf("logged %d records, want 3", len(recs))
	}
	cur := e.med.Stats().CurrentVersion
	for i, rec := range recs {
		wantV := cur - uint64(len(recs)-1-i)
		if rec.Version != wantV {
			t.Errorf("record %d: version %d, want %d", i, rec.Version, wantV)
		}
		if rec.Announcements != 1 || rec.Delta == nil || rec.Delta.Card() == 0 {
			t.Errorf("record %d: announcements=%d delta=%v", i, rec.Announcements, rec.Delta)
		}
		if _, ok := rec.NewRef["db1"]; !ok {
			t.Errorf("record %d: NewRef missing db1: %v", i, rec.NewRef)
		}
		if rec.Reflect["db1"] != rec.NewRef["db1"] {
			t.Errorf("record %d: reflect %v, newRef %v", i, rec.Reflect, rec.NewRef)
		}
	}
}

func TestCommitLogFailureAbortsTransaction(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	log := &fakeLog{}
	e.med.SetCommitLog(log)
	before := e.med.Stats().CurrentVersion

	d := delta.New()
	d.Insert("R", relation.T(200, 20, 11, 100))
	e.db1.MustApply(d)

	boom := errors.New("disk on fire")
	log.mu.Lock()
	log.failNext = boom
	log.mu.Unlock()
	if _, err := e.med.RunUpdateTransaction(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Nothing published, nothing lost: the announcement is still queued
	// and the very next flush commits it.
	if got := e.med.Stats().CurrentVersion; got != before {
		t.Fatalf("version advanced to %d despite log failure", got)
	}
	if n := e.med.QueueLen(); n != 1 {
		t.Fatalf("queue len %d after aborted commit, want 1", n)
	}
	if ran, err := e.med.RunUpdateTransaction(); err != nil || !ran {
		t.Fatalf("retry: ran=%v err=%v", ran, err)
	}
	if got := e.med.Stats().CurrentVersion; got != before+1 {
		t.Fatalf("version %d after retry, want %d", got, before+1)
	}
	if len(log.all()) != 1 {
		t.Fatalf("logged %d records, want 1", len(log.all()))
	}
}

func TestCommitLogBarrierOnResync(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	log := &fakeLog{}
	e.med.SetCommitLog(log)
	e.med.QuarantineSource("db1", "test")
	d := delta.New()
	d.Insert("R", relation.T(300, 20, 11, 100))
	e.db1.MustApply(d)
	if err := e.med.ResyncSource("db1"); err != nil {
		t.Fatal(err)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.barriers) != 1 || !strings.Contains(log.barriers[0], "resync:db1") {
		t.Fatalf("barriers = %v, want one resync:db1", log.barriers)
	}
}

// TestReplayCommitRecords is the recovery invariant at the core level:
// restoring the pre-log snapshot and replaying the records reproduces the
// original mediator's final state exactly — store, version, and ref′.
func TestReplayCommitRecords(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	base, err := e.med.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	log := &fakeLog{}
	e.med.SetCommitLog(log)
	for i := 0; i < 4; i++ {
		dR := delta.New()
		dR.Insert("R", relation.T(400+i, 20, 11, 100))
		e.db1.MustApply(dR)
		if i%2 == 0 {
			dS := delta.New()
			dS.Insert("S", relation.T(50+i, 4, 10))
			e.db2.MustApply(dS)
		}
		if ran, err := e.med.RunUpdateTransaction(); err != nil || !ran {
			t.Fatalf("txn %d: ran=%v err=%v", i, ran, err)
		}
	}
	final, err := e.med.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// A second mediator, same plan, restored from the pre-log snapshot.
	// Deliberately NOT connected to the sources: replay must need no
	// announcements and (fully materialized plan) no polls.
	med2, err := New(Config{
		VDP:     paperPlan(t, nil, nil, nil),
		Sources: map[string]SourceConn{"db1": LocalSource{DB: e.db1}, "db2": LocalSource{DB: e.db2}},
		Clock:   e.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med2.Restore(base); err != nil {
		t.Fatal(err)
	}
	for _, rec := range log.all() {
		if err := med2.ReplayCommitRecord(rec); err != nil {
			t.Fatalf("replay v%d: %v", rec.Version, err)
		}
	}
	got, err := med2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.StoreVersion != final.StoreVersion {
		t.Errorf("store version %d, want %d", got.StoreVersion, final.StoreVersion)
	}
	if !got.LastProcessed.LessEq(final.LastProcessed) || !final.LastProcessed.LessEq(got.LastProcessed) {
		t.Errorf("ref' %v, want %v", got.LastProcessed, final.LastProcessed)
	}
	for name, want := range final.Store {
		if rel := got.Store[name]; rel == nil || !rel.Equal(want) {
			t.Errorf("replayed %s:\n%swant\n%s", name, rel, want)
		}
	}
}

func TestReplayDetectsGap(t *testing.T) {
	e := newEnv(t, nil, nil, nil)
	base, err := e.med.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	log := &fakeLog{}
	e.med.SetCommitLog(log)
	for i := 0; i < 2; i++ {
		d := delta.New()
		d.Insert("R", relation.T(500+i, 20, 11, 100))
		e.db1.MustApply(d)
		if ran, err := e.med.RunUpdateTransaction(); err != nil || !ran {
			t.Fatalf("txn %d: ran=%v err=%v", i, ran, err)
		}
	}
	med2, err := New(Config{
		VDP:     paperPlan(t, nil, nil, nil),
		Sources: map[string]SourceConn{"db1": LocalSource{DB: e.db1}, "db2": LocalSource{DB: e.db2}},
		Clock:   e.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := med2.Restore(base); err != nil {
		t.Fatal(err)
	}
	recs := log.all()
	// Skipping the first record must stop replay with ErrReplayGap.
	if err := med2.ReplayCommitRecord(recs[1]); !errors.Is(err, ErrReplayGap) {
		t.Fatalf("err = %v, want ErrReplayGap", err)
	}
}
