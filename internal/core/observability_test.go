package core

import (
	"sync"
	"testing"

	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/metrics"
	"squirrel/internal/relation"
	"squirrel/internal/source"
	"squirrel/internal/trace"
)

// newWorkersEnv is newEnv with the staged kernel enabled.
func newWorkersEnv(t *testing.T, workers int) *testEnv {
	t.Helper()
	clk := &clock.Logical{}
	db1 := source.NewDB("db1", clk)
	db2 := source.NewDB("db2", clk)
	r := relation.NewSet(rSchema())
	r.Insert(relation.T(1, 10, 5, 100))
	r.Insert(relation.T(2, 10, 120, 100))
	r.Insert(relation.T(3, 20, 7, 100))
	s := relation.NewSet(sSchema())
	s.Insert(relation.T(10, 1, 20))
	s.Insert(relation.T(20, 2, 40))
	if err := db1.LoadRelation(r); err != nil {
		t.Fatal(err)
	}
	if err := db2.LoadRelation(s); err != nil {
		t.Fatal(err)
	}
	v := paperPlan(t, nil, nil, nil)
	rec := trace.NewRecorder()
	med, err := New(Config{
		VDP:              v,
		Sources:          map[string]SourceConn{"db1": LocalSource{DB: db1}, "db2": LocalSource{DB: db2}},
		Clock:            clk,
		Recorder:         rec,
		PropagateWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ConnectLocal(med, db1)
	ConnectLocal(med, db2)
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	return &testEnv{clk: clk, db1: db1, db2: db2, med: med, rec: rec, vdp_: v}
}

// assertHistogramsConsistent checks the metrics contract every snapshot
// guarantees: a histogram's bucket counts sum exactly to its Count.
func assertHistogramsConsistent(t *testing.T, snap metrics.Snapshot) {
	t.Helper()
	for name, h := range snap.Histograms {
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		if sum != h.Count {
			t.Errorf("histogram %s: Σbuckets = %d, Count = %d", name, sum, h.Count)
		}
	}
}

// Hammers Stats() and MetricsSnapshot() from several goroutines while
// update transactions commit under the staged kernel, asserting the
// snapshot invariants hold throughout: counters are monotone and every
// histogram's bucket counts sum to its Count. Run with -race.
func TestStatsAndMetricsConcurrentWithUpdates(t *testing.T) {
	e := newWorkersEnv(t, 2)
	const txns = 150
	const readers = 4

	stop := make(chan struct{})
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastTxns int64
			var lastPolls int
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := e.med.Stats()
				if st.UpdateTxns < 0 || st.SourcePolls < 0 {
					t.Error("negative stats counter")
				}
				snap := e.med.MetricsSnapshot()
				assertHistogramsConsistent(t, snap)
				if n := snap.Counters[MetricUpdateTxnsTotal]; n < lastTxns {
					t.Errorf("update txn counter went backwards: %d -> %d", lastTxns, n)
				} else {
					lastTxns = n
				}
				if p := st.SourcePolls; p < lastPolls {
					t.Errorf("source poll counter went backwards: %d -> %d", lastPolls, p)
				} else {
					lastPolls = p
				}
			}
		}()
	}

	// One query goroutine exercises the query instruments concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.med.QueryOpts("T", []string{"r1"}, nil, QueryOptions{}); err != nil {
				t.Errorf("query under load: %v", err)
				return
			}
		}
	}()

	for i := 0; i < txns; i++ {
		d := delta.New()
		d.Insert("R", relation.T(100+i, 10*(i%3+1), i, 100))
		e.db1.MustApply(d)
		if _, err := e.med.RunUpdateTransaction(); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// Final snapshot: every committed transaction observed exactly once
	// in both the counter and the phase=total histogram.
	snap := e.med.MetricsSnapshot()
	assertHistogramsConsistent(t, snap)
	if n := snap.Counters[MetricUpdateTxnsTotal]; n != txns {
		t.Errorf("final txn counter = %d, want %d", n, txns)
	}
	total := snap.Histograms[metrics.SeriesName(MetricUpdateTxnSeconds, "phase", "total")]
	if total.Count != txns {
		t.Errorf("phase=total histogram count = %d, want %d", total.Count, txns)
	}
	if stages := snap.Histograms[metrics.SeriesName(MetricKernelStageSeconds, "phase", "total")]; stages.Count == 0 {
		t.Errorf("staged kernel ran but recorded no stage timings")
	}
	if snap.EventsTotal == 0 {
		t.Errorf("no events emitted under load")
	}
}
