package core

import (
	"fmt"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/relation"
	"squirrel/internal/sqlview"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// This file implements the Query Processor (§4, §6.3). Queries take the
// paper's canonical form π_Attrs σ_Cond (Export). When every referenced
// attribute is materialized the answer comes straight from the local
// store; otherwise the VAP constructs temporary relations — either the
// standard children-based way or by key-based construction (Example 2.3).

// KeyBasedMode selects how the QP uses key-based construction.
type KeyBasedMode uint8

const (
	// KeyBasedAuto picks whichever construction polls fewer sources.
	KeyBasedAuto KeyBasedMode = iota
	// KeyBasedForce always uses key-based construction when applicable.
	KeyBasedForce
	// KeyBasedOff disables key-based construction.
	KeyBasedOff
)

// QueryOptions tune query processing.
type QueryOptions struct {
	KeyBased KeyBasedMode
}

// QueryResult is the answer to a query transaction together with its
// consistency metadata.
type QueryResult struct {
	Answer *relation.Relation
	// Reflect is the ref(t_j^q) vector: the source-state times the answer
	// corresponds to (§6.1).
	Reflect clock.Vector
	// Committed is the query transaction's commit time t_j^q.
	Committed clock.Time
	// Polled counts source round trips; KeyBased reports the construction
	// used.
	Polled   int
	KeyBased bool
}

// Query answers π_attrs σ_cond (export) with default options. attrs nil
// means all attributes of the export relation.
func (m *Mediator) Query(export string, attrs []string, cond algebra.Expr) (*relation.Relation, error) {
	res, err := m.QueryOpts(export, attrs, cond, QueryOptions{})
	if err != nil {
		return nil, err
	}
	return res.Answer, nil
}

// QuerySQL answers a query written as `SELECT cols FROM Export WHERE cond`
// against a single export relation.
func (m *Mediator) QuerySQL(sql string) (*relation.Relation, error) {
	stmt, err := sqlview.Parse(sql)
	if err != nil {
		return nil, err
	}
	if stmt.Op != "" {
		return nil, fmt.Errorf("core: query must be a single SELECT block")
	}
	sel := stmt.Left
	if len(sel.Tables) != 1 {
		return nil, fmt.Errorf("core: queries join nothing; define a view for joins")
	}
	return m.Query(sel.Tables[0].Rel, sel.Cols, sel.Where)
}

// QueryOpts answers π_attrs σ_cond (export) under explicit options,
// returning full consistency metadata.
func (m *Mediator) QueryOpts(export string, attrs []string, cond algebra.Expr, opts QueryOptions) (*QueryResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.isInitialized() {
		return nil, fmt.Errorf("core: mediator not initialized")
	}
	n := m.v.Node(export)
	if n == nil || !n.Export {
		return nil, fmt.Errorf("core: %q is not an export relation", export)
	}
	if attrs == nil {
		attrs = n.Schema.AttrNames()
	}
	req, err := vdp.NewRequirement(m.v, export, attrs, cond)
	if err != nil {
		return nil, err
	}

	var answer *relation.Relation
	var res *tempResult
	usedKeyBased := false

	switch {
	case !req.NeedsVirtual(m.v):
		// Fast path: everything materialized.
		answer, err = projectSelectLocal(m.store[export], export, attrs, cond)
		if err != nil {
			return nil, err
		}
	default:
		kb, kbOK := m.v.KeyBasedPlan(req)
		useKB := false
		switch opts.KeyBased {
		case KeyBasedForce:
			useKB = kbOK
		case KeyBasedAuto:
			// Prefer key-based when it polls strictly fewer sources (the
			// paper: "one more choice", not always better).
			if kbOK {
				std := m.v.SourcesNeeded(req)
				kbCost := 0
				if kb.ChildReq.NeedsVirtual(m.v) {
					kbCost = m.v.SourcesNeeded(kb.ChildReq)
				}
				useKB = kbCost < std
			}
		}
		if useKB {
			answer, res, err = m.keyBasedAnswer(req, kb, attrs)
			usedKeyBased = true
		} else {
			answer, res, err = m.standardAnswer(req, attrs)
		}
		if err != nil {
			return nil, err
		}
	}

	// Assemble ref(t_j^q) per §6.1.
	committed := m.clk.Now()
	m.qmu.Lock()
	reflect := make(clock.Vector, len(m.sources))
	for src := range m.sources {
		switch {
		case m.contributors[src] != VirtualContributor:
			reflect[src] = m.lastProcessed[src]
		case res != nil && res.polledAt[src] != 0:
			reflect[src] = res.polledAt[src]
		default:
			// Uninvolved virtual contributor: the answer trivially
			// corresponds to its current state.
			reflect[src] = committed
		}
	}
	m.qmu.Unlock()

	m.stats.QueryTxns++
	if usedKeyBased {
		m.stats.KeyBasedTemps++
	}
	polls := 0
	if res != nil {
		polls = res.polls
	}
	m.recorder.RecordQuery(trace.QueryTxn{
		Committed: committed,
		Reflect:   reflect.Clone(),
		Export:    export,
		Attrs:     append([]string(nil), attrs...),
		Cond:      cond,
		Answer:    answer.Clone(),
		Polled:    polls,
		KeyBased:  usedKeyBased,
	})
	return &QueryResult{
		Answer:    answer,
		Reflect:   reflect,
		Committed: committed,
		Polled:    polls,
		KeyBased:  usedKeyBased,
	}, nil
}

// standardAnswer runs the two-phase VAP (§6.3) and evaluates the query
// over the constructed temporaries. attrs is the caller's projection —
// req.Attrs may be wider (closed over condition attributes).
func (m *Mediator) standardAnswer(req vdp.Requirement, attrs []string) (*relation.Relation, *tempResult, error) {
	plan, err := m.v.PlanTemporaries([]vdp.Requirement{req})
	if err != nil {
		return nil, nil, err
	}
	res, err := m.buildTemporaries(plan)
	if err != nil {
		return nil, nil, err
	}
	top, ok := res.temps[req.Rel]
	if !ok {
		return nil, nil, fmt.Errorf("core: VAP did not construct a temporary for %q", req.Rel)
	}
	// The temporary may be a superset (merged conditions and closure
	// attributes); re-apply the condition and project to the caller's list.
	answer, err := projectSelectLocal(top, req.Rel, attrs, req.Cond)
	if err != nil {
		return nil, nil, err
	}
	return answer, res, nil
}

// keyBasedAnswer implements the key-based construction of Example 2.3:
// join the export's materialized store projection with a single child
// fetch keyed by the child's key.
func (m *Mediator) keyBasedAnswer(req vdp.Requirement, kb *vdp.KeyBased, attrs []string) (*relation.Relation, *tempResult, error) {
	// Fetch the child portion (recursively through the VAP if the child
	// itself is virtual).
	var childRel *relation.Relation
	res := &tempResult{temps: map[string]*relation.Relation{}, polledAt: map[string]clock.Time{}}
	if kb.ChildReq.NeedsVirtual(m.v) {
		plan, err := m.v.PlanTemporaries([]vdp.Requirement{kb.ChildReq})
		if err != nil {
			return nil, nil, err
		}
		res, err = m.buildTemporaries(plan)
		if err != nil {
			return nil, nil, err
		}
		childRel = res.temps[kb.ChildReq.Rel]
		if childRel == nil {
			return nil, nil, fmt.Errorf("core: VAP did not construct the key-based child %q", kb.ChildReq.Rel)
		}
	} else {
		var err error
		childRel, err = projectSelectLocal(m.store[kb.ChildReq.Rel], kb.ChildReq.Rel,
			kb.ChildReq.AttrList(m.v), kb.ChildReq.Cond)
		if err != nil {
			return nil, nil, err
		}
	}
	storePart, err := projectSelectLocal(m.store[kb.Node], kb.Node, kb.StoreAttrs, nil)
	if err != nil {
		return nil, nil, err
	}
	joined, err := joinOnKey(m.v.Node(kb.Node), storePart, childRel, kb.Key)
	if err != nil {
		return nil, nil, err
	}
	answer, err := projectSelectLocal(joined, kb.Node, attrs, req.Cond)
	if err != nil {
		return nil, nil, err
	}
	return answer, res, nil
}

// joinOnKey joins the store projection with the child fetch on the child's
// key, producing a relation over (storeAttrs ∪ child non-key attrs) in the
// node's schema order with the store's multiplicities. The child's key
// functionally determines its other attributes, so each store row matches
// at most one child row.
func joinOnKey(n *vdp.Node, storePart, childPart *relation.Relation, key []string) (*relation.Relation, error) {
	childKeyPos, err := childPart.Schema().Positions(key)
	if err != nil {
		return nil, err
	}
	storeKeyPos, err := storePart.Schema().Positions(key)
	if err != nil {
		return nil, err
	}
	// Output attributes: node order, restricted to those available.
	avail := make(map[string]bool)
	for _, a := range storePart.Schema().AttrNames() {
		avail[a] = true
	}
	keySet := make(map[string]bool, len(key))
	for _, k := range key {
		keySet[k] = true
	}
	var childExtra []string
	for _, a := range childPart.Schema().AttrNames() {
		if !keySet[a] {
			avail[a] = true
			childExtra = append(childExtra, a)
		}
	}
	var outAttrs []relation.Attribute
	for _, a := range n.Schema.Attrs() {
		if avail[a.Name] {
			outAttrs = append(outAttrs, a)
		}
	}
	schema, err := relation.NewSchema(n.Name, outAttrs)
	if err != nil {
		return nil, err
	}
	// Index the child by key.
	childByKey := make(map[string]relation.Tuple, childPart.Len())
	childPart.Each(func(t relation.Tuple, _ int) bool {
		childByKey[t.KeyOn(childKeyPos)] = t
		return true
	})
	childExtraPos, err := childPart.Schema().Positions(childExtra)
	if err != nil {
		return nil, err
	}
	// Assemble output tuples in schema order.
	out := relation.NewBag(schema)
	storeAttrIdx := make(map[string]int)
	for i, a := range storePart.Schema().AttrNames() {
		storeAttrIdx[a] = i
	}
	childExtraIdx := make(map[string]int)
	for i, a := range childExtra {
		childExtraIdx[a] = i
	}
	storePart.Each(func(st relation.Tuple, c int) bool {
		ct, ok := childByKey[st.KeyOn(storeKeyPos)]
		if !ok {
			return true // child fetch filtered this row out
		}
		extras := ct.Project(childExtraPos)
		tuple := make(relation.Tuple, len(outAttrs))
		for i, a := range outAttrs {
			if p, ok := storeAttrIdx[a.Name]; ok {
				tuple[i] = st[p]
			} else {
				tuple[i] = extras[childExtraIdx[a.Name]]
			}
		}
		out.Add(tuple, c)
		return true
	})
	return out, nil
}
