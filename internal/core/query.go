package core

import (
	"fmt"
	"time"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/relation"
	"squirrel/internal/sqlview"
	"squirrel/internal/store"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// This file implements the Query Processor (§4, §6.3). Queries take the
// paper's canonical form π_Attrs σ_Cond (Export). When every referenced
// attribute is materialized the answer comes straight from a published
// store version — lock-free, even while an update transaction runs;
// otherwise the VAP constructs temporary relations against a pinned
// version — either the standard children-based way or by key-based
// construction (Example 2.3).

// KeyBasedMode selects how the QP uses key-based construction.
type KeyBasedMode uint8

const (
	// KeyBasedAuto picks whichever construction polls fewer sources.
	KeyBasedAuto KeyBasedMode = iota
	// KeyBasedForce always uses key-based construction when applicable.
	KeyBasedForce
	// KeyBasedOff disables key-based construction.
	KeyBasedOff
)

// DegradeMode selects what a query does when a polled source is down
// (its poll fails after retries, or its breaker is open, or it is
// quarantined).
type DegradeMode uint8

const (
	// FailFast returns the poll error, naming the source. The default.
	FailFast DegradeMode = iota
	// ServeStale answers from the last successful poll's cached answer,
	// stamping the result with a per-source staleness bound — the runtime
	// enforcement of Theorem 7.2's per-source delay vector f̄.
	ServeStale
)

// QueryOptions tune query processing.
type QueryOptions struct {
	KeyBased KeyBasedMode
	// Degrade selects the failure policy for source polls.
	Degrade DegradeMode
	// MaxStaleness is the per-source f̄ bound under ServeStale: a degraded
	// answer whose staleness bound exceeds it is refused (≤ 0 means
	// unbounded).
	MaxStaleness clock.Time
}

// QueryResult is the answer to a query transaction together with its
// consistency metadata.
type QueryResult struct {
	Answer *relation.Relation
	// Reflect is the ref(t_j^q) vector: the source-state times the answer
	// corresponds to (§6.1).
	Reflect clock.Vector
	// Committed is the query transaction's commit time t_j^q.
	Committed clock.Time
	// Polled counts source round trips; KeyBased reports the construction
	// used.
	Polled   int
	KeyBased bool
	// Version is the sequence number of the published store version the
	// answer was computed against — every answer is attributable to
	// exactly one version.
	Version uint64
	// Degraded is set when some source's poll was served from the stale
	// cache under ServeStale. Staleness then bounds, per degraded source,
	// how far behind the commit time the answer may be: the answer is
	// exact at its Reflect vector, and Reflect[src] ≥ Committed −
	// Staleness[src] (Theorem 7.2's f̄, stamped per answer). Sources
	// absent from Staleness were reached normally.
	Degraded  bool
	Staleness clock.Vector
	// BaseReflect is Reflect with every federated-tier component
	// translated into base-source coordinates (DESIGN.md §11): the same
	// validity statement an equivalent flat mediator over the base
	// sources would stamp. Equal to Reflect (cloned) when no source is a
	// federated tier.
	BaseReflect clock.Vector
}

// Query answers π_attrs σ_cond (export) with default options. attrs nil
// means all attributes of the export relation.
func (m *Mediator) Query(export string, attrs []string, cond algebra.Expr) (*relation.Relation, error) {
	res, err := m.QueryOpts(export, attrs, cond, QueryOptions{})
	if err != nil {
		return nil, err
	}
	return res.Answer, nil
}

// QuerySQL answers a query written as `SELECT cols FROM Export WHERE cond`
// against a single export relation.
func (m *Mediator) QuerySQL(sql string) (*relation.Relation, error) {
	stmt, err := sqlview.Parse(sql)
	if err != nil {
		return nil, err
	}
	if stmt.Op != "" {
		return nil, fmt.Errorf("core: query must be a single SELECT block")
	}
	sel := stmt.Left
	if len(sel.Tables) != 1 {
		return nil, fmt.Errorf("core: queries join nothing; define a view for joins")
	}
	return m.Query(sel.Tables[0].Rel, sel.Cols, sel.Where)
}

// pinFast pins the current version for a purely-materialized query and
// stamps the transaction's commit time while the version is provably
// current: it loads the version, takes a clock stamp, and re-checks that
// the same version is still published — retrying otherwise. Because the
// version was current AT the commit stamp, ref(t_j^q) = ref′(version) is
// monotone across fast-path queries in commit order (the checker's
// order-preservation invariant), even with updates publishing
// concurrently. Lock-free: no mutex is ever taken.
func (m *Mediator) pinFast() (*store.Version, clock.Time, error) {
	for {
		v := m.vstore.Current()
		if v == nil {
			return nil, 0, fmt.Errorf("core: mediator not initialized")
		}
		committed := m.clk.Now()
		if m.vstore.Current() == v {
			return v, committed, nil
		}
	}
}

// reflectFor assembles the ref(t_j^q) vector (§6.1) for an answer computed
// against version v under plan epoch ep: announcing contributors reflect
// the version's ref′, polled virtual contributors their poll instants, and
// uninvolved virtual contributors trivially correspond to their state at
// commit time.
func (m *Mediator) reflectFor(ep *planEpoch, v *store.Version, res *tempResult, committed clock.Time) clock.Vector {
	reflect := make(clock.Vector, len(m.sources))
	for src := range m.sources {
		switch {
		case ep.contributors[src] != VirtualContributor:
			reflect[src] = v.RefOf(src)
		case res != nil && res.polledAt[src] != 0:
			reflect[src] = res.polledAt[src]
		default:
			reflect[src] = committed
		}
	}
	return reflect
}

// maxEpochRetries bounds how many times a query transaction restarts
// because a re-annotation swapped the plan epoch between its epoch read
// and its version pin. Each restart is cheap (no polls have happened
// yet), and re-annotations are serialized on txnMu, so hitting the bound
// means something is pathologically flip-happy.
const maxEpochRetries = 64

// QueryOpts answers π_attrs σ_cond (export) under explicit options,
// returning full consistency metadata. Query transactions never take the
// update mutex: they pin a published version and read it — lock-free when
// everything referenced is materialized, coordinating only on the queue
// lock (for Eager Compensation) when the VAP must poll.
func (m *Mediator) QueryOpts(export string, attrs []string, cond algebra.Expr, opts QueryOptions) (*QueryResult, error) {
	start := time.Now()
	res0, err := m.queryOpts(export, attrs, cond, opts, start)
	if err != nil {
		m.obs.queryErrors.Inc()
	}
	if res0 != nil && err == nil {
		res0.BaseReflect = m.composeBaseReflect(res0.Reflect)
	}
	return res0, err
}

func (m *Mediator) queryOpts(export string, attrs []string, cond algebra.Expr, opts QueryOptions, start time.Time) (*QueryResult, error) {
	for i := 0; i < maxEpochRetries; i++ {
		res, ok, err := m.queryOnce(export, attrs, cond, opts, start)
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	return nil, fmt.Errorf("core: query lost the plan-epoch race %d times", maxEpochRetries)
}

// queryOnce runs one attempt of a query transaction against a consistent
// (epoch, version) pair. It returns ok=false — retry — when a
// re-annotation swapped the epoch between the epoch read and the version
// pin, so the requirement would mix one plan's annotation with another
// plan's store layout.
func (m *Mediator) queryOnce(export string, attrs []string, cond algebra.Expr, opts QueryOptions, start time.Time) (*QueryResult, bool, error) {
	ep := m.epoch()
	pv := ep.v
	n := pv.Node(export)
	if n == nil || !n.Export {
		return nil, false, fmt.Errorf("core: %q is not an export relation", export)
	}
	if attrs == nil {
		attrs = n.Schema.AttrNames()
	}
	req, err := vdp.NewRequirement(pv, export, attrs, cond)
	if err != nil {
		return nil, false, err
	}

	var answer *relation.Relation
	var res *tempResult
	var v *store.Version
	var committed clock.Time
	usedKeyBased := false

	if !req.NeedsVirtual(pv) {
		// Fast path: everything materialized. Stamp first (while the
		// version is provably current), then compute from the immutable
		// version — the answer is exactly the version's state, so it is
		// valid at the stamp.
		v, committed, err = m.pinFast()
		if err != nil {
			return nil, false, err
		}
		if m.planFor(v.Seq()) != ep {
			return nil, false, nil // epoch swapped underneath; retry
		}
		answer, err = projectSelectLocal(v.Rel(export), export, attrs, cond)
		if err != nil {
			return nil, false, err
		}
	} else {
		// Polling path: pin the current version so Eager Compensation can
		// roll polls back to its ref′ even if updates publish newer
		// versions meanwhile.
		v = m.pinVersion()
		if v == nil {
			return nil, false, fmt.Errorf("core: mediator not initialized")
		}
		defer m.unpinVersion(v)
		if m.planFor(v.Seq()) != ep {
			return nil, false, nil // epoch swapped underneath; retry
		}
		kb, kbOK := pv.KeyBasedPlan(req)
		useKB := false
		switch opts.KeyBased {
		case KeyBasedForce:
			useKB = kbOK
		case KeyBasedAuto:
			// Prefer key-based when it polls strictly fewer sources (the
			// paper: "one more choice", not always better).
			if kbOK {
				std := pv.SourcesNeeded(req)
				kbCost := 0
				if kb.ChildReq.NeedsVirtual(pv) {
					kbCost = pv.SourcesNeeded(kb.ChildReq)
				}
				useKB = kbCost < std
			}
		}
		if useKB {
			answer, res, err = m.keyBasedAnswer(ep, v, req, kb, attrs, opts.Degrade)
			usedKeyBased = true
		} else {
			answer, res, err = m.standardAnswer(ep, v, req, attrs, opts.Degrade)
		}
		if err != nil {
			return nil, false, err
		}
		// Commit after the polls so chronology holds (every ref component,
		// including poll instants, is ≤ the commit time).
		committed = m.clk.Now()
	}

	reflect := m.reflectFor(ep, v, res, committed)

	// Stamp and enforce the ServeStale bound: a degraded source's
	// contribution is exact at Reflect[src], so the answer lags current
	// time by Committed − Reflect[src]; refuse when that exceeds the
	// query's f̄ (Theorem 7.2 as a runtime contract).
	var staleness clock.Vector
	if res != nil && len(res.stale) > 0 {
		staleness = make(clock.Vector, len(res.stale))
		for src := range res.stale {
			bound := committed - reflect[src]
			if bound < 1 {
				bound = 1
			}
			if opts.MaxStaleness > 0 && bound > opts.MaxStaleness {
				return nil, false, fmt.Errorf("core: source %q is down and the degraded answer would be stale by %d (> max staleness %d)", src, bound, opts.MaxStaleness)
			}
			staleness[src] = bound
		}
		m.stats.degradedQueries.Add(1)
	}

	m.stats.queryTxns.Add(1)
	m.obs.noteQuery(export, req.AttrList(pv))
	if usedKeyBased {
		m.stats.keyBasedTemps.Add(1)
	}
	polls := 0
	if res != nil {
		polls = res.polls
	}
	// Latency by path, and how far (in logical ticks) the answer's
	// version lagged the query's commit instant — the freshness the
	// u_hold_delay / MaxStaleness knobs trade away.
	if req.NeedsVirtual(pv) {
		m.obs.queryPolling.ObserveSince(start)
	} else {
		m.obs.queryFast.ObserveSince(start)
	}
	if age := committed - v.Stamp(); age >= 0 {
		m.obs.versionAge.Observe(float64(age))
	}
	m.recorder.RecordQuery(trace.QueryTxn{
		Committed: committed,
		Reflect:   reflect.Clone(),
		Export:    export,
		Attrs:     append([]string(nil), attrs...),
		Cond:      cond,
		Answer:    answer.Clone(),
		Polled:    polls,
		KeyBased:  usedKeyBased,
	})
	return &QueryResult{
		Answer:    answer,
		Reflect:   reflect,
		Committed: committed,
		Polled:    polls,
		KeyBased:  usedKeyBased,
		Version:   v.Seq(),
		Degraded:  len(staleness) > 0,
		Staleness: staleness,
	}, true, nil
}

// standardAnswer runs the two-phase VAP (§6.3) against the pinned version
// and evaluates the query over the constructed temporaries. attrs is the
// caller's projection — req.Attrs may be wider (closed over condition
// attributes).
func (m *Mediator) standardAnswer(ep *planEpoch, v *store.Version, req vdp.Requirement, attrs []string, degrade DegradeMode) (*relation.Relation, *tempResult, error) {
	plan, err := ep.v.PlanTemporaries([]vdp.Requirement{req})
	if err != nil {
		return nil, nil, err
	}
	res, err := m.buildTemporaries(ep, plan, v, degrade)
	if err != nil {
		return nil, nil, err
	}
	top, ok := res.temps[req.Rel]
	if !ok {
		return nil, nil, fmt.Errorf("core: VAP did not construct a temporary for %q", req.Rel)
	}
	// The temporary may be a superset (merged conditions and closure
	// attributes); re-apply the condition and project to the caller's list.
	answer, err := projectSelectLocal(top, req.Rel, attrs, req.Cond)
	if err != nil {
		return nil, nil, err
	}
	return answer, res, nil
}

// keyBasedAnswer implements the key-based construction of Example 2.3:
// join the export's materialized store projection (from the pinned
// version) with a single child fetch keyed by the child's key.
func (m *Mediator) keyBasedAnswer(ep *planEpoch, v *store.Version, req vdp.Requirement, kb *vdp.KeyBased, attrs []string, degrade DegradeMode) (*relation.Relation, *tempResult, error) {
	// Fetch the child portion (recursively through the VAP if the child
	// itself is virtual).
	var childRel *relation.Relation
	res := &tempResult{temps: map[string]*relation.Relation{}, polledAt: map[string]clock.Time{}}
	if kb.ChildReq.NeedsVirtual(ep.v) {
		plan, err := ep.v.PlanTemporaries([]vdp.Requirement{kb.ChildReq})
		if err != nil {
			return nil, nil, err
		}
		res, err = m.buildTemporaries(ep, plan, v, degrade)
		if err != nil {
			return nil, nil, err
		}
		childRel = res.temps[kb.ChildReq.Rel]
		if childRel == nil {
			return nil, nil, fmt.Errorf("core: VAP did not construct the key-based child %q", kb.ChildReq.Rel)
		}
	} else {
		var err error
		childRel, err = projectSelectLocal(v.Rel(kb.ChildReq.Rel), kb.ChildReq.Rel,
			kb.ChildReq.AttrList(ep.v), kb.ChildReq.Cond)
		if err != nil {
			return nil, nil, err
		}
	}
	storePart, err := projectSelectLocal(v.Rel(kb.Node), kb.Node, kb.StoreAttrs, nil)
	if err != nil {
		return nil, nil, err
	}
	joined, err := joinOnKey(ep.v.Node(kb.Node), storePart, childRel, kb.Key)
	if err != nil {
		return nil, nil, err
	}
	answer, err := projectSelectLocal(joined, kb.Node, attrs, req.Cond)
	if err != nil {
		return nil, nil, err
	}
	return answer, res, nil
}

// joinOnKey joins the store projection with the child fetch on the child's
// key, producing a relation over (storeAttrs ∪ child non-key attrs) in the
// node's schema order with the store's multiplicities. The child's key
// functionally determines its other attributes, so each store row matches
// at most one child row.
func joinOnKey(n *vdp.Node, storePart, childPart *relation.Relation, key []string) (*relation.Relation, error) {
	childKeyPos, err := childPart.Schema().Positions(key)
	if err != nil {
		return nil, err
	}
	storeKeyPos, err := storePart.Schema().Positions(key)
	if err != nil {
		return nil, err
	}
	// Output attributes: node order, restricted to those available.
	avail := make(map[string]bool)
	for _, a := range storePart.Schema().AttrNames() {
		avail[a] = true
	}
	keySet := make(map[string]bool, len(key))
	for _, k := range key {
		keySet[k] = true
	}
	var childExtra []string
	for _, a := range childPart.Schema().AttrNames() {
		if !keySet[a] {
			avail[a] = true
			childExtra = append(childExtra, a)
		}
	}
	var outAttrs []relation.Attribute
	for _, a := range n.Schema.Attrs() {
		if avail[a.Name] {
			outAttrs = append(outAttrs, a)
		}
	}
	schema, err := relation.NewSchema(n.Name, outAttrs)
	if err != nil {
		return nil, err
	}
	// Index the child by key.
	childByKey := make(map[string]relation.Tuple, childPart.Len())
	childPart.Each(func(t relation.Tuple, _ int) bool {
		childByKey[t.KeyOn(childKeyPos)] = t
		return true
	})
	childExtraPos, err := childPart.Schema().Positions(childExtra)
	if err != nil {
		return nil, err
	}
	// Assemble output tuples in schema order.
	out := relation.NewBag(schema)
	storeAttrIdx := make(map[string]int)
	for i, a := range storePart.Schema().AttrNames() {
		storeAttrIdx[a] = i
	}
	childExtraIdx := make(map[string]int)
	for i, a := range childExtra {
		childExtraIdx[a] = i
	}
	storePart.Each(func(st relation.Tuple, c int) bool {
		ct, ok := childByKey[st.KeyOn(storeKeyPos)]
		if !ok {
			return true // child fetch filtered this row out
		}
		extras := ct.Project(childExtraPos)
		tuple := make(relation.Tuple, len(outAttrs))
		for i, a := range outAttrs {
			if p, ok := storeAttrIdx[a.Name]; ok {
				tuple[i] = st[p]
			} else {
				tuple[i] = extras[childExtraIdx[a.Name]]
			}
		}
		out.Add(tuple, c)
		return true
	})
	return out, nil
}
