package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"squirrel/internal/algebra"
	"squirrel/internal/clock"
	"squirrel/internal/delta"
	"squirrel/internal/relation"
	"squirrel/internal/resilience"
	"squirrel/internal/source"
	"squirrel/internal/trace"
	"squirrel/internal/vdp"
)

// triEnv wires three sources behind one chaos injector: A(ka,av)@dbA,
// B(kb,bv)@dbB, C(kc,cv)@dbC, AB = A ⋈_{ka=kb} B, V = AB ⋈_{ka=kc} C.
// The join keys are materialized and every value attribute is virtual, so
// a query touching values polls all three sources — and each source is a
// hybrid contributor (announces AND is polled), the configuration where
// degraded answers stay provably exact at their Reflect vector.
type triEnv struct {
	clk *clock.Logical
	dbs map[string]*source.DB
	inj *resilience.Injector
	med *Mediator
	v   *vdp.VDP

	mu      sync.Mutex
	swallow map[string]int // announcements to drop, per source
}

var triAttrs = []string{"ka", "av", "bv", "cv"}

func newTriEnv(t testing.TB) *triEnv {
	t.Helper()
	clk := &clock.Logical{}
	aSchema := relation.MustSchema("A", []relation.Attribute{
		{Name: "ka", Type: relation.KindInt}, {Name: "av", Type: relation.KindInt}}, "ka")
	bSchema := relation.MustSchema("B", []relation.Attribute{
		{Name: "kb", Type: relation.KindInt}, {Name: "bv", Type: relation.KindInt}}, "kb")
	cSchema := relation.MustSchema("C", []relation.Attribute{
		{Name: "kc", Type: relation.KindInt}, {Name: "cv", Type: relation.KindInt}}, "kc")
	abSchema := relation.MustSchema("AB", []relation.Attribute{
		{Name: "ka", Type: relation.KindInt}, {Name: "av", Type: relation.KindInt},
		{Name: "bv", Type: relation.KindInt}}, "ka")
	vSchema := relation.MustSchema("V", []relation.Attribute{
		{Name: "ka", Type: relation.KindInt}, {Name: "av", Type: relation.KindInt},
		{Name: "bv", Type: relation.KindInt}, {Name: "cv", Type: relation.KindInt}}, "ka")

	e := &triEnv{
		clk:     clk,
		dbs:     map[string]*source.DB{},
		inj:     resilience.NewInjector(7),
		swallow: map[string]int{},
	}
	load := func(name string, schema *relation.Schema, rows ...relation.Tuple) *source.DB {
		db := source.NewDB(name, clk)
		r := relation.NewSet(schema)
		for _, row := range rows {
			r.Insert(row)
		}
		if err := db.LoadRelation(r); err != nil {
			t.Fatal(err)
		}
		e.dbs[name] = db
		return db
	}
	load("dbA", aSchema, relation.T(1, 10), relation.T(2, 20), relation.T(3, 30))
	load("dbB", bSchema, relation.T(1, 100), relation.T(2, 200), relation.T(3, 300))
	load("dbC", cSchema, relation.T(1, 1000), relation.T(2, 2000), relation.T(3, 3000))

	apSchema := relation.MustSchema("A'", []relation.Attribute{
		{Name: "ka", Type: relation.KindInt}, {Name: "av", Type: relation.KindInt}}, "ka")
	bpSchema := relation.MustSchema("B'", []relation.Attribute{
		{Name: "kb", Type: relation.KindInt}, {Name: "bv", Type: relation.KindInt}}, "kb")
	cpSchema := relation.MustSchema("C'", []relation.Attribute{
		{Name: "kc", Type: relation.KindInt}, {Name: "cv", Type: relation.KindInt}}, "kc")
	v, err := vdp.New(
		&vdp.Node{Name: "A", Schema: aSchema, Source: "dbA"},
		&vdp.Node{Name: "B", Schema: bSchema, Source: "dbB"},
		&vdp.Node{Name: "C", Schema: cSchema, Source: "dbC"},
		&vdp.Node{Name: "A'", Schema: apSchema,
			Ann: vdp.Ann([]string{"ka"}, []string{"av"}),
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "A"}}, Proj: []string{"ka", "av"}}},
		&vdp.Node{Name: "B'", Schema: bpSchema,
			Ann: vdp.Ann([]string{"kb"}, []string{"bv"}),
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "B"}}, Proj: []string{"kb", "bv"}}},
		&vdp.Node{Name: "C'", Schema: cpSchema,
			Ann: vdp.Ann([]string{"kc"}, []string{"cv"}),
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "C"}}, Proj: []string{"kc", "cv"}}},
		&vdp.Node{Name: "AB", Schema: abSchema,
			Ann: vdp.Ann([]string{"ka"}, []string{"av", "bv"}),
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "A'"}, {Rel: "B'"}},
				JoinCond: algebra.Eq(algebra.A("ka"), algebra.A("kb")),
				Proj:     []string{"ka", "av", "bv"}}},
		&vdp.Node{Name: "V", Schema: vSchema, Export: true,
			Ann: vdp.Ann([]string{"ka"}, []string{"av", "bv", "cv"}),
			Def: vdp.SPJ{Inputs: []vdp.SPJInput{{Rel: "AB"}, {Rel: "C'"}},
				JoinCond: algebra.Eq(algebra.A("ka"), algebra.A("kc")),
				Proj:     []string{"ka", "av", "bv", "cv"}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	e.v = v

	conns := map[string]SourceConn{}
	for name, db := range e.dbs {
		conns[name] = resilience.WrapSource(LocalSource{DB: db}, e.inj)
	}
	med, err := New(Config{
		VDP: v, Sources: conns, Clock: clk, Recorder: trace.NewRecorder(),
		Resilience: ResilienceConfig{
			Retry: resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
			Seed:  7,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.med = med
	// Announcement feed with a per-source drop filter, so tests can lose
	// announcements on purpose and force gap detection.
	for name, db := range e.dbs {
		_ = name
		db.Subscribe(func(a source.Announcement) {
			e.mu.Lock()
			drop := e.swallow[a.Source] > 0
			if drop {
				e.swallow[a.Source]--
			}
			e.mu.Unlock()
			if !drop {
				med.OnAnnouncement(a)
			}
		})
	}
	if err := med.Initialize(); err != nil {
		t.Fatal(err)
	}
	return e
}

// dropAnnouncements makes the next n announcements from src vanish before
// reaching the mediator (a lossy channel / crashed subscription).
func (e *triEnv) dropAnnouncements(src string, n int) {
	e.mu.Lock()
	e.swallow[src] = n
	e.mu.Unlock()
}

func (e *triEnv) drain(t testing.TB) {
	t.Helper()
	for {
		ran, err := e.med.RunUpdateTransaction()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			return
		}
	}
}

// truth evaluates the full view from the current source states.
func (e *triEnv) truth(t testing.TB) *relation.Relation {
	t.Helper()
	leaves := map[string]*relation.Relation{}
	for _, leaf := range []string{"A", "B", "C"} {
		st, err := e.dbs[e.v.Node(leaf).Source].Current(leaf)
		if err != nil {
			t.Fatal(err)
		}
		leaves[leaf] = st
	}
	states, err := e.v.EvalAll(vdp.ResolverFromCatalog(leaves))
	if err != nil {
		t.Fatal(err)
	}
	return states["V"]
}

// truthAt evaluates the view from the historical leaf states named by a
// query's Reflect vector — the per-query validity oracle.
func (e *triEnv) truthAt(t testing.TB, reflect clock.Vector) *relation.Relation {
	t.Helper()
	leaves := map[string]*relation.Relation{}
	for _, leaf := range []string{"A", "B", "C"} {
		src := e.v.Node(leaf).Source
		st, err := e.dbs[src].StateAt(leaf, reflect[src])
		if err != nil {
			t.Fatal(err)
		}
		leaves[leaf] = st
	}
	states, err := e.v.EvalAll(vdp.ResolverFromCatalog(leaves))
	if err != nil {
		t.Fatal(err)
	}
	return states["V"]
}

func (e *triEnv) query(opts QueryOptions) (*QueryResult, error) {
	opts.KeyBased = KeyBasedOff
	return e.med.QueryOpts("V", triAttrs, nil, opts)
}

func TestServeStaleWhenSourceDown(t *testing.T) {
	e := newTriEnv(t)

	// Warm the poll cache with a healthy query.
	fresh, err := e.query(QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Degraded || len(fresh.Staleness) != 0 {
		t.Fatalf("healthy query flagged degraded: %+v", fresh)
	}

	// dbC goes hard-down.
	e.inj.SetDown("dbC", true)

	// FailFast: the error names the failed source.
	if _, err := e.query(QueryOptions{Degrade: FailFast}); err == nil {
		t.Fatal("fail-fast query with dbC down must error")
	} else if !strings.Contains(err.Error(), "dbC") {
		t.Fatalf("error should name the down source: %v", err)
	}

	// ServeStale: answered from the cached dbC poll, stamped with a
	// staleness bound for dbC only.
	res, err := e.query(QueryOptions{Degrade: ServeStale})
	if err != nil {
		t.Fatalf("serve-stale query: %v", err)
	}
	if !res.Degraded {
		t.Fatal("answer must be flagged degraded")
	}
	if len(res.Staleness) != 1 || res.Staleness["dbC"] < 1 {
		t.Fatalf("staleness must bound dbC only: %v", res.Staleness)
	}
	if !res.Answer.Equal(fresh.Answer) {
		t.Fatalf("nothing changed; degraded answer must equal fresh answer:\n%vvs\n%v",
			res.Answer, fresh.Answer)
	}

	// The world moves on without dbC: a dbA commit widens the bound but
	// the degraded answer stays exact at its Reflect vector.
	d := delta.New()
	d.Insert("A", relation.T(4, 40))
	e.dbs["dbA"].MustApply(d)

	res2, err := e.query(QueryOptions{Degrade: ServeStale})
	if err != nil {
		t.Fatalf("serve-stale after dbA commit: %v", err)
	}
	if res2.Staleness["dbC"] < res.Staleness["dbC"] {
		t.Fatalf("bound must not shrink while dbC stays down: %v then %v",
			res.Staleness, res2.Staleness)
	}
	if want := e.truthAt(t, res2.Reflect); !res2.Answer.Equal(want) {
		t.Fatalf("degraded answer diverged from state at Reflect %v:\n%vwant\n%v",
			res2.Reflect, res2.Answer, want)
	}
	if res2.Reflect["dbC"] < res2.Committed-res2.Staleness["dbC"] {
		t.Fatalf("staleness bound violated: reflect=%d committed=%d bound=%d",
			res2.Reflect["dbC"], res2.Committed, res2.Staleness["dbC"])
	}

	// A tight f̄ refuses the answer instead of silently serving it.
	if _, err := e.query(QueryOptions{Degrade: ServeStale, MaxStaleness: 1}); err == nil {
		t.Fatal("bound 1 must refuse the now-stale answer")
	} else if !strings.Contains(err.Error(), "max staleness") {
		t.Fatalf("refusal should cite the bound: %v", err)
	}

	// Recovery: fail-fast works again and nothing stays flagged.
	e.inj.SetDown("dbC", false)
	res3, err := e.query(QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Degraded {
		t.Fatal("healthy query flagged degraded after recovery")
	}

	st := e.med.Stats()
	if st.PollFailures == 0 || st.DegradedQueries < 2 {
		t.Fatalf("counters: pollFailures=%d degraded=%d", st.PollFailures, st.DegradedQueries)
	}

	if want := e.truthAt(t, res3.Reflect); !res3.Answer.Equal(want) {
		t.Fatalf("post-recovery answer diverged at Reflect %v:\n%vwant\n%v",
			res3.Reflect, res3.Answer, want)
	}
	e.drain(t)
}

func TestServeStaleNeedsCache(t *testing.T) {
	e := newTriEnv(t)
	// No query has warmed the cache; Initialize's poll answers are not
	// query-shaped. Down source + no cache = explicit refusal.
	e.inj.SetDown("dbC", true)
	if _, err := e.query(QueryOptions{Degrade: ServeStale}); err == nil {
		t.Fatal("serve-stale without a cached answer must error")
	} else if !strings.Contains(err.Error(), "no cached answer") {
		t.Fatalf("refusal should explain the missing cache: %v", err)
	}
}

func TestAnnouncementGapQuarantineAndResync(t *testing.T) {
	e := newTriEnv(t)

	// A processed dbB transaction, then a re-warmed cache: the degraded
	// path must stay valid relative to the CURRENT materialized state.
	d := delta.New()
	d.Delete("B", relation.T(1, 100))
	d.Insert("B", relation.T(1, 101))
	e.dbs["dbB"].MustApply(d)
	e.drain(t)
	if _, err := e.query(QueryOptions{}); err != nil {
		t.Fatal(err)
	}

	// tx2's announcement is lost; tx3's arrival reveals the sequence gap.
	e.dropAnnouncements("dbB", 1)
	d2 := delta.New()
	d2.Delete("B", relation.T(2, 200))
	d2.Insert("B", relation.T(2, 222))
	e.dbs["dbB"].MustApply(d2)
	d3 := delta.New()
	d3.Delete("B", relation.T(3, 300))
	d3.Insert("B", relation.T(3, 333))
	e.dbs["dbB"].MustApply(d3)

	qs := e.med.QuarantinedSources()
	if len(qs) != 1 || qs[0] != "dbB" {
		t.Fatalf("dbB must be quarantined after the gap: %v", qs)
	}
	st := e.med.Stats()
	if st.GapsDetected < 1 {
		t.Fatalf("gapsDetected=%d", st.GapsDetected)
	}
	h := st.Sources["dbB"]
	if h.Quarantined == "" || !strings.Contains(h.Quarantined, "gap") {
		t.Fatalf("health should carry the gap reason: %+v", h)
	}
	if h.PennedAnnouncements != 1 {
		t.Fatalf("tx3 should be penned: %d", h.PennedAnnouncements)
	}

	// Quarantine blocks fresh polls of dbB...
	if _, err := e.query(QueryOptions{}); err == nil {
		t.Fatal("fail-fast query must refuse a quarantined source")
	} else if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("error should say quarantined: %v", err)
	}
	// ...but ServeStale still answers, exactly at its Reflect vector.
	res, err := e.query(QueryOptions{Degrade: ServeStale})
	if err != nil {
		t.Fatalf("serve-stale during quarantine: %v", err)
	}
	if len(res.Staleness) != 1 || res.Staleness["dbB"] < 1 {
		t.Fatalf("staleness must bound dbB only: %v", res.Staleness)
	}
	if want := e.truthAt(t, res.Reflect); !res.Answer.Equal(want) {
		t.Fatalf("degraded answer diverged at Reflect %v:\n%vwant\n%v",
			res.Reflect, res.Answer, want)
	}

	// Resync re-establishes consistency by snapshot poll (Eager
	// Compensation), not by trusting the gapped delta stream.
	if err := e.med.ResyncSource("dbB"); err != nil {
		t.Fatalf("resync: %v", err)
	}
	if qs := e.med.QuarantinedSources(); len(qs) != 0 {
		t.Fatalf("still quarantined after resync: %v", qs)
	}
	if got := e.med.Stats(); got.Resyncs != 1 {
		t.Fatalf("resyncs=%d", got.Resyncs)
	}

	// After resync + drain the mediator agrees exactly with a from-scratch
	// evaluation — tx2's effects are present even though its announcement
	// never arrived.
	e.drain(t)
	res2, err := e.query(QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded {
		t.Fatal("post-resync query flagged degraded")
	}
	if want := e.truth(t); !res2.Answer.Equal(want) {
		t.Fatalf("post-resync answer diverged from ground truth:\n%vwant\n%v",
			res2.Answer, want)
	}
	if !res2.Answer.Contains(relation.T(2, 20, 222, 2000)) {
		t.Fatalf("lost tx2's effect missing after resync:\n%v", res2.Answer)
	}
}
